(** Containment-based static optimization of CRPQs — the paper's
    motivating application of the containment problem (Section 1).

    All operations are parameterized by the semantics, because
    redundancy is semantics-dependent: an atom implied under standard
    semantics can be load-bearing under an injective one (see
    [examples/query_optimizer.ml]). *)

(** [equivalent sem q1 q2]: mutual containment; [None] when either
    direction is undecided by the exact procedures / bounded search. *)
val equivalent : ?bound:int -> Semantics.t -> Crpq.t -> Crpq.t -> bool option

(** [drop_redundant_atoms sem q] greedily removes atoms whose removal
    provably preserves equivalence under [sem].  Conservative: keeps an
    atom whenever equivalence cannot be certified. *)
val drop_redundant_atoms : ?bound:int -> Semantics.t -> Crpq.t -> Crpq.t

(** [is_satisfiable q]: does the query have any expansion (i.e. any
    answer on some database)?  Independent of the semantics. *)
val is_satisfiable : Crpq.t -> bool

(** [prune_languages q] simplifies atom languages without changing the
    denoted language: removes unsatisfiable atoms' queries to the empty
    query marker and rewrites each regex to the minimal-DFA-derived
    equivalent when that is smaller. *)
val prune_languages : Crpq.t -> Crpq.t
