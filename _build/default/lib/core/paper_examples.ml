let example_21_query = Crpq.parse "Q(x, y) :- x -[(ab)*]-> y, y -[c*]-> x"

(* u = 0, m = 1, w = 2 *)
let example_21_g =
  Graph.make ~nnodes:3 [ (0, "a", 1); (1, "b", 2); (2, "c", 1); (1, "c", 0) ]

let example_21_g_tuple = [ 0; 2 ]

(* component 1 (st \ a-inj): u' = 0, s = 1, t = 2, v' = 3; every
   (ab)*-path from u' to v' must take the b-self-loop at s, repeating s.
   component 2 (a-inj \ q-inj): a shifted copy of G at nodes 4..6. *)
let example_21_g' =
  Graph.make ~nnodes:7
    [
      (0, "a", 1);
      (1, "b", 1);
      (1, "a", 2);
      (2, "b", 3);
      (3, "c", 0);
      (4, "a", 5);
      (5, "b", 6);
      (6, "c", 5);
      (5, "c", 4);
    ]

let example_21_g'_tuple_st = [ 0; 3 ]

let example_21_g'_tuple_ainj = [ 4; 6 ]

let example_22_e1 = Expansion.expand example_21_query [| [ "a"; "b" ]; [] |]

let example_22_e2 =
  Expansion.expand example_21_query [| [ "a"; "b" ]; [ "c" ] |]

let example_47_q1 = Crpq.parse "x -[a]-> y, y -[b]-> z"

let example_47_q2 = Crpq.parse "x -[ab]-> y"

let example_47_q1' = Crpq.parse "x -[a]-> y, x -[b]-> y"

let example_47_q2' = Crpq.parse "x -[a]-> y, u -[b]-> v"

let example_47_expectations =
  [
    ("Q1 ⊆ Q2", Semantics.St, example_47_q1, example_47_q2, true);
    ("Q1 ⊆ Q2", Semantics.Q_inj, example_47_q1, example_47_q2, true);
    ("Q1 ⊆ Q2", Semantics.A_inj, example_47_q1, example_47_q2, false);
    ("Q1' ⊆ Q2'", Semantics.St, example_47_q1', example_47_q2', true);
    ("Q1' ⊆ Q2'", Semantics.A_inj, example_47_q1', example_47_q2', true);
    ("Q1' ⊆ Q2'", Semantics.Q_inj, example_47_q1', example_47_q2', false);
  ]
