(** Conjunctive queries over graph databases (Section 2).

    A CQ is a set of atoms {m x \xrightarrow{a} y} with a tuple of free
    variables (possibly repeated, possibly isolated).  Every CQ can be
    seen as a graph database; {!to_graph} realizes that view.

    CQs with equality atoms and their canonical collapse {m Q^\equiv}
    (with the renaming {m \Phi}) implement the machinery used to define
    expansions and a-inj-expansions. *)

type var = string

type atom = { src : var; lbl : Word.symbol; dst : var }

type t = private { atoms : atom list; free : var list }
(** [atoms] is duplicate-free and sorted (set semantics). *)

(** [make ~free atoms] builds a CQ; duplicate atoms are removed. *)
val make : free:var list -> atom list -> t

val atom : var -> Word.symbol -> var -> atom

(** All variables: those of the atoms plus the free ones, sorted. *)
val vars : t -> var list

val nvars : t -> int

val is_boolean : t -> bool

val alphabet : t -> Word.symbol list

val equal : t -> t -> bool

(** {1 The graph-database view} *)

(** [to_graph q] is the graph of [q] together with the variable of each
    node ([names.(i)] is the variable of node [i]). *)
val to_graph : t -> Graph.t * var array

(** Index of a variable in the node numbering of {!to_graph}. *)
val var_node : t -> var -> int

(** Node tuple of the free variables in the numbering of {!to_graph}. *)
val free_nodes : t -> int list

(** [of_graph ?free g] names node [i] as ["v<i>"]. *)
val of_graph : ?free:Graph.node list -> Graph.t -> t

(** {1 Homomorphisms between CQs}

    [h : Q1 → Q2] maps free variables to free variables positionally. *)

val hom_exists : t -> t -> bool

val inj_hom_exists : t -> t -> bool

(** Non-contracting homomorphism (Lemma F.3): no atom between distinct
    variables is collapsed. *)
val non_contracting_hom_exists : t -> t -> bool

(** {1 CQs with equality atoms} *)

type with_eq = { base : t; eqs : (var * var) list }

(** [collapse q] computes {m Q^\equiv} and the canonical renaming
    {m \Phi} (represented as a function on variables; identity on
    variables not in [q]). *)
val collapse : with_eq -> t * (var -> var)

(** [x =_Q y]: does the reflexive-symmetric-transitive closure of the
    equality atoms relate [x] and [y]? *)
val eq_related : with_eq -> var -> var -> bool

val pp : Format.formatter -> t -> unit

val to_string : t -> string
