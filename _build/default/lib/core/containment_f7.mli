(** Exact CRPQ/CQ containment under standard semantics: the window
    algorithm of Proposition F.7.

    For {m Q_1} a CRPQ and {m Q_2} a CQ with {m N} atoms, a connected
    component {m \widehat Q_2} of {m Q_2} maps into an expansion
    {m E_1} either within the {m N}-neighbourhood of a variable of
    {m Q_1} or entirely inside one atom expansion.  Consequently
    {m Q_1 \not\subseteq_{st} Q_2} iff there are a component
    {m \widehat Q_2} and a {e truncated expansion} {m E_1^\#} — per
    atom, either an exact word of length {m \leq 2N} or
    {m u \,\#\, v} with {m |u| = |v| = N} and a non-empty middle
    language — such that

    + {m \widehat Q_2} has no homomorphism into {m E_1^\#} (the fresh
      {m \#} blocks crossings), and
    + for every truncated atom there is a middle {m w} with
      {m u w v \in L} such that {m u w v} avoids every occurrence of
      {m \widehat Q_2}'s line pattern (a regular-emptiness check; a
      component that is not line-shaped never maps inside a path).

    The procedure is exponential in {m |Q_2|} (the {m \Pi_2^p}
    algorithm guesses what we enumerate) and exact; witnesses are
    re-verified by direct evaluation.  {!Unsupported} is raised when the
    enumeration caps are exceeded. *)

exception Unsupported of string

type result =
  | F7_contained
  | F7_not_contained of Expansion.expanded

(** [decide_st q1 q2] decides {m Q_1 \subseteq_{st} Q_2}.
    @raise Invalid_argument if [q2] is not a CQ or arities differ. *)
val decide_st : ?max_elements:int -> Crpq.t -> Crpq.t -> result

(** The line pattern of a connected CQ component: [Some template] (a
    letter-or-wildcard array) when the component is line-shaped, [None]
    otherwise.  Exposed for tests. *)
val line_pattern : Cq.t -> Word.symbol option array option
