(** The CRPQ semantics studied in the paper.

    Section 2.1 defines standard, atom-injective and query-injective
    semantics; Section 7 sketches the two trail (edge-injective)
    variants, which this library also implements. *)

type t =
  | St  (** standard semantics: arbitrary paths, arbitrary mapping *)
  | A_inj
      (** atom-injective: each atom mapped to a simple path (simple cycle
          for {m x \xrightarrow{L} x}); no cross-atom constraint *)
  | Q_inj
      (** query-injective: atom-injective plus an injective variable
          mapping and pairwise internally-disjoint paths *)
  | A_edge_inj  (** trail per atom (Section 7) *)
  | Q_edge_inj  (** pairwise edge-disjoint trails (Section 7) *)

(** The three node semantics of the main development. *)
val node_semantics : t list

val all : t list

(** [leq s1 s2] holds when semantics [s1] is at least as restrictive as
    [s2] pointwise on every query and database (Remark 2.1's hierarchy:
    [Q_inj] ⊑ [A_inj] ⊑ [St], and likewise for the edge variants). *)
val leq : t -> t -> bool

val to_string : t -> string

val of_string : string -> t option

val pp : Format.formatter -> t -> unit
