(** Exact CRPQ/CRPQ containment under query-injective semantics: the
    abstraction algorithm of Theorem 5.1 (Appendix C).

    The procedure decides {m Q_1 \subseteq_{q\text{-}inj} Q_2}:

    + both queries are rewritten into unions of {m \varepsilon}-free
      CRPQs, the right-hand queries are normalized by concatenating away
      non-free degree-(1,1) variables (Remark C.1), and parallel atoms
      sharing single-letter words are split into unions (Remark C.2);
    + the automaton {m \mathcal A_{Q_2}} is the disjoint union of the NFAs
      of the right-hand atoms, made complete and co-complete;
    + for every left atom {m A}, an incremental tracker explores the
      words of {m L(A)} and computes the set of achievable
      {e abstraction values}: the four relations
      {m \langle q\text- q'\rangle}, {m \langle q + q'\rangle},
      {m \langle q\,|\!\cdot\!\cdot|\, q'\rangle},
      {m \langle \cdot\!\cdot q\text- q'\cdot\!\cdot\rangle} of Appendix
      C, together with a witness word per value;
    + {e morphism types} {m (H,h)} are enumerated as injective
      placements of the right query into the graph {m G} that triples
      every left atom (Figure 8);
    + each type yields per-left-atom membership {e templates} (the 17
      compatibility cases of Figure 9, derived from edge coverage), and
      compatibility is a search over the {m \lambda} state labelling;
    + {m Q_1 \not\subseteq Q_2} iff some abstraction (a product of
      achievable values) admits no compatible morphism type; the witness
      words then produce a concrete counterexample expansion, which is
      re-verified by direct evaluation before being returned.

    The abstraction spaces are exponential in the query sizes (the
    algorithm is PSPACE; this implementation materializes the guessed
    objects), so the deciders take explosion caps and raise
    {!Unsupported} when exceeded. *)

exception Unsupported of string

type result =
  | Qinj_contained
  | Qinj_not_contained of Expansion.expanded
      (** counterexample expansion of {m Q_1}, verified *)

val decide :
  ?max_tracker_states:int ->
  ?max_types:int ->
  ?max_abstractions:int ->
  Crpq.t ->
  Crpq.t ->
  result

(** {1 Introspection} (for tests and benchmarks) *)

type stats = {
  lhs_disjuncts : int;
  rhs_disjuncts : int;
  abstractions_checked : int;
  morphism_types : int;
}

(** Same as {!decide} but also reports search-space sizes. *)
val decide_with_stats :
  ?max_tracker_states:int ->
  ?max_types:int ->
  ?max_abstractions:int ->
  Crpq.t ->
  Crpq.t ->
  result * stats

(** Containment between unions of CRPQs:
    {m \bigvee_i P_i \subseteq_{q\text{-}inj} \bigvee_j R_j}.  The
    machinery handles unions natively (counterexamples must defeat every
    right disjunct; every left disjunct must be covered). *)
val decide_union :
  ?max_tracker_states:int ->
  ?max_types:int ->
  ?max_abstractions:int ->
  Crpq.t list ->
  Crpq.t list ->
  result

val decide_union_with_stats :
  ?max_tracker_states:int ->
  ?max_types:int ->
  ?max_abstractions:int ->
  Crpq.t list ->
  Crpq.t list ->
  result * stats

(** Normalization of Remark C.1: concatenate away non-free variables with
    in-degree 1 and out-degree 1 incident to two distinct atoms. *)
val normalize_concat : Crpq.t -> Crpq.t

(** Rewriting of Remark C.2 (ii): split a query into a union in which no
    two parallel atoms share a single-letter word. *)
val split_parallel_letters : Crpq.t -> Crpq.t list

(** [remove_letter_word l a] denotes {m L \setminus \{a\}} (on
    {m \varepsilon}-free [l]). *)
val remove_letter_word : Regex.t -> Word.symbol -> Regex.t
