let inverse a =
  if String.length a > 0 && a.[0] = '~' then String.sub a 1 (String.length a - 1)
  else "~" ^ a

let is_inverse a = String.length a > 0 && a.[0] = '~'

let augment g =
  let inv_edges = List.map (fun (u, a, v) -> (v, inverse a, u)) (Graph.edges g) in
  Graph.add_edges g inv_edges

let is_two_way (q : Crpq.t) =
  List.exists
    (fun (a : Crpq.atom) -> List.exists is_inverse (Regex.alphabet a.Crpq.lang))
    q.Crpq.atoms

let eval sem q g = Eval.eval sem q (augment g)

let check sem q g tuple = Eval.check sem q (augment g) tuple

let eval_bool sem q g = Eval.eval_bool sem q (augment g)

(* A regex is "pure-inverse" when every symbol is inverted: then the atom
   equals the reversed atom over the uninverted reversed language. *)
let rec uninvert_reverse = function
  | Regex.Empty -> Some Regex.Empty
  | Regex.Eps -> Some Regex.Eps
  | Regex.Sym a -> if is_inverse a then Some (Regex.Sym (inverse a)) else None
  | Regex.Seq (r, s) -> begin
    match uninvert_reverse r, uninvert_reverse s with
    | Some r', Some s' -> Some (Regex.seq s' r')
    | _ -> None
  end
  | Regex.Alt (r, s) -> begin
    match uninvert_reverse r, uninvert_reverse s with
    | Some r', Some s' -> Some (Regex.alt r' s')
    | _ -> None
  end
  | Regex.Star r -> Option.map Regex.star (uninvert_reverse r)
  | Regex.Plus r -> Option.map Regex.plus (uninvert_reverse r)
  | Regex.Opt r -> Option.map Regex.opt (uninvert_reverse r)

let try_eliminate (q : Crpq.t) =
  let convert (a : Crpq.atom) =
    let letters = Regex.alphabet a.Crpq.lang in
    if not (List.exists is_inverse letters) then Some a
    else
      match uninvert_reverse a.Crpq.lang with
      | Some lang -> Some (Crpq.atom a.Crpq.dst lang a.Crpq.src)
      | None -> None
  in
  let rec go acc = function
    | [] -> Some (Crpq.make ~free:q.Crpq.free (List.rev acc))
    | a :: rest -> begin
      match convert a with
      | Some a' -> go (a' :: acc) rest
      | None -> None
    end
  in
  go [] q.Crpq.atoms
