lib/core/containment_qinj.mli: Crpq Expansion Regex Word
