lib/core/minimize.mli: Crpq Semantics
