lib/core/containment_qinj.ml: Array Bytes Crpq Eval Expansion Hashtbl List Nfa Printf Queue Regex Semantics Stdlib String Word
