lib/core/paper_examples.ml: Crpq Expansion Graph Semantics
