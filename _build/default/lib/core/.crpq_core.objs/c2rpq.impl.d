lib/core/c2rpq.ml: Crpq Eval Graph List Option Regex String
