lib/core/semantics.ml: Format
