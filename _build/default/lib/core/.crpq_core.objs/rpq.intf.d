lib/core/rpq.mli: Crpq Graph Path Regex
