lib/core/cq.mli: Format Graph Word
