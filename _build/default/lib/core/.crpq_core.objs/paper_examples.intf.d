lib/core/paper_examples.mli: Crpq Expansion Graph Semantics
