lib/core/eval.mli: Crpq Expansion Graph Semantics
