lib/core/expansion.mli: Cq Crpq Format Graph Word
