lib/core/containment.ml: Containment_f7 Containment_qinj Cq Crpq Dfa Eval Expansion Format Graph List Option Printf Regex Semantics String
