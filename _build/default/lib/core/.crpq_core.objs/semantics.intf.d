lib/core/semantics.mli: Format
