lib/core/expansion.ml: Array Cq Crpq Format Hashtbl List Printf Regex Stdlib String Word
