lib/core/ucrpq.mli: Containment Crpq Format Graph Semantics
