lib/core/containment.mli: Cq Crpq Expansion Format Graph Semantics
