lib/core/containment_f7.mli: Cq Crpq Expansion Word
