lib/core/crpq.ml: Buffer Cq Format Hashtbl List Nfa Option Regex Stdlib String
