lib/core/ucrpq.ml: Containment Containment_qinj Crpq Eval Expansion Format List Printf Regex Semantics
