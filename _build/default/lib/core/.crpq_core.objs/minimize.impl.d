lib/core/minimize.ml: Containment Crpq Dfa Lang_ops List Nfa Regex
