lib/core/eval.ml: Array Cq Crpq Expansion Graph Hashtbl List Morphism Nfa Option Path Path_search Semantics String Word
