lib/core/rpq.ml: Array Crpq Dfa Graph Path_search Regex
