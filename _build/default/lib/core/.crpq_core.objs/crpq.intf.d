lib/core/crpq.mli: Cq Format Nfa Regex Word
