lib/core/containment_f7.ml: Array Cq Crpq Dfa Eval Expansion Graph Hashtbl Lang_ops List Morphism Nfa Option Printf Queue Regex Semantics String Word
