lib/core/cq.ml: Array Format Graph Hashtbl List Morphism Stdlib String Word
