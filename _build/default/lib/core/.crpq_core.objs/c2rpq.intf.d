lib/core/c2rpq.mli: Crpq Graph Semantics Word
