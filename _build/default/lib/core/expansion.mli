(** Expansions of CRPQs (Section 2.2) and atom-injective expansions
    (Section 4.1).

    An expansion profile picks one word from each atom's language; the
    expansion is the CQ obtained by expanding each atom into a path of
    fresh variables ({m \varepsilon} becomes an equality atom) and
    collapsing equalities.  [Exp(Q)] is the set of all expansions.

    An a-inj-expansion additionally identifies some pairs of variables
    that are not φ-atom-related (the merges [J] of Section 4.1);
    [Exp^a-inj(Q)] is the space of counterexample candidates for
    atom-injective containment (Prop 4.6). *)

type profile = Word.t array
(** one word per atom, in the order of [q.atoms] *)

(** [internal_var i j] is the name of the fresh variable reached after
    [j] letters of the expansion of atom number [i] (for
    [0 < j < length w]); exposed so that reductions can address specific
    expansion positions when building merges. *)
val internal_var : int -> int -> Cq.var

type expanded = {
  source : Crpq.t;
  profile : profile;
  cq : Cq.t;  (** the expansion {m E} (collapsed) *)
  atom_related : (Cq.var * Cq.var) list;
      (** pairs of distinct φ-atom-related variables of [cq] *)
  atom_edges : (Cq.var * Word.symbol * Cq.var) list list;
      (** per source atom: the edges of its expansion path in [cq]
          (used for the edge-injective semantics of Section 7) *)
}

(** [expand q p] computes the expansion of [q] under profile [p].
    @raise Invalid_argument if the profile length differs from the number
    of atoms or some word is not in the atom's language. *)
val expand : Crpq.t -> profile -> expanded

(** Same, without the membership check (for generated words). *)
val expand_unchecked : Crpq.t -> profile -> expanded

(** All profiles whose words have length at most [max_len]. *)
val profiles : max_len:int -> Crpq.t -> profile list

(** All expansions with per-atom words of length at most [max_len]. *)
val expansions : max_len:int -> Crpq.t -> expanded list

(** The complete, finite set [Exp(Q)] for a CRPQ{^ fin} query.
    @raise Invalid_argument on queries with infinite languages. *)
val finite_expansions : Crpq.t -> expanded list

(** All a-inj merges of an expansion: every partition of the variables
    that keeps atom-related pairs apart, the trivial partition included.
    The result enumerates {m (E \wedge J)^\equiv} for all valid [J]. *)
val merges : expanded -> expanded list

(** [merge e eqs] applies one specific set of equality atoms [J]
    (used by the reductions to build targeted a-inj-expansions).
    @raise Invalid_argument if a φ-atom-related pair would collapse. *)
val merge : expanded -> (Cq.var * Cq.var) list -> expanded

(** Bounded enumeration of [Exp^a-inj(Q)]. *)
val ainj_expansions : max_len:int -> Crpq.t -> expanded list

(** Complete [Exp^a-inj(Q)] for CRPQ{^ fin}. *)
val finite_ainj_expansions : Crpq.t -> expanded list

(** The expansion seen as a graph database with its free-node tuple. *)
val to_graph : expanded -> Graph.t * Graph.node list

val pp : Format.formatter -> expanded -> unit
