type var = string

type atom = { src : var; lbl : Word.symbol; dst : var }

type t = { atoms : atom list; free : var list }

let atom src lbl dst = { src; lbl; dst }

let make ~free atoms = { atoms = List.sort_uniq Stdlib.compare atoms; free }

let vars q =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun a ->
      Hashtbl.replace tbl a.src ();
      Hashtbl.replace tbl a.dst ())
    q.atoms;
  List.iter (fun x -> Hashtbl.replace tbl x ()) q.free;
  List.sort String.compare (Hashtbl.fold (fun x () l -> x :: l) tbl [])

let nvars q = List.length (vars q)

let is_boolean q = q.free = []

let alphabet q =
  List.sort_uniq String.compare (List.map (fun a -> a.lbl) q.atoms)

let equal q1 q2 = q1.atoms = q2.atoms && q1.free = q2.free

let to_graph q =
  let names = Array.of_list (vars q) in
  let index = Hashtbl.create 16 in
  Array.iteri (fun i x -> Hashtbl.replace index x i) names;
  let edges =
    List.map
      (fun a -> (Hashtbl.find index a.src, a.lbl, Hashtbl.find index a.dst))
      q.atoms
  in
  (Graph.make ~nnodes:(Array.length names) edges, names)

let var_node q x =
  let rec go i = function
    | [] -> invalid_arg ("Cq.var_node: unknown variable " ^ x)
    | y :: rest -> if String.equal x y then i else go (i + 1) rest
  in
  go 0 (vars q)

let free_nodes q = List.map (var_node q) q.free

let of_graph ?(free = []) g =
  let name i = "v" ^ string_of_int i in
  let atoms = List.map (fun (u, a, v) -> atom (name u) a (name v)) (Graph.edges g) in
  (* keep isolated nodes as variables by mentioning them in atoms or free;
     isolated non-free nodes are semantically irrelevant for Boolean CQs
     but we preserve them via a harmless trick: they simply disappear,
     which matches CQ-as-set-of-atoms semantics. *)
  make ~free:(List.map name free) atoms

(* Homomorphism search via the generic graph engine, fixing free
   variables positionally. *)
let hom_generic ?(distinct_of_pattern = fun _ -> []) ?(injective = false) q1 q2 =
  if List.length q1.free <> List.length q2.free then false
  else begin
    let pattern, pnames = to_graph q1 in
    let target, _ = to_graph q2 in
    let pindex = Hashtbl.create 16 in
    Array.iteri (fun i x -> Hashtbl.replace pindex x i) pnames;
    let fixed =
      List.map2
        (fun x y -> (Hashtbl.find pindex x, var_node q2 y))
        q1.free q2.free
    in
    let distinct_pairs = distinct_of_pattern (pattern, pnames) in
    Morphism.exists ~fixed ~distinct_pairs ~injective ~pattern ~target ()
  end

let hom_exists q1 q2 = hom_generic q1 q2

let inj_hom_exists q1 q2 = hom_generic ~injective:true q1 q2

let non_contracting_hom_exists q1 q2 =
  let distinct (pattern, _) =
    List.filter_map
      (fun (u, _, v) -> if u <> v then Some (u, v) else None)
      (Graph.edges pattern)
  in
  hom_generic ~distinct_of_pattern:distinct q1 q2

type with_eq = { base : t; eqs : (var * var) list }

(* union-find over variable names *)
let classes_of q =
  let parent = Hashtbl.create 16 in
  let rec find x =
    match Hashtbl.find_opt parent x with
    | None -> x
    | Some p ->
      let r = find p in
      Hashtbl.replace parent x r;
      r
  in
  let union x y =
    let rx = find x and ry = find y in
    if rx <> ry then begin
      (* keep the smaller name as representative for determinism *)
      if String.compare rx ry <= 0 then Hashtbl.replace parent ry rx
      else Hashtbl.replace parent rx ry
    end
  in
  List.iter (fun (x, y) -> union x y) q.eqs;
  find

let collapse q =
  let find = classes_of q in
  let rename x = find x in
  let atoms =
    List.map (fun a -> { src = find a.src; lbl = a.lbl; dst = find a.dst }) q.base.atoms
  in
  let free = List.map find q.base.free in
  (make ~free atoms, rename)

let eq_related q x y =
  let find = classes_of q in
  String.equal (find x) (find y)

let pp ppf q =
  let pp_free ppf = function
    | [] -> Format.pp_print_string ppf "()"
    | free ->
      Format.fprintf ppf "(%a)"
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
           Format.pp_print_string)
        free
  in
  Format.fprintf ppf "Q%a :- " pp_free q.free;
  if q.atoms = [] then Format.pp_print_string ppf "true"
  else
    Format.pp_print_list
      ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " ∧ ")
      (fun ppf a -> Format.fprintf ppf "%s -%a-> %s" a.src Word.pp_symbol a.lbl a.dst)
      ppf q.atoms

let to_string q = Format.asprintf "%a" pp q
