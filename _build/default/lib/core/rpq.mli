(** Regular path queries: the single-atom fragment
    {m Q(x,y) = x \xrightarrow{L} y}.

    Under simple-path semantics these are the classic regular simple path
    queries of Mendelzon–Wood; under standard semantics they are
    polynomial.  The containment problem for RPQs coincides for all
    three semantics with regular-language inclusion (observation opening
    the proof of Proposition F.8). *)

type t = Regex.t

val to_crpq : t -> Crpq.t

(** Pairs {m (u,v)} linked by a path with label in {m L}. *)
val eval_standard : t -> Graph.t -> (Graph.node * Graph.node) list

(** Pairs linked by a simple path (simple cycle on the diagonal). *)
val eval_simple_path : t -> Graph.t -> (Graph.node * Graph.node) list

(** Pairs linked by a trail. *)
val eval_trail : t -> Graph.t -> (Graph.node * Graph.node) list

val check_standard : t -> Graph.t -> Graph.node -> Graph.node -> bool

val check_simple_path : t -> Graph.t -> Graph.node -> Graph.node -> bool

val check_trail : t -> Graph.t -> Graph.node -> Graph.node -> bool

(** A witness simple path, if any. *)
val witness_simple_path : t -> Graph.t -> Graph.node -> Graph.node -> Path.t option

(** RPQ containment, identical under all five semantics: language
    inclusion {m L_1 \subseteq L_2}. *)
val contained : t -> t -> bool
