(** The running examples of the paper, as executable artefacts.

    These are used by the test suite and by the benchmark harness to
    regenerate the paper's figures. *)

(** {1 Example 2.1 / Figure 2} *)

(** {m Q(x,y) = x \xrightarrow{(ab)^*} y \wedge y \xrightarrow{c^*} x}. *)
val example_21_query : Crpq.t

(** The database G: nodes [u=0], [m=1], [w=2]; the {m ab}-path from [u]
    to [w] and the {m cc}-path back share the internal node [m], so
    {m (u,w) \in Q(G)^{a\text{-}inj} \setminus Q(G)^{q\text{-}inj}} while
    {m Q(G)^{st} = Q(G)^{a\text{-}inj}}. *)
val example_21_g : Graph.t

val example_21_g_tuple : Graph.node list

(** The database G′ separating all three semantics: it contains a
    component where every {m (ab)^*}-path from [u'] to [v'] repeats a
    node (a forced {m b}-self-loop), so
    {m (u',v') \in Q(G')^{st} \setminus Q(G')^{a\text{-}inj}}, and a copy
    of G for the a-inj/q-inj separation. *)
val example_21_g' : Graph.t

(** The tuple witnessing {m st \setminus a\text{-}inj} in G′. *)
val example_21_g'_tuple_st : Graph.node list

(** The tuple witnessing {m a\text{-}inj \setminus q\text{-}inj} in G′. *)
val example_21_g'_tuple_ainj : Graph.node list

(** {1 Section 2.2: expansions of the running query} *)

(** The expansion {m E_1(x,x) = x \xrightarrow{a} z \wedge z
    \xrightarrow{b} x} (profile {m ab, \varepsilon}). *)
val example_22_e1 : Expansion.expanded

(** The expansion {m E_2(x,y) = x \xrightarrow{a} z \wedge z
    \xrightarrow{b} y \wedge y \xrightarrow{c} x} (profile {m ab, c}). *)
val example_22_e2 : Expansion.expanded

(** {1 Example 4.7: incomparability of the containment relations} *)

val example_47_q1 : Crpq.t  (** {m x \xrightarrow{a} y \wedge y \xrightarrow{b} z} *)

val example_47_q2 : Crpq.t  (** {m x \xrightarrow{ab} y} *)

val example_47_q1' : Crpq.t  (** {m x \xrightarrow{a} y \wedge x \xrightarrow{b} y} *)

val example_47_q2' : Crpq.t
(** {m x \xrightarrow{a} y \wedge x' \xrightarrow{b} y'} *)

(** The eight verdicts of Example 4.7 as (name, semantics, lhs, rhs,
    expected) tuples. *)
val example_47_expectations :
  (string * Semantics.t * Crpq.t * Crpq.t * bool) list
