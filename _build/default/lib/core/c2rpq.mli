(** Two-way CRPQs (C2RPQs): regular expressions over the alphabet
    {m \Sigma \cup \Sigma^-}, navigating edges in both directions — the
    UC2RPQ extension direction named in Section 7.

    An inverse symbol is written [~a]; evaluation interprets
    {m x \xrightarrow{a^-} y} as traversing an {m a}-edge from head to
    tail.  Operationally, a query is evaluated over the {e augmented}
    database in which every edge {m u \xrightarrow{a} v} also appears as
    {m v \xrightarrow{\sim a} u}.

    Under the injective node semantics this yields the natural notion of
    two-way simple paths (no repeated nodes, whichever direction each
    step takes).  For the edge semantics, an edge and its inverse are
    treated as {e distinct} edges (orientation-sensitive trails); the
    alternative convention is noted in DESIGN.md. *)

(** [inverse a] is the inverse symbol {m a^-}; involutive
    ([inverse (inverse a) = a]). *)
val inverse : Word.symbol -> Word.symbol

val is_inverse : Word.symbol -> bool

(** The two-way augmentation {m G^\pm}. *)
val augment : Graph.t -> Graph.t

(** Does the query mention an inverse symbol? *)
val is_two_way : Crpq.t -> bool

(** {1 Evaluation over the augmented database} *)

val eval : Semantics.t -> Crpq.t -> Graph.t -> Graph.node list list

val check : Semantics.t -> Crpq.t -> Graph.t -> Graph.node list -> bool

val eval_bool : Semantics.t -> Crpq.t -> Graph.t -> bool

(** {1 Syntactic elimination}

    When every atom's language, after moving inverses outward, uses
    inverse symbols only on whole atoms (e.g. {m x \xrightarrow{(a^-)^+}
    y}), the query is equivalent to a plain CRPQ with the atom
    reversed.  [try_eliminate] performs this rewriting when possible. *)
val try_eliminate : Crpq.t -> Crpq.t option
