type t =
  | St
  | A_inj
  | Q_inj
  | A_edge_inj
  | Q_edge_inj

let node_semantics = [ St; A_inj; Q_inj ]

let all = [ St; A_inj; Q_inj; A_edge_inj; Q_edge_inj ]

let leq s1 s2 =
  match s1, s2 with
  | x, y when x = y -> true
  | Q_inj, (A_inj | St) | A_inj, St -> true
  | Q_edge_inj, (A_edge_inj | St) | A_edge_inj, St -> true
  (* node-injectivity implies edge-injectivity on the same level *)
  | Q_inj, (A_edge_inj | Q_edge_inj) | A_inj, A_edge_inj -> true
  | _ -> false

let to_string = function
  | St -> "st"
  | A_inj -> "a-inj"
  | Q_inj -> "q-inj"
  | A_edge_inj -> "a-edge-inj"
  | Q_edge_inj -> "q-edge-inj"

let of_string = function
  | "st" | "standard" -> Some St
  | "a-inj" | "atom-injective" -> Some A_inj
  | "q-inj" | "query-injective" -> Some Q_inj
  | "a-edge-inj" | "atom-trail" -> Some A_edge_inj
  | "q-edge-inj" | "query-trail" -> Some Q_edge_inj
  | _ -> None

let pp ppf s = Format.pp_print_string ppf (to_string s)
