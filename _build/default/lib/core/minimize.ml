let equivalent ?bound sem q1 q2 =
  match
    ( Containment.verdict_bool (Containment.decide ?bound sem q1 q2),
      Containment.verdict_bool (Containment.decide ?bound sem q2 q1) )
  with
  | Some a, Some b -> Some (a && b)
  | _ -> None

let rec remove_once x = function
  | [] -> []
  | y :: rest -> if y = x then rest else y :: remove_once x rest

let drop_redundant_atoms ?bound sem q =
  let rec go (q : Crpq.t) =
    let try_drop a =
      let q' = Crpq.make ~free:q.Crpq.free (remove_once a q.Crpq.atoms) in
      (* dropping an atom can only grow the answer set, so only the
         backward containment (q' ⊆ q) needs certifying; still check both
         to stay robust to future semantics *)
      match equivalent ?bound sem q q' with
      | Some true -> Some q'
      | _ -> None
    in
    if List.length q.Crpq.atoms <= 1 then q
    else
      match List.find_map try_drop q.Crpq.atoms with
      | Some q' -> go q'
      | None -> q
  in
  go q

let is_satisfiable q = Crpq.epsilon_free_disjuncts q <> []

let prune_languages (q : Crpq.t) =
  let simplify lang =
    if Regex.is_empty_lang lang then Regex.empty
    else begin
      (* try the state-eliminated regex of the minimal DFA; keep the
         smaller of the two *)
      let alphabet = Regex.alphabet lang in
      match alphabet with
      | [] -> if Regex.nullable lang then Regex.eps else Regex.empty
      | _ ->
        let candidate =
          Lang_ops.of_nfa
            (Lang_ops.nfa_of_dfa
               (Dfa.minimize (Dfa.of_nfa ~alphabet (Nfa.of_regex lang))))
        in
        if Regex.size candidate < Regex.size lang then candidate else lang
    end
  in
  Crpq.make ~free:q.Crpq.free
    (List.map (fun (a : Crpq.atom) -> { a with Crpq.lang = simplify a.Crpq.lang }) q.Crpq.atoms)
