(** Words over a finite alphabet of symbols.

    Symbols are arbitrary strings: the PCP reduction of Theorem 5.2 uses
    multi-character symbols such as ["I1"], ["#inf"] or hatted twins
    (["^a"]).  A word is a list of symbols; the empty list is the empty
    word {m \varepsilon}. *)

type symbol = string

type t = symbol list

val epsilon : t

val compare : t -> t -> int

val equal : t -> t -> bool

(** [concat u v] is the word {m u \cdot v}. *)
val concat : t -> t -> t

val length : t -> int

(** [hat s] is the hatted twin {m \hat{s}} of a symbol, written [^s]. *)
val hat : symbol -> symbol

(** [unhat s] removes one hat, if any. *)
val unhat : symbol -> symbol

val is_hatted : symbol -> bool

(** [of_string "abc"] splits a string of single-character symbols.
    Multi-character symbols can be written between angle brackets, e.g.
    ["a<I1>b"] is the word [["a"; "I1"; "b"]]. *)
val of_string : string -> t

val to_string : t -> string

val pp : Format.formatter -> t -> unit

val pp_symbol : Format.formatter -> symbol -> unit
