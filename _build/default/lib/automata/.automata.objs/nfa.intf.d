lib/automata/nfa.mli: Format Regex Word
