lib/automata/lang_ops.ml: Array Dfa List Nfa Regex String
