lib/automata/regex.mli: Format Word
