lib/automata/word.mli: Format
