lib/automata/regex.ml: Buffer Format List Printf Set Stdlib String Word
