lib/automata/lang_ops.mli: Dfa Nfa Regex Word
