lib/automata/dfa.mli: Nfa Regex Word
