lib/automata/word.ml: Format List Stdlib String
