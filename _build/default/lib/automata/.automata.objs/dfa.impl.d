lib/automata/dfa.ml: Array Hashtbl List Nfa Queue Stdlib String Word
