lib/automata/nfa.ml: Array Format Hashtbl Int List Option Queue Regex Set Stdlib String Word
