(** Deterministic finite automata over an explicit alphabet.

    Used for language-level decision procedures: inclusion, equivalence,
    complement.  These back the regular-language reasoning needed by the
    containment deciders (e.g. RPQ/RPQ containment, which coincides for
    all three semantics — Proposition F.8's observation). *)

type t = {
  alphabet : Word.symbol array;
  nstates : int;
  start : int;
  finals : bool array;
  next : int array array;  (** [next.(q).(i)]: successor of [q] on [alphabet.(i)] *)
}

(** Subset construction.  [alphabet] defaults to the NFA's own alphabet;
    pass a larger one when comparing languages over a common alphabet. *)
val of_nfa : ?alphabet:Word.symbol list -> Nfa.t -> t

val accepts : t -> Word.t -> bool

val complement : t -> t

val intersect : t -> t -> t

val is_empty : t -> bool

(** Moore partition refinement. *)
val minimize : t -> t

(** A shortest accepted word, if any. *)
val shortest_word : t -> Word.t option

(** {1 Language-level decisions on NFAs} *)

(** [included a b] decides {m L(a) \subseteq L(b)}. *)
val included : Nfa.t -> Nfa.t -> bool

(** [equivalent a b] decides {m L(a) = L(b)}. *)
val equivalent : Nfa.t -> Nfa.t -> bool

(** [regex_included r s] decides {m L(r) \subseteq L(s)}. *)
val regex_included : Regex.t -> Regex.t -> bool

val regex_equivalent : Regex.t -> Regex.t -> bool
