type symbol = string

type t = symbol list

let epsilon = []

let compare = Stdlib.compare

let equal u v = compare u v = 0

let concat u v = u @ v

let length = List.length

let hat s = "^" ^ s

let is_hatted s = String.length s > 0 && s.[0] = '^'

let unhat s = if is_hatted s then String.sub s 1 (String.length s - 1) else s

let of_string str =
  let n = String.length str in
  let rec go i acc =
    if i >= n then List.rev acc
    else if str.[i] = '<' then begin
      match String.index_from_opt str i '>' with
      | None -> invalid_arg "Word.of_string: unterminated '<'"
      | Some j -> go (j + 1) (String.sub str (i + 1) (j - i - 1) :: acc)
    end
    else go (i + 1) (String.make 1 str.[i] :: acc)
  in
  go 0 []

let symbol_to_string s = if String.length s = 1 then s else "<" ^ s ^ ">"

let to_string w = String.concat "" (List.map symbol_to_string w)

let pp_symbol ppf s = Format.pp_print_string ppf (symbol_to_string s)

let pp ppf w =
  if w = [] then Format.pp_print_string ppf "ε"
  else Format.pp_print_string ppf (to_string w)
