(** Regular expressions over an alphabet of string symbols.

    This is the syntax used for CRPQ atom languages {m x \xrightarrow{L} y}.
    The module provides smart constructors, a concrete syntax with parser
    and printer, Brzozowski-derivative matching (used as an independent
    oracle against {!Nfa} in the test suite), and enumeration of language
    words, which drives the expansion machinery of the paper (Section
    2.2). *)

type t =
  | Empty  (** the empty language {m \emptyset} *)
  | Eps  (** the singleton {m \{\varepsilon\}} *)
  | Sym of Word.symbol
  | Seq of t * t
  | Alt of t * t
  | Star of t
  | Plus of t
  | Opt of t

(** {1 Smart constructors}

    These perform local simplifications ([Empty] absorption, [Eps]
    elimination, idempotent star). *)

val empty : t

val eps : t

val sym : Word.symbol -> t

val seq : t -> t -> t

val alt : t -> t -> t

val star : t -> t

val plus : t -> t

val opt : t -> t

val seq_list : t list -> t

val alt_list : t list -> t

(** [word w] denotes the singleton language {m \{w\}}. *)
val word : Word.t -> t

(** [alt_words ws] denotes the finite language [ws]. *)
val alt_words : Word.t list -> t

(** {1 Predicates and measures} *)

(** [nullable r] holds iff {m \varepsilon \in L(r)}. *)
val nullable : t -> bool

(** [is_empty_lang r] holds iff {m L(r) = \emptyset}. *)
val is_empty_lang : t -> bool

(** [is_finite r] holds iff the regex has no [Star]/[Plus] over a
    non-trivial language, i.e. the query class CRPQ{^ fin} of the paper. *)
val is_finite : t -> bool

(** All symbols occurring in the expression. *)
val alphabet : t -> Word.symbol list

(** Number of AST nodes. *)
val size : t -> int

val equal : t -> t -> bool

val compare : t -> t -> int

(** {1 Semantics} *)

(** Brzozowski derivative {m a^{-1}L}. *)
val derivative : Word.symbol -> t -> t

(** [matches r w] decides {m w \in L(r)} via derivatives. *)
val matches : t -> Word.t -> bool

(** Language of the reversed expression. *)
val reverse : t -> t

(** [remove_eps r] denotes {m L(r) \setminus \{\varepsilon\}}. *)
val remove_eps : t -> t

(** {1 Enumeration} *)

(** [enumerate ~max_len r] lists all words of {m L(r)} of length at most
    [max_len], in length-lexicographic order and without duplicates. *)
val enumerate : max_len:int -> t -> Word.t list

(** [words_of_finite r] is the exact, finite language of [r].
    @raise Invalid_argument if [is_finite r] is false. *)
val words_of_finite : t -> Word.t list

(** A shortest word of the language, if non-empty. *)
val shortest_word : t -> Word.t option

(** {1 Concrete syntax}

    Grammar: alternation [|], concatenation by juxtaposition, postfix
    [*], [+], [?], grouping with parentheses, [%] for {m \varepsilon},
    [!] for {m \emptyset}; a symbol is a single character or [<name>]. *)

exception Parse_error of string

val parse : string -> t

val to_string : t -> string

val pp : Format.formatter -> t -> unit
