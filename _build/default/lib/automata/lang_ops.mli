(** Regular-language operations closed over {!Regex.t}.

    Intersection, complement and difference are not regex constructors;
    these functions compute them through automata (product / subset
    construction) and convert back with Brzozowski–McCluskey state
    elimination.  They let CRPQ rewritings stay inside the regex-based
    atom representation (e.g. "this language minus those words"). *)

(** [of_nfa a] is a regular expression denoting {m L(a)} (state
    elimination; the result can be large but is exact). *)
val of_nfa : Nfa.t -> Regex.t

(** View a DFA as an NFA (e.g. to feed a minimized DFA back into
    {!of_nfa}). *)
val nfa_of_dfa : Dfa.t -> Nfa.t

(** [intersect r s] denotes {m L(r) \cap L(s)}. *)
val intersect : Regex.t -> Regex.t -> Regex.t

(** [complement ~alphabet r] denotes {m \Sigma^* \setminus L(r)} over the
    given alphabet. *)
val complement : alphabet:Word.symbol list -> Regex.t -> Regex.t

(** [difference r s] denotes {m L(r) \setminus L(s)} (over the union of
    both alphabets). *)
val difference : Regex.t -> Regex.t -> Regex.t

(** [restrict_min_length r n] denotes the words of {m L(r)} of length at
    least [n]. *)
val restrict_min_length : Regex.t -> int -> Regex.t
