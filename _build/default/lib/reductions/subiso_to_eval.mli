(** The lower-bound construction of Proposition 3.1: subgraph isomorphism
    reduces to CRPQ evaluation under both injective semantics.

    For a Boolean CQ {m Q} and a database {m G}:
    {m Q \xrightarrow{inj} G} iff {m Q(G)^{q\text{-}inj} \neq \emptyset}
    iff {m Q^+(G^+)^{a\text{-}inj} \neq \emptyset}, where {m Q^+}
    [resp. {m G^+}] adds, for a fresh symbol {m R}, an {m R}-atom
    [edge] between every ordered pair of distinct variables
    [vertices]. *)

(** Fresh symbol used for the saturation. *)
val r_symbol : Word.symbol

(** [saturate_query q] is {m Q^+}.
    @raise Invalid_argument if [q] already uses {!r_symbol}. *)
val saturate_query : Cq.t -> Crpq.t

(** [saturate_graph g] is {m G^+}. *)
val saturate_graph : Graph.t -> Graph.t

(** The three equivalent decisions of Prop 3.1, for cross-checking:
    (subgraph-iso, q-inj evaluation, saturated a-inj evaluation). *)
val verify : Cq.t -> Graph.t -> bool * bool * bool
