lib/reductions/threecol_to_cq.ml: Coloring Containment Cq List Printf Semantics
