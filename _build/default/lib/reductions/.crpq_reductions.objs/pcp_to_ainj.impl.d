lib/reductions/pcp_to_ainj.ml: Array Containment Crpq Eval Expansion List Pcp Printf Regex Semantics String Word
