lib/reductions/qbf_to_ainj.ml: Array Containment Crpq Expansion List Printf Qbf Regex Semantics String
