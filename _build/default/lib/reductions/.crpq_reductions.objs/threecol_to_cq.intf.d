lib/reductions/threecol_to_cq.mli: Cq
