lib/reductions/subiso_to_eval.mli: Cq Crpq Graph Word
