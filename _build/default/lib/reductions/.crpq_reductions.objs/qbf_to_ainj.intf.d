lib/reductions/qbf_to_ainj.mli: Crpq Expansion Qbf
