lib/reductions/gcp_to_qinj.mli: Crpq Expansion Gcp
