lib/reductions/gcp_to_qinj.ml: Array Containment Crpq Expansion Gcp List Printf Regex Semantics String
