lib/reductions/pcp_to_ainj.mli: Crpq Expansion Pcp Word
