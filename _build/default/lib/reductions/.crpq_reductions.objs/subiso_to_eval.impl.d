lib/reductions/subiso_to_eval.ml: Cq Crpq Eval Graph List Morphism Regex Semantics
