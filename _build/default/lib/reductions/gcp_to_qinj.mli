(** The reduction of Theorem 6.1: GCP₂ to CRPQ{^ fin}/CQ
    {e non}-containment under query-injective semantics (Figure 6).

    Over the alphabet {m \{E, 1, 2, \#\}}:

    - {m Q_G} is the CQ of the input graph with an {m E}-atom in both
      directions per undirected edge, and {m K_n} the CQ of the
      {m n}-clique;
    - {m i\text{-}ext(Q)} adds a loop {m x \xrightarrow{i} x} to every
      variable; {m (1{+}2)\text{-}ext} adds {m x \xrightarrow{1+2} x};
      {m (12)\text{-}ext} adds both loops;
    - {m Q_1} chains (with all-pairs {m \#}-atoms between consecutive
      blocks) {m (12)\text{-}ext(K_n) \to (1{+}2)\text{-}ext(Q_G) \to
      (12)\text{-}ext(K_n)}: its expansions choose an {m i}-loop per
      vertex of {m G}, i.e. a partition {m V_1 \dot\cup V_2};
    - {m Q_2 = 1\text{-}ext(K_n) \to 2\text{-}ext(K_n)} (a CQ): it maps
      injectively into an expansion iff some {m i\text{-}ext(K_n)} maps
      into the middle gadget, i.e. iff {m G|_{V_i}} contains an
      {m n}-clique.

    Hence {m Q_1 \not\subseteq_{q\text{-}inj} Q_2} iff the GCP₂ instance
    is positive. *)

type encoding = {
  q1 : Crpq.t;  (** CRPQ{^ fin}; languages are unions of single letters *)
  q2 : Crpq.t;  (** a CQ *)
  instance : Gcp.t;
}

val encode : Gcp.t -> encoding

(** The expansion of [q1] selecting loop [1] exactly on the vertices in
    the mask (i.e. the partition {m V_1} = mask). *)
val expansion_of_partition : encoding -> bool array -> Expansion.expanded

(** End-to-end check on one instance: decides the GCP₂ instance through
    the query containment problem and returns (via queries, via brute
    force). *)
val verify : Gcp.t -> bool * bool
