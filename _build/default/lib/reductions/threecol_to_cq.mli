(** The Chandra–Merlin NP-hardness of CQ/CQ containment via
    3-colorability (used for the lower bounds in Figure 1's CQ/CQ
    cells): an undirected graph {m G} is 3-colorable iff
    {m Q_{K_3} \subseteq_{st} Q_G}, where both CQs have an {m e}-atom in
    each direction per edge. *)

(** [queries ~nvertices edges] is the pair {m (Q_{K_3}, Q_G)}. *)
val queries : nvertices:int -> (int * int) list -> Cq.t * Cq.t

(** (via containment, via brute-force coloring). *)
val verify : nvertices:int -> (int * int) list -> bool * bool
