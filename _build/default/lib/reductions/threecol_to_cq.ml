let cq_of_undirected prefix edges =
  let atoms =
    List.concat_map
      (fun (u, v) ->
        let x = Printf.sprintf "%s%d" prefix u
        and y = Printf.sprintf "%s%d" prefix v in
        [ Cq.atom x "e" y; Cq.atom y "e" x ])
      edges
  in
  Cq.make ~free:[] atoms

let k3_edges = [ (0, 1); (0, 2); (1, 2) ]

let queries ~nvertices edges =
  ignore nvertices;
  (cq_of_undirected "k" k3_edges, cq_of_undirected "v" edges)

let verify ~nvertices edges =
  let qk3, qg = queries ~nvertices edges in
  let via_containment = Containment.cq_cq Semantics.St qk3 qg in
  let via_coloring = Coloring.k_colorable ~k:3 ~nvertices edges in
  (via_containment, via_coloring)
