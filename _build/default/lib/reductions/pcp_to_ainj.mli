(** The undecidability reduction of Theorem 5.2 (Appendix D): PCP to
    CRPQ/CRPQ{^ fin} containment under atom-injective semantics.

    For a PCP instance {m (u_1,v_1),\dots,(u_\ell,v_\ell)} over
    {m \Sigma}, Boolean CRPQs {m Q_1} and {m Q_2} over the alphabet
    {m \mathbb A \cup \widehat{\mathbb A}} are built (Figure 11) such
    that the instance has a solution iff
    {m Q_1 \not\subseteq_{a\text{-}inj} Q_2}.

    {m Q_1} carries four long atoms around a middle variable {m x} —
    index words ({m L_I}, {m \widehat L_I}) and letter words
    ({m L_a}, {m \widehat L_a} built from the blocks {m U_i, V_i}) —
    plus guard atoms.  The {e well-formed} a-inj-expansions of {m Q_1}
    are exactly the encodings of PCP solutions: four words agreeing on
    the index sequence, on the induced letter sequences, and on the
    final {m \Sigma}-word, with the merge pattern of Figure 12
    ({m s_j = s'_j}, {m r_j = r'_j}, {m t_j \neq t'_j}).

    {m Q_2} (a CRPQ{^ fin}) detects every violation of well-formedness
    by a simple cycle with label in {m K} or a simple path with label in
    {m M} (Claim D.1); the single query
    {m Q_2 = x \xrightarrow{K} x \wedge y \xrightarrow{L} x \wedge
    y \xrightarrow{M} z} simulates the union
    {m Q_2^\circlearrowleft \vee Q_2^\to} (Claim D.3). *)

type encoding = {
  q1 : Crpq.t;
  q2 : Crpq.t;  (** the single right-hand query of Figure 11 *)
  q2_cycle : Crpq.t;  (** {m Q_2^\circlearrowleft = x \xrightarrow{K^\circlearrowleft} x} *)
  q2_path : Crpq.t;  (** {m Q_2^\to = y \xrightarrow{M^\to} z} *)
  instance : Pcp.t;
}

(** @raise Invalid_argument if the instance alphabet is not made of
    lowercase letters. *)
val encode : Pcp.t -> encoding

(** {1 Words of the encoding} *)

(** {m U_i} (1-based index): {m a_1 \$ ■ \cdots a_k \$' ■'}. *)
val u_word : Pcp.t -> int -> Word.t

(** {m V_i}: {m ■' \$' \hat a_k \cdots ■ \$ \hat a_1} (hatted). *)
val v_word : Pcp.t -> int -> Word.t

(** The four main words of the expansion encoding an index sequence:
    {m (w_I, \widehat w_a, \widehat w_I, w_a)}. *)
val solution_words : Pcp.t -> int list -> Word.t * Word.t * Word.t * Word.t

(** {1 Expansions} *)

(** The well-formed a-inj-expansion encoding a solution candidate (the
    index sequence need not actually solve the instance — well-formed
    expansions of non-solutions do not exist as counterexamples, which
    is checked by the tests). *)
val well_formed_expansion : encoding -> int list -> Expansion.expanded

(** The same expansion without any merges (ill-formed: {m Q_2} must map
    into it). *)
val unmerged_expansion : encoding -> int list -> Expansion.expanded

(** An ill-formed expansion pairing two different index sequences on the
    {m L_I} / {m \widehat L_I} atoms. *)
val mismatched_expansion : encoding -> int list -> int list -> Expansion.expanded

(** [is_counterexample enc e]: does the expansion defeat [q2]
    (atom-injective semantics)? *)
val is_counterexample : encoding -> Expansion.expanded -> bool

(** Claim D.3 cross-check: [q2] accepts iff the union
    {m Q_2^\circlearrowleft \vee Q_2^\to} accepts. *)
val union_agrees : encoding -> Expansion.expanded -> bool

(** End-to-end demonstration: encodes the instance, tests the expansion
    of the candidate solution, and returns (is counterexample, candidate
    really solves the instance). *)
val verify_candidate : Pcp.t -> int list -> bool * bool
