(** The reduction of Theorem 6.2 (Appendix E, Figure 13):
    {m \forall\exists}-QBF to CQ/CRPQ{^ fin} containment under
    atom-injective semantics.

    Structure (over labels {m a, t, f, r}, the {m x_i}, the {m y_j}):

    - {m Q_1} (a CQ) has an {m a}-spine {m p_0 \to \dots \to p_4}, an
      E-gadget on {m p_0, p_1, p_3, p_4} and the D-gadget on {m p_2}.
      In D, every universal {m x_i} owns a positive chain
      {m d_i \xrightarrow{t} m_i \xrightarrow{t} w_i} and a negative
      chain {m d_i \xrightarrow{f} m'_i \xrightarrow{f} w'_i}.
      {m r}-atoms saturate all variable pairs {e except}
      {m (d_i, w_i)} and {m (d_i, w'_i)}: the a-inj-expansions of
      {m Q_1} may merge exactly these, and merging {m (d_i,w_i)}
      [resp. {m (d_i,w'_i)}] destroys the {e simple} {m tt}-path
      [resp. {m ff}-path], i.e. sets {m x_i} false [resp. true].
      Existential {m y_j} targets are the two global nodes
      {m Y_t^j, Y_f^j}; the D-gadget reaches them with matching labels
      only, the E-gadgets with both labels.
    - {m Q_2} (CRPQ{^ fin}, word languages of length ≤ 2) has one DAG
      per clause: three literal gadgets chained by {m a}-atoms, where a
      positive [x] literal is {m \cdot \xrightarrow{x_k} \cdot
      \xrightarrow{tt} \cdot}, a negative one uses {m ff}, and {m y}
      literals end in the clause-shared variable {m y_{k,tf}}.

    Then {m Q_1 \subseteq_{a\text{-}inj} Q_2} iff {m \Phi} is valid. *)

type encoding = {
  q1 : Crpq.t;  (** a CQ (every language a single letter) *)
  q2 : Crpq.t;  (** CRPQ{^ fin} with word languages of length ≤ 2 *)
  instance : Qbf.t;
}

val encode : Qbf.t -> encoding

(** The a-inj-expansion of [q1] encoding a universal assignment:
    [assignment.(i)] (1-based) merges {m (d_i, w'_i)} when true
    ({m x_i} true) and {m (d_i, w_i)} when false. *)
val expansion_of_assignment : encoding -> bool array -> Expansion.expanded

(** Decide the QBF through the containment problem and through brute
    force: (via queries, via brute force). *)
val verify : Qbf.t -> bool * bool
