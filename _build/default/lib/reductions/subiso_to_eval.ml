let r_symbol = "R"

let saturate_query (q : Cq.t) =
  if List.mem r_symbol (Cq.alphabet q) then
    invalid_arg "Subiso_to_eval.saturate_query: query already uses R";
  let vars = Cq.vars q in
  let r_atoms =
    List.concat_map
      (fun x ->
        List.filter_map
          (fun y -> if x <> y then Some (Crpq.atom x (Regex.sym r_symbol) y) else None)
          vars)
      vars
  in
  let base = (Crpq.of_cq q).Crpq.atoms in
  Crpq.make ~free:q.Cq.free (base @ r_atoms)

let saturate_graph g =
  let nodes = Graph.nodes g in
  let r_edges =
    List.concat_map
      (fun u ->
        List.filter_map (fun v -> if u <> v then Some (u, r_symbol, v) else None) nodes)
      nodes
  in
  Graph.add_edges g r_edges

let verify q g =
  let pattern, _ = Cq.to_graph q in
  let subiso = Morphism.subgraph_iso ~pattern ~target:g in
  let qinj = Eval.eval_bool Semantics.Q_inj (Crpq.of_cq q) g in
  let ainj = Eval.eval_bool Semantics.A_inj (saturate_query q) (saturate_graph g) in
  (subiso, qinj, ainj)
