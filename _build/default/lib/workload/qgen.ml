type shape =
  | Chain
  | Cycle
  | Star
  | Random

let pick rng l = List.nth l (Random.State.int rng (List.length l))

let rec random_regex ~rng ~labels ~depth ~cls =
  let leaf () = Regex.sym (pick rng labels) in
  if depth <= 0 then leaf ()
  else begin
    let sub () = random_regex ~rng ~labels ~depth:(depth - 1) ~cls in
    match cls with
    | Crpq.Class_cq -> leaf ()
    | Crpq.Class_fin -> begin
      match Random.State.int rng 4 with
      | 0 -> leaf ()
      | 1 -> Regex.seq (sub ()) (sub ())
      | 2 -> Regex.alt (sub ()) (sub ())
      | _ -> Regex.opt (sub ())
    end
    | Crpq.Class_crpq -> begin
      match Random.State.int rng 6 with
      | 0 -> leaf ()
      | 1 -> Regex.seq (sub ()) (sub ())
      | 2 -> Regex.alt (sub ()) (sub ())
      | 3 -> Regex.opt (sub ())
      | 4 -> Regex.star (sub ())
      | _ -> Regex.plus (sub ())
    end
  end

let random_crpq ~rng ?(shape = Random) ~labels ~nvars ~natoms ~arity ~cls () =
  let var i = Printf.sprintf "v%d" i in
  let endpoint_pairs =
    List.init natoms (fun i ->
        match shape with
        | Chain -> (var (i mod nvars), var ((i + 1) mod nvars))
        | Cycle -> (var (i mod nvars), var ((i + 1) mod nvars))
        | Star ->
          if Random.State.bool rng then (var 0, var (1 + (i mod (max 1 (nvars - 1)))))
          else (var (1 + (i mod (max 1 (nvars - 1)))), var 0)
        | Random ->
          (var (Random.State.int rng nvars), var (Random.State.int rng nvars)))
  in
  let atoms =
    List.map
      (fun (s, t) ->
        let lang =
          (* avoid empty languages; retry a few times *)
          let rec gen n =
            let r = random_regex ~rng ~labels ~depth:2 ~cls in
            if Regex.is_empty_lang r && n > 0 then gen (n - 1) else r
          in
          gen 3
        in
        Crpq.atom s lang t)
      endpoint_pairs
  in
  let free = List.init arity (fun i -> var (i mod nvars)) in
  Crpq.make ~free atoms

let random_cq ~rng ~labels ~nvars ~natoms ~arity () =
  let q = random_crpq ~rng ~labels ~nvars ~natoms ~arity ~cls:Crpq.Class_cq () in
  match Crpq.to_cq q with
  | Some cq -> cq
  | None -> assert false

let contained_pair ~rng ~labels ~nvars ~natoms ~cls () =
  let q1 = random_crpq ~rng ~labels ~nvars ~natoms ~arity:0 ~cls () in
  (* q2: drop some atoms and relax some languages of q1 *)
  let q2_atoms =
    List.filter_map
      (fun (a : Crpq.atom) ->
        if Random.State.int rng 4 = 0 && List.length q1.Crpq.atoms > 1 then None
        else begin
          let lang =
            match Random.State.int rng 3 with
            | 0 when cls = Crpq.Class_crpq -> Regex.plus a.Crpq.lang
            | 1 when cls <> Crpq.Class_cq ->
              Regex.alt a.Crpq.lang (Regex.sym (pick rng labels))
            | _ -> a.Crpq.lang
          in
          Some { a with Crpq.lang }
        end)
      q1.Crpq.atoms
  in
  (q1, Crpq.make ~free:[] q2_atoms)
