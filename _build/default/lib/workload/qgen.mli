(** Random query generators for tests and benchmark workloads. *)

type shape =
  | Chain  (** {m x_0 \to x_1 \to \dots} *)
  | Cycle
  | Star  (** all atoms share a central variable *)
  | Random  (** uniformly random endpoints *)

(** Random regular expression over [labels] with at most [depth] nested
    operators; [cls] restricts the class. *)
val random_regex :
  rng:Random.State.t ->
  labels:Word.symbol list ->
  depth:int ->
  cls:Crpq.cls ->
  Regex.t

(** Random CRPQ of a given class.  [nvars] variables, [natoms] atoms,
    [arity] free variables. *)
val random_crpq :
  rng:Random.State.t ->
  ?shape:shape ->
  labels:Word.symbol list ->
  nvars:int ->
  natoms:int ->
  arity:int ->
  cls:Crpq.cls ->
  unit ->
  Crpq.t

(** Random CQ (through {!random_crpq} with [Class_cq]). *)
val random_cq :
  rng:Random.State.t ->
  labels:Word.symbol list ->
  nvars:int ->
  natoms:int ->
  arity:int ->
  unit ->
  Cq.t

(** A pair [(q1, q2)] biased towards containment: [q2] is derived from
    [q1] by deleting atoms and relaxing languages, so that
    {m Q_1 \subseteq_{st} Q_2} often holds. *)
val contained_pair :
  rng:Random.State.t ->
  labels:Word.symbol list ->
  nvars:int ->
  natoms:int ->
  cls:Crpq.cls ->
  unit ->
  Crpq.t * Crpq.t
