lib/workload/qgen.ml: Crpq List Printf Random Regex
