lib/workload/qgen.mli: Cq Crpq Random Regex Word
