lib/workload/suite.mli: Crpq Gcp Graph Pcp Qbf Semantics
