lib/workload/suite.ml: Crpq Gcp Generate Graph List Pcp Qbf Qgen Random Semantics
