type t = {
  nvertices : int;
  edges : (int * int) list;
  n : int;
}

let make ~nvertices ~n edges =
  if n < 2 then invalid_arg "Gcp.make: clique size must be >= 2";
  let norm (u, v) = if u <= v then (u, v) else (v, u) in
  let edges =
    List.sort_uniq compare
      (List.filter_map
         (fun (u, v) ->
           if u < 0 || v < 0 || u >= nvertices || v >= nvertices then
             invalid_arg "Gcp.make: vertex out of range"
           else if u = v then None
           else Some (norm (u, v)))
         edges)
  in
  { nvertices; edges; n }

let adjacent t =
  let adj = Array.make_matrix t.nvertices t.nvertices false in
  List.iter
    (fun (u, v) ->
      adj.(u).(v) <- true;
      adj.(v).(u) <- true)
    t.edges;
  adj

(* does the predicate-selected vertex set contain an n-clique? *)
let has_clique t keep =
  let adj = adjacent t in
  let vertices =
    List.filter keep (List.init t.nvertices (fun v -> v))
  in
  let rec extend clique candidates =
    if List.length clique = t.n then true
    else
      match candidates with
      | [] -> false
      | v :: rest ->
        (* take v if it connects to the whole clique *)
        (List.for_all (fun u -> adj.(u).(v)) clique
        && extend (v :: clique) rest)
        || extend clique rest
  in
  extend [] vertices

let side_ok t keep = not (has_clique t keep)

let witness t =
  let mask = Array.make t.nvertices false in
  let rec go v =
    if v = t.nvertices then
      if side_ok t (fun u -> mask.(u)) && side_ok t (fun u -> not mask.(u)) then
        Some (Array.copy mask)
      else None
    else begin
      mask.(v) <- false;
      match go (v + 1) with
      | Some m -> Some m
      | None ->
        mask.(v) <- true;
        let r = go (v + 1) in
        mask.(v) <- false;
        r
    end
  in
  go 0

let decide t = witness t <> None

let complete m ~n =
  let edges = ref [] in
  for u = 0 to m - 1 do
    for v = u + 1 to m - 1 do
      edges := (u, v) :: !edges
    done
  done;
  make ~nvertices:m ~n !edges

let cycle m ~n =
  make ~nvertices:m ~n (List.init m (fun i -> (i, (i + 1) mod m)))

let random ~rng ~nvertices ~p ~n =
  let edges = ref [] in
  for u = 0 to nvertices - 1 do
    for v = u + 1 to nvertices - 1 do
      if Random.State.float rng 1.0 < p then edges := (u, v) :: !edges
    done
  done;
  make ~nvertices ~n !edges

let pp ppf t =
  Format.fprintf ppf "GCP2(n=%d, %d vertices, edges: %s)" t.n t.nvertices
    (String.concat ", "
       (List.map (fun (u, v) -> Printf.sprintf "%d-%d" u v) t.edges))
