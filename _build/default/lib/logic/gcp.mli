(** The Generalized Two-Coloring Problem (GCP₂) of Rutenburg, used in the
    {m \Pi_2^p}-hardness reduction of Theorem 6.1.

    Given an undirected graph {m G} and {m n \in \mathbb N}: is there a
    partition {m V_1 \mathbin{\dot\cup} V_2 = V(G)} such that neither
    induced subgraph contains an {m n}-vertex clique? *)

type t = {
  nvertices : int;
  edges : (int * int) list;  (** undirected, vertices 0-based *)
  n : int;  (** forbidden clique size, {m \geq 2} *)
}

val make : nvertices:int -> n:int -> (int * int) list -> t

(** Does the vertex set (as a predicate) induce an [n]-clique-free
    subgraph? *)
val side_ok : t -> (int -> bool) -> bool

(** Brute-force decision over all {m 2^{|V|}} partitions. *)
val decide : t -> bool

(** A witnessing partition, as the membership mask of {m V_1}. *)
val witness : t -> bool array option

(** Complete graph {m K_m}. *)
val complete : int -> n:int -> t

(** Cycle graph {m C_m}. *)
val cycle : int -> n:int -> t

val random : rng:Random.State.t -> nvertices:int -> p:float -> n:int -> t

val pp : Format.formatter -> t -> unit
