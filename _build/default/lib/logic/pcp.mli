(** Post Correspondence Problem instances, the source of the
    undecidability reduction of Theorem 5.2.

    An instance is a sequence of pairs {m (u_1,v_1),\dots,(u_\ell,v_\ell)}
    of non-empty words over {m \Sigma}; a solution is a non-empty index
    sequence {m i_1 \dots i_k} with
    {m u_{i_1}\cdots u_{i_k} = v_{i_1}\cdots v_{i_k}}. *)

type t = {
  pairs : (string * string) list;  (** (u_i, v_i), both non-empty *)
}

val make : (string * string) list -> t

(** Alphabet {m \Sigma}: all characters occurring in the pairs. *)
val alphabet : t -> char list

(** [check inst indices] tests whether the (1-based) index sequence is a
    solution. *)
val check : t -> int list -> bool

(** Exhaustive solver: shortest solution of length at most [max_len], in
    index count. *)
val solve : max_len:int -> t -> int list option

val is_solvable : max_len:int -> t -> bool

(** {1 A small instance library} *)

(** [(a, ab), (bb, b)]: solvable with 1,2 ({m a\cdot bb = ab\cdot b}). *)
val solvable_small : t

(** The textbook instance [(a, baa), (ab, aa), (bba, bb)]: solvable with
    3, 2, 3, 1 ({m bba\,ab\,bba\,a = bb\,aa\,bb\,baa}). *)
val solvable_medium : t

(** [(abb, a), (b, abb), (a, bb)]: a classic solvable instance with a
    longer minimal solution. *)
val solvable_long : t

(** [(ab, ba)]: trivially unsolvable (different first letters are
    preserved forever). *)
val unsolvable_small : t

(** [(ab, aa), (ba, bb)]: unsolvable (length argument). *)
val unsolvable_medium : t

val pp : Format.formatter -> t -> unit
