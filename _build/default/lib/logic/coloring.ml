let coloring ~k ~nvertices edges =
  let adj = Array.make nvertices [] in
  List.iter
    (fun (u, v) ->
      if u <> v then begin
        adj.(u) <- v :: adj.(u);
        adj.(v) <- u :: adj.(v)
      end)
    edges;
  let colors = Array.make nvertices (-1) in
  let rec go v =
    if v = nvertices then true
    else begin
      let rec try_color c =
        if c = k then false
        else if List.for_all (fun u -> colors.(u) <> c) adj.(v) then begin
          colors.(v) <- c;
          if go (v + 1) then true
          else begin
            colors.(v) <- -1;
            try_color (c + 1)
          end
        end
        else try_color (c + 1)
      in
      try_color 0
    end
  in
  if go 0 then Some colors else None

let k_colorable ~k ~nvertices edges = coloring ~k ~nvertices edges <> None

let odd_cycle m =
  let m = if m mod 2 = 0 then m + 1 else m in
  List.init m (fun i -> (i, (i + 1) mod m))
