lib/logic/qbf.mli: Format Random
