lib/logic/pcp.ml: Array Char Format Hashtbl List Printf Queue String
