lib/logic/coloring.mli:
