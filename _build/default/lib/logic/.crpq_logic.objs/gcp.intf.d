lib/logic/gcp.mli: Format Random
