lib/logic/qbf.ml: Array Format List Random
