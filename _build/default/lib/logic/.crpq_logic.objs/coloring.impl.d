lib/logic/coloring.ml: Array List
