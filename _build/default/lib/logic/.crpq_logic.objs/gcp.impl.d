lib/logic/gcp.ml: Array Format List Printf Random String
