lib/logic/pcp.mli: Format
