type t = { pairs : (string * string) list }

let make pairs =
  if pairs = [] then invalid_arg "Pcp.make: empty instance";
  List.iter
    (fun (u, v) ->
      if u = "" || v = "" then invalid_arg "Pcp.make: empty word in pair")
    pairs;
  { pairs }

let alphabet t =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun (u, v) ->
      String.iter (fun c -> Hashtbl.replace tbl c ()) u;
      String.iter (fun c -> Hashtbl.replace tbl c ()) v)
    t.pairs;
  List.sort Char.compare (Hashtbl.fold (fun c () l -> c :: l) tbl [])

let check t indices =
  indices <> []
  && List.for_all (fun i -> i >= 1 && i <= List.length t.pairs) indices
  &&
  let u =
    String.concat "" (List.map (fun i -> fst (List.nth t.pairs (i - 1))) indices)
  in
  let v =
    String.concat "" (List.map (fun i -> snd (List.nth t.pairs (i - 1))) indices)
  in
  String.equal u v

(* BFS over configurations: the outstanding difference between the two
   concatenations, which is always a suffix of one side. *)
let solve ~max_len t =
  let pairs = Array.of_list t.pairs in
  let ell = Array.length pairs in
  (* configuration: (side, overhang): side = `U means the u-side is ahead
     by [overhang] *)
  let extend (side, overhang) i =
    let u, v = pairs.(i) in
    (* the side that is behind reads the overhang first *)
    let ahead, behind = match side with `U -> (u, v) | `V -> (v, u) in
    let total_ahead = overhang ^ ahead in
    ignore total_ahead;
    (* combined: ahead side word appended after overhang on the ahead
       stream; we match the behind word against overhang ^ ahead *)
    let stream = overhang ^ ahead in
    let lb = String.length behind and ls = String.length stream in
    if lb <= ls then
      if String.sub stream 0 lb = behind then
        Some (side, String.sub stream lb (ls - lb))
      else None
    else if String.sub behind 0 ls = stream then
      Some ((match side with `U -> `V | `V -> `U), String.sub behind ls (lb - ls))
    else None
  in
  let start i =
    let u, v = pairs.(i) in
    let lu = String.length u and lv = String.length v in
    if lu <= lv then
      if String.sub v 0 lu = u then Some (`V, String.sub v lu (lv - lu)) else None
    else if String.sub u 0 lv = v then Some (`U, String.sub u lv (lu - lv))
    else None
  in
  let seen = Hashtbl.create 256 in
  let queue = Queue.create () in
  let push cfg trail =
    let key = (fst cfg, snd cfg) in
    if not (Hashtbl.mem seen key) then begin
      Hashtbl.add seen key ();
      Queue.add (cfg, trail) queue
    end
  in
  let solution = ref None in
  for i = 0 to ell - 1 do
    if !solution = None then
      match start i with
      | Some (_, "") -> solution := Some [ i + 1 ]
      | Some cfg -> push cfg [ i + 1 ]
      | None -> ()
  done;
  (try
     while (not (Queue.is_empty queue)) && !solution = None do
       let cfg, trail = Queue.pop queue in
       if List.length trail < max_len then
         for i = 0 to ell - 1 do
           if !solution = None then
             match extend cfg i with
             | Some (_, "") -> solution := Some (List.rev ((i + 1) :: trail))
             | Some cfg' -> push cfg' ((i + 1) :: trail)
             | None -> ()
         done
     done
   with Exit -> ());
  match !solution with
  | Some s when check t s -> Some s
  | Some _ -> None
  | None -> None

let is_solvable ~max_len t = solve ~max_len t <> None

let solvable_small = make [ ("a", "ab"); ("bb", "b") ]

let solvable_medium = make [ ("a", "baa"); ("ab", "aa"); ("bba", "bb") ]

let solvable_long = make [ ("abb", "a"); ("b", "abb"); ("a", "bb") ]

let unsolvable_small = make [ ("ab", "ba") ]

let unsolvable_medium = make [ ("ab", "aa"); ("ba", "bb") ]

let pp ppf t =
  Format.fprintf ppf "{%s}"
    (String.concat "; "
       (List.map (fun (u, v) -> Printf.sprintf "(%s,%s)" u v) t.pairs))
