(** {m \forall\exists}-QBF with 3-CNF matrix: the source problem of the
    {m \Pi_2^p}-hardness reduction of Theorem 6.2.

    {m \Phi = \forall x_1 \dots x_n\, \exists y_1 \dots y_\ell\,
    \varphi(\bar x, \bar y)} with {m \varphi} quantifier-free in 3-CNF. *)

type lit =
  | X of int * bool  (** universal variable (1-based), sign *)
  | Y of int * bool  (** existential variable (1-based), sign *)

type clause = lit list  (** up to 3 literals *)

type t = {
  n_x : int;
  n_y : int;
  clauses : clause list;
}

val make : n_x:int -> n_y:int -> clause list -> t

(** Brute-force validity: for every assignment of the {m x_i} there is an
    assignment of the {m y_j} satisfying every clause. *)
val is_valid : t -> bool

(** Evaluate the matrix under full assignments (arrays are 1-based with a
    dummy slot 0). *)
val eval_matrix : t -> bool array -> bool array -> bool

val random :
  rng:Random.State.t -> n_x:int -> n_y:int -> n_clauses:int -> t

val pp : Format.formatter -> t -> unit

(** {1 Samples} *)

(** {m \forall x\,\exists y\,(x \vee y)(\neg x \vee \neg y)}: valid. *)
val valid_small : t

(** {m \forall x\,\exists y\,(x \vee y)(x \vee \neg y)}: invalid
    (take {m x} false). *)
val invalid_small : t
