(** Graph coloring, the classic source of NP-hardness for CQ containment
    (Chandra–Merlin, used for the lower bounds cited in Figure 1). *)

(** [k_colorable ~k ~nvertices edges] decides proper {m k}-colorability
    of the undirected graph. *)
val k_colorable : k:int -> nvertices:int -> (int * int) list -> bool

(** A witnessing coloring, if any. *)
val coloring : k:int -> nvertices:int -> (int * int) list -> int array option

(** Odd cycle (not 2-colorable), useful sample. *)
val odd_cycle : int -> (int * int) list
