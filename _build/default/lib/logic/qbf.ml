type lit =
  | X of int * bool
  | Y of int * bool

type clause = lit list

type t = {
  n_x : int;
  n_y : int;
  clauses : clause list;
}

let make ~n_x ~n_y clauses =
  let check_lit = function
    | X (i, _) ->
      if i < 1 || i > n_x then invalid_arg "Qbf.make: universal index out of range"
    | Y (j, _) ->
      if j < 1 || j > n_y then invalid_arg "Qbf.make: existential index out of range"
  in
  List.iter
    (fun c ->
      if c = [] || List.length c > 3 then
        invalid_arg "Qbf.make: clauses must have 1-3 literals";
      List.iter check_lit c)
    clauses;
  { n_x; n_y; clauses }

let eval_matrix t xs ys =
  let sat_lit = function
    | X (i, pos) -> xs.(i) = pos
    | Y (j, pos) -> ys.(j) = pos
  in
  List.for_all (fun c -> List.exists sat_lit c) t.clauses

let is_valid t =
  let xs = Array.make (t.n_x + 1) false in
  let ys = Array.make (t.n_y + 1) false in
  let rec forall i =
    if i > t.n_x then exists 1
    else begin
      xs.(i) <- false;
      let a = forall (i + 1) in
      xs.(i) <- true;
      let b = forall (i + 1) in
      a && b
    end
  and exists j =
    if j > t.n_y then eval_matrix t xs ys
    else begin
      ys.(j) <- false;
      let a = exists (j + 1) in
      if a then true
      else begin
        ys.(j) <- true;
        exists (j + 1)
      end
    end
  in
  forall 1

let random ~rng ~n_x ~n_y ~n_clauses =
  let lit () =
    let pos = Random.State.bool rng in
    if n_y = 0 || (n_x > 0 && Random.State.bool rng) then
      X (1 + Random.State.int rng n_x, pos)
    else Y (1 + Random.State.int rng n_y, pos)
  in
  let clause () = [ lit (); lit (); lit () ] in
  make ~n_x ~n_y (List.init n_clauses (fun _ -> clause ()))

let pp_lit ppf = function
  | X (i, true) -> Format.fprintf ppf "x%d" i
  | X (i, false) -> Format.fprintf ppf "¬x%d" i
  | Y (j, true) -> Format.fprintf ppf "y%d" j
  | Y (j, false) -> Format.fprintf ppf "¬y%d" j

let pp ppf t =
  Format.fprintf ppf "∀x1..x%d ∃y1..y%d " t.n_x t.n_y;
  List.iter
    (fun c ->
      Format.fprintf ppf "(%a)"
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " ∨ ")
           pp_lit)
        c)
    t.clauses

let valid_small =
  make ~n_x:1 ~n_y:1 [ [ X (1, true); Y (1, true) ]; [ X (1, false); Y (1, false) ] ]

let invalid_small =
  make ~n_x:1 ~n_y:1 [ [ X (1, true); Y (1, true) ]; [ X (1, true); Y (1, false) ] ]
