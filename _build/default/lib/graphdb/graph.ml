type node = int

type edge = node * Word.symbol * node

type t = {
  nnodes : int;
  edges : edge list;
  out : (Word.symbol * node) list array;
  in_ : (Word.symbol * node) list array;
}

let make ~nnodes edge_list =
  let edges = List.sort_uniq Stdlib.compare edge_list in
  List.iter
    (fun (u, _, v) ->
      if u < 0 || u >= nnodes || v < 0 || v >= nnodes then
        invalid_arg "Graph.make: node out of range")
    edges;
  let out = Array.make (max nnodes 1) [] in
  let in_ = Array.make (max nnodes 1) [] in
  List.iter
    (fun (u, a, v) ->
      out.(u) <- (a, v) :: out.(u);
      in_.(v) <- (a, u) :: in_.(v))
    edges;
  { nnodes; edges; out; in_ }

let of_edges edge_list =
  let nnodes =
    List.fold_left (fun m (u, _, v) -> max m (max u v + 1)) 0 edge_list
  in
  make ~nnodes edge_list

let empty = make ~nnodes:0 []

let nnodes g = g.nnodes

let nedges g = List.length g.edges

let nodes g = List.init g.nnodes (fun i -> i)

let edges g = g.edges

let out g u = if u < 0 || u >= g.nnodes then [] else g.out.(u)

let in_ g v = if v < 0 || v >= g.nnodes then [] else g.in_.(v)

let mem_edge g u a v =
  List.exists (fun (b, w) -> String.equal a b && w = v) (out g u)

let out_degree g u = List.length (out g u)

let in_degree g u = List.length (in_ g u)

let succ g u a =
  List.filter_map (fun (b, v) -> if String.equal a b then Some v else None) (out g u)

let alphabet g =
  let tbl = Hashtbl.create 16 in
  List.iter (fun (_, a, _) -> Hashtbl.replace tbl a ()) g.edges;
  List.sort String.compare (Hashtbl.fold (fun a () l -> a :: l) tbl [])

let add_edges g new_edges =
  let nnodes =
    List.fold_left (fun m (u, _, v) -> max m (max u v + 1)) g.nnodes new_edges
  in
  make ~nnodes (new_edges @ g.edges)

let disjoint_union g h =
  let shift = g.nnodes in
  let shifted = List.map (fun (u, a, v) -> (u + shift, a, v + shift)) h.edges in
  (make ~nnodes:(g.nnodes + h.nnodes) (g.edges @ shifted), shift)

let induced g keep =
  let remap = Array.make (max g.nnodes 1) (-1) in
  let count = ref 0 in
  for u = 0 to g.nnodes - 1 do
    if keep u then begin
      remap.(u) <- !count;
      incr count
    end
  done;
  let edges =
    List.filter_map
      (fun (u, a, v) ->
        if keep u && keep v then Some (remap.(u), a, remap.(v)) else None)
      g.edges
  in
  (make ~nnodes:!count edges, remap)

let components g =
  let seen = Array.make (max g.nnodes 1) false in
  let comp u0 =
    let acc = ref [] in
    let rec go u =
      if not seen.(u) then begin
        seen.(u) <- true;
        acc := u :: !acc;
        List.iter (fun (_, v) -> go v) g.out.(u);
        List.iter (fun (_, v) -> go v) g.in_.(u)
      end
    in
    go u0;
    List.rev !acc
  in
  let res = ref [] in
  for u = 0 to g.nnodes - 1 do
    if not seen.(u) then res := comp u :: !res
  done;
  List.rev !res

let is_connected g = List.length (components g) <= 1

let equal g h = g.nnodes = h.nnodes && g.edges = h.edges

let pp ppf g =
  Format.fprintf ppf "@[<v>graph: %d nodes@," g.nnodes;
  List.iter
    (fun (u, a, v) -> Format.fprintf ppf "%d -%a-> %d@," u Word.pp_symbol a v)
    g.edges;
  Format.fprintf ppf "@]"

let to_dot ?(name = "G") g =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "digraph %s {\n" name);
  List.iter
    (fun u -> Buffer.add_string buf (Printf.sprintf "  n%d [label=\"%d\"];\n" u u))
    (nodes g);
  List.iter
    (fun (u, a, v) ->
      Buffer.add_string buf (Printf.sprintf "  n%d -> n%d [label=\"%s\"];\n" u v a))
    g.edges;
  Buffer.add_string buf "}\n";
  Buffer.contents buf
