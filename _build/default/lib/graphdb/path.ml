type t = {
  src : Graph.node;
  steps : (Word.symbol * Graph.node) list;
}

let empty src = { src; steps = [] }

let src p = p.src

let tgt p =
  match List.rev p.steps with
  | [] -> p.src
  | (_, v) :: _ -> v

let length p = List.length p.steps

let label p = List.map fst p.steps

let nodes p = p.src :: List.map snd p.steps

let internal_nodes p =
  match p.steps with
  | [] -> []
  | steps ->
    let rec drop_last = function
      | [] | [ _ ] -> []
      | x :: rest -> x :: drop_last rest
    in
    List.map snd (drop_last steps)

let edges p =
  let rec go u = function
    | [] -> []
    | (a, v) :: rest -> (u, a, v) :: go v rest
  in
  go p.src p.steps

let all_distinct l =
  let sorted = List.sort Stdlib.compare l in
  let rec go = function
    | a :: (b :: _ as rest) -> a <> b && go rest
    | _ -> true
  in
  go sorted

let is_simple p = all_distinct (nodes p)

let is_simple_cycle p =
  match p.steps with
  | [] -> true
  | _ ->
    tgt p = p.src
    && all_distinct (p.src :: internal_nodes p)

let is_trail p = all_distinct (edges p)

let append p a v = { p with steps = p.steps @ [ (a, v) ] }

let valid_in g p =
  List.for_all (fun (u, a, v) -> Graph.mem_edge g u a v) (edges p)

let pp ppf p =
  Format.fprintf ppf "%d" p.src;
  List.iter (fun (a, v) -> Format.fprintf ppf " -%a-> %d" Word.pp_symbol a v) p.steps
