(** Plain-text serialization of graph databases.

    Format: one edge per line, [src label dst] separated by whitespace;
    blank lines and lines starting with [#] are ignored.  Node ids are
    non-negative integers; labels follow the {!Word} symbol syntax. *)

val of_string : string -> Graph.t

val to_string : Graph.t -> string

val load : string -> Graph.t

val save : string -> Graph.t -> unit
