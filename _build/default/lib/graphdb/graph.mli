(** Graph databases: finite edge-labeled directed graphs {m G = (V, E)}
    over a finite alphabet, the data model of the paper (Section 2).

    Nodes are integers [0 .. nnodes-1].  Edges are triples
    {m u \xrightarrow{a} v}; the edge set is a set (no duplicates). *)

type node = int

type edge = node * Word.symbol * node

type t

(** [make ~nnodes edges] builds a graph with nodes [0..nnodes-1].
    Duplicate edges are removed.
    @raise Invalid_argument if an edge mentions a node out of range. *)
val make : nnodes:int -> edge list -> t

(** [of_edges edges] uses [1 + max node] as the node count. *)
val of_edges : edge list -> t

val empty : t

val nnodes : t -> int

val nedges : t -> int

val nodes : t -> node list

val edges : t -> edge list

val mem_edge : t -> node -> Word.symbol -> node -> bool

(** Outgoing [(label, successor)] pairs. *)
val out : t -> node -> (Word.symbol * node) list

(** Incoming [(label, predecessor)] pairs. *)
val in_ : t -> node -> (Word.symbol * node) list

val out_degree : t -> node -> int

val in_degree : t -> node -> int

(** Successors of a node on a given label. *)
val succ : t -> node -> Word.symbol -> node list

val alphabet : t -> Word.symbol list

(** [add_edges g edges] returns a graph extended with the given edges
    (growing the node count if needed). *)
val add_edges : t -> edge list -> t

(** [disjoint_union g h] shifts the nodes of [h] by [nnodes g]; returns
    the union and the shift. *)
val disjoint_union : t -> t -> t * int

(** Subgraph induced by the nodes satisfying the predicate, with nodes
    renumbered; returns the graph and the old-to-new node mapping
    ([-1] when dropped). *)
val induced : t -> (node -> bool) -> t * int array

(** Undirected connectivity of the underlying graph. *)
val is_connected : t -> bool

(** Weakly-connected components as node lists. *)
val components : t -> node list list

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit

(** GraphViz dot output. *)
val to_dot : ?name:string -> t -> string
