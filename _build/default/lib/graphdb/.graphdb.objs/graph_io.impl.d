lib/graphdb/graph_io.ml: Buffer Graph List Printf String
