lib/graphdb/path_search.ml: Array Graph Hashtbl List Nfa Path Queue String
