lib/graphdb/path_search.mli: Graph Nfa Path
