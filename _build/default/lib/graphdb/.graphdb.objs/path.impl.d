lib/graphdb/path.ml: Format Graph List Stdlib Word
