lib/graphdb/generate.ml: Array Graph List Random
