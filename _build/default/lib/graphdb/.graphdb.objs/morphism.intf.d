lib/graphdb/morphism.mli: Graph
