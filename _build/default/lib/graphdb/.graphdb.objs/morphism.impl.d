lib/graphdb/morphism.ml: Array Graph List Queue String
