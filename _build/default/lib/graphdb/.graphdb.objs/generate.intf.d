lib/graphdb/generate.mli: Graph Random Word
