lib/graphdb/graph_io.mli: Graph
