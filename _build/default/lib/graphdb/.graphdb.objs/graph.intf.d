lib/graphdb/graph.mli: Format Word
