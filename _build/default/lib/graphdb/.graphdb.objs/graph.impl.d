lib/graphdb/graph.ml: Array Buffer Format Hashtbl List Printf Stdlib String Word
