lib/graphdb/path.mli: Format Graph Word
