(** Paths in a graph database (Section 2: a possibly empty sequence of
    edges {m v_0 \xrightarrow{a_1} v_1, \dots}). *)

type t = {
  src : Graph.node;
  steps : (Word.symbol * Graph.node) list;  (** consecutive edges *)
}

val empty : Graph.node -> t

val src : t -> Graph.node

val tgt : t -> Graph.node

val length : t -> int

(** The label {m a_1 \cdots a_k}; [ε] for the empty path. *)
val label : t -> Word.t

(** All visited nodes, in order: {m v_0, \dots, v_k}. *)
val nodes : t -> Graph.node list

(** Strictly internal nodes {m v_1, \dots, v_{k-1}}. *)
val internal_nodes : t -> Graph.node list

val edges : t -> Graph.edge list

(** All {m v_i} pairwise distinct. *)
val is_simple : t -> bool

(** {m v_0 = v_k} and {m v_0, \dots, v_{k-1}} pairwise distinct
    (the empty path is a simple cycle). *)
val is_simple_cycle : t -> bool

(** No repeated edges. *)
val is_trail : t -> bool

(** [append p a v] extends the path with an edge {m tgt(p) \xrightarrow{a} v}. *)
val append : t -> Word.symbol -> Graph.node -> t

(** Does every edge of the path exist in the graph? *)
val valid_in : Graph.t -> t -> bool

val pp : Format.formatter -> t -> unit
