let check = Alcotest.check

let rng () = Random.State.make [| 7 |]

let test_random_crpq_class () =
  let rng = rng () in
  List.iter
    (fun cls ->
      for _ = 1 to 20 do
        let q =
          Qgen.random_crpq ~rng ~labels:[ "a"; "b" ] ~nvars:3 ~natoms:2 ~arity:1
            ~cls ()
        in
        let got = Crpq.classify q in
        (* classes are upward compatible: a random CQ is also fin *)
        let ok =
          match cls with
          | Crpq.Class_cq -> got = Crpq.Class_cq
          | Crpq.Class_fin -> got <> Crpq.Class_crpq
          | Crpq.Class_crpq -> true
        in
        check Alcotest.bool "class respected" true ok;
        check Alcotest.int "arity" 1 (List.length q.Crpq.free)
      done)
    [ Crpq.Class_cq; Crpq.Class_fin; Crpq.Class_crpq ]

let test_random_regex_nonempty_mostly () =
  let rng = rng () in
  let nonempty = ref 0 in
  for _ = 1 to 50 do
    let r = Qgen.random_regex ~rng ~labels:[ "a" ] ~depth:2 ~cls:Crpq.Class_crpq in
    if not (Regex.is_empty_lang r) then incr nonempty
  done;
  check Alcotest.bool "mostly nonempty" true (!nonempty > 40)

let test_contained_pair_is_contained () =
  let rng = rng () in
  for _ = 1 to 15 do
    let q1, q2 =
      Qgen.contained_pair ~rng ~labels:[ "a"; "b" ] ~nvars:3 ~natoms:2
        ~cls:Crpq.Class_fin ()
    in
    match Containment.decide Semantics.St q1 q2 with
    | Containment.Contained -> ()
    | Containment.Not_contained _ -> Alcotest.failf "pair not contained"
    | Containment.Unknown _ -> Alcotest.fail "undecided finite pair"
  done

let test_suite_shapes () =
  let cells = Suite.fig1_cells ~seed:1 ~per_cell:2 in
  check Alcotest.int "27 cells" 27 (List.length cells);
  List.iter
    (fun (_, _, c1, c2, pairs) ->
      check Alcotest.int "per cell" 2 (List.length pairs);
      List.iter
        (fun ((q1 : Crpq.t), (q2 : Crpq.t)) ->
          let le a b =
            match a, b with
            | Crpq.Class_cq, _ -> true
            | Crpq.Class_fin, (Crpq.Class_fin | Crpq.Class_crpq) -> true
            | Crpq.Class_crpq, Crpq.Class_crpq -> true
            | _ -> false
          in
          check Alcotest.bool "lhs class" true (le (Crpq.classify q1) c1);
          check Alcotest.bool "rhs class" true (le (Crpq.classify q2) c2))
        pairs)
    cells

let test_suite_instances () =
  check Alcotest.int "pcp instances" 4 (List.length Suite.pcp_instances);
  List.iter
    (fun (_, inst, sol) ->
      match sol with
      | Some s -> check Alcotest.bool "announced solution checks" true (Pcp.check inst s)
      | None -> check Alcotest.bool "announced unsolvable" false
                  (Pcp.is_solvable ~max_len:8 inst))
    Suite.pcp_instances;
  check Alcotest.bool "gcp instances" true (List.length Suite.gcp_instances >= 4);
  check Alcotest.bool "qbf instances" true
    (List.length (Suite.qbf_instances ~seed:3) >= 3)

let test_hard_simple_path () =
  List.iter
    (fun (n, g) -> check Alcotest.int "node count" n (Graph.nnodes g))
    (Suite.hard_simple_path ~sizes:[ 6; 10 ])

let test_knowledge_graph () =
  let g, queries = Suite.knowledge_graph ~seed:8 ~entities:15 in
  check Alcotest.bool "nonempty graph" true (Graph.nedges g > 0);
  check Alcotest.int "four queries" 4 (List.length queries);
  (* every query evaluates without error and respects the hierarchy *)
  List.iter
    (fun (_, q) ->
      let st = Eval.eval Semantics.St q g in
      let ai = Eval.eval Semantics.A_inj q g in
      check Alcotest.bool "a-inj ⊆ st" true
        (List.for_all (fun t -> List.mem t st) ai))
    queries

let test_eval_scaling () =
  let _, q, graphs = Suite.eval_scaling ~seed:2 ~sizes:[ 4; 8 ] in
  check Alcotest.int "two graphs" 2 (List.length graphs);
  check Alcotest.int "arity two" 2 (List.length q.Crpq.free)

let () =
  Alcotest.run "workload"
    [
      ( "qgen",
        [
          Alcotest.test_case "classes" `Quick test_random_crpq_class;
          Alcotest.test_case "nonempty" `Quick test_random_regex_nonempty_mostly;
          Alcotest.test_case "contained pairs" `Quick test_contained_pair_is_contained;
        ] );
      ( "suite",
        [
          Alcotest.test_case "fig1 shapes" `Quick test_suite_shapes;
          Alcotest.test_case "instances" `Quick test_suite_instances;
          Alcotest.test_case "hard simple path" `Quick test_hard_simple_path;
          Alcotest.test_case "knowledge graph" `Quick test_knowledge_graph;
          Alcotest.test_case "eval scaling" `Quick test_eval_scaling;
        ] );
    ]
