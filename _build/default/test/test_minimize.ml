let check = Alcotest.check

let test_equivalent () =
  let q1 = Crpq.parse "Q(x, y) :- x -[a+]-> y" in
  let q2 = Crpq.parse "Q(x, y) :- x -[a|aa+]-> y" in
  check (Alcotest.option Alcotest.bool) "a+ = a|aa+" (Some true)
    (Minimize.equivalent Semantics.Q_inj q1 q2);
  check (Alcotest.option Alcotest.bool) "a+ <> a*" (Some false)
    (Minimize.equivalent Semantics.Q_inj q1 (Crpq.parse "Q(x, y) :- x -[a*]-> y"))

let test_drop_redundant () =
  (* the ab-atom subsumes the a/b chain under standard semantics *)
  let q = Crpq.parse "Q(x, z) :- x -[a]-> y, y -[b]-> z, x -[ab]-> z" in
  let st = Minimize.drop_redundant_atoms Semantics.St q in
  check Alcotest.int "st drops two" 1 (Crpq.size st);
  (* under q-inj the chain's variable y pins a shared node: nothing
     removable *)
  let qi = Minimize.drop_redundant_atoms Semantics.Q_inj q in
  check Alcotest.int "q-inj keeps all" 3 (Crpq.size qi);
  (* a literally duplicated atom is redundant under st and a-inj... *)
  let dup = Crpq.parse "x -[ab]-> y, x -[ab]-> y" in
  check Alcotest.int "st drops duplicate" 1
    (Crpq.size (Minimize.drop_redundant_atoms Semantics.St dup));
  check Alcotest.int "a-inj drops duplicate" 1
    (Crpq.size (Minimize.drop_redundant_atoms Semantics.A_inj dup));
  (* ... but not under q-inj, where it demands a second disjoint path *)
  check Alcotest.int "q-inj keeps duplicate" 2
    (Crpq.size (Minimize.drop_redundant_atoms Semantics.Q_inj dup))

let test_satisfiable () =
  check Alcotest.bool "sat" true (Minimize.is_satisfiable (Crpq.parse "x -[a]-> y"));
  check Alcotest.bool "unsat" false (Minimize.is_satisfiable (Crpq.parse "x -[!]-> y"))

let test_prune_languages () =
  let q = Crpq.parse "Q(x, y) :- x -[a|a|a]-> y" in
  let p = Minimize.prune_languages q in
  check Alcotest.bool "shrank" true
    (List.for_all
       (fun (a : Crpq.atom) -> Regex.size a.Crpq.lang <= 1)
       p.Crpq.atoms)

let prop_drop_preserves_answers =
  Testutil.qtest ~count:25 "dropping redundant atoms preserves answers"
    QCheck2.Gen.(
      pair
        (Testutil.gen_crpq ~cls:Crpq.Class_fin ~max_atoms:3 ~max_vars:2 ~arity:1 ())
        (Testutil.gen_graph ~max_nodes:3 ()))
    (fun (q, g) ->
      List.for_all
        (fun sem ->
          let m = Minimize.drop_redundant_atoms sem q in
          Eval.eval sem q g = Eval.eval sem m g)
        Semantics.node_semantics)

let prop_prune_preserves_language =
  Testutil.qtest ~count:30 "pruning languages preserves them"
    (Testutil.gen_crpq ~max_atoms:2 ())
    (fun q ->
      let p = Minimize.prune_languages q in
      List.for_all2
        (fun (a : Crpq.atom) (b : Crpq.atom) ->
          Dfa.regex_equivalent a.Crpq.lang b.Crpq.lang)
        q.Crpq.atoms p.Crpq.atoms)

let () =
  Alcotest.run "minimize"
    [
      ( "unit",
        [
          Alcotest.test_case "equivalent" `Quick test_equivalent;
          Alcotest.test_case "drop redundant" `Quick test_drop_redundant;
          Alcotest.test_case "satisfiable" `Quick test_satisfiable;
          Alcotest.test_case "prune languages" `Quick test_prune_languages;
        ] );
      ( "properties",
        [ prop_drop_preserves_answers; prop_prune_preserves_language ] );
    ]
