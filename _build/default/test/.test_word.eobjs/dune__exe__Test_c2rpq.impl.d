test/test_c2rpq.ml: Alcotest C2rpq Crpq Eval Generate Graph List QCheck2 Regex Semantics Testutil Word
