test/test_eval.ml: Alcotest Crpq Eval Generate Graph List Paper_examples QCheck2 Semantics Testutil Word
