test/test_minimize.ml: Alcotest Crpq Dfa Eval List Minimize QCheck2 Regex Semantics Testutil
