test/test_regex.ml: Alcotest List QCheck2 Regex Testutil Word
