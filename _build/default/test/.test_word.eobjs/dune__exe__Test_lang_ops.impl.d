test/test_lang_ops.ml: Alcotest Dfa Lang_ops List Nfa QCheck2 Regex Testutil
