test/test_morphism.ml: Alcotest Array Graph List Morphism QCheck2 Testutil
