test/test_path_search.ml: Alcotest Array Generate Graph List Nfa Path Path_search QCheck2 Regex Testutil Word
