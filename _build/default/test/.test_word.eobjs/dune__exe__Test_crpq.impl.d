test/test_crpq.ml: Alcotest Cq Crpq Eval List QCheck2 Regex Semantics Testutil
