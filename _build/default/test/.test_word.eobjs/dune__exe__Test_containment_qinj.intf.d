test/test_containment_qinj.mli:
