test/test_containment.ml: Alcotest Containment Cq Crpq Eval Graph List Option Paper_examples Printf QCheck2 Semantics Testutil
