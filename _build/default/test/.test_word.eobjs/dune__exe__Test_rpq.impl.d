test/test_rpq.ml: Alcotest Containment Generate List Path QCheck2 Regex Rpq Semantics Testutil Word
