test/test_dfa.mli:
