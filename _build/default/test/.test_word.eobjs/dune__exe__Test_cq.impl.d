test/test_cq.ml: Alcotest Array Cq Graph List QCheck2 Testutil
