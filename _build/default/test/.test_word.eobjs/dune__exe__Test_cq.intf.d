test/test_cq.mli:
