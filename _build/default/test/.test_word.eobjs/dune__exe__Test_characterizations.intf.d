test/test_characterizations.mli:
