test/test_expansion.mli:
