test/test_word.mli:
