test/test_path.ml: Alcotest Graph List Path
