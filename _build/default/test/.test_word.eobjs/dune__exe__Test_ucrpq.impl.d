test/test_ucrpq.ml: Alcotest Containment Crpq Graph List QCheck2 Semantics Testutil Ucrpq
