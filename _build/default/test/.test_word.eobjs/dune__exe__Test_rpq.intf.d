test/test_rpq.mli:
