test/test_containment_qinj.ml: Alcotest Array Containment Containment_qinj Cq Crpq Eval Expansion List Printf QCheck2 Random Regex Semantics Testutil
