test/test_characterizations.ml: Alcotest Array Containment Cq Crpq Eval Expansion Graph Hashtbl List Morphism QCheck2 Semantics Testutil
