test/test_containment_f7.mli:
