test/test_minimize.mli:
