test/test_dfa.ml: Alcotest Dfa List Nfa Printf QCheck2 Regex Testutil
