test/test_semantics.ml: Alcotest Eval List QCheck2 Semantics Testutil
