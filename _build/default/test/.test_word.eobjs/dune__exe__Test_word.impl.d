test/test_word.ml: Alcotest List Word
