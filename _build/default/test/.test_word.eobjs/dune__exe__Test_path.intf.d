test/test_path.mli:
