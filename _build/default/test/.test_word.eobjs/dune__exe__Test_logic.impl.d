test/test_logic.ml: Alcotest Array Coloring Gcp List Pcp QCheck2 Qbf Random Testutil
