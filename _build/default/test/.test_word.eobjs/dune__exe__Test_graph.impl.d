test/test_graph.ml: Alcotest Array Graph List String Testutil
