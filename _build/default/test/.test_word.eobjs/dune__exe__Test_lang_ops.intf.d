test/test_lang_ops.mli:
