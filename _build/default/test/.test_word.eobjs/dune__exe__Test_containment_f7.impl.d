test/test_containment_f7.ml: Alcotest Array Containment Containment_f7 Cq Crpq Eval Expansion Option Qgen Random Semantics
