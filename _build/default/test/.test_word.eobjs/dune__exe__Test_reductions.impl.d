test/test_reductions.ml: Alcotest Coloring Containment Cq Crpq Gcp Gcp_to_qinj Graph List Pcp Pcp_to_ainj QCheck2 Qbf Qbf_to_ainj Random Regex Semantics Subiso_to_eval Testutil Threecol_to_cq
