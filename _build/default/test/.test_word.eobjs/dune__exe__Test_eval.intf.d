test/test_eval.mli:
