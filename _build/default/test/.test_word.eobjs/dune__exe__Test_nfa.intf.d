test/test_nfa.mli:
