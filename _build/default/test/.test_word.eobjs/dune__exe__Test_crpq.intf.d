test/test_crpq.mli:
