test/test_workload.ml: Alcotest Containment Crpq Eval Graph List Pcp Qgen Random Regex Semantics Suite
