test/test_expansion.ml: Alcotest Array Cq Crpq Expansion Graph List Paper_examples Regex Testutil Word
