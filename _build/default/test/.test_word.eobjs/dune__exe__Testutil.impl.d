test/testutil.ml: Crpq Format Graph List Printf QCheck2 QCheck_alcotest Regex
