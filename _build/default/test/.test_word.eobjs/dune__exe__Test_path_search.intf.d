test/test_path_search.mli:
