test/test_regex.mli:
