test/test_morphism.mli:
