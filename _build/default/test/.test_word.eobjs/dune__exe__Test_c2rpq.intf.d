test/test_c2rpq.mli:
