test/test_nfa.ml: Alcotest Array Hashtbl List Nfa QCheck2 Regex String Testutil
