test/test_ucrpq.mli:
