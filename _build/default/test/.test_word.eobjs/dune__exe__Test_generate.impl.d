test/test_generate.ml: Alcotest Generate Graph Graph_io List Random Word
