test/test_containment.mli:
