let check = Alcotest.check

(* ---------------- 3-colorability → CQ/CQ (Chandra–Merlin) ---------- *)

let test_threecol () =
  let cases =
    [
      ("C5", 5, Coloring.odd_cycle 5);
      ("C7", 7, Coloring.odd_cycle 7);
      ("K4", 4, [ (0, 1); (0, 2); (0, 3); (1, 2); (1, 3); (2, 3) ]);
      ("path", 4, [ (0, 1); (1, 2); (2, 3) ]);
      ("triangle", 3, [ (0, 1); (1, 2); (2, 0) ]);
    ]
  in
  List.iter
    (fun (name, n, edges) ->
      let via_q, via_c = Threecol_to_cq.verify ~nvertices:n edges in
      check Alcotest.bool name via_c via_q)
    cases

(* ---------------- subgraph iso → evaluation (Prop 3.1) ------------- *)

let test_subiso_known () =
  let q = Cq.make ~free:[] [ Cq.atom "x" "e" "y"; Cq.atom "y" "e" "x" ] in
  let yes = Graph.make ~nnodes:2 [ (0, "e", 1); (1, "e", 0) ] in
  let no = Graph.make ~nnodes:2 [ (0, "e", 1) ] in
  let s1, q1, a1 = Subiso_to_eval.verify q yes in
  check Alcotest.bool "yes all equal" true (s1 && q1 && a1);
  let s2, q2, a2 = Subiso_to_eval.verify q no in
  check Alcotest.bool "no all equal" true ((not s2) && (not q2) && not a2)

let prop_subiso_equivalences =
  Testutil.qtest ~count:30 "Prop 3.1: the three decisions coincide"
    (QCheck2.Gen.pair
       (Testutil.gen_cq ~max_atoms:2 ~max_vars:2 ())
       (Testutil.gen_graph ~max_nodes:3 ~labels:[ "a"; "b" ] ()))
    (fun (q, g) ->
      let s, qi, ai = Subiso_to_eval.verify q g in
      s = qi && qi = ai)

let test_saturate_rejects_r () =
  let q = Cq.make ~free:[] [ Cq.atom "x" "R" "y" ] in
  Alcotest.check_raises "R in use"
    (Invalid_argument "Subiso_to_eval.saturate_query: query already uses R")
    (fun () -> ignore (Subiso_to_eval.saturate_query q))

(* ---------------- GCP₂ → q-inj containment (Thm 6.1) -------------- *)

let test_gcp_reduction () =
  List.iter
    (fun (name, inst) ->
      let via_q, via_b = Gcp_to_qinj.verify inst in
      check Alcotest.bool name via_b via_q)
    [
      ("K4-n3", Gcp.complete 4 ~n:3);
      ("K4-n2", Gcp.complete 4 ~n:2);
      ("C4-n2", Gcp.cycle 4 ~n:2);
      ("C5-n2", Gcp.cycle 5 ~n:2);
    ]

let test_gcp_shapes () =
  let enc = Gcp_to_qinj.encode (Gcp.cycle 4 ~n:2) in
  check Alcotest.bool "q2 is a CQ" true (Crpq.is_cq enc.Gcp_to_qinj.q2);
  check Alcotest.bool "q1 is CRPQfin" true (Crpq.is_finite enc.Gcp_to_qinj.q1);
  check Alcotest.bool "q1 not a CQ" false (Crpq.is_cq enc.Gcp_to_qinj.q1)

let test_gcp_partition_expansions () =
  let inst = Gcp.cycle 4 ~n:2 in
  let enc = Gcp_to_qinj.encode inst in
  (* a proper 2-coloring of C4 gives a counterexample expansion *)
  let good = [| true; false; true; false |] in
  let e_good = Gcp_to_qinj.expansion_of_partition enc good in
  check Alcotest.bool "good partition defeats q2" true
    (Containment.is_counterexample Semantics.Q_inj enc.Gcp_to_qinj.q2 e_good);
  (* putting everything on one side leaves an edge (2-clique) in V1 *)
  let bad = [| true; true; true; true |] in
  let e_bad = Gcp_to_qinj.expansion_of_partition enc bad in
  check Alcotest.bool "bad partition is matched by q2" false
    (Containment.is_counterexample Semantics.Q_inj enc.Gcp_to_qinj.q2 e_bad)

(* ---------------- QBF → a-inj containment (Thm 6.2) --------------- *)

let test_qbf_reduction_known () =
  List.iter
    (fun (name, inst) ->
      let via_q, via_b = Qbf_to_ainj.verify inst in
      check Alcotest.bool name via_b via_q)
    [ ("valid", Qbf.valid_small); ("invalid", Qbf.invalid_small) ]

let test_qbf_reduction_random () =
  let rng = Random.State.make [| 11 |] in
  for _ = 1 to 4 do
    let inst = Qbf.random ~rng ~n_x:1 ~n_y:1 ~n_clauses:2 in
    let via_q, via_b = Qbf_to_ainj.verify inst in
    check Alcotest.bool "random instance agrees" via_b via_q
  done

let test_qbf_shapes () =
  let enc = Qbf_to_ainj.encode Qbf.valid_small in
  check Alcotest.bool "q1 is a CQ" true (Crpq.is_cq enc.Qbf_to_ainj.q1);
  check Alcotest.bool "q2 is CRPQfin" true (Crpq.is_finite enc.Qbf_to_ainj.q2);
  (* q2's word languages have length at most 2 *)
  check Alcotest.bool "q2 words short" true
    (List.for_all
       (fun (a : Crpq.atom) ->
         List.for_all
           (fun w -> List.length w <= 2)
           (Regex.words_of_finite a.Crpq.lang))
       enc.Qbf_to_ainj.q2.Crpq.atoms)

let test_qbf_assignment_expansions () =
  let enc = Qbf_to_ainj.encode Qbf.invalid_small in
  (* x1 = false falsifies the instance: its expansion defeats q2 *)
  let e_false = Qbf_to_ainj.expansion_of_assignment enc [| false; false |] in
  check Alcotest.bool "x=false is a counterexample" true
    (Containment.is_counterexample Semantics.A_inj enc.Qbf_to_ainj.q2 e_false);
  let e_true = Qbf_to_ainj.expansion_of_assignment enc [| false; true |] in
  check Alcotest.bool "x=true is matched" false
    (Containment.is_counterexample Semantics.A_inj enc.Qbf_to_ainj.q2 e_true)

(* ---------------- PCP → a-inj containment (Thm 5.2) --------------- *)

let test_pcp_words () =
  let inst = Pcp.solvable_small in
  (* U_1 for u_1 = "a" *)
  check (Alcotest.list Alcotest.string) "U1" [ "a"; "$'"; "blk'" ]
    (Pcp_to_ainj.u_word inst 1);
  (* U_2 for u_2 = "bb" *)
  check (Alcotest.list Alcotest.string) "U2" [ "b"; "$"; "blk"; "b"; "$'"; "blk'" ]
    (Pcp_to_ainj.u_word inst 2);
  (* V_1 for v_1 = "ab": reversed with hats *)
  check (Alcotest.list Alcotest.string) "V1"
    [ "^blk'"; "^$'"; "^b"; "^blk"; "^$"; "^a" ]
    (Pcp_to_ainj.v_word inst 1)

let test_pcp_shapes () =
  let enc = Pcp_to_ainj.encode Pcp.solvable_small in
  check Alcotest.bool "q2 is CRPQfin" true (Crpq.is_finite enc.Pcp_to_ainj.q2);
  check Alcotest.bool "q1 has infinite languages" false
    (Crpq.is_finite enc.Pcp_to_ainj.q1);
  check Alcotest.int "q2 has three atoms" 3 (Crpq.size enc.Pcp_to_ainj.q2)

let test_pcp_solvable () =
  let inst = Pcp.solvable_small in
  let ce, sol = Pcp_to_ainj.verify_candidate inst [ 1; 2 ] in
  check Alcotest.bool "real solution" true sol;
  check Alcotest.bool "well-formed expansion is a counterexample" true ce

let test_pcp_illformed () =
  let inst = Pcp.solvable_small in
  let enc = Pcp_to_ainj.encode inst in
  let um = Pcp_to_ainj.unmerged_expansion enc [ 1; 2 ] in
  check Alcotest.bool "unmerged is matched by q2" false
    (Pcp_to_ainj.is_counterexample enc um);
  let mm = Pcp_to_ainj.mismatched_expansion enc [ 1; 2 ] [ 2; 1 ] in
  check Alcotest.bool "mismatched sequences are matched" false
    (Pcp_to_ainj.is_counterexample enc mm);
  (* a candidate that is not a solution: detected by the letter ladder *)
  let bad = Pcp_to_ainj.well_formed_expansion enc [ 1; 1 ] in
  check Alcotest.bool "non-solution candidate is matched" false
    (Pcp_to_ainj.is_counterexample enc bad)

let test_pcp_unsolvable () =
  let enc = Pcp_to_ainj.encode Pcp.unsolvable_small in
  List.iter
    (fun seq ->
      let e = Pcp_to_ainj.well_formed_expansion enc seq in
      check Alcotest.bool "never a counterexample" false
        (Pcp_to_ainj.is_counterexample enc e))
    [ [ 1 ]; [ 1; 1 ] ]

let test_pcp_union_simulation () =
  (* Claim D.3: the single query agrees with the union *)
  let enc = Pcp_to_ainj.encode Pcp.solvable_small in
  List.iter
    (fun e ->
      check Alcotest.bool "union agrees" true (Pcp_to_ainj.union_agrees enc e))
    [
      Pcp_to_ainj.well_formed_expansion enc [ 1; 2 ];
      Pcp_to_ainj.unmerged_expansion enc [ 1; 2 ];
      Pcp_to_ainj.mismatched_expansion enc [ 1; 2 ] [ 2; 1 ];
    ]

let test_pcp_medium () =
  (* the textbook instance with solution 3,2,3,1 *)
  let inst = Pcp.solvable_medium in
  let ce, sol = Pcp_to_ainj.verify_candidate inst [ 3; 2; 3; 1 ] in
  check Alcotest.bool "real solution" true sol;
  check Alcotest.bool "counterexample" true ce

let test_pcp_rejects_bad_alphabet () =
  Alcotest.check_raises "uppercase rejected"
    (Invalid_argument "Pcp_to_ainj.encode: PCP alphabet must be lowercase letters")
    (fun () -> ignore (Pcp_to_ainj.encode (Pcp.make [ ("A", "AB") ])))

let () =
  Alcotest.run "reductions"
    [
      ( "threecol",
        [ Alcotest.test_case "verify" `Quick test_threecol ] );
      ( "subiso",
        [
          Alcotest.test_case "known" `Quick test_subiso_known;
          Alcotest.test_case "rejects R" `Quick test_saturate_rejects_r;
          prop_subiso_equivalences;
        ] );
      ( "gcp",
        [
          Alcotest.test_case "verify" `Quick test_gcp_reduction;
          Alcotest.test_case "shapes" `Quick test_gcp_shapes;
          Alcotest.test_case "partitions" `Quick test_gcp_partition_expansions;
        ] );
      ( "qbf",
        [
          Alcotest.test_case "known" `Quick test_qbf_reduction_known;
          Alcotest.test_case "random" `Slow test_qbf_reduction_random;
          Alcotest.test_case "shapes" `Quick test_qbf_shapes;
          Alcotest.test_case "assignments" `Quick test_qbf_assignment_expansions;
        ] );
      ( "pcp",
        [
          Alcotest.test_case "words" `Quick test_pcp_words;
          Alcotest.test_case "shapes" `Quick test_pcp_shapes;
          Alcotest.test_case "solvable" `Quick test_pcp_solvable;
          Alcotest.test_case "ill-formed" `Quick test_pcp_illformed;
          Alcotest.test_case "unsolvable" `Quick test_pcp_unsolvable;
          Alcotest.test_case "union simulation" `Quick test_pcp_union_simulation;
          Alcotest.test_case "medium instance" `Slow test_pcp_medium;
          Alcotest.test_case "alphabet guard" `Quick test_pcp_rejects_bad_alphabet;
        ] );
    ]
