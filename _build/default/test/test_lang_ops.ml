let gen_rw = QCheck2.Gen.pair (Testutil.gen_regex ~max_depth:2 ()) (Testutil.gen_word ())

let prop_of_nfa_roundtrip =
  Testutil.qtest ~count:120 "state elimination preserves the language" gen_rw
    (fun (r, w) ->
      let r' = Lang_ops.of_nfa (Nfa.of_regex r) in
      Regex.matches r' w = Regex.matches r w)

let prop_intersect =
  Testutil.qtest ~count:80 "intersection"
    QCheck2.Gen.(
      triple (Testutil.gen_regex ~max_depth:2 ()) (Testutil.gen_regex ~max_depth:2 ())
        (Testutil.gen_word ~max_len:4 ()))
    (fun (r, s, w) ->
      Regex.matches (Lang_ops.intersect r s) w
      = (Regex.matches r w && Regex.matches s w))

let prop_complement =
  Testutil.qtest ~count:80 "complement"
    QCheck2.Gen.(pair (Testutil.gen_regex ~max_depth:2 ()) (Testutil.gen_word ~max_len:4 ()))
    (fun (r, w) ->
      Regex.matches (Lang_ops.complement ~alphabet:[ "a"; "b"; "c" ] r) w
      = not (Regex.matches r w))

let prop_difference =
  Testutil.qtest ~count:80 "difference"
    QCheck2.Gen.(
      triple (Testutil.gen_regex ~max_depth:2 ()) (Testutil.gen_regex ~max_depth:2 ())
        (Testutil.gen_word ~max_len:4 ()))
    (fun (r, s, w) ->
      Regex.matches (Lang_ops.difference r s) w
      = (Regex.matches r w && not (Regex.matches s w)))

let prop_min_length =
  Testutil.qtest ~count:60 "restrict_min_length"
    QCheck2.Gen.(
      triple (Testutil.gen_regex ~max_depth:2 ()) (int_range 0 3)
        (Testutil.gen_word ~max_len:4 ()))
    (fun (r, n, w) ->
      Regex.matches (Lang_ops.restrict_min_length r n) w
      = (Regex.matches r w && List.length w >= n))

let test_units () =
  let eq r s = Dfa.regex_equivalent r s in
  Alcotest.check Alcotest.bool "empty of_nfa" true
    (Regex.is_empty_lang (Lang_ops.of_nfa (Nfa.of_regex Regex.Empty)));
  Alcotest.check Alcotest.bool "a* ∩ (aa)* = (aa)*" true
    (eq (Lang_ops.intersect (Regex.parse "a*") (Regex.parse "(aa)*")) (Regex.parse "(aa)*"));
  Alcotest.check Alcotest.bool "a* \\ a+ = ε" true
    (eq (Lang_ops.difference (Regex.parse "a*") (Regex.parse "a+")) Regex.Eps);
  Alcotest.check Alcotest.bool "double complement" true
    (eq
       (Lang_ops.complement ~alphabet:[ "a"; "b" ]
          (Lang_ops.complement ~alphabet:[ "a"; "b" ] (Regex.parse "(ab)*")))
       (Regex.parse "(ab)*"))

let () =
  Alcotest.run "lang_ops"
    [
      ("unit", [ Alcotest.test_case "identities" `Quick test_units ]);
      ( "properties",
        [
          prop_of_nfa_roundtrip;
          prop_intersect;
          prop_complement;
          prop_difference;
          prop_min_length;
        ] );
    ]
