let check = Alcotest.check

let test_of_string () =
  check (Alcotest.list Alcotest.string) "single chars" [ "a"; "b"; "c" ]
    (Word.of_string "abc");
  check (Alcotest.list Alcotest.string) "angle brackets" [ "a"; "I1"; "b" ]
    (Word.of_string "a<I1>b");
  check (Alcotest.list Alcotest.string) "empty" [] (Word.of_string "");
  check (Alcotest.list Alcotest.string) "only bracket" [ "xyz" ]
    (Word.of_string "<xyz>")

let test_roundtrip () =
  let words = [ []; [ "a" ]; [ "a"; "b" ]; [ "I1"; "a" ]; [ "#oo"; "b" ] ] in
  List.iter
    (fun w ->
      check (Alcotest.list Alcotest.string) "roundtrip" w
        (Word.of_string (Word.to_string w)))
    words

let test_unterminated () =
  Alcotest.check_raises "unterminated" (Invalid_argument "Word.of_string: unterminated '<'")
    (fun () -> ignore (Word.of_string "a<oops"))

let test_hat () =
  check Alcotest.string "hat" "^a" (Word.hat "a");
  check Alcotest.string "unhat" "a" (Word.unhat (Word.hat "a"));
  check Alcotest.string "unhat id" "a" (Word.unhat "a");
  check Alcotest.bool "is_hatted" true (Word.is_hatted "^a");
  check Alcotest.bool "not hatted" false (Word.is_hatted "a");
  check Alcotest.string "double hat" "^^a" (Word.hat (Word.hat "a"))

let test_ops () =
  check Alcotest.int "length" 3 (Word.length [ "a"; "b"; "c" ]);
  check Alcotest.bool "equal" true (Word.equal [ "a" ] [ "a" ]);
  check Alcotest.bool "not equal" false (Word.equal [ "a" ] [ "b" ]);
  check (Alcotest.list Alcotest.string) "concat" [ "a"; "b" ]
    (Word.concat [ "a" ] [ "b" ]);
  check (Alcotest.list Alcotest.string) "concat eps" [ "a" ]
    (Word.concat Word.epsilon [ "a" ])

let test_compare_order () =
  check Alcotest.bool "lex" true (Word.compare [ "a" ] [ "b" ] < 0);
  check Alcotest.bool "eq" true (Word.compare [ "a"; "b" ] [ "a"; "b" ] = 0)

let () =
  Alcotest.run "word"
    [
      ( "word",
        [
          Alcotest.test_case "of_string" `Quick test_of_string;
          Alcotest.test_case "roundtrip" `Quick test_roundtrip;
          Alcotest.test_case "unterminated" `Quick test_unterminated;
          Alcotest.test_case "hat" `Quick test_hat;
          Alcotest.test_case "ops" `Quick test_ops;
          Alcotest.test_case "compare" `Quick test_compare_order;
        ] );
    ]
