let gen_rw = QCheck2.Gen.pair (Testutil.gen_regex ()) (Testutil.gen_word ())

let test_accepts =
  Testutil.qtest ~count:150 "DFA accepts iff regex matches" gen_rw (fun (r, w) ->
      Dfa.accepts (Dfa.of_nfa (Nfa.of_regex r)) w = Regex.matches r w)

let test_complement =
  Testutil.qtest "complement flips membership over its alphabet"
    QCheck2.Gen.(pair (Testutil.gen_regex ()) (Testutil.gen_word ~max_len:4 ()))
    (fun (r, w) ->
      let d = Dfa.of_nfa ~alphabet:[ "a"; "b"; "c" ] (Nfa.of_regex r) in
      Dfa.accepts (Dfa.complement d) w = not (Dfa.accepts d w))

let test_minimize =
  Testutil.qtest ~count:100 "minimize preserves the language" gen_rw
    (fun (r, w) ->
      let d = Dfa.of_nfa ~alphabet:[ "a"; "b"; "c" ] (Nfa.of_regex r) in
      let m = Dfa.minimize d in
      m.Dfa.nstates <= d.Dfa.nstates && Dfa.accepts m w = Dfa.accepts d w)

let test_included_sound =
  Testutil.qtest ~count:80 "included implies no short separating word"
    QCheck2.Gen.(
      pair (Testutil.gen_regex ~max_depth:2 ()) (Testutil.gen_regex ~max_depth:2 ()))
    (fun (r, s) ->
      let inc = Dfa.regex_included r s in
      let short_counterexample =
        List.exists
          (fun w -> not (Regex.matches s w))
          (Regex.enumerate ~max_len:4 r)
      in
      (not inc) || not short_counterexample)

let test_included_reflexive =
  Testutil.qtest "inclusion is reflexive" (Testutil.gen_regex ()) (fun r ->
      Dfa.regex_included r r)

let test_included_union =
  Testutil.qtest ~count:80 "r included in r|s"
    QCheck2.Gen.(
      pair (Testutil.gen_regex ~max_depth:2 ()) (Testutil.gen_regex ~max_depth:2 ()))
    (fun (r, s) ->
      Dfa.regex_included r (Regex.Alt (r, s))
      && Dfa.regex_included s (Regex.Alt (r, s)))

let test_equiv_identities () =
  let cases =
    [
      ("(ab)*", "%|ab(ab)*", true);
      ("a*", "%|aa*", true);
      ("a|b", "b|a", true);
      ("(a|b)*", "(a*b*)*", true);
      ("a+", "a*", false);
      ("ab", "ba", false);
      ("a?", "%|a", true);
    ]
  in
  List.iter
    (fun (r, s, expected) ->
      Alcotest.check Alcotest.bool
        (Printf.sprintf "%s = %s" r s)
        expected
        (Dfa.regex_equivalent (Regex.parse r) (Regex.parse s)))
    cases

let test_shortest () =
  let d = Dfa.of_nfa (Nfa.of_regex (Regex.parse "aab|ba")) in
  match Dfa.shortest_word d with
  | Some w -> Alcotest.check Alcotest.int "len 2" 2 (List.length w)
  | None -> Alcotest.fail "expected a word"

let test_empty () =
  let d = Dfa.of_nfa ~alphabet:[ "a" ] (Nfa.of_regex Regex.Empty) in
  Alcotest.check Alcotest.bool "empty" true (Dfa.is_empty d);
  Alcotest.check Alcotest.bool "complement nonempty" false
    (Dfa.is_empty (Dfa.complement d))

let () =
  Alcotest.run "dfa"
    [
      ( "unit",
        [
          Alcotest.test_case "equivalences" `Quick test_equiv_identities;
          Alcotest.test_case "shortest" `Quick test_shortest;
          Alcotest.test_case "empty" `Quick test_empty;
        ] );
      ( "properties",
        [
          test_accepts;
          test_complement;
          test_minimize;
          test_included_sound;
          test_included_reflexive;
          test_included_union;
        ] );
    ]
