let check = Alcotest.check

let q = Paper_examples.example_21_query (* x -[(ab)*]-> y ∧ y -[c*]-> x *)

(* Section 2.2's two example expansions *)
let test_example_e1 () =
  let e = Paper_examples.example_22_e1 in
  (* E1(x,x) = x -a-> z ∧ z -b-> x *)
  check Alcotest.int "two atoms" 2 (List.length e.Expansion.cq.Cq.atoms);
  check Alcotest.int "two vars" 2 (Cq.nvars e.Expansion.cq);
  (* the ε-atom collapsed x and y: the free tuple repeats one variable *)
  check Alcotest.bool "free tuple collapsed" true
    (match e.Expansion.cq.Cq.free with [ a; b ] -> a = b | _ -> false)

let test_example_e2 () =
  let e = Paper_examples.example_22_e2 in
  check Alcotest.int "three atoms" 3 (List.length e.Expansion.cq.Cq.atoms);
  check Alcotest.int "three vars" 3 (Cq.nvars e.Expansion.cq);
  check Alcotest.bool "free tuple distinct" true
    (match e.Expansion.cq.Cq.free with [ a; b ] -> a <> b | _ -> false)

let test_expand_checks_membership () =
  Alcotest.check_raises "word not in language"
    (Invalid_argument "Expansion.expand: word a not in language (ab)*")
    (fun () -> ignore (Expansion.expand q [| [ "a" ]; [] |]))

let test_atom_related () =
  (* expansion of x -[ab]-> y: all three vars pairwise atom-related *)
  let q = Crpq.parse "x -[ab]-> y" in
  let e = Expansion.expand q [| Word.of_string "ab" |] in
  check Alcotest.int "three pairs" 3 (List.length e.Expansion.atom_related);
  (* self-loop atom: src and dst coincide, so only pairs with the internal var *)
  let q2 = Crpq.parse "x -[ab]-> x" in
  let e2 = Expansion.expand q2 [| Word.of_string "ab" |] in
  check Alcotest.int "cycle pairs" 1 (List.length e2.Expansion.atom_related)

let test_profiles_count () =
  (* (ab)* within length 2: ε, ab; c* within length 2: ε, c, cc *)
  let ps = Expansion.profiles ~max_len:2 q in
  check Alcotest.int "2 * 3 profiles" 6 (List.length ps)

let test_finite_expansions () =
  let q = Crpq.parse "x -[a|bb]-> y, y -[c]-> z" in
  check Alcotest.int "two expansions" 2 (List.length (Expansion.finite_expansions q));
  Alcotest.check_raises "infinite raises"
    (Invalid_argument "Expansion.finite_expansions: query has infinite languages")
    (fun () -> ignore (Expansion.finite_expansions (Crpq.parse "x -[a*]-> y")))

let test_merges_bell () =
  (* an expansion with 3 variables and no constraints: Bell(3) = 5 merges *)
  let q = Crpq.parse "x -[a]-> y, u -[b]-> v" in
  (* atoms are kept sorted: (u, b, v) comes first *)
  let e = Expansion.expand q [| [ "b" ]; [ "a" ] |] in
  (* 4 vars; forbidden pairs: (x,y) and (u,v); partitions of 4 elements
     avoiding two disjoint forbidden pairs: 15 total Bell(4), minus those
     merging x~y or u~v *)
  let ms = Expansion.merges e in
  check Alcotest.bool "identity present" true
    (List.exists (fun m -> Cq.nvars m.Expansion.cq = 4) ms);
  (* count by brute force definition *)
  check Alcotest.int "valid partitions" 7 (List.length ms)

let test_merge_specific () =
  let q = Crpq.parse "x -[a]-> y, y -[b]-> z" in
  let e = Expansion.expand q [| [ "a" ]; [ "b" ] |] in
  let m = Expansion.merge e [ ("x", "z") ] in
  check Alcotest.int "two vars" 2 (Cq.nvars m.Expansion.cq);
  Alcotest.check_raises "atom-related collapse rejected"
    (Invalid_argument "Expansion.merge: an atom-related pair would collapse")
    (fun () -> ignore (Expansion.merge e [ ("x", "y") ]))

let test_ainj_expansions () =
  let q = Crpq.parse "x -[a]-> y, y -[b]-> z" in
  (* expansions: single profile; merges: vars x,y,z with forbidden (x,y),(y,z):
     partitions: all-singleton, {x,z}: 2 *)
  let es = Expansion.ainj_expansions ~max_len:2 q in
  check Alcotest.int "two a-inj expansions" 2 (List.length es)

let test_to_graph () =
  let e = Paper_examples.example_22_e2 in
  let g, free = Expansion.to_graph e in
  check Alcotest.int "3 nodes" 3 (Graph.nnodes g);
  check Alcotest.int "3 edges" 3 (Graph.nedges g);
  check Alcotest.int "free tuple arity" 2 (List.length free)

let prop_expansion_words_match =
  Testutil.qtest ~count:50 "every expansion profile matches the languages"
    (Testutil.gen_crpq ~max_atoms:2 ())
    (fun q ->
      List.for_all
        (fun e ->
          List.for_all2
            (fun (a : Crpq.atom) w -> Regex.matches a.Crpq.lang w)
            q.Crpq.atoms
            (Array.to_list e.Expansion.profile))
        (Expansion.expansions ~max_len:2 q))

let prop_atom_related_distinct =
  Testutil.qtest ~count:50 "atom-related pairs are pairs of distinct variables"
    (Testutil.gen_crpq ~max_atoms:2 ())
    (fun q ->
      List.for_all
        (fun e ->
          List.for_all
            (fun (x, y) ->
              x <> y
              && List.mem x (Cq.vars e.Expansion.cq)
              && List.mem y (Cq.vars e.Expansion.cq))
            e.Expansion.atom_related)
        (Expansion.expansions ~max_len:2 q))

let prop_merges_respect_constraints =
  Testutil.qtest ~count:30 "merges never collapse atom-related pairs"
    (Testutil.gen_crpq ~max_atoms:2 ~max_vars:2 ())
    (fun q ->
      List.for_all
        (fun e ->
          List.for_all
            (fun m ->
              List.for_all (fun (x, y) -> x <> y) m.Expansion.atom_related)
            (Expansion.merges e))
        (Expansion.expansions ~max_len:2 q))

let () =
  Alcotest.run "expansion"
    [
      ( "unit",
        [
          Alcotest.test_case "example E1" `Quick test_example_e1;
          Alcotest.test_case "example E2" `Quick test_example_e2;
          Alcotest.test_case "membership check" `Quick test_expand_checks_membership;
          Alcotest.test_case "atom_related" `Quick test_atom_related;
          Alcotest.test_case "profiles count" `Quick test_profiles_count;
          Alcotest.test_case "finite expansions" `Quick test_finite_expansions;
          Alcotest.test_case "merges" `Quick test_merges_bell;
          Alcotest.test_case "merge specific" `Quick test_merge_specific;
          Alcotest.test_case "a-inj expansions" `Quick test_ainj_expansions;
          Alcotest.test_case "to_graph" `Quick test_to_graph;
        ] );
      ( "properties",
        [
          prop_expansion_words_match;
          prop_atom_related_distinct;
          prop_merges_respect_constraints;
        ] );
    ]
