let check = Alcotest.check

let pair = Alcotest.pair Alcotest.int Alcotest.int

let test_standard_vs_simple () =
  let g = Generate.lollipop ~handle:2 ~cycle_len:3 ~label:"a" in
  let l9 = Regex.word (List.init 9 (fun _ -> "a")) in
  check Alcotest.bool "standard a^9" true (Rpq.check_standard l9 g 0 3);
  check Alcotest.bool "simple a^9 fails" false (Rpq.check_simple_path l9 g 0 3);
  check Alcotest.bool "trail a^9 fails too" false (Rpq.check_trail l9 g 0 3)

let test_eval_sets () =
  let g = Generate.line (Word.of_string "ab") in
  let l = Regex.parse "ab" in
  check (Alcotest.list pair) "standard" [ (0, 2) ] (Rpq.eval_standard l g);
  check (Alcotest.list pair) "simple" [ (0, 2) ] (Rpq.eval_simple_path l g);
  check (Alcotest.list pair) "trail" [ (0, 2) ] (Rpq.eval_trail l g)

let test_diagonal_cycles () =
  let g = Generate.cycle (Word.of_string "ab") in
  let l = Regex.parse "(ab)+" in
  check Alcotest.bool "simple cycle found" true (Rpq.check_simple_path l g 0 0);
  check Alcotest.bool "standard too" true (Rpq.check_standard l g 0 0)

let test_witness () =
  let g = Generate.line (Word.of_string "aab") in
  match Rpq.witness_simple_path (Regex.parse "aab") g 0 3 with
  | Some p ->
    check Alcotest.bool "valid witness" true (Path.valid_in g p && Path.is_simple p)
  | None -> Alcotest.fail "expected witness"

let test_containment_is_language_inclusion () =
  check Alcotest.bool "a+ in a*" true (Rpq.contained (Regex.parse "a+") (Regex.parse "a*"));
  check Alcotest.bool "a* not in a+" false
    (Rpq.contained (Regex.parse "a*") (Regex.parse "a+"));
  check Alcotest.bool "(ab)+ in (ab)*" true
    (Rpq.contained (Regex.parse "(ab)+") (Regex.parse "(ab)*"))

(* the RPQ/RPQ containment coincides with CRPQ containment under each
   semantics (observation of Prop F.8) *)
let prop_rpq_containment_coincides =
  Testutil.qtest ~count:25 "RPQ containment = CRPQ containment, all semantics"
    QCheck2.Gen.(
      pair (Testutil.gen_regex ~max_depth:2 ()) (Testutil.gen_regex ~max_depth:2 ()))
    (fun (l1, l2) ->
      QCheck2.assume (not (Regex.is_empty_lang l1));
      QCheck2.assume (not (Regex.is_empty_lang l2));
      let lang_inc = Rpq.contained l1 l2 in
      let q1 = Rpq.to_crpq l1 and q2 = Rpq.to_crpq l2 in
      List.for_all
        (fun sem ->
          match Containment.decide ~bound:4 sem q1 q2 with
          | Containment.Contained -> lang_inc
          | Containment.Not_contained _ -> not lang_inc
          | Containment.Unknown _ ->
            (* bounded fallback exhausted: no conclusion *)
            true)
        Semantics.node_semantics)

let prop_simple_subset_standard =
  Testutil.qtest ~count:60 "simple-path answers are standard answers"
    QCheck2.Gen.(pair (Testutil.gen_regex ~max_depth:2 ()) (Testutil.gen_graph ()))
    (fun (l, g) ->
      let st = Rpq.eval_standard l g in
      List.for_all (fun p -> List.mem p st) (Rpq.eval_simple_path l g)
      && List.for_all (fun p -> List.mem p st) (Rpq.eval_trail l g))

let () =
  Alcotest.run "rpq"
    [
      ( "unit",
        [
          Alcotest.test_case "standard vs simple" `Quick test_standard_vs_simple;
          Alcotest.test_case "eval sets" `Quick test_eval_sets;
          Alcotest.test_case "diagonal" `Quick test_diagonal_cycles;
          Alcotest.test_case "witness" `Quick test_witness;
          Alcotest.test_case "containment" `Quick test_containment_is_language_inclusion;
        ] );
      ( "properties",
        [ prop_rpq_containment_coincides; prop_simple_subset_standard ] );
    ]
