let check = Alcotest.check

let decide sem q1 q2 = Containment.decide sem q1 q2

let expect_bool name expected verdict =
  match Containment.verdict_bool verdict with
  | Some b -> check Alcotest.bool name expected b
  | None -> Alcotest.failf "%s: verdict unknown" name

(* ------------------------------------------------------------------ *)
(* Example 4.7: the containment relations are incomparable             *)
(* ------------------------------------------------------------------ *)

let test_example_47 () =
  List.iter
    (fun (name, sem, q1, q2, expected) ->
      expect_bool
        (Printf.sprintf "%s under %s" name (Semantics.to_string sem))
        expected (decide sem q1 q2))
    Paper_examples.example_47_expectations

(* counterexamples returned must actually defeat Q2 *)
let test_counterexample_validity () =
  List.iter
    (fun (_, sem, q1, q2, expected) ->
      if not expected then
        match decide sem q1 q2 with
        | Containment.Not_contained w ->
          check Alcotest.bool "witness defeats q2" true
            (Containment.is_counterexample sem q2 w.Containment.expansion);
          ignore q1
        | _ -> Alcotest.fail "expected a counterexample")
    Paper_examples.example_47_expectations

(* ------------------------------------------------------------------ *)
(* Deterministic cases                                                 *)
(* ------------------------------------------------------------------ *)

let test_basic_cases () =
  let c s q1 q2 = decide s (Crpq.parse q1) (Crpq.parse q2) in
  (* reflexivity on all semantics *)
  List.iter
    (fun sem ->
      expect_bool "reflexive" true (c sem "x -[ab]-> y" "x -[ab]-> y"))
    Semantics.node_semantics;
  (* relaxing the language *)
  expect_bool "a in a|b (st)" true (c Semantics.St "x -[a]-> y" "x -[a|b]-> y");
  expect_bool "a|b not in a (st)" false (c Semantics.St "x -[a|b]-> y" "x -[a]-> y");
  (* dropping an atom *)
  expect_bool "two atoms in one (st)" true
    (c Semantics.St "x -[a]-> y, y -[b]-> z" "x -[a]-> y");
  (* the unsatisfiable query is contained in everything *)
  expect_bool "empty lhs" true (c Semantics.A_inj "x -[!]-> y" "x -[a]-> y")

let test_eps_subtleties () =
  let c s q1 q2 = decide s (Crpq.parse q1) (Crpq.parse q2) in
  (* a* contains the ε-collapse: a+ lacks it *)
  expect_bool "a* not in a+ (st)" false (c Semantics.St "Q(x,y) :- x -[a*]-> y" "Q(x,y) :- x -[a+]-> y");
  expect_bool "a+ in a* (st)" true (c Semantics.St "Q(x,y) :- x -[a+]-> y" "Q(x,y) :- x -[a*]-> y")

let test_strategies () =
  let s sem q1 q2 = Containment.strategy_name sem (Crpq.parse q1) (Crpq.parse q2) in
  check Alcotest.string "cq" "cq-homomorphism" (s Semantics.St "x -[a]-> y" "x -[b]-> y");
  check Alcotest.string "finite lhs" "finite-expansion enumeration"
    (s Semantics.St "x -[ab]-> y" "x -[a*]-> y");
  check Alcotest.string "qinj abstraction" "abstraction algorithm (Thm 5.1)"
    (s Semantics.Q_inj "x -[a+]-> y" "x -[a*]-> y");
  check Alcotest.string "bounded" "bounded counterexample search"
    (s Semantics.A_inj "x -[a+]-> y" "x -[a*]-> y")

let test_edge_semantics_rejected () =
  Alcotest.check_raises "edge semantics"
    (Invalid_argument "Containment: edge semantics not supported (Section 7)")
    (fun () ->
      ignore (decide Semantics.A_edge_inj (Crpq.parse "x -[a]-> y") (Crpq.parse "x -[a]-> y")))

let test_arity_mismatch () =
  Alcotest.check_raises "arity" (Invalid_argument "Containment: queries of different arities")
    (fun () ->
      ignore
        (decide Semantics.St (Crpq.parse "Q(x) :- x -[a]-> y") (Crpq.parse "x -[a]-> y")))

(* ------------------------------------------------------------------ *)
(* Cross-validation properties                                         *)
(* ------------------------------------------------------------------ *)

(* CQ/CQ homomorphism deciders agree with finite expansion enumeration *)
let prop_cq_deciders_agree =
  Testutil.qtest ~count:50 "cq_cq agrees with finite_lhs"
    (QCheck2.Gen.pair
       (Testutil.gen_crpq ~cls:Crpq.Class_cq ~max_atoms:2 ~max_vars:3 ())
       (Testutil.gen_crpq ~cls:Crpq.Class_cq ~max_atoms:2 ~max_vars:3 ()))
    (fun (q1, q2) ->
      List.for_all
        (fun sem ->
          let via_hom =
            Containment.cq_cq sem (Option.get (Crpq.to_cq q1))
              (Option.get (Crpq.to_cq q2))
          in
          match Containment.finite_lhs sem q1 q2 with
          | Containment.Contained -> via_hom
          | Containment.Not_contained _ -> not via_hom
          | Containment.Unknown _ -> false)
        Semantics.node_semantics)

(* semantic soundness: a Contained verdict survives random databases *)
let prop_contained_sound =
  Testutil.qtest ~count:30 "Contained verdicts hold on random databases"
    QCheck2.Gen.(
      triple
        (Testutil.gen_crpq ~cls:Crpq.Class_fin ~max_atoms:2 ~max_vars:2 ())
        (Testutil.gen_crpq ~cls:Crpq.Class_fin ~max_atoms:2 ~max_vars:2 ())
        (Testutil.gen_graph ~max_nodes:3 ()))
    (fun (q1, q2, g) ->
      List.for_all
        (fun sem ->
          match Containment.finite_lhs sem q1 q2 with
          | Containment.Contained ->
            List.for_all
              (fun t -> (not (Eval.check sem q1 g t)) || Eval.check sem q2 g t)
              (List.map (fun v -> List.map (fun _ -> v) q1.Crpq.free) (Graph.nodes g))
            && ((not (Eval.eval_bool sem q1 g)) || Eval.eval_bool sem q2 g)
          | Containment.Not_contained w ->
            Containment.is_counterexample sem q2 w.Containment.expansion
          | Containment.Unknown _ -> false)
        Semantics.node_semantics)

(* Lemma F.3: CQ/CQ a-inj containment = non-contracting hom existence,
   cross-checked against the merge-based enumeration *)
let prop_lemma_f3 =
  Testutil.qtest ~count:60 "Lemma F.3 non-contracting characterization"
    (QCheck2.Gen.pair
       (Testutil.gen_cq ~max_atoms:3 ~max_vars:3 ())
       (Testutil.gen_cq ~max_atoms:3 ~max_vars:3 ()))
    (fun (c1, c2) ->
      let q1 = Crpq.of_cq c1 and q2 = Crpq.of_cq c2 in
      let via_hom = Cq.non_contracting_hom_exists c2 c1 in
      match Containment.finite_lhs Semantics.A_inj q1 q2 with
      | Containment.Contained -> via_hom
      | Containment.Not_contained _ -> not via_hom
      | Containment.Unknown _ -> false)

(* §4.1: both injective containments imply standard containment, while
   q-inj and a-inj containment are incomparable (Example 4.7 shows the
   non-implications; here we check the implications on random finite
   pairs where all three deciders are exact) *)
let prop_injective_implies_standard =
  Testutil.qtest ~count:40 "q-inj or a-inj containment implies st containment"
    (QCheck2.Gen.pair
       (Testutil.gen_crpq ~cls:Crpq.Class_fin ~max_atoms:2 ~max_vars:3 ())
       (Testutil.gen_crpq ~cls:Crpq.Class_fin ~max_atoms:2 ~max_vars:3 ()))
    (fun (q1, q2) ->
      let decide sem =
        match Containment.verdict_bool (Containment.finite_lhs sem q1 q2) with
        | Some b -> b
        | None -> false
      in
      let st = decide Semantics.St in
      ((not (decide Semantics.Q_inj)) || st)
      && ((not (decide Semantics.A_inj)) || st))

let () =
  Alcotest.run "containment"
    [
      ( "paper",
        [
          Alcotest.test_case "example 4.7" `Quick test_example_47;
          Alcotest.test_case "counterexamples valid" `Quick test_counterexample_validity;
        ] );
      ( "unit",
        [
          Alcotest.test_case "basic cases" `Quick test_basic_cases;
          Alcotest.test_case "epsilon subtleties" `Quick test_eps_subtleties;
          Alcotest.test_case "strategies" `Quick test_strategies;
          Alcotest.test_case "edge semantics rejected" `Quick test_edge_semantics_rejected;
          Alcotest.test_case "arity mismatch" `Quick test_arity_mismatch;
        ] );
      ( "properties",
        [
          prop_cq_deciders_agree;
          prop_contained_sound;
          prop_lemma_f3;
          prop_injective_implies_standard;
        ] );
    ]
