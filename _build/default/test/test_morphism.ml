let check = Alcotest.check

let path2 = Graph.make ~nnodes:3 [ (0, "a", 1); (1, "a", 2) ]

let loop1 = Graph.make ~nnodes:1 [ (0, "a", 0) ]

let cycle3 = Graph.make ~nnodes:3 [ (0, "a", 1); (1, "a", 2); (2, "a", 0) ]

let test_hom_basic () =
  (* path of length 2 folds onto a self loop *)
  check Alcotest.bool "fold onto loop" true
    (Morphism.exists ~pattern:path2 ~target:loop1 ());
  check Alcotest.bool "no injective fold" false
    (Morphism.exists ~injective:true ~pattern:path2 ~target:loop1 ());
  check Alcotest.bool "path into cycle" true
    (Morphism.exists ~injective:true ~pattern:path2 ~target:cycle3 ());
  (* cycle3 does not map into path2 *)
  check Alcotest.bool "cycle into path" false
    (Morphism.exists ~pattern:cycle3 ~target:path2 ())

let test_labels_matter () =
  let pb = Graph.make ~nnodes:2 [ (0, "b", 1) ] in
  check Alcotest.bool "b-edge into a-graph" false
    (Morphism.exists ~pattern:pb ~target:cycle3 ())

let test_fixed () =
  check Alcotest.bool "fix endpoint ok" true
    (Morphism.exists ~fixed:[ (0, 1) ] ~pattern:path2 ~target:cycle3 ());
  (* fixing two pattern nodes to the same target breaks injectivity *)
  check Alcotest.bool "conflicting fix" false
    (Morphism.exists
       ~fixed:[ (0, 0); (2, 0) ]
       ~injective:true ~pattern:path2 ~target:cycle3 ());
  check Alcotest.bool "same fix non-injective ok" true
    (Morphism.exists ~fixed:[ (0, 0); (2, 2) ] ~pattern:path2 ~target:cycle3 ())

let test_distinct_pairs () =
  (* path2 folds onto loop1 unless endpoints must differ *)
  check Alcotest.bool "distinct endpoints blocked on loop" false
    (Morphism.exists ~distinct_pairs:[ (0, 2) ] ~pattern:path2 ~target:loop1 ());
  check Alcotest.bool "distinct endpoints ok on cycle" true
    (Morphism.exists ~distinct_pairs:[ (0, 2) ] ~pattern:path2 ~target:cycle3 ());
  (* a reflexive distinctness constraint is unsatisfiable *)
  check Alcotest.bool "reflexive distinct pair" false
    (Morphism.exists ~distinct_pairs:[ (1, 1) ] ~pattern:path2 ~target:cycle3 ())

let test_count () =
  (* path of 2 a-edges into cycle3: 3 rotations *)
  check Alcotest.int "three embeddings" 3
    (Morphism.count ~injective:true ~pattern:path2 ~target:cycle3 ());
  (* non-injective also allows... cycle3 is deterministic: still 3 *)
  check Alcotest.int "three homs" 3 (Morphism.count ~pattern:path2 ~target:cycle3 ())

let test_empty_pattern () =
  check Alcotest.bool "empty pattern maps" true
    (Morphism.exists ~pattern:Graph.empty ~target:cycle3 ())

let test_subgraph_iso () =
  let k3 = Graph.make ~nnodes:3 [ (0,"e",1);(1,"e",0);(0,"e",2);(2,"e",0);(1,"e",2);(2,"e",1) ] in
  let k4 =
    Graph.make ~nnodes:4
      (List.concat_map (fun u -> List.filter_map (fun v -> if u <> v then Some (u,"e",v) else None) [0;1;2;3]) [0;1;2;3])
  in
  check Alcotest.bool "K3 in K4" true (Morphism.subgraph_iso ~pattern:k3 ~target:k4);
  check Alcotest.bool "K4 not in K3" false (Morphism.subgraph_iso ~pattern:k4 ~target:k3)

let test_non_contracting () =
  check Alcotest.bool "non-contracting blocked on loop" false
    (Morphism.exists_non_contracting ~pattern:path2 ~target:loop1);
  check Alcotest.bool "non-contracting on cycle" true
    (Morphism.exists_non_contracting ~pattern:path2 ~target:cycle3)

let gen_pair =
  QCheck2.Gen.pair (Testutil.gen_graph ~max_nodes:3 ()) (Testutil.gen_graph ~max_nodes:4 ())

let prop_found_is_hom =
  Testutil.qtest ~count:150 "every reported mapping is a homomorphism" gen_pair
    (fun (pattern, target) ->
      let ok = ref true in
      Morphism.iter ~pattern ~target (fun m ->
          if not (Morphism.is_homomorphism ~pattern ~target m) then ok := false);
      !ok)

let prop_injective_injective =
  Testutil.qtest ~count:150 "injective mappings are injective" gen_pair
    (fun (pattern, target) ->
      let ok = ref true in
      Morphism.iter ~injective:true ~pattern ~target (fun m ->
          let img = List.sort compare (Array.to_list m) in
          if List.length (List.sort_uniq compare img) <> List.length img then
            ok := false);
      !ok)

let prop_count_brute =
  Testutil.qtest ~count:80 "count agrees with brute-force enumeration"
    (QCheck2.Gen.pair (Testutil.gen_graph ~max_nodes:3 ()) (Testutil.gen_graph ~max_nodes:3 ()))
    (fun (pattern, target) ->
      let np = Graph.nnodes pattern and nt = Graph.nnodes target in
      (* enumerate all |T|^|P| mappings *)
      let count = ref 0 in
      let m = Array.make np 0 in
      let rec go i =
        if i = np then begin
          if Morphism.is_homomorphism ~pattern ~target m then incr count
        end
        else
          for u = 0 to nt - 1 do
            m.(i) <- u;
            go (i + 1)
          done
      in
      if np > 0 && nt = 0 then ()
      else go 0;
      Morphism.count ~pattern ~target () = !count)

let prop_identity =
  Testutil.qtest "identity is always found on self" (Testutil.gen_graph ())
    (fun g ->
      Graph.nnodes g = 0 || Morphism.exists ~injective:true ~pattern:g ~target:g ())

let () =
  Alcotest.run "morphism"
    [
      ( "unit",
        [
          Alcotest.test_case "basic" `Quick test_hom_basic;
          Alcotest.test_case "labels" `Quick test_labels_matter;
          Alcotest.test_case "fixed" `Quick test_fixed;
          Alcotest.test_case "distinct pairs" `Quick test_distinct_pairs;
          Alcotest.test_case "count" `Quick test_count;
          Alcotest.test_case "empty pattern" `Quick test_empty_pattern;
          Alcotest.test_case "subgraph iso" `Quick test_subgraph_iso;
          Alcotest.test_case "non-contracting" `Quick test_non_contracting;
        ] );
      ( "properties",
        [ prop_found_is_hom; prop_injective_injective; prop_count_brute; prop_identity ] );
    ]
