let check = Alcotest.check

let p_simple = { Path.src = 0; steps = [ ("a", 1); ("b", 2) ] }

let p_cycle = { Path.src = 0; steps = [ ("a", 1); ("b", 0) ] }

let p_repeat = { Path.src = 0; steps = [ ("a", 1); ("b", 0); ("a", 1) ] }

let test_accessors () =
  check Alcotest.int "src" 0 (Path.src p_simple);
  check Alcotest.int "tgt" 2 (Path.tgt p_simple);
  check Alcotest.int "tgt cycle" 0 (Path.tgt p_cycle);
  check Alcotest.int "length" 2 (Path.length p_simple);
  check Alcotest.int "empty tgt" 7 (Path.tgt (Path.empty 7));
  check (Alcotest.list Alcotest.string) "label" [ "a"; "b" ] (Path.label p_simple);
  check (Alcotest.list Alcotest.int) "nodes" [ 0; 1; 2 ] (Path.nodes p_simple);
  check (Alcotest.list Alcotest.int) "internal" [ 1 ]
    (Path.internal_nodes p_simple);
  check (Alcotest.list Alcotest.int) "internal of cycle" [ 1 ]
    (Path.internal_nodes p_cycle)

let test_predicates () =
  check Alcotest.bool "simple" true (Path.is_simple p_simple);
  check Alcotest.bool "cycle not simple" false (Path.is_simple p_cycle);
  check Alcotest.bool "cycle is simple cycle" true (Path.is_simple_cycle p_cycle);
  check Alcotest.bool "repeat not simple cycle" false (Path.is_simple_cycle p_repeat);
  check Alcotest.bool "empty is simple" true (Path.is_simple (Path.empty 0));
  check Alcotest.bool "empty is simple cycle" true
    (Path.is_simple_cycle (Path.empty 0));
  check Alcotest.bool "trail" true (Path.is_trail p_cycle);
  check Alcotest.bool "repeated edge not trail" false
    (Path.is_trail { Path.src = 0; steps = [ ("a", 0); ("a", 0) ] })

let test_edges_append () =
  let p = Path.append (Path.empty 3) "x" 4 in
  check Alcotest.int "appended tgt" 4 (Path.tgt p);
  check Alcotest.int "edges" 1 (List.length (Path.edges p));
  let g = Graph.make ~nnodes:5 [ (3, "x", 4) ] in
  check Alcotest.bool "valid" true (Path.valid_in g p);
  check Alcotest.bool "invalid" false
    (Path.valid_in g (Path.append p "y" 0))

let test_self_loop_cycle () =
  let p = { Path.src = 0; steps = [ ("a", 0) ] } in
  check Alcotest.bool "self loop is simple cycle" true (Path.is_simple_cycle p);
  check Alcotest.bool "self loop is not simple path" false (Path.is_simple p)

let () =
  Alcotest.run "path"
    [
      ( "path",
        [
          Alcotest.test_case "accessors" `Quick test_accessors;
          Alcotest.test_case "predicates" `Quick test_predicates;
          Alcotest.test_case "edges/append" `Quick test_edges_append;
          Alcotest.test_case "self loop" `Quick test_self_loop_cycle;
        ] );
    ]
