let check = Alcotest.check

let decide q1 q2 = Containment_f7.decide_st (Crpq.parse q1) (Crpq.parse q2)

let expect name expected q1 q2 =
  match decide q1 q2 with
  | Containment_f7.F7_contained -> check Alcotest.bool name expected true
  | Containment_f7.F7_not_contained _ -> check Alcotest.bool name expected false

let test_line_pattern () =
  let pat q =
    Containment_f7.line_pattern (Option.get (Crpq.to_cq (Crpq.parse q)))
  in
  (match pat "x -[a]-> y, y -[b]-> z" with
  | Some t ->
    check Alcotest.int "length 2" 2 (Array.length t);
    check Alcotest.bool "letters" true (t.(0) = Some "a" && t.(1) = Some "b")
  | None -> Alcotest.fail "expected a pattern");
  (* forks with the same letter are still line-shaped *)
  (match pat "x -[a]-> y, x -[a]-> z" with
  | Some t -> check Alcotest.int "fork length 1" 1 (Array.length t)
  | None -> Alcotest.fail "expected a pattern");
  (* a letter conflict is not *)
  check Alcotest.bool "conflict" true (pat "x -[a]-> y, x -[b]-> z" = None);
  (* a cycle is not *)
  check Alcotest.bool "cycle" true (pat "x -[a]-> y, y -[a]-> x" = None)

let test_exact_verdicts () =
  (* the b-edge exists somewhere in every long-enough a*ba* word *)
  expect "a*ba* contains a b-edge" true "x -[a*ba*]-> y" "u -[b]-> v";
  expect "a* need not contain b" false "x -[a*]-> y" "u -[b]-> v";
  (* two-letter pattern inside a starred language *)
  expect "(ab)+ contains ab" true "x -[(ab)+]-> y" "u -[a]-> v, v -[b]-> w";
  expect "(ab)+ never contains ba... wrong: abab does" true
    "x -[(ab)+ab]-> y" "u -[b]-> v, v -[a]-> w";
  expect "(a|b)+ can avoid ab" false "x -[(a|b)+]-> y" "u -[a]-> v, v -[b]-> w";
  (* multiple components: all must map *)
  expect "both letters forced" true "x -[(ab)+ba]-> y"
    "u -[a]-> v, s -[b]-> t";
  expect "second component can fail" false "x -[a+]-> y"
    "u -[a]-> v, s -[b]-> t"

let test_window_cases () =
  (* mapping near the query variables (windows) *)
  expect "prefix forced" true "Q(x, y) :- x -[ab*]-> y" "Q(u, v) :- u -[a]-> w";
  expect "suffix forced" true "Q(x, y) :- x -[b*a]-> y" "Q(u, v) :- w -[a]-> v";
  expect "wrong suffix" false "Q(x, y) :- x -[ab*]-> y" "Q(u, v) :- w -[a]-> v";
  (* spanning a shared variable of Q1 *)
  expect "span two atoms" true "x -[a*c]-> y, y -[db*]-> z"
    "u -[c]-> v, v -[d]-> w"

let test_free_variables () =
  expect "free vars aligned" true "Q(x) :- x -[ab*]-> y" "Q(x) :- x -[a]-> z";
  expect "free vars misaligned" false "Q(x) :- y -[b*a]-> x" "Q(x) :- x -[a]-> z";
  (* repeated free tuple demands *)
  expect "conflicting demands" false "Q(x, y) :- x -[a+]-> y"
    "Q(u, u) :- u -[a]-> w"

let test_agrees_with_bounded () =
  (* the window algorithm must agree with bounded search whenever the
     latter finds a counterexample, and with finite enumeration on
     finite queries *)
  let rng = Random.State.make [| 123 |] in
  for _ = 1 to 40 do
    let q1 =
      Qgen.random_crpq ~rng ~labels:[ "a"; "b" ] ~nvars:2 ~natoms:1 ~arity:0
        ~cls:Crpq.Class_crpq ()
    in
    let q2 =
      Qgen.random_crpq ~rng ~labels:[ "a"; "b" ] ~nvars:3 ~natoms:2 ~arity:0
        ~cls:Crpq.Class_cq ()
    in
    match Containment_f7.decide_st q1 q2 with
    | exception Containment_f7.Unsupported _ -> ()
    | Containment_f7.F7_not_contained e ->
      (* witnesses are verified internally; double-check *)
      let g, t = Expansion.to_graph e in
      if Eval.check Semantics.St q2 g t then
        Alcotest.failf "bad witness for %s ⊆ %s" (Crpq.to_string q1)
          (Crpq.to_string q2)
    | Containment_f7.F7_contained -> begin
      match Containment.bounded Semantics.St ~max_len:6 q1 q2 with
      | Containment.Not_contained w ->
        Alcotest.failf "F7 says contained, bounded refutes: %s ⊆ %s (ce %s)"
          (Crpq.to_string q1) (Crpq.to_string q2)
          (Cq.to_string w.Containment.expansion.Expansion.cq)
      | _ -> ()
    end
  done

let test_dispatcher_uses_f7 () =
  check Alcotest.string "strategy" "window algorithm (Prop F.7)"
    (Containment.strategy_name Semantics.St (Crpq.parse "x -[a+]-> y")
       (Crpq.parse "u -[a]-> v"));
  (* end to end through the dispatcher *)
  match
    Containment.decide Semantics.St (Crpq.parse "x -[a+]-> y")
      (Crpq.parse "u -[a]-> v")
  with
  | Containment.Contained -> ()
  | _ -> Alcotest.fail "expected exact containment"

let () =
  Alcotest.run "containment_f7"
    [
      ( "unit",
        [
          Alcotest.test_case "line patterns" `Quick test_line_pattern;
          Alcotest.test_case "exact verdicts" `Quick test_exact_verdicts;
          Alcotest.test_case "windows" `Quick test_window_cases;
          Alcotest.test_case "free variables" `Quick test_free_variables;
          Alcotest.test_case "dispatcher" `Quick test_dispatcher_uses_f7;
          Alcotest.test_case "fuzz vs bounded" `Slow test_agrees_with_bounded;
        ] );
    ]
