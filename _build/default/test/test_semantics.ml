let check = Alcotest.check

let test_string_roundtrip () =
  List.iter
    (fun s ->
      check Alcotest.bool "roundtrip" true
        (Semantics.of_string (Semantics.to_string s) = Some s))
    Semantics.all;
  check Alcotest.bool "aliases" true
    (Semantics.of_string "standard" = Some Semantics.St
    && Semantics.of_string "atom-injective" = Some Semantics.A_inj
    && Semantics.of_string "query-injective" = Some Semantics.Q_inj);
  check Alcotest.bool "unknown" true (Semantics.of_string "bogus" = None)

let test_leq_order () =
  (* reflexive *)
  List.iter
    (fun s -> check Alcotest.bool "refl" true (Semantics.leq s s))
    Semantics.all;
  (* the Remark 2.1 chain *)
  check Alcotest.bool "q-inj ⊑ a-inj" true (Semantics.leq Semantics.Q_inj Semantics.A_inj);
  check Alcotest.bool "a-inj ⊑ st" true (Semantics.leq Semantics.A_inj Semantics.St);
  check Alcotest.bool "st not ⊑ a-inj" false (Semantics.leq Semantics.St Semantics.A_inj);
  (* node implies edge at the same level *)
  check Alcotest.bool "q-inj ⊑ q-edge" true
    (Semantics.leq Semantics.Q_inj Semantics.Q_edge_inj);
  check Alcotest.bool "a-inj ⊑ a-edge" true
    (Semantics.leq Semantics.A_inj Semantics.A_edge_inj);
  (* edge does not imply node *)
  check Alcotest.bool "a-edge not ⊑ a-inj" false
    (Semantics.leq Semantics.A_edge_inj Semantics.A_inj)

(* leq is sound w.r.t. evaluation: s1 ⊑ s2 means every s1-answer is an
   s2-answer *)
let prop_leq_sound =
  Testutil.qtest ~count:30 "leq is pointwise sound for evaluation"
    (QCheck2.Gen.pair
       (Testutil.gen_crpq ~max_atoms:2 ~arity:1 ())
       (Testutil.gen_graph ~max_nodes:3 ()))
    (fun (q, g) ->
      List.for_all
        (fun s1 ->
          List.for_all
            (fun s2 ->
              (not (Semantics.leq s1 s2))
              || List.for_all
                   (fun t -> List.mem t (Eval.eval s2 q g))
                   (Eval.eval s1 q g))
            Semantics.all)
        Semantics.all)

let test_transitivity () =
  List.iter
    (fun s1 ->
      List.iter
        (fun s2 ->
          List.iter
            (fun s3 ->
              if Semantics.leq s1 s2 && Semantics.leq s2 s3 then
                check Alcotest.bool "transitive" true (Semantics.leq s1 s3))
            Semantics.all)
        Semantics.all)
    Semantics.all

let () =
  Alcotest.run "semantics"
    [
      ( "unit",
        [
          Alcotest.test_case "string roundtrip" `Quick test_string_roundtrip;
          Alcotest.test_case "order" `Quick test_leq_order;
          Alcotest.test_case "transitivity" `Quick test_transitivity;
        ] );
      ("properties", [ prop_leq_sound ]);
    ]
