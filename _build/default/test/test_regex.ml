let check = Alcotest.check

let re = Regex.parse

let test_parse () =
  check Alcotest.bool "a matches a" true (Regex.matches (re "a") [ "a" ]);
  check Alcotest.bool "(ab)* matches eps" true (Regex.matches (re "(ab)*") []);
  check Alcotest.bool "(ab)* matches abab" true
    (Regex.matches (re "(ab)*") (Word.of_string "abab"));
  check Alcotest.bool "(ab)* rejects aba" false
    (Regex.matches (re "(ab)*") (Word.of_string "aba"));
  check Alcotest.bool "alt" true (Regex.matches (re "a|bc") (Word.of_string "bc"));
  check Alcotest.bool "plus rejects eps" false (Regex.matches (re "a+") []);
  check Alcotest.bool "plus accepts aa" true
    (Regex.matches (re "a+") (Word.of_string "aa"));
  check Alcotest.bool "opt accepts eps" true (Regex.matches (re "a?") []);
  check Alcotest.bool "bracket symbol" true
    (Regex.matches (re "<I1>b") [ "I1"; "b" ]);
  check Alcotest.bool "%% is eps" true (Regex.matches (re "%") []);
  check Alcotest.bool "! is empty" true (Regex.is_empty_lang (re "!"))

let test_parse_errors () =
  List.iter
    (fun s ->
      match Regex.parse s with
      | exception Regex.Parse_error _ -> ()
      | _ -> Alcotest.failf "expected parse error on %S" s)
    [ "("; "a)"; "*a"; "a||b"; "<unclosed"; "" ]

let test_print_parse_roundtrip =
  Testutil.qtest "print/parse roundtrip preserves matching"
    QCheck2.Gen.(pair (Testutil.gen_regex ()) (Testutil.gen_word ()))
    (fun (r, w) ->
      let r' = Regex.parse (Regex.to_string r) in
      Regex.matches r w = Regex.matches r' w)

let test_nullable =
  Testutil.qtest "nullable iff matches eps" (Testutil.gen_regex ()) (fun r ->
      Regex.nullable r = Regex.matches r [])

let test_enumerate_complete =
  Testutil.qtest ~count:60 "enumerate lists exactly the short words"
    (Testutil.gen_regex ~max_depth:2 ())
    (fun r ->
      let words = Regex.enumerate ~max_len:3 r in
      (* soundness *)
      List.for_all (fun w -> Regex.matches r w) words
      && (* completeness against a brute-force word sweep *)
      List.for_all
        (fun w -> (not (Regex.matches r w)) || List.mem w words)
        (List.concat_map
           (fun w2 -> [ w2 ])
           (let syms = [ "a"; "b"; "c" ] in
            let rec all n =
              if n = 0 then [ [] ]
              else
                let shorter = all (n - 1) in
                shorter
                @ List.concat_map
                    (fun w -> List.map (fun s -> s :: w) syms)
                    (List.filter (fun w -> List.length w = n - 1) shorter)
            in
            all 3)))

let test_remove_eps =
  Testutil.qtest "remove_eps removes exactly epsilon"
    QCheck2.Gen.(pair (Testutil.gen_regex ()) (Testutil.gen_word ()))
    (fun (r, w) ->
      let r' = Regex.remove_eps r in
      (not (Regex.nullable r'))
      && if w = [] then true else Regex.matches r' w = Regex.matches r w)

let test_derivative =
  Testutil.qtest "derivative characterizes matching"
    QCheck2.Gen.(
      triple (Testutil.gen_regex ()) Testutil.gen_symbol (Testutil.gen_word ()))
    (fun (r, a, w) -> Regex.matches (Regex.derivative a r) w = Regex.matches r (a :: w))

let test_reverse =
  Testutil.qtest "reverse matches reversed words"
    QCheck2.Gen.(pair (Testutil.gen_regex ()) (Testutil.gen_word ()))
    (fun (r, w) -> Regex.matches (Regex.reverse r) (List.rev w) = Regex.matches r w)

let test_is_finite () =
  check Alcotest.bool "a finite" true (Regex.is_finite (re "a"));
  check Alcotest.bool "ab|c finite" true (Regex.is_finite (re "ab|c"));
  check Alcotest.bool "a* infinite" false (Regex.is_finite (re "a*"));
  check Alcotest.bool "a+ infinite" false (Regex.is_finite (re "a+"));
  check Alcotest.bool "(%|a)* infinite" false (Regex.is_finite (re "(%|a)*"));
  (* a star over an epsilon-only language is still finite *)
  check Alcotest.bool "%* finite" true (Regex.is_finite (Regex.Star Regex.Eps));
  check Alcotest.bool "(!a)* finite" true
    (Regex.is_finite (Regex.Star (Regex.Seq (Regex.Empty, Regex.Sym "a"))))

let test_words_of_finite () =
  let sorted = List.sort compare in
  check
    (Alcotest.list (Alcotest.list Alcotest.string))
    "ab|c" (sorted [ [ "c" ]; [ "a"; "b" ] ])
    (sorted (Regex.words_of_finite (re "ab|c")));
  check
    (Alcotest.list (Alcotest.list Alcotest.string))
    "a?b"
    (sorted [ [ "b" ]; [ "a"; "b" ] ])
    (sorted (Regex.words_of_finite (re "a?b")));
  Alcotest.check_raises "infinite raises"
    (Invalid_argument "Regex.words_of_finite: infinite language") (fun () ->
      ignore (Regex.words_of_finite (re "a*")))

let test_shortest =
  Testutil.qtest "shortest_word is a shortest match" (Testutil.gen_regex ())
    (fun r ->
      match Regex.shortest_word r with
      | None -> Regex.is_empty_lang r
      | Some w ->
        Regex.matches r w
        && List.for_all
             (fun w' -> List.length w' >= List.length w)
             (Regex.enumerate ~max_len:(List.length w) r))

let test_smart_constructors () =
  check Alcotest.bool "seq empty" true (Regex.seq Regex.Empty (re "a") = Regex.Empty);
  check Alcotest.bool "alt empty" true (Regex.alt Regex.Empty (re "a") = re "a");
  check Alcotest.bool "star star" true (Regex.star (Regex.star (re "a")) = Regex.star (re "a"));
  check Alcotest.bool "opt of plus is star" true
    (Regex.opt (Regex.plus (re "a")) = Regex.star (re "a"))

let test_word_language () =
  let w = Word.of_string "abc" in
  check Alcotest.bool "word matches itself" true (Regex.matches (Regex.word w) w);
  check Alcotest.bool "word rejects prefix" false
    (Regex.matches (Regex.word w) (Word.of_string "ab"))

let () =
  Alcotest.run "regex"
    [
      ( "unit",
        [
          Alcotest.test_case "parse" `Quick test_parse;
          Alcotest.test_case "parse errors" `Quick test_parse_errors;
          Alcotest.test_case "is_finite" `Quick test_is_finite;
          Alcotest.test_case "words_of_finite" `Quick test_words_of_finite;
          Alcotest.test_case "smart constructors" `Quick test_smart_constructors;
          Alcotest.test_case "word language" `Quick test_word_language;
        ] );
      ( "properties",
        [
          test_print_parse_roundtrip;
          test_nullable;
          test_enumerate_complete;
          test_remove_eps;
          test_derivative;
          test_reverse;
          test_shortest;
        ] );
    ]
