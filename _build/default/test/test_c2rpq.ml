let check = Alcotest.check

let test_inverse () =
  check Alcotest.string "inverse" "~a" (C2rpq.inverse "a");
  check Alcotest.string "involutive" "a" (C2rpq.inverse (C2rpq.inverse "a"));
  check Alcotest.bool "is_inverse" true (C2rpq.is_inverse "~a");
  check Alcotest.bool "plain" false (C2rpq.is_inverse "a")

let test_augment () =
  let g = Graph.make ~nnodes:2 [ (0, "a", 1) ] in
  let g' = C2rpq.augment g in
  check Alcotest.bool "forward kept" true (Graph.mem_edge g' 0 "a" 1);
  check Alcotest.bool "inverse added" true (Graph.mem_edge g' 1 "~a" 0);
  check Alcotest.int "edge count" 2 (Graph.nedges g')

let test_two_way_eval () =
  (* a "sibling" query: two nodes with a common a-parent *)
  let g = Graph.make ~nnodes:3 [ (2, "a", 0); (2, "a", 1) ] in
  let q = Crpq.parse "Q(x, y) :- x -[<~a>a]-> y" in
  check Alcotest.bool "two-way query" true (C2rpq.is_two_way q);
  check Alcotest.bool "siblings found (st)" true
    (C2rpq.check Semantics.St q g [ 0; 1 ]);
  (* under q-inj the two-step path up-down must not revisit: x -~a-> p -a-> y
     with x, p, y pairwise distinct *)
  check Alcotest.bool "siblings found (q-inj)" true
    (C2rpq.check Semantics.Q_inj q g [ 0; 1 ]);
  check Alcotest.bool "self-sibling rejected (q-inj)" false
    (C2rpq.check Semantics.Q_inj q g [ 0; 0 ]);
  check Alcotest.bool "self-sibling accepted (st)" true
    (C2rpq.check Semantics.St q g [ 0; 0 ])

let test_eliminate () =
  (* a pure-inverse atom is a reversed atom *)
  let q = Crpq.parse "Q(x, y) :- x -[<~a>+]-> y" in
  (match C2rpq.try_eliminate q with
  | None -> Alcotest.fail "expected elimination"
  | Some q' ->
    check Alcotest.bool "no inverses left" false (C2rpq.is_two_way q');
    (* semantics agree on a sample graph *)
    let g = Generate.line (Word.of_string "aaa") in
    List.iter
      (fun sem ->
        check Alcotest.bool "same answers" true
          (C2rpq.eval sem q g = Eval.eval sem q' g))
      Semantics.node_semantics);
  (* mixed-direction languages cannot be eliminated this way *)
  check Alcotest.bool "mixed not eliminable" true
    (C2rpq.try_eliminate (Crpq.parse "x -[<~a>a]-> y") = None);
  (* one-way queries pass through unchanged *)
  let oneway = Crpq.parse "x -[ab]-> y" in
  check Alcotest.bool "one-way unchanged" true
    (C2rpq.try_eliminate oneway = Some oneway)

let prop_hierarchy_two_way =
  Testutil.qtest ~count:30 "the semantics hierarchy survives two-way navigation"
    (QCheck2.Gen.pair
       (Testutil.gen_crpq ~max_atoms:2 ~arity:1 ())
       (Testutil.gen_graph ~max_nodes:3 ()))
    (fun (q, g) ->
      (* invert a symbol in the query to make it two-way *)
      let q =
        Crpq.make ~free:q.Crpq.free
          (List.mapi
             (fun i (a : Crpq.atom) ->
               if i = 0 then
                 { a with Crpq.lang = Regex.seq (Regex.sym "~a") a.Crpq.lang }
               else a)
             q.Crpq.atoms)
      in
      let subset l1 l2 = List.for_all (fun x -> List.mem x l2) l1 in
      let qi = C2rpq.eval Semantics.Q_inj q g in
      let ai = C2rpq.eval Semantics.A_inj q g in
      let st = C2rpq.eval Semantics.St q g in
      subset qi ai && subset ai st)

let () =
  Alcotest.run "c2rpq"
    [
      ( "unit",
        [
          Alcotest.test_case "inverse" `Quick test_inverse;
          Alcotest.test_case "augment" `Quick test_augment;
          Alcotest.test_case "two-way eval" `Quick test_two_way_eval;
          Alcotest.test_case "eliminate" `Quick test_eliminate;
        ] );
      ("properties", [ prop_hierarchy_two_way ]);
    ]
