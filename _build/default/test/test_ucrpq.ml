let check = Alcotest.check

let u strs = Ucrpq.make (List.map Crpq.parse strs)

let test_make () =
  let v = u [ "Q(x) :- x -[a]-> y"; "Q(x) :- x -[b]-> y" ] in
  check Alcotest.int "arity" 1 v.Ucrpq.arity;
  check Alcotest.int "two disjuncts" 2 (List.length v.Ucrpq.disjuncts);
  Alcotest.check_raises "empty" (Invalid_argument "Ucrpq.make: empty union")
    (fun () -> ignore (Ucrpq.make []));
  Alcotest.check_raises "mixed arity"
    (Invalid_argument "Ucrpq.make: disjuncts of different arities") (fun () ->
      ignore (u [ "Q(x) :- x -[a]-> y"; "x -[b]-> y" ]))

let test_classify () =
  let cls_str = function
    | Crpq.Class_cq -> "cq"
    | Crpq.Class_fin -> "fin"
    | Crpq.Class_crpq -> "crpq"
  in
  check Alcotest.string "cq union" "cq"
    (cls_str (Ucrpq.classify (u [ "x -[a]-> y"; "x -[b]-> y" ])));
  check Alcotest.string "mixed" "crpq"
    (cls_str (Ucrpq.classify (u [ "x -[a]-> y"; "x -[b*]-> y" ])))

let test_eval_union () =
  let g = Graph.make ~nnodes:3 [ (0, "a", 1); (1, "b", 2) ] in
  let v = u [ "Q(x, y) :- x -[a]-> y"; "Q(x, y) :- x -[b]-> y" ] in
  check
    (Alcotest.list (Alcotest.list Alcotest.int))
    "union of answers"
    [ [ 0; 1 ]; [ 1; 2 ] ]
    (Ucrpq.eval Semantics.St v g);
  check Alcotest.bool "check 0,1" true (Ucrpq.check Semantics.Q_inj v g [ 0; 1 ]);
  check Alcotest.bool "check 0,2" false (Ucrpq.check Semantics.St v g [ 0; 2 ]);
  check Alcotest.bool "bool" true (Ucrpq.eval_bool Semantics.A_inj v g);
  (* the empty union has no answers *)
  check Alcotest.bool "empty union" false
    (Ucrpq.eval_bool Semantics.St (Ucrpq.empty ~arity:0) g)

let expect name expected verdict =
  match Containment.verdict_bool verdict with
  | Some b -> check Alcotest.bool name expected b
  | None -> Alcotest.failf "%s: undecided" name

let test_containment_finite () =
  (* a | b  ⊆  a|b (single query), and conversely *)
  let left = u [ "x -[a]-> y"; "x -[b]-> y" ] in
  let right = u [ "x -[a|b]-> y" ] in
  List.iter
    (fun sem ->
      expect "split ⊆ alt" true (Ucrpq.contained sem left right);
      expect "alt ⊆ split" true (Ucrpq.contained sem right left))
    Semantics.node_semantics;
  (* dropping a disjunct breaks one direction *)
  let smaller = u [ "x -[a]-> y" ] in
  expect "smaller ⊆ left" true (Ucrpq.contained Semantics.St smaller left);
  expect "left ⊄ smaller" false (Ucrpq.contained Semantics.St left smaller)

let test_containment_qinj_union () =
  (* infinite languages: the union-aware Theorem 5.1 algorithm *)
  let left = u [ "x -[a+]-> y" ] in
  let right = u [ "x -[(aa)+]-> y"; "x -[a(aa)*]-> y" ] in
  (* a+ = even-length ∪ odd-length a-words *)
  expect "parity split covers a+" true (Ucrpq.contained Semantics.Q_inj left right);
  expect "even ⊆ a+" true (Ucrpq.contained Semantics.Q_inj (u [ "x -[(aa)+]-> y" ]) left);
  expect "a+ ⊄ even" false
    (Ucrpq.contained Semantics.Q_inj left (u [ "x -[(aa)+]-> y" ]))

let test_equivalent () =
  let left = u [ "x -[a]-> y"; "x -[b]-> y" ] in
  let right = u [ "x -[a|b]-> y" ] in
  check (Alcotest.option Alcotest.bool) "equivalent" (Some true)
    (Ucrpq.equivalent Semantics.St left right);
  check (Alcotest.option Alcotest.bool) "not equivalent" (Some false)
    (Ucrpq.equivalent Semantics.St left (u [ "x -[a]-> y" ]))

let prop_union_monotone =
  Testutil.qtest ~count:40 "evaluation is monotone in the union"
    (QCheck2.Gen.pair
       (Testutil.gen_crpq ~max_atoms:2 ~arity:1 ())
       (Testutil.gen_graph ~max_nodes:3 ()))
    (fun (q, g) ->
      let single = Ucrpq.of_crpq q in
      let bigger = Ucrpq.union single single in
      List.for_all
        (fun sem -> Ucrpq.eval sem single g = Ucrpq.eval sem bigger g)
        Semantics.node_semantics)

let prop_disjunct_contained =
  Testutil.qtest ~count:30 "every finite disjunct is contained in its union"
    QCheck2.Gen.(
      pair
        (Testutil.gen_crpq ~cls:Crpq.Class_fin ~max_atoms:2 ())
        (Testutil.gen_crpq ~cls:Crpq.Class_fin ~max_atoms:2 ()))
    (fun (q1, q2) ->
      QCheck2.assume (List.length q1.Crpq.free = List.length q2.Crpq.free);
      let big = Ucrpq.make [ q1; q2 ] in
      List.for_all
        (fun sem ->
          match Ucrpq.contained sem (Ucrpq.of_crpq q1) big with
          | Containment.Contained -> true
          | _ -> false)
        Semantics.node_semantics)

(* lhs-union containment decomposes exactly: q1∨q2 ⊆ r iff q1 ⊆ r and
   q2 ⊆ r — cross-check the union decider against singleton deciders *)
let prop_lhs_union_decomposes =
  Testutil.qtest ~count:25 "lhs union containment = conjunction of singleton ones"
    QCheck2.Gen.(
      triple
        (Testutil.gen_crpq ~cls:Crpq.Class_fin ~max_atoms:2 ())
        (Testutil.gen_crpq ~cls:Crpq.Class_fin ~max_atoms:2 ())
        (Testutil.gen_crpq ~cls:Crpq.Class_fin ~max_atoms:2 ()))
    (fun (q1, q2, r) ->
      List.for_all
        (fun sem ->
          let one q =
            match
              Containment.verdict_bool
                (Ucrpq.contained sem (Ucrpq.of_crpq q) (Ucrpq.of_crpq r))
            with
            | Some b -> b
            | None -> false
          in
          let union =
            match
              Containment.verdict_bool
                (Ucrpq.contained sem (Ucrpq.make [ q1; q2 ]) (Ucrpq.of_crpq r))
            with
            | Some b -> b
            | None -> false
          in
          union = (one q1 && one q2))
        Semantics.node_semantics)

(* rhs-union containment is monotone: adding disjuncts on the right can
   only help *)
let prop_rhs_union_monotone =
  Testutil.qtest ~count:25 "rhs union containment is monotone"
    QCheck2.Gen.(
      triple
        (Testutil.gen_crpq ~cls:Crpq.Class_fin ~max_atoms:2 ())
        (Testutil.gen_crpq ~cls:Crpq.Class_fin ~max_atoms:2 ())
        (Testutil.gen_crpq ~cls:Crpq.Class_fin ~max_atoms:2 ()))
    (fun (q, r1, r2) ->
      List.for_all
        (fun sem ->
          let contained rhs =
            match
              Containment.verdict_bool
                (Ucrpq.contained sem (Ucrpq.of_crpq q) rhs)
            with
            | Some b -> b
            | None -> false
          in
          (not (contained (Ucrpq.of_crpq r1)))
          || contained (Ucrpq.make [ r1; r2 ]))
        Semantics.node_semantics)

let () =
  Alcotest.run "ucrpq"
    [
      ( "unit",
        [
          Alcotest.test_case "make" `Quick test_make;
          Alcotest.test_case "classify" `Quick test_classify;
          Alcotest.test_case "eval" `Quick test_eval_union;
          Alcotest.test_case "containment (finite)" `Quick test_containment_finite;
          Alcotest.test_case "containment (q-inj union)" `Quick
            test_containment_qinj_union;
          Alcotest.test_case "equivalent" `Quick test_equivalent;
        ] );
      ( "properties",
        [
          prop_union_monotone;
          prop_disjunct_contained;
          prop_lhs_union_decomposes;
          prop_rhs_union_monotone;
        ] );
    ]
