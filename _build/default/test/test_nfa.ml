let gen_rw = QCheck2.Gen.pair (Testutil.gen_regex ()) (Testutil.gen_word ())

let test_accepts_matches =
  Testutil.qtest ~count:200 "NFA accepts iff derivative matcher accepts" gen_rw
    (fun (r, w) -> Nfa.accepts (Nfa.of_regex r) w = Regex.matches r w)

let test_accepts_eps =
  Testutil.qtest "accepts_eps iff nullable" (Testutil.gen_regex ()) (fun r ->
      Nfa.accepts_eps (Nfa.of_regex r) = Regex.nullable r)

let test_is_empty =
  Testutil.qtest "is_empty iff empty language" (Testutil.gen_regex ()) (fun r ->
      Nfa.is_empty (Nfa.of_regex r) = Regex.is_empty_lang r)

let test_product =
  Testutil.qtest ~count:120 "product recognizes the intersection"
    QCheck2.Gen.(
      triple (Testutil.gen_regex ~max_depth:2 ()) (Testutil.gen_regex ~max_depth:2 ())
        (Testutil.gen_word ()))
    (fun (r, s, w) ->
      let p = Nfa.product (Nfa.of_regex r) (Nfa.of_regex s) in
      Nfa.accepts p w = (Regex.matches r w && Regex.matches s w))

let test_union =
  Testutil.qtest ~count:120 "union recognizes the union"
    QCheck2.Gen.(
      triple (Testutil.gen_regex ~max_depth:2 ()) (Testutil.gen_regex ~max_depth:2 ())
        (Testutil.gen_word ()))
    (fun (r, s, w) ->
      let p = Nfa.union (Nfa.of_regex r) (Nfa.of_regex s) in
      Nfa.accepts p w = (Regex.matches r w || Regex.matches s w))

let test_reverse =
  Testutil.qtest "reverse recognizes reversed words" gen_rw (fun (r, w) ->
      Nfa.accepts (Nfa.reverse (Nfa.of_regex r)) (List.rev w) = Regex.matches r w)

let test_trim =
  Testutil.qtest "trim preserves the language" gen_rw (fun (r, w) ->
      Nfa.accepts (Nfa.trim (Nfa.of_regex r)) w = Regex.matches r w)

let alphabet = [ "a"; "b"; "c" ]

let test_complete =
  Testutil.qtest "complete preserves language and is complete" gen_rw
    (fun (r, w) ->
      let n = Nfa.complete ~alphabet (Nfa.of_regex r) in
      Nfa.accepts n w = Regex.matches r w
      && List.for_all
           (fun q ->
             List.for_all
               (fun x ->
                 List.exists (fun (y, _) -> String.equal x y) n.Nfa.delta.(q))
               alphabet)
           (List.init n.Nfa.nstates (fun i -> i)))

let test_co_complete =
  Testutil.qtest "co_complete preserves language and is co-complete" gen_rw
    (fun (r, w) ->
      let n = Nfa.co_complete ~alphabet (Nfa.of_regex r) in
      let has_in = Hashtbl.create 64 in
      Array.iter
        (List.iter (fun (x, q') -> Hashtbl.replace has_in (x, q') ()))
        n.Nfa.delta;
      Nfa.accepts n w = Regex.matches r w
      && List.for_all
           (fun q -> List.for_all (fun x -> Hashtbl.mem has_in (x, q)) alphabet)
           (List.init n.Nfa.nstates (fun i -> i)))

let test_enumerate =
  Testutil.qtest ~count:60 "enumerate agrees with regex enumeration"
    (Testutil.gen_regex ~max_depth:2 ())
    (fun r ->
      Nfa.enumerate ~max_len:3 (Nfa.of_regex r) = Regex.enumerate ~max_len:3 r)

let test_shortest =
  Testutil.qtest "shortest word accepted and minimal" (Testutil.gen_regex ())
    (fun r ->
      let n = Nfa.of_regex r in
      match Nfa.shortest_word n, Regex.shortest_word r with
      | None, None -> true
      | Some w, Some w' -> Nfa.accepts n w && List.length w = List.length w'
      | _ -> false)

let test_union_list () =
  let nfas = List.map (fun s -> Nfa.of_regex (Regex.parse s)) [ "a"; "b"; "ab" ] in
  let combined, offsets = Nfa.union_list nfas in
  Alcotest.check Alcotest.int "offset 0" 0 offsets.(0);
  Alcotest.check Alcotest.bool "accepts a" true (Nfa.accepts combined [ "a" ]);
  Alcotest.check Alcotest.bool "accepts ab" true
    (Nfa.accepts combined [ "a"; "b" ]);
  Alcotest.check Alcotest.bool "rejects ba" false
    (Nfa.accepts combined [ "b"; "a" ]);
  (* offsets are increasing and within range *)
  Alcotest.check Alcotest.bool "offsets increasing" true
    (offsets.(0) < offsets.(1) && offsets.(1) < offsets.(2));
  Alcotest.check Alcotest.bool "offsets bounded" true
    (offsets.(2) < combined.Nfa.nstates)

let test_next_set () =
  let n = Nfa.of_regex (Regex.parse "ab|ac") in
  let after_a = Nfa.next_set n n.Nfa.initials "a" in
  Alcotest.check Alcotest.bool "a leads somewhere" true (after_a <> []);
  let after_ab = Nfa.next_set n after_a "b" in
  Alcotest.check Alcotest.bool "ab accepted" true
    (List.exists (Nfa.is_final n) after_ab)

let () =
  Alcotest.run "nfa"
    [
      ( "unit",
        [
          Alcotest.test_case "union_list" `Quick test_union_list;
          Alcotest.test_case "next_set" `Quick test_next_set;
        ] );
      ( "properties",
        [
          test_accepts_matches;
          test_accepts_eps;
          test_is_empty;
          test_product;
          test_union;
          test_reverse;
          test_trim;
          test_complete;
          test_co_complete;
          test_enumerate;
          test_shortest;
        ] );
    ]
