let check = Alcotest.check

let q21 = Paper_examples.example_21_query

(* ------------------------------------------------------------------ *)
(* Example 2.1 / Figure 2                                              *)
(* ------------------------------------------------------------------ *)

let test_example_21_g () =
  let g = Paper_examples.example_21_g in
  let t = Paper_examples.example_21_g_tuple in
  check Alcotest.bool "st" true (Eval.check Semantics.St q21 g t);
  check Alcotest.bool "a-inj" true (Eval.check Semantics.A_inj q21 g t);
  check Alcotest.bool "q-inj" false (Eval.check Semantics.Q_inj q21 g t);
  (* st and a-inj coincide on all of G *)
  check Alcotest.bool "st = a-inj on G" true
    (Eval.eval Semantics.St q21 g = Eval.eval Semantics.A_inj q21 g)

let test_example_21_g' () =
  let g = Paper_examples.example_21_g' in
  let t_st = Paper_examples.example_21_g'_tuple_st in
  check Alcotest.bool "st holds" true (Eval.check Semantics.St q21 g t_st);
  check Alcotest.bool "a-inj fails" false (Eval.check Semantics.A_inj q21 g t_st);
  check Alcotest.bool "q-inj fails" false (Eval.check Semantics.Q_inj q21 g t_st);
  let t_ai = Paper_examples.example_21_g'_tuple_ainj in
  check Alcotest.bool "a-inj holds" true (Eval.check Semantics.A_inj q21 g t_ai);
  check Alcotest.bool "q-inj fails on a-inj tuple" false
    (Eval.check Semantics.Q_inj q21 g t_ai)

(* ------------------------------------------------------------------ *)
(* Remark 2.1 hierarchy, randomized                                    *)
(* ------------------------------------------------------------------ *)

let gen_instance =
  QCheck2.Gen.pair
    (Testutil.gen_crpq ~max_atoms:2 ~max_vars:3 ~arity:1 ())
    (Testutil.gen_graph ~max_nodes:4 ())

let subset l1 l2 = List.for_all (fun x -> List.mem x l2) l1

let prop_hierarchy =
  Testutil.qtest ~count:60 "Remark 2.1: q-inj ⊆ a-inj ⊆ st" gen_instance
    (fun (q, g) ->
      let st = Eval.eval Semantics.St q g in
      let ai = Eval.eval Semantics.A_inj q g in
      let qi = Eval.eval Semantics.Q_inj q g in
      subset qi ai && subset ai st)

let prop_edge_hierarchy =
  Testutil.qtest ~count:40 "edge variants: q-e-inj ⊆ a-e-inj ⊆ st" gen_instance
    (fun (q, g) ->
      let st = Eval.eval Semantics.St q g in
      let ae = Eval.eval Semantics.A_edge_inj q g in
      let qe = Eval.eval Semantics.Q_edge_inj q g in
      subset qe ae && subset ae st)

let prop_node_implies_edge =
  Testutil.qtest ~count:40 "node injectivity implies edge injectivity"
    gen_instance
    (fun (q, g) ->
      subset (Eval.eval Semantics.A_inj q g) (Eval.eval Semantics.A_edge_inj q g)
      && subset (Eval.eval Semantics.Q_inj q g) (Eval.eval Semantics.Q_edge_inj q g))

(* ------------------------------------------------------------------ *)
(* Direct evaluators vs expansion-based reference (Props 2.2, 2.3)     *)
(* ------------------------------------------------------------------ *)

let prop_vs_expansions =
  Testutil.qtest ~count:40 "direct evaluation = expansion-based evaluation"
    (QCheck2.Gen.pair
       (Testutil.gen_crpq ~max_atoms:2 ~max_vars:2 ~arity:1 ())
       (Testutil.gen_graph ~max_nodes:3 ()))
    (fun (q, g) ->
      List.for_all
        (fun sem ->
          List.for_all
            (fun v ->
              Eval.check sem q g [ v ] = Eval.check_via_expansions sem q g [ v ])
            (Graph.nodes g))
        Semantics.node_semantics)

let prop_vs_expansions_edge =
  Testutil.qtest ~count:25 "edge semantics: direct = expansion-based"
    (QCheck2.Gen.pair
       (Testutil.gen_crpq ~max_atoms:2 ~max_vars:2 ~arity:1 ())
       (Testutil.gen_graph ~max_nodes:3 ()))
    (fun (q, g) ->
      List.for_all
        (fun sem ->
          List.for_all
            (fun v ->
              Eval.check sem q g [ v ] = Eval.check_via_expansions sem q g [ v ])
            (Graph.nodes g))
        [ Semantics.A_edge_inj; Semantics.Q_edge_inj ])

(* ------------------------------------------------------------------ *)
(* Deterministic scenarios                                             *)
(* ------------------------------------------------------------------ *)

let test_atom_endpoint_distinctness () =
  (* x -[ab]-> y with distinct variables needs a simple PATH: endpoints
     must differ even though a simple ab-cycle exists *)
  let g = Generate.cycle (Word.of_string "ab") in
  let q = Crpq.parse "Q(x, y) :- x -[ab]-> y" in
  check Alcotest.bool "cycle tuple rejected (a-inj)" false
    (Eval.check Semantics.A_inj q g [ 0; 0 ]);
  check Alcotest.bool "cycle tuple accepted (st)" true
    (Eval.check Semantics.St q g [ 0; 0 ]);
  (* the self-loop atom takes the cycle *)
  let qloop = Crpq.parse "Q(x) :- x -[ab]-> x" in
  check Alcotest.bool "self-loop atom takes simple cycle" true
    (Eval.check Semantics.A_inj qloop g [ 0 ])

let test_qinj_disjointness () =
  (* two atoms needing internally disjoint paths: only one internal node *)
  let g = Graph.make ~nnodes:3 [ (0, "a", 1); (1, "b", 2); (0, "c", 1); (1, "d", 2) ] in
  let q = Crpq.parse "Q(x, y) :- x -[ab]-> y, x -[cd]-> y" in
  check Alcotest.bool "a-inj ok (sharing allowed)" true
    (Eval.check Semantics.A_inj q g [ 0; 2 ]);
  check Alcotest.bool "q-inj blocked (shared internal)" false
    (Eval.check Semantics.Q_inj q g [ 0; 2 ]);
  (* add a second middle node: q-inj succeeds *)
  let g2 = Graph.add_edges g [ (0, "c", 3); (3, "d", 2) ] in
  check Alcotest.bool "q-inj ok with disjoint middle" true
    (Eval.check Semantics.Q_inj q g2 [ 0; 2 ])

let test_qinj_mu_injective () =
  (* μ itself must be injective: Q(x,y) answering with x=y is out *)
  let g = Graph.make ~nnodes:2 [ (0, "a", 1); (1, "b", 0) ] in
  let q = Crpq.parse "Q(x, y) :- x -[a]-> y" in
  check Alcotest.bool "distinct images" true (Eval.check Semantics.Q_inj q g [ 0; 1 ]);
  let q2 = Crpq.parse "Q(x, y) :- x -[ab]-> x, y -[%]-> y" in
  (* with only two nodes, y would collide with the cycle's internal node *)
  check Alcotest.bool "y collides with internal node" false
    (Eval.check Semantics.Q_inj q2 g [ 0; 1 ]);
  check Alcotest.bool "y = x rejected" false
    (Eval.check Semantics.Q_inj q2 g [ 0; 0 ]);
  check Alcotest.bool "y = x fine under a-inj" true
    (Eval.check Semantics.A_inj q2 g [ 0; 0 ]);
  (* a third node gives y somewhere disjoint to live *)
  let g3 = Graph.add_edges g [ (2, "c", 2) ] in
  check Alcotest.bool "y on a fresh node" true
    (Eval.check Semantics.Q_inj q2 g3 [ 0; 2 ])

let test_trail_semantics () =
  (* closed trail: revisits a node but no edge *)
  let g =
    Graph.make ~nnodes:4 [ (0, "a", 1); (1, "a", 2); (2, "a", 1); (1, "a", 3) ]
  in
  let q = Crpq.parse "Q(x, y) :- x -[aaaa]-> y" in
  check Alcotest.bool "trail ok" true (Eval.check Semantics.A_edge_inj q g [ 0; 3 ]);
  check Alcotest.bool "simple path not ok" false
    (Eval.check Semantics.A_inj q g [ 0; 3 ]);
  check Alcotest.bool "standard ok" true (Eval.check Semantics.St q g [ 0; 3 ])

let test_eval_enumeration () =
  let g = Paper_examples.example_21_g in
  let st = Eval.eval Semantics.St q21 g in
  check
    (Alcotest.list (Alcotest.list Alcotest.int))
    "st tuples on G"
    [ [ 0; 0 ]; [ 0; 2 ]; [ 1; 1 ]; [ 2; 2 ] ]
    st;
  (* the diagonal is always present: both languages contain ε *)
  check Alcotest.bool "diagonal q-inj" true
    (List.for_all (fun v -> Eval.check Semantics.Q_inj q21 g [ v; v ]) (Graph.nodes g))

let test_eval_bool () =
  let g = Graph.make ~nnodes:2 [ (0, "a", 1) ] in
  check Alcotest.bool "true" true
    (Eval.eval_bool Semantics.Q_inj (Crpq.parse "x -[a]-> y") g);
  check Alcotest.bool "false" false
    (Eval.eval_bool Semantics.Q_inj (Crpq.parse "x -[b]-> y") g)

let test_arity_mismatch () =
  let g = Graph.make ~nnodes:1 [] in
  Alcotest.check_raises "arity" (Invalid_argument "Eval.check: tuple arity mismatch")
    (fun () -> ignore (Eval.check Semantics.St (Crpq.parse "Q(x) :- x -[a]-> x") g []))

let test_repeated_free_vars () =
  let g = Graph.make ~nnodes:2 [ (0, "a", 1) ] in
  let q = Crpq.parse "Q(x, x) :- x -[a]-> y" in
  check Alcotest.bool "consistent tuple" true (Eval.check Semantics.St q g [ 0; 0 ]);
  check Alcotest.bool "inconsistent tuple" false
    (Eval.check Semantics.St q g [ 0; 1 ])

let () =
  Alcotest.run "eval"
    [
      ( "paper",
        [
          Alcotest.test_case "example 2.1 on G" `Quick test_example_21_g;
          Alcotest.test_case "example 2.1 on G'" `Quick test_example_21_g';
        ] );
      ( "unit",
        [
          Alcotest.test_case "endpoint distinctness" `Quick
            test_atom_endpoint_distinctness;
          Alcotest.test_case "q-inj disjointness" `Quick test_qinj_disjointness;
          Alcotest.test_case "q-inj injective mu" `Quick test_qinj_mu_injective;
          Alcotest.test_case "trail semantics" `Quick test_trail_semantics;
          Alcotest.test_case "enumeration" `Quick test_eval_enumeration;
          Alcotest.test_case "eval_bool" `Quick test_eval_bool;
          Alcotest.test_case "arity mismatch" `Quick test_arity_mismatch;
          Alcotest.test_case "repeated free vars" `Quick test_repeated_free_vars;
        ] );
      ( "properties",
        [
          prop_hierarchy;
          prop_edge_hierarchy;
          prop_node_implies_edge;
          prop_vs_expansions;
          prop_vs_expansions_edge;
        ] );
    ]
