let check = Alcotest.check

let q_path = Cq.make ~free:[] [ Cq.atom "x" "a" "y"; Cq.atom "y" "b" "z" ]

let test_make_dedup () =
  let q = Cq.make ~free:[] [ Cq.atom "x" "a" "y"; Cq.atom "x" "a" "y" ] in
  check Alcotest.int "atoms deduped" 1 (List.length q.Cq.atoms)

let test_vars () =
  check (Alcotest.list Alcotest.string) "vars" [ "x"; "y"; "z" ] (Cq.vars q_path);
  let q = Cq.make ~free:[ "w" ] [ Cq.atom "x" "a" "y" ] in
  check (Alcotest.list Alcotest.string) "isolated free var counted"
    [ "w"; "x"; "y" ] (Cq.vars q);
  check Alcotest.bool "boolean" true (Cq.is_boolean q_path);
  check Alcotest.bool "not boolean" false (Cq.is_boolean q)

let test_to_graph () =
  let g, names = Cq.to_graph q_path in
  check Alcotest.int "3 nodes" 3 (Graph.nnodes g);
  check Alcotest.int "2 edges" 2 (Graph.nedges g);
  check Alcotest.string "first name" "x" names.(0);
  check Alcotest.int "var_node" 1 (Cq.var_node q_path "y");
  check Alcotest.bool "edge present" true
    (Graph.mem_edge g (Cq.var_node q_path "x") "a" (Cq.var_node q_path "y"))

let test_free_nodes () =
  let q = Cq.make ~free:[ "z"; "x"; "x" ] q_path.Cq.atoms in
  check (Alcotest.list Alcotest.int) "free nodes positional"
    [ Cq.var_node q "z"; Cq.var_node q "x"; Cq.var_node q "x" ]
    (Cq.free_nodes q)

let test_of_graph_roundtrip () =
  let g, _ = Cq.to_graph q_path in
  let q' = Cq.of_graph g in
  let g', _ = Cq.to_graph q' in
  check Alcotest.bool "graph preserved" true (Graph.equal g g')

let test_collapse () =
  let weq = { Cq.base = q_path; eqs = [ ("x", "z") ] } in
  let collapsed, rename = Cq.collapse weq in
  check Alcotest.int "two vars" 2 (Cq.nvars collapsed);
  check Alcotest.string "x and z merged" (rename "x") (rename "z");
  check Alcotest.bool "y untouched" true (rename "y" = "y");
  (* transitivity *)
  let weq2 = { Cq.base = q_path; eqs = [ ("x", "y"); ("y", "z") ] } in
  check Alcotest.bool "transitive" true (Cq.eq_related weq2 "x" "z");
  check Alcotest.bool "reflexive" true (Cq.eq_related weq "y" "y");
  check Alcotest.bool "unrelated" false (Cq.eq_related weq "x" "y")

let test_collapse_free () =
  let q = Cq.make ~free:[ "x"; "z" ] q_path.Cq.atoms in
  let collapsed, _ = Cq.collapse { Cq.base = q; eqs = [ ("x", "z") ] } in
  check Alcotest.int "free tuple arity kept" 2 (List.length collapsed.Cq.free);
  check Alcotest.bool "free entries merged" true
    (List.nth collapsed.Cq.free 0 = List.nth collapsed.Cq.free 1)

(* homomorphisms between CQs, Example 4.7 ingredients *)
let q47_1 = Cq.make ~free:[] [ Cq.atom "x" "a" "y"; Cq.atom "y" "b" "z" ]

let q47_2' = Cq.make ~free:[] [ Cq.atom "x" "a" "y"; Cq.atom "u" "b" "v" ]

let q47_1' = Cq.make ~free:[] [ Cq.atom "x" "a" "y"; Cq.atom "x" "b" "y" ]

let test_homs () =
  check Alcotest.bool "Q2' -> Q1' (hom)" true (Cq.hom_exists q47_2' q47_1');
  check Alcotest.bool "Q2' -> Q1' non-contracting" true
    (Cq.non_contracting_hom_exists q47_2' q47_1');
  check Alcotest.bool "Q2' -> Q1' not injective" false
    (Cq.inj_hom_exists q47_2' q47_1');
  (* Q2' has four variables, Q1 only three: no injective hom *)
  check Alcotest.bool "Q2' -> Q1 not injective (too many vars)" false
    (Cq.inj_hom_exists q47_2' q47_1);
  check Alcotest.bool "Q2' -> Q1 hom" true (Cq.hom_exists q47_2' q47_1);
  (* arity mismatch *)
  let unary = Cq.make ~free:[ "x" ] [ Cq.atom "x" "a" "y" ] in
  check Alcotest.bool "arity mismatch" false (Cq.hom_exists unary q47_1)

let test_free_positional_homs () =
  let q1 = Cq.make ~free:[ "x" ] [ Cq.atom "x" "a" "y" ] in
  let q2 = Cq.make ~free:[ "y" ] [ Cq.atom "x" "a" "y" ] in
  (* q1's free var is the source, q2's the target: no hom fixing frees *)
  check Alcotest.bool "source vs target frees" false (Cq.hom_exists q1 q2);
  check Alcotest.bool "same frees" true (Cq.hom_exists q1 q1)

let prop_hom_reflexive =
  Testutil.qtest "hom_exists is reflexive" (Testutil.gen_cq ()) (fun q ->
      Cq.hom_exists q q)

let prop_inj_implies_hom =
  Testutil.qtest ~count:80 "injective hom implies hom and non-contracting"
    (QCheck2.Gen.pair (Testutil.gen_cq ~max_atoms:3 ()) (Testutil.gen_cq ~max_atoms:3 ()))
    (fun (q1, q2) ->
      (not (Cq.inj_hom_exists q1 q2))
      || (Cq.hom_exists q1 q2 && Cq.non_contracting_hom_exists q1 q2))

let () =
  Alcotest.run "cq"
    [
      ( "unit",
        [
          Alcotest.test_case "dedup" `Quick test_make_dedup;
          Alcotest.test_case "vars" `Quick test_vars;
          Alcotest.test_case "to_graph" `Quick test_to_graph;
          Alcotest.test_case "free nodes" `Quick test_free_nodes;
          Alcotest.test_case "of_graph" `Quick test_of_graph_roundtrip;
          Alcotest.test_case "collapse" `Quick test_collapse;
          Alcotest.test_case "collapse free" `Quick test_collapse_free;
          Alcotest.test_case "homs" `Quick test_homs;
          Alcotest.test_case "positional frees" `Quick test_free_positional_homs;
        ] );
      ("properties", [ prop_hom_reflexive; prop_inj_implies_hom ]);
    ]
