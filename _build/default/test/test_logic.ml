let check = Alcotest.check

(* ---------------- PCP ---------------- *)

let test_pcp_check () =
  check Alcotest.bool "1,2 solves small" true (Pcp.check Pcp.solvable_small [ 1; 2 ]);
  check Alcotest.bool "1 does not" false (Pcp.check Pcp.solvable_small [ 1 ]);
  check Alcotest.bool "empty is no solution" false (Pcp.check Pcp.solvable_small []);
  check Alcotest.bool "out of range" false (Pcp.check Pcp.solvable_small [ 5 ])

let test_pcp_solve () =
  (match Pcp.solve ~max_len:6 Pcp.solvable_small with
  | Some s -> check Alcotest.bool "solution checks" true (Pcp.check Pcp.solvable_small s)
  | None -> Alcotest.fail "expected a solution");
  (match Pcp.solve ~max_len:8 Pcp.solvable_medium with
  | Some s ->
    check Alcotest.bool "medium solution checks" true (Pcp.check Pcp.solvable_medium s)
  | None -> Alcotest.fail "expected a solution");
  check Alcotest.bool "long solvable" true (Pcp.is_solvable ~max_len:10 Pcp.solvable_long);
  check Alcotest.bool "unsolvable small" false
    (Pcp.is_solvable ~max_len:10 Pcp.unsolvable_small);
  check Alcotest.bool "unsolvable medium" false
    (Pcp.is_solvable ~max_len:10 Pcp.unsolvable_medium)

let test_pcp_alphabet () =
  check (Alcotest.list Alcotest.char) "alphabet" [ 'a'; 'b' ]
    (Pcp.alphabet Pcp.solvable_small)

let test_pcp_invalid () =
  Alcotest.check_raises "empty" (Invalid_argument "Pcp.make: empty instance") (fun () ->
      ignore (Pcp.make []));
  Alcotest.check_raises "empty word" (Invalid_argument "Pcp.make: empty word in pair")
    (fun () -> ignore (Pcp.make [ ("a", "") ]))

(* ---------------- QBF ---------------- *)

let test_qbf_validity () =
  check Alcotest.bool "valid" true (Qbf.is_valid Qbf.valid_small);
  check Alcotest.bool "invalid" false (Qbf.is_valid Qbf.invalid_small);
  (* tautological clause *)
  let t = Qbf.make ~n_x:1 ~n_y:0 [ [ Qbf.X (1, true); Qbf.X (1, false) ] ] in
  check Alcotest.bool "tautology" true (Qbf.is_valid t);
  (* unsatisfiable matrix *)
  let f = Qbf.make ~n_x:0 ~n_y:1 [ [ Qbf.Y (1, true) ]; [ Qbf.Y (1, false) ] ] in
  check Alcotest.bool "contradiction" false (Qbf.is_valid f)

let test_qbf_matrix () =
  (* invalid_small = (x ∨ y)(x ∨ ¬y) *)
  check Alcotest.bool "x=f y=f falsifies clause 1" false
    (Qbf.eval_matrix Qbf.invalid_small [| false; false |] [| false; false |]);
  check Alcotest.bool "x=f y=t falsifies clause 2" false
    (Qbf.eval_matrix Qbf.invalid_small [| false; false |] [| false; true |]);
  check Alcotest.bool "x=t satisfies" true
    (Qbf.eval_matrix Qbf.invalid_small [| false; true |] [| false; true |])

let test_qbf_random () =
  let rng = Random.State.make [| 3 |] in
  let q = Qbf.random ~rng ~n_x:2 ~n_y:2 ~n_clauses:3 in
  check Alcotest.int "clause count" 3 (List.length q.Qbf.clauses);
  (* decidable either way, just must not crash *)
  ignore (Qbf.is_valid q)

(* ---------------- GCP₂ ---------------- *)

let test_gcp_known () =
  check Alcotest.bool "K4 n=3" true (Gcp.decide (Gcp.complete 4 ~n:3));
  check Alcotest.bool "K4 n=2" false (Gcp.decide (Gcp.complete 4 ~n:2));
  check Alcotest.bool "K5 n=3" false (Gcp.decide (Gcp.complete 5 ~n:3));
  check Alcotest.bool "C5 n=2" false (Gcp.decide (Gcp.cycle 5 ~n:2));
  check Alcotest.bool "C4 n=2" true (Gcp.decide (Gcp.cycle 4 ~n:2));
  check Alcotest.bool "C6 n=2" true (Gcp.decide (Gcp.cycle 6 ~n:2))

let test_gcp_witness () =
  match Gcp.witness (Gcp.cycle 4 ~n:2) with
  | None -> Alcotest.fail "expected witness"
  | Some mask ->
    let t = Gcp.cycle 4 ~n:2 in
    check Alcotest.bool "side 1 ok" true (Gcp.side_ok t (fun v -> mask.(v)));
    check Alcotest.bool "side 2 ok" true (Gcp.side_ok t (fun v -> not mask.(v)))

let test_gcp_side_ok () =
  let k3 = Gcp.complete 3 ~n:3 in
  check Alcotest.bool "whole K3 has triangle" false (Gcp.side_ok k3 (fun _ -> true));
  check Alcotest.bool "two vertices fine" true (Gcp.side_ok k3 (fun v -> v < 2))

(* ---------------- coloring ---------------- *)

let test_coloring () =
  check Alcotest.bool "C5 3-colorable" true
    (Coloring.k_colorable ~k:3 ~nvertices:5 (Coloring.odd_cycle 5));
  check Alcotest.bool "C5 not 2-colorable" false
    (Coloring.k_colorable ~k:2 ~nvertices:5 (Coloring.odd_cycle 5));
  let k4 = [ (0, 1); (0, 2); (0, 3); (1, 2); (1, 3); (2, 3) ] in
  check Alcotest.bool "K4 not 3-colorable" false
    (Coloring.k_colorable ~k:3 ~nvertices:4 k4);
  check Alcotest.bool "K4 4-colorable" true (Coloring.k_colorable ~k:4 ~nvertices:4 k4);
  match Coloring.coloring ~k:3 ~nvertices:5 (Coloring.odd_cycle 5) with
  | None -> Alcotest.fail "expected coloring"
  | Some c ->
    check Alcotest.bool "proper" true
      (List.for_all (fun (u, v) -> c.(u) <> c.(v)) (Coloring.odd_cycle 5))

let prop_gcp_monotone_n =
  Testutil.qtest ~count:25 "GCP₂ positivity is monotone in n"
    QCheck2.Gen.(int_range 0 100)
    (fun seed ->
      let rng = Random.State.make [| seed |] in
      let t = Gcp.random ~rng ~nvertices:5 ~p:0.5 ~n:2 in
      (* if a partition avoids 2-cliques it avoids 3-cliques *)
      (not (Gcp.decide t)) || Gcp.decide { t with Gcp.n = 3 })

let () =
  Alcotest.run "logic"
    [
      ( "pcp",
        [
          Alcotest.test_case "check" `Quick test_pcp_check;
          Alcotest.test_case "solve" `Quick test_pcp_solve;
          Alcotest.test_case "alphabet" `Quick test_pcp_alphabet;
          Alcotest.test_case "invalid" `Quick test_pcp_invalid;
        ] );
      ( "qbf",
        [
          Alcotest.test_case "validity" `Quick test_qbf_validity;
          Alcotest.test_case "matrix" `Quick test_qbf_matrix;
          Alcotest.test_case "random" `Quick test_qbf_random;
        ] );
      ( "gcp",
        [
          Alcotest.test_case "known" `Quick test_gcp_known;
          Alcotest.test_case "witness" `Quick test_gcp_witness;
          Alcotest.test_case "side_ok" `Quick test_gcp_side_ok;
        ] );
      ("coloring", [ Alcotest.test_case "coloring" `Quick test_coloring ]);
      ("properties", [ prop_gcp_monotone_n ]);
    ]
