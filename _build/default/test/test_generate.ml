let check = Alcotest.check

let rng () = Random.State.make [| 17 |]

let test_line () =
  let g = Generate.line (Word.of_string "abc") in
  check Alcotest.int "nodes" 4 (Graph.nnodes g);
  check Alcotest.int "edges" 3 (Graph.nedges g);
  check Alcotest.bool "spells the word" true
    (Graph.mem_edge g 0 "a" 1 && Graph.mem_edge g 1 "b" 2 && Graph.mem_edge g 2 "c" 3);
  let e = Generate.line [] in
  check Alcotest.int "empty word" 1 (Graph.nnodes e)

let test_cycle () =
  let g = Generate.cycle (Word.of_string "ab") in
  check Alcotest.int "nodes" 2 (Graph.nnodes g);
  check Alcotest.bool "wraps" true (Graph.mem_edge g 1 "b" 0);
  let single = Generate.cycle [ "a" ] in
  check Alcotest.bool "self loop" true (Graph.mem_edge single 0 "a" 0)

let test_clique () =
  let g = Generate.clique ~nodes:4 ~label:"e" in
  check Alcotest.int "edges" 12 (Graph.nedges g);
  check Alcotest.bool "no self loops" true
    (List.for_all (fun (u, _, v) -> u <> v) (Graph.edges g))

let test_grid () =
  let g = Generate.grid ~rows:2 ~cols:3 ~right:"r" ~down:"d" in
  check Alcotest.int "nodes" 6 (Graph.nnodes g);
  (* 2*(3-1) right + 3*(2-1) down *)
  check Alcotest.int "edges" 7 (Graph.nedges g);
  check Alcotest.bool "right edge" true (Graph.mem_edge g 0 "r" 1);
  check Alcotest.bool "down edge" true (Graph.mem_edge g 0 "d" 3)

let test_lollipop () =
  let g = Generate.lollipop ~handle:2 ~cycle_len:3 ~label:"a" in
  check Alcotest.int "nodes" 5 (Graph.nnodes g);
  (* the cycle is reachable and closes *)
  check Alcotest.bool "handle" true (Graph.mem_edge g 0 "a" 1);
  check Alcotest.bool "cycle closes" true (Graph.mem_edge g 4 "a" 2)

let test_gnp_bounds () =
  let rng = rng () in
  let g = Generate.gnp ~rng ~nodes:5 ~labels:[ "a"; "b" ] ~p:1.0 in
  (* p = 1: every labelled pair, including self-loops *)
  check Alcotest.int "complete" (5 * 5 * 2) (Graph.nedges g);
  let empty = Generate.gnp ~rng ~nodes:5 ~labels:[ "a" ] ~p:0.0 in
  check Alcotest.int "empty" 0 (Graph.nedges empty)

let test_layered_is_dag () =
  let rng = rng () in
  let g = Generate.layered ~rng ~width:3 ~depth:4 ~labels:[ "a" ] in
  check Alcotest.bool "edges go forward" true
    (List.for_all (fun (u, _, v) -> v / 3 = (u / 3) + 1) (Graph.edges g))

let test_random_word () =
  let rng = rng () in
  let w = Generate.random_word ~rng ~labels:[ "x"; "y" ] ~len:10 in
  check Alcotest.int "length" 10 (List.length w);
  check Alcotest.bool "labels only" true
    (List.for_all (fun s -> s = "x" || s = "y") w)

let test_graph_io_roundtrip () =
  let g = Graph.make ~nnodes:4 [ (0, "a", 1); (1, "I1", 2); (3, "b", 3) ] in
  let g' = Graph_io.of_string (Graph_io.to_string g) in
  check Alcotest.bool "roundtrip" true (Graph.equal g g');
  (* comments and blank lines *)
  let g2 = Graph_io.of_string "# header\n\n0 a 1\n  1 b 2  \n" in
  check Alcotest.int "parsed edges" 2 (Graph.nedges g2)

let test_graph_io_errors () =
  (match Graph_io.of_string "0 a" with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected parse error");
  match Graph_io.of_string "x a 1" with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected bad node id error"

let () =
  Alcotest.run "generate"
    [
      ( "generators",
        [
          Alcotest.test_case "line" `Quick test_line;
          Alcotest.test_case "cycle" `Quick test_cycle;
          Alcotest.test_case "clique" `Quick test_clique;
          Alcotest.test_case "grid" `Quick test_grid;
          Alcotest.test_case "lollipop" `Quick test_lollipop;
          Alcotest.test_case "gnp bounds" `Quick test_gnp_bounds;
          Alcotest.test_case "layered dag" `Quick test_layered_is_dag;
          Alcotest.test_case "random word" `Quick test_random_word;
        ] );
      ( "graph_io",
        [
          Alcotest.test_case "roundtrip" `Quick test_graph_io_roundtrip;
          Alcotest.test_case "errors" `Quick test_graph_io_errors;
        ] );
    ]
