(* The containment/evaluation characterizations of Section 4.1, tested
   as logical equivalences on randomized finite instances:

   - Lemma 4.4:  ∃E ∈ Exp(Q).  E --a-inj--> (G, v̄)
              ⟺ ∃F ∈ Exp^a-inj(Q).  F --inj--> (G, v̄)
   - Prop 4.2 (st)   : Q1 ⊆ Q2 ⟺ ∀E1 ∃E2. E2 ---> E1
   - Prop 4.3 (q-inj): Q1 ⊆ Q2 ⟺ ∀E1 ∃E2. E2 --inj--> E1
   - Prop 4.6 (a-inj): Q1 ⊆ Q2 ⟺ ∀F1 ∃E2. E2 --a-inj--> F1
                              ⟺ ∀F1 ∃F2. F2 --inj--> F1 *)

let inj_hom_to_expansion (e2 : Expansion.expanded) (f1 : Expansion.expanded) =
  (* F2 --inj--> F1 with positional free mapping *)
  let pattern, names = Cq.to_graph e2.Expansion.cq in
  let index = Hashtbl.create 16 in
  Array.iteri (fun i x -> Hashtbl.replace index x i) names;
  let target, _ = Cq.to_graph f1.Expansion.cq in
  let f1_free = Cq.free_nodes f1.Expansion.cq in
  if List.length e2.Expansion.cq.Cq.free <> List.length f1_free then false
  else begin
    let fixed =
      List.map2
        (fun x u -> (Hashtbl.find index x, u))
        e2.Expansion.cq.Cq.free f1_free
    in
    Morphism.exists ~fixed ~injective:true ~pattern ~target ()
  end

let gen_small_fin = Testutil.gen_crpq ~cls:Crpq.Class_fin ~max_atoms:2 ~max_vars:2

let test_lemma_44 =
  Testutil.qtest ~count:40 "Lemma 4.4: a-inj homs = injective homs from merges"
    (QCheck2.Gen.pair (gen_small_fin ~arity:1 ()) (Testutil.gen_graph ~max_nodes:3 ()))
    (fun (q, g) ->
      List.for_all
        (fun v ->
          let tuple = [ v ] in
          let lhs =
            List.exists
              (fun e -> Eval.hom_from_expansion Semantics.A_inj e g tuple)
              (Expansion.finite_expansions q)
          in
          let rhs =
            List.exists
              (fun f ->
                (* F --inj--> (G, v̄) *)
                let pattern, names = Cq.to_graph f.Expansion.cq in
                let index = Hashtbl.create 16 in
                Array.iteri (fun i x -> Hashtbl.replace index x i) names;
                List.length f.Expansion.cq.Cq.free = List.length tuple
                &&
                let fixed =
                  List.map2
                    (fun x u -> (Hashtbl.find index x, u))
                    f.Expansion.cq.Cq.free tuple
                in
                Morphism.exists ~fixed ~injective:true ~pattern ~target:g ())
              (Expansion.finite_ainj_expansions q)
          in
          lhs = rhs)
        (Graph.nodes g))

let counterexample_free sem hom_check q1 q2 star_exp_q1 =
  (* ∀E1 ∈ star_exp(Q1). ∃E2 matching via hom_check — compared against
     the containment decider *)
  let chars =
    List.for_all (fun e1 -> hom_check q2 e1) (star_exp_q1 q1)
  in
  let decided =
    match Containment.verdict_bool (Containment.finite_lhs sem q1 q2) with
    | Some b -> b
    | None -> false
  in
  chars = decided

let eps_free_expansions q =
  List.concat_map
    (fun d -> Expansion.finite_expansions d)
    (Crpq.epsilon_free_disjuncts q)

let eps_free_ainj_expansions q =
  List.concat_map
    (fun d -> Expansion.finite_ainj_expansions d)
    (Crpq.epsilon_free_disjuncts q)

let gen_pair =
  QCheck2.Gen.pair (gen_small_fin ~arity:0 ()) (gen_small_fin ~arity:0 ())

let test_prop_42 =
  Testutil.qtest ~count:40 "Prop 4.2: st containment via homs between expansions"
    gen_pair
    (fun (q1, q2) ->
      counterexample_free Semantics.St
        (fun q2 e1 ->
          let g, tuple = Expansion.to_graph e1 in
          List.exists
            (fun e2 -> Eval.hom_from_expansion Semantics.St e2 g tuple)
            (eps_free_expansions q2))
        q1 q2 eps_free_expansions)

let test_prop_43 =
  Testutil.qtest ~count:40
    "Prop 4.3: q-inj containment via injective homs between expansions" gen_pair
    (fun (q1, q2) ->
      counterexample_free Semantics.Q_inj
        (fun q2 e1 ->
          let g, tuple = Expansion.to_graph e1 in
          List.exists
            (fun e2 -> Eval.hom_from_expansion Semantics.Q_inj e2 g tuple)
            (eps_free_expansions q2))
        q1 q2 eps_free_expansions)

let test_prop_46_item2 =
  Testutil.qtest ~count:30
    "Prop 4.6 (2): a-inj containment via a-inj homs to merged expansions"
    gen_pair
    (fun (q1, q2) ->
      counterexample_free Semantics.A_inj
        (fun q2 f1 ->
          let g, tuple = Expansion.to_graph f1 in
          List.exists
            (fun e2 -> Eval.hom_from_expansion Semantics.A_inj e2 g tuple)
            (eps_free_expansions q2))
        q1 q2 eps_free_ainj_expansions)

let test_prop_46_item3 =
  Testutil.qtest ~count:30
    "Prop 4.6 (3): a-inj containment via injective homs between merged expansions"
    gen_pair
    (fun (q1, q2) ->
      counterexample_free Semantics.A_inj
        (fun q2 f1 ->
          List.exists (fun f2 -> inj_hom_to_expansion f2 f1) (eps_free_ainj_expansions q2))
        q1 q2 eps_free_ainj_expansions)

let () =
  Alcotest.run "characterizations"
    [
      ( "section 4.1",
        [
          test_lemma_44;
          test_prop_42;
          test_prop_43;
          test_prop_46_item2;
          test_prop_46_item3;
        ] );
    ]
