let check = Alcotest.check

let decide q1 q2 = Containment_qinj.decide (Crpq.parse q1) (Crpq.parse q2)

let expect name expected q1 q2 =
  match decide q1 q2 with
  | Containment_qinj.Qinj_contained -> check Alcotest.bool name expected true
  | Containment_qinj.Qinj_not_contained _ -> check Alcotest.bool name expected false

(* ------------------------------------------------------------------ *)
(* Deterministic cases for the abstraction algorithm                   *)
(* ------------------------------------------------------------------ *)

let test_single_atom_cases () =
  expect "a+ in a*" true "x -[a+]-> y" "x -[a*]-> y";
  expect "a* not in a+" false "x -[a*]-> y" "x -[a+]-> y";
  expect "a+ not in (aa)+" false "x -[a+]-> y" "x -[(aa)+]-> y";
  expect "(aa)+ in a+" true "x -[(aa)+]-> y" "x -[a+]-> y";
  expect "(ab)+ in (ab)+" true "x -[(ab)+]-> y" "x -[(ab)+]-> y";
  expect "(ab)+ in (a|b)+" true "x -[(ab)+]-> y" "x -[(a|b)+]-> y";
  expect "(a|b)+ not in (ab)+" false "x -[(a|b)+]-> y" "x -[(ab)+]-> y"

let test_multi_atom_cases () =
  expect "drop atom" true "x -[a+]-> y, y -[b]-> z" "x -[a+]-> y";
  expect "cannot invent atom" false "x -[a+]-> y" "x -[a+]-> y, y -[b]-> z";
  (* Example 4.7 lifted with a star: Q1' ⊄q-inj Q2' stays *)
  expect "47-style" false "x -[a+]-> y, x -[b]-> y" "x -[a+]-> y, u -[b]-> v";
  (* splitting a path needs an internal variable of Q1 *)
  (* Remark C.1: concatenation at a non-free (1,1) variable is an
     equivalence, in both directions *)
  expect "composition" true "x -[a]-> y, y -[b+]-> z" "x -[ab+]-> z";
  expect "decomposition" true "x -[ab+]-> z" "x -[a]-> y, y -[b+]-> z"

let test_free_variable_cases () =
  expect "frees aligned" true "Q(x, y) :- x -[a+]-> y" "Q(x, y) :- x -[a+]-> y";
  expect "frees crossed" false "Q(x, y) :- x -[a+]-> y" "Q(y, x) :- x -[a+]-> y";
  (* boolean projection of the same pair is contained *)
  expect "boolean" true "x -[a+]-> y" "x -[a+]-> y"

let test_self_loops_and_duplicates () =
  (* self-loop atoms expand to simple cycles *)
  expect "loop refl" true "x -[a+]-> x" "x -[a+]-> x";
  expect "loop relax" true "x -[(ab)+]-> x" "x -[(a|b)+]-> x";
  expect "loop not path" false "x -[a+]-> x" "x -[a+]-> y";
  (* a path query is NOT contained in a loop query *)
  expect "path not loop" false "x -[a+]-> y" "x -[a+]-> x";
  (* duplicate atoms demand internally disjoint paths *)
  expect "duplicates imply single" true "x -[a+]-> y, x -[a+]-> y" "x -[a+]-> y";
  (* Boolean right side: both duplicated atoms may land on a single edge
     somewhere inside the expansion (both paths coincide, no internal
     nodes), so the containment HOLDS for the Boolean queries... *)
  expect "boolean single implies duplicates" true "x -[a+]-> y"
    "x -[a+]-> y, x -[a+]-> y";
  (* ...but pinning the endpoints with free variables forces the two
     paths across the whole expansion, which a single long path cannot
     provide *)
  expect "pinned single does not imply duplicates" false
    "Q(x, y) :- x -[a+]-> y" "Q(x, y) :- x -[a+]-> y, x -[a+]-> y";
  expect "pinned duplicates refl" true
    "Q(x, y) :- x -[a+]-> y, x -[a+]-> y"
    "Q(x, y) :- x -[a+]-> y, x -[a+]-> y"

let test_eps_cases () =
  expect "a* in a*" true "x -[a*]-> y" "x -[a*]-> y";
  expect "a* in a?|aa*" true "x -[a*]-> y" "x -[a?|aa*]-> y";
  expect "eps only" true "x -[%]-> y" "x -[a*]-> y"

let test_stats () =
  let _, stats =
    Containment_qinj.decide_with_stats (Crpq.parse "x -[a+]-> y")
      (Crpq.parse "x -[a*]-> y")
  in
  check Alcotest.bool "some abstractions" true (stats.Containment_qinj.abstractions_checked > 0);
  check Alcotest.bool "some types" true (stats.Containment_qinj.morphism_types > 0)

(* ------------------------------------------------------------------ *)
(* Preprocessing pieces                                                *)
(* ------------------------------------------------------------------ *)

let test_normalize_concat () =
  let q = Crpq.parse "x -[a+]-> y, y -[b]-> z" in
  let n = Containment_qinj.normalize_concat q in
  check Alcotest.int "one atom" 1 (Crpq.size n);
  (* free variables block the concatenation *)
  let qf = Crpq.parse "Q(y) :- x -[a+]-> y, y -[b]-> z" in
  check Alcotest.int "free var kept" 2 (Crpq.size (Containment_qinj.normalize_concat qf));
  (* higher-degree variables stay *)
  let q3 = Crpq.parse "x -[a]-> y, y -[b]-> z, y -[c]-> w" in
  check Alcotest.int "degree 3 kept" 3 (Crpq.size (Containment_qinj.normalize_concat q3))

let prop_normalize_preserves_semantics =
  Testutil.qtest ~count:40 "normalize_concat preserves q-inj evaluation"
    (QCheck2.Gen.pair
       (Testutil.gen_crpq ~max_atoms:3 ~max_vars:3 ())
       (Testutil.gen_graph ~max_nodes:4 ()))
    (fun (q, g) ->
      let n = Containment_qinj.normalize_concat q in
      Eval.eval Semantics.Q_inj q g = Eval.eval Semantics.Q_inj n g)

let prop_remove_letter_word =
  Testutil.qtest ~count:60 "remove_letter_word removes exactly that word"
    QCheck2.Gen.(
      triple (Testutil.gen_regex ~max_depth:2 ()) Testutil.gen_symbol
        (Testutil.gen_word ~max_len:3 ()))
    (fun (r, a, w) ->
      let r = Regex.remove_eps r in
      let r' = Containment_qinj.remove_letter_word r a in
      if w = [ a ] then not (Regex.matches r' w)
      else Regex.matches r' w = Regex.matches r w)

let prop_split_parallel_union =
  Testutil.qtest ~count:40 "split_parallel_letters preserves the expansion space"
    (QCheck2.Gen.pair
       (Testutil.gen_crpq ~max_atoms:2 ~max_vars:2 ())
       (Testutil.gen_graph ~max_nodes:3 ()))
    (fun (q, g) ->
      QCheck2.assume (not (Crpq.has_empty_language q));
      (* the rewrite is defined on ε-free queries (it is applied after
         epsilon elimination inside the decider) *)
      QCheck2.assume
        (List.for_all (fun (a : Crpq.atom) -> not (Regex.nullable a.Crpq.lang)) q.Crpq.atoms);
      let qs = Containment_qinj.split_parallel_letters q in
      let union_eval sem =
        List.sort_uniq compare (List.concat_map (fun p -> Eval.eval sem p g) qs)
      in
      Eval.eval Semantics.Q_inj q g = union_eval Semantics.Q_inj
      && Eval.eval Semantics.St q g = union_eval Semantics.St)

(* ------------------------------------------------------------------ *)
(* The main cross-validation: abstraction algorithm vs bounded oracle  *)
(* ------------------------------------------------------------------ *)

let langs =
  [| "a"; "b"; "ab"; "a+"; "a*"; "(ab)+"; "a|b"; "(a|b)+"; "ab*"; "ba"; "aa";
     "(aa)+"; "a|bb"; "b+"; "ab|ba"; "a?b"; "(ab)*"; "a?" |]

let rand_query rng ~arity =
  let nvars = 2 + Random.State.int rng 2 in
  let vars = Array.init nvars (fun i -> Printf.sprintf "v%d" i) in
  let natoms = 1 + Random.State.int rng 2 in
  let atoms =
    List.init natoms (fun _ ->
        let s = vars.(Random.State.int rng nvars) in
        let t = vars.(Random.State.int rng nvars) in
        Crpq.atom' s langs.(Random.State.int rng (Array.length langs)) t)
  in
  let free = List.init arity (fun i -> vars.(i mod nvars)) in
  Crpq.make ~free atoms

let test_fuzz_vs_oracle () =
  let rng = Random.State.make [| 2024 |] in
  for i = 1 to 120 do
    let arity = Random.State.int rng 2 in
    let q1 = rand_query rng ~arity and q2 = rand_query rng ~arity in
    match Containment_qinj.decide q1 q2 with
    | exception Containment_qinj.Unsupported _ -> ()
    | Containment_qinj.Qinj_contained -> begin
      match Containment.bounded Semantics.Q_inj ~max_len:4 q1 q2 with
      | Containment.Not_contained w ->
        Alcotest.failf "case %d: algorithm says contained, oracle refutes\nQ1=%s\nQ2=%s\nce=%s"
          i (Crpq.to_string q1) (Crpq.to_string q2)
          (Cq.to_string w.Containment.expansion.Expansion.cq)
      | _ -> ()
    end
    | Containment_qinj.Qinj_not_contained e ->
      let g, t = Expansion.to_graph e in
      if Eval.check Semantics.Q_inj q2 g t then
        Alcotest.failf "case %d: returned counterexample does not refute" i
  done

let () =
  Alcotest.run "containment_qinj"
    [
      ( "unit",
        [
          Alcotest.test_case "single atom" `Quick test_single_atom_cases;
          Alcotest.test_case "multi atom" `Quick test_multi_atom_cases;
          Alcotest.test_case "self loops and duplicates" `Quick
            test_self_loops_and_duplicates;
          Alcotest.test_case "free variables" `Quick test_free_variable_cases;
          Alcotest.test_case "epsilon" `Quick test_eps_cases;
          Alcotest.test_case "stats" `Quick test_stats;
          Alcotest.test_case "normalize_concat" `Quick test_normalize_concat;
          Alcotest.test_case "fuzz vs oracle" `Slow test_fuzz_vs_oracle;
        ] );
      ( "properties",
        [
          prop_normalize_preserves_semantics;
          prop_remove_letter_word;
          prop_split_parallel_union;
        ] );
    ]
