(* Disjoint routing: the query-injective semantics as a tool.

   The paper (Section 7) argues that "looking for disjoint paths may be
   useful for users".  This example models a small data-center network
   and uses q-inj evaluation to find pairs of VERTEX-DISJOINT routes —
   the classic requirement for a primary/backup path pair that share no
   point of failure.  Standard semantics cannot express this.

   Run with:  dune exec examples/disjoint_paths.exe *)

let () =
  (* two racks connected through two independent spines and one shared
     management switch; labels: f = fiber hop *)
  let src = 0
  and spine_a1 = 1
  and spine_a2 = 2
  and spine_b1 = 3
  and spine_b2 = 4
  and mgmt = 5
  and dst = 6 in
  let edges =
    [
      (src, "f", spine_a1);
      (spine_a1, "f", spine_a2);
      (spine_a2, "f", dst);
      (src, "f", spine_b1);
      (spine_b1, "f", spine_b2);
      (spine_b2, "f", dst);
      (* cheap shortcut through the management switch, usable by both
         nominal routes *)
      (src, "f", mgmt);
      (mgmt, "f", dst);
    ]
  in
  let g = Graph.make ~nnodes:7 edges in
  Format.printf "network:@.%a@." Graph.pp g;

  (* primary and backup route between the same endpoints: two f+ atoms *)
  let q = Crpq.parse "Q(x, y) :- x -[f+]-> y, x -[f+]-> y" in
  Format.printf "@.route pair query: %s@." (Crpq.to_string q);
  Format.printf "  st    (any two routes, may coincide):   %b@."
    (Eval.check Semantics.St q g [ src; dst ]);
  Format.printf "  a-inj (each route simple, may overlap): %b@."
    (Eval.check Semantics.A_inj q g [ src; dst ]);
  Format.printf "  q-inj (vertex-disjoint routes):         %b@."
    (Eval.check Semantics.Q_inj q g [ src; dst ]);

  (* knock out one spine: disjointness becomes impossible through the
     remaining spine + mgmt shortcut of length 2?  No: mgmt gives a
     second disjoint route.  Remove the mgmt switch too. *)
  let g_degraded, _ =
    Graph.induced g (fun v -> v <> spine_b1 && v <> mgmt)
  in
  Format.printf "@.after losing spine B1 and the management switch:@.";
  (* node ids were renumbered by the induced subgraph: src stays 0, dst
     is the last surviving node *)
  let dst' = Graph.nnodes g_degraded - 1 in
  Format.printf "  a-inj: %b@." (Eval.check Semantics.A_inj q g_degraded [ 0; dst' ]);
  Format.printf "  q-inj: %b   (no two disjoint routes survive)@."
    (Eval.check Semantics.Q_inj q g_degraded [ 0; dst' ]);

  (* edge-disjoint is weaker than vertex-disjoint: allow sharing a relay
     node but not a fiber *)
  Format.printf "@.edge-disjoint (trail) variant on the degraded network: %b@."
    (Eval.check Semantics.Q_edge_inj q g_degraded [ 0; dst' ])
