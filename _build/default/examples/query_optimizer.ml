(* Containment as an optimizer: removing redundant atoms.

   Static analysis via containment is the paper's motivation (Section 1):
   if dropping an atom yields an equivalent query, the atom is redundant
   and evaluation can skip it.  Crucially, redundancy depends on the
   semantics — an atom that is redundant under standard semantics can be
   load-bearing under an injective one.

   Run with:  dune exec examples/query_optimizer.exe *)

let minimize sem q = Minimize.drop_redundant_atoms sem q

let () =
  (* the b-atom is implied by the ab-atom under standard semantics (map
     both atoms into the same expansion), but not under the injective
     semantics where the extra atom demands its own simple path *)
  let q = Crpq.parse "Q(x, z) :- x -[a]-> y, y -[b]-> z, x -[ab]-> z" in
  Format.printf "query: %s@.@." (Crpq.to_string q);
  List.iter
    (fun sem ->
      let m = minimize sem q in
      Format.printf "%-7s minimized: %s   (%d -> %d atoms)@."
        (Semantics.to_string sem) (Crpq.to_string m) (Crpq.size q) (Crpq.size m))
    Semantics.node_semantics;

  (* a second query with a genuinely redundant relaxation atom *)
  let q2 = Crpq.parse "Q(x, y) :- x -[ab]-> y, x -[(a|b)(a|b)]-> y" in
  Format.printf "@.query: %s@.@." (Crpq.to_string q2);
  List.iter
    (fun sem ->
      let m = minimize sem q2 in
      Format.printf "%-7s minimized: %s@." (Semantics.to_string sem)
        (Crpq.to_string m))
    Semantics.node_semantics;

  (* verify optimization is sound on a concrete database *)
  let rng = Random.State.make [| 1 |] in
  let g = Generate.gnp ~rng ~nodes:6 ~labels:[ "a"; "b" ] ~p:0.3 in
  let sem = Semantics.St in
  let m = minimize sem q in
  Format.printf "@.same answers on a random database (st): %b@."
    (Eval.eval sem q g = Eval.eval sem m g)
