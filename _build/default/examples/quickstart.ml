(* Quickstart: build a graph database, run a CRPQ under the three
   semantics, and check a containment.

   Run with:  dune exec examples/quickstart.exe *)

let () =
  (* A small knowledge graph: people and the projects they mentor.
     Labels: m = mentors, c = collaborates, p = promoted-to. *)
  let alice = 0
  and bob = 1
  and carol = 2
  and dave = 3
  and erin = 4 in
  let g =
    Graph.make ~nnodes:5
      [
        (alice, "m", bob);
        (bob, "m", carol);
        (carol, "c", dave);
        (dave, "c", carol);
        (bob, "p", alice);
        (dave, "m", erin);
        (carol, "m", dave);
      ]
  in
  Format.printf "database:@.%a@." Graph.pp g;

  (* "find mentorship chains x ->...-> y that eventually collaborate
     back" — a CRPQ with two atoms *)
  let q = Crpq.parse "Q(x, y) :- x -[m+]-> y, y -[c*]-> y" in
  Format.printf "@.query: %s@." (Crpq.to_string q);

  List.iter
    (fun sem ->
      let answers = Eval.eval sem q g in
      Format.printf "  %-12s: %s@." (Semantics.to_string sem)
        (String.concat " "
           (List.map
              (fun t -> "(" ^ String.concat "," (List.map string_of_int t) ^ ")")
              answers)))
    Semantics.all;

  (* containment: every answer of the longer chain query is an answer of
     the plain reachability query — under every semantics *)
  let chained = Crpq.parse "Q(x, y) :- x -[m]-> z, z -[m+]-> y" in
  let reach = Crpq.parse "Q(x, y) :- x -[m+]-> y" in
  Format.printf "@.containment %s ⊆ %s:@." (Crpq.to_string chained)
    (Crpq.to_string reach);
  List.iter
    (fun sem ->
      Format.printf "  %-12s: %a   (decided by: %s)@." (Semantics.to_string sem)
        Containment.pp_verdict
        (Containment.decide sem chained reach)
        (Containment.strategy_name sem chained reach))
    Semantics.node_semantics
