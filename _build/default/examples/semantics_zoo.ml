(* A tour of the paper's own examples: Example 2.1 (Figure 2),
   Section 2.2's expansions, Example 4.7, and the undecidability
   machinery of Theorem 5.2 in action.

   Run with:  dune exec examples/semantics_zoo.exe *)

let header s = Format.printf "@.== %s ==@." s

let () =
  header "Example 2.1 (Figure 2)";
  let q = Paper_examples.example_21_query in
  Format.printf "Q = %s@." (Crpq.to_string q);
  let show name g tuple =
    Format.printf "%s, tuple %s: st=%b a-inj=%b q-inj=%b@." name
      ("(" ^ String.concat "," (List.map string_of_int tuple) ^ ")")
      (Eval.check Semantics.St q g tuple)
      (Eval.check Semantics.A_inj q g tuple)
      (Eval.check Semantics.Q_inj q g tuple)
  in
  show "G " Paper_examples.example_21_g Paper_examples.example_21_g_tuple;
  show "G'" Paper_examples.example_21_g' Paper_examples.example_21_g'_tuple_st;

  header "Section 2.2: expansions";
  Format.printf "E1 = %s@." (Cq.to_string Paper_examples.example_22_e1.Expansion.cq);
  Format.printf "E2 = %s@." (Cq.to_string Paper_examples.example_22_e2.Expansion.cq);
  Format.printf "all expansions with words of length <= 2:@.";
  List.iter
    (fun e -> Format.printf "  %s@." (Cq.to_string e.Expansion.cq))
    (Expansion.expansions ~max_len:2 q);

  header "Example 4.7: incomparability of containment";
  List.iter
    (fun (name, sem, q1, q2, expected) ->
      Format.printf "%s under %-6s: expected %-5b measured %a@." name
        (Semantics.to_string sem) expected Containment.pp_verdict
        (Containment.decide sem q1 q2))
    Paper_examples.example_47_expectations;

  header "Theorem 5.1: deciding q-inj containment exactly";
  let pairs =
    [
      ("x -[a+]-> y", "x -[a*]-> y");
      ("x -[(ab)+]-> y", "x -[(a|b)+]-> y");
      ("x -[(a|b)+]-> y", "x -[(ab)+]-> y");
      ("x -[a]-> y, y -[b+]-> z", "x -[ab+]-> z");
    ]
  in
  List.iter
    (fun (s1, s2) ->
      let q1 = Crpq.parse s1 and q2 = Crpq.parse s2 in
      let r, stats = Containment_qinj.decide_with_stats q1 q2 in
      Format.printf "%s ⊆ %s : %s (%d types, %d abstractions)@." s1 s2
        (match r with
        | Containment_qinj.Qinj_contained -> "contained"
        | Containment_qinj.Qinj_not_contained _ -> "NOT contained")
        stats.Containment_qinj.morphism_types
        stats.Containment_qinj.abstractions_checked)
    pairs;

  header "Theorem 5.2: a PCP instance becomes a containment problem";
  let inst = Pcp.solvable_small in
  Format.printf "PCP instance %s, solution 1,2@."
    (Format.asprintf "%a" Pcp.pp inst);
  let enc = Pcp_to_ainj.encode inst in
  Format.printf "encoded: |Q1| = %d atoms over %d symbols; |Q2| = %d atoms@."
    (Crpq.size enc.Pcp_to_ainj.q1)
    (List.length (Crpq.alphabet enc.Pcp_to_ainj.q1))
    (Crpq.size enc.Pcp_to_ainj.q2);
  let wf = Pcp_to_ainj.well_formed_expansion enc [ 1; 2 ] in
  Format.printf
    "the well-formed expansion of the solution defeats Q2 (so Q1 ⊄ Q2): %b@."
    (Pcp_to_ainj.is_counterexample enc wf);
  Format.printf "an unmerged (ill-formed) expansion is matched by Q2: %b@."
    (not (Pcp_to_ainj.is_counterexample enc (Pcp_to_ainj.unmerged_expansion enc [ 1; 2 ])))
