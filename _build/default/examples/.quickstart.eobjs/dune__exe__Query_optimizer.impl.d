examples/query_optimizer.ml: Crpq Eval Format Generate List Minimize Random Semantics
