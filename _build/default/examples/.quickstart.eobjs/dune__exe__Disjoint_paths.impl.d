examples/disjoint_paths.ml: Crpq Eval Format Graph Semantics
