examples/static_analysis.ml: C2rpq Crpq Format Graph List Minimize Semantics String Ucrpq
