examples/quickstart.mli:
