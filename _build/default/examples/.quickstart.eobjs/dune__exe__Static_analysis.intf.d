examples/static_analysis.mli:
