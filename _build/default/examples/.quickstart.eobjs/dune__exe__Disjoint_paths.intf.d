examples/disjoint_paths.mli:
