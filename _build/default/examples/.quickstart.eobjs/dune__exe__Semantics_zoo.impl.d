examples/semantics_zoo.ml: Containment Containment_qinj Cq Crpq Eval Expansion Format List Paper_examples Pcp Pcp_to_ainj Semantics String
