examples/query_optimizer.mli:
