examples/quickstart.ml: Containment Crpq Eval Format Graph List Semantics String
