examples/semantics_zoo.mli:
