(* A static-analysis session: unions, equivalence, minimization and
   two-way navigation working together.

   Run with:  dune exec examples/static_analysis.exe *)

let header s = Format.printf "@.== %s ==@." s

let () =
  header "Union reasoning (UCRPQ)";
  (* a recursive reachability query, and its parity-split rewriting *)
  let whole = Ucrpq.make [ Crpq.parse "Q(x, y) :- x -[a+]-> y" ] in
  let split =
    Ucrpq.make
      [
        Crpq.parse "Q(x, y) :- x -[(aa)+]-> y";
        Crpq.parse "Q(x, y) :- x -[a(aa)*]-> y";
      ]
  in
  Format.printf "whole: %s@." (Ucrpq.to_string whole);
  Format.printf "split: %s@." (Ucrpq.to_string split);
  Format.printf "equivalent under q-inj: %s@."
    (match Ucrpq.equivalent Semantics.Q_inj whole split with
    | Some true -> "yes (proved by the union-aware Theorem 5.1 algorithm)"
    | Some false -> "no"
    | None -> "undecided");

  header "Semantics-aware minimization";
  let q = Crpq.parse "Q(x, z) :- x -[a]-> y, y -[b]-> z, x -[ab]-> z" in
  Format.printf "query: %s@." (Crpq.to_string q);
  List.iter
    (fun sem ->
      Format.printf "  %-7s -> %s@." (Semantics.to_string sem)
        (Crpq.to_string (Minimize.drop_redundant_atoms sem q)))
    Semantics.node_semantics;

  header "Satisfiability and language pruning";
  let junk = Crpq.parse "Q(x, y) :- x -[aa*|a*a]-> y, y -[b?]-> x" in
  Format.printf "before: %s@." (Crpq.to_string junk);
  Format.printf "after:  %s@." (Crpq.to_string (Minimize.prune_languages junk));
  Format.printf "satisfiable: %b;  with an empty atom: %b@."
    (Minimize.is_satisfiable junk)
    (Minimize.is_satisfiable (Crpq.parse "x -[!]-> y"));

  header "Two-way navigation (C2RPQ)";
  (* co-citation: two papers citing a common third *)
  let cites =
    Graph.make ~nnodes:4 [ (0, "c", 2); (1, "c", 2); (0, "c", 3) ]
  in
  let cocited = Crpq.parse "Q(x, y) :- x -[c<~c>]-> y" in
  Format.printf "co-citation query: %s@." (Crpq.to_string cocited);
  Format.printf "answers (st):    %s@."
    (String.concat " "
       (List.map
          (fun t -> "(" ^ String.concat "," (List.map string_of_int t) ^ ")")
          (C2rpq.eval Semantics.St cocited cites)));
  Format.printf "answers (q-inj): %s   (no x=y pairs: injectivity)@."
    (String.concat " "
       (List.map
          (fun t -> "(" ^ String.concat "," (List.map string_of_int t) ^ ")")
          (C2rpq.eval Semantics.Q_inj cocited cites)));

  header "Pure-inverse elimination";
  let rev = Crpq.parse "Q(x, y) :- x -[<~c>+]-> y" in
  (match C2rpq.try_eliminate rev with
  | Some plain -> Format.printf "%s  ≡  %s@." (Crpq.to_string rev) (Crpq.to_string plain)
  | None -> Format.printf "not eliminable@.")
