(* Guard-checkpoint profiler.

   [Guard.checkpoint] already fires at every named site in every hot
   loop — those hits, labelled with the open-span path at the moment of
   the hit, are exactly the weighted call paths a flamegraph wants.
   When disarmed (the default) [hit] is one ref read and one branch; the
   instrumented sites pay nothing else.  When armed, every [rate]-th hit
   per domain takes the global lock once and adds [rate] to the weight
   of its (span path, site) call path, so the table stays an unbiased
   estimate of the true hit distribution at a bounded cost. *)

let armed_flag = ref false

let armed () = !armed_flag

let rate = ref 1

let sample_rate () = !rate

(* per-domain countdown, so sampling needs no synchronisation *)
let pending : int ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref 0)

let mu = Mutex.create ()

(* frames (span path @ [site]) -> weight; guarded by [mu] *)
let table : (string list, int) Hashtbl.t = Hashtbl.create 256

let m_samples = Metrics.counter "profile.samples"

let reset () =
  Mutex.lock mu;
  Hashtbl.reset table;
  Mutex.unlock mu

let arm ?(sample_every = 1) () =
  if sample_every < 1 then
    invalid_arg "Obs.Profile.arm: sample_every must be positive";
  rate := sample_every;
  armed_flag := true

let disarm () = armed_flag := false

let hit site =
  if !armed_flag then begin
    let p = Domain.DLS.get pending in
    p := !p + 1;
    if !p >= !rate then begin
      p := 0;
      let frames = Trace.current_path () @ [ site ] in
      Metrics.incr m_samples;
      Mutex.lock mu;
      let w = try Hashtbl.find table frames with Not_found -> 0 in
      Hashtbl.replace table frames (w + !rate);
      Mutex.unlock mu
    end
  end

let samples () =
  Mutex.lock mu;
  let l = Hashtbl.fold (fun frames w acc -> (frames, w) :: acc) table [] in
  Mutex.unlock mu;
  List.sort compare l

(* total weight per checkpoint site (the last frame), heaviest first *)
let site_totals () =
  let totals : (string, int) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun (frames, w) ->
      match List.rev frames with
      | site :: _ ->
        let prev = try Hashtbl.find totals site with Not_found -> 0 in
        Hashtbl.replace totals site (prev + w)
      | [] -> ())
    (samples ());
  Hashtbl.fold (fun site w acc -> (site, w) :: acc) totals []
  |> List.sort (fun (s1, w1) (s2, w2) ->
         match compare w2 w1 with 0 -> String.compare s1 s2 | c -> c)

(* ------------------------------------------------------------------ *)
(* Exports                                                             *)
(* ------------------------------------------------------------------ *)

(* flamegraph.pl collapsed-stack format: one "frame;frame;frame weight"
   line per call path.  Frame names never contain ';' or ' ' (span and
   site names are dotted identifiers), so no quoting is needed. *)
let to_collapsed () =
  let buf = Buffer.create 1024 in
  List.iter
    (fun (frames, w) ->
      Buffer.add_string buf (String.concat ";" frames);
      Buffer.add_char buf ' ';
      Buffer.add_string buf (string_of_int w);
      Buffer.add_char buf '\n')
    (samples ());
  Buffer.contents buf

let write_collapsed file =
  let oc = open_out file in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_collapsed ()))

let to_json () =
  Json.Obj
    [
      ("sample_every", Json.Int !rate);
      ( "paths",
        Json.List
          (List.map
             (fun (frames, w) ->
               Json.Obj
                 [
                   ( "frames",
                     Json.List (List.map (fun f -> Json.String f) frames) );
                   ("weight", Json.Int w);
                 ])
             (samples ())) );
    ]
