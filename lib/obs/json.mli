(** A minimal self-contained JSON value type with a renderer and a
    recursive-descent parser, in the same dependency-free style as
    {!Diagnostic}'s flat-object round-trip but over full JSON values.
    It exists so that every machine-readable surface of the repo
    (metrics snapshots, span logs, bench results) can be written and
    read back without an external JSON library. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val escape : string -> string
(** Escape a string for inclusion between double quotes. *)

val to_string : t -> string
(** Compact (single-line) rendering. *)

val parse : string -> (t, string) result
(** Parse a complete JSON document; trailing garbage is an error. *)

val member : string -> t -> t option
(** [member k (Obj fields)] looks up [k]; [None] on other values. *)

val to_int : t -> int option
(** [Int n] and integral [Float]s. *)

val to_list : t -> t list option
