let cpu_ns () = Int64.of_float (Sys.time () *. 1e9)

let source = ref cpu_ns

let source_name_ref = ref "cpu"

let now_ns () = !source ()

let set_source ?(name = "custom") f =
  source := f;
  source_name_ref := name

let source_name () = !source_name_ref

let ns_to_s ns = Int64.to_float ns /. 1e9
