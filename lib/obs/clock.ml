(* Sys.time is *process CPU time*: it does not advance while the process
   sleeps or blocks, so it must never be read as wall time.  The default
   now_ns source is therefore the OS monotonic clock (CLOCK_MONOTONIC via
   bechamel's stub); CPU time stays available under its own name for
   callers that want it (bench reports both). *)

let cpu_ns () = Int64.of_float (Sys.time () *. 1e9)

let monotonic_ns () = Monotonic_clock.now ()

let source = ref monotonic_ns

let source_name_ref = ref "monotonic"

let now_ns () = !source ()

let set_source ?(name = "custom") f =
  source := f;
  source_name_ref := name

let reset_source () =
  source := monotonic_ns;
  source_name_ref := "monotonic"

let source_name () = !source_name_ref

let ns_to_s ns = Int64.to_float ns /. 1e9
