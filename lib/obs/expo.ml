(* Prometheus text exposition (version 0.0.4) of a Metrics snapshot.

   This is the /metrics building block for a future `injcrpq serve`:
   anything holding a [Metrics.snapshot] can render it in the format
   every Prometheus-compatible scraper ingests.  Metric names are
   sanitised (dots and dashes become underscores) and namespaced;
   log2 histogram buckets become cumulative [le] buckets whose bound is
   the largest value the bucket can hold (bucket k holds
   [2^k <= v < 2^(k+1)], so its bound is [2^(k+1)-1]). *)

let sanitize name =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> c
      | _ -> '_')
    name

let bucket_bound k = (1 lsl (k + 1)) - 1

let to_prometheus ?(namespace = "injcrpq") snapshot =
  let buf = Buffer.create 4096 in
  let full name = sanitize (namespace ^ "_" ^ name) in
  let line name value =
    Buffer.add_string buf name;
    Buffer.add_char buf ' ';
    Buffer.add_string buf (string_of_int value);
    Buffer.add_char buf '\n'
  in
  let typ name kind =
    Buffer.add_string buf (Printf.sprintf "# TYPE %s %s\n" name kind)
  in
  List.iter
    (fun (name, v) ->
      let n = full name in
      match v with
      | Metrics.Counter c ->
        typ n "counter";
        line n c
      | Metrics.Gauge g ->
        typ n "gauge";
        line n g
      | Metrics.Histogram h ->
        typ n "histogram";
        let cumulative = ref 0 in
        List.iter
          (fun (k, count) ->
            cumulative := !cumulative + count;
            Buffer.add_string buf
              (Printf.sprintf "%s_bucket{le=\"%d\"} %d\n" n (bucket_bound k)
                 !cumulative))
          h.buckets;
        Buffer.add_string buf
          (Printf.sprintf "%s_bucket{le=\"+Inf\"} %d\n" n h.count);
        line (n ^ "_sum") h.sum;
        line (n ^ "_count") h.count)
    snapshot;
  Buffer.contents buf

let write_prometheus ?namespace file snapshot =
  let oc = open_out file in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_prometheus ?namespace snapshot))
