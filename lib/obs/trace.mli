(** Nested spans on the {!Clock} monotonic clock.

    A span records its duration, its child spans, the {!Metrics} delta
    observed while it was open and (optionally) GC activity
    ([minor_words], [major_collections]).  Spans are collected in a
    global trace buffer and exported either as a human-readable tree or
    as JSONL (one flat object per span, linked by [id]/[parent]).

    Disabled by default: {!span} then reduces to calling its argument,
    so instrumented call sites stay allocation-free apart from the
    closure the caller builds. *)

type span = {
  name : string;
  start_ns : int64;  (** raw {!Clock} reading at entry *)
  duration_ns : int64;
  metrics : Metrics.snapshot;  (** metrics delta inside the span *)
  minor_words : float;  (** GC delta; 0 unless {!set_gc_sampling} *)
  major_collections : int;  (** GC delta; 0 unless {!set_gc_sampling} *)
  errored : bool;  (** the span body raised *)
  children : span list;  (** in execution order *)
}

val enabled : unit -> bool

val set_enabled : bool -> unit

val set_gc_sampling : bool -> unit
(** Also record per-span [Gc.quick_stat] deltas (off by default). *)

val span : string -> (unit -> 'a) -> 'a
(** [span name f] runs [f], recording a span as a child of the innermost
    open span.  Exceptions are re-raised after the span is closed (and
    marked [errored]). *)

val finished : unit -> span list
(** Completed top-level spans, in execution order. *)

val clear : unit -> unit

val pp_tree : Format.formatter -> span list -> unit
(** Indented tree with durations and non-zero metric deltas. *)

val span_to_json : ?id:int -> ?parent:int option -> span -> Json.t
(** One flat object (children not included). *)

val to_jsonl : span list -> string
(** One JSON object per line; children follow their parent and point
    back via ["parent"]. *)

val write_jsonl : string -> span list -> unit
(** Write {!to_jsonl} to a file. *)
