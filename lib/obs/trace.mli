(** Nested spans on the {!Clock} monotonic clock.

    A span records its duration, its child spans, the {!Metrics} delta
    observed while it was open and (optionally) GC activity
    ([minor_words], [major_collections]).  Spans are collected in a
    global trace buffer and exported either as a human-readable tree or
    as JSONL (one flat object per span, linked by [id]/[parent]).

    Disabled by default: {!span} then reduces to calling its argument,
    so instrumented call sites stay allocation-free apart from the
    closure the caller builds.

    Open-span state is per-domain ({!Domain.DLS}): concurrent domains
    never share a stack, and a worker's spans attach under the span
    that was active in the forking domain when the fork handle captured
    with {!fork} is installed in the worker with {!adopt} (the Parmap
    layer does this automatically).

    The trace buffer is bounded: once {!set_max_spans} spans have been
    opened, further spans are dropped (pass-through, counted in
    {!dropped} and the [trace.dropped_spans] counter) so tracing a
    pathological instance cannot grow memory without bound. *)

type span = {
  name : string;
  start_ns : int64;  (** raw {!Clock} reading at entry *)
  duration_ns : int64;
  metrics : Metrics.snapshot;  (** metrics delta inside the span *)
  minor_words : float;  (** GC delta; 0 unless {!set_gc_sampling} *)
  major_collections : int;  (** GC delta; 0 unless {!set_gc_sampling} *)
  errored : bool;  (** the span body raised *)
  children : span list;  (** in execution order *)
}

val enabled : unit -> bool

val set_enabled : bool -> unit

val set_gc_sampling : bool -> unit
(** Also record per-span [Gc.quick_stat] deltas (off by default). *)

val span : string -> (unit -> 'a) -> 'a
(** [span name f] runs [f], recording a span as a child of the innermost
    open span.  Exceptions are re-raised after the span is closed (and
    marked [errored]). *)

val finished : unit -> span list
(** Completed top-level spans, in execution order. *)

val clear : unit -> unit
(** Reset the trace buffer, the calling domain's open-span stack and
    the span-budget accounting. *)

(* ------------------------------------------------------------------ *)
(* Span budget                                                         *)
(* ------------------------------------------------------------------ *)

val set_max_spans : int -> unit
(** Cap the number of spans retained per trace (default 100_000).
    Once the cap is reached every further {!span} is a pass-through;
    the cutoff is monotone, so no retained span has a dropped parent.
    @raise Invalid_argument on non-positive budgets. *)

val dropped : unit -> int
(** Spans dropped by the budget since the last {!clear}. *)

(* ------------------------------------------------------------------ *)
(* Cross-domain grafting                                               *)
(* ------------------------------------------------------------------ *)

type fork
(** A graft point: the innermost open span of the capturing domain and
    the span path leading to it. *)

val fork : unit -> fork
(** Capture the current graft point (call in the forking domain,
    immediately before spawning workers). *)

val adopt : fork -> (unit -> 'a) -> 'a
(** [adopt f body] runs [body] with the fork installed: spans recorded
    by this domain while no local span is open attach as children of
    the forked span (or as top-level spans when the fork captured
    none).  Cheap and safe to call with tracing disabled. *)

val current_path : unit -> string list
(** Names of the open spans enclosing the caller, outermost first,
    including the adopted prefix in a worker domain.  Used by
    {!Profile} to label checkpoint samples with their call path. *)

val pp_tree : Format.formatter -> span list -> unit
(** Indented tree with durations and non-zero metric deltas. *)

val span_to_json : ?id:int -> ?parent:int option -> span -> Json.t
(** One flat object (children not included). *)

val to_jsonl : span list -> string
(** One JSON object per line; children follow their parent and point
    back via ["parent"]. *)

val write_jsonl : string -> span list -> unit
(** Write {!to_jsonl} to a file. *)

val to_chrome : span list -> Json.t
(** Chrome [trace_event] document (complete ["ph":"X"] events with
    microsecond timestamps), loadable in about://tracing / Perfetto.
    Non-zero metric deltas appear in each event's ["args"]. *)

val write_chrome : string -> span list -> unit
(** Write {!to_chrome} to a file. *)
