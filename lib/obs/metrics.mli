(** A global registry of named counters, gauges and log-scale
    histograms, designed so that instrumented hot paths stay
    allocation-free while the registry is disabled (the default).

    Metric handles are created once at module-initialization time in the
    instrumented code ([let c = Metrics.counter "morphism.backtracks"]);
    the per-event operations ({!incr}, {!add}, {!set}, {!observe}) test
    one mutable flag and update a mutable field — no allocation, no
    hashing — so leaving them in the hot paths costs a predictable
    branch when observability is off.

    Metric names are stable identifiers (catalogued in README.md):
    renaming one is a breaking change for downstream consumers of
    snapshots, span logs and [BENCH_results.json]. *)

type counter
(** Monotonically increasing integer. *)

type gauge
(** Arbitrary integer level (set or adjusted). *)

type histogram
(** Distribution of non-negative integers in base-2 log-scale buckets:
    an observation [v] lands in bucket [k] where [2^k <= v < 2^(k+1)]
    ([v <= 0] lands in bucket 0). *)

(* ------------------------------------------------------------------ *)
(* Runtime switch                                                      *)
(* ------------------------------------------------------------------ *)

val enabled : unit -> bool

val set_enabled : bool -> unit
(** Disabled by default.  While disabled, every recording operation is a
    no-op; registration and snapshots still work. *)

(* ------------------------------------------------------------------ *)
(* Registration (idempotent per name)                                  *)
(* ------------------------------------------------------------------ *)

val counter : string -> counter
(** @raise Invalid_argument if the name is registered as another kind. *)

val gauge : string -> gauge

val histogram : string -> histogram

(* ------------------------------------------------------------------ *)
(* Recording                                                           *)
(* ------------------------------------------------------------------ *)

val incr : counter -> unit

val add : counter -> int -> unit
(** @raise Invalid_argument on negative increments (counters only
    increase). *)

val counter_value : counter -> int

val set : gauge -> int -> unit

val adjust : gauge -> int -> unit

val observe : histogram -> int -> unit

(* ------------------------------------------------------------------ *)
(* Snapshots                                                           *)
(* ------------------------------------------------------------------ *)

type value =
  | Counter of int
  | Gauge of int
  | Histogram of {
      count : int;
      sum : int;
      max : int;
      buckets : (int * int) list;  (** (log2 bucket, occurrences), sparse *)
    }

type snapshot = (string * value) list
(** Sorted by metric name. *)

val snapshot : unit -> snapshot
(** Current value of every registered metric (zeros included). *)

val diff : snapshot -> snapshot -> snapshot
(** [diff before after]: counters and histogram counts subtract
    ([after - before], clamped at 0 if the registry was reset in
    between); gauges and histogram [max] take the [after] value.
    Metrics registered after [before] was taken appear as-is. *)

val is_zero : snapshot -> bool
(** No counter ticked, no gauge non-zero, no histogram observation. *)

val reset : unit -> unit
(** Zero every registered metric (handles stay valid). *)

(* ------------------------------------------------------------------ *)
(* Rendering                                                           *)
(* ------------------------------------------------------------------ *)

val to_json : snapshot -> Json.t

val of_json : Json.t -> (snapshot, string) result
(** Inverse of {!to_json}: [of_json (to_json s) = Ok s]. *)

val pp_table : Format.formatter -> snapshot -> unit
(** Human-readable table, one metric per line. *)
