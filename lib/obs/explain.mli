(** Structured per-run explain reports.

    {!of_metrics} groups a metrics delta (usually [Metrics.diff] taken
    around one command) into themed sections — search work, CSP effort,
    per-table cache hit ratios, guard budget per checkpoint site,
    analysis costs — and the renderers emit the same report as a human
    table ({!to_text}) or as JSON with schema ["injcrpq-explain/1"]
    ({!to_json}).  The builder only knows metric {e name prefixes}, not
    the deciders; callers append domain-specific sections (strategy
    picked, rewrite steps) with {!add_section}. *)

type row = { label : string; value : Json.t }

type section = { name : string; rows : row list }

type report = { title : string; sections : section list }

val schema : string

val row : string -> Json.t -> row

val section : string -> row list -> section

val of_metrics :
  ?profile:(string * int) list ->
  ?events:Events.event list ->
  title:string ->
  Metrics.snapshot ->
  report
(** Zero-valued metrics and empty sections are dropped.  [profile]
    rows (from {!Profile.site_totals}) land in the guard section as
    per-site weights; [events] are tallied per event name. *)

val add_section : report -> section -> report
(** Appends; a section with no rows is dropped. *)

val to_text : report -> string

val to_json : report -> Json.t
