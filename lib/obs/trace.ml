type span = {
  name : string;
  start_ns : int64;
  duration_ns : int64;
  metrics : Metrics.snapshot;
  minor_words : float;
  major_collections : int;
  errored : bool;
  children : span list;
}

let on = ref false

let enabled () = !on

let set_enabled b = on := b

let gc_sampling = ref false

let set_gc_sampling b = gc_sampling := b

(* An open span under construction; [children] accumulates reversed.
   While a span is open its [o_children] may be appended to from other
   domains (workers grafting via [fork]/[adopt]), so every mutation of
   [o_children] — and of the [completed] list — happens under [mu]. *)
type open_span = {
  o_name : string;
  o_start : int64;
  o_metrics : Metrics.snapshot;
  o_minor : float;
  o_major : int;
  mutable o_children : span list;
}

(* A graft point captured in the forking domain: the innermost open span
   (if any) together with the span path leading to (and including) it.
   Workers install it with [adopt]; their spans then attach as children
   of the span that was active at fan-out instead of floating as
   parentless top-level spans. *)
type fork = { f_parent : open_span option; f_path : string list }

(* Per-domain open-span state.  A plain global ref raced under Parmap:
   two domains pushing and popping the same list lost or misattached
   spans.  Each domain now owns its stack; cross-domain attachment goes
   through [fork]/[adopt] exclusively. *)
type dstate = { mutable stack : open_span list; mutable adopted : fork option }

let dls : dstate Domain.DLS.key =
  Domain.DLS.new_key (fun () -> { stack = []; adopted = None })

let mu = Mutex.create ()

(* completed top-level spans, reversed; guarded by [mu] *)
let completed : span list ref = ref []

(* ---------------- span budget ---------------- *)

(* [--trace] on a pathological instance (millions of checkpointed search
   steps, each under a span) must not grow memory without bound: once
   [opened] reaches the budget, [span] degrades to a pass-through and
   counts the drop.  The cutoff is monotone — after it, every new span
   is dropped — so retained spans never attach to a dropped parent. *)
let default_max_spans = 100_000

let max_spans = ref default_max_spans

let set_max_spans n =
  if n < 1 then invalid_arg "Obs.Trace.set_max_spans: budget must be positive";
  max_spans := n

let opened = Atomic.make 0

let dropped_spans = Atomic.make 0

let dropped () = Atomic.get dropped_spans

let m_dropped = Metrics.counter "trace.dropped_spans"

let clear () =
  let st = Domain.DLS.get dls in
  st.stack <- [];
  st.adopted <- None;
  Mutex.lock mu;
  completed := [];
  Mutex.unlock mu;
  Atomic.set opened 0;
  Atomic.set dropped_spans 0

let finished () =
  Mutex.lock mu;
  let l = !completed in
  Mutex.unlock mu;
  List.rev l

let record sp =
  let st = Domain.DLS.get dls in
  Mutex.lock mu;
  (match st.stack with
  | parent :: _ -> parent.o_children <- sp :: parent.o_children
  | [] -> (
    match st.adopted with
    | Some { f_parent = Some parent; _ } ->
      parent.o_children <- sp :: parent.o_children
    | _ -> completed := sp :: !completed));
  Mutex.unlock mu

let span name f =
  if not !on then f ()
  else if Atomic.fetch_and_add opened 1 >= !max_spans then begin
    Atomic.incr dropped_spans;
    Metrics.incr m_dropped;
    f ()
  end
  else begin
    let st = Domain.DLS.get dls in
    let minor, major =
      if !gc_sampling then begin
        let stt = Gc.quick_stat () in
        (stt.Gc.minor_words, stt.Gc.major_collections)
      end
      else (0.0, 0)
    in
    let o =
      {
        o_name = name;
        o_start = Clock.now_ns ();
        o_metrics = Metrics.snapshot ();
        o_minor = minor;
        o_major = major;
        o_children = [];
      }
    in
    st.stack <- o :: st.stack;
    let close errored =
      let duration = Int64.sub (Clock.now_ns ()) o.o_start in
      let minor', major' =
        if !gc_sampling then begin
          let stt = Gc.quick_stat () in
          (stt.Gc.minor_words -. o.o_minor, stt.Gc.major_collections - o.o_major)
        end
        else (0.0, 0)
      in
      (match st.stack with
      | top :: rest when top == o -> st.stack <- rest
      | _ ->
        (* a nested span escaped its scope (e.g. an exception skipped a
           close); drop back to this frame to stay consistent *)
        let rec pop = function
          | top :: rest when top == o -> rest
          | _ :: rest -> pop rest
          | [] -> []
        in
        st.stack <- pop st.stack);
      record
        {
          name = o.o_name;
          start_ns = o.o_start;
          duration_ns = (if Int64.compare duration 0L > 0 then duration else 0L);
          metrics = Metrics.diff o.o_metrics (Metrics.snapshot ());
          minor_words = minor';
          major_collections = major';
          errored;
          children = List.rev o.o_children;
        }
    in
    match f () with
    | v ->
      close false;
      v
    | exception e ->
      close true;
      raise e
  end

(* ---------------- cross-domain grafting ---------------- *)

let current_path () =
  let st = Domain.DLS.get dls in
  let prefix = match st.adopted with Some f -> f.f_path | None -> [] in
  prefix @ List.rev_map (fun o -> o.o_name) st.stack

let fork () =
  let st = Domain.DLS.get dls in
  let parent =
    match st.stack with
    | o :: _ -> Some o
    | [] -> ( match st.adopted with Some f -> f.f_parent | None -> None)
  in
  { f_parent = parent; f_path = current_path () }

let adopt fork f =
  let st = Domain.DLS.get dls in
  let saved = st.adopted in
  st.adopted <- Some fork;
  Fun.protect ~finally:(fun () -> st.adopted <- saved) f

(* ------------------------------------------------------------------ *)
(* Rendering                                                           *)
(* ------------------------------------------------------------------ *)

let nonzero_metrics sp =
  List.filter
    (fun (_, v) ->
      match v with
      | Metrics.Counter n | Metrics.Gauge n -> n <> 0
      | Metrics.Histogram h -> h.count <> 0)
    sp.metrics

let pp_tree ppf spans =
  let rec go indent sp =
    Format.fprintf ppf "%s%s  %.3fms%s@," indent sp.name
      (Int64.to_float sp.duration_ns /. 1e6)
      (if sp.errored then "  [raised]" else "");
    List.iter
      (fun (name, v) ->
        match v with
        | Metrics.Counter n | Metrics.Gauge n ->
          Format.fprintf ppf "%s  %s=%d@," indent name n
        | Metrics.Histogram h ->
          Format.fprintf ppf "%s  %s: count=%d sum=%d@," indent name h.count
            h.sum)
      (nonzero_metrics sp);
    List.iter (go (indent ^ "  ")) sp.children
  in
  Format.fprintf ppf "@[<v>";
  List.iter (go "") spans;
  Format.fprintf ppf "@]"

let span_to_json ?(id = 0) ?(parent = None) sp =
  let metrics_json =
    Json.Obj
      (List.map
         (fun (name, v) ->
           match v with
           | Metrics.Counter n | Metrics.Gauge n -> (name, Json.Int n)
           | Metrics.Histogram h ->
             (name, Json.Obj [ ("count", Json.Int h.count); ("sum", Json.Int h.sum) ]))
         (nonzero_metrics sp))
  in
  Json.Obj
    [
      ("id", Json.Int id);
      ("parent", match parent with Some p -> Json.Int p | None -> Json.Null);
      ("name", Json.String sp.name);
      ("start_ns", Json.Int (Int64.to_int sp.start_ns));
      ("duration_ns", Json.Int (Int64.to_int sp.duration_ns));
      ("minor_words", Json.Float sp.minor_words);
      ("major_collections", Json.Int sp.major_collections);
      ("errored", Json.Bool sp.errored);
      ("metrics", metrics_json);
    ]

let to_jsonl spans =
  let buf = Buffer.create 1024 in
  let next_id = ref 0 in
  let rec go parent sp =
    let id = !next_id in
    incr next_id;
    Buffer.add_string buf (Json.to_string (span_to_json ~id ~parent sp));
    Buffer.add_char buf '\n';
    List.iter (go (Some id)) sp.children
  in
  List.iter (go None) spans;
  Buffer.contents buf

let write_jsonl file spans =
  let oc = open_out file in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_jsonl spans))

(* ---------------- Chrome trace_event export ---------------- *)

(* Complete ("ph":"X") events with microsecond timestamps, loadable in
   about://tracing and Perfetto.  Timestamps are kept as floats so
   sub-microsecond spans stay visible; non-zero metric deltas ride along
   in "args" where the trace viewer shows them on click. *)
let chrome_events spans =
  let events = ref [] in
  let rec go sp =
    let args =
      List.map
        (fun (name, v) ->
          match v with
          | Metrics.Counter n | Metrics.Gauge n -> (name, Json.Int n)
          | Metrics.Histogram h -> (name, Json.Int h.count))
        (nonzero_metrics sp)
    in
    let args =
      if sp.errored then ("errored", Json.Bool true) :: args else args
    in
    events :=
      Json.Obj
        [
          ("name", Json.String sp.name);
          ("ph", Json.String "X");
          ("ts", Json.Float (Int64.to_float sp.start_ns /. 1e3));
          ("dur", Json.Float (Int64.to_float sp.duration_ns /. 1e3));
          ("pid", Json.Int 1);
          ("tid", Json.Int 1);
          ("cat", Json.String "injcrpq");
          ("args", Json.Obj args);
        ]
      :: !events;
    List.iter go sp.children
  in
  List.iter go spans;
  List.rev !events

let to_chrome spans =
  Json.Obj
    [
      ("traceEvents", Json.List (chrome_events spans));
      ("displayTimeUnit", Json.String "ms");
    ]

let write_chrome file spans =
  let oc = open_out file in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (Json.to_string (to_chrome spans));
      output_char oc '\n')
