type span = {
  name : string;
  start_ns : int64;
  duration_ns : int64;
  metrics : Metrics.snapshot;
  minor_words : float;
  major_collections : int;
  errored : bool;
  children : span list;
}

let on = ref false

let enabled () = !on

let set_enabled b = on := b

let gc_sampling = ref false

let set_gc_sampling b = gc_sampling := b

(* An open span under construction; [children] accumulates reversed. *)
type open_span = {
  o_name : string;
  o_start : int64;
  o_metrics : Metrics.snapshot;
  o_minor : float;
  o_major : int;
  mutable o_children : span list;
}

(* innermost first *)
let stack : open_span list ref = ref []

(* completed top-level spans, reversed *)
let completed : span list ref = ref []

let clear () =
  stack := [];
  completed := []

let finished () = List.rev !completed

let record sp =
  match !stack with
  | [] -> completed := sp :: !completed
  | parent :: _ -> parent.o_children <- sp :: parent.o_children

let span name f =
  if not !on then f ()
  else begin
    let minor, major =
      if !gc_sampling then begin
        let st = Gc.quick_stat () in
        (st.Gc.minor_words, st.Gc.major_collections)
      end
      else (0.0, 0)
    in
    let o =
      {
        o_name = name;
        o_start = Clock.now_ns ();
        o_metrics = Metrics.snapshot ();
        o_minor = minor;
        o_major = major;
        o_children = [];
      }
    in
    stack := o :: !stack;
    let close errored =
      let duration = Int64.sub (Clock.now_ns ()) o.o_start in
      let minor', major' =
        if !gc_sampling then begin
          let st = Gc.quick_stat () in
          (st.Gc.minor_words -. o.o_minor, st.Gc.major_collections - o.o_major)
        end
        else (0.0, 0)
      in
      (match !stack with
      | top :: rest when top == o -> stack := rest
      | _ ->
        (* a nested span escaped its scope (e.g. an exception skipped a
           close); drop back to this frame to stay consistent *)
        let rec pop = function
          | top :: rest when top == o -> rest
          | _ :: rest -> pop rest
          | [] -> []
        in
        stack := pop !stack);
      record
        {
          name = o.o_name;
          start_ns = o.o_start;
          duration_ns = (if Int64.compare duration 0L > 0 then duration else 0L);
          metrics = Metrics.diff o.o_metrics (Metrics.snapshot ());
          minor_words = minor';
          major_collections = major';
          errored;
          children = List.rev o.o_children;
        }
    in
    match f () with
    | v ->
      close false;
      v
    | exception e ->
      close true;
      raise e
  end

(* ------------------------------------------------------------------ *)
(* Rendering                                                           *)
(* ------------------------------------------------------------------ *)

let nonzero_metrics sp =
  List.filter
    (fun (_, v) ->
      match v with
      | Metrics.Counter n | Metrics.Gauge n -> n <> 0
      | Metrics.Histogram h -> h.count <> 0)
    sp.metrics

let pp_tree ppf spans =
  let rec go indent sp =
    Format.fprintf ppf "%s%s  %.3fms%s@," indent sp.name
      (Int64.to_float sp.duration_ns /. 1e6)
      (if sp.errored then "  [raised]" else "");
    List.iter
      (fun (name, v) ->
        match v with
        | Metrics.Counter n | Metrics.Gauge n ->
          Format.fprintf ppf "%s  %s=%d@," indent name n
        | Metrics.Histogram h ->
          Format.fprintf ppf "%s  %s: count=%d sum=%d@," indent name h.count
            h.sum)
      (nonzero_metrics sp);
    List.iter (go (indent ^ "  ")) sp.children
  in
  Format.fprintf ppf "@[<v>";
  List.iter (go "") spans;
  Format.fprintf ppf "@]"

let span_to_json ?(id = 0) ?(parent = None) sp =
  let metrics_json =
    Json.Obj
      (List.map
         (fun (name, v) ->
           match v with
           | Metrics.Counter n | Metrics.Gauge n -> (name, Json.Int n)
           | Metrics.Histogram h ->
             (name, Json.Obj [ ("count", Json.Int h.count); ("sum", Json.Int h.sum) ]))
         (nonzero_metrics sp))
  in
  Json.Obj
    [
      ("id", Json.Int id);
      ("parent", match parent with Some p -> Json.Int p | None -> Json.Null);
      ("name", Json.String sp.name);
      ("start_ns", Json.Int (Int64.to_int sp.start_ns));
      ("duration_ns", Json.Int (Int64.to_int sp.duration_ns));
      ("minor_words", Json.Float sp.minor_words);
      ("major_collections", Json.Int sp.major_collections);
      ("errored", Json.Bool sp.errored);
      ("metrics", metrics_json);
    ]

let to_jsonl spans =
  let buf = Buffer.create 1024 in
  let next_id = ref 0 in
  let rec go parent sp =
    let id = !next_id in
    incr next_id;
    Buffer.add_string buf (Json.to_string (span_to_json ~id ~parent sp));
    Buffer.add_char buf '\n';
    List.iter (go (Some id)) sp.children
  in
  List.iter (go None) spans;
  Buffer.contents buf

let write_jsonl file spans =
  let oc = open_out file in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_jsonl spans))
