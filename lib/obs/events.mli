(** Structured event log: leveled, ring-buffered, optional JSONL sink.

    Disabled by default.  Instrumented decision points (guard trips,
    cache evictions, refuted expansions, rewrite refusals) test
    {!enabled} before building their field lists, so disabled hot paths
    pay one ref read and one branch.  With a sink installed ([--log
    FILE] on the CLI) every accepted event is written immediately as
    one JSON line; the ring buffer keeps the most recent events for
    in-process consumers either way. *)

type level = Debug | Info | Warn | Error

val level_to_string : level -> string

val level_of_string : string -> level option

type event = {
  ts_ns : int64;
  level : level;
  name : string;  (** dotted identifier, e.g. ["guard.trip"] *)
  fields : (string * Json.t) list;
}

val enabled : unit -> bool

val set_enabled : bool -> unit

val set_level : level -> unit
(** Drop events below this level (default: keep everything). *)

val get_level : unit -> level

val set_capacity : int -> unit
(** Resize the ring buffer (default 1024); clears retained events.
    @raise Invalid_argument on non-positive capacities. *)

val clear : unit -> unit

val emit : level -> string -> (string * Json.t) list -> unit
(** Record an event (no-op when disabled or below the level
    threshold).  Guard field construction behind {!enabled} at hot call
    sites. *)

val emitted : unit -> int
(** Total events accepted since the last {!clear} (including ones the
    ring has since overwritten). *)

val recent : unit -> event list
(** Retained events, oldest first. *)

val event_to_json : event -> Json.t

val to_jsonl : event list -> string

val write_jsonl : string -> event list -> unit

val set_sink : out_channel option -> unit
(** Install (or remove) a channel that receives every accepted event as
    one JSON line, as it happens.  The caller owns the channel. *)
