(** Prometheus text exposition (format 0.0.4) of a {!Metrics.snapshot}.

    The /metrics building block for a serving deployment: render any
    snapshot as the text format Prometheus-compatible scrapers ingest.
    Names are sanitised ([.] and [-] become [_]) and prefixed with the
    namespace; log2 histograms become cumulative [le] buckets. *)

val sanitize : string -> string

val to_prometheus : ?namespace:string -> Metrics.snapshot -> string
(** Default namespace ["injcrpq"]. *)

val write_prometheus : ?namespace:string -> string -> Metrics.snapshot -> unit
