(* Structured event log: leveled, ring-buffered, optional JSONL sink.

   Decider decision points (expansion refuted, cache eviction, guard
   trip, rewrite refusal) emit events instead of printf-debugging.  The
   log is disabled by default; instrumented sites guard their field
   construction behind [enabled ()], so the hot paths pay one ref read
   and one branch.  When a sink is installed (--log FILE) every event is
   written as one JSON line immediately — the ring buffer additionally
   keeps the most recent [capacity] events for in-process consumers
   (explain reports, tests). *)

type level = Debug | Info | Warn | Error

let level_rank = function Debug -> 0 | Info -> 1 | Warn -> 2 | Error -> 3

let level_to_string = function
  | Debug -> "debug"
  | Info -> "info"
  | Warn -> "warn"
  | Error -> "error"

let level_of_string = function
  | "debug" -> Some Debug
  | "info" -> Some Info
  | "warn" -> Some Warn
  | "error" -> Some Error
  | _ -> None

type event = {
  ts_ns : int64;
  level : level;
  name : string;
  fields : (string * Json.t) list;
}

let on = ref false

let enabled () = !on

let set_enabled b = on := b

let threshold = ref Debug

let set_level l = threshold := l

let get_level () = !threshold

(* ---------------- ring buffer ---------------- *)

let mu = Mutex.create ()

let default_capacity = 1024

let ring : event option array ref = ref (Array.make default_capacity None)

(* total events accepted; the ring slot is [emitted mod capacity] *)
let emitted_count = ref 0

let set_capacity n =
  if n < 1 then invalid_arg "Obs.Events.set_capacity: capacity must be positive";
  Mutex.lock mu;
  ring := Array.make n None;
  emitted_count := 0;
  Mutex.unlock mu

let clear () =
  Mutex.lock mu;
  Array.fill !ring 0 (Array.length !ring) None;
  emitted_count := 0;
  Mutex.unlock mu

let emitted () = !emitted_count

(* ---------------- sink ---------------- *)

let event_to_json e =
  Json.Obj
    [
      ("ts_ns", Json.Int (Int64.to_int e.ts_ns));
      ("level", Json.String (level_to_string e.level));
      ("event", Json.String e.name);
      ("fields", Json.Obj e.fields);
    ]

let sink : out_channel option ref = ref None

let set_sink oc = sink := oc

let emit level name fields =
  if !on && level_rank level >= level_rank !threshold then begin
    let e = { ts_ns = Clock.now_ns (); level; name; fields } in
    Mutex.lock mu;
    let r = !ring in
    r.(!emitted_count mod Array.length r) <- Some e;
    incr emitted_count;
    (match !sink with
    | Some oc ->
      output_string oc (Json.to_string (event_to_json e));
      output_char oc '\n'
    | None -> ());
    Mutex.unlock mu
  end

(* ---------------- reading back ---------------- *)

let recent () =
  Mutex.lock mu;
  let r = !ring in
  let cap = Array.length r in
  let total = !emitted_count in
  let n = min total cap in
  let out = ref [] in
  for i = 0 to n - 1 do
    (* oldest retained first: slots wrap at [total] *)
    match r.((total - n + i) mod cap) with
    | Some e -> out := e :: !out
    | None -> ()
  done;
  Mutex.unlock mu;
  List.rev !out

let to_jsonl events =
  let buf = Buffer.create 1024 in
  List.iter
    (fun e ->
      Buffer.add_string buf (Json.to_string (event_to_json e));
      Buffer.add_char buf '\n')
    events;
  Buffer.contents buf

let write_jsonl file events =
  let oc = open_out file in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_jsonl events))
