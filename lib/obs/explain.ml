(* Structured per-run explain reports.

   [of_metrics] groups a metrics delta (typically [Metrics.diff] around
   one command) into themed sections — search work, CSP effort, cache
   hit ratios, guard budget per checkpoint site, analysis costs — and
   the renderers produce the same report as a human table or as JSON
   (schema "injcrpq-explain/1").  The module is deliberately generic
   over the snapshot: it lives in [obs] and knows metric name prefixes,
   not the deciders, so callers (the CLI, tests) can append their own
   sections for domain-specific detail (strategy picked, rewrite
   steps). *)

type row = { label : string; value : Json.t }

type section = { name : string; rows : row list }

type report = { title : string; sections : section list }

let schema = "injcrpq-explain/1"

let row label value = { label; value }

let section name rows = { name; rows }

(* ---------------- building from a metrics snapshot ---------------- *)

let has_prefix p s =
  String.length s >= String.length p && String.sub s 0 (String.length p) = p

let value_to_json = function
  | Metrics.Counter c -> Json.Int c
  | Metrics.Gauge g -> Json.Int g
  | Metrics.Histogram h ->
    Json.Obj
      [
        ("count", Json.Int h.count);
        ("sum", Json.Int h.sum);
        ("max", Json.Int h.max);
        ("avg", Json.Int (if h.count = 0 then 0 else h.sum / h.count));
      ]

let nonzero = function
  | Metrics.Counter 0 | Metrics.Gauge 0 -> false
  | Metrics.Histogram h -> h.count > 0
  | _ -> true

(* rows for every nonzero metric matching one of [prefixes], with the
   shared prefix kept (names are the stable identifiers) *)
let prefix_rows prefixes snapshot =
  List.filter_map
    (fun (name, v) ->
      if List.exists (fun p -> has_prefix p name) prefixes && nonzero v then
        Some (row name (value_to_json v))
      else None)
    snapshot

(* cache.<table>.{hits,misses,evictions} -> one row per table *)
let cache_rows snapshot =
  let tables : (string, int * int * int) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun (name, v) ->
      match (String.split_on_char '.' name, v) with
      | [ "cache"; table; metric ], Metrics.Counter c ->
        let h, m, e =
          Option.value (Hashtbl.find_opt tables table) ~default:(0, 0, 0)
        in
        let entry =
          match metric with
          | "hits" -> Some (c, m, e)
          | "misses" -> Some (h, c, e)
          | "evictions" -> Some (h, m, c)
          | _ -> None
        in
        Option.iter (Hashtbl.replace tables table) entry
      | _ -> ())
    snapshot;
  Hashtbl.fold
    (fun table (h, m, e) acc ->
      if h = 0 && m = 0 && e = 0 then acc
      else
        let total = h + m in
        let ratio = if total = 0 then 0. else float_of_int h /. float_of_int total in
        row table
          (Json.Obj
             [
               ("hits", Json.Int h);
               ("misses", Json.Int m);
               ("evictions", Json.Int e);
               ("hit_ratio", Json.Float ratio);
             ])
        :: acc)
    tables []
  |> List.sort (fun a b -> compare a.label b.label)

let event_rows events =
  let counts : (string, int) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun (e : Events.event) ->
      Hashtbl.replace counts e.Events.name
        (Option.value (Hashtbl.find_opt counts e.Events.name) ~default:0 + 1))
    events;
  Hashtbl.fold (fun name n acc -> row name (Json.Int n) :: acc) counts []
  |> List.sort (fun a b -> compare a.label b.label)

let of_metrics ?(profile = []) ?(events = []) ~title snapshot =
  let sections =
    [
      section "search"
        (prefix_rows
           [
             "containment.";
             "expansion.";
             "eval.";
             "qinj.";
             "f7.";
             "path_search.";
             "nfa.";
           ]
           snapshot);
      section "morphism csp" (prefix_rows [ "morphism." ] snapshot);
      (* bulk.dispatch.<caller>.<engine> rows say which layer used which
         engine; sweep_sparse/sweep_dense/tiles say how it ran *)
      section "bulk engine" (prefix_rows [ "bulk." ] snapshot);
      section "caches" (cache_rows snapshot);
      section "guard"
        (prefix_rows [ "guard."; "profile." ] snapshot
        @ List.map
            (fun (site, weight) -> row ("site " ^ site) (Json.Int weight))
            profile);
      section "analysis" (prefix_rows [ "analysis." ] snapshot);
      section "trace" (prefix_rows [ "trace." ] snapshot);
      section "events" (event_rows events);
    ]
  in
  { title; sections = List.filter (fun s -> s.rows <> []) sections }

let add_section report s =
  if s.rows = [] then report
  else { report with sections = report.sections @ [ s ] }

(* ---------------- rendering ---------------- *)

let rec value_to_text = function
  | Json.Null -> "-"
  | Json.Bool b -> string_of_bool b
  | Json.Int n -> string_of_int n
  | Json.Float f -> Printf.sprintf "%.3f" f
  | Json.String s -> s
  | Json.List l -> String.concat ", " (List.map value_to_text l)
  | Json.Obj kvs ->
    String.concat "  "
      (List.map (fun (k, v) -> Printf.sprintf "%s=%s" k (value_to_text v)) kvs)

let to_text r =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf ("explain: " ^ r.title ^ "\n");
  List.iter
    (fun s ->
      Buffer.add_string buf ("\n" ^ s.name ^ "\n");
      let width =
        List.fold_left (fun w row -> max w (String.length row.label)) 0 s.rows
      in
      List.iter
        (fun row ->
          Buffer.add_string buf
            (Printf.sprintf "  %-*s  %s\n" width row.label
               (value_to_text row.value)))
        s.rows)
    r.sections;
  Buffer.contents buf

let to_json r =
  Json.Obj
    [
      ("schema", Json.String schema);
      ("title", Json.String r.title);
      ( "sections",
        Json.List
          (List.map
             (fun s ->
               Json.Obj
                 [
                   ("name", Json.String s.name);
                   ( "rows",
                     Json.List
                       (List.map
                          (fun row ->
                            Json.Obj
                              [
                                ("label", Json.String row.label);
                                ("value", row.value);
                              ])
                          s.rows) );
                 ])
             r.sections) );
    ]
