(** A monotonic nanosecond clock with a pluggable source.

    The library itself depends on nothing outside the standard library,
    so the default source is the process CPU clock ([Sys.time]), which
    is monotonic but does not advance while the process sleeps.
    Surfaces that link an OS monotonic clock (the bench harness and the
    CLI use [bechamel.monotonic_clock]'s [CLOCK_MONOTONIC] stub) install
    it at startup with {!set_source}, so span durations and bench wall
    times can never be skewed by wall-clock adjustments. *)

val now_ns : unit -> int64
(** Current reading of the installed source, in nanoseconds.  Only
    differences between readings are meaningful. *)

val set_source : ?name:string -> (unit -> int64) -> unit
(** Replace the clock source.  [name] identifies it in reports
    (e.g. ["monotonic"]). *)

val source_name : unit -> string
(** Name of the installed source; ["cpu"] for the default. *)

val ns_to_s : int64 -> float
(** Convert a nanosecond difference to seconds. *)
