(** A monotonic nanosecond clock with a pluggable source.

    The default source is the OS monotonic clock ([CLOCK_MONOTONIC] via
    [bechamel.monotonic_clock]'s C stub): it measures elapsed wall time,
    advances while the process sleeps, and is immune to wall-clock
    adjustments — the right basis for deadlines, span durations, and
    bench timings.

    Process CPU time is deliberately a {e separately named} reading
    ({!cpu_ns}); it does not advance while the process blocks and must
    never be compared against monotonic readings. *)

val now_ns : unit -> int64
(** Current reading of the installed source, in nanoseconds.  Only
    differences between readings are meaningful. *)

val monotonic_ns : unit -> int64
(** The OS monotonic clock directly, bypassing {!set_source}. *)

val cpu_ns : unit -> int64
(** Process CPU time ([Sys.time]) in nanoseconds.  Use for CPU-cost
    reporting, never as wall time. *)

val set_source : ?name:string -> (unit -> int64) -> unit
(** Replace the clock source (e.g. a fake clock in tests).  [name]
    identifies it in reports. *)

val reset_source : unit -> unit
(** Restore the default monotonic source. *)

val source_name : unit -> string
(** Name of the installed source; ["monotonic"] for the default. *)

val ns_to_s : int64 -> float
(** Convert a nanosecond difference to seconds. *)
