(* The registry is deliberately simple: handles are records with mutable
   fields, registration interns them in one global table, and the
   recording operations guard on a single flag so disabled hot paths pay
   one load-and-branch and never allocate. *)

let on = ref false

let enabled () = !on

let set_enabled b = on := b

type counter = { c_name : string; mutable c_count : int }

type gauge = { g_name : string; mutable g_value : int }

(* 63 buckets cover every OCaml int on 64-bit platforms *)
let nbuckets = 63

type histogram = {
  h_name : string;
  h_buckets : int array;
  mutable h_count : int;
  mutable h_sum : int;
  mutable h_max : int;
}

type metric = C of counter | G of gauge | H of histogram

let registry : (string, metric) Hashtbl.t = Hashtbl.create 64

let register name make =
  match Hashtbl.find_opt registry name with
  | Some m -> m
  | None ->
    let m = make () in
    Hashtbl.replace registry name m;
    m

let counter name =
  match register name (fun () -> C { c_name = name; c_count = 0 }) with
  | C c -> c
  | G _ | H _ ->
    invalid_arg (Printf.sprintf "Obs.Metrics.counter: %s is not a counter" name)

let gauge name =
  match register name (fun () -> G { g_name = name; g_value = 0 }) with
  | G g -> g
  | C _ | H _ ->
    invalid_arg (Printf.sprintf "Obs.Metrics.gauge: %s is not a gauge" name)

let histogram name =
  match
    register name (fun () ->
        H
          {
            h_name = name;
            h_buckets = Array.make nbuckets 0;
            h_count = 0;
            h_sum = 0;
            h_max = 0;
          })
  with
  | H h -> h
  | C _ | G _ ->
    invalid_arg
      (Printf.sprintf "Obs.Metrics.histogram: %s is not a histogram" name)

(* ------------------------------------------------------------------ *)
(* Recording                                                           *)
(* ------------------------------------------------------------------ *)

let incr c = if !on then c.c_count <- c.c_count + 1

let add c n =
  if n < 0 then invalid_arg "Obs.Metrics.add: negative increment";
  if !on then c.c_count <- c.c_count + n

let counter_value c = c.c_count

let set g v = if !on then g.g_value <- v

let adjust g d = if !on then g.g_value <- g.g_value + d

let bucket_of v =
  if v <= 1 then 0
  else begin
    let rec go k v = if v <= 1 then k else go (k + 1) (v lsr 1) in
    go 0 v
  end

let observe h v =
  if !on then begin
    let b = bucket_of v in
    h.h_buckets.(b) <- h.h_buckets.(b) + 1;
    h.h_count <- h.h_count + 1;
    h.h_sum <- h.h_sum + v;
    if v > h.h_max then h.h_max <- v
  end

(* ------------------------------------------------------------------ *)
(* Snapshots                                                           *)
(* ------------------------------------------------------------------ *)

type value =
  | Counter of int
  | Gauge of int
  | Histogram of {
      count : int;
      sum : int;
      max : int;
      buckets : (int * int) list;
    }

type snapshot = (string * value) list

let value_of = function
  | C c -> Counter c.c_count
  | G g -> Gauge g.g_value
  | H h ->
    let buckets = ref [] in
    for b = nbuckets - 1 downto 0 do
      if h.h_buckets.(b) > 0 then buckets := (b, h.h_buckets.(b)) :: !buckets
    done;
    Histogram { count = h.h_count; sum = h.h_sum; max = h.h_max; buckets = !buckets }

let snapshot () =
  Hashtbl.fold (fun name m acc -> (name, value_of m) :: acc) registry []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let sub_clamped a b = if a >= b then a - b else a

let diff before after =
  List.map
    (fun (name, v_after) ->
      match v_after, List.assoc_opt name before with
      | v, None -> (name, v)
      | Counter a, Some (Counter b) -> (name, Counter (sub_clamped a b))
      | Gauge a, Some _ -> (name, Gauge a)
      | Histogram h, Some (Histogram h') ->
        let buckets =
          List.filter_map
            (fun (b, n) ->
              let n' =
                sub_clamped n
                  (match List.assoc_opt b h'.buckets with Some m -> m | None -> 0)
              in
              if n' > 0 then Some (b, n') else None)
            h.buckets
        in
        ( name,
          Histogram
            {
              count = sub_clamped h.count h'.count;
              sum = sub_clamped h.sum h'.sum;
              max = h.max;
              buckets;
            } )
      | v, Some _ -> (name, v))
    after

let is_zero s =
  List.for_all
    (fun (_, v) ->
      match v with
      | Counter n | Gauge n -> n = 0
      | Histogram h -> h.count = 0)
    s

let reset () =
  Hashtbl.iter
    (fun _ m ->
      match m with
      | C c -> c.c_count <- 0
      | G g -> g.g_value <- 0
      | H h ->
        Array.fill h.h_buckets 0 nbuckets 0;
        h.h_count <- 0;
        h.h_sum <- 0;
        h.h_max <- 0)
    registry

(* ------------------------------------------------------------------ *)
(* JSON round-trip                                                     *)
(* ------------------------------------------------------------------ *)

let value_to_json = function
  | Counter n -> Json.Obj [ ("type", Json.String "counter"); ("value", Json.Int n) ]
  | Gauge n -> Json.Obj [ ("type", Json.String "gauge"); ("value", Json.Int n) ]
  | Histogram h ->
    Json.Obj
      [
        ("type", Json.String "histogram");
        ("count", Json.Int h.count);
        ("sum", Json.Int h.sum);
        ("max", Json.Int h.max);
        ( "buckets",
          Json.List
            (List.map
               (fun (b, n) -> Json.List [ Json.Int b; Json.Int n ])
               h.buckets) );
      ]

let to_json s = Json.Obj (List.map (fun (name, v) -> (name, value_to_json v)) s)

let value_of_json j =
  let int_field k =
    match Json.member k j with
    | Some (Json.Int n) -> Ok n
    | _ -> Error (Printf.sprintf "missing integer field %S" k)
  in
  let ( let* ) = Result.bind in
  match Json.member "type" j with
  | Some (Json.String "counter") ->
    let* v = int_field "value" in
    Ok (Counter v)
  | Some (Json.String "gauge") ->
    let* v = int_field "value" in
    Ok (Gauge v)
  | Some (Json.String "histogram") ->
    let* count = int_field "count" in
    let* sum = int_field "sum" in
    let* max = int_field "max" in
    let* buckets =
      match Json.member "buckets" j with
      | Some (Json.List pairs) ->
        List.fold_left
          (fun acc p ->
            let* acc = acc in
            match p with
            | Json.List [ Json.Int b; Json.Int n ] -> Ok ((b, n) :: acc)
            | _ -> Error "bad histogram bucket"
          )
          (Ok []) pairs
        |> Result.map List.rev
      | _ -> Error "missing histogram buckets"
    in
    Ok (Histogram { count; sum; max; buckets })
  | _ -> Error "missing or unknown metric type"

let of_json = function
  | Json.Obj fields ->
    List.fold_left
      (fun acc (name, j) ->
        Result.bind acc (fun acc ->
            Result.map (fun v -> (name, v) :: acc) (value_of_json j)))
      (Ok []) fields
    |> Result.map List.rev
  | _ -> Error "metrics snapshot must be a JSON object"

(* ------------------------------------------------------------------ *)
(* Table rendering                                                     *)
(* ------------------------------------------------------------------ *)

let pp_table ppf s =
  let width =
    List.fold_left (fun w (name, _) -> max w (String.length name)) 6 s
  in
  Format.fprintf ppf "@[<v>%-*s %12s  %s@," width "metric" "value" "kind";
  List.iter
    (fun (name, v) ->
      match v with
      | Counter n -> Format.fprintf ppf "%-*s %12d  counter@," width name n
      | Gauge n -> Format.fprintf ppf "%-*s %12d  gauge@," width name n
      | Histogram h ->
        Format.fprintf ppf "%-*s %12d  histogram (sum=%d max=%d)@," width name
          h.count h.sum h.max)
    s;
  Format.fprintf ppf "@]"
