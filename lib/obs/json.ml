type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* ------------------------------------------------------------------ *)
(* Rendering                                                           *)
(* ------------------------------------------------------------------ *)

let escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let float_literal f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.1f" f
  else Printf.sprintf "%.17g" f

let to_string v =
  let buf = Buffer.create 256 in
  let rec go = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (string_of_bool b)
    | Int n -> Buffer.add_string buf (string_of_int n)
    | Float f -> Buffer.add_string buf (float_literal f)
    | String s ->
      Buffer.add_char buf '"';
      Buffer.add_string buf (escape s);
      Buffer.add_char buf '"'
    | List elems ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i e ->
          if i > 0 then Buffer.add_char buf ',';
          go e)
        elems;
      Buffer.add_char buf ']'
    | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, e) ->
          if i > 0 then Buffer.add_char buf ',';
          Buffer.add_char buf '"';
          Buffer.add_string buf (escape k);
          Buffer.add_string buf "\":";
          go e)
        fields;
      Buffer.add_char buf '}'
  in
  go v;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Parsing                                                             *)
(* ------------------------------------------------------------------ *)

exception Error of string

type cursor = { src : string; mutable pos : int }

let peek c = if c.pos < String.length c.src then Some c.src.[c.pos] else None

let advance c = c.pos <- c.pos + 1

let fail c msg = raise (Error (Printf.sprintf "%s at offset %d" msg c.pos))

let skip_ws c =
  while
    match peek c with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance c;
      true
    | _ -> false
  do
    ()
  done

let expect c ch =
  match peek c with
  | Some x when x = ch -> advance c
  | Some x -> fail c (Printf.sprintf "expected %C, found %C" ch x)
  | None -> fail c (Printf.sprintf "expected %C, found end of input" ch)

let literal c word value =
  String.iter (fun ch -> expect c ch) word;
  value

let parse_string_body c =
  expect c '"';
  let buf = Buffer.create 16 in
  let rec go () =
    match peek c with
    | None -> fail c "unterminated string"
    | Some '"' -> advance c
    | Some '\\' -> begin
      advance c;
      (match peek c with
      | Some '"' -> Buffer.add_char buf '"'
      | Some '\\' -> Buffer.add_char buf '\\'
      | Some '/' -> Buffer.add_char buf '/'
      | Some 'n' -> Buffer.add_char buf '\n'
      | Some 'r' -> Buffer.add_char buf '\r'
      | Some 't' -> Buffer.add_char buf '\t'
      | Some 'b' -> Buffer.add_char buf '\b'
      | Some 'f' -> Buffer.add_char buf '\012'
      | Some 'u' ->
        if c.pos + 4 >= String.length c.src then fail c "truncated \\u escape";
        let hex = String.sub c.src (c.pos + 1) 4 in
        let code =
          match int_of_string_opt ("0x" ^ hex) with
          | Some n -> n
          | None -> fail c ("bad \\u escape " ^ hex)
        in
        (* the renderer only emits \u for control characters *)
        if code < 0x80 then Buffer.add_char buf (Char.chr code)
        else fail c "unsupported non-ASCII \\u escape";
        c.pos <- c.pos + 4
      | _ -> fail c "bad escape");
      advance c;
      go ()
    end
    | Some ch ->
      Buffer.add_char buf ch;
      advance c;
      go ()
  in
  go ();
  Buffer.contents buf

let parse_number c =
  let start = c.pos in
  let is_num_char = function
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  while match peek c with Some ch when is_num_char ch -> advance c; true | _ -> false do
    ()
  done;
  let lit = String.sub c.src start (c.pos - start) in
  match int_of_string_opt lit with
  | Some n -> Int n
  | None -> begin
    match float_of_string_opt lit with
    | Some f -> Float f
    | None -> fail c ("bad number literal " ^ lit)
  end

let rec parse_value c =
  skip_ws c;
  match peek c with
  | None -> fail c "unexpected end of input"
  | Some '"' -> String (parse_string_body c)
  | Some 't' -> literal c "true" (Bool true)
  | Some 'f' -> literal c "false" (Bool false)
  | Some 'n' -> literal c "null" Null
  | Some '[' -> begin
    advance c;
    skip_ws c;
    match peek c with
    | Some ']' ->
      advance c;
      List []
    | _ ->
      let rec elements acc =
        let v = parse_value c in
        skip_ws c;
        match peek c with
        | Some ',' ->
          advance c;
          elements (v :: acc)
        | _ ->
          expect c ']';
          List (List.rev (v :: acc))
      in
      elements []
  end
  | Some '{' -> begin
    advance c;
    skip_ws c;
    match peek c with
    | Some '}' ->
      advance c;
      Obj []
    | _ ->
      let rec members acc =
        skip_ws c;
        let key = parse_string_body c in
        skip_ws c;
        expect c ':';
        let v = parse_value c in
        skip_ws c;
        match peek c with
        | Some ',' ->
          advance c;
          members ((key, v) :: acc)
        | _ ->
          expect c '}';
          Obj (List.rev ((key, v) :: acc))
      in
      members []
  end
  | Some _ -> parse_number c

let parse s =
  let c = { src = s; pos = 0 } in
  match parse_value c with
  | v ->
    skip_ws c;
    if c.pos <> String.length s then
      Stdlib.Error "trailing input after JSON value"
    else Stdlib.Ok v
  | exception Error msg -> Stdlib.Error msg

(* ------------------------------------------------------------------ *)
(* Accessors                                                           *)
(* ------------------------------------------------------------------ *)

let member k = function Obj fields -> List.assoc_opt k fields | _ -> None

let to_int = function
  | Int n -> Some n
  | Float f when Float.is_integer f -> Some (int_of_float f)
  | _ -> None

let to_list = function List l -> Some l | _ -> None
