(** Guard-checkpoint profiler: weighted call paths from checkpoint hits.

    Every [Guard.checkpoint] under an ambient guard calls {!hit} with
    its site name.  Disarmed (the default), {!hit} is one ref read and
    one branch.  Armed, every [sample_every]-th hit per domain records
    the current {!Trace.current_path} plus the site as a call path and
    adds [sample_every] to its weight — an unbiased estimate of the
    true hit distribution at bounded cost.

    The table exports as flamegraph.pl collapsed-stack format
    ({!to_collapsed}) — pipe through [flamegraph.pl] or load into any
    speedscope-compatible viewer — and as JSON ({!to_json}). *)

val armed : unit -> bool

val arm : ?sample_every:int -> unit -> unit
(** Start sampling (does not clear the table; see {!reset}).
    @raise Invalid_argument if [sample_every < 1]. *)

val disarm : unit -> unit

val sample_rate : unit -> int

val reset : unit -> unit
(** Clear the call-path table. *)

val hit : string -> unit
(** Record (maybe) one checkpoint hit at the named site.  Called by
    [Guard.checkpoint]; instrumented code does not call this
    directly. *)

val samples : unit -> (string list * int) list
(** [(frames, weight)] rows, sorted; the last frame is the checkpoint
    site, the prefix is the open-span path at the hit. *)

val site_totals : unit -> (string * int) list
(** Total weight per checkpoint site, heaviest first. *)

val to_collapsed : unit -> string
(** flamegraph.pl collapsed-stack format: ["a;b;site 42\n"] lines. *)

val write_collapsed : string -> unit

val to_json : unit -> Json.t
