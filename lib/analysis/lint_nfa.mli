(** NFA hygiene: unreachable states, dead states, unproductive
    transitions.

    {!Nfa.of_regex} trims unreachable states but keeps states that
    cannot reach a final state, and the product/union constructions of
    {!Nfa} and {!Lang_ops} reintroduce both kinds.  A dirty automaton
    is semantically fine but wastes work in every downstream product
    ({!Lang_ops} state elimination, path search, containment); these
    diagnostics report what {!Nfa.trim} would remove.

    Codes:

    - [W101] unreachable-state: no path from an initial state.
    - [W102] dead-state: reachable, but no path to a final state.
    - [W103] unproductive-transition: a transition into an unreachable
      or dead state; following it can never contribute an accepted
      word. *)

type report = {
  unreachable : Nfa.state list;
  dead : Nfa.state list;  (** reachable but not co-reachable *)
  unproductive : (Nfa.state * Word.symbol * Nfa.state) list;
}

val analyze : Nfa.t -> report

val is_clean : report -> bool

(** Per-state / per-transition diagnostics with [State] locations. *)
val diagnostics : Nfa.t -> Diagnostic.t list

(** One summary diagnostic per dirty atom NFA of a query, with [Atom]
    locations (used by the query-level driver). *)
val atom_diagnostics : Crpq.t -> Diagnostic.t list

(** [W105] empty-language-atom: the atom's NFA accepts no word (no
    final state reachable), so the atom — and the whole query — is
    unsatisfiable on every graph.  Decided at the automaton level, as
    a cross-check of the regex-level [E001] pass, and independent of
    any example graph (compare the graph-dependent [W104]). *)
val empty_language_atoms : Crpq.t -> Diagnostic.t list
