(** Structural analysis of the query graph.

    The {e underlying multigraph} of a CRPQ has one vertex per variable
    and one (undirected) edge per atom, languages forgotten.  Its shape
    governs how cheaply the query can be evaluated: acyclic queries
    admit Yannakakis-style semijoin plans, and bounded treewidth bounds
    the join width of any bucket-elimination plan ("Semantic Tree-Width
    and Path-Width of CRPQs", Figueira–Morvan).  This module computes

    - connectivity, multigraph acyclicity, articulation points and
      biconnected components (Hopcroft–Tarjan lowlinks);
    - a tree decomposition: exact for small queries (branch-and-bound
      over vertex elimination orders with a subset memo, default up to
      {!default_exact_limit} variables) and a greedy min-fill upper
      bound beyond that.

    The branch-and-bound loop calls the [analysis.treewidth] guard
    checkpoint, so an ambient {!Guard} bounds the (exponential) exact
    search; a trip aborts the refinement and the min-fill bound is
    reported as inexact.

    Codes emitted by {!diagnostics}:

    - [I101] query-shape: one summary per query (variables, atoms,
      components, acyclicity, treewidth and whether it is exact).
    - [I102] decomposition-bag: one per bag of the computed tree
      decomposition, listing its variables and parent bag.
    - [I103] articulation-point: a variable whose removal disconnects
      the query graph; evaluation can be split at such a variable. *)

type t
(** The underlying multigraph of a query, with interned variables. *)

val of_crpq : Crpq.t -> t

val nvars : t -> int

val natoms : t -> int

val var_names : t -> Crpq.var array
(** Vertex id to variable name (ids are dense, sorted by name). *)

val components : t -> int
(** Number of connected components (isolated free variables count). *)

val is_acyclic : t -> bool
(** Multigraph acyclicity: no self-loop atom, no two atoms on the same
    unordered variable pair, and the simple underlying graph is a
    forest.  Under query-injective semantics parallel atoms are
    load-bearing (internally disjoint paths), which is why the
    multigraph — not its simple quotient — is the object judged. *)

val articulation_points : t -> Crpq.var list
(** Sorted variable names whose removal increases the number of
    connected components. *)

val biconnected_components : t -> int list list
(** Edge-disjoint biconnected blocks, each a list of atom indices
    (into the sorted atom list of the query).  Self-loop atoms form
    their own singleton blocks. *)

(** A tree decomposition as a forest of bags: [parent.(b) = -1] for
    roots.  [width] is [max bag size - 1] (and [-1] for the empty
    query); [exact] says whether the branch-and-bound search proved
    optimality or the width is only the greedy min-fill upper bound. *)
type decomposition = {
  bags : int list array;  (** bag index -> sorted vertex ids *)
  parent : int array;
  width : int;
  exact : bool;
}

val default_exact_limit : int
(** Largest variable count for which the exact search runs (12). *)

val decompose : ?exact_limit:int -> t -> decomposition

val treewidth : ?exact_limit:int -> t -> int * bool
(** [(width, exact)] of {!decompose}. *)

(** Everything above, computed once, in report form. *)
type summary = {
  vars : int;
  atoms : int;
  comps : int;
  acyclic : bool;
  width : int;
  width_exact : bool;
  articulation : Crpq.var list;
  bags : (Crpq.var list * int) list;  (** bag variables, parent index *)
}

val summarize : ?exact_limit:int -> Crpq.t -> summary

val summary_json : summary -> Obs.Json.t

val diagnostics : ?exact_limit:int -> Crpq.t -> Diagnostic.t list
(** The [I101]/[I102]/[I103] informational diagnostics. *)
