(** The catalogue of diagnostic codes.

    One entry per stable code emitted anywhere in the toolchain —
    lint passes ({!Lint_query}, {!Lint_nfa}), shape analysis
    ({!Query_shape}), encoding validation ({!Validate}) and the CLI
    itself.  [injcrpq lint --explain CODE] prints an entry; README.md
    renders {!all} as a table.  A code that is emitted but not
    catalogued is a bug (the test suite cross-checks). *)

type entry = {
  code : string;
  severity : Diagnostic.severity;
  title : string;  (** short name, e.g. ["empty-language atom"] *)
  description : string;  (** one paragraph: what it means, why it matters *)
  example : string;  (** a query / situation that triggers it *)
}

val all : entry list
(** Every catalogued code, sorted by code. *)

val find : string -> entry option
(** Case-insensitive lookup. *)

val to_string : entry -> string
(** Multi-line human rendering used by [lint --explain]. *)
