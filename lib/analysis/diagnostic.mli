(** Diagnostics produced by the static-analysis passes.

    A diagnostic carries a stable code (e.g. [E001]), a severity, a
    source location inside the analysed object (an atom index in the
    sorted atom list of a {!Crpq.t}, a variable name, an NFA state, or
    the whole query) and a human-readable message.

    The catalogue of codes lives with the passes that emit them
    ({!Lint_query}, {!Lint_nfa}, {!Validate}); README.md and DESIGN.md
    document the full table. *)

type severity = Error | Warning | Info

type location =
  | Query  (** the query (or automaton / encoding) as a whole *)
  | Atom of int  (** 0-based index into the sorted atom list *)
  | Var of string  (** a query variable *)
  | State of int  (** an NFA state *)

type t = {
  code : string;  (** stable, e.g. ["E001"] *)
  severity : severity;
  location : location;
  message : string;
}

val make : code:string -> severity:severity -> location:location -> string -> t

val equal : t -> t -> bool

val compare : t -> t -> int

val severity_to_string : severity -> string

val severity_of_string : string -> severity option

(** ["query"], ["atom:2"], ["var:x"], ["state:5"]. *)
val location_to_string : location -> string

val location_of_string : string -> location option

(** One line: [E001 error [atom 2]: message]. *)
val to_string : t -> string

val pp : Format.formatter -> t -> unit

(** {1 Severity aggregation} *)

val has_errors : t list -> bool

(** Errors first, then warnings, then infos; stable within a severity. *)
val sort : t list -> t list

(** {1 Machine-readable rendering}

    A diagnostic renders as a flat JSON object
    [{"code":…,"severity":…,"location":…,"message":…}], a list as a
    JSON array of such objects.  [of_json] / [list_of_json] parse
    exactly what [to_json] / [list_to_json] produce (plus whitespace),
    so rendering round-trips. *)

(** JSON string-literal escaping, for callers embedding diagnostics in
    a larger JSON document. *)
val json_escape : string -> string

val to_json : t -> string

val of_json : string -> (t, string) result

val list_to_json : t list -> string

val list_of_json : string -> (t list, string) result
