let m_checked = Obs.Metrics.counter "analysis.certificates_checked"

let m_failed = Obs.Metrics.counter "analysis.certificates_failed"

let m_applied = Obs.Metrics.counter "analysis.rewrites_applied"

let h_certificate_ns = Obs.Metrics.histogram "analysis.certificate_ns"

type candidate =
  | Collapse_unsat
  | Merge_vars of { kept : Crpq.var; dropped : Crpq.var }
  | Drop_atom of { index : int; atom : Crpq.atom }

let candidate_to_string = function
  | Collapse_unsat -> "collapse-unsat"
  | Merge_vars { kept; dropped } -> Printf.sprintf "merge-vars %s := %s" dropped kept
  | Drop_atom { index; atom } ->
    Printf.sprintf "drop-atom %d (%s -[%s]-> %s)" index atom.Crpq.src
      (Regex.to_string atom.Crpq.lang)
      atom.Crpq.dst

type check = {
  lhs : Crpq.t;
  rhs : Crpq.t;
  verdict : Containment.verdict;
  wall_ns : int64;
}

type step = {
  candidate : candidate;
  checks : check list;
  applied : bool;
  note : string;
}

type report = {
  steps : step list;
  before_atoms : int;
  after_atoms : int;
  before_vars : int;
  after_vars : int;
}

let removed_atoms r = r.before_atoms - r.after_atoms

type oracle = Semantics.t -> Crpq.t -> Crpq.t -> Containment.verdict

(* Semantics the deciders refuse outright (the Section-7 edge variants)
   certify nothing rather than crash: an uncertified rewrite is simply
   not applied, which is the engine's safe default. *)
let default_oracle ?(bound = 4) () sem q1 q2 =
  try Containment.decide ~bound sem q1 q2
  with Invalid_argument msg -> Containment.Unknown (Containment.Undecided msg)

(* ------------------------------------------------------------------ *)
(* Candidates                                                          *)
(* ------------------------------------------------------------------ *)

let eps_only lang = Regex.nullable lang && Regex.is_empty_lang (Regex.remove_eps lang)

(* the canonical unsatisfiable query with the given head *)
let unsat_query ~free =
  let v = match free with x :: _ -> x | [] -> "x" in
  Crpq.make ~free [ Crpq.atom v Regex.empty v ]

let is_unsat_canonical (q : Crpq.t) =
  match q.Crpq.atoms with
  | [ a ] -> a.Crpq.src = a.Crpq.dst && Regex.is_empty_lang a.Crpq.lang
  | _ -> false

let candidates (q : Crpq.t) =
  let unsat =
    if Crpq.has_empty_language q && not (is_unsat_canonical q) then [ Collapse_unsat ]
    else []
  in
  let merges =
    List.filter_map
      (fun (a : Crpq.atom) ->
        if eps_only a.Crpq.lang && a.Crpq.src <> a.Crpq.dst then begin
          let free x = List.mem x q.Crpq.free in
          match (free a.Crpq.src, free a.Crpq.dst) with
          | true, true -> None (* the head tuple must keep its shape *)
          | true, false -> Some (Merge_vars { kept = a.Crpq.src; dropped = a.Crpq.dst })
          | false, true -> Some (Merge_vars { kept = a.Crpq.dst; dropped = a.Crpq.src })
          | false, false ->
            let kept = min a.Crpq.src a.Crpq.dst
            and dropped = max a.Crpq.src a.Crpq.dst in
            Some (Merge_vars { kept; dropped })
        end
        else None)
      q.Crpq.atoms
  in
  let drops =
    if List.length q.Crpq.atoms < 2 then []
    else List.mapi (fun index atom -> Drop_atom { index; atom }) q.Crpq.atoms
  in
  unsat @ merges @ drops

let remove_nth n l = List.filteri (fun i _ -> i <> n) l

let apply_candidate (q : Crpq.t) = function
  | Collapse_unsat ->
    if Crpq.has_empty_language q && not (is_unsat_canonical q) then
      Some (unsat_query ~free:q.Crpq.free)
    else None
  | Drop_atom { index; atom } -> begin
    match List.nth_opt q.Crpq.atoms index with
    | Some a when a = atom && List.length q.Crpq.atoms >= 2 ->
      Some (Crpq.make ~free:q.Crpq.free (remove_nth index q.Crpq.atoms))
    | _ -> None
  end
  | Merge_vars { kept; dropped } ->
    if kept = dropped || List.mem dropped q.Crpq.free then None
    else begin
      let sub x = if x = dropped then kept else x in
      let atoms =
        List.map
          (fun (a : Crpq.atom) ->
            { a with Crpq.src = sub a.Crpq.src; Crpq.dst = sub a.Crpq.dst })
          q.Crpq.atoms
      in
      (* drop the ε self-loops the substitution creates, but never all
         atoms: an atomless query has no syntax *)
      let trivial (a : Crpq.atom) = a.Crpq.src = a.Crpq.dst && eps_only a.Crpq.lang in
      let kept_atoms =
        match List.filter (fun a -> not (trivial a)) atoms with
        | [] -> [ List.hd atoms ]
        | l -> l
      in
      if List.exists (fun (a : Crpq.atom) -> a.Crpq.src = dropped || a.Crpq.dst = dropped) q.Crpq.atoms
      then Some (Crpq.make ~free:q.Crpq.free kept_atoms)
      else None
    end

(* ------------------------------------------------------------------ *)
(* Certified fixpoint                                                  *)
(* ------------------------------------------------------------------ *)

(* One direction of a certificate, with its wall-clock cost; the
   histogram makes runaway oracle calls visible in explain reports. *)
let timed_check ~oracle sem lhs rhs =
  let t0 = Obs.Clock.now_ns () in
  let verdict = oracle sem lhs rhs in
  let wall_ns = Int64.sub (Obs.Clock.now_ns ()) t0 in
  Obs.Metrics.observe h_certificate_ns (Int64.to_int wall_ns);
  { lhs; rhs; verdict; wall_ns }

let certify ~oracle sem q q' =
  Obs.Metrics.incr m_checked;
  let forward = timed_check ~oracle sem q q' in
  match forward.verdict with
  | Containment.Contained ->
    let backward = timed_check ~oracle sem q' q in
    let ok = backward.verdict = Containment.Contained in
    if not ok then Obs.Metrics.incr m_failed;
    ([ forward; backward ], ok)
  | _ ->
    Obs.Metrics.incr m_failed;
    ([ forward ], false)

let describe_failure checks =
  match List.rev checks with
  | { verdict = Containment.Not_contained _; _ } :: _ ->
    "rejected: containment refuted (rewrite would change the answer set)"
  | { verdict = Containment.Unknown r; _ } :: _ ->
    "unproven: " ^ Containment.reason_to_string r
  | _ -> "unproven"

let rewrite ?oracle sem (q0 : Crpq.t) =
  let oracle = match oracle with Some f -> f | None -> default_oracle () in
  Obs.Trace.span "analysis.rewrite" @@ fun () ->
  let max_rounds = List.length q0.Crpq.atoms + List.length (Crpq.vars q0) + 1 in
  let steps = ref [] in
  let rec round q n =
    if n >= max_rounds then q
    else begin
      let rec try_candidates tried = function
        | [] ->
          (* nothing certified this round: keep the rejections on record
             ([tried] and [steps] are both newest-first) *)
          steps := tried @ !steps;
          None
        | c :: rest -> begin
          Guard.checkpoint "analysis.rewrite";
          match apply_candidate q c with
          | None -> try_candidates tried rest
          | Some q' -> begin
            let checks, ok = certify ~oracle sem q q' in
            if ok then begin
              Obs.Metrics.incr m_applied;
              steps :=
                { candidate = c; checks; applied = true; note = "certified" }
                :: !steps;
              Some q'
            end
            else begin
              let note = describe_failure checks in
              if Obs.Events.enabled () then
                Obs.Events.emit Obs.Events.Info "analysis.rewrite_refused"
                  [
                    ("candidate", Obs.Json.String (candidate_to_string c));
                    ("note", Obs.Json.String note);
                  ];
              let step = { candidate = c; checks; applied = false; note } in
              try_candidates (step :: tried) rest
            end
          end
        end
      in
      match try_candidates [] (candidates q) with
      | Some q' -> round q' (n + 1)
      | None -> q
    end
  in
  let result = round q0 0 in
  let report =
    {
      steps = List.rev !steps;
      before_atoms = Crpq.size q0;
      after_atoms = Crpq.size result;
      before_vars = List.length (Crpq.vars q0);
      after_vars = List.length (Crpq.vars result);
    }
  in
  (result, report)
