(** Static-analysis passes over CRPQs.

    The paper's central phenomenon is that innocuous-looking CRPQs
    change meaning — or lose all answers — under the injective
    semantics (Example 2.1), and that redundant atoms are detectable
    statically (the minimization companion paper).  These passes
    certify a query {e before} the PSPACE-or-worse deciders run.

    Codes emitted here:

    - [E001] empty-atom-language: some atom denotes {m \emptyset}, so
      the query is unsatisfiable under every semantics.
    - [W002] eps-only-atom: some atom denotes exactly
      {m \{\varepsilon\}}; it silently collapses its endpoints, and the
      collapse interacts differently with st / a-inj / q-inj.
    - [W003] duplicate-atom: a syntactically repeated atom.  Warning
      under st and a-inj (idempotent — dead weight); info under q-inj
      and q-edge-inj, where the duplicate demands two internally
      disjoint paths and is load-bearing.
    - [W004] disconnected-variable: a variable with no atom path to any
      free variable (its component contributes a cartesian product).
    - [W005] unused-free-variable: a free variable occurring in no
      atom; it ranges over the whole node set.
    - [I006] redundant-atom: dropping the atom is
      containment-certified ({!Minimize} machinery) to preserve the
      query under the given semantics; reported as a suggestion, never
      applied.
    - [W104] empty-candidate-domain: against a supplied example graph,
      some variable's candidate domain — the nodes surviving every
      per-atom product-reachability constraint, exactly as the
      {!Morphism} solver seeds its domains — is provably empty. *)

val empty_atoms : Crpq.t -> Diagnostic.t list

val eps_only_atoms : Crpq.t -> Diagnostic.t list

(** Severity depends on [sem]: warning under [St] / [A_inj] /
    [A_edge_inj], info under [Q_inj] / [Q_edge_inj]. *)
val duplicate_atoms : sem:Semantics.t -> Crpq.t -> Diagnostic.t list

val disconnected_vars : Crpq.t -> Diagnostic.t list

val unused_free_vars : Crpq.t -> Diagnostic.t list

(** [empty_domain_atoms ~graph q] flags, per variable (located at the
    first atom mentioning it), candidate domains that are provably
    empty against the example [graph].  One product BFS per atom.
    Sound: a flagged query has no answers on [graph] under any
    semantics. *)
val empty_domain_atoms : graph:Graph.t -> Crpq.t -> Diagnostic.t list

(** [redundant_atoms ~sem ~bound q] flags every atom whose removal is
    {!Minimize.equivalent}-certified under [sem].  Quadratic in the
    number of atoms times a containment call; skipped internally when
    the query has an empty-language atom (everything would be flagged).
    [bound] is the containment search bound (default 4). *)
val redundant_atoms : ?bound:int -> sem:Semantics.t -> Crpq.t -> Diagnostic.t list
