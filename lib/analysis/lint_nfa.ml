type report = {
  unreachable : Nfa.state list;
  dead : Nfa.state list;
  unproductive : (Nfa.state * Word.symbol * Nfa.state) list;
}

let analyze (a : Nfa.t) =
  let n = a.Nfa.nstates in
  let fwd = Array.make n false in
  let rec go q =
    if not fwd.(q) then begin
      fwd.(q) <- true;
      List.iter (fun (_, q') -> go q') a.Nfa.delta.(q)
    end
  in
  List.iter go a.Nfa.initials;
  (* co-reachability over reversed edges *)
  let pred = Array.make n [] in
  Array.iteri
    (fun q out -> List.iter (fun (_, q') -> pred.(q') <- q :: pred.(q')) out)
    a.Nfa.delta;
  let bwd = Array.make n false in
  let rec gob q =
    if not bwd.(q) then begin
      bwd.(q) <- true;
      List.iter gob pred.(q)
    end
  in
  Array.iteri (fun q final -> if final then gob q) a.Nfa.finals;
  let unreachable = ref [] and dead = ref [] in
  for q = n - 1 downto 0 do
    if not fwd.(q) then unreachable := q :: !unreachable
    else if not bwd.(q) then dead := q :: !dead
  done;
  let unproductive = ref [] in
  Array.iteri
    (fun q out ->
      if fwd.(q) && bwd.(q) then
        List.iter
          (fun (x, q') ->
            if not (fwd.(q') && bwd.(q')) then unproductive := (q, x, q') :: !unproductive)
          out)
    a.Nfa.delta;
  { unreachable = !unreachable; dead = !dead; unproductive = List.rev !unproductive }

let is_clean r = r.unreachable = [] && r.dead = [] && r.unproductive = []

let diagnostics a =
  let r = analyze a in
  let per_state code what q =
    Diagnostic.make ~code ~severity:Diagnostic.Warning ~location:(Diagnostic.State q)
      (Printf.sprintf "state %d is %s; Nfa.trim would remove it" q what)
  in
  List.map (per_state "W101" "unreachable from the initial states") r.unreachable
  @ List.map (per_state "W102" "dead (cannot reach a final state)") r.dead
  @ List.map
      (fun (q, x, q') ->
        Diagnostic.make ~code:"W103" ~severity:Diagnostic.Warning
          ~location:(Diagnostic.State q)
          (Printf.sprintf
             "transition %d -%s-> %d enters an unproductive state and contributes \
              no accepted word"
             q x q'))
      r.unproductive

let nfa_language_empty (a : Nfa.t) =
  (* L(A) = ∅ iff no final state is reachable from an initial one *)
  let r = analyze a in
  let reachable q = not (List.mem q r.unreachable) in
  not (Array.exists Fun.id (Array.mapi (fun q final -> final && reachable q) a.Nfa.finals))

let empty_language_atoms (q : Crpq.t) =
  List.concat
    (List.mapi
       (fun i (a : Crpq.atom) ->
         if nfa_language_empty (Crpq.nfa a.Crpq.lang) then
           [
             Diagnostic.make ~code:"W105" ~severity:Diagnostic.Warning
               ~location:(Diagnostic.Atom i)
               (Printf.sprintf
                  "the NFA of [%s] accepts no word (no final state is reachable): \
                   the atom is unsatisfiable on every graph, so the whole query \
                   returns no answers"
                  (Regex.to_string a.Crpq.lang));
           ]
         else [])
       q.Crpq.atoms)

let atom_diagnostics (q : Crpq.t) =
  List.concat
    (List.mapi
       (fun i (a : Crpq.atom) ->
         let r = analyze (Crpq.nfa a.Crpq.lang) in
         if is_clean r then []
         else
           [
             Diagnostic.make ~code:"W102" ~severity:Diagnostic.Info
               ~location:(Diagnostic.Atom i)
               (Printf.sprintf
                  "the NFA of [%s] has %d unreachable state(s), %d dead state(s) and \
                   %d unproductive transition(s); products built from it (path \
                   search, containment, Lang_ops) carry the waste along"
                  (Regex.to_string a.Crpq.lang)
                  (List.length r.unreachable) (List.length r.dead)
                  (List.length r.unproductive));
           ])
       q.Crpq.atoms)
