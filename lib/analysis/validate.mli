(** Well-formedness validators for the containment-pair encodings built
    by the hardness reductions ([Pcp_to_ainj], [Qbf_to_ainj],
    [Gcp_to_qinj]).

    The reductions run these as debug assertions on every [encode]: a
    gadget construction bug (a leaked symbol shared between alphabets
    that must stay apart, a gadget falling off the connected query
    graph, an arity slip) would otherwise surface only as a wrong
    containment verdict much later.

    Codes:

    - [E201] alphabet-overlap: two symbol sets required to be disjoint
      share a symbol.
    - [E202] disconnected-gadget: a query required to be connected has
      a variable outside the component of its first variable.
    - [E203] arity-mismatch: the two queries of a containment pair
      disagree on arity (or an allegedly Boolean encoding is not).
    - [E204] trivial-encoding: the left query of the pair is
      unsatisfiable, so the containment instance decides nothing. *)

(** [disjoint_alphabets ~what s1 s2] checks {m s_1 \cap s_2 = \emptyset};
    [what] names the two sets in the message. *)
val disjoint_alphabets :
  what:string -> Word.symbol list -> Word.symbol list -> Diagnostic.t list

(** [connected ~what q] checks that the atom graph of [q] (all
    variables, undirected) is one component; empty queries pass. *)
val connected : what:string -> Crpq.t -> Diagnostic.t list

val same_arity : Crpq.t -> Crpq.t -> Diagnostic.t list

(** Bundle for a reduction output: arity agreement, satisfiable [q1],
    plus the per-reduction [disjoint] / [connected] obligations. *)
val containment_encoding :
  ?disjoint:(string * Word.symbol list * Word.symbol list) list ->
  ?connected_queries:(string * Crpq.t) list ->
  q1:Crpq.t ->
  q2:Crpq.t ->
  unit ->
  Diagnostic.t list

(** [check ~name ds] is [true] when [ds] has no errors, and raises
    [Failure] rendering them otherwise — shaped for
    [assert (Validate.check ~name ds)] so [-noassert] compiles the
    whole validation away. *)
val check : name:string -> Diagnostic.t list -> bool
