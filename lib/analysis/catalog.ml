type entry = {
  code : string;
  severity : Diagnostic.severity;
  title : string;
  description : string;
  example : string;
}

let e code severity title description example =
  { code; severity; title; description; example }

let all =
  [
    e "E001" Diagnostic.Error "empty-language atom"
      "An atom's regular expression denotes the empty language, so the query has \
       no expansion and no answer under any semantics.  Decided syntactically on \
       the regex; W105 re-derives the same fact at the automaton level."
      "Q(x) :- x -[!]-> y  (the language ! is empty)";
    e "W002" Diagnostic.Warning "epsilon-only atom"
      "An atom admits only the empty word, silently collapsing its endpoints \
       into one node.  The collapse interacts with injectivity: the merged \
       variable counts once for q-inj's injective mapping.  The optimizer's \
       merge-vars rewrite performs the collapse explicitly, certificate in hand."
      "Q(x) :- x -[%]-> y, y -[a]-> z";
    e "W003" Diagnostic.Warning "duplicate atom"
      "Two syntactically identical atoms.  Idempotent (removable) under st, \
       a-inj and a-edge-inj; NOT idempotent under q-inj and q-edge-inj, where \
       the second copy demands a second, internally disjoint path (Example \
       2.1 of the paper) — there the duplicate is load-bearing and the \
       certified optimizer refuses to drop it."
      "Q(x,y) :- x -[aa]-> y, x -[aa]-> y";
    e "W004" Diagnostic.Warning "disconnected variable"
      "A variable unreachable from every free variable in the atom graph: its \
       component contributes a cartesian-product factor to evaluation."
      "Q(x) :- x -[a]-> y, u -[b]-> v";
    e "W005" Diagnostic.Warning "unused free variable"
      "A free variable occurring in no atom ranges over every node of the \
       database, multiplying the answer set by |V|."
      "Q(x,z) :- x -[a]-> y";
    e "I006" Diagnostic.Info "redundant atom"
      "The query with this atom removed is containment-equivalent to the \
       original under the active semantics (both directions certified by the \
       decider).  'injcrpq optimize' applies the removal; the lint only \
       reports it."
      "Q(x,y) :- x -[a]-> y, x -[a|b]-> y  (under st, the second atom is implied)";
    e "W101" Diagnostic.Warning "unreachable NFA state"
      "A state of an atom's NFA with no path from an initial state; Nfa.trim \
       would remove it.  Harmless semantically, but every product built from \
       the automaton (path search, containment) carries the waste along."
      "states introduced by union/product constructions";
    e "W102" Diagnostic.Warning "dead NFA state"
      "A reachable state from which no final state can be reached.  As W101: \
       semantically inert, computationally a tax on every product."
      "a* compiled with a trap state";
    e "W103" Diagnostic.Warning "unproductive NFA transition"
      "A transition into an unreachable or dead state: following it can never \
       contribute an accepted word."
      "any transition into a W101/W102 state";
    e "W104" Diagnostic.Warning "empty candidate domain"
      "Against a user-supplied example graph, no node satisfies all the path \
       constraints on some variable (the CSP solver's seeding relaxation), so \
       the query provably has no answers on that graph under any semantics.  \
       Graph-dependent, unlike W105."
      "lint --graph g.txt with a query whose labels g.txt lacks";
    e "W105" Diagnostic.Warning "empty-language atom (NFA)"
      "The atom's compiled NFA accepts no word: no final state is reachable.  \
       The graph-independent automaton-level counterpart of E001 (and \
       cross-check of it); the optimizer's collapse-unsat rewrite replaces the \
       whole query by a canonical unsatisfiable one."
      "Q(x) :- x -[!a]-> y";
    e "I101" Diagnostic.Info "query-shape summary"
      "One line per query: variables, atoms, connected components, multigraph \
       acyclicity and treewidth (with whether the branch-and-bound search \
       proved it exact or only the greedy min-fill upper bound is known).  \
       Acyclic queries admit semijoin plans; low treewidth bounds the join \
       width of bucket elimination."
      "emitted for every linted query";
    e "I102" Diagnostic.Info "decomposition bag"
      "One bag of the computed tree decomposition: its variables and parent \
       bag.  The bags witness the I101 treewidth."
      "emitted alongside I101";
    e "I103" Diagnostic.Info "articulation point"
      "A variable whose removal disconnects its component of the query graph: \
       evaluation can solve the biconnected blocks independently and join on \
       this variable alone."
      "Q(x,z) :- x -[a]-> y, y -[b]-> z  (y is the cut)";
    e "E201" Diagnostic.Error "alphabet clash in encoding"
      "A hardness-reduction encoding requires disjoint alphabets for two query \
       parts, but they share symbols.  Raised by the self-validation of the \
       PCP/GCP/QBF encoders, not by user queries."
      "internal encoder check";
    e "E202" Diagnostic.Error "disconnected encoding query"
      "An encoding that must produce a connected query produced one with an \
       unreachable variable."
      "internal encoder check";
    e "E203" Diagnostic.Error "arity mismatch"
      "The two queries of a containment instance have different numbers of free \
       variables; containment is undefined between them."
      "contain --lhs 'Q(x) :- ...' --rhs 'Q(x,y) :- ...'";
    e "E204" Diagnostic.Error "trivial containment instance"
      "The left query of an encoding is unsatisfiable, making the containment \
       instance vacuously true."
      "internal encoder check";
    e "E900" Diagnostic.Error "usage error"
      "The command line could not be acted on: unparsable query, unreadable \
       graph file, contradictory flags.  Exit code 2."
      "injcrpq eval --query 'not a query' ...";
    e "E901" Diagnostic.Error "internal error"
      "An unexpected exception escaped a subcommand; the rendered exception is \
       a bug report.  Exit code 2."
      "should not happen";
  ]

let all = List.sort (fun a b -> compare a.code b.code) all

let find code =
  let code = String.uppercase_ascii (String.trim code) in
  List.find_opt (fun entry -> entry.code = code) all

let to_string entry =
  Printf.sprintf "%s (%s) — %s\n\n%s\n\nExample: %s" entry.code
    (Diagnostic.severity_to_string entry.severity)
    entry.title entry.description entry.example
