let lint ?(sem = Semantics.Q_inj) ?(redundancy = true) ?(bound = 4)
    ?(nfa_hygiene = true) ?graph q =
  let passes =
    [
      Lint_query.empty_atoms q;
      Lint_query.eps_only_atoms q;
      Lint_query.duplicate_atoms ~sem q;
      Lint_query.disconnected_vars q;
      Lint_query.unused_free_vars q;
      (if redundancy then Lint_query.redundant_atoms ~bound ~sem q else []);
      (if nfa_hygiene then Lint_nfa.atom_diagnostics q else []);
      (match graph with
      | Some g -> Lint_query.empty_domain_atoms ~graph:g q
      | None -> []);
    ]
  in
  Diagnostic.sort (List.concat passes)

let lint_ucrpq ?sem ?redundancy ?bound ?nfa_hygiene ?graph (u : Ucrpq.t) =
  Diagnostic.sort
    (List.concat
       (List.mapi
          (fun i q ->
            List.map
              (fun d ->
                {
                  d with
                  Diagnostic.message =
                    Printf.sprintf "disjunct %d: %s" i d.Diagnostic.message;
                })
              (lint ?sem ?redundancy ?bound ?nfa_hygiene ?graph q))
          u.Ucrpq.disjuncts))

let degenerate q =
  Lint_query.empty_atoms q <> []
  || Lint_query.eps_only_atoms q <> []
  || Crpq.epsilon_free_disjuncts q = []
