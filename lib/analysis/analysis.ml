let lint ?(sem = Semantics.Q_inj) ?(redundancy = true) ?(bound = 4)
    ?(nfa_hygiene = true) ?(shape = false) ?graph q =
  let passes =
    [
      Lint_query.empty_atoms q;
      Lint_query.eps_only_atoms q;
      Lint_query.duplicate_atoms ~sem q;
      Lint_query.disconnected_vars q;
      Lint_query.unused_free_vars q;
      (if redundancy then Lint_query.redundant_atoms ~bound ~sem q else []);
      (if nfa_hygiene then Lint_nfa.empty_language_atoms q else []);
      (if nfa_hygiene then Lint_nfa.atom_diagnostics q else []);
      (if shape then Query_shape.diagnostics q else []);
      (match graph with
      | Some g -> Lint_query.empty_domain_atoms ~graph:g q
      | None -> []);
    ]
  in
  Diagnostic.sort (List.concat passes)

let lint_ucrpq ?sem ?redundancy ?bound ?nfa_hygiene ?shape ?graph (u : Ucrpq.t) =
  Diagnostic.sort
    (List.concat
       (List.mapi
          (fun i q ->
            List.map
              (fun d ->
                {
                  d with
                  Diagnostic.message =
                    Printf.sprintf "disjunct %d: %s" i d.Diagnostic.message;
                })
              (lint ?sem ?redundancy ?bound ?nfa_hygiene ?shape ?graph q))
          u.Ucrpq.disjuncts))

let degenerate q =
  Lint_query.empty_atoms q <> []
  || Lint_query.eps_only_atoms q <> []
  || Crpq.epsilon_free_disjuncts q = []

(* ------------------------------------------------------------------ *)
(* The certified optimizer                                             *)
(* ------------------------------------------------------------------ *)

type optimize_report = {
  rewrite : Rewrite.report;
  shape_before : Query_shape.summary;
  shape_after : Query_shape.summary;
}

let optimize ?(sem = Semantics.Q_inj) ?bound ?oracle ?exact_limit q =
  Obs.Trace.span "analysis.optimize" @@ fun () ->
  let oracle =
    match oracle with Some f -> f | None -> Rewrite.default_oracle ?bound ()
  in
  let shape_before = Query_shape.summarize ?exact_limit q in
  let q', rewrite = Rewrite.rewrite ~oracle sem q in
  let shape_after =
    if q' == q then shape_before else Query_shape.summarize ?exact_limit q'
  in
  (q', { rewrite; shape_before; shape_after })

let optimize_ucrpq ?sem ?bound ?oracle ?exact_limit (u : Ucrpq.t) =
  let results =
    List.map (fun q -> optimize ?sem ?bound ?oracle ?exact_limit q) u.Ucrpq.disjuncts
  in
  (Ucrpq.make (List.map fst results), List.map snd results)

(* ------------------------------------------------------------------ *)
(* Opt-in pre-pass for Eval / Containment (INJCRPQ_OPTIMIZE, --optimize)*)
(* ------------------------------------------------------------------ *)

(* One shared re-entrancy flag: certificate checks inside [optimize]
   call [Containment.decide], which would re-enter the preprocessor and
   recurse forever.  Nested calls see [busy = true] and pass the query
   through unchanged. *)
let busy = ref false

(* The pre-pass skips the shape analysis (callers only consume the
   rewritten query) and large queries: certificate checks on a
   many-atom query (a hardness encoding, say) cost far more than any
   evaluation they could save.  "Large" is both atom count and total
   regex size — reduction encodings carry few atoms but huge languages,
   and a bounded certificate search enumerates their expansions. *)
let regex_weight q =
  List.fold_left (fun acc (a : Crpq.atom) -> acc + Regex.size a.Crpq.lang) 0 q.Crpq.atoms

let max_regex_weight = 24

let preprocess ~bound ~max_atoms sem q =
  if !busy || Crpq.size q > max_atoms || regex_weight q > max_regex_weight then q
  else begin
    busy := true;
    Fun.protect
      ~finally:(fun () -> busy := false)
      (fun () ->
        let oracle = Rewrite.default_oracle ~bound () in
        let q', _ = Rewrite.rewrite ~oracle sem q in
        q')
  end

let install_preprocessor ?(bound = 2) ?(max_atoms = 6) () =
  Eval.set_preprocessor (preprocess ~bound ~max_atoms);
  Containment.set_preprocessor (preprocess ~bound ~max_atoms)

let uninstall_preprocessor () =
  Eval.set_preprocessor (fun _ q -> q);
  Containment.set_preprocessor (fun _ q -> q)

(* ------------------------------------------------------------------ *)
(* Shared renderers and input helpers (CLI and golden tests)           *)
(* ------------------------------------------------------------------ *)

let read_query_file path =
  match open_in path with
  | exception Sys_error msg -> Error msg
  | ic ->
    let base = Filename.basename path in
    let rec go acc lineno =
      match input_line ic with
      | line ->
        let trimmed = String.trim line in
        if trimmed = "" || trimmed.[0] = '#' then go acc (lineno + 1)
        else begin
          match Crpq.parse_result trimmed with
          | Ok q -> go ((Printf.sprintf "%s:%d" base lineno, q) :: acc) (lineno + 1)
          | Error e ->
            close_in ic;
            raise
              (Failure
                 (Printf.sprintf "%s:%d: cannot parse query: %s" path lineno
                    (Crpq.string_of_parse_error e)))
        end
      | exception End_of_file ->
        close_in ic;
        List.rev acc
    in
    (match go [] 1 with
    | queries -> Ok queries
    | exception Failure msg -> Error msg)

let lint_json results =
  Printf.sprintf "[%s]"
    (String.concat ","
       (List.map
          (fun (name, q, ds) ->
            Printf.sprintf {|{"name":"%s","query":"%s","diagnostics":%s}|}
              (Diagnostic.json_escape name)
              (Diagnostic.json_escape (Crpq.to_string q))
              (Diagnostic.list_to_json ds))
          results))

let verdict_kind = function
  | Containment.Contained -> "contained"
  | Containment.Not_contained _ -> "not-contained"
  | Containment.Unknown _ -> "unknown"

let step_json (s : Rewrite.step) =
  Obs.Json.Obj
    [
      ("candidate", Obs.Json.String (Rewrite.candidate_to_string s.Rewrite.candidate));
      ("applied", Obs.Json.Bool s.Rewrite.applied);
      ("note", Obs.Json.String s.Rewrite.note);
      ( "checks",
        Obs.Json.List
          (List.map
             (fun (c : Rewrite.check) ->
               Obs.Json.Obj
                 [
                   ("lhs", Obs.Json.String (Crpq.to_string c.Rewrite.lhs));
                   ("rhs", Obs.Json.String (Crpq.to_string c.Rewrite.rhs));
                   ("verdict", Obs.Json.String (verdict_kind c.Rewrite.verdict));
                   ("wall_ns", Obs.Json.Int (Int64.to_int c.Rewrite.wall_ns));
                 ])
             s.Rewrite.checks) );
    ]

let optimize_json ~name ~sem ~before ~after (r : optimize_report) =
  Obs.Json.Obj
    [
      ("name", Obs.Json.String name);
      ("semantics", Obs.Json.String (Semantics.to_string sem));
      ("before", Obs.Json.String (Crpq.to_string before));
      ("after", Obs.Json.String (Crpq.to_string after));
      ("changed", Obs.Json.Bool (not (Crpq.to_string before = Crpq.to_string after)));
      ("atoms_removed", Obs.Json.Int (Rewrite.removed_atoms r.rewrite));
      ("shape_before", Query_shape.summary_json r.shape_before);
      ("shape_after", Query_shape.summary_json r.shape_after);
      ("steps", Obs.Json.List (List.map step_json r.rewrite.Rewrite.steps));
    ]
