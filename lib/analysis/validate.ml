let diag = Diagnostic.make

let disjoint_alphabets ~what s1 s2 =
  let s2_tbl = Hashtbl.create 16 in
  List.iter (fun x -> Hashtbl.replace s2_tbl x ()) s2;
  let shared =
    List.sort_uniq String.compare (List.filter (Hashtbl.mem s2_tbl) s1)
  in
  match shared with
  | [] -> []
  | _ ->
    [
      diag ~code:"E201" ~severity:Diagnostic.Error ~location:Diagnostic.Query
        (Printf.sprintf "%s must use disjoint alphabets but share {%s}" what
           (String.concat ", " shared));
    ]

let connected ~what (q : Crpq.t) =
  match Crpq.vars q with
  | [] -> []
  | first :: _ as vars ->
    let adj = Hashtbl.create 16 in
    let add x y =
      let cur = Option.value ~default:[] (Hashtbl.find_opt adj x) in
      Hashtbl.replace adj x (y :: cur)
    in
    List.iter
      (fun (a : Crpq.atom) ->
        add a.Crpq.src a.Crpq.dst;
        add a.Crpq.dst a.Crpq.src)
      q.Crpq.atoms;
    let seen = Hashtbl.create 16 in
    let rec go x =
      if not (Hashtbl.mem seen x) then begin
        Hashtbl.add seen x ();
        List.iter go (Option.value ~default:[] (Hashtbl.find_opt adj x))
      end
    in
    go first;
    List.filter_map
      (fun x ->
        if Hashtbl.mem seen x then None
        else
          Some
            (diag ~code:"E202" ~severity:Diagnostic.Error ~location:(Diagnostic.Var x)
               (Printf.sprintf
                  "%s must be connected, but variable %s is not reachable from %s \
                   in the atom graph"
                  what x first)))
      vars

let same_arity (q1 : Crpq.t) (q2 : Crpq.t) =
  let a1 = List.length q1.Crpq.free and a2 = List.length q2.Crpq.free in
  if a1 = a2 then []
  else
    [
      diag ~code:"E203" ~severity:Diagnostic.Error ~location:Diagnostic.Query
        (Printf.sprintf "containment pair has mismatched arities %d vs %d" a1 a2);
    ]

let containment_encoding ?(disjoint = []) ?(connected_queries = []) ~q1 ~q2 () =
  same_arity q1 q2
  @ (if Minimize.is_satisfiable q1 then []
     else
       [
         diag ~code:"E204" ~severity:Diagnostic.Error ~location:Diagnostic.Query
           "left query of the encoding is unsatisfiable: the containment instance \
            is trivial";
       ])
  @ List.concat_map (fun (what, s1, s2) -> disjoint_alphabets ~what s1 s2) disjoint
  @ List.concat_map (fun (what, q) -> connected ~what q) connected_queries

let check ~name ds =
  match List.filter (fun d -> d.Diagnostic.severity = Diagnostic.Error) ds with
  | [] -> true
  | errors ->
    failwith
      (Printf.sprintf "%s produced an ill-formed encoding:\n%s" name
         (String.concat "\n" (List.map Diagnostic.to_string errors)))
