(* Structural analysis of the underlying multigraph of a CRPQ: shape,
   articulation structure and tree decompositions.  Everything here is
   per-query and small (variables, not database nodes), so the
   representations are dense matrices over interned variable ids. *)

let m_tw_nodes = Obs.Metrics.counter "analysis.treewidth_nodes"

let m_tw_memo_hits = Obs.Metrics.counter "analysis.treewidth_memo_hits"

type t = {
  names : Crpq.var array;  (* vertex id -> variable name, sorted *)
  natoms : int;
  (* one entry per atom, in sorted-atom-list order *)
  atom_ends : (int * int) array;  (* (src id, dst id) *)
  adj : bool array array;  (* simple underlying graph, no self-loops *)
}

let of_crpq (q : Crpq.t) =
  let names = Array.of_list (Crpq.vars q) in
  let id =
    let tbl = Hashtbl.create 16 in
    Array.iteri (fun i x -> Hashtbl.add tbl x i) names;
    fun x -> Hashtbl.find tbl x
  in
  let n = Array.length names in
  let adj = Array.make_matrix n n false in
  let atom_ends =
    Array.of_list
      (List.map
         (fun (a : Crpq.atom) ->
           let u = id a.Crpq.src and v = id a.Crpq.dst in
           if u <> v then begin
             adj.(u).(v) <- true;
             adj.(v).(u) <- true
           end;
           (u, v))
         q.Crpq.atoms)
  in
  { names; natoms = Array.length atom_ends; atom_ends; adj }

let nvars g = Array.length g.names

let natoms g = g.natoms

let var_names g = g.names

let components g =
  let n = nvars g in
  let seen = Array.make n false in
  let rec dfs u =
    if not seen.(u) then begin
      seen.(u) <- true;
      for v = 0 to n - 1 do
        if g.adj.(u).(v) then dfs v
      done
    end
  in
  let c = ref 0 in
  for u = 0 to n - 1 do
    if not seen.(u) then begin
      incr c;
      dfs u
    end
  done;
  !c

let is_acyclic g =
  let n = nvars g in
  let self_loop = Array.exists (fun (u, v) -> u = v) g.atom_ends in
  let pair_seen = Hashtbl.create 16 in
  let parallel = ref false in
  Array.iter
    (fun (u, v) ->
      if u <> v then begin
        let key = (min u v, max u v) in
        if Hashtbl.mem pair_seen key then parallel := true
        else Hashtbl.add pair_seen key ()
      end)
    g.atom_ends;
  (* a simple graph is a forest iff #edges = #vertices - #components *)
  let simple_edges = Hashtbl.length pair_seen in
  (not self_loop) && (not !parallel) && simple_edges = n - components g

(* ------------------------------------------------------------------ *)
(* Articulation points and biconnected components (Hopcroft–Tarjan)    *)
(* ------------------------------------------------------------------ *)

(* DFS over the multigraph with atoms as edge ids: parallel atoms are
   distinct edges (and correctly form 2-edge blocks), self-loop atoms
   are singleton blocks. *)
let lowlink g =
  let n = nvars g in
  (* adjacency as (neighbour, atom id) lists *)
  let out = Array.make n [] in
  Array.iteri
    (fun i (u, v) ->
      if u <> v then begin
        out.(u) <- (v, i) :: out.(u);
        out.(v) <- (u, i) :: out.(v)
      end)
    g.atom_ends;
  let num = Array.make n (-1) and low = Array.make n 0 in
  let counter = ref 0 in
  let cut = Array.make n false in
  let stack = ref [] (* edge (atom) ids *) in
  let blocks = ref [] in
  let pop_block upto =
    let rec go acc =
      match !stack with
      | e :: rest ->
        stack := rest;
        if e = upto then e :: acc else go (e :: acc)
      | [] -> acc
    in
    blocks := go [] :: !blocks
  in
  let rec dfs u parent_edge =
    num.(u) <- !counter;
    low.(u) <- !counter;
    incr counter;
    let children = ref 0 in
    List.iter
      (fun (v, e) ->
        if e <> parent_edge then
          if num.(v) = -1 then begin
            stack := e :: !stack;
            incr children;
            dfs v e;
            if low.(v) < low.(u) then low.(u) <- low.(v);
            if low.(v) >= num.(u) then begin
              (* u separates the block rooted at this child *)
              if parent_edge <> -1 then cut.(u) <- true;
              pop_block e
            end
          end
          else if num.(v) < num.(u) then begin
            stack := e :: !stack;
            if num.(v) < low.(u) then low.(u) <- num.(v)
          end)
      out.(u);
    if parent_edge = -1 && !children >= 2 then cut.(u) <- true
  in
  for u = 0 to n - 1 do
    if num.(u) = -1 then dfs u (-1)
  done;
  let self_blocks =
    Array.to_list g.atom_ends
    |> List.mapi (fun i (u, v) -> if u = v then Some [ i ] else None)
    |> List.filter_map Fun.id
  in
  (cut, List.rev !blocks @ self_blocks)

let articulation_points g =
  let cut, _ = lowlink g in
  Array.to_list
    (Array.of_list
       (List.filter_map
          (fun i -> if cut.(i) then Some g.names.(i) else None)
          (List.init (nvars g) Fun.id)))

let biconnected_components g =
  let _, blocks = lowlink g in
  List.map (List.sort compare) blocks

(* ------------------------------------------------------------------ *)
(* Tree decompositions via elimination orders                          *)
(* ------------------------------------------------------------------ *)

type decomposition = {
  bags : int list array;
  parent : int array;
  width : int;
  exact : bool;
}

let default_exact_limit = 12

let copy_matrix m = Array.map Array.copy m

(* Greedy min-fill: repeatedly eliminate the vertex whose neighbourhood
   needs the fewest fill edges (ties: smaller degree, then smaller id).
   Returns the order; [width_of_order] recomputes its width. *)
let min_fill_order adj n =
  let adj = copy_matrix adj in
  let alive = Array.make n true in
  let degree v =
    let d = ref 0 in
    for u = 0 to n - 1 do
      if alive.(u) && adj.(v).(u) then incr d
    done;
    !d
  in
  let fill_of v =
    let nbrs = ref [] in
    for u = n - 1 downto 0 do
      if alive.(u) && adj.(v).(u) then nbrs := u :: !nbrs
    done;
    let f = ref 0 in
    let rec pairs = function
      | [] -> ()
      | x :: rest ->
        List.iter (fun y -> if not adj.(x).(y) then incr f) rest;
        pairs rest
    in
    pairs !nbrs;
    (!f, !nbrs)
  in
  let order = ref [] in
  for _ = 1 to n do
    let best = ref (-1) and best_key = ref (max_int, max_int) in
    for v = n - 1 downto 0 do
      if alive.(v) then begin
        let f, _ = fill_of v in
        let key = (f, degree v) in
        if !best = -1 || key <= !best_key then begin
          best := v;
          best_key := key
        end
      end
    done;
    let v = !best in
    let _, nbrs = fill_of v in
    let rec connect = function
      | [] -> ()
      | x :: rest ->
        List.iter
          (fun y ->
            adj.(x).(y) <- true;
            adj.(y).(x) <- true)
          rest;
        connect rest
    in
    connect nbrs;
    alive.(v) <- false;
    order := v :: !order
  done;
  Array.of_list (List.rev !order)

let width_of_order adj n order =
  let adj = copy_matrix adj in
  let alive = Array.make n true in
  let width = ref (-1) in
  Array.iter
    (fun v ->
      let nbrs = ref [] in
      for u = n - 1 downto 0 do
        if alive.(u) && adj.(v).(u) then nbrs := u :: !nbrs
      done;
      let d = List.length !nbrs in
      if d > !width then width := d;
      let rec connect = function
        | [] -> ()
        | x :: rest ->
          List.iter
            (fun y ->
              adj.(x).(y) <- true;
              adj.(y).(x) <- true)
            rest;
          connect rest
      in
      connect !nbrs;
      alive.(v) <- false)
    order;
  !width

(* Exact treewidth: branch and bound over elimination orders.  The
   filled graph after eliminating a set S depends only on S, so a memo
   on the eliminated-set bitmask prunes permutations of a common
   prefix; the simplicial-vertex rule (if v's live neighbourhood is a
   clique, some optimal order eliminates v next) collapses most of the
   remaining branching.  Raises [Guard.Trip] out of the checkpoint when
   an ambient guard's budget runs out — callers treat the incumbent
   min-fill order as the (inexact) answer. *)
let exact_order adj n ~incumbent_order ~incumbent_width =
  let best_width = ref incumbent_width in
  let best_order = ref incumbent_order in
  let memo : (int, int) Hashtbl.t = Hashtbl.create 256 in
  let rec go mask adj width_so_far order_rev remaining =
    Guard.checkpoint "analysis.treewidth";
    Obs.Metrics.incr m_tw_nodes;
    if remaining = 0 then begin
      if width_so_far < !best_width then begin
        best_width := width_so_far;
        best_order := Array.of_list (List.rev order_rev)
      end
    end
    else begin
      let alive v = mask land (1 lsl v) = 0 in
      let nbrs v =
        let l = ref [] in
        for u = n - 1 downto 0 do
          if alive u && adj.(v).(u) then l := u :: !l
        done;
        !l
      in
      let is_clique vs =
        let rec go = function
          | [] -> true
          | x :: rest -> List.for_all (fun y -> adj.(x).(y)) rest && go rest
        in
        go vs
      in
      let eliminate v =
        let vs = nbrs v in
        let adj' = copy_matrix adj in
        let rec connect = function
          | [] -> ()
          | x :: rest ->
            List.iter
              (fun y ->
                adj'.(x).(y) <- true;
                adj'.(y).(x) <- true)
              rest;
            connect rest
        in
        connect vs;
        (adj', List.length vs)
      in
      (* simplicial rule: eliminating a simplicial vertex first is
         always optimal, so branch on it alone *)
      let simplicial = ref (-1) in
      (try
         for v = 0 to n - 1 do
           if alive v && is_clique (nbrs v) then begin
             simplicial := v;
             raise Exit
           end
         done
       with Exit -> ());
      let branch v =
        let adj', d = eliminate v in
        let w' = max width_so_far d in
        if w' < !best_width then begin
          let mask' = mask lor (1 lsl v) in
          let seen =
            match Hashtbl.find_opt memo mask' with
            | Some w when w <= w' ->
              Obs.Metrics.incr m_tw_memo_hits;
              true
            | _ -> false
          in
          if not seen then begin
            Hashtbl.replace memo mask' w';
            go mask' adj' w' (v :: order_rev) (remaining - 1)
          end
        end
      in
      if !simplicial >= 0 then branch !simplicial
      else
        for v = 0 to n - 1 do
          if alive v then branch v
        done
    end
  in
  go 0 (copy_matrix adj) (-1) [] n;
  (!best_order, !best_width)

(* Bags from an elimination order: bag(v) = v plus its live
   neighbourhood in the filled graph; the parent of bag(v) is the bag
   of the next-eliminated member of that neighbourhood. *)
let decomposition_of_order adj n order width exact =
  let adj = copy_matrix adj in
  let alive = Array.make n true in
  let position = Array.make n 0 in
  Array.iteri (fun i v -> position.(v) <- i) order;
  let bags = Array.make n [] in
  let parent = Array.make n (-1) in
  Array.iteri
    (fun i v ->
      let nbrs = ref [] in
      for u = n - 1 downto 0 do
        if alive.(u) && adj.(v).(u) then nbrs := u :: !nbrs
      done;
      bags.(i) <- List.sort compare (v :: !nbrs);
      (match !nbrs with
      | [] -> ()
      | vs ->
        let next = List.fold_left (fun acc u -> min acc position.(u)) max_int vs in
        parent.(i) <- next);
      let rec connect = function
        | [] -> ()
        | x :: rest ->
          List.iter
            (fun y ->
              adj.(x).(y) <- true;
              adj.(y).(x) <- true)
            rest;
          connect rest
      in
      connect !nbrs;
      alive.(v) <- false)
    order;
  { bags; parent; width; exact }

let decompose ?(exact_limit = default_exact_limit) g =
  let n = nvars g in
  if n = 0 then { bags = [||]; parent = [||]; width = -1; exact = true }
  else begin
    let greedy = min_fill_order g.adj n in
    let greedy_width = width_of_order g.adj n greedy in
    if n > exact_limit then decomposition_of_order g.adj n greedy greedy_width false
    else
      match
        Obs.Trace.span "analysis.treewidth" (fun () ->
            exact_order g.adj n ~incumbent_order:greedy
              ~incumbent_width:greedy_width)
      with
      | order, width -> decomposition_of_order g.adj n order width true
      | exception Guard.Trip _ ->
        (* budget ran out mid-search: fall back to the greedy bound *)
        decomposition_of_order g.adj n greedy greedy_width false
  end

let treewidth ?exact_limit g =
  let d = decompose ?exact_limit g in
  (d.width, d.exact)

(* ------------------------------------------------------------------ *)
(* Summaries and diagnostics                                           *)
(* ------------------------------------------------------------------ *)

type summary = {
  vars : int;
  atoms : int;
  comps : int;
  acyclic : bool;
  width : int;
  width_exact : bool;
  articulation : Crpq.var list;
  bags : (Crpq.var list * int) list;
}

let summarize ?exact_limit q =
  let g = of_crpq q in
  let d = decompose ?exact_limit g in
  {
    vars = nvars g;
    atoms = natoms g;
    comps = components g;
    acyclic = is_acyclic g;
    width = d.width;
    width_exact = d.exact;
    articulation = articulation_points g;
    bags =
      Array.to_list
        (Array.mapi
           (fun i bag -> (List.map (fun v -> g.names.(v)) bag, d.parent.(i)))
           d.bags);
  }

let summary_json s =
  Obs.Json.Obj
    [
      ("vars", Obs.Json.Int s.vars);
      ("atoms", Obs.Json.Int s.atoms);
      ("components", Obs.Json.Int s.comps);
      ("acyclic", Obs.Json.Bool s.acyclic);
      ("treewidth", Obs.Json.Int s.width);
      ("treewidth_exact", Obs.Json.Bool s.width_exact);
      ( "articulation_points",
        Obs.Json.List (List.map (fun x -> Obs.Json.String x) s.articulation) );
      ( "bags",
        Obs.Json.List
          (List.map
             (fun (bag, parent) ->
               Obs.Json.Obj
                 [
                   ( "vars",
                     Obs.Json.List (List.map (fun x -> Obs.Json.String x) bag) );
                   ("parent", Obs.Json.Int parent);
                 ])
             s.bags) );
    ]

let diagnostics ?exact_limit (q : Crpq.t) =
  let s = summarize ?exact_limit q in
  let info = Diagnostic.make ~severity:Diagnostic.Info in
  let summary =
    info ~code:"I101" ~location:Diagnostic.Query
      (Printf.sprintf
         "query graph: %d variable(s), %d atom(s), %d component(s); multigraph is \
          %s; treewidth %d (%s)"
         s.vars s.atoms s.comps
         (if s.acyclic then "acyclic (semijoin-plannable)" else "cyclic")
         s.width
         (if s.width_exact then "exact" else "min-fill upper bound"))
  in
  let bags =
    List.mapi
      (fun i (bag, parent) ->
        info ~code:"I102" ~location:Diagnostic.Query
          (Printf.sprintf "decomposition bag %d {%s}%s" i (String.concat ", " bag)
             (if parent < 0 then " (root)" else Printf.sprintf " (parent bag %d)" parent)))
      s.bags
  in
  let cuts =
    List.map
      (fun x ->
        info ~code:"I103" ~location:(Diagnostic.Var x)
          (Printf.sprintf
             "variable %s is an articulation point: its component splits here, so \
              evaluation can solve the biconnected blocks independently and join \
              on %s"
             x x))
      s.articulation
  in
  (summary :: bags) @ cuts
