type severity = Error | Warning | Info

type location = Query | Atom of int | Var of string | State of int

type t = {
  code : string;
  severity : severity;
  location : location;
  message : string;
}

let make ~code ~severity ~location message = { code; severity; location; message }

let equal = Stdlib.( = )

let compare = Stdlib.compare

let severity_to_string = function
  | Error -> "error"
  | Warning -> "warning"
  | Info -> "info"

let severity_of_string = function
  | "error" -> Some Error
  | "warning" -> Some Warning
  | "info" -> Some Info
  | _ -> None

let location_to_string = function
  | Query -> "query"
  | Atom i -> Printf.sprintf "atom:%d" i
  | Var x -> "var:" ^ x
  | State q -> Printf.sprintf "state:%d" q

let location_of_string s =
  match String.index_opt s ':' with
  | None -> if s = "query" then Some Query else None
  | Some i -> begin
    let kind = String.sub s 0 i in
    let rest = String.sub s (i + 1) (String.length s - i - 1) in
    match kind with
    | "atom" -> Option.map (fun n -> Atom n) (int_of_string_opt rest)
    | "state" -> Option.map (fun n -> State n) (int_of_string_opt rest)
    | "var" -> Some (Var rest)
    | _ -> None
  end

let pp_location ppf = function
  | Query -> Format.pp_print_string ppf "query"
  | Atom i -> Format.fprintf ppf "atom %d" i
  | Var x -> Format.fprintf ppf "var %s" x
  | State q -> Format.fprintf ppf "state %d" q

let pp ppf d =
  Format.fprintf ppf "%s %s [%a]: %s" d.code
    (severity_to_string d.severity)
    pp_location d.location d.message

let to_string d = Format.asprintf "%a" pp d

let severity_rank = function Error -> 0 | Warning -> 1 | Info -> 2

let has_errors ds = List.exists (fun d -> d.severity = Error) ds

let sort ds =
  List.stable_sort (fun a b -> Stdlib.compare (severity_rank a.severity) (severity_rank b.severity)) ds

(* ------------------------------------------------------------------ *)
(* JSON rendering and parsing                                           *)
(* ------------------------------------------------------------------ *)

(* The machine-readable format is deliberately tiny: flat objects with
   string fields only, so that a self-contained renderer/parser pair
   round-trips without an external JSON dependency. *)

let json_escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_json d =
  Printf.sprintf
    {|{"code":"%s","severity":"%s","location":"%s","message":"%s"}|}
    (json_escape d.code)
    (severity_to_string d.severity)
    (json_escape (location_to_string d.location))
    (json_escape d.message)

let list_to_json ds = "[" ^ String.concat "," (List.map to_json ds) ^ "]"

(* A recursive-descent parser for the fragment of JSON the renderer
   emits: arrays of flat objects whose fields are strings. *)

exception Json_error of string

type cursor = { src : string; mutable pos : int }

let peek c = if c.pos < String.length c.src then Some c.src.[c.pos] else None

let advance c = c.pos <- c.pos + 1

let skip_ws c =
  while
    match peek c with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance c;
      true
    | _ -> false
  do
    ()
  done

let expect c ch =
  match peek c with
  | Some x when x = ch -> advance c
  | Some x -> raise (Json_error (Printf.sprintf "expected %C, found %C at %d" ch x c.pos))
  | None -> raise (Json_error (Printf.sprintf "expected %C, found end of input" ch))

let parse_string c =
  expect c '"';
  let buf = Buffer.create 16 in
  let rec go () =
    match peek c with
    | None -> raise (Json_error "unterminated string")
    | Some '"' -> advance c
    | Some '\\' -> begin
      advance c;
      (match peek c with
      | Some '"' -> Buffer.add_char buf '"'
      | Some '\\' -> Buffer.add_char buf '\\'
      | Some '/' -> Buffer.add_char buf '/'
      | Some 'n' -> Buffer.add_char buf '\n'
      | Some 'r' -> Buffer.add_char buf '\r'
      | Some 't' -> Buffer.add_char buf '\t'
      | Some 'b' -> Buffer.add_char buf '\b'
      | Some 'f' -> Buffer.add_char buf '\012'
      | Some 'u' ->
        if c.pos + 4 >= String.length c.src then raise (Json_error "truncated \\u escape");
        let hex = String.sub c.src (c.pos + 1) 4 in
        let code =
          match int_of_string_opt ("0x" ^ hex) with
          | Some n -> n
          | None -> raise (Json_error ("bad \\u escape " ^ hex))
        in
        (* the renderer only emits \u for control characters *)
        if code < 0x80 then Buffer.add_char buf (Char.chr code)
        else raise (Json_error "unsupported non-ASCII \\u escape");
        c.pos <- c.pos + 4
      | _ -> raise (Json_error "bad escape"));
      advance c;
      go ()
    end
    | Some ch ->
      Buffer.add_char buf ch;
      advance c;
      go ()
  in
  go ();
  Buffer.contents buf

let parse_object c =
  skip_ws c;
  expect c '{';
  let fields = ref [] in
  skip_ws c;
  (match peek c with
  | Some '}' -> advance c
  | _ ->
    let rec members () =
      skip_ws c;
      let key = parse_string c in
      skip_ws c;
      expect c ':';
      skip_ws c;
      let value = parse_string c in
      fields := (key, value) :: !fields;
      skip_ws c;
      match peek c with
      | Some ',' ->
        advance c;
        members ()
      | _ -> expect c '}'
    in
    members ());
  List.rev !fields

let diagnostic_of_fields fields =
  let get k =
    match List.assoc_opt k fields with
    | Some v -> v
    | None -> raise (Json_error ("missing field " ^ k))
  in
  let severity =
    match severity_of_string (get "severity") with
    | Some s -> s
    | None -> raise (Json_error ("bad severity " ^ get "severity"))
  in
  let location =
    match location_of_string (get "location") with
    | Some l -> l
    | None -> raise (Json_error ("bad location " ^ get "location"))
  in
  { code = get "code"; severity; location; message = get "message" }

let wrap f s =
  let c = { src = s; pos = 0 } in
  match f c with
  | v ->
    skip_ws c;
    if c.pos <> String.length s then Stdlib.Error "trailing input after JSON value"
    else Stdlib.Ok v
  | exception Json_error msg -> Stdlib.Error msg

let of_json = wrap (fun c -> diagnostic_of_fields (parse_object c))

let list_of_json =
  wrap (fun c ->
      skip_ws c;
      expect c '[';
      skip_ws c;
      match peek c with
      | Some ']' ->
        advance c;
        []
      | _ ->
        let acc = ref [] in
        let rec elements () =
          acc := diagnostic_of_fields (parse_object c) :: !acc;
          skip_ws c;
          match peek c with
          | Some ',' ->
            advance c;
            skip_ws c;
            elements ()
          | _ -> expect c ']'
        in
        elements ();
        List.rev !acc)
