(** Top-level lint driver: runs every query-level pass of
    {!Lint_query} plus the NFA-hygiene summary of {!Lint_nfa} and
    returns the diagnostics sorted by severity.

    This is what [injcrpq lint] and the {!Suite} workload pre-check
    consume; the individual passes remain available for callers that
    want finer control. *)

(** [lint ?sem ?redundancy ?bound q]:

    - [sem] (default [Q_inj], the paper's central semantics) drives the
      semantics-dependent passes (duplicate severity, redundancy);
    - [redundancy] (default [true]) toggles the containment-backed
      [I006] pass, the only expensive one;
    - [bound] is its containment search bound (default 4);
    - [nfa_hygiene] (default [true]) toggles the [W101]/[W102]/[W103]
      summary over atom NFAs;
    - [graph], when supplied, additionally runs the [W104]
      empty-candidate-domain pass against that example graph. *)
val lint :
  ?sem:Semantics.t ->
  ?redundancy:bool ->
  ?bound:int ->
  ?nfa_hygiene:bool ->
  ?graph:Graph.t ->
  Crpq.t ->
  Diagnostic.t list

(** Disjunct-wise {!lint}; messages are prefixed with the disjunct
    index. *)
val lint_ucrpq :
  ?sem:Semantics.t ->
  ?redundancy:bool ->
  ?bound:int ->
  ?nfa_hygiene:bool ->
  ?graph:Graph.t ->
  Ucrpq.t ->
  Diagnostic.t list

(** Cheap degeneracy test for generated workload queries: true when the
    query has an empty-language atom, an ε-only atom, or no
    ε-free disjunct at all (unsatisfiable).  Such queries make every
    containment/evaluation benchmark trivially fast and pollute
    measured series. *)
val degenerate : Crpq.t -> bool
