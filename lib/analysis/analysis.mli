(** Top-level driver of the static-analysis layer: the lint pipeline
    and the certified optimizer.

    {!lint} runs every query-level pass of {!Lint_query} plus the
    NFA-hygiene passes of {!Lint_nfa} (and optionally the {!Query_shape}
    structure report) and returns the diagnostics sorted by severity.

    {!optimize} goes further and {e acts}: it runs the
    certificate-checked rewrite engine of {!Rewrite} — every applied
    rewrite is backed by a both-direction containment proof under the
    active semantics — and reports the shape of the query before and
    after.  [injcrpq optimize] is a thin shell over it, and
    {!install_preprocessor} hooks it in front of every
    {!Eval}/{!Containment} entry point ([--optimize],
    [INJCRPQ_OPTIMIZE=on]). *)

(** [lint ?sem ?redundancy ?bound q]:

    - [sem] (default [Q_inj], the paper's central semantics) drives the
      semantics-dependent passes (duplicate severity, redundancy);
    - [redundancy] (default [true]) toggles the containment-backed
      [I006] pass, the only expensive one;
    - [bound] is its containment search bound (default 4);
    - [nfa_hygiene] (default [true]) toggles the [W101]/[W102]/[W103]
      summary over atom NFAs and the [W105] NFA-emptiness pass;
    - [shape] (default [false]) adds the [I101]/[I102]/[I103]
      query-shape report of {!Query_shape};
    - [graph], when supplied, additionally runs the [W104]
      empty-candidate-domain pass against that example graph. *)
val lint :
  ?sem:Semantics.t ->
  ?redundancy:bool ->
  ?bound:int ->
  ?nfa_hygiene:bool ->
  ?shape:bool ->
  ?graph:Graph.t ->
  Crpq.t ->
  Diagnostic.t list

(** Disjunct-wise {!lint}; messages are prefixed with the disjunct
    index. *)
val lint_ucrpq :
  ?sem:Semantics.t ->
  ?redundancy:bool ->
  ?bound:int ->
  ?nfa_hygiene:bool ->
  ?shape:bool ->
  ?graph:Graph.t ->
  Ucrpq.t ->
  Diagnostic.t list

(** Cheap degeneracy test for generated workload queries: true when the
    query has an empty-language atom, an ε-only atom, or no
    ε-free disjunct at all (unsatisfiable).  Such queries make every
    containment/evaluation benchmark trivially fast and pollute
    measured series. *)
val degenerate : Crpq.t -> bool

(** {1 The certified optimizer} *)

type optimize_report = {
  rewrite : Rewrite.report;
  shape_before : Query_shape.summary;
  shape_after : Query_shape.summary;
}

(** [optimize ?sem q] rewrites [q] under the proof obligations of
    {!Rewrite.rewrite} and reports what happened.  [sem] defaults to
    [Q_inj]; [bound] is the certificate decider's search bound (default
    4); [oracle] replaces the decider entirely (tests);
    [exact_limit] is {!Query_shape.decompose}'s.  Under an ambient
    {!Guard}, both the treewidth search ([analysis.treewidth]) and the
    certificate checks ([analysis.rewrite]) are budgeted. *)
val optimize :
  ?sem:Semantics.t ->
  ?bound:int ->
  ?oracle:Rewrite.oracle ->
  ?exact_limit:int ->
  Crpq.t ->
  Crpq.t * optimize_report

(** Disjunct-wise {!optimize}. *)
val optimize_ucrpq :
  ?sem:Semantics.t ->
  ?bound:int ->
  ?oracle:Rewrite.oracle ->
  ?exact_limit:int ->
  Ucrpq.t ->
  Ucrpq.t * optimize_report list

(** {1 Pre-pass installation}

    [install_preprocessor ()] hooks the certified rewrite engine in
    front of every {!Eval.check}/{!Eval.eval}/{!Eval.eval_bool} and
    {!Containment.decide} call ([bound] defaults to 2, keeping the
    pre-pass cheap; queries larger than [max_atoms] (default 6) or
    whose summed regex size exceeds an internal weight cap pass
    through untouched — certificate checks on a hardness encoding,
    few atoms but huge languages, cost more than they could save).  A shared re-entrancy flag makes the
    certificate checks inside the optimizer see the identity pre-pass,
    so installation cannot recurse.  [uninstall_preprocessor] restores
    the identity. *)

val install_preprocessor : ?bound:int -> ?max_atoms:int -> unit -> unit

val uninstall_preprocessor : unit -> unit

(** {1 Shared renderers and input helpers}

    Used by both [injcrpq] and the golden tests, so the pinned CLI
    output and the library agree by construction. *)

(** [read_query_file path] parses one query per line (blank lines and
    [#] comments skipped); names are [basename:lineno].  [Error] holds
    a rendered message (unreadable file or parse failure). *)
val read_query_file : string -> ((string * Crpq.t) list, string) result

(** The [lint --json] document: one array entry per (name, query,
    diagnostics) triple. *)
val lint_json : (string * Crpq.t * Diagnostic.t list) list -> string

(** The [optimize --json] document for one query. *)
val optimize_json :
  name:string ->
  sem:Semantics.t ->
  before:Crpq.t ->
  after:Crpq.t ->
  optimize_report ->
  Obs.Json.t
