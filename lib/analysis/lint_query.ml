let diag = Diagnostic.make

let atom_to_string (a : Crpq.atom) =
  Printf.sprintf "%s -[%s]-> %s" a.Crpq.src (Regex.to_string a.Crpq.lang) a.Crpq.dst

let empty_atoms (q : Crpq.t) =
  List.concat
    (List.mapi
       (fun i (a : Crpq.atom) ->
         if Regex.is_empty_lang a.Crpq.lang then
           [
             diag ~code:"E001" ~severity:Diagnostic.Error ~location:(Diagnostic.Atom i)
               (Printf.sprintf
                  "atom %s denotes the empty language: the query has no expansion and \
                   no answer under any semantics"
                  (atom_to_string a));
           ]
         else [])
       q.Crpq.atoms)

let eps_only_atoms (q : Crpq.t) =
  List.concat
    (List.mapi
       (fun i (a : Crpq.atom) ->
         if
           Regex.nullable a.Crpq.lang
           && Regex.is_empty_lang (Regex.remove_eps a.Crpq.lang)
         then
           [
             diag ~code:"W002" ~severity:Diagnostic.Warning ~location:(Diagnostic.Atom i)
               (Printf.sprintf
                  "atom %s admits only \xce\xb5 and silently collapses %s into %s; the \
                   collapse behaves differently under st, a-inj and q-inj (the merged \
                   variable counts once for injectivity)"
                  (atom_to_string a) a.Crpq.src a.Crpq.dst);
           ]
         else [])
       q.Crpq.atoms)

let duplicate_atoms ~sem (q : Crpq.t) =
  (* atoms are sorted by [Crpq.make], so duplicates are adjacent *)
  let rec go i prev acc = function
    | [] -> List.rev acc
    | a :: rest ->
      let acc =
        if prev = Some a then begin
          let d =
            match sem with
            | Semantics.Q_inj | Semantics.Q_edge_inj ->
              diag ~code:"W003" ~severity:Diagnostic.Info ~location:(Diagnostic.Atom i)
                (Printf.sprintf
                   "duplicate atom %s: under %s it demands a second, internally \
                    disjoint path — not idempotent (Example 2.1); keep it only if \
                    the two-disjoint-paths reading is intended"
                   (atom_to_string a) (Semantics.to_string sem))
            | Semantics.St | Semantics.A_inj | Semantics.A_edge_inj ->
              diag ~code:"W003" ~severity:Diagnostic.Warning ~location:(Diagnostic.Atom i)
                (Printf.sprintf
                   "duplicate atom %s is idempotent under %s semantics and can be \
                    removed"
                   (atom_to_string a) (Semantics.to_string sem))
          in
          d :: acc
        end
        else acc
      in
      go (i + 1) (Some a) acc rest
  in
  go 0 None [] q.Crpq.atoms

(* Undirected reachability in the atom graph, ignoring languages. *)
let reachable_from (q : Crpq.t) seeds =
  let adj = Hashtbl.create 16 in
  let add x y =
    let cur = Option.value ~default:[] (Hashtbl.find_opt adj x) in
    Hashtbl.replace adj x (y :: cur)
  in
  List.iter
    (fun (a : Crpq.atom) ->
      add a.Crpq.src a.Crpq.dst;
      add a.Crpq.dst a.Crpq.src)
    q.Crpq.atoms;
  let seen = Hashtbl.create 16 in
  let rec go x =
    if not (Hashtbl.mem seen x) then begin
      Hashtbl.add seen x ();
      List.iter go (Option.value ~default:[] (Hashtbl.find_opt adj x))
    end
  in
  List.iter go seeds;
  seen

let disconnected_vars (q : Crpq.t) =
  match q.Crpq.free with
  | [] -> [] (* Boolean query: no anchor to be disconnected from *)
  | free ->
    let seen = reachable_from q free in
    List.filter_map
      (fun x ->
        if Hashtbl.mem seen x then None
        else
          Some
            (diag ~code:"W004" ~severity:Diagnostic.Warning ~location:(Diagnostic.Var x)
               (Printf.sprintf
                  "variable %s is disconnected from every free variable: its \
                   component joins as a cartesian-product factor"
                  x)))
      (Crpq.vars q)

let unused_free_vars (q : Crpq.t) =
  let occurs x =
    List.exists
      (fun (a : Crpq.atom) -> String.equal a.Crpq.src x || String.equal a.Crpq.dst x)
      q.Crpq.atoms
  in
  List.filter_map
    (fun x ->
      if occurs x then None
      else
        Some
          (diag ~code:"W005" ~severity:Diagnostic.Warning ~location:(Diagnostic.Var x)
             (Printf.sprintf
                "free variable %s occurs in no atom and ranges over every node of \
                 the database"
                x)))
    (List.sort_uniq String.compare q.Crpq.free)

(* W104: mirrors the seeding pass of the CSP morphism solver against a
   user-supplied example graph.  A node [u] survives in the candidate
   domain of variable [x] only if, for every atom [x -[L]-> y], some
   L-path leaves [u] (resp. enters [u] when [x] is the destination).
   This relaxation ignores the joint choice of the other endpoint, so
   an empty domain is a proof — not a heuristic — that the query has no
   answers on that graph, under any of the five semantics (injectivity
   only shrinks answer sets). *)
let empty_domain_atoms ~graph (q : Crpq.t) =
  let n = Graph.nnodes graph in
  let domains = Hashtbl.create 8 in
  let dom x =
    match Hashtbl.find_opt domains x with
    | Some d -> d
    | None ->
      let d = Array.make n true in
      Hashtbl.add domains x d;
      d
  in
  List.iter
    (fun (a : Crpq.atom) ->
      if not (Regex.is_empty_lang a.Crpq.lang) then begin
        let rel = Path_search.reach_relation graph (Nfa.of_regex a.Crpq.lang) in
        let ds = dom a.Crpq.src in
        for u = 0 to n - 1 do
          if ds.(u) && not (Array.exists Fun.id rel.(u)) then ds.(u) <- false
        done;
        let dd = dom a.Crpq.dst in
        for v = 0 to n - 1 do
          if dd.(v) && not (Array.exists (fun row -> row.(v)) rel) then
            dd.(v) <- false
        done
      end)
    q.Crpq.atoms;
  let is_empty x =
    (* a variable occurring in no atom is unconstrained (W005's
       business), not empty *)
    match Hashtbl.find_opt domains x with
    | Some d -> not (Array.exists Fun.id d)
    | None -> false
  in
  let reported = Hashtbl.create 8 in
  List.concat
    (List.mapi
       (fun i (a : Crpq.atom) ->
         List.filter_map
           (fun x ->
             if is_empty x && not (Hashtbl.mem reported x) then begin
               Hashtbl.add reported x ();
               Some
                 (diag ~code:"W104" ~severity:Diagnostic.Warning
                    ~location:(Diagnostic.Atom i)
                    (Printf.sprintf
                       "variable %s has an empty candidate domain on the \
                        example graph (%d nodes): no node satisfies all the \
                        path constraints on %s, so the query has no answers \
                        there under any semantics"
                       x n x))
             end
             else None)
           (List.sort_uniq String.compare [ a.Crpq.src; a.Crpq.dst ]))
       q.Crpq.atoms)

let rec remove_nth i = function
  | [] -> []
  | x :: rest -> if i = 0 then rest else x :: remove_nth (i - 1) rest

let redundant_atoms ?(bound = 4) ~sem (q : Crpq.t) =
  if List.length q.Crpq.atoms <= 1 || Crpq.has_empty_language q then []
  else
    List.concat
      (List.mapi
         (fun i (a : Crpq.atom) ->
           let q' = Crpq.make ~free:q.Crpq.free (remove_nth i q.Crpq.atoms) in
           match Minimize.equivalent ~bound sem q q' with
           | Some true ->
             [
               diag ~code:"I006" ~severity:Diagnostic.Info ~location:(Diagnostic.Atom i)
                 (Printf.sprintf
                    "atom %s is implied by the remaining atoms under %s semantics \
                     (containment-certified); consider removing it"
                    (atom_to_string a) (Semantics.to_string sem));
             ]
           | Some false | None -> [])
         q.Crpq.atoms)
