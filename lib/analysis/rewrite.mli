(** Certificate-checked query rewriting.

    The lint layer {e reports} redundancy (W00x); this module {e acts}
    on it, under a proof obligation: a rewrite [q ~> q'] is applied
    only when both containments {m q \sqsubseteq_\star q'} and
    {m q' \sqsubseteq_\star q} are certified by the containment decider
    for the active semantics.  Anything the decider cannot prove
    ([Unknown], or a genuine counterexample) leaves the query alone, so
    the pass is sound by construction — including under the injective
    semantics, where standard CQ-style minimization is unsound:
    dropping one of two duplicate atoms is an equivalence under
    [St]/[A_inj] but {e not} under [Q_inj], where duplicate atoms
    demand internally disjoint paths.  There the certificate check
    (the Theorem 5.1 abstraction algorithm) refutes the rewrite and
    the duplicate is kept.

    Candidate kinds:

    - {b collapse-unsat}: some atom's language is empty, so the whole
      query is unsatisfiable; replace it by a canonical one-atom
      unsatisfiable query with the same free tuple.
    - {b merge-vars}: an atom {m x \xrightarrow{\{\varepsilon\}} y}
      forces {m x = y}; substitute one endpoint for the other
      (ε-elimination, Section 2.1 of the paper).  Skipped when both
      endpoints are free (the head tuple must keep its shape).
    - {b drop-atom}: remove one atom (semantic redundancy, as in
      "Minimizing Conjunctive Regular Path Queries").

    Every candidate check passes the [analysis.rewrite] guard
    checkpoint, so an ambient {!Guard} budgets the pass. *)

type candidate =
  | Collapse_unsat
  | Merge_vars of { kept : Crpq.var; dropped : Crpq.var }
      (** substitute [dropped := kept] and delete the ε-atoms joining
          them *)
  | Drop_atom of { index : int; atom : Crpq.atom }
      (** [index] into the sorted atom list *)

val candidate_to_string : candidate -> string

(** One direction of a certificate: [verdict] is the decider's answer
    to {m lhs \sqsubseteq_\star rhs}, and [wall_ns] what the oracle call
    cost (also observed into the [analysis.certificate_ns] histogram). *)
type check = {
  lhs : Crpq.t;
  rhs : Crpq.t;
  verdict : Containment.verdict;
  wall_ns : int64;
}

(** A candidate that was examined: its certificate checks (in order
    tried; empty when the candidate was structurally inapplicable),
    whether it was applied, and a human-readable note. *)
type step = {
  candidate : candidate;
  checks : check list;
  applied : bool;
  note : string;
}

type report = {
  steps : step list;
  before_atoms : int;
  after_atoms : int;
  before_vars : int;
  after_vars : int;
}

val removed_atoms : report -> int

(** A certificate oracle decides one containment direction.  Tests
    substitute logging / adversarial oracles; the default is
    {!Containment.decide} with the given bound. *)
type oracle = Semantics.t -> Crpq.t -> Crpq.t -> Containment.verdict

val default_oracle : ?bound:int -> unit -> oracle

(** Structural candidates for one round, cheapest first:
    collapse-unsat, then merges, then drops (only when the query has
    at least two atoms). *)
val candidates : Crpq.t -> candidate list

(** Apply a candidate structurally, {e without} checking certificates;
    [None] when it does not apply to this query.  Exposed for tests. *)
val apply_candidate : Crpq.t -> candidate -> Crpq.t option

(** Greedy fixpoint: each round re-enumerates candidates and applies
    the first whose both-direction certificate the oracle proves;
    stops when a round certifies nothing (those final rejected
    candidates are recorded in the report, [applied = false]). *)
val rewrite : ?oracle:oracle -> Semantics.t -> Crpq.t -> Crpq.t * report
