(** Process-wide memoization layer for automata constructions.

    Every memo table made through {!Memo} shares one runtime switch
    (default on, [INJCRPQ_CACHE=off|0|false] disables it), registers
    [cache.<name>.hits] / [.misses] / [.evictions] counters with
    {!Obs.Metrics}, and appears in the global {!clear_all} registry.

    Guard discipline: entries are inserted only after the underlying
    computation returns, so a {!Guard.Trip} raised mid-construction
    never poisons the table — the next call recomputes.  While
    {!Guard.Chaos} is armed, lookups are bypassed entirely so fault
    injection always exercises the real construction paths. *)

val is_enabled : unit -> bool

val set_enabled : bool -> unit
(** Runtime override of the [INJCRPQ_CACHE] default; flipping the
    switch does not clear existing entries (use {!clear_all}). *)

val clear_all : unit -> unit
(** Empty every memo table created through {!Memo} (ids from
    {!Hashcons} tables are unaffected — they must stay stable). *)

module Memo (K : Hashtbl.HashedType) : sig
  type 'a t

  val create : ?cap:int -> ?site:string -> string -> 'a t
  (** [create name] registers a bounded memo table ([cap] defaults to
      512 entries, LRU eviction).  [site], when given, names a
      {!Guard.checkpoint} probed on {e every} call — hit or miss — so a
      cached result still counts towards fuel/deadline budgets and
      chaos rules for that site keep firing. *)

  val find_or_add : 'a t -> K.t -> (unit -> 'a) -> 'a
  (** Memoized call.  The computation runs outside the table lock (two
      domains may race to compute the same key; both results are
      structurally equal and the last insert wins). *)

  val clear : 'a t -> unit
end
