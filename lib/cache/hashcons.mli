(** Structural interning: map structurally-equal values to one small
    integer id, so downstream memo tables can key on [(id, id)] pairs
    instead of rehashing whole automata.  Tables are unbounded (ids must
    stay stable for the lifetime of the process) and thread-safe. *)

module Make (K : Hashtbl.HashedType) : sig
  type t

  val create : unit -> t

  val id : t -> K.t -> int
  (** Stable id: structurally equal values get the same id, distinct
      values distinct ids (dense from 0). *)

  val count : t -> int
end
