module Make (K : Hashtbl.HashedType) = struct
  module H = Hashtbl.Make (K)

  type 'a node = {
    key : K.t;
    value : 'a;
    mutable prev : 'a node option; (* towards the hot end *)
    mutable next : 'a node option; (* towards the cold end *)
  }

  type 'a t = {
    cap : int;
    table : 'a node H.t;
    mutable hot : 'a node option;
    mutable cold : 'a node option;
  }

  let create ~cap =
    if cap < 1 then invalid_arg "Lru.create: capacity must be positive";
    { cap; table = H.create (min cap 64); hot = None; cold = None }

  let unlink t n =
    (match n.prev with Some p -> p.next <- n.next | None -> t.hot <- n.next);
    (match n.next with Some s -> s.prev <- n.prev | None -> t.cold <- n.prev);
    n.prev <- None;
    n.next <- None

  let push_hot t n =
    n.next <- t.hot;
    (match t.hot with Some h -> h.prev <- Some n | None -> t.cold <- Some n);
    t.hot <- Some n

  let find_opt t k =
    match H.find_opt t.table k with
    | None -> None
    | Some n ->
      unlink t n;
      push_hot t n;
      Some n.value

  let add t k v =
    (match H.find_opt t.table k with
    | Some old ->
      unlink t old;
      H.remove t.table k
    | None -> ());
    let n = { key = k; value = v; prev = None; next = None } in
    H.replace t.table k n;
    push_hot t n;
    if H.length t.table > t.cap then begin
      match t.cold with
      | None -> 0
      | Some victim ->
        unlink t victim;
        H.remove t.table victim.key;
        1
    end
    else 0

  let clear t =
    H.reset t.table;
    t.hot <- None;
    t.cold <- None

  let length t = H.length t.table
end
