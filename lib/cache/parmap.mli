(** Fan independent subproblems across OCaml 5 domains.

    Deterministic by construction: {!map} preserves input order and
    {!find_mapi} returns the match with the {e lowest} input index, so a
    parallel run returns exactly what the sequential run returns —
    the property the differential test suite pins down.

    Degenerate cases stay sequential: an effective job count of 1, an
    input shorter than the job count, or a call made from inside another
    Parmap worker (no nested domain explosions).  Workers inherit the
    caller's ambient {!Guard.t}, so deadlines, fuel and cancellation
    keep applying under parallel fan-out (fuel accounting across
    domains is approximate: decrements are unsynchronized).

    A worker exception (including {!Guard.Trip}) aborts the fan-out and
    is re-raised in the caller after all domains are joined, so
    [Guard.supervise] boundaries behave identically in both modes. *)

val default_jobs : unit -> int
(** Initialized from [INJCRPQ_JOBS] (default 1 = sequential). *)

val set_default_jobs : int -> unit
(** @raise Invalid_argument if the count is not positive. *)

val map : ?jobs:int -> ('a -> 'b) -> 'a list -> 'b list
(** Order-preserving parallel map. *)

val find_mapi : ?jobs:int -> (int -> 'a -> 'b option) -> 'a list -> (int * 'b) option
(** First match in input order, with its index ([f] may additionally be
    applied to later elements before the fan-out drains). *)

val find_map : ?jobs:int -> ('a -> 'b option) -> 'a list -> 'b option
