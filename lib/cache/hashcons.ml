module Make (K : Hashtbl.HashedType) = struct
  module H = Hashtbl.Make (K)

  type t = { table : int H.t; mutable next : int; mu : Mutex.t }

  let create () = { table = H.create 64; next = 0; mu = Mutex.create () }

  let id t k =
    Mutex.lock t.mu;
    let i =
      match H.find_opt t.table k with
      | Some i -> i
      | None ->
        let i = t.next in
        t.next <- i + 1;
        H.add t.table k i;
        i
    in
    Mutex.unlock t.mu;
    i

  let count t =
    Mutex.lock t.mu;
    let n = t.next in
    Mutex.unlock t.mu;
    n
end
