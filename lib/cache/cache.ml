let env_default =
  match Sys.getenv_opt "INJCRPQ_CACHE" with
  | Some ("off" | "0" | "false") -> false
  | Some _ | None -> true

let enabled = ref env_default
let is_enabled () = !enabled
let set_enabled b = enabled := b

(* registry of per-table clear hooks, for [clear_all] *)
let registry_mu = Mutex.create ()
let clearers : (unit -> unit) list ref = ref []

let register_clearer f =
  Mutex.lock registry_mu;
  clearers := f :: !clearers;
  Mutex.unlock registry_mu

let clear_all () =
  Mutex.lock registry_mu;
  let fs = !clearers in
  Mutex.unlock registry_mu;
  List.iter (fun f -> f ()) fs

(* Chaos bypass: cached hits would skip the construction-internal guard
   sites that fault injection targets, so an armed Chaos disables the
   tables (the wrapper checkpoint alone still fires). *)
let bypass () = (not !enabled) || Guard.Chaos.active ()

module Memo (K : Hashtbl.HashedType) = struct
  module L = Lru.Make (K)

  type 'a t = {
    lru : 'a L.t;
    mu : Mutex.t;
    site : string option;
    name : string;
    hits : Obs.Metrics.counter;
    misses : Obs.Metrics.counter;
    evictions : Obs.Metrics.counter;
  }

  let create ?(cap = 512) ?site name =
    let t =
      {
        lru = L.create ~cap;
        mu = Mutex.create ();
        site;
        name;
        hits = Obs.Metrics.counter ("cache." ^ name ^ ".hits");
        misses = Obs.Metrics.counter ("cache." ^ name ^ ".misses");
        evictions = Obs.Metrics.counter ("cache." ^ name ^ ".evictions");
      }
    in
    register_clearer (fun () ->
        Mutex.lock t.mu;
        L.clear t.lru;
        Mutex.unlock t.mu);
    t

  let find_or_add t k f =
    (match t.site with Some s -> Guard.checkpoint s | None -> ());
    if bypass () then f ()
    else begin
      Mutex.lock t.mu;
      let cached = L.find_opt t.lru k in
      Mutex.unlock t.mu;
      match cached with
      | Some v ->
        Obs.Metrics.incr t.hits;
        v
      | None ->
        Obs.Metrics.incr t.misses;
        (* computed outside the lock: a Guard.Trip propagates without
           touching the table, and concurrent duplicate work is benign *)
        let v = f () in
        Mutex.lock t.mu;
        let evicted = L.add t.lru k v in
        Mutex.unlock t.mu;
        if evicted > 0 then begin
          Obs.Metrics.add t.evictions evicted;
          if Obs.Events.enabled () then
            Obs.Events.emit Obs.Events.Debug "cache.eviction"
              [
                ("table", Obs.Json.String t.name);
                ("evicted", Obs.Json.Int evicted);
              ]
        end;
        v
    end

  let clear t =
    Mutex.lock t.mu;
    L.clear t.lru;
    Mutex.unlock t.mu
end
