(** Bounded least-recently-used maps.

    A plain mutable LRU: a hash table over the keys plus an intrusive
    doubly-linked recency list.  [find_opt] promotes its entry to
    most-recently-used; [add] evicts from the cold end once the capacity
    is exceeded.  Not thread-safe on its own — callers serialize access
    (see {!Cache.Memo}). *)

module Make (K : Hashtbl.HashedType) : sig
  type 'a t

  val create : cap:int -> 'a t
  (** @raise Invalid_argument if [cap < 1]. *)

  val find_opt : 'a t -> K.t -> 'a option
  (** Lookup; a hit becomes the most-recently-used entry. *)

  val add : 'a t -> K.t -> 'a -> int
  (** Insert (or replace) a binding and return how many entries were
      evicted to stay within capacity (0 or 1). *)

  val clear : 'a t -> unit
  val length : 'a t -> int
end
