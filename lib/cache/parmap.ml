let default =
  ref
    (match Sys.getenv_opt "INJCRPQ_JOBS" with
    | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n when n >= 1 -> n
      | _ -> 1)
    | None -> 1)

let default_jobs () = !default

let set_default_jobs n =
  if n < 1 then invalid_arg "Parmap.set_default_jobs: jobs must be positive";
  default := n

(* nesting flag: a Parmap call made from inside a worker runs
   sequentially instead of spawning a second generation of domains *)
let in_worker : bool Domain.DLS.key = Domain.DLS.new_key (fun () -> false)

let resolve = function
  | Some j -> max j 1
  | None -> !default

(* Spawn [j] domains running [work]; each worker inherits the parent's
   ambient guard, grafts its trace spans under the span that was active
   at fan-out, and records the first exception, re-raised after the
   join so no domain is ever abandoned. *)
let fan_out j work =
  let error = Atomic.make None in
  let parent_guard = Guard.active () in
  let parent_span = Obs.Trace.fork () in
  let body () =
    Domain.DLS.set in_worker true;
    let work () = Obs.Trace.adopt parent_span work in
    try
      match parent_guard with
      | Some g -> Guard.with_guard g work
      | None -> work ()
    with e -> ignore (Atomic.compare_and_set error None (Some e))
  in
  let doms = Array.init j (fun _ -> Domain.spawn body) in
  Array.iter Domain.join doms;
  match Atomic.get error with Some e -> raise e | None -> ()

let map ?jobs f xs =
  let n = List.length xs in
  let j = min (resolve jobs) n in
  if j <= 1 || Domain.DLS.get in_worker then List.map f xs
  else begin
    let input = Array.of_list xs in
    let out = Array.make n None in
    let next = Atomic.make 0 in
    let work () =
      let rec loop () =
        let i = Atomic.fetch_and_add next 1 in
        if i < n then begin
          out.(i) <- Some (f input.(i));
          loop ()
        end
      in
      loop ()
    in
    fan_out j work;
    List.init n (fun i ->
        match out.(i) with Some v -> v | None -> assert false)
  end

let find_mapi ?jobs f xs =
  let n = List.length xs in
  let j = min (resolve jobs) n in
  if j <= 1 || Domain.DLS.get in_worker then begin
    let rec go i = function
      | [] -> None
      | x :: rest -> (
        match f i x with Some v -> Some (i, v) | None -> go (i + 1) rest)
    in
    go 0 xs
  end
  else begin
    let input = Array.of_list xs in
    let out = Array.make n None in
    (* lowest index with a match so far; indices above it are skipped,
       indices below it are always evaluated, so the final answer is the
       same lowest-index match the sequential scan finds *)
    let best = Atomic.make max_int in
    let next = Atomic.make 0 in
    let work () =
      let rec loop () =
        let i = Atomic.fetch_and_add next 1 in
        if i < n then begin
          (if i < Atomic.get best then
             match f i input.(i) with
             | Some v ->
               out.(i) <- Some v;
               let rec lower () =
                 let b = Atomic.get best in
                 if i < b && not (Atomic.compare_and_set best b i) then
                   lower ()
               in
               lower ()
             | None -> ());
          loop ()
        end
      in
      loop ()
    in
    fan_out j work;
    let rec first i =
      if i >= n then None
      else match out.(i) with Some v -> Some (i, v) | None -> first (i + 1)
    in
    first 0
  end

let find_map ?jobs f xs =
  Option.map snd (find_mapi ?jobs (fun _ x -> f x) xs)
