(** Named workload families for the benchmark harness: one entry point
    per experiment of DESIGN.md / EXPERIMENTS.md. *)

(** The pre-check applied to every generated query: rejects degenerate
    queries ({!Analysis.degenerate} — empty-language or ε-only atoms,
    unsatisfiable) so benchmark cells never measure the trivial
    fast-paths; rejected queries are resampled. *)
val precheck : Crpq.t -> bool

(** Containment workloads per Figure-1 cell: list of
    (name, semantics, lhs class, rhs class, query pairs). *)
val fig1_cells :
  seed:int ->
  per_cell:int ->
  (string * Semantics.t * Crpq.cls * Crpq.cls * (Crpq.t * Crpq.t) list) list

(** Evaluation workloads (Prop 3.1/3.2): graphs of growing size with a
    fixed query: (name, query, graphs). *)
val eval_scaling : seed:int -> sizes:int list -> string * Crpq.t * Graph.t list

(** Bulk-engine crossover cells (E16): gnp graphs of growing size, two
    RPQ shapes each, shared between the bench family and the golden
    fixture.  [quick] drops the largest size; the quick cells are a
    prefix of the full ones (same seeds).  Returns
    [(name, graph, regex)]. *)
val e16_cells : seed:int -> quick:bool -> (string * Graph.t * Regex.t) list

(** Large-graph tiled-engine cells (E17): gnm and grid graphs from
    5·10⁵ up to ≥ 2·10⁶ edges — past the dense-matrix wall, so the
    hybrid engine must run sparse CSR sweeps under source-block tiling.
    Returns [(name, regex, build)] where [build ()] constructs the graph
    and a deterministic sampled source array on demand (cells are
    independent: per-cell rng seeds, quick cells a prefix of the full
    set).  Callers should drop each graph before building the next. *)
val e17_cells :
  seed:int ->
  quick:bool ->
  (string * Regex.t * (unit -> Graph.t * Graph.node array)) list

(** The lollipop family on which simple-path search explodes while
    standard reachability stays polynomial. *)
val hard_simple_path : sizes:int list -> (int * Graph.t) list

(** A Wikidata-flavoured workload (the paper's motivating queries, §1):
    a synthetic knowledge graph with typed entities (people, works,
    places) and property-path queries in the shapes the Wikidata query
    logs exhibit (chains and stars of [p+]-style paths).  Returns the
    graph and named queries. *)
val knowledge_graph : seed:int -> entities:int -> Graph.t * (string * Crpq.t) list

(** PCP instances with expected solvability. *)
val pcp_instances : (string * Pcp.t * int list option) list

(** GCP₂ instances (small enough for the exact decider). *)
val gcp_instances : (string * Gcp.t) list

(** ∀∃-QBF instances (small enough for the exact decider). *)
val qbf_instances : seed:int -> (string * Qbf.t) list

(** Query pairs for the Theorem 5.1 scaling series, by size parameter. *)
val qinj_scaling : seed:int -> sizes:int list -> (int * (Crpq.t * Crpq.t) list) list
