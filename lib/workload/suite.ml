let labels = [ "a"; "b"; "c" ]

(* pre-check hook over the query generators: a degenerate query (empty
   or ε-only atom, or unsatisfiable outright) makes its benchmark cell
   trivially fast — the containment dispatcher short-circuits on it —
   and pollutes the measured series *)
let precheck q = not (Analysis.degenerate q)

let rec sample ?(tries = 64) gen =
  let q = gen () in
  if precheck q || tries = 0 then q else sample ~tries:(tries - 1) gen

let rec sample_pair ?(tries = 64) gen =
  let ((q1, q2) as pair) = gen () in
  if (precheck q1 && precheck q2) || tries = 0 then pair
  else sample_pair ~tries:(tries - 1) gen

let fig1_cells ~seed ~per_cell =
  let rng = Random.State.make [| seed |] in
  let cells =
    [
      ("CQ/CQ", Crpq.Class_cq, Crpq.Class_cq);
      ("CQ/CRPQfin", Crpq.Class_cq, Crpq.Class_fin);
      ("CQ/CRPQ", Crpq.Class_cq, Crpq.Class_crpq);
      ("CRPQfin/CQ", Crpq.Class_fin, Crpq.Class_cq);
      ("CRPQfin/CRPQfin", Crpq.Class_fin, Crpq.Class_fin);
      ("CRPQfin/CRPQ", Crpq.Class_fin, Crpq.Class_crpq);
      ("CRPQ/CQ", Crpq.Class_crpq, Crpq.Class_cq);
      ("CRPQ/CRPQfin", Crpq.Class_crpq, Crpq.Class_fin);
      ("CRPQ/CRPQ", Crpq.Class_crpq, Crpq.Class_crpq);
    ]
  in
  List.concat_map
    (fun (name, c1, c2) ->
      List.map
        (fun sem ->
          let pairs =
            List.init per_cell (fun _ ->
                let q1 =
                  sample (fun () ->
                      Qgen.random_crpq ~rng ~labels ~nvars:3 ~natoms:2 ~arity:0
                        ~cls:c1 ())
                in
                let q2 =
                  sample (fun () ->
                      Qgen.random_crpq ~rng ~labels ~nvars:3 ~natoms:2 ~arity:0
                        ~cls:c2 ())
                in
                (q1, q2))
          in
          (name, sem, c1, c2, pairs))
        Semantics.node_semantics)
    cells

let eval_scaling ~seed ~sizes =
  let rng = Random.State.make [| seed |] in
  let q = Crpq.parse "Q(x, y) :- x -[(ab)+]-> y, y -[c+]-> x" in
  let graphs =
    List.map (fun n -> Generate.gnp ~rng ~nodes:n ~labels ~p:(2.5 /. float_of_int n)) sizes
  in
  ("eval-scaling", q, graphs)

let e16_cells ~seed ~quick =
  let rng = Random.State.make [| 0xE16; seed |] in
  (* Quadratic edge growth at fixed p: the largest quick cell clears
     10⁵ edges (n=1448, two labels, p=0.03 → ~126k expected), which is
     where the bulk engine must beat the pointwise product BFS.  The
     rng is consumed in size order, so the quick cells are a prefix of
     the full run and golden fixtures can pin the small ones. *)
  let sizes = if quick then [ 64; 256; 724; 1448 ] else [ 64; 256; 724; 1448; 2048 ] in
  let shapes =
    [ ("star", Regex.parse "(a|b)*"); ("chain", Regex.parse "a(a|b)*b") ]
  in
  List.concat_map
    (fun n ->
      let g = Generate.gnp ~rng ~nodes:n ~labels:[ "a"; "b" ] ~p:0.03 in
      List.map
        (fun (sname, re) -> (Printf.sprintf "n%d/%s" n sname, g, re))
        shapes)
    sizes

(* E17: graphs past the dense-matrix wall.  Each cell is built on
   demand (and dropped by the bench after measuring) so the family's
   peak memory is one graph, not the sum; the per-cell rng is seeded by
   the cell index, so cell k is bit-identical whether or not the other
   cells ran and the quick cells are a prefix of the full ones.  The
   low-diameter gnm cells are where the tiled sparse engine must beat
   pointwise BFS; the grid cells document the opposite regime (diameter
   ≈ rows+cols sweeps, each with a fixed O(sources·n) cost, favors the
   per-source early-exit BFS). *)
let e17_cells ~seed ~quick =
  let star = Regex.parse "(a|b)*" and chain = Regex.parse "a(a|b)*b" in
  (* Per-cell source counts keep the pointwise side of the differential
     (one product BFS per source, the expensive half) within the bench
     deadline; both engines process the same sampled set, so speedups
     are comparable within a cell. *)
  let cell idx name re nsources build =
    ( name,
      re,
      fun () ->
        let rng = Random.State.make [| 0xE17; seed; idx |] in
        let g = build rng in
        let n = Graph.nnodes g in
        let srcs = Array.init nsources (fun _ -> Random.State.int rng n) in
        (g, srcs) )
  in
  let gnm nodes edges rng = Generate.gnm ~rng ~nodes ~labels:[ "a"; "b" ] ~edges in
  let grid side _rng =
    Generate.grid ~rows:side ~cols:side ~right:"a" ~down:"b"
  in
  let base =
    [
      cell 0 "gnm-66k-524k/star" star 128 (gnm 65536 524288);
      cell 1 "gnm-66k-524k/chain" chain 128 (gnm 65536 524288);
      cell 2 "grid-256/star" star 128 (grid 256);
      cell 3 "gnm-131k-1049k/star" star 96 (gnm 131072 1048576);
    ]
  in
  if quick then base
  else
    base
    @ [
        cell 4 "gnm-131k-1049k/chain" chain 96 (gnm 131072 1048576);
        cell 5 "grid-512/star" star 64 (grid 512);
        cell 6 "gnm-262k-2097k/star" star 64 (gnm 262144 2097152);
      ]

let hard_simple_path ~sizes =
  List.map
    (fun n -> (n, Generate.lollipop ~handle:(n / 2) ~cycle_len:(n - (n / 2)) ~label:"a"))
    sizes

let knowledge_graph ~seed ~entities =
  let rng = Random.State.make [| seed |] in
  (* three entity bands: people [0, p), works [p, w), places [w, n) *)
  let n = max entities 9 in
  let p = n / 3 and w = 2 * n / 3 in
  let edges = ref [] in
  let add u lbl v = edges := (u, lbl, v) :: !edges in
  for person = 0 to p - 1 do
    (* influence chains between people *)
    if person + 1 < p && Random.State.int rng 3 > 0 then
      add person "influencedBy" (person + 1);
    if Random.State.int rng 2 = 0 && p > 1 then
      add person "studentOf" (Random.State.int rng p);
    (* creations *)
    for _ = 1 to 1 + Random.State.int rng 2 do
      add person "creatorOf" (p + Random.State.int rng (max 1 (w - p)))
    done;
    add person "bornIn" (w + Random.State.int rng (max 1 (n - w)))
  done;
  for work = p to w - 1 do
    if Random.State.int rng 2 = 0 && work + 1 < w then
      add work "basedOn" (work + 1);
    add work "publishedIn" (w + Random.State.int rng (max 1 (n - w)))
  done;
  for place = w to n - 1 do
    if place + 1 < n then add place "partOf" (place + 1)
  done;
  let g = Graph.make ~nnodes:n !edges in
  let queries =
    [
      ( "influence chain",
        Crpq.parse "Q(x, y) :- x -[<influencedBy>+]-> y" );
      ( "creative lineage",
        Crpq.parse
          "Q(x, y) :- x -[(<influencedBy>|<studentOf>)+]-> y, x \
           -[<creatorOf>]-> w, y -[<creatorOf>]-> v" );
      ( "colocated works",
        Crpq.parse
          "Q(w1, w2) :- w1 -[<publishedIn><partOf>*]-> pl, w2 \
           -[<publishedIn><partOf>*]-> pl" );
      ( "derived work of a compatriot",
        Crpq.parse
          "Q(x, y) :- x -[<creatorOf><basedOn>+]-> d, y -[<creatorOf>]-> d, \
           x -[<bornIn><partOf>*]-> pl, y -[<bornIn><partOf>*]-> pl" );
    ]
  in
  (g, queries)

let pcp_instances =
  [
    ("solvable-small", Pcp.solvable_small, Some [ 1; 2 ]);
    ("solvable-medium", Pcp.solvable_medium, Some [ 3; 2; 3; 1 ]);
    ("unsolvable-small", Pcp.unsolvable_small, None);
    ("unsolvable-medium", Pcp.unsolvable_medium, None);
  ]

let gcp_instances =
  [
    ("K4-n3", Gcp.complete 4 ~n:3);
    ("K4-n2", Gcp.complete 4 ~n:2);
    ("C5-n2", Gcp.cycle 5 ~n:2);
    ("C4-n2", Gcp.cycle 4 ~n:2);
    ("C6-n2", Gcp.cycle 6 ~n:2);
  ]

let qbf_instances ~seed =
  let rng = Random.State.make [| seed |] in
  [
    ("valid-small", Qbf.valid_small);
    ("invalid-small", Qbf.invalid_small);
    ("random-1", Qbf.random ~rng ~n_x:1 ~n_y:1 ~n_clauses:2);
    ("random-2", Qbf.random ~rng ~n_x:2 ~n_y:1 ~n_clauses:2);
  ]

let qinj_scaling ~seed ~sizes =
  let rng = Random.State.make [| seed |] in
  List.map
    (fun natoms ->
      let pairs =
        List.init 3 (fun _ ->
            sample_pair (fun () ->
                Qgen.contained_pair ~rng ~labels:[ "a"; "b" ] ~nvars:3 ~natoms
                  ~cls:Crpq.Class_crpq ()))
      in
      (natoms, pairs))
    sizes
