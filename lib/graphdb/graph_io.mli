(** Plain-text serialization of graph databases.

    Format: one edge per line, [src label dst] separated by whitespace;
    blank lines and lines starting with [#] are ignored.  Node ids are
    non-negative integers; labels follow the {!Word} symbol syntax. *)

val of_string : string -> Graph.t
(** @raise Invalid_argument on a malformed line. *)

val of_string_result : string -> (Graph.t, string) result
(** Like {!of_string} but with a typed parse error (for surfaces that
    must not raise on user input, e.g. the CLI). *)

val to_string : Graph.t -> string

val load : string -> Graph.t
(** Streams the file line-by-line (bounded space beyond the edge list
    itself — large edge-list graphs never materialize as one string);
    errors match {!of_string} line-for-line.
    @raise Sys_error / [Invalid_argument] on I/O or parse failure. *)

val load_result : string -> (Graph.t, string) result
(** Like {!load} but with a typed error covering both I/O and parsing. *)

val save : string -> Graph.t -> unit
