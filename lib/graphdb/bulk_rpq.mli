(** Bulk linear-algebra RPQ evaluation over {!Bitmatrix} / {!Csr}
    adjacency.

    Where {!Path_search} answers standard-semantics reachability with
    one product BFS per source, this engine answers an RPQ atom for
    {e all} sources at once: either an all-pairs transitive closure of
    the Kronecker-style NFA×graph product matrix, or a multiple-source
    frontier BFS with one bitset row per (source, NFA state) pair.  Both
    return relations bit-identical to [Path_search.reach_relation].

    The frontier BFS is {e tiled} and {e hybrid}:

    - {b Tiling}: sources are processed in blocks of ≤ B rows, so peak
      memory is O(B·n) — three generations (visited/frontier/next) of
      one B×n matrix per NFA state — and 10⁶–10⁷-edge graphs evaluate
      without the full s×n allocation.  B defaults to the largest block
      whose tile fits ~64 MiB and is overridable via
      [INJCRPQ_BULK_BLOCK] / {!set_block_rows}.
    - {b Hybrid sweeps}: each sweep runs either the dense row kernel
      (per-label n×n {!Bitmatrix} OR-gather) or a sparse frontier push
      ({!Csr} successor runs scattered into the next frontier via
      {!Bitmatrix.scatter_row}).  The choice is made per sweep from the
      measured frontier density (CSR degrees vs row width), sequentially
      on the immutable frontier snapshot, so results and counters stay
      domain-count- and strategy-independent; past {!dense_node_cap}
      nodes the dense matrices are never built.  [INJCRPQ_BULK_SWEEP] /
      {!set_sweep} force a kernel.

    Engine selection is governed by [INJCRPQ_BULK=on|off|auto] (or
    [--bulk] on the CLI): [off] keeps every caller on [Path_search],
    [on] forces the bulk engine, [auto] (the default) switches only past
    a size heuristic, so small inputs keep pointwise behavior.
    Reference evaluators (expansion/morphism oracles) are never
    switched.

    Observability: sweeps pass the [bulk.sweep] guard checkpoint; the
    [bulk.sweeps], [bulk.frontier_bits], [bulk.words_anded],
    [bulk.sweep_sparse]/[bulk.sweep_dense], [bulk.bits_scattered] and
    [bulk.tiles] counters account sweep count, frontier growth and
    kernel work; [bulk.tile_rows]/[bulk.peak_tile_words] gauge the tile
    geometry; [bulk.dispatch.<caller>.<engine>] attributes every
    {!st_relation} dispatch to the layer that asked ({!with_caller}).
    Per-label adjacency (dense matrices and CSR) is memoized through
    {!Cache.Memo}, keyed by {!Graph.uid}. *)

type mode = Off | On | Auto

val mode_of_string : string -> mode option
(** Accepts on/off/auto plus the usual 1/true/0/false spellings. *)

val mode_to_string : mode -> string

val current_mode : unit -> mode
(** Initialized from [INJCRPQ_BULK] (default [Auto]). *)

val set_mode : mode -> unit

(** {2 Sweep kernel selection} *)

type sweep = Sparse | Dense | Adaptive

val sweep_of_string : string -> sweep option
(** Accepts sparse/dense/auto (and "adaptive"). *)

val sweep_to_string : sweep -> string

val current_sweep : unit -> sweep
(** Initialized from [INJCRPQ_BULK_SWEEP] (default {!Adaptive}). *)

val set_sweep : sweep -> unit
(** Forcing {!Dense} builds the dense label matrices whatever the graph
    size — {!dense_node_cap} only steers the adaptive choice. *)

val dense_node_cap : int
(** Above this node count the adaptive policy never builds the dense
    n×n label matrices (a single label matrix at the cap is ~32 MiB). *)

(** {2 Source-block tiling} *)

val block_rows : nstates:int -> nnodes:int -> int
(** The tile height B in effect for a given problem shape: the override
    if one is set, else the largest B whose three-generation tile
    ([3·nstates·B] rows of [nnodes] bits) fits the ~64 MiB budget.
    Deterministic in the problem dimensions and [Sys.int_size] only. *)

val current_block_rows : unit -> int option
(** The override (from [INJCRPQ_BULK_BLOCK] or {!set_block_rows}), if
    any. *)

val set_block_rows : int option -> unit
(** @raise Invalid_argument on a block height < 1. *)

val peak_tile_words : unit -> int
(** High-water mark of the tile working set (words) since the last
    {!reset_peak_tile_words} — the measured quantity behind the O(B·n)
    memory-bound assertion (also exported as the [bulk.peak_tile_words]
    gauge). *)

val reset_peak_tile_words : unit -> unit

(** {2 Engine / strategy selection} *)

type strategy = All_pairs | Multi_source

(** [choose_strategy ~sources ~nstates ~nnodes] picks {!All_pairs}
    closure only when the product space is small and the source set
    dense; frontier BFS otherwise. *)
val choose_strategy : sources:int -> nstates:int -> nnodes:int -> strategy

(** Whether {!st_relation} would take the bulk path for this input
    under the current mode. *)
val use_bulk : Graph.t -> Nfa.t -> bool

(** {2 Caller attribution} *)

val with_caller : string -> (unit -> 'a) -> 'a
(** [with_caller name f] runs [f] with [name] as the ambient dispatch
    caller (domain-local; fan-out sites re-establish it inside Parmap
    workers).  Known callers — [eval], [containment], [rpq], [direct] —
    get their own [bulk.dispatch.<caller>.<engine>] counters; anything
    else lands in [bulk.dispatch.other.*]. *)

val current_caller : unit -> string option

(** {2 Kernels} *)

(** Per-label dense adjacency of [g]: [adjacency g].(a) is the
    [nnodes × nnodes] matrix of label id [a] (memoized per graph —
    shared, do not mutate).  Sparse adjacency lives in {!Csr}. *)
val adjacency : Graph.t -> Bitmatrix.t array

(** The boolean NFA×graph product matrix over product states coded
    [u * nstates + q] (the coding of [Path_search.product_bfs]):
    bit [(u,q) → (v,q')] is set iff some transition {m q
    \xrightarrow{a} q'} pairs with an edge {m u \xrightarrow{a} v}. *)
val product_matrix : Graph.t -> Nfa.t -> Bitmatrix.t

(** [reach_pairs g nfa srcs] runs the tiled hybrid multiple-source
    frontier BFS from [srcs]: row [i] of the result has bit [v] set iff
    [v] is reachable from [srcs.(i)] along a path accepted by [nfa].
    Dimensions [length srcs × nnodes g]; peak intermediate memory is
    O({!block_rows}·nnodes) however long [srcs] is. *)
val reach_pairs : Graph.t -> Nfa.t -> Graph.node array -> Bitmatrix.t

(** Drop-in replacement for [Path_search.reach_relation] (same
    dimensions, same bits, including the empty-path diagonal).
    [strategy] defaults to {!choose_strategy} on the full source set. *)
val reach_relation : ?strategy:strategy -> Graph.t -> Nfa.t -> bool array array

(** The Eval/Containment seam: bulk [reach_relation] when {!use_bulk}
    says so, [Path_search.reach_relation] otherwise.  Each call bumps
    the [bulk.dispatch.*] counter for the ambient caller and the engine
    actually used. *)
val st_relation : Graph.t -> Nfa.t -> bool array array
