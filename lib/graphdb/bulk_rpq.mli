(** Bulk linear-algebra RPQ evaluation over {!Bitmatrix} adjacency.

    Where {!Path_search} answers standard-semantics reachability with
    one product BFS per source, this engine answers an RPQ atom for
    {e all} sources at once: the graph becomes one boolean adjacency
    matrix per interned label, the NFA×graph product becomes a
    Kronecker-style boolean matrix, and evaluation is a few bitset
    sweeps — either an all-pairs transitive closure of the product
    matrix or a multiple-source frontier BFS with one bitset row per
    (source, NFA state) pair.  Both return relations bit-identical to
    [Path_search.reach_relation].

    Selection is governed by [INJCRPQ_BULK=on|off|auto] (or [--bulk] on
    the CLI): [off] keeps every caller on [Path_search], [on] forces the
    bulk engine, [auto] (the default) switches only past a size
    heuristic, so small inputs keep pointwise behavior.  Reference
    evaluators (expansion/morphism oracles) are never switched.

    Observability: sweeps pass the [bulk.sweep] guard checkpoint; the
    [bulk.sweeps], [bulk.frontier_bits], and [bulk.words_anded] counters
    account sweep count, frontier growth, and word-level kernel work.
    Per-label adjacency matrices are memoized through {!Cache.Memo},
    keyed by {!Graph.uid}. *)

type mode = Off | On | Auto

val mode_of_string : string -> mode option
(** Accepts on/off/auto plus the usual 1/true/0/false spellings. *)

val mode_to_string : mode -> string

val current_mode : unit -> mode
(** Initialized from [INJCRPQ_BULK] (default [Auto]). *)

val set_mode : mode -> unit

type strategy = All_pairs | Multi_source

(** [choose_strategy ~sources ~nstates ~nnodes] picks {!All_pairs}
    closure only when the product space is small and the source set
    dense; frontier BFS otherwise. *)
val choose_strategy : sources:int -> nstates:int -> nnodes:int -> strategy

(** Whether {!st_relation} would take the bulk path for this input
    under the current mode. *)
val use_bulk : Graph.t -> Nfa.t -> bool

(** Per-label adjacency of [g]: [adjacency g].(a) is the
    [nnodes × nnodes] matrix of label id [a] (memoized per graph —
    shared, do not mutate). *)
val adjacency : Graph.t -> Bitmatrix.t array

(** The boolean NFA×graph product matrix over product states coded
    [u * nstates + q] (the coding of [Path_search.product_bfs]):
    bit [(u,q) → (v,q')] is set iff some transition {m q
    \xrightarrow{a} q'} pairs with an edge {m u \xrightarrow{a} v}. *)
val product_matrix : Graph.t -> Nfa.t -> Bitmatrix.t

(** [reach_pairs g nfa srcs] runs the multiple-source frontier BFS from
    [srcs]: row [i] of the result has bit [v] set iff [v] is reachable
    from [srcs.(i)] along a path accepted by [nfa].  Dimensions
    [length srcs × nnodes g]. *)
val reach_pairs : Graph.t -> Nfa.t -> Graph.node array -> Bitmatrix.t

(** Drop-in replacement for [Path_search.reach_relation] (same
    dimensions, same bits, including the empty-path diagonal).
    [strategy] defaults to {!choose_strategy} on the full source set. *)
val reach_relation : ?strategy:strategy -> Graph.t -> Nfa.t -> bool array array

(** The Eval/Containment seam: bulk [reach_relation] when {!use_bulk}
    says so, [Path_search.reach_relation] otherwise. *)
val st_relation : Graph.t -> Nfa.t -> bool array array
