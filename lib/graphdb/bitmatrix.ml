(* Packed boolean matrices.  One flat [int array] per matrix, row-major,
   [Sys.int_size] bits per word.  Native ints rather than Int64: an
   OCaml [int64 array] boxes each element, a plain [int array] is a flat
   unboxed block, and 63 usable bits per word lose only ~1.6% density.

   The top word of a row may have spare bits past [cols]; every kernel
   either masks them at the source ([set]) or treats them uniformly on
   both sides of a binary op, so they stay zero throughout. *)

let bits_per_word = Sys.int_size

(* Counter shared with the sweep loops of [Bulk_rpq]; registration by
   name is idempotent so both modules may declare it. *)
let m_words_anded = Obs.Metrics.counter "bulk.words_anded"

let m_sweeps = Obs.Metrics.counter "bulk.sweeps"

type t = {
  rows : int;
  cols : int;
  wpr : int; (* words per row *)
  data : int array;
}

let create ~rows ~cols =
  if rows < 0 || cols < 0 then invalid_arg "Bitmatrix.create";
  let wpr = (cols + bits_per_word - 1) / bits_per_word in
  { rows; cols; wpr; data = Array.make (max (rows * wpr) 0) 0 }

let rows m = m.rows

let cols m = m.cols

let check m i j =
  if i < 0 || i >= m.rows || j < 0 || j >= m.cols then
    invalid_arg "Bitmatrix: index out of range"

let get m i j =
  check m i j;
  let w = m.data.((i * m.wpr) + (j / bits_per_word)) in
  w lsr (j mod bits_per_word) land 1 = 1

let set m i j =
  check m i j;
  let idx = (i * m.wpr) + (j / bits_per_word) in
  m.data.(idx) <- m.data.(idx) lor (1 lsl (j mod bits_per_word))

let clear m i j =
  check m i j;
  let idx = (i * m.wpr) + (j / bits_per_word) in
  m.data.(idx) <- m.data.(idx) land lnot (1 lsl (j mod bits_per_word))

let copy m = { m with data = Array.copy m.data }

let equal a b =
  a.rows = b.rows && a.cols = b.cols && a.data = b.data

(* 16-bit popcount table: 4 lookups cover a 63-bit word.  The usual SWAR
   constants (0x5555_5555_5555_5555, ...) overflow OCaml's 62-bit
   max_int, so a table is both simpler and legal. *)
let pop16 =
  let t = Bytes.make 65536 '\000' in
  for i = 1 to 65535 do
    Bytes.unsafe_set t i
      (Char.chr (Char.code (Bytes.unsafe_get t (i lsr 1)) + (i land 1)))
  done;
  t

let popcount_word w =
  (* [lsr] is a logical shift, so a negative word (bit 62 set) indexes
     correctly. *)
  Char.code (Bytes.unsafe_get pop16 (w land 0xFFFF))
  + Char.code (Bytes.unsafe_get pop16 ((w lsr 16) land 0xFFFF))
  + Char.code (Bytes.unsafe_get pop16 ((w lsr 32) land 0xFFFF))
  + Char.code (Bytes.unsafe_get pop16 ((w lsr 48) land 0xFFFF))

let row_popcount m i =
  if i < 0 || i >= m.rows then invalid_arg "Bitmatrix.row_popcount";
  let base = i * m.wpr in
  let acc = ref 0 in
  for k = 0 to m.wpr - 1 do
    acc := !acc + popcount_word (Array.unsafe_get m.data (base + k))
  done;
  !acc

let popcount m =
  let acc = ref 0 in
  for k = 0 to Array.length m.data - 1 do
    acc := !acc + popcount_word (Array.unsafe_get m.data k)
  done;
  !acc

let is_row_empty m i =
  if i < 0 || i >= m.rows then invalid_arg "Bitmatrix.is_row_empty";
  let base = i * m.wpr in
  let rec go k = k >= m.wpr || (Array.unsafe_get m.data (base + k) = 0 && go (k + 1)) in
  go 0

let iter_row m i f =
  if i < 0 || i >= m.rows then invalid_arg "Bitmatrix.iter_row";
  let base = i * m.wpr in
  for k = 0 to m.wpr - 1 do
    let w = ref (Array.unsafe_get m.data (base + k)) in
    let off = k * bits_per_word in
    while !w <> 0 do
      let low = !w land (- !w) in
      (* log2 of an isolated bit via popcount of low-1 *)
      f (off + popcount_word (low - 1));
      w := !w lxor low
    done
  done

let or_row_into ~src i ~dst j =
  if i < 0 || i >= src.rows || j < 0 || j >= dst.rows || src.cols <> dst.cols
  then invalid_arg "Bitmatrix.or_row_into";
  let sb = i * src.wpr and db = j * dst.wpr in
  let changed = ref false in
  for k = 0 to src.wpr - 1 do
    let d = Array.unsafe_get dst.data (db + k) in
    let d' = d lor Array.unsafe_get src.data (sb + k) in
    if d' <> d then begin
      changed := true;
      Array.unsafe_set dst.data (db + k) d'
    end
  done;
  Obs.Metrics.add m_words_anded src.wpr;
  !changed

let diff_row_into ~mask i ~dst j =
  if i < 0 || i >= mask.rows || j < 0 || j >= dst.rows || mask.cols <> dst.cols
  then invalid_arg "Bitmatrix.diff_row_into";
  let sb = i * mask.wpr and db = j * dst.wpr in
  let changed = ref false in
  for k = 0 to mask.wpr - 1 do
    let d = Array.unsafe_get dst.data (db + k) in
    let d' = d land lnot (Array.unsafe_get mask.data (sb + k)) in
    if d' <> d then begin
      changed := true;
      Array.unsafe_set dst.data (db + k) d'
    end
  done;
  Obs.Metrics.add m_words_anded mask.wpr;
  !changed

let scatter_row ~dst i cols ~ofs ~len =
  if
    i < 0 || i >= dst.rows || ofs < 0 || len < 0
    || ofs + len > Array.length cols
  then invalid_arg "Bitmatrix.scatter_row";
  let base = i * dst.wpr in
  for k = ofs to ofs + len - 1 do
    let j = Array.unsafe_get cols k in
    if j < 0 || j >= dst.cols then invalid_arg "Bitmatrix.scatter_row: column";
    let idx = base + (j / bits_per_word) in
    Array.unsafe_set dst.data idx
      (Array.unsafe_get dst.data idx lor (1 lsl (j mod bits_per_word)))
  done

let union_into ~src ~dst =
  if src.rows <> dst.rows || src.cols <> dst.cols then
    invalid_arg "Bitmatrix.union_into";
  let changed = ref false in
  for i = 0 to src.rows - 1 do
    if or_row_into ~src i ~dst i then changed := true
  done;
  !changed

let mul_into ~a ~b ~dst =
  if a.cols <> b.rows || dst.rows <> a.rows || dst.cols <> b.cols then
    invalid_arg "Bitmatrix.mul_into";
  if b == dst then invalid_arg "Bitmatrix.mul_into: dst aliases b";
  let changed = ref false in
  for i = 0 to a.rows - 1 do
    iter_row a i (fun j ->
        if or_row_into ~src:b j ~dst i then changed := true)
  done;
  !changed

let closure m =
  if m.rows <> m.cols then invalid_arg "Bitmatrix.closure";
  let r = copy m in
  for i = 0 to r.rows - 1 do
    set r i i
  done;
  (* Sweep-synchronous repeated squaring: each sweep computes R·R into a
     fresh accumulator, then merges.  Keeping the read side immutable
     per sweep makes both the sweep count and the word-op counters
     deterministic. *)
  let continue = ref true in
  while !continue do
    Guard.checkpoint "bulk.sweep";
    Obs.Metrics.incr m_sweeps;
    let nxt = create ~rows:r.rows ~cols:r.cols in
    ignore (mul_into ~a:r ~b:r ~dst:nxt);
    continue := union_into ~src:nxt ~dst:r
  done;
  r

let of_bool_matrix bm =
  let rows = Array.length bm in
  let cols = if rows = 0 then 0 else Array.length bm.(0) in
  let m = create ~rows ~cols in
  Array.iteri
    (fun i row ->
      if Array.length row <> cols then invalid_arg "Bitmatrix.of_bool_matrix";
      Array.iteri (fun j v -> if v then set m i j) row)
    bm;
  m

let to_bool_matrix m =
  let out = Array.make_matrix m.rows m.cols false in
  for i = 0 to m.rows - 1 do
    iter_row m i (fun j -> out.(i).(j) <- true)
  done;
  out
