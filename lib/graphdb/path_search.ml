type node = Graph.node

(* Search telemetry (no-ops unless [Obs.Metrics] is enabled).  Product
   states count every (graph node, automaton state) pair discovered by a
   product BFS (forward, backward, or with parent pointers); backtracks
   count nodes released by the simple-path search and edges released by
   the trail search. *)
let m_product_states = Obs.Metrics.counter "path_search.product_states"

let m_simple_backtracks = Obs.Metrics.counter "path_search.simple_backtracks"

let m_trail_backtracks = Obs.Metrics.counter "path_search.trail_backtracks"

exception Found

(* ------------------------------------------------------------------ *)
(* Standard semantics: BFS over the product graph × automaton.         *)
(* ------------------------------------------------------------------ *)

(* The product searches run on interned label ids: the automaton's
   transitions are re-keyed by the graph's label ids once up front
   (transitions on labels absent from the graph can never fire and are
   dropped), after which the inner loops are array scans with no string
   comparison. *)

(* [delta_ids.(q)] lists [(ai, q')] for each transition of [q] whose
   label occurs in [g]. *)
let intern_delta g nfa =
  Array.map
    (fun trans ->
      List.filter_map
        (fun (a, q') ->
          match Graph.label_id g a with
          | Some ai -> Some (ai, q')
          | None -> None)
        trans)
    nfa.Nfa.delta

(* Reversed interned transitions: [rdelta.(q')] lists [(ai, q)] for
   each graph-relevant transition {m q \xrightarrow{a} q'}. *)
let intern_delta_rev g nfa =
  let rdelta = Array.make nfa.Nfa.nstates [] in
  Array.iteri
    (fun q trans ->
      List.iter
        (fun (a, q') ->
          match Graph.label_id g a with
          | Some ai -> rdelta.(q') <- (ai, q) :: rdelta.(q')
          | None -> ())
        trans)
    nfa.Nfa.delta;
  rdelta

(* Product states are coded as [u * nstates + q]. *)
let product_bfs g nfa srcs =
  let n = Graph.nnodes g in
  let m = nfa.Nfa.nstates in
  let delta_ids = intern_delta g nfa in
  let seen = Array.make (max (n * m) 1) false in
  let queue = Queue.create () in
  let push u q =
    let c = (u * m) + q in
    if not seen.(c) then begin
      seen.(c) <- true;
      Obs.Metrics.incr m_product_states;
      Queue.add (u, q) queue
    end
  in
  List.iter (fun (u, q) -> push u q) srcs;
  while not (Queue.is_empty queue) do
    Guard.checkpoint "path_search.product";
    let u, q = Queue.pop queue in
    List.iter
      (fun (ai, q') ->
        let succs = Graph.succ_ids g u ai in
        for i = 0 to Array.length succs - 1 do
          push succs.(i) q'
        done)
      delta_ids.(q)
  done;
  seen

let reachable g nfa src =
  let m = nfa.Nfa.nstates in
  let starts = List.map (fun q -> (src, q)) nfa.Nfa.initials in
  let seen = product_bfs g nfa starts in
  List.filter
    (fun v ->
      List.exists (fun q -> nfa.Nfa.finals.(q) && seen.((v * m) + q)) (List.init m (fun i -> i)))
    (Graph.nodes g)

let reach_relation g nfa =
  let n = Graph.nnodes g in
  let rel = Array.make_matrix (max n 1) (max n 1) false in
  List.iter
    (fun u -> List.iter (fun v -> rel.(u).(v) <- true) (reachable g nfa u))
    (Graph.nodes g);
  rel

let exists_path g nfa ~src ~dst =
  List.mem dst (reachable g nfa src)

let find_path g nfa ~src ~dst =
  (* BFS with parent pointers over the product. *)
  let m = nfa.Nfa.nstates in
  let n = Graph.nnodes g in
  if n = 0 then None
  else begin
    let delta_ids = intern_delta g nfa in
    let parent = Array.make (n * m) None in
    let seen = Array.make (n * m) false in
    let queue = Queue.create () in
    let push u q from =
      let c = (u * m) + q in
      if not seen.(c) then begin
        seen.(c) <- true;
        Obs.Metrics.incr m_product_states;
        parent.(c) <- from;
        Queue.add (u, q) queue
      end
    in
    List.iter (fun q -> push src q None) nfa.Nfa.initials;
    let goal = ref None in
    while (not (Queue.is_empty queue)) && !goal = None do
      Guard.checkpoint "path_search.product";
      let u, q = Queue.pop queue in
      if u = dst && nfa.Nfa.finals.(q) then goal := Some (u, q)
      else
        List.iter
          (fun (ai, q') ->
            let a = Graph.label_name g ai in
            let succs = Graph.succ_ids g u ai in
            for i = 0 to Array.length succs - 1 do
              push succs.(i) q' (Some (u, q, a))
            done)
          delta_ids.(q)
    done;
    match !goal with
    | None -> None
    | Some (u0, q0) ->
      let rec build u q acc =
        match parent.((u * m) + q) with
        | None -> { Path.src = u; steps = acc }
        | Some (pu, pq, a) -> build pu pq ((a, u) :: acc)
      in
      Some (build u0 q0 [])
  end

(* ------------------------------------------------------------------ *)
(* Simple paths: backtracking with product-reachability pruning.       *)
(* ------------------------------------------------------------------ *)

(* Backward product reachability towards (dst, some final state): a
   necessary condition for the pruned forward search. *)
let co_reach g nfa dst =
  let m = nfa.Nfa.nstates in
  let n = Graph.nnodes g in
  let seen = Array.make (max (n * m) 1) false in
  let queue = Queue.create () in
  let push u q =
    let c = (u * m) + q in
    if not seen.(c) then begin
      seen.(c) <- true;
      Obs.Metrics.incr m_product_states;
      Queue.add (u, q) queue
    end
  in
  Array.iteri (fun q f -> if f then push dst q) nfa.Nfa.finals;
  (* backward edges of the product *)
  let rdelta = intern_delta_rev g nfa in
  while not (Queue.is_empty queue) do
    Guard.checkpoint "path_search.product";
    let v, q' = Queue.pop queue in
    List.iter
      (fun (ai, q) ->
        let preds = Graph.pred_ids g v ai in
        for i = 0 to Array.length preds - 1 do
          push preds.(i) q
        done)
      rdelta.(q')
  done;
  seen

let iter_simple ?(avoid_internal = fun _ -> false) g nfa ~src ~dst f =
  let n = Graph.nnodes g in
  if src < 0 || src >= n || dst < 0 || dst >= n then ()
  else begin
    if src = dst && Nfa.accepts_eps nfa then f (Path.empty src);
    let m = nfa.Nfa.nstates in
    let coreach = co_reach g nfa dst in
    let visited = Array.make n false in
    visited.(src) <- true;
    let rec go u states rev_steps =
      Guard.checkpoint "path_search.simple";
      List.iter
        (fun (a, v) ->
          let states' = Nfa.next_set nfa states a in
          if states' <> [] then begin
            if v = dst then begin
              if List.exists (Nfa.is_final nfa) states' then begin
                let steps = List.rev ((a, v) :: rev_steps) in
                f { Path.src; steps }
              end
            end
            else if
              (not visited.(v))
              && (not (avoid_internal v))
              && List.exists (fun q -> coreach.((v * m) + q)) states'
            then begin
              visited.(v) <- true;
              Guard.descend "path_search.simple" (fun () ->
                  go v states' ((a, v) :: rev_steps));
              visited.(v) <- false;
              Obs.Metrics.incr m_simple_backtracks
            end
          end)
        (Graph.out g u)
    in
    go src nfa.Nfa.initials []
  end

let find_simple ?avoid_internal g nfa ~src ~dst =
  let result = ref None in
  (try
     iter_simple ?avoid_internal g nfa ~src ~dst (fun p ->
         result := Some p;
         raise Found)
   with Found -> ());
  !result

let exists_simple ?avoid_internal g nfa ~src ~dst =
  find_simple ?avoid_internal g nfa ~src ~dst <> None

let all_simple g nfa ~src ~dst =
  let acc = ref [] in
  iter_simple g nfa ~src ~dst (fun p -> acc := p :: !acc);
  List.rev !acc

let simple_reach_relation g nfa =
  let n = Graph.nnodes g in
  let rel = Array.make_matrix (max n 1) (max n 1) false in
  for u = 0 to n - 1 do
    for v = 0 to n - 1 do
      rel.(u).(v) <- exists_simple g nfa ~src:u ~dst:v
    done
  done;
  rel

(* ------------------------------------------------------------------ *)
(* Trails: backtracking over unused edges.                             *)
(* ------------------------------------------------------------------ *)

let iter_trail ?(avoid_edge = fun _ -> false) g nfa ~src ~dst f =
  let n = Graph.nnodes g in
  if src < 0 || src >= n || dst < 0 || dst >= n then ()
  else begin
    if src = dst && Nfa.accepts_eps nfa then f (Path.empty src);
    let used = Hashtbl.create 16 in
    let rec go u states rev_steps =
      Guard.checkpoint "path_search.trail";
      List.iter
        (fun (a, v) ->
          let e = (u, a, v) in
          if (not (Hashtbl.mem used e)) && not (avoid_edge e) then begin
            let states' = Nfa.next_set nfa states a in
            if states' <> [] then begin
              Hashtbl.add used e ();
              if v = dst && List.exists (Nfa.is_final nfa) states' then begin
                let steps = List.rev ((a, v) :: rev_steps) in
                f { Path.src; steps }
              end;
              Guard.descend "path_search.trail" (fun () ->
                  go v states' ((a, v) :: rev_steps));
              Hashtbl.remove used e;
              Obs.Metrics.incr m_trail_backtracks
            end
          end)
        (Graph.out g u)
    in
    go src nfa.Nfa.initials []
  end

let find_trail ?avoid_edge g nfa ~src ~dst =
  let result = ref None in
  (try
     iter_trail ?avoid_edge g nfa ~src ~dst (fun p ->
         result := Some p;
         raise Found)
   with Found -> ());
  !result

let exists_trail ?avoid_edge g nfa ~src ~dst =
  find_trail ?avoid_edge g nfa ~src ~dst <> None
