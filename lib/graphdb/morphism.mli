(** Homomorphisms between edge-labeled graphs.

    The paper's characterizations reduce evaluation and containment to
    the existence of homomorphisms with various injectivity constraints:

    - plain homomorphisms (standard semantics, Prop 4.2);
    - injective homomorphisms (query-injective semantics, Props 2.2 and
      4.3; NP-complete as subgraph isomorphism);
    - homomorphisms injective on a given set of pairs — this captures
      both atom-injective homomorphisms (injective on φ-atom-related
      pairs, Section 2.2) and non-contracting homomorphisms (Lemma F.3).

    The search is a CSP over bitset candidate domains (seeded from
    label profiles and, under injectivity, per-label degree bounds) on
    the interned-label adjacency of {!Graph}: forward checking prunes
    the domains of unassigned neighbours after every assignment,
    injectivity and [distinct_pairs] are maintained as incremental
    all-different constraints, [distinct_edge_groups] as incremental
    within-group distinctness, and the next variable is chosen by
    minimum remaining values with a connected-first tie-break.  A trail
    records every domain word and group entry touched, so backtracking
    restores state in time proportional to what propagation changed.

    [fixed] pairs are validated up front: an out-of-range variable or
    target node, conflicting assignments to one variable, or (under
    [injective]) two variables fixed to one target node yield no
    results — even when the pattern is empty. *)

type mapping = int array
(** [mapping.(x)] is the image of pattern node [x]. *)

(** [iter ~pattern ~target f] calls [f] on every homomorphism.

    @param fixed pre-assigned pattern→target pairs (free variables).
    @param distinct_pairs pattern node pairs that must receive distinct
    images.
    @param distinct_edge_groups groups of pattern edges; within each
    group, distinct pattern edges must map to distinct target edges
    (edge-injective homomorphisms: one group per atom expansion for
    atom-trail semantics, a single group of all edges for query-trail
    semantics).
    @param injective require global injectivity. *)
val iter :
  ?fixed:(int * int) list ->
  ?distinct_pairs:(int * int) list ->
  ?distinct_edge_groups:Graph.edge list list ->
  ?injective:bool ->
  pattern:Graph.t ->
  target:Graph.t ->
  (mapping -> unit) ->
  unit

val find :
  ?fixed:(int * int) list ->
  ?distinct_pairs:(int * int) list ->
  ?distinct_edge_groups:Graph.edge list list ->
  ?injective:bool ->
  pattern:Graph.t ->
  target:Graph.t ->
  unit ->
  mapping option

val exists :
  ?fixed:(int * int) list ->
  ?distinct_pairs:(int * int) list ->
  ?distinct_edge_groups:Graph.edge list list ->
  ?injective:bool ->
  pattern:Graph.t ->
  target:Graph.t ->
  unit ->
  bool

(** Count all homomorphisms (for tests and statistics). *)
val count :
  ?fixed:(int * int) list ->
  ?distinct_pairs:(int * int) list ->
  ?distinct_edge_groups:Graph.edge list list ->
  ?injective:bool ->
  pattern:Graph.t ->
  target:Graph.t ->
  unit ->
  int

(** [is_homomorphism ~pattern ~target m] checks the defining property
    pointwise (used as an oracle in tests). *)
val is_homomorphism : pattern:Graph.t -> target:Graph.t -> mapping -> bool

(** Subgraph isomorphism: injective homomorphism existence. *)
val subgraph_iso : pattern:Graph.t -> target:Graph.t -> bool

(** Non-contracting homomorphism: no edge of the pattern between two
    distinct nodes is collapsed (Lemma F.3). *)
val exists_non_contracting : pattern:Graph.t -> target:Graph.t -> bool
