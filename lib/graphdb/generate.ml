let line w =
  let n = List.length w + 1 in
  let edges = List.mapi (fun i a -> (i, a, i + 1)) w in
  Graph.make ~nnodes:n edges

let cycle w =
  match w with
  | [] -> Graph.make ~nnodes:1 []
  | _ ->
    let n = List.length w in
    let edges = List.mapi (fun i a -> (i, a, (i + 1) mod n)) w in
    Graph.make ~nnodes:n edges

let gnp ~rng ~nodes ~labels ~p =
  let edges = ref [] in
  for u = 0 to nodes - 1 do
    for v = 0 to nodes - 1 do
      List.iter
        (fun a -> if Random.State.float rng 1.0 < p then edges := (u, a, v) :: !edges)
        labels
    done
  done;
  Graph.make ~nnodes:nodes !edges

(* Sparse random graph by direct edge sampling: [gnp] is O(nodes² ·
   labels) in draws, unusable at the 10⁵-node scale of the large-graph
   bench cells; sampling ~[edges] endpoints directly is O(edges).
   Self-loops allowed, duplicates collapse in [Graph.make] (so the edge
   count is a target, short by the birthday-collision fraction). *)
let gnm ~rng ~nodes ~labels ~edges:m =
  if nodes < 1 then Graph.make ~nnodes:(max nodes 0) []
  else begin
    let labels = Array.of_list labels in
    let nl = Array.length labels in
    let edges = ref [] in
    for _ = 1 to m do
      let u = Random.State.int rng nodes in
      let v = Random.State.int rng nodes in
      let a = labels.(Random.State.int rng nl) in
      edges := (u, a, v) :: !edges
    done;
    Graph.make ~nnodes:nodes !edges
  end

let layered ~rng ~width ~depth ~labels =
  let nodes = width * depth in
  let labels = Array.of_list labels in
  let pick_label () = labels.(Random.State.int rng (Array.length labels)) in
  let edges = ref [] in
  for layer = 0 to depth - 2 do
    for i = 0 to width - 1 do
      let u = (layer * width) + i in
      let fanout = 1 + Random.State.int rng 3 in
      for _ = 1 to fanout do
        let v = ((layer + 1) * width) + Random.State.int rng width in
        edges := (u, pick_label (), v) :: !edges
      done
    done
  done;
  Graph.make ~nnodes:(max nodes 1) !edges

let lollipop ~handle ~cycle_len ~label =
  let n = handle + cycle_len in
  let edges = ref [] in
  for i = 0 to handle - 1 do
    edges := (i, label, i + 1) :: !edges
  done;
  for i = 0 to cycle_len - 1 do
    let u = handle + i in
    let v = handle + ((i + 1) mod cycle_len) in
    edges := (u, label, v) :: !edges
  done;
  (* connect handle end into the cycle *)
  let edges = if handle > 0 then (handle - 1, label, handle) :: !edges else !edges in
  Graph.make ~nnodes:(max n 1) edges

let clique ~nodes ~label =
  let edges = ref [] in
  for u = 0 to nodes - 1 do
    for v = 0 to nodes - 1 do
      if u <> v then edges := (u, label, v) :: !edges
    done
  done;
  Graph.make ~nnodes:(max nodes 1) !edges

let grid ~rows ~cols ~right ~down =
  let id r c = (r * cols) + c in
  let edges = ref [] in
  for r = 0 to rows - 1 do
    for c = 0 to cols - 1 do
      if c + 1 < cols then edges := (id r c, right, id r (c + 1)) :: !edges;
      if r + 1 < rows then edges := (id r c, down, id (r + 1) c) :: !edges
    done
  done;
  Graph.make ~nnodes:(max (rows * cols) 1) !edges

let random_word ~rng ~labels ~len =
  let labels = Array.of_list labels in
  List.init len (fun _ -> labels.(Random.State.int rng (Array.length labels)))
