type node = int

type edge = node * Word.symbol * node

(* Labels are interned to dense ids [0 .. nlabels-1] at construction
   (sorted order, so ids are stable for a given edge set).  The hot
   paths — morphism search and product BFS — index the adjacency by
   label id and never compare strings; [edge_set] gives O(1) membership
   with an integer key. *)
type t = {
  uid : int; (* process-unique identity, for keying derived-structure caches *)
  nnodes : int;
  nedges : int;
  edges : edge list; (* sorted, duplicate-free *)
  labels : Word.symbol array; (* label id -> symbol, sorted *)
  label_ids : (Word.symbol, int) Hashtbl.t;
  out : (Word.symbol * node) list array;
  in_ : (Word.symbol * node) list array;
  out_l : node array array array; (* out_l.(u).(a): successors, ascending *)
  in_l : node array array array; (* in_l.(v).(a): predecessors, ascending *)
  edge_set : (int, unit) Hashtbl.t; (* (u * nlabels + a) * nnodes + v *)
}

let edge_key g u a v = ((u * Array.length g.labels) + a) * g.nnodes + v

let uid_counter = Atomic.make 0

let make ~nnodes edge_list =
  let edges = List.sort_uniq Stdlib.compare edge_list in
  List.iter
    (fun (u, _, v) ->
      if u < 0 || u >= nnodes || v < 0 || v >= nnodes then
        invalid_arg "Graph.make: node out of range")
    edges;
  let label_tbl = Hashtbl.create 16 in
  List.iter (fun (_, a, _) -> Hashtbl.replace label_tbl a ()) edges;
  let labels =
    Array.of_list
      (List.sort String.compare (Hashtbl.fold (fun a () l -> a :: l) label_tbl []))
  in
  let nl = Array.length labels in
  let label_ids = Hashtbl.create (max 16 (2 * nl)) in
  Array.iteri (fun i a -> Hashtbl.replace label_ids a i) labels;
  let n = max nnodes 1 in
  let out = Array.make n [] in
  let in_ = Array.make n [] in
  let nedges = List.length edges in
  let edge_set = Hashtbl.create (max 16 (2 * nedges)) in
  (* accumulate per-(node, label) successor/predecessor lists; the edge
     list is ascending, so prepending and reversing keeps them sorted *)
  let nlp = max nl 1 in
  let out_acc = Array.make (n * nlp) [] in
  let in_acc = Array.make (n * nlp) [] in
  List.iter
    (fun (u, a, v) ->
      out.(u) <- (a, v) :: out.(u);
      in_.(v) <- (a, u) :: in_.(v);
      let ai = Hashtbl.find label_ids a in
      out_acc.((u * nlp) + ai) <- v :: out_acc.((u * nlp) + ai);
      in_acc.((v * nlp) + ai) <- u :: in_acc.((v * nlp) + ai);
      Hashtbl.replace edge_set ((((u * nl) + ai) * nnodes) + v) ())
    edges;
  let pack acc w =
    Array.init nl (fun ai -> Array.of_list (List.rev acc.((w * nlp) + ai)))
  in
  let out_l = Array.init n (fun u -> pack out_acc u) in
  let in_l = Array.init n (fun v -> pack in_acc v) in
  { uid = Atomic.fetch_and_add uid_counter 1; nnodes; nedges; edges; labels;
    label_ids; out; in_; out_l; in_l; edge_set }

let of_edges edge_list =
  let nnodes =
    List.fold_left (fun m (u, _, v) -> max m (max u v + 1)) 0 edge_list
  in
  make ~nnodes edge_list

let empty = make ~nnodes:0 []

let uid g = g.uid

let nnodes g = g.nnodes

let nedges g = g.nedges

let nodes g = List.init g.nnodes (fun i -> i)

let iter_nodes g f =
  for u = 0 to g.nnodes - 1 do
    f u
  done

let edges g = g.edges

let out g u = if u < 0 || u >= g.nnodes then [] else g.out.(u)

let in_ g v = if v < 0 || v >= g.nnodes then [] else g.in_.(v)

let nlabels g = Array.length g.labels

let label_id g a = Hashtbl.find_opt g.label_ids a

let label_name g a = g.labels.(a)

let no_nodes : node array = [||]

let succ_ids g u a =
  if u < 0 || u >= g.nnodes then no_nodes else g.out_l.(u).(a)

let pred_ids g v a =
  if v < 0 || v >= g.nnodes then no_nodes else g.in_l.(v).(a)

let mem_edge_id g u a v =
  u >= 0 && u < g.nnodes && v >= 0 && v < g.nnodes
  && Hashtbl.mem g.edge_set (edge_key g u a v)

let mem_edge g u a v =
  match label_id g a with None -> false | Some ai -> mem_edge_id g u ai v

let out_degree g u = List.length (out g u)

let in_degree g u = List.length (in_ g u)

let succ g u a =
  List.filter_map (fun (b, v) -> if String.equal a b then Some v else None) (out g u)

let alphabet g = Array.to_list g.labels

let add_edges g new_edges =
  let nnodes =
    List.fold_left (fun m (u, _, v) -> max m (max u v + 1)) g.nnodes new_edges
  in
  make ~nnodes (new_edges @ g.edges)

let disjoint_union g h =
  let shift = g.nnodes in
  let shifted = List.map (fun (u, a, v) -> (u + shift, a, v + shift)) h.edges in
  (make ~nnodes:(g.nnodes + h.nnodes) (g.edges @ shifted), shift)

let induced g keep =
  let remap = Array.make (max g.nnodes 1) (-1) in
  let count = ref 0 in
  for u = 0 to g.nnodes - 1 do
    if keep u then begin
      remap.(u) <- !count;
      incr count
    end
  done;
  let edges =
    List.filter_map
      (fun (u, a, v) ->
        if keep u && keep v then Some (remap.(u), a, remap.(v)) else None)
      g.edges
  in
  (make ~nnodes:!count edges, remap)

let components g =
  let seen = Array.make (max g.nnodes 1) false in
  let comp u0 =
    let acc = ref [] in
    let rec go u =
      if not seen.(u) then begin
        seen.(u) <- true;
        acc := u :: !acc;
        List.iter (fun (_, v) -> go v) g.out.(u);
        List.iter (fun (_, v) -> go v) g.in_.(u)
      end
    in
    go u0;
    List.rev !acc
  in
  let res = ref [] in
  for u = 0 to g.nnodes - 1 do
    if not seen.(u) then res := comp u :: !res
  done;
  List.rev !res

let is_connected g = List.length (components g) <= 1

let equal g h = g.nnodes = h.nnodes && g.edges = h.edges

let pp ppf g =
  Format.fprintf ppf "@[<v>graph: %d nodes@," g.nnodes;
  List.iter
    (fun (u, a, v) -> Format.fprintf ppf "%d -%a-> %d@," u Word.pp_symbol a v)
    g.edges;
  Format.fprintf ppf "@]"

let to_dot ?(name = "G") g =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "digraph %s {\n" name);
  List.iter
    (fun u -> Buffer.add_string buf (Printf.sprintf "  n%d [label=\"%d\"];\n" u u))
    (nodes g);
  List.iter
    (fun (u, a, v) ->
      Buffer.add_string buf (Printf.sprintf "  n%d -> n%d [label=\"%s\"];\n" u v a))
    g.edges;
  Buffer.add_string buf "}\n";
  Buffer.contents buf
