(** Synthetic graph database generators for tests, examples and the
    benchmark workloads. *)

(** Directed path whose edge labels spell the given word; node [0] is the
    source, node [|w|] the target. *)
val line : Word.t -> Graph.t

(** Directed cycle spelling the word; node [0] is both source and
    target.  The empty word gives a single node with no edges. *)
val cycle : Word.t -> Graph.t

(** [gnp ~rng ~nodes ~labels ~p] draws each labelled edge (including
    self-loops) independently with probability [p]. *)
val gnp :
  rng:Random.State.t -> nodes:int -> labels:Word.symbol list -> p:float -> Graph.t

(** [gnm ~rng ~nodes ~labels ~edges] draws ~[edges] labelled edges by
    direct endpoint sampling — O(edges) work where {!gnp} is O(nodes²),
    which is what the ≥10⁶-edge bench graphs need.  Duplicate draws
    collapse, so [edges] is a target, not an exact count; empty label
    list gives an edgeless graph only when [edges = 0].
    @raise Invalid_argument on an empty label list with [edges > 0]. *)
val gnm :
  rng:Random.State.t ->
  nodes:int ->
  labels:Word.symbol list ->
  edges:int ->
  Graph.t

(** [layered ~rng ~width ~depth ~labels] generates a layered DAG: every
    node of layer [i] points to 1–3 random nodes of layer [i+1] with
    random labels.  Useful for acyclic workloads. *)
val layered :
  rng:Random.State.t ->
  width:int ->
  depth:int ->
  labels:Word.symbol list ->
  Graph.t

(** [lollipop ~handle ~cycle_len ~label] is a path of length [handle]
    feeding a directed cycle of length [cycle_len], all edges with the
    same label: the classic hard family for simple-path semantics. *)
val lollipop : handle:int -> cycle_len:int -> label:Word.symbol -> Graph.t

(** [clique ~nodes ~label] has a [label] edge between every ordered pair
    of distinct nodes. *)
val clique : nodes:int -> label:Word.symbol -> Graph.t

(** [grid ~rows ~cols ~right ~down] rectangular grid with [right] edges
    across a row and [down] edges down a column. *)
val grid : rows:int -> cols:int -> right:Word.symbol -> down:Word.symbol -> Graph.t

(** A random word over the given labels. *)
val random_word : rng:Random.State.t -> labels:Word.symbol list -> len:int -> Word.t
