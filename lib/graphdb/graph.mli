(** Graph databases: finite edge-labeled directed graphs {m G = (V, E)}
    over a finite alphabet, the data model of the paper (Section 2).

    Nodes are integers [0 .. nnodes-1].  Edges are triples
    {m u \xrightarrow{a} v}; the edge set is a set (no duplicates). *)

type node = int

type edge = node * Word.symbol * node

type t

(** [make ~nnodes edges] builds a graph with nodes [0..nnodes-1].
    Duplicate edges are removed.
    @raise Invalid_argument if an edge mentions a node out of range. *)
val make : nnodes:int -> edge list -> t

(** [of_edges edges] uses [1 + max node] as the node count. *)
val of_edges : edge list -> t

val empty : t

(** Process-unique identity assigned at construction.  Structurally
    equal graphs built separately have distinct uids; use it to key
    caches of derived structures (e.g. per-label adjacency matrices)
    without hashing the edge list. *)
val uid : t -> int

val nnodes : t -> int

(** Number of (distinct) edges; stored at construction, O(1). *)
val nedges : t -> int

val nodes : t -> node list

(** [iter_nodes g f] applies [f] to [0 .. nnodes-1] without allocating
    the node list. *)
val iter_nodes : t -> (node -> unit) -> unit

val edges : t -> edge list

(** O(1) via the hashed edge set (no string comparison beyond the label
    lookup). *)
val mem_edge : t -> node -> Word.symbol -> node -> bool

(** {2 Interned labels}

    Edge labels are interned to dense ids [0 .. nlabels-1] (in sorted
    symbol order) when the graph is built.  The morphism solver and the
    product searches run entirely on these ids: successor/predecessor
    sets are pre-indexed arrays and edge membership is an integer hash
    probe. *)

val nlabels : t -> int

(** The id of a symbol in this graph, or [None] when no edge carries
    it. *)
val label_id : t -> Word.symbol -> int option

(** Inverse of {!label_id}.
    @raise Invalid_argument on an out-of-range id. *)
val label_name : t -> int -> Word.symbol

(** [succ_ids g u a] is the (sorted, shared — do not mutate) array of
    successors of [u] on label id [a].  [a] must come from {!label_id}
    on the same graph. *)
val succ_ids : t -> node -> int -> node array

(** Predecessors of [v] on label id [a]; same contract as
    {!succ_ids}. *)
val pred_ids : t -> node -> int -> node array

(** [mem_edge_id g u a v]: O(1) edge membership on an interned label
    id. *)
val mem_edge_id : t -> node -> int -> node -> bool

(** Outgoing [(label, successor)] pairs. *)
val out : t -> node -> (Word.symbol * node) list

(** Incoming [(label, predecessor)] pairs. *)
val in_ : t -> node -> (Word.symbol * node) list

val out_degree : t -> node -> int

val in_degree : t -> node -> int

(** Successors of a node on a given label. *)
val succ : t -> node -> Word.symbol -> node list

val alphabet : t -> Word.symbol list

(** [add_edges g edges] returns a graph extended with the given edges
    (growing the node count if needed). *)
val add_edges : t -> edge list -> t

(** [disjoint_union g h] shifts the nodes of [h] by [nnodes g]; returns
    the union and the shift. *)
val disjoint_union : t -> t -> t * int

(** Subgraph induced by the nodes satisfying the predicate, with nodes
    renumbered; returns the graph and the old-to-new node mapping
    ([-1] when dropped). *)
val induced : t -> (node -> bool) -> t * int array

(** Undirected connectivity of the underlying graph. *)
val is_connected : t -> bool

(** Weakly-connected components as node lists. *)
val components : t -> node list list

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit

(** GraphViz dot output. *)
val to_dot : ?name:string -> t -> string
