let m_sweeps = Obs.Metrics.counter "bulk.sweeps"

let m_frontier_bits = Obs.Metrics.counter "bulk.frontier_bits"

let m_sweep_sparse = Obs.Metrics.counter "bulk.sweep_sparse"

let m_sweep_dense = Obs.Metrics.counter "bulk.sweep_dense"

let m_bits_scattered = Obs.Metrics.counter "bulk.bits_scattered"

let m_tiles = Obs.Metrics.counter "bulk.tiles"

let g_tile_rows = Obs.Metrics.gauge "bulk.tile_rows"

let g_peak_tile_words = Obs.Metrics.gauge "bulk.peak_tile_words"

type mode = Off | On | Auto

let mode_of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "on" | "1" | "true" | "yes" -> Some On
  | "off" | "0" | "false" | "no" -> Some Off
  | "auto" -> Some Auto
  | _ -> None

let mode_to_string = function Off -> "off" | On -> "on" | Auto -> "auto"

let mode_ref =
  ref
    (match Sys.getenv_opt "INJCRPQ_BULK" with
    | Some s -> ( match mode_of_string s with Some m -> m | None -> Auto)
    | None -> Auto)

let current_mode () = !mode_ref

let set_mode m = mode_ref := m

(* ------------------------------------------------------------------ *)
(* Sweep kernel selection (dense row OR vs sparse CSR push)            *)
(* ------------------------------------------------------------------ *)

type sweep = Sparse | Dense | Adaptive

let sweep_of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "sparse" -> Some Sparse
  | "dense" -> Some Dense
  | "auto" | "adaptive" -> Some Adaptive
  | _ -> None

let sweep_to_string = function
  | Sparse -> "sparse"
  | Dense -> "dense"
  | Adaptive -> "auto"

let sweep_ref =
  ref
    (match Sys.getenv_opt "INJCRPQ_BULK_SWEEP" with
    | Some s -> (
      match sweep_of_string s with Some m -> m | None -> Adaptive)
    | None -> Adaptive)

let current_sweep () = !sweep_ref

let set_sweep m = sweep_ref := m

(* The dense kernel needs one n×n bit matrix per label; past this node
   count the matrices are not built and every sweep pushes through CSR
   (at n = 16384 a label matrix is ~32 MiB; at n = 10⁵ it would be
   ~1.2 GiB). *)
let dense_node_cap = 16384

(* ------------------------------------------------------------------ *)
(* Source-block tiling                                                 *)
(* ------------------------------------------------------------------ *)

(* A tile holds three generations (visited / frontier / next) of one
   B×n matrix per NFA state; the default B is the largest block whose
   tile fits the ~64 MiB budget, so peak memory is O(B·n) however many
   sources are asked for.  The arithmetic uses only [Sys.int_size] and
   the problem dimensions, keeping tile boundaries — and therefore every
   bulk.* counter — machine- and domain-count-independent. *)
let tile_budget_words = 8 * 1024 * 1024

let block_env () =
  match Sys.getenv_opt "INJCRPQ_BULK_BLOCK" with
  | Some s -> (
    match int_of_string_opt (String.trim s) with
    | Some b when b >= 1 -> Some b
    | _ -> None)
  | None -> None

let block_ref = ref (block_env ())

let current_block_rows () = !block_ref

let set_block_rows b =
  match b with
  | Some b when b < 1 -> invalid_arg "Bulk_rpq.set_block_rows"
  | b -> block_ref := b

let words_per_row n = (n + Sys.int_size - 1) / Sys.int_size

let block_rows ~nstates ~nnodes =
  match !block_ref with
  | Some b -> b
  | None ->
    let per_row = 3 * max 1 nstates * words_per_row (max 1 nnodes) in
    max 1 (tile_budget_words / per_row)

(* Peak tile working set (words), for the O(B·n) memory-bound assertion
   of the E17 bench: the gauge tracks the high-water mark across calls,
   [reset_peak_tile_words] scopes it to one measurement. *)
let peak_words = Atomic.make 0

let peak_tile_words () = Atomic.get peak_words

let reset_peak_tile_words () =
  Atomic.set peak_words 0;
  Obs.Metrics.set g_peak_tile_words 0

let note_tile_words w =
  let rec bump () =
    let cur = Atomic.get peak_words in
    if w > cur && not (Atomic.compare_and_set peak_words cur w) then bump ()
  in
  bump ();
  Obs.Metrics.set g_peak_tile_words (Atomic.get peak_words)

(* ------------------------------------------------------------------ *)
(* Engine / strategy selection                                          *)
(* ------------------------------------------------------------------ *)

type strategy = All_pairs | Multi_source

(* All-pairs closure squares an (n·m)² bit matrix log-diameter times —
   only worth it when the product space is tiny and most sources are
   wanted anyway; the frontier BFS does work proportional to discovered
   pairs and wins everywhere else (E16 measures the closure already
   behind at product sizes in the high hundreds). *)
let choose_strategy ~sources ~nstates ~nnodes =
  if nnodes * nstates <= 256 && 2 * sources >= nnodes then All_pairs
  else Multi_source

(* Auto crossover: below ~192 nodes the pointwise BFS's early exits beat
   the fixed per-sweep cost of full bitset rows; the last conjunct caps
   the per-tile product work (tiling keeps memory bounded regardless). *)
let auto_accepts g nfa =
  let n = Graph.nnodes g in
  let m = nfa.Nfa.nstates in
  n >= 192 && Graph.nedges g >= n && m * n * n <= 1 lsl 33

let use_bulk g nfa =
  match !mode_ref with
  | Off -> false
  | On -> true
  | Auto -> auto_accepts g nfa

(* ------------------------------------------------------------------ *)
(* Caller attribution for dispatch counters                             *)
(* ------------------------------------------------------------------ *)

(* [st_relation] serves several layers — the join evaluator, the RPQ
   surface, the containment deciders' expansion checks.  The ambient
   caller travels in domain-local storage (established fresh inside
   Parmap workers by each fan-out site, since worker domains start with
   default DLS), and every dispatch bumps
   [bulk.dispatch.<caller>.<engine>] so explain reports show which layer
   consumed which engine. *)
let caller_key : string option Domain.DLS.key = Domain.DLS.new_key (fun () -> None)

let current_caller () = Domain.DLS.get caller_key

let with_caller name f =
  let prev = Domain.DLS.get caller_key in
  Domain.DLS.set caller_key (Some name);
  Fun.protect ~finally:(fun () -> Domain.DLS.set caller_key prev) f

let callers = [ "eval"; "containment"; "rpq"; "direct"; "other" ]

let engines = [ "pointwise"; "multi_source"; "all_pairs" ]

let dispatch_counters =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun c ->
      List.iter
        (fun e ->
          Hashtbl.replace tbl (c, e)
            (Obs.Metrics.counter (Printf.sprintf "bulk.dispatch.%s.%s" c e)))
        engines)
    callers;
  tbl

let note_dispatch engine =
  let caller =
    match current_caller () with
    | None -> "direct"
    | Some c -> if List.mem c callers then c else "other"
  in
  Obs.Metrics.incr (Hashtbl.find dispatch_counters (caller, engine))

(* ------------------------------------------------------------------ *)
(* Per-label adjacency, memoized per graph                             *)
(* ------------------------------------------------------------------ *)

module Adj_tbl = Cache.Memo (struct
  type t = int

  let equal = Int.equal

  let hash = Hashtbl.hash
end)

let adj_tbl : Bitmatrix.t array Adj_tbl.t =
  (* Matrices are large relative to typical memo entries; keep the LRU
     shallow. *)
  Adj_tbl.create ~cap:16 "bulk.adjacency"

let build_adjacency g =
  let n = Graph.nnodes g in
  let nl = Graph.nlabels g in
  let adj = Array.init nl (fun _ -> Bitmatrix.create ~rows:n ~cols:n) in
  List.iter
    (fun (u, a, v) ->
      match Graph.label_id g a with
      | Some ai -> Bitmatrix.set adj.(ai) u v
      | None -> ())
    (Graph.edges g);
  adj

let adjacency g = Adj_tbl.find_or_add adj_tbl (Graph.uid g) (fun () -> build_adjacency g)

(* Same re-keying as [Path_search.intern_delta]: transitions on labels
   the graph never uses can't fire and are dropped. *)
let intern_delta g nfa =
  Array.map
    (List.filter_map (fun (a, q') ->
         match Graph.label_id g a with
         | Some ai -> Some (ai, q')
         | None -> None))
    nfa.Nfa.delta

(* ------------------------------------------------------------------ *)
(* All-pairs: closure of the Kronecker-style product matrix            *)
(* ------------------------------------------------------------------ *)

let product_matrix g nfa =
  let n = Graph.nnodes g in
  let m = nfa.Nfa.nstates in
  let size = max (n * m) 1 in
  let p = Bitmatrix.create ~rows:size ~cols:size in
  let delta = intern_delta g nfa in
  Array.iteri
    (fun q trans ->
      List.iter
        (fun (ai, q') ->
          for u = 0 to n - 1 do
            let succs = Graph.succ_ids g u ai in
            for i = 0 to Array.length succs - 1 do
              Bitmatrix.set p ((u * m) + q) ((succs.(i) * m) + q')
            done
          done)
        trans)
    delta;
  p

let all_pairs_relation g nfa =
  let n = Graph.nnodes g in
  let m = nfa.Nfa.nstates in
  let r = Bitmatrix.closure (product_matrix g nfa) in
  let rel = Array.make_matrix (max n 1) (max n 1) false in
  let finals = ref [] in
  for q = 0 to m - 1 do
    if nfa.Nfa.finals.(q) then finals := q :: !finals
  done;
  for u = 0 to n - 1 do
    List.iter
      (fun q0 ->
        Bitmatrix.iter_row r ((u * m) + q0) (fun c ->
            if List.mem (c mod m) !finals then rel.(u).(c / m) <- true))
      nfa.Nfa.initials
  done;
  rel

(* ------------------------------------------------------------------ *)
(* Multiple-source frontier BFS: hybrid sparse/dense tiles              *)
(* ------------------------------------------------------------------ *)

(* Inputs shared by every tile of one [reach_pairs] call.  The dense
   label matrices are behind a lazy so the sparse-only regime (large n,
   or a forced sparse sweep) never allocates them; forcing [Dense] via
   the knob builds them whatever the size — the caps only steer the
   adaptive choice. *)
type ctx = {
  n : int;
  m : int;
  delta : (int * int) list array;
  csr : Csr.labeled;
  dense : Bitmatrix.t array Lazy.t;
  dense_ok : bool;
}

let make_ctx g nfa =
  {
    n = Graph.nnodes g;
    m = nfa.Nfa.nstates;
    delta = intern_delta g nfa;
    csr = Csr.of_graph g;
    dense = lazy (adjacency g);
    dense_ok = Graph.nnodes g <= dense_node_cap;
  }

(* Density probe, run sequentially on the immutable frontier snapshot
   before the sweep fans out (so the choice — and with it every counter
   — is independent of the domain count).  The dense kernel costs
   [words_per_row] word-ORs per (frontier bit, transition); the sparse
   push costs one scattered bit per successor, each a few times the cost
   of a word-OR.  Degrees come from CSR pointer differences, so the
   probe itself is O(frontier bits × transitions). *)
let sparse_op_cost = 2

let choose_sweep ctx frontier rows =
  match !sweep_ref with
  | Sparse -> Sparse
  | Dense -> Dense
  | Adaptive ->
    if not ctx.dense_ok then Sparse
    else begin
      let wpr = words_per_row ctx.n in
      let dense_words = ref 0 and gathered = ref 0 in
      Array.iteri
        (fun q trans ->
          if trans <> [] then
            for i = 0 to rows - 1 do
              if not (Bitmatrix.is_row_empty frontier.(q) i) then
                Bitmatrix.iter_row frontier.(q) i (fun u ->
                    List.iter
                      (fun (ai, _) ->
                        dense_words := !dense_words + wpr;
                        gathered :=
                          !gathered + Csr.degree ctx.csr.Csr.fwd.(ai) u)
                      trans)
            done)
        ctx.delta;
      if sparse_op_cost * !gathered < !dense_words then Sparse else Dense
    end

let sweep_rows_dense ctx adj frontier nxt lo hi =
  for i = lo to hi do
    Array.iteri
      (fun q trans ->
        if trans <> [] && not (Bitmatrix.is_row_empty frontier.(q) i) then
          List.iter
            (fun (ai, q') ->
              Bitmatrix.iter_row frontier.(q) i (fun u ->
                  ignore (Bitmatrix.or_row_into ~src:adj.(ai) u ~dst:nxt.(q') i)))
            trans)
      ctx.delta
  done

let sweep_rows_sparse ctx frontier nxt lo hi =
  let scattered = ref 0 in
  for i = lo to hi do
    Array.iteri
      (fun q trans ->
        if trans <> [] && not (Bitmatrix.is_row_empty frontier.(q) i) then
          Bitmatrix.iter_row frontier.(q) i (fun u ->
              List.iter
                (fun (ai, q') ->
                  let c = ctx.csr.Csr.fwd.(ai) in
                  let len = Csr.degree c u in
                  if len > 0 then begin
                    Bitmatrix.scatter_row ~dst:nxt.(q') i (Csr.cols c)
                      ~ofs:(Csr.start c u) ~len;
                    scattered := !scattered + len
                  end)
                trans))
      ctx.delta
  done;
  Obs.Metrics.add m_bits_scattered !scattered

(* One tile: the synchronous sweep of PR 9 — next frontier computed from
   an immutable snapshot of the current one, row blocks of a sweep
   fanned over [Parmap] (disjoint writes per block) — with the kernel
   chosen per sweep by [choose_sweep].  Returns one s×n visited matrix
   per NFA state. *)
let solve_tile ctx nfa srcs =
  let n = ctx.n and m = ctx.m in
  let s = Array.length srcs in
  let fresh () = Array.init m (fun _ -> Bitmatrix.create ~rows:s ~cols:n) in
  let visited = fresh () in
  let frontier = fresh () in
  List.iter
    (fun q0 ->
      Array.iteri
        (fun i u ->
          Bitmatrix.set visited.(q0) i u;
          Bitmatrix.set frontier.(q0) i u)
        srcs)
    nfa.Nfa.initials;
  Array.iter (fun f -> Obs.Metrics.add m_frontier_bits (Bitmatrix.popcount f)) frontier;
  let blocks =
    (* Row blocks sized for the default fan-out; Parmap stays sequential
       when jobs = 1 or when called from inside another worker. *)
    let bs = max 64 ((s + 7) / 8) in
    let rec cut lo acc =
      if lo >= s then List.rev acc
      else cut (lo + bs) ((lo, min (lo + bs) s - 1) :: acc)
    in
    cut 0 []
  in
  let running = ref (s > 0 && Array.exists (fun f -> Bitmatrix.popcount f > 0) frontier) in
  while !running do
    Guard.checkpoint "bulk.sweep";
    Obs.Metrics.incr m_sweeps;
    let kernel = choose_sweep ctx frontier s in
    let nxt = fresh () in
    (match kernel with
    | Dense ->
      Obs.Metrics.incr m_sweep_dense;
      let adj = Lazy.force ctx.dense in
      ignore
        (Parmap.map (fun (lo, hi) -> sweep_rows_dense ctx adj frontier nxt lo hi) blocks)
    | Sparse | Adaptive ->
      Obs.Metrics.incr m_sweep_sparse;
      ignore
        (Parmap.map (fun (lo, hi) -> sweep_rows_sparse ctx frontier nxt lo hi) blocks));
    running := false;
    for q = 0 to m - 1 do
      for i = 0 to s - 1 do
        ignore (Bitmatrix.diff_row_into ~mask:visited.(q) i ~dst:nxt.(q) i)
      done;
      let bits = Bitmatrix.popcount nxt.(q) in
      if bits > 0 then begin
        running := true;
        Obs.Metrics.add m_frontier_bits bits;
        ignore (Bitmatrix.union_into ~src:nxt.(q) ~dst:visited.(q))
      end;
      frontier.(q) <- nxt.(q)
    done
  done;
  visited

let reach_pairs g nfa srcs =
  let ctx = make_ctx g nfa in
  let n = ctx.n and m = ctx.m in
  let s = Array.length srcs in
  let out = Bitmatrix.create ~rows:s ~cols:n in
  let finals = ref [] in
  for q = 0 to m - 1 do
    if nfa.Nfa.finals.(q) then finals := q :: !finals
  done;
  let b = block_rows ~nstates:m ~nnodes:n in
  Obs.Metrics.set g_tile_rows (min b (max s 1));
  let lo = ref 0 in
  while !lo < s do
    let len = min b (s - !lo) in
    Obs.Metrics.incr m_tiles;
    note_tile_words (3 * m * len * words_per_row n);
    let visited = solve_tile ctx nfa (Array.sub srcs !lo len) in
    List.iter
      (fun q ->
        for i = 0 to len - 1 do
          ignore (Bitmatrix.or_row_into ~src:visited.(q) i ~dst:out (!lo + i))
        done)
      !finals;
    lo := !lo + len
  done;
  out

let multi_source_relation g nfa =
  let n = Graph.nnodes g in
  let seen = reach_pairs g nfa (Array.init n (fun u -> u)) in
  let rel = Array.make_matrix (max n 1) (max n 1) false in
  for u = 0 to n - 1 do
    Bitmatrix.iter_row seen u (fun v -> rel.(u).(v) <- true)
  done;
  rel

let reach_relation ?strategy g nfa =
  let n = Graph.nnodes g in
  let strategy =
    match strategy with
    | Some s -> s
    | None -> choose_strategy ~sources:n ~nstates:nfa.Nfa.nstates ~nnodes:n
  in
  match strategy with
  | All_pairs -> all_pairs_relation g nfa
  | Multi_source -> multi_source_relation g nfa

let st_relation g nfa =
  if use_bulk g nfa then begin
    let n = Graph.nnodes g in
    let strategy = choose_strategy ~sources:n ~nstates:nfa.Nfa.nstates ~nnodes:n in
    note_dispatch
      (match strategy with
      | All_pairs -> "all_pairs"
      | Multi_source -> "multi_source");
    reach_relation ~strategy g nfa
  end
  else begin
    note_dispatch "pointwise";
    Path_search.reach_relation g nfa
  end
