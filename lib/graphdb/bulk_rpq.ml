let m_sweeps = Obs.Metrics.counter "bulk.sweeps"

let m_frontier_bits = Obs.Metrics.counter "bulk.frontier_bits"

type mode = Off | On | Auto

let mode_of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "on" | "1" | "true" | "yes" -> Some On
  | "off" | "0" | "false" | "no" -> Some Off
  | "auto" -> Some Auto
  | _ -> None

let mode_to_string = function Off -> "off" | On -> "on" | Auto -> "auto"

let mode_ref =
  ref
    (match Sys.getenv_opt "INJCRPQ_BULK" with
    | Some s -> ( match mode_of_string s with Some m -> m | None -> Auto)
    | None -> Auto)

let current_mode () = !mode_ref

let set_mode m = mode_ref := m

type strategy = All_pairs | Multi_source

(* All-pairs closure squares an (n·m)² bit matrix log-diameter times —
   only worth it when the product space is tiny and most sources are
   wanted anyway; the frontier BFS does work proportional to discovered
   pairs and wins everywhere else (E16 measures the closure already
   behind at product sizes in the high hundreds). *)
let choose_strategy ~sources ~nstates ~nnodes =
  if nnodes * nstates <= 256 && 2 * sources >= nnodes then All_pairs
  else Multi_source

(* Auto crossover: below ~192 nodes the pointwise BFS's early exits beat
   the fixed per-sweep cost of full bitset rows; the last conjunct caps
   the visited-matrix footprint (m·n² bits ≤ 1 GiB). *)
let auto_accepts g nfa =
  let n = Graph.nnodes g in
  let m = nfa.Nfa.nstates in
  n >= 192 && Graph.nedges g >= n && m * n * n <= 1 lsl 33

let use_bulk g nfa =
  match !mode_ref with
  | Off -> false
  | On -> true
  | Auto -> auto_accepts g nfa

(* ------------------------------------------------------------------ *)
(* Per-label adjacency, memoized per graph                             *)
(* ------------------------------------------------------------------ *)

module Adj_tbl = Cache.Memo (struct
  type t = int

  let equal = Int.equal

  let hash = Hashtbl.hash
end)

let adj_tbl : Bitmatrix.t array Adj_tbl.t =
  (* Matrices are large relative to typical memo entries; keep the LRU
     shallow. *)
  Adj_tbl.create ~cap:16 "bulk.adjacency"

let build_adjacency g =
  let n = Graph.nnodes g in
  let nl = Graph.nlabels g in
  let adj = Array.init nl (fun _ -> Bitmatrix.create ~rows:n ~cols:n) in
  List.iter
    (fun (u, a, v) ->
      match Graph.label_id g a with
      | Some ai -> Bitmatrix.set adj.(ai) u v
      | None -> ())
    (Graph.edges g);
  adj

let adjacency g = Adj_tbl.find_or_add adj_tbl (Graph.uid g) (fun () -> build_adjacency g)

(* Same re-keying as [Path_search.intern_delta]: transitions on labels
   the graph never uses can't fire and are dropped. *)
let intern_delta g nfa =
  Array.map
    (List.filter_map (fun (a, q') ->
         match Graph.label_id g a with
         | Some ai -> Some (ai, q')
         | None -> None))
    nfa.Nfa.delta

(* ------------------------------------------------------------------ *)
(* All-pairs: closure of the Kronecker-style product matrix            *)
(* ------------------------------------------------------------------ *)

let product_matrix g nfa =
  let n = Graph.nnodes g in
  let m = nfa.Nfa.nstates in
  let size = max (n * m) 1 in
  let p = Bitmatrix.create ~rows:size ~cols:size in
  let delta = intern_delta g nfa in
  Array.iteri
    (fun q trans ->
      List.iter
        (fun (ai, q') ->
          for u = 0 to n - 1 do
            let succs = Graph.succ_ids g u ai in
            for i = 0 to Array.length succs - 1 do
              Bitmatrix.set p ((u * m) + q) ((succs.(i) * m) + q')
            done
          done)
        trans)
    delta;
  p

let all_pairs_relation g nfa =
  let n = Graph.nnodes g in
  let m = nfa.Nfa.nstates in
  let r = Bitmatrix.closure (product_matrix g nfa) in
  let rel = Array.make_matrix (max n 1) (max n 1) false in
  let finals = ref [] in
  for q = 0 to m - 1 do
    if nfa.Nfa.finals.(q) then finals := q :: !finals
  done;
  for u = 0 to n - 1 do
    List.iter
      (fun q0 ->
        Bitmatrix.iter_row r ((u * m) + q0) (fun c ->
            if List.mem (c mod m) !finals then rel.(u).(c / m) <- true))
      nfa.Nfa.initials
  done;
  rel

(* ------------------------------------------------------------------ *)
(* Multiple-source frontier BFS                                        *)
(* ------------------------------------------------------------------ *)

(* One s×n bit matrix per NFA state: row i of [visited.(q)] is the set
   of graph nodes reached from source i in state q.  Sweeps are
   synchronous — the next frontier is computed from an immutable
   snapshot of the current one — so results, sweep counts and word-op
   counters are independent of the domain count; row blocks of a sweep
   fan out over [Parmap] (disjoint writes per block). *)
let multi_source_seen g nfa srcs =
  let n = Graph.nnodes g in
  let m = nfa.Nfa.nstates in
  let s = Array.length srcs in
  let delta = intern_delta g nfa in
  let adj = adjacency g in
  let fresh () = Array.init m (fun _ -> Bitmatrix.create ~rows:s ~cols:n) in
  let visited = fresh () in
  let frontier = fresh () in
  List.iter
    (fun q0 ->
      Array.iteri
        (fun i u ->
          Bitmatrix.set visited.(q0) i u;
          Bitmatrix.set frontier.(q0) i u)
        srcs)
    nfa.Nfa.initials;
  Array.iter (fun f -> Obs.Metrics.add m_frontier_bits (Bitmatrix.popcount f)) frontier;
  let sweep_rows frontier nxt lo hi =
    for i = lo to hi do
      Array.iteri
        (fun q trans ->
          if not (Bitmatrix.is_row_empty frontier.(q) i) then
            List.iter
              (fun (ai, q') ->
                Bitmatrix.iter_row frontier.(q) i (fun u ->
                    ignore (Bitmatrix.or_row_into ~src:adj.(ai) u ~dst:nxt.(q') i)))
              trans)
        delta
    done
  in
  let blocks =
    (* Row blocks sized for the default fan-out; Parmap stays sequential
       when jobs = 1 or when called from inside another worker. *)
    let bs = max 64 ((s + 7) / 8) in
    let rec cut lo acc =
      if lo >= s then List.rev acc
      else cut (lo + bs) ((lo, min (lo + bs) s - 1) :: acc)
    in
    cut 0 []
  in
  let running = ref (s > 0 && Array.exists (fun f -> Bitmatrix.popcount f > 0) frontier) in
  while !running do
    Guard.checkpoint "bulk.sweep";
    Obs.Metrics.incr m_sweeps;
    let nxt = fresh () in
    ignore (Parmap.map (fun (lo, hi) -> sweep_rows frontier nxt lo hi) blocks);
    running := false;
    for q = 0 to m - 1 do
      for i = 0 to s - 1 do
        ignore (Bitmatrix.diff_row_into ~mask:visited.(q) i ~dst:nxt.(q) i)
      done;
      let bits = Bitmatrix.popcount nxt.(q) in
      if bits > 0 then begin
        running := true;
        Obs.Metrics.add m_frontier_bits bits;
        ignore (Bitmatrix.union_into ~src:nxt.(q) ~dst:visited.(q))
      end;
      frontier.(q) <- nxt.(q)
    done
  done;
  visited

let reach_pairs g nfa srcs =
  let n = Graph.nnodes g in
  let m = nfa.Nfa.nstates in
  let s = Array.length srcs in
  let visited = multi_source_seen g nfa srcs in
  let out = Bitmatrix.create ~rows:s ~cols:n in
  for q = 0 to m - 1 do
    if nfa.Nfa.finals.(q) then ignore (Bitmatrix.union_into ~src:visited.(q) ~dst:out)
  done;
  out

let multi_source_relation g nfa =
  let n = Graph.nnodes g in
  let seen = reach_pairs g nfa (Array.init n (fun u -> u)) in
  let rel = Array.make_matrix (max n 1) (max n 1) false in
  for u = 0 to n - 1 do
    Bitmatrix.iter_row seen u (fun v -> rel.(u).(v) <- true)
  done;
  rel

let reach_relation ?strategy g nfa =
  let n = Graph.nnodes g in
  let strategy =
    match strategy with
    | Some s -> s
    | None -> choose_strategy ~sources:n ~nstates:nfa.Nfa.nstates ~nnodes:n
  in
  match strategy with
  | All_pairs -> all_pairs_relation g nfa
  | Multi_source -> multi_source_relation g nfa

let st_relation g nfa =
  if use_bulk g nfa then reach_relation g nfa else Path_search.reach_relation g nfa
