(** Per-label compressed-sparse-row adjacency — the sparse counterpart
    of the dense label matrices of {!Bulk_rpq}.

    One structure per (direction, label id): the neighbours of node [u]
    are a contiguous ascending run of the flat [idx] array, delimited by
    [ptr.(u)] and [ptr.(u+1)].  Built once per graph and memoized
    through {!Cache.Memo} keyed by {!Graph.uid} (table [bulk.csr], same
    discipline as the dense adjacency memo), so repeated queries over
    one graph share the arrays.  The arrays are shared — do not
    mutate. *)

type t
(** Adjacency of one label in one direction. *)

type labeled = {
  fwd : t array;  (** [fwd.(ai)]: successors under label id [ai] *)
  rev : t array;  (** [rev.(ai)]: predecessors under label id [ai] *)
}

val nnodes : t -> int

val nnz : t -> int
(** Stored edges = [Graph.nedges] summed over the label array. *)

val degree : t -> int -> int
(** O(1): two pointer loads — what makes the per-sweep density probe of
    the hybrid engine affordable. *)

val start : t -> int -> int
(** Offset of node [u]'s run in {!cols}. *)

val cols : t -> int array
(** The flat successor array; node [u]'s neighbours occupy
    [start u .. start u + degree u - 1].  Exposed so allocation-free
    kernels ({!Bitmatrix.scatter_row}) can consume runs directly. *)

val iter_succ : t -> int -> (int -> unit) -> unit

val fold_succ : t -> int -> ('a -> int -> 'a) -> 'a -> 'a

val build : Graph.t -> labeled
(** Unmemoized construction (tests). *)

val of_graph : Graph.t -> labeled
(** Memoized per {!Graph.uid}. *)
