(** Dense boolean matrices over packed bitset rows — the kernel layer of
    the bulk RPQ engine ({!Bulk_rpq}).

    A matrix is row-major: each row is a run of [words_per_row] native
    ints, [Sys.int_size] bits per word (63 on 64-bit systems; native
    ints are used instead of [Int64] because OCaml [int64 array]s box
    every element, while an [int array] is a flat unboxed block).  All
    kernels are allocation-free on the hot path; popcounts go through a
    precomputed 16-bit table (SWAR masks such as [0x5555...] do not fit
    in OCaml's 63-bit immediates).

    Word-level work is observable: every row OR/AND-NOT accounted by the
    [bulk.words_anded] counter, closure sweeps by [bulk.sweeps]
    (no-ops unless [Obs.Metrics] is enabled). *)

type t

(** [create ~rows ~cols] is the all-zeros [rows] × [cols] matrix.
    Zero-sized dimensions are allowed. *)
val create : rows:int -> cols:int -> t

val rows : t -> int

val cols : t -> int

val get : t -> int -> int -> bool

val set : t -> int -> int -> unit

val clear : t -> int -> int -> unit

val copy : t -> t

(** Structural equality of dimensions and bits. *)
val equal : t -> t -> bool

(** Number of set bits in row [i]. *)
val row_popcount : t -> int -> int

(** Total number of set bits. *)
val popcount : t -> int

val is_row_empty : t -> int -> bool

(** [iter_row m i f] applies [f] to each set column of row [i] in
    ascending order. *)
val iter_row : t -> int -> (int -> unit) -> unit

(** [or_row_into ~src i ~dst j] ORs row [i] of [src] into row [j] of
    [dst]; returns [true] iff [dst] changed.  Rows must have equal
    column counts. *)
val or_row_into : src:t -> int -> dst:t -> int -> bool

(** [diff_row_into ~mask i ~dst j] clears from row [j] of [dst] every
    bit set in row [i] of [mask] (i.e. [dst_j <- dst_j AND NOT mask_i]);
    returns [true] iff [dst] changed. *)
val diff_row_into : mask:t -> int -> dst:t -> int -> bool

(** [scatter_row ~dst i cols ~ofs ~len] sets, in row [i] of [dst], the
    bit of every column listed in [cols.(ofs .. ofs+len-1)] — the sparse
    counterpart of {!or_row_into}, used by the CSR frontier push of
    {!Bulk_rpq} (the [cols] slice is a CSR successor run).  Work is
    O(len) independent of the row width; the caller accounts it (the
    [bulk.bits_scattered] counter) since, unlike the dense kernels,
    there is no per-word loop to meter here. *)
val scatter_row : dst:t -> int -> int array -> ofs:int -> len:int -> unit

(** [union_into ~src ~dst] ORs all of [src] into [dst] (same
    dimensions); returns [true] iff [dst] changed. *)
val union_into : src:t -> dst:t -> bool

(** Boolean matrix multiply-accumulate: [dst <- dst OR (a · b)], where
    [a] is [r × k] and [b] is [k × c] and [dst] is [r × c].  Row [i] of
    the product is the OR of the rows of [b] selected by the set bits of
    row [i] of [a] — a row-gather, which is why adjacency is stored
    row-wise.  Returns [true] iff [dst] changed.  [dst] may alias [a]
    but must not alias [b]. *)
val mul_into : a:t -> b:t -> dst:t -> bool

(** Reflexive-transitive closure of a square matrix by repeated
    squaring ([R <- R OR R·R] until fixpoint, so the sweep count is
    logarithmic in the diameter).  Each sweep passes the [bulk.sweep]
    guard checkpoint and bumps the [bulk.sweeps] counter.  The input is
    not mutated. *)
val closure : t -> t

val of_bool_matrix : bool array array -> t

(** [to_bool_matrix m] as nested arrays; rows of length [cols m]. *)
val to_bool_matrix : t -> bool array array
