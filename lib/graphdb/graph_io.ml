let of_string text =
  let edges = ref [] in
  let lineno = ref 0 in
  String.split_on_char '\n' text
  |> List.iter (fun line ->
         incr lineno;
         let line = String.trim line in
         if line <> "" && line.[0] <> '#' then begin
           match
             String.split_on_char ' ' line |> List.filter (fun s -> s <> "")
           with
           | [ u; lbl; v ] -> begin
             match int_of_string_opt u, int_of_string_opt v with
             | Some u, Some v -> edges := (u, lbl, v) :: !edges
             | _ ->
               invalid_arg
                 (Printf.sprintf "Graph_io: bad node id on line %d" !lineno)
           end
           | _ ->
             invalid_arg
               (Printf.sprintf "Graph_io: expected 'src label dst' on line %d"
                  !lineno)
         end);
  Graph.of_edges (List.rev !edges)

let of_string_result text =
  match of_string text with
  | g -> Ok g
  | exception Invalid_argument msg -> Error msg

let to_string g =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf "# graph database: %d nodes, %d edges\n" (Graph.nnodes g)
       (Graph.nedges g));
  List.iter
    (fun (u, a, v) -> Buffer.add_string buf (Printf.sprintf "%d %s %d\n" u a v))
    (Graph.edges g);
  Buffer.contents buf

let load path =
  let ic = open_in path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  of_string s

let load_result path =
  match load path with
  | g -> Ok g
  | exception Sys_error msg -> Error msg
  | exception Invalid_argument msg -> Error msg

let save path g =
  let oc = open_out path in
  output_string oc (to_string g);
  close_out oc
