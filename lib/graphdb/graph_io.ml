(* A node id is a plain decimal numeral.  [int_of_string_opt] alone
   would also accept "0x10", "0o17", "1_000" or "+3" — spellings that a
   hand-written edge file almost certainly does not mean, so they are
   rejected rather than silently reinterpreted.  (All-digit strings
   that overflow [int] still come back as [None].) *)
let node_id s =
  if s <> "" && String.for_all (fun c -> c >= '0' && c <= '9') s then
    int_of_string_opt s
  else None

(* Fields are separated by any run of spaces and/or tabs. *)
let fields line =
  String.split_on_char ' ' line
  |> List.concat_map (String.split_on_char '\t')
  |> List.filter (fun s -> s <> "")

(* Shared by the string and streaming front ends so both report the same
   errors for the same line.  [String.trim] also strips the '\r' a CRLF
   file leaves at the end of [input_line]'s result. *)
let parse_line edges lineno line =
  let line = String.trim line in
  if line <> "" && line.[0] <> '#' then begin
    match fields line with
    | [ u; lbl; v ] -> begin
      match node_id u, node_id v with
      | Some u, Some v -> edges := (u, lbl, v) :: !edges
      | _ -> invalid_arg (Printf.sprintf "Graph_io: bad node id on line %d" lineno)
    end
    | _ ->
      invalid_arg
        (Printf.sprintf "Graph_io: expected 'src label dst' on line %d" lineno)
  end

let of_string text =
  let edges = ref [] in
  let lineno = ref 0 in
  String.split_on_char '\n' text
  |> List.iter (fun line ->
         incr lineno;
         parse_line edges !lineno line);
  Graph.of_edges (List.rev !edges)

let of_string_result text =
  match of_string text with
  | g -> Ok g
  | exception Invalid_argument msg -> Error msg

let to_string g =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf "# graph database: %d nodes, %d edges\n" (Graph.nnodes g)
       (Graph.nedges g));
  List.iter
    (fun (u, a, v) -> Buffer.add_string buf (Printf.sprintf "%d %s %d\n" u a v))
    (Graph.edges g);
  Buffer.contents buf

(* Streaming load: one [input_line] at a time, so a multi-gigabyte edge
   list never materializes as a single string (the accumulated edge list
   is what [Graph.make] needs anyway).  [Fun.protect] keeps the channel
   closed on parse errors. *)
let load path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let edges = ref [] in
      let lineno = ref 0 in
      (try
         while true do
           let line = input_line ic in
           incr lineno;
           parse_line edges !lineno line
         done
       with End_of_file -> ());
      Graph.of_edges (List.rev !edges))

let load_result path =
  match load path with
  | g -> Ok g
  | exception Sys_error msg -> Error msg
  | exception Invalid_argument msg -> Error msg

let save path g =
  let oc = open_out path in
  output_string oc (to_string g);
  close_out oc
