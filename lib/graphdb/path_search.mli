(** Path queries over graph databases.

    Three path regimes, matching the three RPQ semantics of the paper:

    - arbitrary paths (standard semantics): decidable in polynomial time
      by BFS over the product of the graph with the NFA;
    - simple paths / simple cycles (simple-path semantics, the basis of
      both injective semantics): NP-complete in general
      (Mendelzon–Wood), implemented as pruned backtracking over the
      product;
    - trails (edge-injective semantics, Section 7).

    Conventions for source = target: the empty path counts iff the
    automaton accepts {m \varepsilon}; otherwise a simple cycle (resp.
    non-empty trail) is required. *)

type node = Graph.node

(** {1 Arbitrary paths (standard semantics)} *)

(** [product_bfs g nfa srcs]: BFS over the product of the graph with the
    NFA from the given (node, state) pairs.  The result is the seen
    array over product states coded [u * nstates + q] (start pairs
    included), the coding shared with {!Bulk_rpq.product_matrix} — the
    bulk engine's differential battery pins the two against each
    other. *)
val product_bfs : Graph.t -> Nfa.t -> (node * int) list -> bool array

(** Nodes reachable from [src] by a path whose label is accepted. *)
val reachable : Graph.t -> Nfa.t -> node -> node list

(** [reach_relation g nfa].(u).(v) iff some path from [u] to [v] has an
    accepted label. *)
val reach_relation : Graph.t -> Nfa.t -> bool array array

val exists_path : Graph.t -> Nfa.t -> src:node -> dst:node -> bool

val find_path : Graph.t -> Nfa.t -> src:node -> dst:node -> Path.t option

(** {1 Simple paths and simple cycles} *)

(** Iterate over all simple paths from [src] to [dst] (simple cycles when
    [src = dst]) whose label is accepted.  Internal nodes satisfying
    [avoid_internal] are never used. *)
val iter_simple :
  ?avoid_internal:(node -> bool) ->
  Graph.t ->
  Nfa.t ->
  src:node ->
  dst:node ->
  (Path.t -> unit) ->
  unit

val find_simple :
  ?avoid_internal:(node -> bool) ->
  Graph.t ->
  Nfa.t ->
  src:node ->
  dst:node ->
  Path.t option

val exists_simple :
  ?avoid_internal:(node -> bool) ->
  Graph.t ->
  Nfa.t ->
  src:node ->
  dst:node ->
  bool

(** All accepted simple paths (naive enumeration; for tests/oracles). *)
val all_simple : Graph.t -> Nfa.t -> src:node -> dst:node -> Path.t list

(** [simple_reach_relation g nfa].(u).(v) iff an accepted simple path
    (simple cycle when [u = v]) links [u] to [v]. *)
val simple_reach_relation : Graph.t -> Nfa.t -> bool array array

(** {1 Trails} *)

val iter_trail :
  ?avoid_edge:(Graph.edge -> bool) ->
  Graph.t ->
  Nfa.t ->
  src:node ->
  dst:node ->
  (Path.t -> unit) ->
  unit

val find_trail :
  ?avoid_edge:(Graph.edge -> bool) ->
  Graph.t ->
  Nfa.t ->
  src:node ->
  dst:node ->
  Path.t option

val exists_trail :
  ?avoid_edge:(Graph.edge -> bool) ->
  Graph.t ->
  Nfa.t ->
  src:node ->
  dst:node ->
  bool
