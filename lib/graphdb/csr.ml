(* Per-label compressed-sparse-row adjacency.  One flat [ptr]/[idx] pair
   per (direction, label): successors of node [u] under label [a] are
   [idx.(ptr.(u)) .. idx.(ptr.(u+1) - 1)], ascending (inherited from the
   sorted per-node arrays of [Graph]).  Degrees are pointer differences,
   so the density probe of the hybrid sweep costs two loads per frontier
   node and no iteration.

   Like the dense label matrices of [Bulk_rpq], the structure is built
   once per graph and memoized through [Cache.Memo] keyed by
   [Graph.uid]; at ~2 words per edge per direction it is ~10⁵× smaller
   than the dense n×n matrices on a 10⁶-edge, 10⁵-node graph. *)

type t = { n : int; ptr : int array; idx : int array }

type labeled = { fwd : t array; rev : t array }

let nnodes c = c.n

let nnz c = Array.length c.idx

let degree c u = c.ptr.(u + 1) - c.ptr.(u)

let start c u = c.ptr.(u)

let cols c = c.idx

let iter_succ c u f =
  for k = c.ptr.(u) to c.ptr.(u + 1) - 1 do
    f (Array.unsafe_get c.idx k)
  done

let fold_succ c u f acc =
  let acc = ref acc in
  for k = c.ptr.(u) to c.ptr.(u + 1) - 1 do
    acc := f !acc (Array.unsafe_get c.idx k)
  done;
  !acc

(* [neighbours u ai] is [Graph.succ_ids] / [Graph.pred_ids]: already
   sorted, so a blit per (node, label) run builds the flat arrays. *)
let of_neighbours n neighbours ai =
  let ptr = Array.make (n + 1) 0 in
  for u = 0 to n - 1 do
    ptr.(u + 1) <- ptr.(u) + Array.length (neighbours u ai)
  done;
  let idx = Array.make ptr.(n) 0 in
  for u = 0 to n - 1 do
    let run = neighbours u ai in
    Array.blit run 0 idx ptr.(u) (Array.length run)
  done;
  { n; ptr; idx }

let build g =
  let n = Graph.nnodes g in
  let nl = Graph.nlabels g in
  {
    fwd = Array.init nl (of_neighbours n (Graph.succ_ids g));
    rev = Array.init nl (of_neighbours n (Graph.pred_ids g));
  }

module Tbl = Cache.Memo (struct
  type t = int

  let equal = Int.equal

  let hash = Hashtbl.hash
end)

let tbl : labeled Tbl.t =
  (* A few words per edge, but still large on the graphs this layer
     exists for; keep the LRU as shallow as the dense-adjacency memo. *)
  Tbl.create ~cap:16 "bulk.csr"

let of_graph g = Tbl.find_or_add tbl (Graph.uid g) (fun () -> build g)
