type mapping = int array

(* Search telemetry (no-ops unless [Obs.Metrics] is enabled).  A
   "candidate" is a target node examined for one pattern variable; a
   "backtrack" is an assignment undone after its subtree was exhausted —
   together they give the shape of the NP witness search that the
   wall-clock alone hides. *)
let m_candidates = Obs.Metrics.counter "morphism.candidates_tried"

let m_backtracks = Obs.Metrics.counter "morphism.backtracks"

exception Found

(* ------------------------------------------------------------------ *)
(* The solver is a CSP over the pattern variables: candidate domains
   are bitsets over target nodes, seeded from label profiles (and, under
   injectivity, per-label degree bounds); each assignment runs forward
   checking — intersecting unassigned neighbour domains with the
   successor/predecessor sets of the image on the interned-label
   adjacency — plus incremental all-different filtering (global
   injectivity and [distinct_pairs]) and incremental edge-group
   distinctness ([distinct_edge_groups], checked the moment both
   endpoints of a group edge are mapped).  The next variable is chosen
   by minimum remaining values with connected-first tie-breaking.
   Domain words and group insertions are undone through a trail.       *)
(* ------------------------------------------------------------------ *)

(* 63-bit words; node [u] lives in word [u / 63], bit [u mod 63]. *)
let bpw = 63

let nwords nt = (nt + bpw - 1) / bpw

let popcount_word w0 =
  let c = ref 0 in
  let w = ref w0 in
  while !w <> 0 do
    w := !w land (!w - 1);
    incr c
  done;
  !c

(* Growable int stack for the undo trails. *)
module Dyn = struct
  type t = { mutable a : int array; mutable len : int }

  let create () = { a = Array.make 64 0; len = 0 }

  let push d v =
    if d.len = Array.length d.a then begin
      let b = Array.make (2 * d.len) 0 in
      Array.blit d.a 0 b 0 d.len;
      d.a <- b
    end;
    d.a.(d.len) <- v;
    d.len <- d.len + 1
end

let iter ?(fixed = []) ?(distinct_pairs = []) ?(distinct_edge_groups = [])
    ?(injective = false) ~pattern ~target f =
  let np = Graph.nnodes pattern in
  let nt = Graph.nnodes target in
  (* -------- validation (before the np = 0 early return, so that
     out-of-range or conflicting [fixed] pairs are never silently
     accepted) -------- *)
  let assignment = Array.make (max np 1) (-1) in
  let ok = ref true in
  List.iter
    (fun (x, u) ->
      if x < 0 || x >= np || u < 0 || u >= nt then ok := false
      else if assignment.(x) >= 0 && assignment.(x) <> u then ok := false
      else assignment.(x) <- u)
    fixed;
  if injective then begin
    (* fixed assignments must be injective themselves *)
    let imgs = List.filter (fun u -> u >= 0) (Array.to_list assignment) in
    if List.length (List.sort_uniq compare imgs) <> List.length imgs then
      ok := false
  end;
  if !ok then begin
    if np = 0 then f [||]
    else if List.exists (fun (x, y) -> x = y) distinct_pairs then
      (* a reflexive distinctness constraint is unsatisfiable *)
      ()
    else begin
      let distinct = Array.make np [] in
      List.iter
        (fun (x, y) ->
          if x >= 0 && x < np && y >= 0 && y < np then begin
            distinct.(x) <- y :: distinct.(x);
            distinct.(y) <- x :: distinct.(y)
          end)
        distinct_pairs;
      (* -------- pattern adjacency on the target's label ids -------- *)
      let missing_label = ref false in
      let interned =
        List.filter_map
          (fun (x, a, y) ->
            match Graph.label_id target a with
            | Some ai -> Some (x, ai, y)
            | None ->
              missing_label := true;
              None)
          (Graph.edges pattern)
      in
      if not !missing_label then begin
        let out_e = Array.make np [] in
        let in_e = Array.make np [] in
        let self_loops = Array.make np [] in
        List.iter
          (fun (x, ai, y) ->
            if x = y then self_loops.(x) <- ai :: self_loops.(x)
            else begin
              out_e.(x) <- (ai, y) :: out_e.(x);
              in_e.(y) <- (ai, x) :: in_e.(y)
            end)
          interned;
        (* per-variable label requirement counts (self-loops included in
           the degree requirement) *)
        let count_by side =
          Array.init np (fun x ->
              let tbl = Hashtbl.create 4 in
              List.iter
                (fun ai ->
                  Hashtbl.replace tbl ai
                    (1 + Option.value ~default:0 (Hashtbl.find_opt tbl ai)))
                side.(x);
              Hashtbl.fold (fun ai c l -> (ai, c) :: l) tbl [])
        in
        let out_req =
          count_by
            (Array.init np (fun x ->
                 List.map fst out_e.(x) @ self_loops.(x)))
        in
        let in_req =
          count_by
            (Array.init np (fun x -> List.map fst in_e.(x) @ self_loops.(x)))
        in
        (* -------- candidate domains as bitsets -------- *)
        let nw = nwords nt in
        let domains = Array.init np (fun _ -> Array.make nw 0) in
        let profile_ok x u =
          List.for_all
            (fun (ai, c) ->
              let d = Array.length (Graph.succ_ids target u ai) in
              if injective then d >= c else d >= 1)
            out_req.(x)
          && List.for_all
               (fun (ai, c) ->
                 let d = Array.length (Graph.pred_ids target u ai) in
                 if injective then d >= c else d >= 1)
               in_req.(x)
          && List.for_all (fun ai -> Graph.mem_edge_id target u ai u) self_loops.(x)
        in
        for x = 0 to np - 1 do
          if assignment.(x) >= 0 then begin
            (* fixed: a singleton domain, bypassing the profile filter
               (byte-compatible with the previous solver: a fixed image
               is only rejected by real constraint violations) *)
            let u = assignment.(x) in
            if List.for_all (fun ai -> Graph.mem_edge_id target u ai u) self_loops.(x)
            then
              domains.(x).(u / bpw) <-
                domains.(x).(u / bpw) lor (1 lsl (u mod bpw))
          end
          else
            for u = 0 to nt - 1 do
              if profile_ok x u then
                domains.(x).(u / bpw) <-
                  domains.(x).(u / bpw) lor (1 lsl (u mod bpw))
            done
        done;
        (* -------- edge-group machinery -------- *)
        (* Group labels are interned separately from target labels: a
           group edge's label only needs to be comparable within its
           group, it need not occur in the target. *)
        let glabels = Hashtbl.create 8 in
        let glabel a =
          match Hashtbl.find_opt glabels a with
          | Some i -> i
          | None ->
            let i = Hashtbl.length glabels in
            Hashtbl.add glabels a i;
            i
        in
        let ngroups = List.length distinct_edge_groups in
        let group_used = Array.init ngroups (fun _ -> Hashtbl.create 16) in
        (* entries.(x): (group id, p, label id, q) for group edges with an
           endpoint [x]; an entry fires when its second endpoint is
           assigned.  [all_entries] keeps each entry once, for the seed
           pass over the fixed assignments. *)
        let entries = Array.make np [] in
        let all_entries = ref [] in
        List.iteri
          (fun gid group ->
            List.iter
              (fun (p, a, q) ->
                let e = (gid, p, glabel a, q) in
                all_entries := e :: !all_entries;
                entries.(p) <- e :: entries.(p);
                if p <> q then entries.(q) <- e :: entries.(q))
              group)
          distinct_edge_groups;
        let ngl = max 1 (Hashtbl.length glabels) in
        (* -------- trails -------- *)
        let dom_idx = Dyn.create () in
        (* flat index x * nw + w *)
        let dom_val = Dyn.create () in
        let grp_gid = Dyn.create () in
        let grp_key = Dyn.create () in
        let set_word x w v =
          Dyn.push dom_idx ((x * nw) + w);
          Dyn.push dom_val domains.(x).(w);
          domains.(x).(w) <- v
        in
        let undo_to dmark gmark =
          while dom_idx.Dyn.len > dmark do
            dom_idx.Dyn.len <- dom_idx.Dyn.len - 1;
            dom_val.Dyn.len <- dom_val.Dyn.len - 1;
            let i = dom_idx.Dyn.a.(dom_idx.Dyn.len) in
            domains.(i / nw).(i mod nw) <- dom_val.Dyn.a.(dom_val.Dyn.len)
          done;
          while grp_gid.Dyn.len > gmark do
            grp_gid.Dyn.len <- grp_gid.Dyn.len - 1;
            grp_key.Dyn.len <- grp_key.Dyn.len - 1;
            Hashtbl.remove
              group_used.(grp_gid.Dyn.a.(grp_gid.Dyn.len))
              grp_key.Dyn.a.(grp_key.Dyn.len)
          done
        in
        let domain_empty x =
          let e = ref true in
          for w = 0 to nw - 1 do
            if domains.(x).(w) <> 0 then e := false
          done;
          !e
        in
        let clear_bit x u =
          let w = u / bpw and b = 1 lsl (u mod bpw) in
          if domains.(x).(w) land b <> 0 then begin
            set_word x w (domains.(x).(w) land lnot b);
            domain_empty x
          end
          else false
        in
        (* scratch bitset for successor/predecessor sets *)
        let scratch = Array.make nw 0 in
        let intersect_with_nodes y (nodes : Graph.node array) =
          Array.fill scratch 0 nw 0;
          Array.iter
            (fun v -> scratch.(v / bpw) <- scratch.(v / bpw) lor (1 lsl (v mod bpw)))
            nodes;
          let nonempty = ref false in
          for w = 0 to nw - 1 do
            let nv = domains.(y).(w) land scratch.(w) in
            if nv <> domains.(y).(w) then set_word y w nv;
            if nv <> 0 then nonempty := true
          done;
          !nonempty
        in
        (* Record one determined group edge; [false] on a within-group
           collision. *)
        let fire_entry (gid, p, gl, q) =
          let mp = assignment.(p) and mq = assignment.(q) in
          if mp < 0 || mq < 0 then true
          else begin
            let key = (((mp * ngl) + gl) * nt) + mq in
            if Hashtbl.mem group_used.(gid) key then false
            else begin
              Hashtbl.add group_used.(gid) key ();
              Dyn.push grp_gid gid;
              Dyn.push grp_key key;
              true
            end
          end
        in
        (* [propagate_domains x u] prunes unassigned domains after
           [x := u]; edges, distinctness and group entries between two
           already-assigned variables are NOT checked here (the seed
           pass and [fire_entry] own those).  On [false] the caller
           undoes through the trail marks. *)
        let propagate_domains x u =
          (* all-different: injectivity and distinct_pairs remove the
             image from the relevant unassigned domains *)
          (not injective
          || begin
               let okk = ref true in
               for y = 0 to np - 1 do
                 if y <> x && assignment.(y) < 0 && clear_bit y u then
                   okk := false
               done;
               !okk
             end)
          && List.for_all
               (fun y -> assignment.(y) >= 0 || not (clear_bit y u))
               distinct.(x)
          (* forward checking on the pattern edges at [x] *)
          && List.for_all
               (fun (ai, y) ->
                 assignment.(y) >= 0
                 || intersect_with_nodes y (Graph.succ_ids target u ai))
               out_e.(x)
          && List.for_all
               (fun (ai, y) ->
                 assignment.(y) >= 0
                 || intersect_with_nodes y (Graph.pred_ids target u ai))
               in_e.(x)
        in
        (* Search-time propagation: the entries at [x] whose second
           endpoint [x] just became fire exactly once here. *)
        let propagate x u =
          List.for_all fire_entry entries.(x) && propagate_domains x u
        in
        (* adjacency in the pattern, for connected-first tie-breaking *)
        let neighbours =
          Array.init np (fun x ->
              List.sort_uniq compare
                (List.map snd out_e.(x) @ List.map snd in_e.(x)))
        in
        let adj_assigned = Array.make np 0 in
        let bump x d =
          List.iter (fun y -> adj_assigned.(y) <- adj_assigned.(y) + d) neighbours.(x)
        in
        let domain_size x =
          let c = ref 0 in
          for w = 0 to nw - 1 do
            c := !c + popcount_word domains.(x).(w)
          done;
          !c
        in
        (* minimum remaining values; prefer variables adjacent to the
           assigned region, then the smallest index (deterministic) *)
        let select () =
          let best = ref (-1) in
          let best_size = ref max_int in
          let best_adj = ref (-1) in
          for x = np - 1 downto 0 do
            if assignment.(x) < 0 then begin
              let s = domain_size x in
              let a = if adj_assigned.(x) > 0 then 1 else 0 in
              if
                s < !best_size
                || (s = !best_size && a >= !best_adj)
              then begin
                best := x;
                best_size := s;
                best_adj := a
              end
            end
          done;
          !best
        in
        (* -------- seed the fixed assignments (no candidate counting:
           they are given, not searched).  Constraints between two fixed
           variables never fire during the search, so they are checked
           here explicitly: pattern edges, distinct pairs, and each
           group entry exactly once. -------- *)
        let fixed_edges_ok =
          List.for_all
            (fun (x, ai, y) ->
              x = y (* self-loops are folded into the domain seed *)
              || assignment.(x) < 0
              || assignment.(y) < 0
              || Graph.mem_edge_id target assignment.(x) ai assignment.(y))
            interned
        in
        let fixed_distinct_ok =
          List.for_all
            (fun (x, y) ->
              x < 0 || x >= np || y < 0 || y >= np
              || assignment.(x) < 0
              || assignment.(y) < 0
              || assignment.(x) <> assignment.(y))
            distinct_pairs
        in
        let seeds_ok =
          fixed_edges_ok && fixed_distinct_ok
          && List.for_all fire_entry !all_entries
          && (Array.to_list assignment
             |> List.mapi (fun x u -> (x, u))
             |> List.for_all (fun (x, u) ->
                    u < 0
                    || begin
                         (* the domain may have been pruned by an earlier
                            seed's propagation: the image must survive *)
                         domains.(x).(u / bpw) land (1 lsl (u mod bpw)) <> 0
                         &&
                         (bump x 1;
                          propagate_domains x u)
                       end))
        in
        if seeds_ok then begin
          let nfixed =
            Array.fold_left (fun c u -> if u >= 0 then c + 1 else c) 0 assignment
          in
          Guard.checkpoint "morphism.search";
          let rec go nassigned =
            if nassigned = np then f (Array.copy assignment)
            else begin
              let x = select () in
              let words = Array.copy domains.(x) in
              for w = 0 to nw - 1 do
                let b = ref words.(w) in
                while !b <> 0 do
                  let i = ref 0 in
                  while !b land (1 lsl !i) = 0 do
                    incr i
                  done;
                  b := !b land lnot (1 lsl !i);
                  let u = (w * bpw) + !i in
                  Guard.checkpoint "morphism.search";
                  Obs.Metrics.incr m_candidates;
                  let dmark = dom_idx.Dyn.len and gmark = grp_gid.Dyn.len in
                  assignment.(x) <- u;
                  bump x 1;
                  if propagate x u then begin
                    go (nassigned + 1);
                    Obs.Metrics.incr m_backtracks
                  end;
                  undo_to dmark gmark;
                  bump x (-1);
                  assignment.(x) <- -1
                done
              done
            end
          in
          go nfixed
        end
      end
    end
  end

let find ?fixed ?distinct_pairs ?distinct_edge_groups ?injective ~pattern
    ~target () =
  let result = ref None in
  (try
     iter ?fixed ?distinct_pairs ?distinct_edge_groups ?injective ~pattern
       ~target (fun m ->
         result := Some m;
         raise Found)
   with Found -> ());
  !result

let exists ?fixed ?distinct_pairs ?distinct_edge_groups ?injective ~pattern
    ~target () =
  find ?fixed ?distinct_pairs ?distinct_edge_groups ?injective ~pattern ~target
    ()
  <> None

let count ?fixed ?distinct_pairs ?distinct_edge_groups ?injective ~pattern
    ~target () =
  let n = ref 0 in
  iter ?fixed ?distinct_pairs ?distinct_edge_groups ?injective ~pattern ~target
    (fun _ -> incr n);
  !n

let is_homomorphism ~pattern ~target m =
  Array.length m = Graph.nnodes pattern
  && List.for_all
       (fun (u, a, v) -> Graph.mem_edge target m.(u) a m.(v))
       (Graph.edges pattern)

let subgraph_iso ~pattern ~target = exists ~injective:true ~pattern ~target ()

let exists_non_contracting ~pattern ~target =
  let distinct_pairs =
    List.filter_map
      (fun (u, _, v) -> if u <> v then Some (u, v) else None)
      (Graph.edges pattern)
  in
  exists ~distinct_pairs ~pattern ~target ()
