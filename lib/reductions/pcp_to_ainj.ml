type encoding = {
  q1 : Crpq.t;
  q2 : Crpq.t;
  q2_cycle : Crpq.t;
  q2_path : Crpq.t;
  instance : Pcp.t;
}

(* ------------------------------------------------------------------ *)
(* Symbols                                                             *)
(* ------------------------------------------------------------------ *)

let idx i = Printf.sprintf "I%d" i

let hash = "#"

let hash_inf = "#oo"

let box = "box"

let dollar = "$"

let dollar' = "$'"

let dollar_inf = "$oo"

let blk = "blk"

let blk' = "blk'"

let h = Word.hat

let sym = Regex.sym

let alt_syms syms = Regex.alt_list (List.map sym syms)

let rec power e n = if n <= 0 then Regex.eps else Regex.seq e (power e (n - 1))

let power_range e lo hi =
  Regex.alt_list (List.init (hi - lo + 1) (fun i -> power e (lo + i)))

(* ------------------------------------------------------------------ *)
(* The words U_i, V_i                                                  *)
(* ------------------------------------------------------------------ *)

let letters_of_string s = List.init (String.length s) (fun i -> String.make 1 s.[i])

let u_word (inst : Pcp.t) i =
  let u = fst (List.nth inst.Pcp.pairs (i - 1)) in
  let letters = letters_of_string u in
  let k = List.length letters in
  List.concat
    (List.mapi
       (fun j a -> if j = k - 1 then [ a; dollar'; blk' ] else [ a; dollar; blk ])
       letters)

let v_word (inst : Pcp.t) i =
  let v = snd (List.nth inst.Pcp.pairs (i - 1)) in
  let letters = List.rev (letters_of_string v) in
  (* first letter of the reversed word gets ■' $'; the rest get ■ $ *)
  List.concat
    (List.mapi
       (fun j a ->
         if j = 0 then [ h blk'; h dollar'; h a ] else [ h blk; h dollar; h a ])
       letters)

let u_tilde inst i =
  match List.rev (u_word inst i) with
  | last :: rev_rest when last = blk' -> List.rev rev_rest
  | _ -> assert false

let v_tilde inst i =
  match v_word inst i with
  | first :: rest when first = h blk' -> rest
  | _ -> assert false

(* ------------------------------------------------------------------ *)
(* Queries                                                             *)
(* ------------------------------------------------------------------ *)

let encode (inst : Pcp.t) =
  List.iter
    (fun c ->
      if not (c >= 'a' && c <= 'z') then
        invalid_arg "Pcp_to_ainj.encode: PCP alphabet must be lowercase letters")
    (Pcp.alphabet inst);
  let ell = List.length inst.Pcp.pairs in
  let indices = List.init ell (fun i -> i + 1) in
  let i_syms = List.map idx indices in
  let sigma = List.map (String.make 1) (Pcp.alphabet inst) in
  let cI = alt_syms i_syms in
  let cIh = alt_syms (List.map h i_syms) in
  let cS = alt_syms sigma in
  let cSh = alt_syms (List.map h sigma) in
  let u_words = List.map (u_word inst) indices in
  let v_words = List.map (v_word inst) indices in
  let u_tildes = List.map (u_tilde inst) indices in
  let v_tildes = List.map (v_tilde inst) indices in
  let n_max = List.fold_left (fun m w -> max m (List.length w)) 1 u_words in
  (* Q1 languages *)
  let l_i = Regex.plus (Regex.seq_list [ sym box; sym hash; cI ]) in
  let l_i_hat = Regex.plus (Regex.seq_list [ cIh; sym (h hash); sym (h box) ]) in
  let l_a = Regex.plus (Regex.alt_list (List.map Regex.word u_words)) in
  let l_a_hat = Regex.plus (Regex.alt_list (List.map Regex.word v_words)) in
  let q1 =
    Crpq.make ~free:[]
      [
        Crpq.atom "y1" l_i "x";
        Crpq.atom "y2" l_a_hat "x";
        Crpq.atom "x" l_i_hat "z1";
        Crpq.atom "x" l_a "z2";
        Crpq.atom "x" (sym box) "x'";
        Crpq.atom "x" (sym (h blk)) "x'";
        Crpq.atom "x'" (sym (h box)) "x";
        Crpq.atom "x'" (sym blk) "x";
        Crpq.atom "y1'" (sym hash_inf) "y1";
        Crpq.atom "y2'" (sym (h dollar_inf)) "y2";
        Crpq.atom "z1" (sym (h hash_inf)) "z1'";
        Crpq.atom "z2" (sym dollar_inf) "z2'";
      ]
  in
  (* forbidden-pattern languages (Claim D.1) *)
  let sum_pairs f =
    Regex.alt_list
      (List.concat_map
         (fun i -> List.filter_map (fun j -> if i <> j then Some (f i j) else None) indices)
         indices)
  in
  let k_ii =
    Regex.alt_list
      [
        Regex.seq cI cIh;
        Regex.seq (sym hash_inf) cIh;
        Regex.seq cI (sym (h hash_inf));
      ]
  in
  (* Repaired M_IÎ (see DESIGN.md): the paper's two ladder-enforcing
     detectors # I Î #̂ and □ □̂ presuppose the condition-(1) merges,
     which close an inconsistent cycle in the merge-constraint graph; in
     the repaired system index agreement at depth 1 is detected directly
     and deeper agreement flows through the letter ladder. *)
  let m_ii =
    Regex.alt_list
      [
        sum_pairs (fun i j -> Regex.word [ idx i; h (idx j) ]);
        Regex.seq cIh (sym hash);
        Regex.seq (sym (h hash)) cI;
        Regex.seq (sym hash_inf) cIh;
        Regex.seq cI (sym (h hash_inf));
      ]
  in
  let k_ia =
    Regex.alt_list
      [
        Regex.seq cI cS;
        Regex.seq (sym hash_inf) cS;
        Regex.seq cI (sym dollar_inf);
      ]
  in
  let m_ia =
    let mix = Regex.alt_list [ cS; sym dollar; sym dollar'; sym blk ] in
    let mix_no_d' = Regex.alt_list [ cS; sym dollar; sym blk ] in
    Regex.alt_list
      [
        Regex.seq mix cI;
        Regex.seq (power_range mix_no_d' 1 n_max) (sym hash);
        sum_pairs (fun i j ->
            Regex.seq (sym (idx i)) (Regex.word (List.nth u_tildes (j - 1))));
        Regex.seq_list
          [ sym hash; cI; Regex.alt_list (List.map Regex.word u_tildes) ];
        Regex.word [ box; blk' ];
        Regex.seq (sym hash_inf) cS;
        Regex.seq cI (sym dollar_inf);
      ]
  in
  let k_ai =
    Regex.alt_list
      [
        Regex.seq cSh cIh;
        Regex.seq (sym (h dollar_inf)) cIh;
        Regex.seq cSh (sym (h hash_inf));
      ]
  in
  let m_ai =
    let mixh = Regex.alt_list [ cSh; sym (h dollar); sym (h dollar'); sym (h blk) ] in
    let mixh_no_d' = Regex.alt_list [ cSh; sym (h dollar); sym (h blk) ] in
    Regex.alt_list
      [
        Regex.seq cIh mixh;
        Regex.seq (sym (h hash)) cSh;
        Regex.seq_list [ cIh; sym (h hash); mixh_no_d' ];
        sum_pairs (fun i j ->
            Regex.seq (Regex.word (List.nth v_tildes (j - 1))) (sym (h (idx i))));
        Regex.seq_list
          [ Regex.alt_list (List.map Regex.word v_tildes); cIh; sym (h hash) ];
        Regex.word [ h blk'; h box ];
        Regex.seq (sym (h dollar_inf)) cIh;
        Regex.seq cSh (sym (h hash_inf));
      ]
  in
  let k_aa =
    Regex.alt_list
      [
        Regex.seq cSh cS;
        Regex.seq (sym (h dollar_inf)) cS;
        Regex.seq cSh (sym dollar_inf);
      ]
  in
  let m_aa =
    let dollars = Regex.alt (sym dollar) (sym dollar') in
    let dollars_h = Regex.alt (sym (h dollar)) (sym (h dollar')) in
    let blks = Regex.alt (sym blk) (sym blk') in
    let blks_h = Regex.alt (sym (h blk)) (sym (h blk')) in
    let mismatched =
      Regex.alt_list
        (List.concat_map
           (fun a ->
             List.filter_map
               (fun b -> if a <> b then Some (Regex.word [ h a; b ]) else None)
               sigma)
           sigma)
    in
    Regex.alt_list
      [
        mismatched;
        Regex.seq cS dollars_h;
        Regex.seq dollars cSh;
        Regex.seq_list [ dollars_h; cSh; cS; dollars ];
        Regex.seq blks_h blks;
        Regex.seq (sym (h dollar_inf)) cS;
        Regex.seq cSh (sym dollar_inf);
      ]
  in
  let k_circ = Regex.alt_list [ k_ii; k_ia; k_ai; k_aa ] in
  let m_arrow = Regex.alt_list [ m_ii; m_ia; m_ai; m_aa ] in
  let k_dummy =
    Regex.seq
      (Regex.alt_list [ sym box; sym (h blk); sym (h blk') ])
      (Regex.alt_list [ sym (h box); sym blk; sym blk' ])
  in
  let m_dummy = Regex.alt_list [ sym (h hash); sym dollar; sym dollar' ] in
  let l_lang =
    let mix = Regex.alt_list [ cS; sym dollar; sym dollar'; sym blk ] in
    let dollars = Regex.alt (sym dollar) (sym dollar') in
    let dollars_h = Regex.alt (sym (h dollar)) (sym (h dollar')) in
    let blks_h = Regex.alt (sym (h blk)) (sym (h blk')) in
    let v_tilde_alt = Regex.alt_list (List.map Regex.word v_tildes) in
    Regex.alt_list
      [
        Regex.eps;
        cI;
        Regex.seq (sym hash) cI;
        Regex.seq (sym (h hash)) cI;
        Regex.seq_list [ sym box; sym hash; cI ];
        sym hash_inf;
        Regex.seq mix cI;
        cSh;
        Regex.seq (sym (h hash)) cSh;
        v_tilde_alt;
        Regex.seq (sym (h blk')) v_tilde_alt;
        sym (h dollar_inf);
        Regex.seq dollars cSh;
        Regex.seq dollars_h cSh;
        Regex.seq_list [ blks_h; dollars_h; cSh ];
      ]
  in
  let q2 =
    Crpq.make ~free:[]
      [
        Crpq.atom "x" (Regex.alt k_circ k_dummy) "x";
        Crpq.atom "y" l_lang "x";
        Crpq.atom "y" (Regex.alt m_arrow m_dummy) "z";
      ]
  in
  let q2_cycle = Crpq.make ~free:[] [ Crpq.atom "x" k_circ "x" ] in
  let q2_path = Crpq.make ~free:[] [ Crpq.atom "y" m_arrow "z" ] in
  (* debug validation (compiled away by -noassert): the encoding only
     works if the hatted copy stays apart from the base alphabet, the
     letters stay apart from the gadget separators, and the gadgets
     form connected Boolean queries *)
  assert (
    let separators = [ hash; hash_inf; box; dollar; dollar'; dollar_inf; blk; blk' ] in
    let base = sigma @ i_syms @ separators in
    Validate.check ~name:"Pcp_to_ainj.encode"
      (Validate.containment_encoding
         ~disjoint:
           [
             ("PCP letters and gadget separators", sigma, separators);
             ("base and hatted alphabets", base, List.map h base);
           ]
         ~connected_queries:[ ("Q1", q1); ("Q2", q2) ]
         ~q1 ~q2 ()));
  { q1; q2; q2_cycle; q2_path; instance = inst }

(* ------------------------------------------------------------------ *)
(* Expansions                                                          *)
(* ------------------------------------------------------------------ *)

let solution_words inst seq =
  let w_i =
    List.concat (List.rev_map (fun i -> [ box; hash; idx i ]) seq)
  in
  let w_i_hat =
    List.concat (List.map (fun i -> [ h (idx i); h hash; h box ]) seq)
  in
  let w_a = List.concat (List.map (u_word inst) seq) in
  let w_a_hat = List.concat (List.rev_map (v_word inst) seq) in
  (w_i, w_a_hat, w_i_hat, w_a)

(* positions of the four long atoms inside the (sorted) atom list *)
let long_atom_indices (q1 : Crpq.t) =
  let find src dst =
    let rec go i = function
      | [] -> invalid_arg "Pcp_to_ainj: atom not found"
      | (a : Crpq.atom) :: rest ->
        if a.Crpq.src = src && a.Crpq.dst = dst && not (Regex.is_finite a.Crpq.lang)
        then i
        else go (i + 1) rest
    in
    go 0 q1.Crpq.atoms
  in
  (find "y1" "x", find "y2" "x", find "x" "z1", find "x" "z2")

let base_expansion enc seq =
  let w_i, w_a_hat, w_i_hat, w_a = solution_words enc.instance seq in
  let profile =
    Array.of_list
      (List.map
         (fun (a : Crpq.atom) ->
           if Regex.is_finite a.Crpq.lang then begin
             match Regex.words_of_finite a.Crpq.lang with
             | [ w ] -> w
             | _ -> invalid_arg "Pcp_to_ainj: unexpected guard language"
           end
           else
             match a.Crpq.src, a.Crpq.dst with
             | "y1", "x" -> w_i
             | "y2", "x" -> w_a_hat
             | "x", "z1" -> w_i_hat
             | "x", "z2" -> w_a
             | _ -> invalid_arg "Pcp_to_ainj: unexpected long atom")
         enc.q1.Crpq.atoms)
  in
  Expansion.expand enc.q1 profile

let unmerged_expansion enc seq = base_expansion enc seq

let pos_var (q1 : Crpq.t) profile ai p =
  let a = List.nth q1.Crpq.atoms ai in
  let w = profile.(ai) in
  if p = 0 then a.Crpq.src
  else if p = List.length w then a.Crpq.dst
  else Expansion.internal_var ai p

let well_formed_expansion enc seq =
  let e = base_expansion enc seq in
  let q1 = enc.q1 in
  let profile = e.Expansion.profile in
  let ai_i, ai_ah, ai_ih, ai_a = long_atom_indices q1 in
  let k = List.length seq in
  let var = pos_var q1 profile in
  let eqs = ref [] in
  let add a b = eqs := (a, b) :: !eqs in
  (* NOTE (documented in DESIGN.md): Appendix D additionally merges the
     I-ladder with the Î-ladder (condition 1).  Together with conditions
     2-4 this closes a cycle in the constraint graph that identifies two
     internal variables of the same letter atom whenever the u/v prefix
     lengths of the solution differ, which atom-injectivity forbids.  We
     therefore keep the acyclic part: block ties (conditions 2, 3) and
     the letter ladder (condition 4). *)
  ignore k;
  (* I-a condition: block boundaries of w_a *)
  let u_lens = List.map (fun i -> List.length (u_word enc.instance i)) seq in
  let offsets =
    (* cumulative block end positions in w_a *)
    List.rev
      (snd
         (List.fold_left (fun (acc, l) len -> (acc + len, (acc + len) :: l)) (0, []) u_lens))
  in
  List.iteri
    (fun j0 off_end ->
      let j = j0 + 1 in
      (* s'_j just before the trailing blk', r'_j at the block end *)
      add (var ai_i ((3 * (k - j)) + 1)) (var ai_a (off_end - 1));
      add (var ai_i (3 * (k - j))) (var ai_a off_end))
    offsets;
  (* â-Î condition: blocks of ŵ_a, reading order i_k .. i_1 *)
  let v_lens_rev = List.rev_map (fun i -> List.length (v_word enc.instance i)) seq in
  (* blockstart_j for j = k down to 1 *)
  let blockstarts =
    (* reading order is j = k, k-1, ..., 1 *)
    let rec go acc start = function
      | [] -> acc
      | len :: rest -> go ((start, len) :: acc) (start + len) rest
    in
    (* returns list for j = 1 .. k *)
    go [] 0 v_lens_rev
  in
  List.iteri
    (fun j0 (start, len) ->
      let j = j0 + 1 in
      (* s_j after the leading ^blk' of block j; r_j at the block start *)
      add (var ai_ah (start + 1)) (var ai_ih ((3 * (j - 1)) + 2));
      add (var ai_ah start) (var ai_ih (3 * j));
      ignore len)
    blockstarts;
  (* â-a condition: letter-level triples *)
  let n = List.length profile.(ai_a) / 3 in
  for m = 1 to n do
    add (var ai_ah ((3 * (n - m)) + 1)) (var ai_a ((3 * (m - 1)) + 2));
    add (var ai_ah (3 * (n - m))) (var ai_a (3 * m))
  done;
  Expansion.merge e !eqs

let mismatched_expansion enc seq1 seq2 =
  if List.length seq1 <> List.length seq2 then
    invalid_arg "Pcp_to_ainj.mismatched_expansion: sequences of equal length expected";
  let e1 = base_expansion enc seq1 in
  let e2 = base_expansion enc seq2 in
  let ai_i, _, ai_ih, _ = long_atom_indices enc.q1 in
  let profile = Array.copy e1.Expansion.profile in
  profile.(ai_ih) <- e2.Expansion.profile.(ai_ih);
  ignore ai_i;
  Expansion.expand enc.q1 profile

let is_counterexample enc e = Containment.is_counterexample Semantics.A_inj enc.q2 e

let union_agrees enc e =
  let g, _ = Expansion.to_graph e in
  let via_q2 = Eval.eval_bool Semantics.A_inj enc.q2 g in
  let via_union =
    Eval.eval_bool Semantics.A_inj enc.q2_cycle g
    || Eval.eval_bool Semantics.A_inj enc.q2_path g
  in
  via_q2 = via_union

let verify_candidate inst seq =
  let enc = encode inst in
  let e = well_formed_expansion enc seq in
  (is_counterexample enc e, Pcp.check inst seq)
