type encoding = {
  q1 : Crpq.t;
  q2 : Crpq.t;
  instance : Qbf.t;
}

let xlbl i = Printf.sprintf "x%d" i

let ylbl j = Printf.sprintf "y%d" j

let sym = Regex.sym

(* D-gadget variable names *)
let d_ i = Printf.sprintf "D.d%d" i

let m_pos i = Printf.sprintf "D.m%d" i

let w_pos i = Printf.sprintf "D.w%d" i

let m_neg i = Printf.sprintf "D.m'%d" i

let w_neg i = Printf.sprintf "D.w'%d" i

let yt j = Printf.sprintf "Yt%d" j

let yf j = Printf.sprintf "Yf%d" j

let encode (instance : Qbf.t) =
  let n = instance.Qbf.n_x and l = instance.Qbf.n_y in
  let spine = List.init 5 (fun i -> Printf.sprintf "p%d" i) in
  let spine_atoms =
    List.map2
      (fun p p' -> Crpq.atom p (sym "a") p')
      [ "p0"; "p1"; "p2"; "p3"; "p4" ]
      [ "p1"; "p2"; "p3"; "p4"; "p4" ]
    |> List.filteri (fun i _ -> i < 4)
  in
  (* E-gadget anchored at [root], with fresh prefix [pfx] *)
  let e_gadget pfx root =
    let xpart =
      List.concat
        (List.init n (fun i0 ->
             let i = i0 + 1 in
             let a = Printf.sprintf "%s.a%d" pfx i in
             let b = Printf.sprintf "%s.b%d" pfx i in
             let c = Printf.sprintf "%s.c%d" pfx i in
             let b' = Printf.sprintf "%s.b'%d" pfx i in
             let c' = Printf.sprintf "%s.c'%d" pfx i in
             [
               Crpq.atom root (sym (xlbl i)) a;
               Crpq.atom a (sym "t") b;
               Crpq.atom b (sym "t") c;
               Crpq.atom a (sym "f") b';
               Crpq.atom b' (sym "f") c';
             ]))
    in
    let ypart =
      List.concat
        (List.init l (fun j0 ->
             let j = j0 + 1 in
             let g = Printf.sprintf "%s.g%d" pfx j in
             [
               Crpq.atom root (sym (ylbl j)) g;
               Crpq.atom g (sym "t") (yt j);
               Crpq.atom g (sym "f") (yt j);
               Crpq.atom g (sym "t") (yf j);
               Crpq.atom g (sym "f") (yf j);
             ]))
    in
    xpart @ ypart
  in
  let d_gadget root =
    let xpart =
      List.concat
        (List.init n (fun i0 ->
             let i = i0 + 1 in
             [
               Crpq.atom root (sym (xlbl i)) (d_ i);
               Crpq.atom (d_ i) (sym "t") (m_pos i);
               Crpq.atom (m_pos i) (sym "t") (w_pos i);
               Crpq.atom (d_ i) (sym "f") (m_neg i);
               Crpq.atom (m_neg i) (sym "f") (w_neg i);
             ]))
    in
    let ypart =
      List.concat
        (List.init l (fun j0 ->
             let j = j0 + 1 in
             let h = Printf.sprintf "D.h%d" j in
             [
               Crpq.atom root (sym (ylbl j)) h;
               Crpq.atom h (sym "t") (yt j);
               Crpq.atom h (sym "f") (yf j);
             ]))
    in
    xpart @ ypart
  in
  let base_atoms =
    spine_atoms
    @ e_gadget "E0" "p0"
    @ e_gadget "E1" "p1"
    @ d_gadget "p2"
    @ e_gadget "E3" "p3"
    @ e_gadget "E4" "p4"
  in
  ignore spine;
  (* r-saturation: r-atoms between all ordered pairs of distinct
     variables except the two allowed merge pairs per universal
     variable *)
  let base_q = Crpq.make ~free:[] base_atoms in
  let vars = Crpq.vars base_q in
  let allowed =
    List.concat
      (List.init n (fun i0 ->
           let i = i0 + 1 in
           [ (d_ i, w_pos i); (d_ i, w_neg i) ]))
  in
  let allowed_pair x y = List.mem (x, y) allowed || List.mem (y, x) allowed in
  let r_atoms =
    List.concat_map
      (fun x ->
        List.filter_map
          (fun y ->
            if String.compare x y < 0 && not (allowed_pair x y) then
              Some (Crpq.atom x (sym "r") y)
            else None)
          vars)
      vars
  in
  let q1 = Crpq.make ~free:[] (base_atoms @ r_atoms) in
  (* Q2: one DAG per clause *)
  (* the windows of the length-4 spine force one literal of a
     three-literal chain into the D-gadget; pad shorter clauses by
     repeating their last literal *)
  let pad clause =
    match clause with
    | [ l ] -> [ l; l; l ]
    | [ l1; l2 ] -> [ l1; l2; l2 ]
    | _ -> clause
  in
  let q2_atoms =
    List.concat
      (List.mapi
         (fun ci clause ->
           let clause = pad clause in
           let root j = Printf.sprintf "c%d.%d" ci j in
           let chain =
             List.init
               (List.length clause - 1)
               (fun j -> Crpq.atom (root j) (sym "a") (root (j + 1)))
           in
           let lits =
             List.concat
               (List.mapi
                  (fun j lit ->
                    let v1 = Printf.sprintf "c%d.%dv" ci j in
                    match lit with
                    | Qbf.X (k, positive) ->
                      let v2 = Printf.sprintf "c%d.%dw" ci j in
                      let w = if positive then [ "t"; "t" ] else [ "f"; "f" ] in
                      [
                        Crpq.atom (root j) (sym (xlbl k)) v1;
                        Crpq.atom v1 (Regex.word w) v2;
                      ]
                    | Qbf.Y (k, positive) ->
                      let lbl = if positive then "t" else "f" in
                      [
                        Crpq.atom (root j) (sym (ylbl k)) v1;
                        Crpq.atom v1 (sym lbl) (Printf.sprintf "ytf%d" k);
                      ])
                  clause)
           in
           chain @ lits)
         instance.Qbf.clauses)
  in
  let q2 = Crpq.make ~free:[] q2_atoms in
  (* debug validation (compiled away by -noassert): variable labels must
     stay apart from the structural labels, and Q1 (spine + E/D gadgets)
     must be one connected CQ; Q2 is one DAG per clause and is allowed
     to be disconnected *)
  assert (
    let var_labels =
      List.init n (fun i -> xlbl (i + 1)) @ List.init l (fun j -> ylbl (j + 1))
    in
    Validate.check ~name:"Qbf_to_ainj.encode"
      (Validate.containment_encoding
         ~disjoint:[ ("variable labels and structural labels", var_labels, [ "a"; "t"; "f"; "r" ]) ]
         ~connected_queries:[ ("Q1", q1) ]
         ~q1 ~q2 ()));
  { q1; q2; instance }

let expansion_of_assignment enc assignment =
  let q1 = enc.q1 in
  let profile =
    Array.of_list
      (List.map
         (fun (a : Crpq.atom) ->
           match Regex.words_of_finite a.Crpq.lang with
           | [ w ] -> w
           | _ -> invalid_arg "Qbf_to_ainj: unexpected language")
         q1.Crpq.atoms)
  in
  let e = Expansion.expand q1 profile in
  let n = enc.instance.Qbf.n_x in
  let eqs =
    List.init n (fun i0 ->
        let i = i0 + 1 in
        if assignment.(i) then (d_ i, w_neg i) else (d_ i, w_pos i))
  in
  Expansion.merge e eqs

let verify instance =
  let enc = encode instance in
  let via_queries =
    match Containment.decide Semantics.A_inj enc.q1 enc.q2 with
    | Containment.Contained -> true
    | Containment.Not_contained _ -> false
    | Containment.Unknown _ -> invalid_arg "Qbf_to_ainj.verify: undecided"
  in
  (via_queries, Qbf.is_valid instance)
