type encoding = {
  q1 : Crpq.t;
  q2 : Crpq.t;
  instance : Gcp.t;
}

(* both-direction E-atoms of an undirected graph over a variable prefix *)
let graph_atoms prefix edges =
  List.concat_map
    (fun (u, v) ->
      let x = Printf.sprintf "%s%d" prefix u and y = Printf.sprintf "%s%d" prefix v in
      [ Crpq.atom x (Regex.sym "E") y; Crpq.atom y (Regex.sym "E") x ])
    edges

let clique_edges n = List.concat (List.init n (fun u -> List.init u (fun v -> (u, v))))

let vars_of prefix count = List.init count (fun i -> Printf.sprintf "%s%d" prefix i)

let loop_atoms lang vars = List.map (fun x -> Crpq.atom x lang x) vars

(* all-pairs #-atoms from every source variable to every target variable *)
let hash_atoms srcs dsts =
  List.concat_map (fun x -> List.map (fun y -> Crpq.atom x (Regex.sym "#") y) dsts) srcs

let encode (instance : Gcp.t) =
  let n = instance.Gcp.n in
  let kn = clique_edges n in
  (* Q1: (12)-ext(K_n) -#-> (1+2)-ext(Q_G) -#-> (12)-ext(K_n) *)
  let left_vars = vars_of "l" n in
  let mid_vars = vars_of "g" instance.Gcp.nvertices in
  let right_vars = vars_of "r" n in
  let one_or_two = Regex.alt (Regex.sym "1") (Regex.sym "2") in
  let q1_atoms =
    graph_atoms "l" kn
    @ loop_atoms (Regex.sym "1") left_vars
    @ loop_atoms (Regex.sym "2") left_vars
    @ graph_atoms "g" instance.Gcp.edges
    @ loop_atoms one_or_two mid_vars
    @ graph_atoms "r" kn
    @ loop_atoms (Regex.sym "1") right_vars
    @ loop_atoms (Regex.sym "2") right_vars
    @ hash_atoms left_vars mid_vars
    @ hash_atoms mid_vars right_vars
  in
  (* Q2: 1-ext(K_n) -#-> 2-ext(K_n), a CQ *)
  let a_vars = vars_of "A" n in
  let b_vars = vars_of "B" n in
  let q2_atoms =
    graph_atoms "A" kn
    @ loop_atoms (Regex.sym "1") a_vars
    @ graph_atoms "B" kn
    @ loop_atoms (Regex.sym "2") b_vars
    @ hash_atoms a_vars b_vars
  in
  let q1 = Crpq.make ~free:[] q1_atoms in
  let q2 = Crpq.make ~free:[] q2_atoms in
  (* debug validation (compiled away by -noassert): the three blocks of
     Q1 must be glued into one connected gadget by the #-atoms, and the
     partition labels must stay apart from the edge/separator labels *)
  assert (
    Validate.check ~name:"Gcp_to_qinj.encode"
      (Validate.containment_encoding
         ~disjoint:[ ("partition labels and edge/separator labels", [ "1"; "2" ], [ "E"; "#" ]) ]
         ~connected_queries:[ ("Q1", q1); ("Q2", q2) ]
         ~q1 ~q2 ()));
  { q1; q2; instance }

let expansion_of_partition enc mask =
  let q1 = enc.q1 in
  let profile =
    Array.of_list
      (List.map
         (fun (a : Crpq.atom) ->
           match a.Crpq.lang with
           | Regex.Alt (Regex.Sym "1", Regex.Sym "2") ->
             (* a middle-gadget loop g<i>: pick by the mask *)
             let i =
               int_of_string
                 (String.sub a.Crpq.src 1 (String.length a.Crpq.src - 1))
             in
             if mask.(i) then [ "1" ] else [ "2" ]
           | lang -> begin
             match Regex.words_of_finite lang with
             | [ w ] -> w
             | _ -> invalid_arg "Gcp_to_qinj: unexpected atom language"
           end)
         q1.Crpq.atoms)
  in
  Expansion.expand q1 profile

let verify instance =
  let enc = encode instance in
  let via_queries =
    match Containment.decide Semantics.Q_inj enc.q1 enc.q2 with
    | Containment.Contained -> false (* contained: no valid partition *)
    | Containment.Not_contained _ -> true
    | Containment.Unknown _ -> invalid_arg "Gcp_to_qinj.verify: undecided"
  in
  (via_queries, Gcp.decide instance)
