(** Non-deterministic finite automata without epsilon transitions.

    NFAs are the operational representation of CRPQ atom languages: path
    searches run the product of a graph with an NFA, and the containment
    algorithm of Theorem 5.1 works with the disjoint union {m A_{Q_2}} of
    the NFAs of the right-hand query, made complete and co-complete. *)

type state = int

type t = {
  nstates : int;
  initials : state list;
  finals : bool array;  (** length [nstates] *)
  delta : (Word.symbol * state) list array;
      (** out-transitions per state; no duplicates *)
}

(** Thompson construction followed by epsilon elimination.  Memoized on
    the regex (see {!Cache}): callers receive shared automata and must
    not mutate the [finals]/[delta] arrays. *)
val of_regex : Regex.t -> t

(** Hash-consing id: structurally equal automata map to the same small
    integer, used as a cheap memo key by [Dfa] and [Lang_ops]. *)
val key : t -> int

(** All symbols labelling some transition. *)
val alphabet : t -> Word.symbol list

val is_final : t -> state -> bool

val final_states : t -> state list

(** [next_set a s x] is the set of successors of the state set [s] on
    symbol [x]. *)
val next_set : t -> state list -> Word.symbol -> state list

val accepts : t -> Word.t -> bool

(** Does the automaton accept the empty word? *)
val accepts_eps : t -> bool

val is_empty : t -> bool

val shortest_word : t -> Word.t option

(** All accepted words of length at most [max_len], without duplicates,
    in length-lexicographic order. *)
val enumerate : max_len:int -> t -> Word.t list

(** Intersection by product. *)
val product : t -> t -> t

(** Disjoint union.  The states of the second automaton are shifted by
    [nstates] of the first. *)
val union : t -> t -> t

(** Disjoint union of several automata; returns the union together with
    the state offset of each component. *)
val union_list : t list -> t * int array

val reverse : t -> t

(** Keep only states that are reachable and co-reachable. *)
val trim : t -> t

(** [complete ~alphabet a] adds a non-final sink so that every state has
    an outgoing transition for every symbol of [alphabet]. *)
val complete : alphabet:Word.symbol list -> t -> t

(** [co_complete ~alphabet a] adds a fresh non-initial, non-final source
    state so that every state has an incoming transition for every symbol
    of [alphabet].  The language is unchanged. *)
val co_complete : alphabet:Word.symbol list -> t -> t

val pp : Format.formatter -> t -> unit
