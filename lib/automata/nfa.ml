(* Search telemetry (no-ops unless [Obs.Metrics] is enabled): the product
   and emptiness constructions are where automata work grows with the
   state space, so their sizes are the measurable quantity. *)
let m_product_states = Obs.Metrics.counter "nfa.product_states"

let m_emptiness_states = Obs.Metrics.counter "nfa.emptiness_states"

type state = int

type t = {
  nstates : int;
  initials : state list;
  finals : bool array;
  delta : (Word.symbol * state) list array;
}

module IntSet = Set.Make (Int)

let dedup_sorted l = List.sort_uniq Stdlib.compare l

(* ------------------------------------------------------------------ *)
(* Thompson construction with epsilon transitions, then elimination.   *)
(* ------------------------------------------------------------------ *)

type builder = {
  mutable count : int;
  mutable sym_edges : (state * Word.symbol * state) list;
  mutable eps_edges : (state * state) list;
}

let fresh b =
  let q = b.count in
  b.count <- b.count + 1;
  q

let trim_unreachable a =
  (* drop states unreachable from the initial states (keeps semantics) *)
  let reach = Array.make a.nstates false in
  let rec go q =
    if not reach.(q) then begin
      reach.(q) <- true;
      List.iter (fun (_, q') -> go q') a.delta.(q)
    end
  in
  List.iter go a.initials;
  let remap = Array.make a.nstates (-1) in
  let count = ref 0 in
  Array.iteri
    (fun q r ->
      if r then begin
        remap.(q) <- !count;
        incr count
      end)
    reach;
  let n = !count in
  if n = a.nstates then a
  else begin
    let finals = Array.make (max n 1) false in
    let delta = Array.make (max n 1) [] in
    Array.iteri
      (fun q r ->
        if r then begin
          finals.(remap.(q)) <- a.finals.(q);
          delta.(remap.(q)) <-
            List.filter_map
              (fun (x, q') -> if reach.(q') then Some (x, remap.(q')) else None)
              a.delta.(q)
        end)
      reach;
    {
      nstates = max n 1;
      initials =
        List.filter_map (fun q -> if reach.(q) then Some remap.(q) else None) a.initials;
      finals;
      delta;
    }
  end

let of_regex_uncached r =
  let b = { count = 0; sym_edges = []; eps_edges = [] } in
  let add_sym p a q = b.sym_edges <- (p, a, q) :: b.sym_edges in
  let add_eps p q = b.eps_edges <- (p, q) :: b.eps_edges in
  (* Returns (entry, exit) of a fragment. *)
  let rec build = function
    | Regex.Empty ->
      let i = fresh b and f = fresh b in
      (i, f)
    | Regex.Eps ->
      let i = fresh b and f = fresh b in
      add_eps i f;
      (i, f)
    | Regex.Sym a ->
      let i = fresh b and f = fresh b in
      add_sym i a f;
      (i, f)
    | Regex.Seq (r, s) ->
      let i1, f1 = build r in
      let i2, f2 = build s in
      add_eps f1 i2;
      (i1, f2)
    | Regex.Alt (r, s) ->
      let i = fresh b and f = fresh b in
      let i1, f1 = build r in
      let i2, f2 = build s in
      add_eps i i1;
      add_eps i i2;
      add_eps f1 f;
      add_eps f2 f;
      (i, f)
    | Regex.Star r ->
      let i = fresh b and f = fresh b in
      let i1, f1 = build r in
      add_eps i i1;
      add_eps i f;
      add_eps f1 i1;
      add_eps f1 f;
      (i, f)
    | Regex.Plus r ->
      let i1, f1 = build r in
      add_eps f1 i1;
      (i1, f1)
    | Regex.Opt r ->
      let i = fresh b and f = fresh b in
      let i1, f1 = build r in
      add_eps i i1;
      add_eps i f;
      add_eps f1 f;
      (i, f)
  in
  let entry, exit = build r in
  let n = b.count in
  (* epsilon closure *)
  let eps_succ = Array.make n [] in
  List.iter (fun (p, q) -> eps_succ.(p) <- q :: eps_succ.(p)) b.eps_edges;
  let eclose q0 =
    let seen = Array.make n false in
    let rec go q =
      if not seen.(q) then begin
        seen.(q) <- true;
        List.iter go eps_succ.(q)
      end
    in
    go q0;
    seen
  in
  let closures = Array.init n eclose in
  let sym_out = Array.make n [] in
  List.iter (fun (p, a, q) -> sym_out.(p) <- (a, q) :: sym_out.(p)) b.sym_edges;
  let delta =
    Array.init n (fun q ->
        let acc = ref [] in
        Array.iteri
          (fun p in_closure -> if in_closure then acc := sym_out.(p) @ !acc)
          closures.(q);
        dedup_sorted !acc)
  in
  let finals = Array.init n (fun q -> closures.(q).(exit)) in
  trim_unreachable { nstates = n; initials = [ entry ]; finals; delta }

(* ------------------------------------------------------------------ *)
(* Hash-consing and memoization                                         *)
(* ------------------------------------------------------------------ *)

(* NFAs are plain immutable data (no caller mutates [finals]/[delta]),
   so structurally equal automata are interchangeable: [key] interns
   them and downstream memo tables key on the small ids. *)
module Self_intern = Hashcons.Make (struct
  type nonrec t = t

  let equal = ( = )
  let hash = Hashtbl.hash
end)

let interned = Self_intern.create ()
let key a = Self_intern.id interned a

module Regex_memo = Cache.Memo (struct
  type t = Regex.t

  let equal = ( = )
  let hash = Hashtbl.hash
end)

let of_regex_memo = Regex_memo.create ~cap:1024 "nfa.of_regex"

let of_regex r =
  Regex_memo.find_or_add of_regex_memo r (fun () -> of_regex_uncached r)

let alphabet a =
  let acc = Hashtbl.create 16 in
  Array.iter (List.iter (fun (x, _) -> Hashtbl.replace acc x ())) a.delta;
  List.sort String.compare (Hashtbl.fold (fun x () l -> x :: l) acc [])

let is_final a q = a.finals.(q)

let final_states a =
  let acc = ref [] in
  Array.iteri (fun q f -> if f then acc := q :: !acc) a.finals;
  List.rev !acc

let next_set a s x =
  let acc = ref IntSet.empty in
  List.iter
    (fun q ->
      List.iter
        (fun (y, q') -> if String.equal x y then acc := IntSet.add q' !acc)
        a.delta.(q))
    s;
  IntSet.elements !acc

let accepts a w =
  let s = List.fold_left (next_set a) a.initials w in
  List.exists (is_final a) s

let accepts_eps a = List.exists (is_final a) a.initials

let is_empty a =
  let seen = Array.make (max a.nstates 1) false in
  let found = ref false in
  let rec go q =
    if not seen.(q) then begin
      seen.(q) <- true;
      Obs.Metrics.incr m_emptiness_states;
      if a.finals.(q) then found := true;
      if not !found then List.iter (fun (_, q') -> go q') a.delta.(q)
    end
  in
  List.iter go a.initials;
  not !found

let shortest_word a =
  (* BFS over states, remembering one shortest word per state. *)
  let word_to = Array.make (max a.nstates 1) None in
  let q = Queue.create () in
  List.iter
    (fun s ->
      if word_to.(s) = None then begin
        word_to.(s) <- Some [];
        Queue.add s q
      end)
    a.initials;
  let result = ref None in
  (try
     while not (Queue.is_empty q) do
       let s = Queue.pop q in
       let w = Option.get word_to.(s) in
       if a.finals.(s) then begin
         result := Some (List.rev w);
         raise Exit
       end;
       List.iter
         (fun (x, s') ->
           if word_to.(s') = None then begin
             word_to.(s') <- Some (x :: w);
             Queue.add s' q
           end)
         a.delta.(s)
     done
   with Exit -> ());
  !result

let enumerate ~max_len a =
  (* BFS over (word, state-set) pairs; state-sets deduplicate suffⅸ
     behaviour so the frontier stays small for small bounds. *)
  let module WS = Set.Make (struct
    type t = Word.t

    let compare = Word.compare
  end) in
  let results = ref WS.empty in
  let rec go w s len =
    if List.exists (is_final a) s then results := WS.add (List.rev w) !results;
    if len < max_len then begin
      let letters = Hashtbl.create 8 in
      List.iter
        (fun q -> List.iter (fun (x, _) -> Hashtbl.replace letters x ()) a.delta.(q))
        s;
      Hashtbl.iter (fun x () -> go (x :: w) (next_set a s x) (len + 1)) letters
    end
  in
  go [] a.initials 0;
  let cmp w1 w2 =
    let c = Stdlib.compare (List.length w1) (List.length w2) in
    if c <> 0 then c else Word.compare w1 w2
  in
  List.sort cmp (WS.elements !results)

let product_uncached a b =
  let n = a.nstates * b.nstates in
  Obs.Metrics.add m_product_states n;
  let code p q = (p * b.nstates) + q in
  let delta = Array.make (max n 1) [] in
  for p = 0 to a.nstates - 1 do
    for q = 0 to b.nstates - 1 do
      Guard.checkpoint "nfa.product";
      let out = ref [] in
      List.iter
        (fun (x, p') ->
          List.iter
            (fun (y, q') -> if String.equal x y then out := (x, code p' q') :: !out)
            b.delta.(q))
        a.delta.(p);
      delta.(code p q) <- dedup_sorted !out
    done
  done;
  let finals = Array.make (max n 1) false in
  for p = 0 to a.nstates - 1 do
    for q = 0 to b.nstates - 1 do
      finals.(code p q) <- a.finals.(p) && b.finals.(q)
    done
  done;
  let initials =
    List.concat_map (fun p -> List.map (fun q -> code p q) b.initials) a.initials
  in
  trim_unreachable { nstates = max n 1; initials; finals; delta = Array.sub delta 0 (max n 1) }

module Pair_memo = Cache.Memo (struct
  type t = int * int

  let equal = ( = )
  let hash = Hashtbl.hash
end)

let product_memo = Pair_memo.create ~cap:512 ~site:"nfa.product" "nfa.product"

let product a b =
  Pair_memo.find_or_add product_memo (key a, key b) (fun () ->
      product_uncached a b)

let union a b =
  let off = a.nstates in
  let n = a.nstates + b.nstates in
  let finals = Array.make n false in
  Array.blit a.finals 0 finals 0 a.nstates;
  Array.blit b.finals 0 finals off b.nstates;
  let delta = Array.make n [] in
  Array.blit a.delta 0 delta 0 a.nstates;
  for q = 0 to b.nstates - 1 do
    delta.(off + q) <- List.map (fun (x, q') -> (x, off + q')) b.delta.(q)
  done;
  {
    nstates = n;
    initials = a.initials @ List.map (fun q -> off + q) b.initials;
    finals;
    delta;
  }

let union_list autos =
  match autos with
  | [] -> invalid_arg "Nfa.union_list: empty"
  | first :: rest ->
    let offsets = Array.make (List.length autos) 0 in
    let rec go i acc = function
      | [] -> acc
      | a :: tl ->
        offsets.(i) <- acc.nstates;
        go (i + 1) (union acc a) tl
    in
    (go 1 first rest, offsets)

let reverse a =
  let delta = Array.make a.nstates [] in
  Array.iteri
    (fun q out -> List.iter (fun (x, q') -> delta.(q') <- (x, q) :: delta.(q')) out)
    a.delta;
  let finals = Array.make a.nstates false in
  List.iter (fun q -> finals.(q) <- true) a.initials;
  { nstates = a.nstates; initials = final_states a; finals; delta }

let trim a =
  let fwd = Array.make (max a.nstates 1) false in
  let rec go q =
    if not fwd.(q) then begin
      fwd.(q) <- true;
      List.iter (fun (_, q') -> go q') a.delta.(q)
    end
  in
  List.iter go a.initials;
  let rev = reverse a in
  let bwd = Array.make (max a.nstates 1) false in
  let rec gob q =
    if not bwd.(q) then begin
      bwd.(q) <- true;
      List.iter (fun (_, q') -> gob q') rev.delta.(q)
    end
  in
  List.iter gob rev.initials;
  let keep = Array.init a.nstates (fun q -> fwd.(q) && bwd.(q)) in
  let remap = Array.make a.nstates (-1) in
  let count = ref 0 in
  Array.iteri
    (fun q k ->
      if k then begin
        remap.(q) <- !count;
        incr count
      end)
    keep;
  let n = max !count 0 in
  let finals = Array.make (max n 1) false in
  let delta = Array.make (max n 1) [] in
  Array.iteri
    (fun q k ->
      if k then begin
        finals.(remap.(q)) <- a.finals.(q);
        delta.(remap.(q)) <-
          List.filter_map
            (fun (x, q') -> if keep.(q') then Some (x, remap.(q')) else None)
            a.delta.(q)
      end)
    keep;
  {
    nstates = n;
    initials =
      List.filter_map (fun q -> if keep.(q) then Some remap.(q) else None) a.initials;
    finals = (if n = 0 then [||] else Array.sub finals 0 n);
    delta = (if n = 0 then [||] else Array.sub delta 0 n);
  }

let complete ~alphabet a =
  let sink = a.nstates in
  let n = a.nstates + 1 in
  let finals = Array.make n false in
  Array.blit a.finals 0 finals 0 a.nstates;
  let delta = Array.make n [] in
  Array.blit a.delta 0 delta 0 a.nstates;
  for q = 0 to a.nstates - 1 do
    let missing =
      List.filter
        (fun x -> not (List.exists (fun (y, _) -> String.equal x y) delta.(q)))
        alphabet
    in
    delta.(q) <- List.map (fun x -> (x, sink)) missing @ delta.(q)
  done;
  delta.(sink) <- List.map (fun x -> (x, sink)) alphabet;
  { nstates = n; initials = a.initials; finals; delta }

let co_complete ~alphabet a =
  let source = a.nstates in
  let n = a.nstates + 1 in
  let finals = Array.make n false in
  Array.blit a.finals 0 finals 0 a.nstates;
  let delta = Array.make n [] in
  Array.blit a.delta 0 delta 0 a.nstates;
  (* which (symbol, state) pairs lack an incoming edge *)
  let has_in = Hashtbl.create 64 in
  Array.iter (List.iter (fun (x, q') -> Hashtbl.replace has_in (x, q') ())) a.delta;
  let src_out = ref (List.map (fun x -> (x, source)) alphabet) in
  for q = 0 to a.nstates - 1 do
    List.iter
      (fun x -> if not (Hashtbl.mem has_in (x, q)) then src_out := (x, q) :: !src_out)
      alphabet
  done;
  delta.(source) <- !src_out;
  { nstates = n; initials = a.initials; finals; delta }

let pp ppf a =
  Format.fprintf ppf "@[<v>nfa with %d states, initials %a, finals %a@,"
    a.nstates
    (Format.pp_print_list ~pp_sep:Format.pp_print_space Format.pp_print_int)
    a.initials
    (Format.pp_print_list ~pp_sep:Format.pp_print_space Format.pp_print_int)
    (final_states a);
  Array.iteri
    (fun q out ->
      List.iter (fun (x, q') -> Format.fprintf ppf "%d -%s-> %d@," q x q') out)
    a.delta;
  Format.fprintf ppf "@]"
