type t =
  | Empty
  | Eps
  | Sym of Word.symbol
  | Seq of t * t
  | Alt of t * t
  | Star of t
  | Plus of t
  | Opt of t

let empty = Empty

let eps = Eps

let sym a = Sym a

let seq r s =
  match r, s with
  | Empty, _ | _, Empty -> Empty
  | Eps, x | x, Eps -> x
  | _ -> Seq (r, s)

let alt r s =
  match r, s with
  | Empty, x | x, Empty -> x
  | Eps, Opt x | Opt x, Eps -> Opt x
  | _ -> if r = s then r else Alt (r, s)

let star = function
  | Empty | Eps -> Eps
  | Star _ as r -> r
  | Plus r -> Star r
  | Opt r -> Star r
  | r -> Star r

let plus = function
  | Empty -> Empty
  | Eps -> Eps
  | Star _ as r -> r
  | Plus _ as r -> r
  | Opt r -> Star r
  | r -> Plus r

let opt = function
  | Empty -> Eps
  | Eps -> Eps
  | (Star _ | Opt _) as r -> r
  | Plus r -> Star r
  | r -> Opt r

let seq_list rs = List.fold_left seq Eps rs

let alt_list rs = List.fold_left alt Empty rs

let word w = seq_list (List.map sym w)

let alt_words ws = alt_list (List.map word ws)

let rec nullable = function
  | Empty | Sym _ -> false
  | Eps | Star _ | Opt _ -> true
  | Seq (r, s) -> nullable r && nullable s
  | Alt (r, s) -> nullable r || nullable s
  | Plus r -> nullable r

let rec is_empty_lang = function
  | Empty -> true
  | Eps | Sym _ | Star _ | Opt _ -> false
  | Seq (r, s) -> is_empty_lang r || is_empty_lang s
  | Alt (r, s) -> is_empty_lang r && is_empty_lang s
  | Plus r -> is_empty_lang r

(* A Star/Plus node denotes a finite language only when its body denotes a
   language included in {ε}. *)
let rec denotes_at_most_eps = function
  | Empty | Eps -> true
  | Sym _ -> false
  | Seq (r, s) ->
    is_empty_lang r || is_empty_lang s
    || (denotes_at_most_eps r && denotes_at_most_eps s)
  | Alt (r, s) -> denotes_at_most_eps r && denotes_at_most_eps s
  | Star r | Plus r | Opt r -> is_empty_lang r || denotes_at_most_eps r

let rec is_finite = function
  | Empty | Eps | Sym _ -> true
  | Seq (r, s) ->
    is_empty_lang r || is_empty_lang s || (is_finite r && is_finite s)
  | Alt (r, s) -> is_finite r && is_finite s
  | Star r | Plus r -> is_empty_lang r || denotes_at_most_eps r
  | Opt r -> is_finite r

let alphabet r =
  let rec go acc = function
    | Empty | Eps -> acc
    | Sym a -> if List.mem a acc then acc else a :: acc
    | Seq (r, s) | Alt (r, s) -> go (go acc r) s
    | Star r | Plus r | Opt r -> go acc r
  in
  List.sort String.compare (go [] r)

let rec size = function
  | Empty | Eps | Sym _ -> 1
  | Seq (r, s) | Alt (r, s) -> 1 + size r + size s
  | Star r | Plus r | Opt r -> 1 + size r

let equal = Stdlib.( = )

let compare = Stdlib.compare

let rec derivative a = function
  | Empty | Eps -> Empty
  | Sym b -> if String.equal a b then Eps else Empty
  | Seq (r, s) ->
    let d = seq (derivative a r) s in
    if nullable r then alt d (derivative a s) else d
  | Alt (r, s) -> alt (derivative a r) (derivative a s)
  | Star r -> seq (derivative a r) (star r)
  | Plus r -> seq (derivative a r) (star r)
  | Opt r -> derivative a r

let matches r w =
  let r = List.fold_left (fun r a -> derivative a r) r w in
  nullable r

let rec reverse = function
  | (Empty | Eps | Sym _) as r -> r
  | Seq (r, s) -> Seq (reverse s, reverse r)
  | Alt (r, s) -> Alt (reverse r, reverse s)
  | Star r -> Star (reverse r)
  | Plus r -> Plus (reverse r)
  | Opt r -> Opt (reverse r)

let rec remove_eps = function
  | Empty -> Empty
  | Eps -> Empty
  | Sym _ as r -> r
  | Seq (r, s) as rs ->
    if not (nullable r || nullable s) then rs
    else begin
      (* L(r·s) \ ε = (L(r)\ε)·s ∪ [ε∈L(r)] (L(s)\ε) *)
      let left = seq (remove_eps r) s in
      if nullable r then alt left (remove_eps s) else left
    end
  | Alt (r, s) -> alt (remove_eps r) (remove_eps s)
  | Star r -> plus (remove_eps r)
  | Plus r as p -> if nullable r then plus (remove_eps r) else p
  | Opt r -> remove_eps r

module WordSet = Set.Make (struct
  type t = Word.t

  let compare = Word.compare
end)

(* Enumeration: recursive computation of word sets up to max_len.  The
   result sets are small in practice (expansion machinery uses small
   bounds), so the naive product is fine. *)
let enumerate_uncached ~max_len r =
  let prod u v =
    WordSet.fold
      (fun w1 acc ->
        Guard.checkpoint "regex.enumerate";
        WordSet.fold
          (fun w2 acc ->
            let w = w1 @ w2 in
            if List.length w <= max_len then WordSet.add w acc else acc)
          v acc)
      u WordSet.empty
  in
  let rec go r =
    match r with
    | Empty -> WordSet.empty
    | Eps -> WordSet.singleton []
    | Sym a -> if max_len >= 1 then WordSet.singleton [ a ] else WordSet.empty
    | Seq (r, s) -> prod (go r) (go s)
    | Alt (r, s) -> WordSet.union (go r) (go s)
    | Opt r -> WordSet.add [] (go r)
    | Star r -> iterate (go r)
    | Plus r ->
      let base = go r in
      prod base (iterate base)
  and iterate base =
    (* least fixpoint of S = {ε} ∪ base·S restricted to length ≤ max_len *)
    let rec fix acc =
      Guard.checkpoint "regex.enumerate";
      let next = WordSet.union acc (prod base acc) in
      if WordSet.cardinal next = WordSet.cardinal acc then acc else fix next
    in
    fix (WordSet.singleton [])
  in
  let cmp w1 w2 =
    let c = Stdlib.compare (List.length w1) (List.length w2) in
    if c <> 0 then c else Word.compare w1 w2
  in
  List.sort cmp (WordSet.elements (go r))

(* The expansion machinery re-enumerates the same (bound, language)
   pairs across disjuncts and containment directions; the memo keeps the
   word lists around.  The wrapper checkpoint reuses the legacy
   "regex.enumerate" site so cached calls still count towards budgets. *)
module Enum_memo = Cache.Memo (struct
  type nonrec t = int * t

  let equal = ( = )
  let hash = Hashtbl.hash
end)

let enum_memo = Enum_memo.create ~cap:512 ~site:"regex.enumerate" "regex.enumerate"

let enumerate ~max_len r =
  Enum_memo.find_or_add enum_memo (max_len, r) (fun () ->
      enumerate_uncached ~max_len r)

let words_of_finite r =
  if not (is_finite r) then
    invalid_arg "Regex.words_of_finite: infinite language";
  (* For a finite regex every word has length bounded by the number of
     symbol occurrences. *)
  let rec bound = function
    | Empty | Eps -> 0
    | Sym _ -> 1
    | Seq (r, s) -> bound r + bound s
    | Alt (r, s) -> max (bound r) (bound s)
    | Star r | Plus r | Opt r -> bound r
  in
  enumerate ~max_len:(bound r) r

let shortest_word r =
  (* Compute the length of a shortest word symbolically, then extract. *)
  let rec short = function
    | Empty -> None
    | Eps -> Some []
    | Sym a -> Some [ a ]
    | Seq (r, s) -> begin
      match short r, short s with
      | Some u, Some v -> Some (u @ v)
      | _ -> None
    end
    | Alt (r, s) -> begin
      match short r, short s with
      | Some u, Some v -> if List.length u <= List.length v then Some u else Some v
      | (Some _ as x), None | None, (Some _ as x) -> x
      | None, None -> None
    end
    | Star _ | Opt _ -> Some []
    | Plus r -> short r
  in
  short r

(* ------------------------------------------------------------------ *)
(* Concrete syntax                                                     *)
(* ------------------------------------------------------------------ *)

exception Parse_error of string

let parse str =
  let n = String.length str in
  let pos = ref 0 in
  let peek () = if !pos < n then Some str.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n') ->
      advance ();
      skip_ws ()
    | _ -> ()
  in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at %d in %S" msg !pos str)) in
  (* alt := cat ('|' cat)* ; cat := postfix+ ; postfix := atom [*+?]* *)
  let rec parse_alt () =
    let r = parse_cat () in
    skip_ws ();
    match peek () with
    | Some '|' ->
      advance ();
      alt r (parse_alt ())
    | _ -> r
  and parse_cat () =
    let rec go acc =
      skip_ws ();
      match peek () with
      | None | Some ')' | Some '|' -> acc
      | Some _ -> go (seq acc (parse_postfix ()))
    in
    skip_ws ();
    (match peek () with
    | None | Some ')' | Some '|' -> fail "empty expression"
    | Some _ -> ());
    go (parse_postfix ())
  and parse_postfix () =
    let r = parse_atom () in
    let rec go r =
      match peek () with
      | Some '*' ->
        advance ();
        go (star r)
      | Some '+' ->
        advance ();
        go (plus r)
      | Some '?' ->
        advance ();
        go (opt r)
      | _ -> r
    in
    go r
  and parse_atom () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end"
    | Some '(' ->
      advance ();
      let r = parse_alt () in
      skip_ws ();
      (match peek () with
      | Some ')' -> advance ()
      | _ -> fail "expected ')'");
      r
    | Some '%' ->
      advance ();
      eps
    | Some '!' ->
      advance ();
      empty
    | Some '<' ->
      advance ();
      let start = !pos in
      let rec scan () =
        match peek () with
        | Some '>' ->
          let s = String.sub str start (!pos - start) in
          advance ();
          s
        | Some _ ->
          advance ();
          scan ()
        | None -> fail "unterminated '<'"
      in
      sym (scan ())
    | Some (('*' | '+' | '?' | ')' | '|') as c) ->
      fail (Printf.sprintf "unexpected %c" c)
    | Some c ->
      advance ();
      sym (String.make 1 c)
  in
  let r = parse_alt () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  r

(* Precedence-aware printer: Alt(0) < Seq(1) < postfix(2) < atom(3). *)
let to_string r =
  let buf = Buffer.create 32 in
  let paren cond body =
    if cond then Buffer.add_char buf '(';
    body ();
    if cond then Buffer.add_char buf ')'
  in
  let add_sym a =
    if String.length a = 1 && not (String.contains "()|*+?%!<> \t\n" a.[0]) then
      Buffer.add_string buf a
    else begin
      Buffer.add_char buf '<';
      Buffer.add_string buf a;
      Buffer.add_char buf '>'
    end
  in
  let rec go prec = function
    | Empty -> Buffer.add_char buf '!'
    | Eps -> Buffer.add_char buf '%'
    | Sym a -> add_sym a
    | Seq (r, s) ->
      paren (prec > 1) (fun () ->
          go 1 r;
          go 2 s)
    | Alt (r, s) ->
      paren (prec > 0) (fun () ->
          go 0 r;
          Buffer.add_char buf '|';
          go 1 s)
    | Star r ->
      paren (prec > 2) (fun () ->
          go 3 r;
          Buffer.add_char buf '*')
    | Plus r ->
      paren (prec > 2) (fun () ->
          go 3 r;
          Buffer.add_char buf '+')
    | Opt r ->
      paren (prec > 2) (fun () ->
          go 3 r;
          Buffer.add_char buf '?')
  in
  go 0 r;
  Buffer.contents buf

let pp ppf r = Format.pp_print_string ppf (to_string r)
