(* Brzozowski–McCluskey state elimination over a generalized NFA whose
   transitions carry regular expressions. *)
let of_nfa_uncached (a : Nfa.t) =
  let a = Nfa.trim a in
  if a.Nfa.nstates = 0 || a.Nfa.initials = [] then Regex.empty
  else begin
    let n = a.Nfa.nstates in
    (* generalized automaton with fresh initial [n] and final [n+1] *)
    let size = n + 2 in
    let start = n and finish = n + 1 in
    let edge = Array.make_matrix size size Regex.empty in
    let add p q r = edge.(p).(q) <- Regex.alt edge.(p).(q) r in
    Array.iteri
      (fun p outs -> List.iter (fun (x, q) -> add p q (Regex.sym x)) outs)
      a.Nfa.delta;
    List.iter (fun q -> add start q Regex.eps) a.Nfa.initials;
    Array.iteri (fun q f -> if f then add q finish Regex.eps) a.Nfa.finals;
    (* eliminate original states one by one *)
    for k = 0 to n - 1 do
      let loop = Regex.star edge.(k).(k) in
      for p = 0 to size - 1 do
        if p <> k && not (Regex.is_empty_lang edge.(p).(k)) then
          for q = 0 to size - 1 do
            if q <> k && not (Regex.is_empty_lang edge.(k).(q)) then
              add p q (Regex.seq_list [ edge.(p).(k); loop; edge.(k).(q) ])
          done
      done;
      for p = 0 to size - 1 do
        edge.(p).(k) <- Regex.empty;
        edge.(k).(p) <- Regex.empty
      done
    done;
    edge.(start).(finish)
  end

(* State elimination is cubic in the state count and recurs on the same
   product automata during iterated language algebra. *)
module Nfa_memo = Cache.Memo (struct
  type t = int

  let equal = Int.equal
  let hash = Hashtbl.hash
end)

let of_nfa_memo = Nfa_memo.create ~cap:256 "lang_ops.of_nfa"

let of_nfa (a : Nfa.t) =
  Nfa_memo.find_or_add of_nfa_memo (Nfa.key a) (fun () -> of_nfa_uncached a)

let nfa_of_dfa (d : Dfa.t) =
  let delta =
    Array.init d.Dfa.nstates (fun q ->
        Array.to_list (Array.mapi (fun i q' -> (d.Dfa.alphabet.(i), q')) d.Dfa.next.(q)))
  in
  {
    Nfa.nstates = d.Dfa.nstates;
    initials = [ d.Dfa.start ];
    finals = d.Dfa.finals;
    delta;
  }

module Re_pair_memo = Cache.Memo (struct
  type t = Regex.t * Regex.t

  let equal = ( = )
  let hash = Hashtbl.hash
end)

let intersect_memo = Re_pair_memo.create ~cap:256 "lang_ops.intersect"

let intersect r s =
  Re_pair_memo.find_or_add intersect_memo (r, s) (fun () ->
      of_nfa (Nfa.product (Nfa.of_regex r) (Nfa.of_regex s)))

let complement ~alphabet r =
  let alphabet = List.sort_uniq String.compare (alphabet @ Regex.alphabet r) in
  let d = Dfa.of_nfa ~alphabet (Nfa.of_regex r) in
  of_nfa (nfa_of_dfa (Dfa.minimize (Dfa.complement d)))

let difference r s =
  let alphabet =
    List.sort_uniq String.compare (Regex.alphabet r @ Regex.alphabet s)
  in
  if alphabet = [] then if Regex.nullable r && not (Regex.nullable s) then Regex.eps else Regex.empty
  else begin
    let d1 = Dfa.of_nfa ~alphabet (Nfa.of_regex r) in
    let d2 = Dfa.of_nfa ~alphabet (Nfa.of_regex s) in
    of_nfa (nfa_of_dfa (Dfa.minimize (Dfa.intersect d1 (Dfa.complement d2))))
  end

let restrict_min_length r n =
  let alphabet = Regex.alphabet r in
  if alphabet = [] then if n = 0 then r else Regex.empty
  else begin
    let sigma = Regex.alt_list (List.map Regex.sym alphabet) in
    let rec at_least k = if k = 0 then Regex.star sigma else Regex.seq sigma (at_least (k - 1)) in
    intersect r (at_least n)
  end
