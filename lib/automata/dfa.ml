type t = {
  alphabet : Word.symbol array;
  nstates : int;
  start : int;
  finals : bool array;
  next : int array array;
}

let of_nfa_uncached alpha nfa =
  (* canonical key of a state set *)
  let key s = String.concat "," (List.map string_of_int s) in
  let table = Hashtbl.create 64 in
  let states = ref [] in
  let count = ref 0 in
  let intern s =
    let k = key s in
    match Hashtbl.find_opt table k with
    | Some id -> id
    | None ->
      let id = !count in
      incr count;
      Hashtbl.add table k id;
      states := (id, s) :: !states;
      id
  in
  let start_set = List.sort_uniq Stdlib.compare nfa.Nfa.initials in
  let start = intern start_set in
  let transitions = ref [] in
  let work = Queue.create () in
  Queue.add (start, start_set) work;
  let processed = Hashtbl.create 64 in
  while not (Queue.is_empty work) do
    Guard.checkpoint "dfa.determinize";
    let id, s = Queue.pop work in
    if not (Hashtbl.mem processed id) then begin
      Hashtbl.add processed id ();
      let row =
        Array.map
          (fun x ->
            let s' = Nfa.next_set nfa s x in
            let known = Hashtbl.mem table (key s') in
            let id' = intern s' in
            if not known then Queue.add (id', s') work;
            id')
          alpha
      in
      transitions := (id, row) :: !transitions
    end
  done;
  let n = !count in
  let next = Array.make n [||] in
  List.iter (fun (id, row) -> next.(id) <- row) !transitions;
  let finals = Array.make n false in
  List.iter
    (fun (id, s) -> finals.(id) <- List.exists (Nfa.is_final nfa) s)
    !states;
  { alphabet = alpha; nstates = n; start; finals; next }

(* Subset construction is the dominant cost of the inclusion checks; the
   memo keys on the hash-consed NFA id plus the (sorted) alphabet the
   determinization runs over.  The wrapper checkpoint keeps the legacy
   "dfa.determinize" guard site firing on cache hits. *)
module Det_memo = Cache.Memo (struct
  type t = string list * int

  let equal = ( = )
  let hash = Hashtbl.hash
end)

let det_memo = Det_memo.create ~cap:512 ~site:"dfa.determinize" "dfa.determinize"

let of_nfa ?alphabet nfa =
  let alpha =
    match alphabet with
    | Some a -> List.sort_uniq String.compare a
    | None -> Nfa.alphabet nfa
  in
  Det_memo.find_or_add det_memo (alpha, Nfa.key nfa) (fun () ->
      of_nfa_uncached (Array.of_list alpha) nfa)

let sym_index d x =
  let rec go i =
    if i >= Array.length d.alphabet then None
    else if String.equal d.alphabet.(i) x then Some i
    else go (i + 1)
  in
  go 0

let accepts d w =
  let rec go q = function
    | [] -> d.finals.(q)
    | x :: rest -> begin
      match sym_index d x with
      | None -> false
      | Some i -> go d.next.(q).(i) rest
    end
  in
  go d.start w

let complement d = { d with finals = Array.map not d.finals }

let align_alphabets d1 d2 =
  if d1.alphabet = d2.alphabet then (d1, d2)
  else invalid_arg "Dfa: alphabets differ; determinize over a common alphabet"

let intersect d1 d2 =
  let d1, d2 = align_alphabets d1 d2 in
  let nsym = Array.length d1.alphabet in
  let code p q = (p * d2.nstates) + q in
  let n = d1.nstates * d2.nstates in
  let next =
    Array.init n (fun s ->
        Guard.checkpoint "dfa.product";
        let p = s / d2.nstates and q = s mod d2.nstates in
        Array.init nsym (fun i -> code d1.next.(p).(i) d2.next.(q).(i)))
  in
  let finals =
    Array.init n (fun s ->
        let p = s / d2.nstates and q = s mod d2.nstates in
        d1.finals.(p) && d2.finals.(q))
  in
  {
    alphabet = d1.alphabet;
    nstates = n;
    start = code d1.start d2.start;
    finals;
    next;
  }

let is_empty d =
  let seen = Array.make d.nstates false in
  let found = ref false in
  let rec go q =
    if (not seen.(q)) && not !found then begin
      seen.(q) <- true;
      if d.finals.(q) then found := true else Array.iter go d.next.(q)
    end
  in
  go d.start;
  not !found

let shortest_word d =
  let pred = Array.make d.nstates None in
  let seen = Array.make d.nstates false in
  let q = Queue.create () in
  seen.(d.start) <- true;
  Queue.add d.start q;
  let goal = ref None in
  while (not (Queue.is_empty q)) && !goal = None do
    let s = Queue.pop q in
    if d.finals.(s) then goal := Some s
    else
      Array.iteri
        (fun i s' ->
          if not seen.(s') then begin
            seen.(s') <- true;
            pred.(s') <- Some (s, d.alphabet.(i));
            Queue.add s' q
          end)
        d.next.(s)
  done;
  match !goal with
  | None -> None
  | Some s ->
    let rec build s acc =
      match pred.(s) with
      | None -> acc
      | Some (p, x) -> build p (x :: acc)
    in
    Some (build s [])

let minimize d =
  (* Moore's algorithm: refine the partition {F, Q\F} until stable. *)
  let cls = Array.init d.nstates (fun q -> if d.finals.(q) then 1 else 0) in
  let nsym = Array.length d.alphabet in
  let changed = ref true in
  while !changed do
    changed := false;
    let signature q =
      (cls.(q), Array.to_list (Array.init nsym (fun i -> cls.(d.next.(q).(i)))))
    in
    let table = Hashtbl.create 64 in
    let fresh = ref 0 in
    let newcls =
      Array.init d.nstates (fun q ->
          let s = signature q in
          match Hashtbl.find_opt table s with
          | Some c -> c
          | None ->
            let c = !fresh in
            incr fresh;
            Hashtbl.add table s c;
            c)
    in
    if newcls <> cls then begin
      Array.blit newcls 0 cls 0 d.nstates;
      changed := true
    end
  done;
  let n = 1 + Array.fold_left max 0 cls in
  let next = Array.make n [||] in
  let finals = Array.make n false in
  for q = 0 to d.nstates - 1 do
    next.(cls.(q)) <- Array.init nsym (fun i -> cls.(d.next.(q).(i)));
    if d.finals.(q) then finals.(cls.(q)) <- true
  done;
  { alphabet = d.alphabet; nstates = n; start = cls.(d.start); finals; next }

module Incl_memo = Cache.Memo (struct
  type t = int * int

  let equal = ( = )
  let hash = Hashtbl.hash
end)

let incl_memo = Incl_memo.create ~cap:1024 "dfa.included"

let included a b =
  Incl_memo.find_or_add incl_memo (Nfa.key a, Nfa.key b) (fun () ->
      let alpha =
        List.sort_uniq String.compare (Nfa.alphabet a @ Nfa.alphabet b)
      in
      let da = of_nfa ~alphabet:alpha a in
      let db = of_nfa ~alphabet:alpha b in
      is_empty (intersect da (complement db)))

let equivalent a b = included a b && included b a

let regex_included r s = included (Nfa.of_regex r) (Nfa.of_regex s)

let regex_equivalent r s = regex_included r s && regex_included s r
