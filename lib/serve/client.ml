type t = { fd : Unix.file_descr; rbuf : Buffer.t; mutable eof : bool }

let of_fd fd = { fd; rbuf = Buffer.create 256; eof = false }

let connect_unix path =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try Unix.connect fd (Unix.ADDR_UNIX path)
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise e);
  of_fd fd

let send_raw t line =
  let b = Bytes.of_string (line ^ "\n") in
  let n = Bytes.length b in
  let rec go off =
    if off >= n then Ok ()
    else
      match Unix.write t.fd b off (n - off) with
      | w -> go (off + w)
      | exception Unix.Unix_error (e, _, _) ->
        Error (Printf.sprintf "write: %s" (Unix.error_message e))
  in
  go 0

let send t req = send_raw t (Obs.Json.to_string (Protocol.request_to_json req))

(* extract one complete line from the buffer, if any *)
let take_line t =
  let data = Buffer.contents t.rbuf in
  match String.index_opt data '\n' with
  | None -> None
  | Some i ->
    let line = String.sub data 0 i in
    let rest = String.sub data (i + 1) (String.length data - i - 1) in
    Buffer.clear t.rbuf;
    Buffer.add_string t.rbuf rest;
    Some line

let recv_line ?(timeout_ms = 10_000) t =
  let deadline = Int64.add (Obs.Clock.monotonic_ns ()) (Int64.mul (Int64.of_int timeout_ms) 1_000_000L) in
  let chunk = Bytes.create 65536 in
  let rec go () =
    match take_line t with
    | Some line -> Ok line
    | None ->
      if t.eof then Error "connection closed"
      else begin
        let budget_s =
          Obs.Clock.ns_to_s (Int64.sub deadline (Obs.Clock.monotonic_ns ()))
        in
        if budget_s <= 0.0 then Error "timeout waiting for frame"
        else
          match Unix.select [ t.fd ] [] [] budget_s with
          | [], _, _ -> Error "timeout waiting for frame"
          | _ :: _, _, _ -> (
            match Unix.read t.fd chunk 0 (Bytes.length chunk) with
            | 0 ->
              t.eof <- true;
              go ()
            | n ->
              Buffer.add_subbytes t.rbuf chunk 0 n;
              go ()
            | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
            | exception Unix.Unix_error (e, _, _) ->
              Error (Printf.sprintf "read: %s" (Unix.error_message e)))
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
          | exception Unix.Unix_error (e, _, _) ->
            Error (Printf.sprintf "select: %s" (Unix.error_message e))
      end
  in
  go ()

let recv_json ?timeout_ms t =
  match recv_line ?timeout_ms t with
  | Error _ as e -> e
  | Ok line -> Obs.Json.parse line

let recv ?timeout_ms t =
  match recv_line ?timeout_ms t with
  | Error _ as e -> e
  | Ok line -> Protocol.parse_response line

let greeting ?timeout_ms t = recv_json ?timeout_ms t

let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()
