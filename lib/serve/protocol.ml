(* injcrpq-serve/1 framing.  See protocol.mli.

   Encoding discipline: optional request fields are omitted when absent
   and emitted when present, and every defaulted field is always
   emitted, so [request_of_json (request_to_json r) = Ok r] — the
   qcheck round-trip property in test_serve_protocol.ml. *)

let schema = "injcrpq-serve/1"
let max_frame_bytes = 1 lsl 20

type op = Eval | Contain | Lint | Optimize | Stats | Ping

let op_to_string = function
  | Eval -> "eval"
  | Contain -> "contain"
  | Lint -> "lint"
  | Optimize -> "optimize"
  | Stats -> "stats"
  | Ping -> "ping"

let op_of_string = function
  | "eval" -> Some Eval
  | "contain" -> Some Contain
  | "lint" -> Some Lint
  | "optimize" -> Some Optimize
  | "stats" -> Some Stats
  | "ping" -> Some Ping
  | _ -> None

let queued = function
  | Eval | Contain | Lint | Optimize -> true
  | Stats | Ping -> false

type request = {
  id : Obs.Json.t;
  op : op;
  session : string;
  sem : Semantics.t;
  query : string option;
  lhs : string option;
  rhs : string option;
  graph : string option;
  tuple : int list option;
  bound : int;
  timeout_ms : int option;
  max_steps : int option;
}

let request ?(id = Obs.Json.Null) ?(session = "anon") ?(sem = Semantics.St)
    ?query ?lhs ?rhs ?graph ?tuple ?(bound = 4) ?timeout_ms ?max_steps op =
  { id; op; session; sem; query; lhs; rhs; graph; tuple; bound; timeout_ms;
    max_steps }

let opt_field key f = function None -> [] | Some v -> [ (key, f v) ]
let str s = Obs.Json.String s

let request_to_json r =
  Obs.Json.Obj
    ([
       ("schema", str schema);
       ("op", str (op_to_string r.op));
       ("session", str r.session);
       ("sem", str (Semantics.to_string r.sem));
       ("bound", Obs.Json.Int r.bound);
     ]
    @ (match r.id with Obs.Json.Null -> [] | id -> [ ("id", id) ])
    @ opt_field "query" str r.query
    @ opt_field "lhs" str r.lhs
    @ opt_field "rhs" str r.rhs
    @ opt_field "graph" str r.graph
    @ opt_field "tuple"
        (fun t -> Obs.Json.List (List.map (fun n -> Obs.Json.Int n) t))
        r.tuple
    @ opt_field "timeout_ms" (fun n -> Obs.Json.Int n) r.timeout_ms
    @ opt_field "max_steps" (fun n -> Obs.Json.Int n) r.max_steps)

let ( let* ) = Result.bind

let get_string key json =
  match Obs.Json.member key json with
  | None -> Ok None
  | Some (Obs.Json.String s) -> Ok (Some s)
  | Some _ -> Error (Printf.sprintf "field %S must be a string" key)

let get_int key json =
  match Obs.Json.member key json with
  | None -> Ok None
  | Some v -> (
    match Obs.Json.to_int v with
    | Some n -> Ok (Some n)
    | None -> Error (Printf.sprintf "field %S must be an integer" key))

let request_of_json json =
  match json with
  | Obs.Json.Obj _ ->
    let* () =
      match Obs.Json.member "schema" json with
      | Some (Obs.Json.String s) when s = schema -> Ok ()
      | Some (Obs.Json.String s) ->
        Error (Printf.sprintf "unexpected schema %S (want %S)" s schema)
      | _ -> Error "missing field \"schema\""
    in
    let* op_name = get_string "op" json in
    let* op =
      match op_name with
      | None -> Error "missing field \"op\""
      | Some s -> (
        match op_of_string s with
        | Some op -> Ok op
        | None ->
          Error
            (Printf.sprintf
               "unknown op %S (eval|contain|lint|optimize|stats|ping)" s))
    in
    let* session = get_string "session" json in
    let session = Option.value session ~default:"anon" in
    let* sem_name = get_string "sem" json in
    let* sem =
      match sem_name with
      | None -> Ok Semantics.St
      | Some s -> (
        match Semantics.of_string s with
        | Some sem -> Ok sem
        | None -> Error (Printf.sprintf "unknown semantics %S" s))
    in
    let* query = get_string "query" json in
    let* lhs = get_string "lhs" json in
    let* rhs = get_string "rhs" json in
    let* graph = get_string "graph" json in
    let* tuple =
      match Obs.Json.member "tuple" json with
      | None -> Ok None
      | Some (Obs.Json.List items) ->
        List.fold_left
          (fun acc item ->
            let* acc = acc in
            match Obs.Json.to_int item with
            | Some n -> Ok (n :: acc)
            | None -> Error "field \"tuple\" must be a list of integers")
          (Ok []) items
        |> Result.map (fun l -> Some (List.rev l))
      | Some _ -> Error "field \"tuple\" must be a list of integers"
    in
    let* bound = get_int "bound" json in
    let bound = Option.value bound ~default:4 in
    let* () =
      if bound < 0 then Error "field \"bound\" must be non-negative" else Ok ()
    in
    let* timeout_ms = get_int "timeout_ms" json in
    let* max_steps = get_int "max_steps" json in
    let id = Option.value (Obs.Json.member "id" json) ~default:Obs.Json.Null in
    Ok
      { id; op; session; sem; query; lhs; rhs; graph; tuple; bound; timeout_ms;
        max_steps }
  | _ -> Error "request frame must be a JSON object"

let parse_request line =
  match Obs.Json.parse line with
  | Error e -> Error ("malformed frame: " ^ e)
  | Ok json -> request_of_json json

type status = Ok_ | Unknown | Shed | Quota | Error

let status_to_string = function
  | Ok_ -> "ok"
  | Unknown -> "unknown"
  | Shed -> "shed"
  | Quota -> "quota"
  | Error -> "error"

let status_of_string = function
  | "ok" -> Some Ok_
  | "unknown" -> Some Unknown
  | "shed" -> Some Shed
  | "quota" -> Some Quota
  | "error" -> Some Error
  | _ -> None

type response = {
  id : Obs.Json.t;
  status : status;
  op : op option;
  body : (string * Obs.Json.t) list;
}

let reserved_keys = [ "schema"; "id"; "status"; "op" ]

let response ?(id = Obs.Json.Null) ?op ?(body = []) status =
  { id; status; op; body }

let shed_response ?id ?op ~retry_after_ms () =
  response ?id ?op Shed
    ~body:[ ("retry_after_ms", Obs.Json.Int retry_after_ms) ]

let quota_response ?id ?op ~retry_after_ms () =
  response ?id ?op Quota
    ~body:[ ("retry_after_ms", Obs.Json.Int retry_after_ms) ]

let error_response ?id ?op ~code message =
  response ?id ?op Error
    ~body:
      [
        ( "error",
          Obs.Json.Obj [ ("code", str code); ("message", str message) ] );
      ]

let response_to_json r =
  Obs.Json.Obj
    ([ ("schema", str schema); ("status", str (status_to_string r.status)) ]
    @ (match r.id with Obs.Json.Null -> [] | id -> [ ("id", id) ])
    @ opt_field "op" (fun op -> str (op_to_string op)) r.op
    @ r.body)

let response_of_json json =
  match json with
  | Obs.Json.Obj fields ->
    let* () =
      match Obs.Json.member "schema" json with
      | Some (Obs.Json.String s) when s = schema -> Ok ()
      | Some (Obs.Json.String s) ->
        Stdlib.Error (Printf.sprintf "unexpected schema %S (want %S)" s schema)
      | _ -> Stdlib.Error "missing field \"schema\""
    in
    let* status =
      match Obs.Json.member "status" json with
      | Some (Obs.Json.String s) -> (
        match status_of_string s with
        | Some st -> Ok st
        | None -> Stdlib.Error (Printf.sprintf "unknown status %S" s))
      | _ -> Stdlib.Error "missing field \"status\""
    in
    let* op =
      match Obs.Json.member "op" json with
      | None -> Ok None
      | Some (Obs.Json.String s) -> (
        match op_of_string s with
        | Some op -> Ok (Some op)
        | None -> Stdlib.Error (Printf.sprintf "unknown op %S" s))
      | Some _ -> Stdlib.Error "field \"op\" must be a string"
    in
    let id = Option.value (Obs.Json.member "id" json) ~default:Obs.Json.Null in
    let body =
      List.filter (fun (k, _) -> not (List.mem k reserved_keys)) fields
    in
    Ok { id; status; op; body }
  | _ -> Stdlib.Error "response frame must be a JSON object"

let parse_response line =
  match Obs.Json.parse line with
  | Stdlib.Error e -> Stdlib.Error ("malformed frame: " ^ e)
  | Ok json -> response_of_json json

let greeting ~workers ~graphs =
  Obs.Json.Obj
    [
      ("schema", str schema);
      ("server", str "injcrpq");
      ("workers", Obs.Json.Int workers);
      ("graphs", Obs.Json.List (List.map str graphs));
      ( "ops",
        Obs.Json.List
          (List.map
             (fun op -> str (op_to_string op))
             [ Eval; Contain; Lint; Optimize; Stats; Ping ]) );
    ]
