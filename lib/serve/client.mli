(** A small line-oriented client for the [injcrpq-serve/1] protocol,
    used by the bench driver and the tests.  Blocking reads with an
    optional timeout; one {!t} per connection, single-threaded use. *)

type t

val of_fd : Unix.file_descr -> t
(** Wrap a connected stream.  The fd is owned by the caller until
    {!close}. *)

val connect_unix : string -> t
(** Connect to a unix-domain socket path. *)

val greeting : ?timeout_ms:int -> t -> (Obs.Json.t, string) result
(** Read the server's greeting line (call once, first). *)

val send : t -> Protocol.request -> (unit, string) result
(** Write one request frame. *)

val send_raw : t -> string -> (unit, string) result
(** Write one raw line (for malformed-frame tests); a newline is
    appended. *)

val recv : ?timeout_ms:int -> t -> (Protocol.response, string) result
(** Read and parse the next response frame.  [Error] on timeout, EOF, or
    an unparseable frame. *)

val recv_json : ?timeout_ms:int -> t -> (Obs.Json.t, string) result
(** Read the next frame as raw JSON. *)

val close : t -> unit
