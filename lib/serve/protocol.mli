(** The [injcrpq-serve/1] wire protocol.

    One JSON object per line in each direction (newline-delimited).  On
    connect the server sends a single {!greeting} line; after that every
    client line is a {!request} and every server line a {!response}
    carrying the request's [id] verbatim, so clients may pipeline
    requests and match completions out of order.

    The protocol layer parses and renders frames only — it never
    evaluates queries.  Query/graph strings are passed through opaquely;
    the serving engine compiles them, so a bad query is an [error]
    {e response}, not a dropped connection. *)

val schema : string
(** ["injcrpq-serve/1"]. *)

val max_frame_bytes : int
(** Ceiling on one frame (1 MiB): the reader refuses to buffer beyond
    this, so one client cannot balloon the daemon's memory. *)

(** {1 Operations} *)

type op =
  | Eval  (** evaluate [query] over [graph] (optionally check [tuple]) *)
  | Contain  (** decide [lhs] ⊆ [rhs] under [sem] *)
  | Lint  (** static-analysis diagnostics for [query] *)
  | Optimize  (** certified rewrite of [query] *)
  | Stats  (** serve counters + metrics snapshot (never queued) *)
  | Ping  (** liveness probe (never queued) *)

val op_to_string : op -> string
val op_of_string : string -> op option

val queued : op -> bool
(** Whether the op goes through admission control and the worker pool
    ([Stats] and [Ping] are answered inline by the accept loop, so they
    stay available under full load). *)

(** {1 Requests} *)

type request = {
  id : Obs.Json.t;  (** echoed verbatim in the response; [Null] if absent *)
  op : op;
  session : string;  (** quota key; defaults to ["anon"] *)
  sem : Semantics.t;
  query : string option;
  lhs : string option;
  rhs : string option;
  graph : string option;  (** name of a preloaded graph *)
  tuple : int list option;
  bound : int;  (** containment / certificate search bound *)
  timeout_ms : int option;  (** client budget; the server caps it *)
  max_steps : int option;
}

val request :
  ?id:Obs.Json.t ->
  ?session:string ->
  ?sem:Semantics.t ->
  ?query:string ->
  ?lhs:string ->
  ?rhs:string ->
  ?graph:string ->
  ?tuple:int list ->
  ?bound:int ->
  ?timeout_ms:int ->
  ?max_steps:int ->
  op ->
  request

val request_to_json : request -> Obs.Json.t
val request_of_json : Obs.Json.t -> (request, string) result

val parse_request : string -> (request, string) result
(** One frame: JSON parse + {!request_of_json}. *)

(** {1 Responses} *)

type status =
  | Ok_  (** the op completed with a result *)
  | Unknown
      (** the op ran but degraded: guard trip, cancelled during drain, or
          an honest [Unknown] verdict from a bounded decider *)
  | Shed  (** admission control refused: request queue full *)
  | Quota  (** admission control refused: session over its token bucket *)
  | Error  (** bad frame or bad request (unparsable query, unknown graph) *)

val status_to_string : status -> string
val status_of_string : string -> status option

type response = {
  id : Obs.Json.t;
  status : status;
  op : op option;
  body : (string * Obs.Json.t) list;
      (** op-specific payload fields, merged into the response object;
          keys must avoid [schema]/[id]/[status]/[op] *)
}

val reserved_keys : string list

val response :
  ?id:Obs.Json.t ->
  ?op:op ->
  ?body:(string * Obs.Json.t) list ->
  status ->
  response

val shed_response : ?id:Obs.Json.t -> ?op:op -> retry_after_ms:int -> unit -> response
val quota_response : ?id:Obs.Json.t -> ?op:op -> retry_after_ms:int -> unit -> response

val error_response : ?id:Obs.Json.t -> ?op:op -> code:string -> string -> response
(** [code] is a stable diagnostic identifier ([E903] malformed frame,
    [E904] bad request, [E905] oversized frame). *)

val response_to_json : response -> Obs.Json.t
val response_of_json : Obs.Json.t -> (response, string) result
val parse_response : string -> (response, string) result

val greeting : workers:int -> graphs:string list -> Obs.Json.t
(** The banner line sent once per connection. *)
