(** Per-session token-bucket rate limiting.

    Each session id owns a bucket holding up to [burst] tokens that
    refills at [rate_per_s]; admitting a request costs one token.  An
    empty bucket rejects with a [retry_after_ms] hint — the time until
    one token will have accumulated — which the daemon forwards in its
    structured [quota] response.

    Time comes from {!Obs.Clock.now_ns}, so the fake clock drives the
    deterministic unit tests. *)

type policy = {
  rate_per_s : float;  (** sustained tokens per second (> 0) *)
  burst : float;  (** bucket capacity (>= 1) *)
}

val policy : ?burst:float -> rate_per_s:float -> unit -> policy
(** [burst] defaults to [max 1. rate_per_s].
    @raise Invalid_argument on non-positive rate or burst < 1. *)

type t

val create : policy -> t

type decision = Admit | Reject of { retry_after_ms : int }

val admit : t -> string -> decision
(** Take one token from the session's bucket (creating a full bucket on
    first sight of the session).  Thread-safe. *)

val sessions : t -> int
(** Sessions currently tracked (full, stale buckets are swept). *)
