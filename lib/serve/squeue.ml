type 'a t = {
  items : 'a Queue.t;
  bound : int;
  mutable closed : bool;
  mu : Mutex.t;
  nonempty : Condition.t;
}

let create ~bound =
  if bound < 1 then
    invalid_arg (Printf.sprintf "Squeue.create: bound %d < 1" bound);
  {
    items = Queue.create ();
    bound;
    closed = false;
    mu = Mutex.create ();
    nonempty = Condition.create ();
  }

let with_lock q f =
  Mutex.lock q.mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock q.mu) f

let try_push q x =
  with_lock q (fun () ->
      if q.closed || Queue.length q.items >= q.bound then false
      else begin
        Queue.push x q.items;
        Condition.signal q.nonempty;
        true
      end)

let pop q =
  with_lock q (fun () ->
      let rec wait () =
        if not (Queue.is_empty q.items) then Some (Queue.pop q.items)
        else if q.closed then None
        else begin
          Condition.wait q.nonempty q.mu;
          wait ()
        end
      in
      wait ())

let close q =
  with_lock q (fun () ->
      q.closed <- true;
      Condition.broadcast q.nonempty)

let length q = with_lock q (fun () -> Queue.length q.items)
let is_closed q = with_lock q (fun () -> q.closed)
