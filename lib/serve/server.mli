(** The [injcrpq serve] daemon: a fault-tolerant concurrent query
    service over the [injcrpq-serve/1] JSON-line protocol.

    Architecture: one accept/read loop (the calling thread of {!run})
    multiplexes the listening socket and every live connection with
    [select]; parsed requests pass admission control — per-session
    {!Quota} token buckets, then a bounded {!Squeue} — and are executed
    by a pool of OCaml 5 domain workers.  Every request runs under its
    own {!Guard.t} (deadline/fuel capped by the server config, plus a
    {!Guard.Cancel} token for drain), inside a {!Guard.Retry} boundary
    that retries transient trips with jittered backoff.  Failure is
    always a structured response: [shed] (queue full), [quota] (bucket
    empty), [unknown] (budget trip / cancelled / undecided), [error]
    (bad frame or bad request) — never a dropped connection, never a
    crash.

    Guard sites [serve.accept], [serve.dispatch] and [serve.worker] make
    the daemon's own internals chaos-injectable ([INJCRPQ_CHAOS]); the
    tests assert it degrades rather than dies. *)

type config = {
  graphs : (string * Graph.t) list;
      (** preloaded, shared, immutable; requests refer to them by name.
          A single graph is additionally addressable as ["default"]. *)
  workers : int;  (** domain pool size (>= 1) *)
  queue_bound : int;  (** admission queue capacity (>= 1) *)
  timeout_ms : int;  (** server cap on any request's deadline *)
  max_steps : int option;  (** server cap on any request's fuel *)
  quota : Quota.policy option;  (** per-session rate limit; [None] = off *)
  retry : Guard.Retry.policy;  (** backoff for transient worker trips *)
  drain_ms : int;
      (** grace period on shutdown before in-flight requests are
          cancelled via their tokens *)
  answer_cap : int;  (** max answer tuples returned per eval response *)
}

val config :
  ?workers:int ->
  ?queue_bound:int ->
  ?timeout_ms:int ->
  ?max_steps:int ->
  ?quota:Quota.policy ->
  ?retry:Guard.Retry.policy ->
  ?drain_ms:int ->
  ?answer_cap:int ->
  graphs:(string * Graph.t) list ->
  unit ->
  config
(** Defaults: 2 workers, queue bound 64, 5000ms timeout, no fuel cap,
    no quota, {!Guard.Retry.default}, 2000ms drain, 1000-answer cap.
    @raise Invalid_argument on out-of-range fields. *)

type t

val create : config -> t

val run :
  t -> ?listen:Unix.file_descr -> ?adopt:Unix.file_descr list -> unit -> unit
(** Serve until {!shutdown}.  [listen] is an already-bound, listening
    socket; [adopt] are pre-connected streams served from the start (a
    bench or test can drive the daemon over one end of a
    [Unix.socketpair]).  Every served fd is closed on return; the
    listener is not.  Blocks the calling thread; workers run on their
    own domains.  @raise Invalid_argument when given nothing to serve. *)

val shutdown : t -> unit
(** Begin graceful drain: stop accepting, finish queued and in-flight
    work (cancelling whatever is still running after [drain_ms] via its
    token), then return from {!run}.  Safe to call from a signal
    handler or another domain; idempotent. *)

val draining : t -> bool

val handle_request : t -> Protocol.request -> Protocol.response
(** The engine behind the worker pool, exposed for direct use: execute
    one request synchronously under the server's guard/retry policy
    (admission control not included).  In-process consumers and tests
    use this to exercise the execution path without sockets. *)

(** {1 Introspection} *)

val stats_body : t -> (string * Obs.Json.t) list
(** The [stats] response payload: uptime, queue depth, live workers,
    session count, the [serve.*] counters, a full metrics snapshot and
    its Prometheus exposition text. *)
