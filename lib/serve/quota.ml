type policy = { rate_per_s : float; burst : float }

let policy ?burst ~rate_per_s () =
  if rate_per_s <= 0.0 then
    invalid_arg
      (Printf.sprintf "Quota.policy: rate_per_s %g must be positive" rate_per_s);
  let burst = Option.value burst ~default:(Float.max 1.0 rate_per_s) in
  if burst < 1.0 then
    invalid_arg (Printf.sprintf "Quota.policy: burst %g < 1" burst);
  { rate_per_s; burst }

type bucket = { mutable tokens : float; mutable last_ns : int64 }

type t = {
  p : policy;
  buckets : (string, bucket) Hashtbl.t;
  mu : Mutex.t;
}

(* cap on distinct sessions tracked; beyond it, full buckets (sessions
   idle long enough to have refilled completely) are swept first *)
let max_sessions = 16_384

let create p = { p; buckets = Hashtbl.create 64; mu = Mutex.create () }

type decision = Admit | Reject of { retry_after_ms : int }

let refill t b now =
  let dt = Obs.Clock.ns_to_s (Int64.sub now b.last_ns) in
  if dt > 0.0 then begin
    b.tokens <- Float.min t.p.burst (b.tokens +. (dt *. t.p.rate_per_s));
    b.last_ns <- now
  end

let sweep t now =
  if Hashtbl.length t.buckets > max_sessions then begin
    let stale = ref [] in
    Hashtbl.iter
      (fun key b ->
        refill t b now;
        if b.tokens >= t.p.burst then stale := key :: !stale)
      t.buckets;
    List.iter (Hashtbl.remove t.buckets) !stale
  end

let admit t session =
  Mutex.lock t.mu;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.mu)
    (fun () ->
      let now = Obs.Clock.now_ns () in
      sweep t now;
      let b =
        match Hashtbl.find_opt t.buckets session with
        | Some b -> b
        | None ->
          let b = { tokens = t.p.burst; last_ns = now } in
          Hashtbl.add t.buckets session b;
          b
      in
      refill t b now;
      if b.tokens >= 1.0 then begin
        b.tokens <- b.tokens -. 1.0;
        Admit
      end
      else begin
        let missing = 1.0 -. b.tokens in
        let ms = int_of_float (Float.ceil (missing /. t.p.rate_per_s *. 1000.0)) in
        Reject { retry_after_ms = max 1 ms }
      end)

let sessions t =
  Mutex.lock t.mu;
  let n = Hashtbl.length t.buckets in
  Mutex.unlock t.mu;
  n
