(** A bounded multi-producer / multi-consumer queue — the daemon's
    admission-control buffer.

    [try_push] never blocks: a full queue answers [false] immediately,
    which the accept loop turns into a structured [shed] response
    instead of queueing unboundedly.  [pop] blocks workers until an item
    arrives or the queue is closed {e and} drained, so graceful drain is
    [close] + join. *)

type 'a t

val create : bound:int -> 'a t
(** @raise Invalid_argument when [bound < 1]. *)

val try_push : 'a t -> 'a -> bool
(** [false] when the queue is full or closed. *)

val pop : 'a t -> 'a option
(** Blocks until an item is available; [None] once the queue is closed
    and every queued item has been consumed. *)

val close : 'a t -> unit
(** Refuse further pushes and wake every blocked consumer.  Items
    already queued are still handed out. *)

val length : 'a t -> int
val is_closed : 'a t -> bool
