(* The serving engine.  See server.mli for the architecture overview.

   Robustness discipline, in order of the request path:
   - frames that do not parse answer a structured E903 error and leave
     the connection usable;
   - the serve.accept chaos site can shed any parsed request;
   - per-session token buckets reject with retry_after_ms;
   - the bounded queue sheds instead of growing;
   - workers run every request under a fresh capped Guard inside a
     Retry boundary, so transient (chaos) trips are retried with
     jittered backoff and real budget trips become [unknown] responses;
   - graceful drain closes admission, lets the pool finish, and cancels
     stragglers through their Cancel tokens after [drain_ms]. *)

type config = {
  graphs : (string * Graph.t) list;
  workers : int;
  queue_bound : int;
  timeout_ms : int;
  max_steps : int option;
  quota : Quota.policy option;
  retry : Guard.Retry.policy;
  drain_ms : int;
  answer_cap : int;
}

let config ?(workers = 2) ?(queue_bound = 64) ?(timeout_ms = 5000) ?max_steps
    ?quota ?(retry = Guard.Retry.default) ?(drain_ms = 2000)
    ?(answer_cap = 1000) ~graphs () =
  let pos what n =
    if n < 1 then invalid_arg (Printf.sprintf "Server.config: %s %d < 1" what n)
  in
  pos "workers" workers;
  pos "queue_bound" queue_bound;
  pos "timeout_ms" timeout_ms;
  pos "drain_ms" drain_ms;
  pos "answer_cap" answer_cap;
  (match max_steps with Some n -> pos "max_steps" n | None -> ());
  {
    graphs;
    workers;
    queue_bound;
    timeout_ms;
    max_steps;
    quota;
    retry;
    drain_ms;
    answer_cap;
  }

(* ------------------------------------------------------------------ *)
(* Metrics                                                             *)
(* ------------------------------------------------------------------ *)

let m_connections = Obs.Metrics.counter "serve.connections"
let m_accepted = Obs.Metrics.counter "serve.accepted"
let m_completed = Obs.Metrics.counter "serve.completed"
let m_shed = Obs.Metrics.counter "serve.shed"
let m_quota_rejected = Obs.Metrics.counter "serve.quota_rejected"
let m_retried = Obs.Metrics.counter "serve.retried"
let m_cancelled = Obs.Metrics.counter "serve.cancelled"
let m_unknown = Obs.Metrics.counter "serve.unknown"
let m_protocol_errors = Obs.Metrics.counter "serve.protocol_errors"
let m_bad_requests = Obs.Metrics.counter "serve.bad_requests"
let m_dropped_replies = Obs.Metrics.counter "serve.dropped_replies"
let m_queue_depth = Obs.Metrics.gauge "serve.queue_depth"
let m_inflight = Obs.Metrics.gauge "serve.inflight"
let m_latency = Obs.Metrics.histogram "serve.latency_us"

(* ------------------------------------------------------------------ *)
(* Connections and jobs                                                *)
(* ------------------------------------------------------------------ *)

type conn = {
  fd : Unix.file_descr;
  rbuf : Buffer.t;
  wmu : Mutex.t;
  mutable alive : bool;
  pending : int Atomic.t;  (* queued jobs not yet answered on this conn *)
}

type job = { jconn : conn; req : Protocol.request; enq_ns : int64 }

type t = {
  cfg : config;
  queue : job Squeue.t;
  quota : Quota.t option;
  stop : bool Atomic.t;
  pipe_r : Unix.file_descr;
  pipe_w : Unix.file_descr;
  next_uid : int Atomic.t;
  inflight : (int, Guard.Cancel.token) Hashtbl.t;
  infl_mu : Mutex.t;
  live_workers : int Atomic.t;
  started_ns : int64;
}

let create cfg =
  (* a server without metrics has no stats endpoint worth the name *)
  Obs.Metrics.set_enabled true;
  let pipe_r, pipe_w = Unix.pipe () in
  {
    cfg;
    queue = Squeue.create ~bound:cfg.queue_bound;
    quota = Option.map Quota.create cfg.quota;
    stop = Atomic.make false;
    pipe_r;
    pipe_w;
    next_uid = Atomic.make 1;
    inflight = Hashtbl.create 64;
    infl_mu = Mutex.create ();
    live_workers = Atomic.make 0;
    started_ns = Obs.Clock.now_ns ();
  }

let draining t = Atomic.get t.stop

let shutdown t =
  if not (Atomic.exchange t.stop true) then begin
    if Obs.Events.enabled () then
      Obs.Events.emit Obs.Events.Info "serve.shutdown" [];
    (* wake the select loop; failure only means it is already gone *)
    try ignore (Unix.write t.pipe_w (Bytes.of_string "x") 0 1)
    with Unix.Unix_error _ -> ()
  end

(* ------------------------------------------------------------------ *)
(* Stats                                                               *)
(* ------------------------------------------------------------------ *)

(* approximate percentile from a log2 histogram: the upper edge of the
   first bucket whose cumulative count reaches the rank *)
let histogram_percentile buckets count q =
  if count = 0 then 0
  else begin
    let rank = Float.max 1.0 (Float.ceil (q *. float_of_int count)) in
    let rec go acc = function
      | [] -> 0
      | (k, n) :: rest ->
        let acc = acc + n in
        if float_of_int acc >= rank then (1 lsl (k + 1)) - 1 else go acc rest
    in
    go 0 (List.sort compare buckets)
  end

let stats_body t =
  let snap = Obs.Metrics.snapshot () in
  let serve_fields =
    List.filter_map
      (fun (name, v) ->
        if String.length name >= 6 && String.sub name 0 6 = "serve." then
          match v with
          | Obs.Metrics.Counter c -> Some (name, Obs.Json.Int c)
          | Obs.Metrics.Gauge g -> Some (name, Obs.Json.Int g)
          | Obs.Metrics.Histogram { count; sum; max; buckets } ->
            Some
              ( name,
                Obs.Json.Obj
                  [
                    ("count", Obs.Json.Int count);
                    ("sum", Obs.Json.Int sum);
                    ("max", Obs.Json.Int max);
                    ( "p50",
                      Obs.Json.Int (histogram_percentile buckets count 0.50) );
                    ( "p99",
                      Obs.Json.Int (histogram_percentile buckets count 0.99) );
                  ] )
        else None)
      snap
  in
  [
    ( "uptime_ns",
      Obs.Json.Int (Int64.to_int (Int64.sub (Obs.Clock.now_ns ()) t.started_ns))
    );
    ("queue_depth", Obs.Json.Int (Squeue.length t.queue));
    ("queue_bound", Obs.Json.Int t.cfg.queue_bound);
    ("workers", Obs.Json.Int t.cfg.workers);
    ("live_workers", Obs.Json.Int (Atomic.get t.live_workers));
    ("draining", Obs.Json.Bool (Atomic.get t.stop));
    ( "sessions",
      Obs.Json.Int (match t.quota with None -> 0 | Some q -> Quota.sessions q)
    );
    ("serve", Obs.Json.Obj serve_fields);
    ("metrics", Obs.Metrics.to_json snap);
    ("expo", Obs.Json.String (Obs.Expo.to_prometheus snap));
  ]

(* ------------------------------------------------------------------ *)
(* Response delivery                                                   *)
(* ------------------------------------------------------------------ *)

let write_all fd s =
  let b = Bytes.of_string s in
  let n = Bytes.length b in
  let rec go off =
    if off < n then begin
      let w = Unix.write fd b off (n - off) in
      go (off + w)
    end
  in
  go 0

let send_json conn json =
  Mutex.lock conn.wmu;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock conn.wmu)
    (fun () ->
      if conn.alive then
        try write_all conn.fd (Obs.Json.to_string json ^ "\n")
        with Unix.Unix_error _ ->
          conn.alive <- false;
          Obs.Metrics.incr m_dropped_replies
      else Obs.Metrics.incr m_dropped_replies)

let send conn resp = send_json conn (Protocol.response_to_json resp)

(* ------------------------------------------------------------------ *)
(* The execution engine (one request, already admitted)                *)
(* ------------------------------------------------------------------ *)

let bad_request (req : Protocol.request) msg =
  Obs.Metrics.incr m_bad_requests;
  Protocol.error_response ~id:req.id ~op:req.op ~code:"E904" msg

let resolve_graph t (req : Protocol.request) =
  match (req.graph, t.cfg.graphs) with
  | Some name, graphs -> (
    match List.assoc_opt name graphs with
    | Some g -> Ok g
    | None -> (
      match (name, graphs) with
      | "default", [ (_, g) ] -> Ok g
      | _ ->
        Error
          (Printf.sprintf "unknown graph %S (loaded: %s)" name
             (match graphs with
             | [] -> "none"
             | l -> String.concat ", " (List.map fst l)))))
  | None, [ (_, g) ] -> Ok g
  | None, [] -> Error "no graphs loaded on this server"
  | None, l ->
    Error
      (Printf.sprintf "several graphs loaded (%s): name one with \"graph\""
         (String.concat ", " (List.map fst l)))

let parse_query what = function
  | None -> Error (Printf.sprintf "field %S required for this op" what)
  | Some s -> (
    match Crpq.parse_result s with
    | Ok q -> Ok q
    | Error e ->
      Error (Printf.sprintf "%s: %s" what (Crpq.string_of_parse_error e)))

let containment_reason_fields r =
  let kind =
    match r with
    | Containment.Resource_exhausted trip -> Guard.reason_kind trip.Guard.reason
    | Containment.Budget_exhausted _ -> "search-budget"
    | Containment.Undecided _ -> "undecided"
  in
  Obs.Json.Obj
    [
      ("kind", Obs.Json.String kind);
      ("detail", Obs.Json.String (Containment.reason_to_string r));
    ]

(* the op body proper; runs inside the request guard, so every decider
   checkpoint below can trip (and the serve.worker site makes the
   serving layer itself chaos-injectable) *)
let exec t (req : Protocol.request) =
  Guard.checkpoint "serve.worker";
  let ok body = Protocol.response ~id:req.id ~op:req.op ~body Protocol.Ok_ in
  match req.op with
  | Protocol.Ping -> ok [ ("pong", Obs.Json.Bool true) ]
  | Protocol.Stats -> ok (stats_body t)
  | Protocol.Eval -> (
    match parse_query "query" req.query with
    | Error msg -> bad_request req msg
    | Ok q -> (
      match resolve_graph t req with
      | Error msg -> bad_request req msg
      | Ok g -> (
        match req.tuple with
        | Some tup ->
          ok
            [
              ("check", Obs.Json.Bool (Eval.check req.sem q g tup));
              ("tuple", Obs.Json.List (List.map (fun n -> Obs.Json.Int n) tup));
            ]
        | None ->
          let answers = Eval.eval req.sem q g in
          let total = List.length answers in
          let shown = List.filteri (fun i _ -> i < t.cfg.answer_cap) answers in
          ok
            [
              ("answers", Obs.Json.Int total);
              ( "tuples",
                Obs.Json.List
                  (List.map
                     (fun tup ->
                       Obs.Json.List (List.map (fun n -> Obs.Json.Int n) tup))
                     shown) );
              ("truncated", Obs.Json.Bool (total > t.cfg.answer_cap));
            ])))
  | Protocol.Contain -> (
    match (parse_query "lhs" req.lhs, parse_query "rhs" req.rhs) with
    | Error msg, _ | _, Error msg -> bad_request req msg
    | Ok q1, Ok q2 -> (
      let strategy = Containment.strategy_name req.sem q1 q2 in
      let base verdict =
        [
          ("verdict", Obs.Json.String verdict);
          ("strategy", Obs.Json.String strategy);
        ]
      in
      match Containment.decide ~bound:req.bound req.sem q1 q2 with
      | Containment.Contained -> ok (base "contained")
      | Containment.Not_contained w ->
        ok
          (base "not-contained"
          @ [
              ( "counterexample",
                Obs.Json.String
                  (Cq.to_string w.Containment.expansion.Expansion.cq) );
            ])
      | Containment.Unknown r ->
        (* the honest degraded verdict of the exit-code/Unknown contract:
           the decider ran out of budget or has no applicable procedure *)
        Protocol.response ~id:req.id ~op:req.op Protocol.Unknown
          ~body:(base "unknown" @ [ ("reason", containment_reason_fields r) ])))
  | Protocol.Lint -> (
    match parse_query "query" req.query with
    | Error msg -> bad_request req msg
    | Ok q ->
      let graph =
        match req.graph with
        | None -> None
        | Some _ -> Result.to_option (resolve_graph t req)
      in
      let ds = Analysis.lint ~sem:req.sem ~bound:req.bound ?graph q in
      let diags =
        match Obs.Json.parse (Diagnostic.list_to_json ds) with
        | Ok j -> j
        | Error _ -> Obs.Json.List []
      in
      ok
        [
          ("diagnostics", diags);
          ("errors", Obs.Json.Bool (Diagnostic.has_errors ds));
        ])
  | Protocol.Optimize -> (
    match parse_query "query" req.query with
    | Error msg -> bad_request req msg
    | Ok q ->
      let q', report = Analysis.optimize ~sem:req.sem ~bound:req.bound q in
      ok
        [
          ( "result",
            Analysis.optimize_json ~name:"query" ~sem:req.sem ~before:q
              ~after:q' report );
        ])

let unknown_of_trip (req : Protocol.request) (trip : Guard.trip) =
  Protocol.response ~id:req.id ~op:req.op Protocol.Unknown
    ~body:
      [
        ( "reason",
          Obs.Json.Obj
            [
              ("kind", Obs.Json.String (Guard.reason_kind trip.Guard.reason));
              ("site", Obs.Json.String trip.Guard.site);
              ("detail", Obs.Json.String (Guard.trip_to_string trip));
            ] );
      ]

let register_inflight t token =
  let uid = Atomic.fetch_and_add t.next_uid 1 in
  Mutex.lock t.infl_mu;
  Hashtbl.replace t.inflight uid token;
  Mutex.unlock t.infl_mu;
  Obs.Metrics.adjust m_inflight 1;
  uid

let unregister_inflight t uid =
  Mutex.lock t.infl_mu;
  Hashtbl.remove t.inflight uid;
  Mutex.unlock t.infl_mu;
  Obs.Metrics.adjust m_inflight (-1)

let cancel_inflight t =
  Mutex.lock t.infl_mu;
  let tokens = Hashtbl.fold (fun _ tok acc -> tok :: acc) t.inflight [] in
  Mutex.unlock t.infl_mu;
  List.iter Guard.Cancel.cancel tokens

let handle_request t (req : Protocol.request) =
  let cap_min client server =
    match client with None -> server | Some c -> min (max 1 c) server
  in
  let deadline_ms = cap_min req.timeout_ms t.cfg.timeout_ms in
  let fuel =
    match (req.max_steps, t.cfg.max_steps) with
    | None, s -> s
    | Some c, None -> Some (max 1 c)
    | Some c, Some s -> Some (min (max 1 c) s)
  in
  let token = Guard.Cancel.create ~label:"serve.drain" () in
  let uid = register_inflight t token in
  Fun.protect
    ~finally:(fun () -> unregister_inflight t uid)
    (fun () ->
      let attempt () =
        let guard = Guard.create ~deadline_ms ?fuel ~cancel:token () in
        match
          Guard.run ~guard (fun () ->
              Guard.checkpoint "serve.dispatch";
              exec t req)
        with
        | r -> r
        | exception e ->
          (* nothing a request does may kill its worker: an unexpected
             exception is an internal-error response, not a crash *)
          Ok
            (Protocol.error_response ~id:req.id ~op:req.op ~code:"E901"
               (Printexc.to_string e))
      in
      let retryable trip =
        Protocol.queued req.op && Guard.Retry.transient trip
      in
      let result, attempts =
        Guard.Retry.run ~policy:t.cfg.retry ~seed:uid ~retryable attempt
      in
      if attempts > 1 then Obs.Metrics.add m_retried (attempts - 1);
      match result with
      | Ok resp -> resp
      | Error ({ Guard.reason = Guard.Cancelled _; _ } as trip) ->
        Obs.Metrics.incr m_cancelled;
        unknown_of_trip req trip
      | Error trip ->
        Obs.Metrics.incr m_unknown;
        unknown_of_trip req trip)

(* ------------------------------------------------------------------ *)
(* Admission (accept loop side)                                        *)
(* ------------------------------------------------------------------ *)

let shed_retry_after_ms t = max 25 (t.cfg.timeout_ms / 20)

let handle_line t conn line =
  let line = String.trim line in
  if line = "" then ()
  else if String.length line > Protocol.max_frame_bytes then begin
    Obs.Metrics.incr m_protocol_errors;
    send conn
      (Protocol.error_response ~code:"E905"
         (Printf.sprintf "frame exceeds %d bytes" Protocol.max_frame_bytes))
  end
  else
    match Protocol.parse_request line with
    | Error msg ->
      Obs.Metrics.incr m_protocol_errors;
      if Obs.Events.enabled () then
        Obs.Events.emit Obs.Events.Warn "serve.protocol_error"
          [ ("detail", Obs.Json.String msg) ];
      send conn (Protocol.error_response ~code:"E903" msg)
    | Ok req -> (
      Obs.Metrics.incr m_accepted;
      (* the serve.accept chaos site: an injected trip here degrades the
         request to a shed response — the daemon survives its own
         admission path being killed *)
      match
        Guard.run
          ~guard:(Guard.unlimited ())
          (fun () -> Guard.checkpoint "serve.accept")
      with
      | Error _trip ->
        Obs.Metrics.incr m_shed;
        send conn
          (Protocol.shed_response ~id:req.id ~op:req.op
             ~retry_after_ms:(shed_retry_after_ms t) ())
      | Ok () ->
        if not (Protocol.queued req.op) then
          (* stats/ping bypass the queue so they answer under full load *)
          send conn
            (Protocol.response ~id:req.id ~op:req.op
               ~body:
                 (match req.op with
                 | Protocol.Stats -> stats_body t
                 | _ -> [ ("pong", Obs.Json.Bool true) ])
               Protocol.Ok_)
        else begin
          let quota_decision =
            match t.quota with
            | None -> Quota.Admit
            | Some q -> Quota.admit q req.session
          in
          match quota_decision with
          | Quota.Reject { retry_after_ms } ->
            Obs.Metrics.incr m_quota_rejected;
            send conn
              (Protocol.quota_response ~id:req.id ~op:req.op ~retry_after_ms ())
          | Quota.Admit ->
            let job = { jconn = conn; req; enq_ns = Obs.Clock.now_ns () } in
            Atomic.incr conn.pending;
            if Squeue.try_push t.queue job then
              Obs.Metrics.set m_queue_depth (Squeue.length t.queue)
            else begin
              Atomic.decr conn.pending;
              Obs.Metrics.incr m_shed;
              if Obs.Events.enabled () then
                Obs.Events.emit Obs.Events.Info "serve.shed"
                  [ ("queue_bound", Obs.Json.Int t.cfg.queue_bound) ];
              send conn
                (Protocol.shed_response ~id:req.id ~op:req.op
                   ~retry_after_ms:(shed_retry_after_ms t) ())
            end
        end)

(* ------------------------------------------------------------------ *)
(* Workers                                                             *)
(* ------------------------------------------------------------------ *)

let worker_loop t () =
  let rec loop () =
    match Squeue.pop t.queue with
    | None -> ()
    | Some job ->
      Obs.Metrics.set m_queue_depth (Squeue.length t.queue);
      let resp = handle_request t job.req in
      (match resp.Protocol.status with
      | Protocol.Ok_ -> Obs.Metrics.incr m_completed
      | _ -> ());
      let lat_us =
        Int64.to_int (Int64.sub (Obs.Clock.now_ns ()) job.enq_ns) / 1000
      in
      Obs.Metrics.observe m_latency lat_us;
      send job.jconn resp;
      Atomic.decr job.jconn.pending;
      loop ()
  in
  Fun.protect ~finally:(fun () -> Atomic.decr t.live_workers) loop

(* ------------------------------------------------------------------ *)
(* The accept/read loop                                                *)
(* ------------------------------------------------------------------ *)

let mk_conn fd =
  {
    fd;
    rbuf = Buffer.create 256;
    wmu = Mutex.create ();
    alive = true;
    pending = Atomic.make 0;
  }

let greet t conn =
  send_json conn
    (Protocol.greeting ~workers:t.cfg.workers ~graphs:(List.map fst t.cfg.graphs))

(* split complete frames out of the connection buffer *)
let drain_frames t conn =
  let data = Buffer.contents conn.rbuf in
  match String.rindex_opt data '\n' with
  | None ->
    if String.length data > Protocol.max_frame_bytes then begin
      Obs.Metrics.incr m_protocol_errors;
      send conn
        (Protocol.error_response ~code:"E905"
           (Printf.sprintf "frame exceeds %d bytes without a newline"
              Protocol.max_frame_bytes));
      (* no way to resynchronize mid-frame: drop the connection *)
      conn.alive <- false
    end
  | Some last ->
    let complete = String.sub data 0 last in
    let rest = String.sub data (last + 1) (String.length data - last - 1) in
    Buffer.clear conn.rbuf;
    Buffer.add_string conn.rbuf rest;
    List.iter (handle_line t conn) (String.split_on_char '\n' complete)

let read_conn t conn =
  let chunk = Bytes.create 65536 in
  match Unix.read conn.fd chunk 0 (Bytes.length chunk) with
  | 0 -> conn.alive <- false
  | n ->
    Buffer.add_subbytes conn.rbuf chunk 0 n;
    drain_frames t conn
  | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE | Unix.EBADF), _, _)
    ->
    conn.alive <- false
  | exception
      Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) ->
    ()

let run t ?listen ?(adopt = []) () =
  if listen = None && adopt = [] then
    invalid_arg "Server.run: nothing to serve (no listener, no connections)";
  let prev_sigpipe =
    try Some (Sys.signal Sys.sigpipe Sys.Signal_ignore)
    with Invalid_argument _ | Sys_error _ -> None
  in
  let conns = ref (List.map mk_conn adopt) in
  List.iter (fun _ -> Obs.Metrics.incr m_connections) !conns;
  List.iter (greet t) !conns;
  Atomic.set t.live_workers t.cfg.workers;
  let workers =
    List.init t.cfg.workers (fun _ -> Domain.spawn (worker_loop t))
  in
  if Obs.Events.enabled () then
    Obs.Events.emit Obs.Events.Info "serve.start"
      [
        ("workers", Obs.Json.Int t.cfg.workers);
        ("queue_bound", Obs.Json.Int t.cfg.queue_bound);
        ("graphs", Obs.Json.Int (List.length t.cfg.graphs));
      ];
  (* ------------------ select loop ------------------ *)
  while not (Atomic.get t.stop) do
    (* close and forget dead connections with no replies in flight *)
    conns :=
      List.filter
        (fun c ->
          if c.alive || Atomic.get c.pending > 0 then true
          else begin
            (try Unix.close c.fd with Unix.Unix_error _ -> ());
            false
          end)
        !conns;
    let watched =
      (t.pipe_r :: Option.to_list listen)
      @ List.filter_map (fun c -> if c.alive then Some c.fd else None) !conns
    in
    match Unix.select watched [] [] 0.25 with
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | exception Unix.Unix_error (Unix.EBADF, _, _) ->
      (* a connection died between collection and select; next iteration
         prunes it *)
      ()
    | ready, _, _ ->
      List.iter
        (fun fd ->
          if fd = t.pipe_r then begin
            let b = Bytes.create 16 in
            try ignore (Unix.read t.pipe_r b 0 16)
            with Unix.Unix_error _ -> ()
          end
          else if listen = Some fd then begin
            match Unix.accept fd with
            | cfd, _ ->
              let c = mk_conn cfd in
              Obs.Metrics.incr m_connections;
              conns := c :: !conns;
              greet t c
            | exception Unix.Unix_error _ -> ()
          end
          else
            match List.find_opt (fun c -> c.fd = fd) !conns with
            | Some c when c.alive -> read_conn t c
            | _ -> ())
        ready
  done;
  (* ------------------ graceful drain ------------------ *)
  if Obs.Events.enabled () then
    Obs.Events.emit Obs.Events.Info "serve.drain"
      [ ("queued", Obs.Json.Int (Squeue.length t.queue)) ];
  Squeue.close t.queue;
  let drain_deadline =
    Int64.add (Obs.Clock.now_ns ())
      (Int64.mul (Int64.of_int t.cfg.drain_ms) 1_000_000L)
  in
  while
    Atomic.get t.live_workers > 0
    && Int64.compare (Obs.Clock.now_ns ()) drain_deadline < 0
  do
    Unix.sleepf 0.005
  done;
  if Atomic.get t.live_workers > 0 then begin
    (* grace expired: flip every in-flight token; the next checkpoint in
       each request trips Cancelled and the worker answers [unknown] *)
    if Obs.Events.enabled () then
      Obs.Events.emit Obs.Events.Warn "serve.drain_cancel"
        [ ("inflight", Obs.Json.Int (Hashtbl.length t.inflight)) ];
    cancel_inflight t
  end;
  List.iter Domain.join workers;
  List.iter (fun c -> try Unix.close c.fd with Unix.Unix_error _ -> ()) !conns;
  (match prev_sigpipe with
  | Some b -> ( try Sys.set_signal Sys.sigpipe b with Invalid_argument _ -> ())
  | None -> ());
  if Obs.Events.enabled () then
    Obs.Events.emit Obs.Events.Info "serve.stopped" []
