type profile = Word.t array

type expanded = {
  source : Crpq.t;
  profile : profile;
  cq : Cq.t;
  atom_related : (Cq.var * Cq.var) list;
  atom_edges : (Cq.var * Word.symbol * Cq.var) list list;
}

let internal_var i j = Printf.sprintf "$%d.%d" i j

let distinct_pairs_of_group rename group =
  (* all unordered pairs of distinct renamed variables of one atom
     expansion *)
  let renamed = List.sort_uniq String.compare (List.map rename group) in
  let rec go = function
    | [] -> []
    | x :: rest -> List.map (fun y -> (x, y)) rest @ go rest
  in
  go renamed

let expand_internal ~check q profile =
  let atoms = q.Crpq.atoms in
  if Array.length profile <> List.length atoms then
    invalid_arg "Expansion.expand: profile arity mismatch";
  if check then
    List.iteri
      (fun i (a : Crpq.atom) ->
        if not (Regex.matches a.Crpq.lang profile.(i)) then
          invalid_arg
            (Printf.sprintf "Expansion.expand: word %s not in language %s"
               (Word.to_string profile.(i))
               (Regex.to_string a.Crpq.lang)))
      atoms;
  let cq_atoms = ref [] in
  let eqs = ref [] in
  let groups = ref [] in
  List.iteri
    (fun i (a : Crpq.atom) ->
      match profile.(i) with
      | [] ->
        eqs := (a.Crpq.src, a.Crpq.dst) :: !eqs;
        groups := [] :: !groups
      | w ->
        let k = List.length w in
        let node j =
          if j = 0 then a.Crpq.src
          else if j = k then a.Crpq.dst
          else internal_var i j
        in
        List.iteri
          (fun j sym -> cq_atoms := Cq.atom (node j) sym (node (j + 1)) :: !cq_atoms)
          w;
        groups := List.init (k + 1) node :: !groups)
    atoms;
  let with_eq = { Cq.base = Cq.make ~free:q.Crpq.free !cq_atoms; eqs = !eqs } in
  let cq, rename = Cq.collapse with_eq in
  let atom_related =
    List.sort_uniq Stdlib.compare
      (List.concat_map (distinct_pairs_of_group rename) !groups)
  in
  let atom_edges =
    (* per-atom expansion edges, renamed through Φ *)
    List.rev
      (snd
         (List.fold_left
            (fun (i, acc) (a : Crpq.atom) ->
              let w = profile.(i) in
              let k = List.length w in
              let node j =
                if j = 0 then a.Crpq.src
                else if j = k then a.Crpq.dst
                else internal_var i j
              in
              let edges =
                List.mapi (fun j sym -> (rename (node j), sym, rename (node (j + 1)))) w
              in
              (i + 1, edges :: acc))
            (0, []) q.Crpq.atoms))
  in
  { source = q; profile; cq; atom_related; atom_edges }

let expand q profile = expand_internal ~check:true q profile

let expand_unchecked q profile = expand_internal ~check:false q profile

let cartesian lists =
  List.fold_right
    (fun choices acc ->
      List.concat_map
        (fun c ->
          Guard.checkpoint "expansion.profiles";
          List.map (fun rest -> c :: rest) acc)
        choices)
    lists [ [] ]

let profiles_uncached ~max_len q =
  let word_choices (a : Crpq.atom) = Regex.enumerate ~max_len a.Crpq.lang in
  let per_atom = List.map word_choices q.Crpq.atoms in
  List.map Array.of_list (cartesian per_atom)

(* Both containment directions and every bound-increasing retry walk the
   same (bound, query) profile spaces; [Crpq.make] keeps atoms sorted,
   so the structural query value is a canonical memo key.  Cached lists
   are shared — nothing downstream mutates a profile array. *)
module Profiles_memo = Cache.Memo (struct
  type t = int * Crpq.t

  let equal = ( = )
  let hash = Hashtbl.hash
end)

let profiles_memo =
  Profiles_memo.create ~cap:128 ~site:"expansion.profiles" "expansion.profiles"

let profiles ~max_len q =
  Profiles_memo.find_or_add profiles_memo (max_len, q) (fun () ->
      profiles_uncached ~max_len q)

let expansions ~max_len q =
  List.map (expand_unchecked q) (profiles ~max_len q)

let finite_expansions q =
  if not (Crpq.is_finite q) then
    invalid_arg "Expansion.finite_expansions: query has infinite languages";
  let per_atom =
    List.map (fun (a : Crpq.atom) -> Regex.words_of_finite a.Crpq.lang) q.Crpq.atoms
  in
  List.map (fun p -> expand_unchecked q (Array.of_list p)) (cartesian per_atom)

(* ------------------------------------------------------------------ *)
(* a-inj merges: partitions avoiding atom-related pairs                *)
(* ------------------------------------------------------------------ *)

let partitions_avoiding vars forbidden =
  (* Enumerate set partitions of [vars] such that no forbidden pair lands
     in the same block, as assignments var -> block id (restricted growth
     strings). *)
  let vars = Array.of_list vars in
  let n = Array.length vars in
  let forbid = Hashtbl.create 16 in
  List.iter
    (fun (x, y) ->
      Hashtbl.replace forbid (x, y) ();
      Hashtbl.replace forbid (y, x) ())
    forbidden;
  let block = Array.make n 0 in
  let results = ref [] in
  let rec go i nblocks =
    Guard.checkpoint "expansion.partitions";
    if i = n then begin
      (* materialize: list of blocks as lists of vars *)
      let blocks = Array.make nblocks [] in
      for j = n - 1 downto 0 do
        blocks.(block.(j)) <- vars.(j) :: blocks.(block.(j))
      done;
      results := Array.to_list blocks :: !results
    end
    else
      for b = 0 to nblocks do
        let ok = ref true in
        for j = 0 to i - 1 do
          if block.(j) = b && Hashtbl.mem forbid (vars.(i), vars.(j)) then
            ok := false
        done;
        if !ok then begin
          block.(i) <- b;
          go (i + 1) (max nblocks (b + 1))
        end
      done
  in
  go 0 0;
  !results

let merges e =
  let vars = Cq.vars e.cq in
  let parts = partitions_avoiding vars e.atom_related in
  List.map
    (fun blocks ->
      let eqs =
        List.concat_map
          (fun block ->
            match block with
            | [] | [ _ ] -> []
            | rep :: rest -> List.map (fun x -> (rep, x)) rest)
          blocks
      in
      let cq, rename = Cq.collapse { Cq.base = e.cq; eqs } in
      let atom_related =
        List.sort_uniq Stdlib.compare
          (List.map (fun (x, y) -> (rename x, rename y)) e.atom_related)
      in
      let atom_edges =
        List.map
          (List.map (fun (x, sym, y) -> (rename x, sym, rename y)))
          e.atom_edges
      in
      { e with cq; atom_related; atom_edges })
    parts

let merge e eqs =
  let cq, rename = Cq.collapse { Cq.base = e.cq; eqs } in
  let atom_related =
    List.map (fun (x, y) -> (rename x, rename y)) e.atom_related
  in
  if List.exists (fun (x, y) -> String.equal x y) atom_related then
    invalid_arg "Expansion.merge: an atom-related pair would collapse";
  let atom_edges =
    List.map
      (List.map (fun (x, sym, y) -> (rename x, sym, rename y)))
      e.atom_edges
  in
  {
    e with
    cq;
    atom_related = List.sort_uniq Stdlib.compare atom_related;
    atom_edges;
  }

let dedup_expanded es =
  let seen = Hashtbl.create 64 in
  List.filter
    (fun e ->
      let key = (e.cq.Cq.atoms, e.cq.Cq.free) in
      if Hashtbl.mem seen key then false
      else begin
        Hashtbl.add seen key ();
        true
      end)
    es

let ainj_expansions ~max_len q =
  dedup_expanded (List.concat_map merges (expansions ~max_len q))

let finite_ainj_expansions q =
  dedup_expanded (List.concat_map merges (finite_expansions q))

let to_graph e =
  let g, _names = Cq.to_graph e.cq in
  (g, Cq.free_nodes e.cq)

let pp ppf e =
  Format.fprintf ppf "@[<v>expansion via profile [%a]@,%a@]"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf "; ")
       Word.pp)
    (Array.to_list e.profile) Cq.pp e.cq
