exception Found

(* Search telemetry (no-ops unless [Obs.Metrics] is enabled): candidate
   nodes examined by the join / witness searches, simple paths threaded
   by the query-injective engine, and evaluations performed. *)
let m_candidates = Obs.Metrics.counter "eval.candidates_tried"

let m_paths = Obs.Metrics.counter "eval.paths_threaded"

let m_evals = Obs.Metrics.counter "eval.evaluations"

(* ------------------------------------------------------------------ *)
(* Relational join for St / A_inj / A_edge_inj                         *)
(* ------------------------------------------------------------------ *)

(* Each atom contributes a binary relation over nodes; evaluation is a
   backtracking join over the query variables. *)
let relation_for sem g (a : Crpq.atom) =
  let nfa = Crpq.nfa a.Crpq.lang in
  match sem with
  | Semantics.St -> Bulk_rpq.st_relation g nfa
  | Semantics.A_inj ->
    let rel = Path_search.simple_reach_relation g nfa in
    (* an atom x -[L]-> y with syntactically distinct variables must map
       to a simple path, whose endpoints are distinct: clear the
       diagonal (it holds simple-cycle reachability) *)
    if not (String.equal a.Crpq.src a.Crpq.dst) then
      Array.iteri (fun u row -> row.(u) <- false) rel;
    rel
  | Semantics.A_edge_inj ->
    let n = Graph.nnodes g in
    let rel = Array.make_matrix (max n 1) (max n 1) false in
    for u = 0 to n - 1 do
      for v = 0 to n - 1 do
        rel.(u).(v) <- Path_search.exists_trail g nfa ~src:u ~dst:v
      done
    done;
    rel
  | Semantics.Q_inj | Semantics.Q_edge_inj ->
    invalid_arg "Eval.relation_for: global semantics has no per-atom relation"

(* Iterate over all variable assignments satisfying the per-atom binary
   relations; [fixed] pre-assigns variables. *)
let iter_join g vars constraints fixed f =
  let n = Graph.nnodes g in
  let nv = Array.length vars in
  let index = Hashtbl.create 16 in
  Array.iteri (fun i x -> Hashtbl.replace index x i) vars;
  let mu = Array.make nv (-1) in
  let ok = ref true in
  List.iter
    (fun (x, u) ->
      let i = Hashtbl.find index x in
      if mu.(i) >= 0 && mu.(i) <> u then ok := false else mu.(i) <- u)
    fixed;
  if !ok && (nv = 0 || n > 0) then begin
    let cons =
      List.map
        (fun (x, y, rel) -> (Hashtbl.find index x, Hashtbl.find index y, rel))
        constraints
    in
    let consistent i u =
      List.for_all
        (fun (xi, yi, rel) ->
          (xi <> i || mu.(yi) < 0 || rel.(u).(mu.(yi)))
          && (yi <> i || mu.(xi) < 0 || rel.(mu.(xi)).(u))
          && (xi <> i || yi <> i || rel.(u).(u)))
        cons
    in
    (* check pre-assigned variables *)
    let pre_ok =
      List.for_all
        (fun (xi, yi, rel) ->
          mu.(xi) < 0 || mu.(yi) < 0 || rel.(mu.(xi)).(mu.(yi)))
        cons
    in
    if pre_ok then begin
      let rec go i =
        if i = nv then f (Array.copy mu)
        else if mu.(i) >= 0 then go (i + 1)
        else
          for u = 0 to n - 1 do
            Obs.Metrics.incr m_candidates;
            if consistent i u then begin
              mu.(i) <- u;
              go (i + 1);
              mu.(i) <- -1
            end
          done
      in
      go 0
    end
  end

let join_semantics sem q g fixed f =
  let vars = Array.of_list (Crpq.vars q) in
  (* per-atom relations (graph × NFA products) are independent of each
     other: compute them across domains, keep the join sequential.  The
     bulk-dispatch caller is read here and re-established inside each
     worker closure — worker domains start with fresh DLS, so an ambient
     attribution (e.g. "containment" around an expansion check) would
     otherwise be lost at the fan-out boundary. *)
  let caller = Option.value (Bulk_rpq.current_caller ()) ~default:"eval" in
  let constraints =
    Parmap.map
      (fun (a : Crpq.atom) ->
        Bulk_rpq.with_caller caller (fun () ->
            (a.Crpq.src, a.Crpq.dst, relation_for sem g a)))
      q.Crpq.atoms
  in
  iter_join g vars constraints fixed f

(* ------------------------------------------------------------------ *)
(* Global semantics: Q_inj and Q_edge_inj                              *)
(* ------------------------------------------------------------------ *)

(* Query-injective: assign variables injectively; thread simple paths
   whose internal nodes avoid every assigned variable image and every
   other path's internal nodes. *)
let iter_qinj q g fixed f =
  let n = Graph.nnodes g in
  let vars = Array.of_list (Crpq.vars q) in
  let nv = Array.length vars in
  let index = Hashtbl.create 16 in
  Array.iteri (fun i x -> Hashtbl.replace index x i) vars;
  let mu = Array.make nv (-1) in
  let var_image = Array.make (max n 1) false in
  let used_internal = Array.make (max n 1) false in
  let ok = ref true in
  List.iter
    (fun (x, u) ->
      let i = Hashtbl.find index x in
      if mu.(i) >= 0 && mu.(i) <> u then ok := false
      else if mu.(i) < 0 then begin
        if var_image.(u) then ok := false
        else begin
          mu.(i) <- u;
          var_image.(u) <- true
        end
      end)
    fixed;
  if !ok && (nv = 0 || n > 0) then begin
    let assign i u =
      Obs.Metrics.incr m_candidates;
      mu.(i) <- u;
      var_image.(u) <- true
    in
    let unassign i u =
      mu.(i) <- -1;
      var_image.(u) <- false
    in
    let candidates () =
      List.filter
        (fun u -> (not var_image.(u)) && not used_internal.(u))
        (List.init n (fun u -> u))
    in
    let rec solve_atoms atoms =
      match atoms with
      | [] ->
        (* assign leftover variables injectively *)
        let rec fill i =
          if i = nv then f (Array.copy mu)
          else if mu.(i) >= 0 then fill (i + 1)
          else
            List.iter
              (fun u ->
                assign i u;
                fill (i + 1);
                unassign i u)
              (candidates ())
        in
        fill 0
      | (a : Crpq.atom) :: rest ->
        let nfa = Crpq.nfa a.Crpq.lang in
        let si = Hashtbl.find index a.Crpq.src in
        let ti = Hashtbl.find index a.Crpq.dst in
        let with_path () =
          let src = mu.(si) and dst = mu.(ti) in
          Path_search.iter_simple
            ~avoid_internal:(fun v -> var_image.(v) || used_internal.(v))
            g nfa ~src ~dst
            (fun p ->
              Obs.Metrics.incr m_paths;
              let internals = Path.internal_nodes p in
              List.iter (fun v -> used_internal.(v) <- true) internals;
              solve_atoms rest;
              List.iter (fun v -> used_internal.(v) <- false) internals)
        in
        let with_dst () =
          if mu.(ti) >= 0 then with_path ()
          else
            List.iter
              (fun u ->
                assign ti u;
                with_path ();
                unassign ti u)
              (candidates ())
        in
        if mu.(si) >= 0 then with_dst ()
        else
          List.iter
            (fun u ->
              assign si u;
              with_dst ();
              unassign si u)
            (candidates ())
    in
    solve_atoms q.Crpq.atoms
  end

(* Query-edge-injective: edge-injective homomorphism from an expansion.
   Operationally: trails with pairwise disjoint edges, the variable
   mapping unconstrained — with one exception mirroring expansion
   collapse: two atoms between the SAME variable pair that both take the
   same single letter denote the same expansion edge and may share it. *)
let iter_qedge q g fixed f =
  let n = Graph.nnodes g in
  let vars = Array.of_list (Crpq.vars q) in
  let nv = Array.length vars in
  let index = Hashtbl.create 16 in
  Array.iteri (fun i x -> Hashtbl.replace index x i) vars;
  let mu = Array.make nv (-1) in
  let used_edges : (Graph.edge, unit) Hashtbl.t = Hashtbl.create 32 in
  (* (src var, dst var, letter) ↦ the shared single expansion edge *)
  let shared_single : (Cq.var * Cq.var * Word.symbol, Graph.edge) Hashtbl.t =
    Hashtbl.create 8
  in
  let ok = ref true in
  List.iter
    (fun (x, u) ->
      let i = Hashtbl.find index x in
      if mu.(i) >= 0 && mu.(i) <> u then ok := false else mu.(i) <- u)
    fixed;
  if !ok && (nv = 0 || n > 0) then begin
    let rec solve_atoms atoms =
      match atoms with
      | [] ->
        let rec fill i =
          if i = nv then f (Array.copy mu)
          else if mu.(i) >= 0 then fill (i + 1)
          else
            for u = 0 to n - 1 do
              mu.(i) <- u;
              fill (i + 1);
              mu.(i) <- -1
            done
        in
        fill 0
      | (a : Crpq.atom) :: rest ->
        let nfa = Crpq.nfa a.Crpq.lang in
        let si = Hashtbl.find index a.Crpq.src in
        let ti = Hashtbl.find index a.Crpq.dst in
        let with_path () =
          (* reuse branch: a same-variable-pair atom already claimed a
             single-letter edge this atom can collapse onto *)
          let reusable =
            Hashtbl.fold
              (fun (s_v, t_v, letter) edge acc ->
                if s_v = a.Crpq.src && t_v = a.Crpq.dst && Nfa.accepts nfa [ letter ]
                then edge :: acc
                else acc)
              shared_single []
          in
          List.iter (fun _edge -> solve_atoms rest) reusable;
          Path_search.iter_trail
            ~avoid_edge:(Hashtbl.mem used_edges)
            g nfa ~src:mu.(si) ~dst:mu.(ti)
            (fun p ->
              Obs.Metrics.incr m_paths;
              let es = Path.edges p in
              List.iter (fun e -> Hashtbl.add used_edges e ()) es;
              let shared_key =
                match es with
                | [ ((_, letter, _) as e) ] ->
                  let key = (a.Crpq.src, a.Crpq.dst, letter) in
                  Hashtbl.add shared_single key e;
                  Some key
                | _ -> None
              in
              solve_atoms rest;
              Option.iter (fun key -> Hashtbl.remove shared_single key) shared_key;
              List.iter (fun e -> Hashtbl.remove used_edges e) es)
        in
        let with_dst () =
          if mu.(ti) >= 0 then with_path ()
          else
            for u = 0 to n - 1 do
              Obs.Metrics.incr m_candidates;
              mu.(ti) <- u;
              with_path ();
              mu.(ti) <- -1
            done
        in
        if mu.(si) >= 0 then with_dst ()
        else
          for u = 0 to n - 1 do
            Obs.Metrics.incr m_candidates;
            mu.(si) <- u;
            with_dst ();
            mu.(si) <- -1
          done
    in
    solve_atoms q.Crpq.atoms
  end

(* ------------------------------------------------------------------ *)
(* Putting it together                                                  *)
(* ------------------------------------------------------------------ *)

(* [bound] pre-assigns free-variable positions ([None] leaves a position
   open); [f] receives each projected answer tuple. *)
let iter_answers sem q g ~bound f =
  let disjuncts = Crpq.epsilon_free_disjuncts q in
  List.iter
    (fun d ->
      let fixed_d =
        List.concat
          (List.map2
             (fun x b -> match b with Some u -> [ (x, u) ] | None -> [])
             d.Crpq.free bound)
      in
      let report mu =
        let vars = Array.of_list (Crpq.vars d) in
        let index = Hashtbl.create 16 in
        Array.iteri (fun i x -> Hashtbl.replace index x i) vars;
        f (List.map (fun x -> mu.(Hashtbl.find index x)) d.Crpq.free)
      in
      match sem with
      | Semantics.St | Semantics.A_inj | Semantics.A_edge_inj ->
        join_semantics sem d g fixed_d report
      | Semantics.Q_inj -> iter_qinj d g fixed_d report
      | Semantics.Q_edge_inj -> iter_qedge d g fixed_d report)
    disjuncts

let check_impl sem q g tuple =
  if List.length tuple <> List.length q.Crpq.free then
    invalid_arg "Eval.check: tuple arity mismatch";
  (* repeated free variables must receive equal nodes *)
  let tbl = Hashtbl.create 8 in
  let consistent =
    List.for_all2
      (fun x u ->
        match Hashtbl.find_opt tbl x with
        | Some v -> v = u
        | None ->
          Hashtbl.add tbl x u;
          true)
      q.Crpq.free tuple
  in
  consistent
  &&
  try
    iter_answers sem q g ~bound:(List.map Option.some tuple) (fun _ ->
        raise Found);
    false
  with Found -> true

(* Pre-pass hook (identity by default): the analysis layer installs a
   certified optimizer here so [--optimize] / INJCRPQ_OPTIMIZE=on can
   rewrite queries before every evaluation without creating a
   dependency cycle (analysis depends on core, not vice versa). *)
let preprocessor : (Semantics.t -> Crpq.t -> Crpq.t) ref = ref (fun _ q -> q)

let set_preprocessor f = preprocessor := f

let check sem q g tuple =
  Obs.Metrics.incr m_evals;
  let q = !preprocessor sem q in
  if Obs.Trace.enabled () then
    Obs.Trace.span "eval.check" (fun () -> check_impl sem q g tuple)
  else check_impl sem q g tuple

let eval_impl sem q g =
  let acc = Hashtbl.create 64 in
  let bound = List.map (fun _ -> None) q.Crpq.free in
  iter_answers sem q g ~bound (fun t -> Hashtbl.replace acc t ());
  List.sort compare (Hashtbl.fold (fun t () l -> t :: l) acc [])

let eval sem q g =
  Obs.Metrics.incr m_evals;
  let q = !preprocessor sem q in
  if Obs.Trace.enabled () then Obs.Trace.span "eval.eval" (fun () -> eval_impl sem q g)
  else eval_impl sem q g

let eval_bool_impl sem q g =
  let bound = List.map (fun _ -> None) q.Crpq.free in
  try
    iter_answers sem q g ~bound (fun _ -> raise Found);
    false
  with Found -> true

let eval_bool sem q g =
  Obs.Metrics.incr m_evals;
  let q = !preprocessor sem q in
  if Obs.Trace.enabled () then
    Obs.Trace.span "eval.eval_bool" (fun () -> eval_bool_impl sem q g)
  else eval_bool_impl sem q g

(* ------------------------------------------------------------------ *)
(* Expansion-based reference semantics                                  *)
(* ------------------------------------------------------------------ *)

let hom_from_expansion sem (e : Expansion.expanded) g tuple =
  let pattern, names = Cq.to_graph e.Expansion.cq in
  let index = Hashtbl.create 16 in
  Array.iteri (fun i x -> Hashtbl.replace index x i) names;
  if List.length tuple <> List.length e.Expansion.cq.Cq.free then false
  else begin
    let fixed =
      List.map2 (fun x u -> (Hashtbl.find index x, u)) e.Expansion.cq.Cq.free tuple
    in
    match sem with
    | Semantics.St -> Morphism.exists ~fixed ~pattern ~target:g ()
    | Semantics.Q_inj -> Morphism.exists ~fixed ~injective:true ~pattern ~target:g ()
    | Semantics.A_inj ->
      let distinct_pairs =
        List.map
          (fun (x, y) -> (Hashtbl.find index x, Hashtbl.find index y))
          e.Expansion.atom_related
      in
      Morphism.exists ~fixed ~distinct_pairs ~pattern ~target:g ()
    | Semantics.A_edge_inj ->
      (* edge-injective within each atom expansion *)
      let groups =
        List.map
          (List.map (fun (x, sym, y) ->
               (Hashtbl.find index x, sym, Hashtbl.find index y)))
          e.Expansion.atom_edges
      in
      Morphism.exists ~fixed ~distinct_edge_groups:groups ~pattern ~target:g ()
    | Semantics.Q_edge_inj ->
      (* globally edge-injective: one group with every expansion edge *)
      Morphism.exists ~fixed
        ~distinct_edge_groups:[ Graph.edges pattern ]
        ~pattern ~target:g ()
  end

let check_via_expansions sem q g tuple =
  let n = Graph.nnodes g in
  let max_len =
    match sem with
    | Semantics.St ->
      let max_states =
        List.fold_left
          (fun m (a : Crpq.atom) -> max m (Crpq.nfa a.Crpq.lang).Nfa.nstates)
          1 q.Crpq.atoms
      in
      n * max_states
    | Semantics.A_inj | Semantics.Q_inj -> n
    (* a trail uses each edge at most once *)
    | Semantics.A_edge_inj | Semantics.Q_edge_inj -> Graph.nedges g
  in
  List.exists
    (fun e -> hom_from_expansion sem e g tuple)
    (Expansion.expansions ~max_len q)
