(** Conjunctive regular path queries (Section 2).

    A CRPQ is a conjunction of atoms {m x \xrightarrow{L} y} with
    regular-expression languages, plus a tuple of (not necessarily
    distinct) free variables.  The classes of the paper:

    - [CQ]: every language a single symbol;
    - [CRPQfin]: every language finite (no Kleene star / plus);
    - [CRPQ]: unrestricted. *)

type var = string

type atom = { src : var; lang : Regex.t; dst : var }

type t = private { atoms : atom list; free : var list }
(** [atoms] is sorted but may contain duplicates: under query-injective
    semantics two identical atoms demand two internally disjoint paths,
    so duplicate atoms are not idempotent. *)

val make : free:var list -> atom list -> t

val atom : var -> Regex.t -> var -> atom

(** Convenience: [atom'] parses the regular expression. *)
val atom' : var -> string -> var -> atom

val vars : t -> var list

val is_boolean : t -> bool

val alphabet : t -> Word.symbol list

(** Number of atoms. *)
val size : t -> int

type cls = Class_cq | Class_fin | Class_crpq

val classify : t -> cls

val is_cq : t -> bool

val is_finite : t -> bool

(** Injection of CQs into CRPQs. *)
val of_cq : Cq.t -> t

(** Partial inverse of {!of_cq}: succeeds when every language is
    equivalent to a single symbol. *)
val to_cq : t -> Cq.t option

(** Memoized NFA of an atom's language. *)
val nfa : Regex.t -> Nfa.t

(** Does some atom denote the empty language (query unsatisfiable)? *)
val has_empty_language : t -> bool

(** {1 Epsilon elimination}

    Every CRPQ is equivalent (under all semantics, Section 2.1) to a
    union of {m \varepsilon}-free CRPQs: for each atom whose language
    contains {m \varepsilon}, either remove {m \varepsilon} from the
    language or collapse the atom's endpoints.  Unsatisfiable disjuncts
    (an atom with empty language) are dropped. *)
val epsilon_free_disjuncts : t -> t list

(** {1 Concrete syntax}

    [Q(x, y) :- x -[(ab)*]-> y, y -[c*]-> x]; the head is optional
    (Boolean query).  Regular expressions use the {!Regex.parse}
    syntax. *)

type parse_error = {
  reason : string;  (** what was expected / what went wrong *)
  fragment : string;  (** the offending piece of input *)
  position : int option;
      (** byte offset of [fragment] in the input, when recoverable *)
}

val string_of_parse_error : parse_error -> string

(** Structured-error parser: never raises. *)
val parse_result : string -> (t, parse_error) result

(** @raise Parse_error on malformed input (rendered {!parse_error}). *)
val parse : string -> t

exception Parse_error of string

val pp : Format.formatter -> t -> unit

val to_string : t -> string
