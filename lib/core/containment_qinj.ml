exception Unsupported of string

type result =
  | Qinj_contained
  | Qinj_not_contained of Expansion.expanded

type stats = {
  lhs_disjuncts : int;
  rhs_disjuncts : int;
  abstractions_checked : int;
  morphism_types : int;
}

(* Search telemetry (no-ops unless [Obs.Metrics] is enabled).  The
   per-call [stats] record above is exact but scoped to one decision;
   these aggregate across a whole run for `--stats` / bench output. *)
let m_abstraction_states = Obs.Metrics.counter "qinj.abstraction_states"

let m_abstractions_checked = Obs.Metrics.counter "qinj.abstractions_checked"

let m_morphism_types = Obs.Metrics.counter "qinj.morphism_types"

(* ------------------------------------------------------------------ *)
(* Square boolean relations over the states of A_Q2, as bytes           *)
(* ------------------------------------------------------------------ *)

module Rel = struct
  type t = Bytes.t

  let create n = Bytes.make (n * n) '0'

  let identity n =
    let r = create n in
    for q = 0 to n - 1 do
      Bytes.set r ((q * n) + q) '1'
    done;
    r

  let get r n q q' = Bytes.get r ((q * n) + q') = '1'

  let set r n q q' = Bytes.set r ((q * n) + q') '1'

  (* r ∘ Δa where [succs.(q)] lists a-successors of q *)
  let compose r n (succs : int list array) =
    let out = create n in
    for q = 0 to n - 1 do
      for p = 0 to n - 1 do
        if get r n q p then List.iter (fun p' -> set out n q p') succs.(p)
      done
    done;
    out

  let union r s =
    let out = Bytes.copy r in
    Bytes.iteri (fun i c -> if c = '1' then Bytes.set out i '1') s;
    out

  (* left × right: all pairs (q, q') with q in left, q' in right *)
  let of_product n left right =
    let out = create n in
    List.iter (fun q -> List.iter (fun q' -> set out n q q') right) left;
    out
end

(* ------------------------------------------------------------------ *)
(* Language surgery for the Remark C.2 rewriting                       *)
(* ------------------------------------------------------------------ *)

(* L \ {a} for ε-free L: single letters of L other than a, plus all words
   of length >= 2, via the derivative decomposition
   L ∩ Σ^{>=2} = Σ_b b · ((b⁻¹L) \ ε). *)
let remove_letter_word lang a =
  let letters = Regex.alphabet lang in
  let singles =
    List.filter
      (fun b -> (not (String.equal a b)) && Regex.nullable (Regex.derivative b lang))
      letters
  in
  let longs =
    List.map
      (fun b -> Regex.seq (Regex.sym b) (Regex.remove_eps (Regex.derivative b lang)))
      letters
  in
  Regex.alt (Regex.alt_words (List.map (fun b -> [ b ]) singles))
    (Regex.alt_list longs)

let single_letters lang =
  List.filter
    (fun b -> Regex.nullable (Regex.derivative b lang))
    (Regex.alphabet lang)

let rec remove_once x = function
  | [] -> []
  | y :: rest -> if y = x then rest else y :: remove_once x rest

(* Remark C.1: concatenate away non-free (1,1)-variables. *)
let normalize_concat q =
  let rec go (q : Crpq.t) =
    let vars = Crpq.vars q in
    let incoming y = List.filter (fun (a : Crpq.atom) -> a.Crpq.dst = y) q.Crpq.atoms in
    let outgoing y = List.filter (fun (a : Crpq.atom) -> a.Crpq.src = y) q.Crpq.atoms in
    let candidate y =
      if List.mem y q.Crpq.free then None
      else
        match incoming y, outgoing y with
        | [ a ], [ b ] when a <> b && a.Crpq.src <> y && b.Crpq.dst <> y ->
          Some (y, a, b)
        | _ -> None
    in
    match List.find_map candidate vars with
    | None -> q
    | Some (_, a, b) ->
      let others = remove_once a (remove_once b q.Crpq.atoms) in
      let merged =
        Crpq.atom a.Crpq.src (Regex.Seq (a.Crpq.lang, b.Crpq.lang)) b.Crpq.dst
      in
      go (Crpq.make ~free:q.Crpq.free (merged :: others))
  in
  go q

(* Remark C.2 (ii): no two parallel atoms may share a single-letter word.
   Split into a union: one of them gives up the letter, or both take it
   and merge into a single-letter atom. *)
let split_parallel_letters q =
  let find_conflict (q : Crpq.t) =
    let atoms = Array.of_list q.Crpq.atoms in
    let n = Array.length atoms in
    let rec scan i j =
      if i >= n then None
      else if j >= n then scan (i + 1) (i + 2)
      else begin
        let a = atoms.(i) and b = atoms.(j) in
        if a.Crpq.src = b.Crpq.src && a.Crpq.dst = b.Crpq.dst then begin
          let shared =
            List.filter
              (fun l -> List.mem l (single_letters b.Crpq.lang))
              (single_letters a.Crpq.lang)
          in
          match shared with
          | [] -> scan i (j + 1)
          | l :: _ -> Some (a, b, l)
        end
        else scan i (j + 1)
      end
    in
    scan 0 1
  in
  let rec go q =
    match find_conflict q with
    | None -> [ q ]
    | Some (a, b, l) ->
      let others = remove_once a (remove_once b q.Crpq.atoms) in
      let variant atoms = Crpq.make ~free:q.Crpq.free atoms in
      let without_empty qs =
        List.filter (fun p -> not (Crpq.has_empty_language p)) qs
      in
      let v1 =
        variant ({ a with Crpq.lang = remove_letter_word a.Crpq.lang l } :: b :: others)
      in
      let v2 =
        variant (a :: { b with Crpq.lang = remove_letter_word b.Crpq.lang l } :: others)
      in
      let v3 =
        variant (Crpq.atom a.Crpq.src (Regex.sym l) a.Crpq.dst :: others)
      in
      List.concat_map go (without_empty [ v1; v2; v3 ])
  in
  List.sort_uniq Stdlib.compare (go q)

(* ------------------------------------------------------------------ *)
(* The combined right-hand automaton A_Q2                              *)
(* ------------------------------------------------------------------ *)

type aq2 = {
  n : int;  (** number of states *)
  atoms : (int * Crpq.atom) array;  (** (disjunct id, atom) per atom id *)
  ranges : (int * int) array;  (** state range [lo, hi) per atom id *)
  initials : int list;  (** component initial states *)
  finals : int list;  (** component final states *)
  succs : (Word.symbol, int list array) Hashtbl.t;
}

let build_aq2 ~alphabet rhs_disjuncts =
  let atoms =
    Array.of_list
      (List.concat
         (List.mapi
            (fun di (d : Crpq.t) -> List.map (fun a -> (di, a)) d.Crpq.atoms)
            rhs_disjuncts))
  in
  if Array.length atoms = 0 then None
  else begin
    let nfas =
      Array.to_list (Array.map (fun (_, a) -> Crpq.nfa a.Crpq.lang) atoms)
    in
    let combined, offsets = Nfa.union_list nfas in
    let ranges =
      Array.mapi
        (fun i nfa_i ->
          let lo = offsets.(i) in
          (lo, lo + nfa_i.Nfa.nstates))
        (Array.of_list nfas)
    in
    let initials = combined.Nfa.initials in
    let finals = Nfa.final_states combined in
    (* complete and co-complete over the common alphabet; the added sink
       and source states are outside every component range *)
    let completed = Nfa.co_complete ~alphabet (Nfa.complete ~alphabet combined) in
    let n = completed.Nfa.nstates in
    let succs = Hashtbl.create 16 in
    List.iter
      (fun letter ->
        let arr = Array.make n [] in
        for q = 0 to n - 1 do
          arr.(q) <-
            List.filter_map
              (fun (x, q') -> if String.equal x letter then Some q' else None)
              completed.Nfa.delta.(q)
        done;
        Hashtbl.replace succs letter arr)
      alphabet;
    Some { n; atoms; ranges; initials; finals; succs }
  end

(* ------------------------------------------------------------------ *)
(* Tracker: achievable abstraction values of a left atom               *)
(* ------------------------------------------------------------------ *)

type track = {
  lset : int list;  (** reached states of the atom's own NFA *)
  rel : Rel.t;
  plus : Rel.t;
  gap : Rel.t;
  infix : Rel.t;
  preffinal : Bytes.t;  (** length n *)
  sufrel : Rel.t;
  nonempty : bool;
}

let track_key t =
  String.concat "|"
    [
      String.concat "," (List.map string_of_int t.lset);
      Bytes.to_string t.rel;
      Bytes.to_string t.plus;
      Bytes.to_string t.gap;
      Bytes.to_string t.infix;
      Bytes.to_string t.preffinal;
      Bytes.to_string t.sufrel;
      (if t.nonempty then "1" else "0");
    ]

let value_key t =
  String.concat "|"
    [
      Bytes.to_string t.rel;
      Bytes.to_string t.plus;
      Bytes.to_string t.gap;
      Bytes.to_string t.infix;
    ]

type abs_value = {
  v_rel : Rel.t;
  v_plus : Rel.t;
  v_gap : Rel.t;
  v_infix : Rel.t;
  v_witness : Word.t;
}

(* All abstraction values achievable by words of L(A), with witnesses. *)
let achievable_values ~max_tracker_states (aq : aq2) (lang : Regex.t) =
  let lnfa = Crpq.nfa lang in
  let n = aq.n in
  let letters = Regex.alphabet lang in
  let reach_final rel q =
    List.exists (fun f -> Rel.get rel n q f) aq.finals
  in
  let init_track =
    {
      lset = List.sort_uniq compare lnfa.Nfa.initials;
      rel = Rel.identity n;
      plus = Rel.create n;
      gap = Rel.create n;
      infix = Rel.create n;
      preffinal = Bytes.make n '0';
      sufrel = Rel.create n;
      nonempty = false;
    }
  in
  let step t letter =
    match Hashtbl.find_opt aq.succs letter with
    | None -> None
    | Some succs ->
      let lset = Nfa.next_set lnfa t.lset letter in
      if lset = [] then None
      else begin
        let img_init =
          List.sort_uniq compare
            (List.concat_map (fun i -> succs.(i)) aq.initials)
        in
        let rel' = Rel.compose t.rel n succs in
        let reach_f = List.filter (reach_final t.rel) (List.init n (fun q -> q)) in
        let plus' =
          let base = Rel.compose t.plus n succs in
          if t.nonempty then Rel.union base (Rel.of_product n reach_f img_init)
          else base
        in
        let gap' =
          let base = Rel.compose t.gap n succs in
          let from_pref =
            List.filter (fun q -> Bytes.get t.preffinal q = '1') (List.init n (fun q -> q))
          in
          Rel.union base (Rel.of_product n from_pref img_init)
        in
        let preffinal' =
          let b = Bytes.copy t.preffinal in
          if t.nonempty then List.iter (fun q -> Bytes.set b q '1') reach_f;
          b
        in
        let delta_rel =
          let r = Rel.create n in
          Array.iteri (fun q qs -> List.iter (fun q' -> Rel.set r n q q') qs) succs;
          r
        in
        let sufrel' =
          let base = Rel.compose t.sufrel n succs in
          if t.nonempty then Rel.union base delta_rel else base
        in
        let infix' = Rel.union t.infix t.sufrel in
        Some
          {
            lset;
            rel = rel';
            plus = plus';
            gap = gap';
            infix = infix';
            preffinal = preffinal';
            sufrel = sufrel';
            nonempty = true;
          }
      end
  in
  let seen = Hashtbl.create 1024 in
  let values : (string, abs_value) Hashtbl.t = Hashtbl.create 64 in
  let queue = Queue.create () in
  Hashtbl.replace seen (track_key init_track) ();
  Queue.add (init_track, []) queue;
  let explored = ref 0 in
  while not (Queue.is_empty queue) do
    Guard.checkpoint "qinj.tracker";
    incr explored;
    Obs.Metrics.incr m_abstraction_states;
    if !explored > max_tracker_states then
      raise
        (Unsupported
           (Printf.sprintf "tracker exceeded %d states on language %s"
              max_tracker_states (Regex.to_string lang)));
    let t, rev_word = Queue.pop queue in
    if t.nonempty && List.exists (Nfa.is_final lnfa) t.lset then begin
      let key = value_key t in
      if not (Hashtbl.mem values key) then
        Hashtbl.replace values key
          {
            v_rel = t.rel;
            v_plus = t.plus;
            v_gap = t.gap;
            v_infix = t.infix;
            v_witness = List.rev rev_word;
          }
    end;
    List.iter
      (fun letter ->
        match step t letter with
        | None -> ()
        | Some t' ->
          let key = track_key t' in
          if not (Hashtbl.mem seen key) then begin
            Hashtbl.replace seen key ();
            Queue.add (t', letter :: rev_word) queue
          end)
      letters
  done;
  Hashtbl.fold (fun _ v acc -> v :: acc) values []

(* ------------------------------------------------------------------ *)
(* The tripled left-hand graph G                                       *)
(* ------------------------------------------------------------------ *)

type lhs = {
  d1 : Crpq.t;
  l_atoms : Crpq.atom array;
  var_of_node : string array;  (** names of var nodes; [""] for interiors *)
  node_of_var : (string, int) Hashtbl.t;
  nnodes : int;
  atom_path : int array array;  (** per atom: [|v0; i1; i2; v3|] *)
  gsucc : int list array;
  (* (u, v) -> (atom id, edge position 0..2) *)
  owner : (int * int, int * int) Hashtbl.t;
}

let build_lhs (d1 : Crpq.t) =
  let vars = Crpq.vars d1 in
  let node_of_var = Hashtbl.create 16 in
  List.iteri (fun i x -> Hashtbl.replace node_of_var x i) vars;
  let nvars = List.length vars in
  let l_atoms = Array.of_list d1.Crpq.atoms in
  let natoms = Array.length l_atoms in
  let nnodes = nvars + (2 * natoms) in
  let var_of_node = Array.make nnodes "" in
  List.iteri (fun i x -> var_of_node.(i) <- x) vars;
  let atom_path =
    Array.init natoms (fun i ->
        let a = l_atoms.(i) in
        [|
          Hashtbl.find node_of_var a.Crpq.src;
          nvars + (2 * i);
          nvars + (2 * i) + 1;
          Hashtbl.find node_of_var a.Crpq.dst;
        |])
  in
  let gsucc = Array.make nnodes [] in
  let owner = Hashtbl.create 32 in
  Array.iteri
    (fun i path ->
      for pos = 0 to 2 do
        let u = path.(pos) and v = path.(pos + 1) in
        gsucc.(u) <- v :: gsucc.(u);
        Hashtbl.replace owner (u, v) (i, pos)
      done)
    atom_path;
  { d1; l_atoms; var_of_node; node_of_var; nnodes; atom_path; gsucc; owner }

(* ------------------------------------------------------------------ *)
(* Morphism types                                                      *)
(* ------------------------------------------------------------------ *)

type rho = {
  r_atom : int;  (** RHS global atom id *)
  r_nodes : int array;  (** G nodes along the image path *)
}

type mtype = {
  m_paths : rho list;
  m_disjunct : int;
}

(* Enumerate the injective placements of disjunct [di] of the RHS into
   the tripled graph.  [f] receives each completed placement. *)
let iter_morphism_types lhs (aq : aq2) ~lhs_free ~(d2 : Crpq.t) ~di f =
  let rhs_atom_ids =
    Array.to_list
      (Array.mapi (fun id (dj, a) -> (id, dj, a)) aq.atoms)
    |> List.filter_map (fun (id, dj, a) -> if dj = di then Some (id, a) else None)
  in
  let varmap : (string, int) Hashtbl.t = Hashtbl.create 16 in
  (* owner of each G node: var name mapped there, or "" for path interior *)
  let used = Array.make lhs.nnodes false in
  (* seed free variables positionally *)
  let ok = ref true in
  List.iteri
    (fun pos y ->
      match List.nth_opt lhs_free pos with
      | None -> ok := false
      | Some target_node -> begin
        match Hashtbl.find_opt varmap y with
        | Some u -> if u <> target_node then ok := false
        | None ->
          if used.(target_node) then ok := false
          else begin
            Hashtbl.replace varmap y target_node;
            used.(target_node) <- true
          end
      end)
    d2.Crpq.free;
  if !ok then begin
    let assign_var y u k =
      Hashtbl.replace varmap y u;
      used.(u) <- true;
      k ();
      Hashtbl.remove varmap y;
      used.(u) <- false
    in
    let with_var y k =
      match Hashtbl.find_opt varmap y with
      | Some u -> k u
      | None ->
        for u = 0 to lhs.nnodes - 1 do
          if not used.(u) then assign_var y u (fun () -> k u)
        done
    in
    (* simple paths (cycles when src = dst) from s to t over unused
       interior nodes and unused edges; [k] receives the reversed node
       list.  Edge-disjointness across the placed paths is required:
       after the Remark C.2 rewrite, distinct right-hand atoms always
       expand to distinct edges of E2, so their images cannot share an
       edge of G. *)
    let used_edge : (int * int, unit) Hashtbl.t = Hashtbl.create 32 in
    let iter_paths s t k =
      let rec go u rev_nodes =
        List.iter
          (fun v ->
            if not (Hashtbl.mem used_edge (u, v)) then begin
              if v = t then begin
                Hashtbl.add used_edge (u, v) ();
                k (v :: rev_nodes);
                Hashtbl.remove used_edge (u, v)
              end
              else if not used.(v) then begin
                Hashtbl.add used_edge (u, v) ();
                used.(v) <- true;
                go v (v :: rev_nodes);
                used.(v) <- false;
                Hashtbl.remove used_edge (u, v)
              end
            end)
          lhs.gsucc.(u)
      in
      go s [ s ]
    in
    let rec place atoms acc =
      Guard.checkpoint "qinj.types";
      match atoms with
      | [] -> f { m_paths = List.rev acc; m_disjunct = di }
      | (id, (a : Crpq.atom)) :: rest ->
        with_var a.Crpq.src (fun s ->
            with_var a.Crpq.dst (fun t ->
                iter_paths s t (fun rev_nodes ->
                    let nodes = Array.of_list (List.rev rev_nodes) in
                    place rest ({ r_atom = id; r_nodes = nodes } :: acc))))
    in
    place rhs_atom_ids []
  end

(* ------------------------------------------------------------------ *)
(* Compatibility: coverage analysis and templates                      *)
(* ------------------------------------------------------------------ *)

type sexpr =
  | Lam of int  (** λ-variable id *)
  | Init of int  (** an initial state of RHS atom [id] *)
  | Fin of int  (** a final state of RHS atom [id] *)
  | Any  (** existentially quantified state of A_Q2 *)

type template = {
  t_latom : int;  (** LHS atom the element must belong to *)
  t_kind : [ `Rel | `Plus | `Gap | `Infix ];
  t_s1 : sexpr;
  t_s2 : sexpr;
}

exception Incompatible_structure

(* Analyze one morphism type into λ-variables and templates. *)
let templates_of_type lhs (aq : aq2) (m : mtype) =
  let lam_ids : (int * int, int) Hashtbl.t = Hashtbl.create 16 in
  let lam_domains = ref [] in
  let lam_count = ref 0 in
  let paths = Array.of_list m.m_paths in
  (* coverage per (lhs atom, edge position) *)
  let cover = Array.make_matrix (Array.length lhs.l_atoms) 3 None in
  Array.iteri
    (fun pi rho ->
      let k = Array.length rho.r_nodes - 1 in
      for j = 0 to k - 1 do
        let u = rho.r_nodes.(j) and v = rho.r_nodes.(j + 1) in
        match Hashtbl.find_opt lhs.owner (u, v) with
        | None -> raise Incompatible_structure
        | Some (ai, pos) -> cover.(ai).(pos) <- Some (pi, j)
      done)
    paths;
  let lam_of pi node =
    match Hashtbl.find_opt lam_ids (pi, node) with
    | Some id -> Lam id
    | None ->
      let id = !lam_count in
      incr lam_count;
      Hashtbl.replace lam_ids (pi, node) id;
      let lo, hi = aq.ranges.(paths.(pi).r_atom) in
      lam_domains := (id, (lo, hi)) :: !lam_domains;
      Lam id
  in
  (* state expression at the start of the edge (pi, j) *)
  let state_at_start pi j =
    if j = 0 then Init paths.(pi).r_atom
    else begin
      let node = paths.(pi).r_nodes.(j) in
      if String.equal lhs.var_of_node.(node) "" then raise Incompatible_structure
      else lam_of pi node
    end
  in
  let state_at_end pi j =
    let rho = paths.(pi) in
    if j + 1 = Array.length rho.r_nodes - 1 then Fin rho.r_atom
    else begin
      let node = rho.r_nodes.(j + 1) in
      if String.equal lhs.var_of_node.(node) "" then raise Incompatible_structure
      else lam_of pi node
    end
  in
  let templates = ref [] in
  let add_template t = templates := t :: !templates in
  Array.iteri
    (fun ai cov ->
      let c0 = cov.(0) and c1 = cov.(1) and c2 = cov.(2) in
      (* junction between adjacent covered edges: different steps of the
         same ρ that are not consecutive, or a ρ ending while another
         (necessarily the same self-loop ρ) starts *)
      let junction a b =
        match a, b with
        | Some (p1, j1), Some (p2, j2) ->
          if p1 = p2 && j2 = j1 + 1 then false
          else begin
            (* must be: ρ1 ends after edge a, ρ2 starts at edge b *)
            let last1 = j1 + 2 = Array.length paths.(p1).r_nodes in
            if last1 && j2 = 0 then true else raise Incompatible_structure
          end
        | _ -> false
      in
      match c0, c1, c2 with
      | None, None, None -> ()
      | Some (p, j), Some _, Some (p', j') when not (junction c0 c1 || junction c1 c2)
        ->
        (* full span, single segment *)
        add_template
          { t_latom = ai; t_kind = `Rel; t_s1 = state_at_start p j;
            t_s2 = state_at_end p' j' }
      | Some (p, j), Some _, Some (p', j') ->
        (* full span with one junction *)
        if junction c0 c1 && junction c1 c2 then raise Incompatible_structure;
        add_template
          { t_latom = ai; t_kind = `Plus; t_s1 = state_at_start p j;
            t_s2 = state_at_end p' j' }
      | Some (p, j), Some (p', j'), None ->
        if junction c0 c1 then raise Incompatible_structure;
        (* covered prefix ending at i2: ρ must end there *)
        if j' + 2 <> Array.length paths.(p').r_nodes then
          raise Incompatible_structure;
        add_template
          { t_latom = ai; t_kind = `Plus; t_s1 = state_at_start p j; t_s2 = Any }
      | Some (p, j), None, None ->
        if j + 2 <> Array.length paths.(p).r_nodes then
          raise Incompatible_structure;
        add_template
          { t_latom = ai; t_kind = `Plus; t_s1 = state_at_start p j; t_s2 = Any }
      | None, Some (_p, j), Some (p', j') ->
        if junction c1 c2 then raise Incompatible_structure;
        if j <> 0 then raise Incompatible_structure;
        add_template
          { t_latom = ai; t_kind = `Plus; t_s1 = Any; t_s2 = state_at_end p' j' }
      | None, None, Some (p, j) ->
        if j <> 0 then raise Incompatible_structure;
        add_template
          { t_latom = ai; t_kind = `Plus; t_s1 = Any; t_s2 = state_at_end p j }
      | None, Some (p, j), None ->
        if j <> 0 || j + 2 <> Array.length paths.(p).r_nodes then
          raise Incompatible_structure;
        add_template
          { t_latom = ai; t_kind = `Infix; t_s1 = Init paths.(p).r_atom;
            t_s2 = Fin paths.(p).r_atom }
      | Some (p, j), None, Some (p', j') ->
        (* gap: prefix segment must end its ρ, suffix segment must start
           its ρ *)
        if j + 2 <> Array.length paths.(p).r_nodes then
          raise Incompatible_structure;
        if j' <> 0 then raise Incompatible_structure;
        add_template
          { t_latom = ai; t_kind = `Gap; t_s1 = state_at_start p j;
            t_s2 = state_at_end p' j' })
    cover;
  (!templates, List.rev !lam_domains)

(* ------------------------------------------------------------------ *)
(* Compatibility of a type with an abstraction                         *)
(* ------------------------------------------------------------------ *)

let compatible lhs (aq : aq2) (alpha : abs_value array) templates lam_domains =
  ignore lhs;
  let n = aq.n in
  let lam_val = Array.make (max (List.length lam_domains) 1) (-1) in
  let matrix ai = function
    | `Rel -> alpha.(ai).v_rel
    | `Plus -> alpha.(ai).v_plus
    | `Gap -> alpha.(ai).v_gap
    | `Infix -> alpha.(ai).v_infix
  in
  let init_states id =
    let lo, hi = aq.ranges.(id) in
    List.filter (fun q -> q >= lo && q < hi) aq.initials
  in
  let fin_states id =
    let lo, hi = aq.ranges.(id) in
    List.filter (fun q -> q >= lo && q < hi) aq.finals
  in
  let candidates = function
    | Lam i -> if lam_val.(i) >= 0 then [ lam_val.(i) ] else []
    | Init id -> init_states id
    | Fin id -> fin_states id
    | Any -> List.init n (fun q -> q)
  in
  let lam_ready = function
    | Lam i -> lam_val.(i) >= 0
    | Init _ | Fin _ | Any -> true
  in
  let template_ok t =
    let m = matrix t.t_latom t.t_kind in
    List.exists
      (fun q1 -> List.exists (fun q2 -> Rel.get m n q1 q2) (candidates t.t_s2))
      (candidates t.t_s1)
  in
  let check_ready () =
    List.for_all
      (fun t -> (not (lam_ready t.t_s1 && lam_ready t.t_s2)) || template_ok t)
      templates
  in
  let rec assign = function
    | [] -> check_ready ()
    | (id, (lo, hi)) :: rest ->
      let rec try_q q =
        if q >= hi then false
        else begin
          lam_val.(id) <- q;
          let ok = check_ready () && assign rest in
          lam_val.(id) <- -1;
          if ok then true else try_q (q + 1)
        end
      in
      try_q lo
  in
  assign lam_domains

(* ------------------------------------------------------------------ *)
(* Main decision procedure                                             *)
(* ------------------------------------------------------------------ *)

let shortest_expansion (d1 : Crpq.t) =
  let words =
    List.map
      (fun (a : Crpq.atom) ->
        match Regex.shortest_word (Regex.remove_eps a.Crpq.lang) with
        | Some w -> w
        | None -> raise (Unsupported "empty language in satisfiable disjunct"))
      d1.Crpq.atoms
  in
  Expansion.expand_unchecked d1 (Array.of_list words)

let counterexample_holds rhs_union (e : Expansion.expanded) =
  let g, tuple = Expansion.to_graph e in
  List.for_all (fun q2 -> not (Eval.check Semantics.Q_inj q2 g tuple)) rhs_union

let decide_union_with_stats_impl ~max_tracker_states ~max_types
    ~max_abstractions lhs_union rhs_union =
  let arity =
    match lhs_union @ rhs_union with
    | [] -> invalid_arg "Containment_qinj.decide_union: empty union"
    | q :: _ -> List.length q.Crpq.free
  in
  List.iter
    (fun (q : Crpq.t) ->
      if List.length q.Crpq.free <> arity then
        invalid_arg "Containment_qinj.decide: queries of different arities")
    (lhs_union @ rhs_union);
  let lhs_disjuncts =
    List.concat_map
      (fun q1 ->
        List.concat_map split_parallel_letters (Crpq.epsilon_free_disjuncts q1))
      lhs_union
  in
  let rhs_disjuncts =
    List.concat_map
      (fun q2 ->
        Crpq.epsilon_free_disjuncts q2
        |> List.map normalize_concat
        |> List.concat_map split_parallel_letters
        |> List.filter (fun d -> not (Crpq.has_empty_language d)))
      rhs_union
  in
  let alphabet =
    List.sort_uniq String.compare
      (List.concat_map Crpq.alphabet (lhs_disjuncts @ rhs_disjuncts))
  in
  let aq2_opt = build_aq2 ~alphabet rhs_disjuncts in
  let abstractions_checked = ref 0 in
  let morphism_types = ref 0 in
  let decide_one (d1 : Crpq.t) =
    (* returns Some counterexample / None if this disjunct is contained *)
    if Crpq.has_empty_language d1 then None
    else if d1.Crpq.atoms = [] then begin
      let e = Expansion.expand_unchecked d1 [||] in
      if counterexample_holds rhs_union e then Some e else None
    end
    else begin
      match aq2_opt with
      | None ->
        (* RHS has no satisfiable disjunct with atoms: Q2 can only be
           satisfied by an atomless disjunct; test the shortest expansion
           directly (its verdict is representative only if none exists,
           otherwise evaluation decides). *)
        let e = shortest_expansion d1 in
        if counterexample_holds rhs_union e then Some e else None
      | Some aq ->
        let lhs = build_lhs d1 in
        let values_per_atom =
          Array.map
            (fun (a : Crpq.atom) ->
              Array.of_list (achievable_values ~max_tracker_states aq a.Crpq.lang))
            lhs.l_atoms
        in
        if Array.exists (fun vs -> Array.length vs = 0) values_per_atom then
          None (* some language empty: disjunct unsatisfiable *)
        else begin
          let lhs_free =
            List.map (fun x -> Hashtbl.find lhs.node_of_var x) d1.Crpq.free
          in
          (* enumerate morphism types, pre-analyzed into templates *)
          let analyzed = ref [] in
          List.iteri
            (fun di d2 ->
              iter_morphism_types lhs aq ~lhs_free ~d2 ~di (fun m ->
                  incr morphism_types;
                  Obs.Metrics.incr m_morphism_types;
                  if !morphism_types > max_types then
                    raise
                      (Unsupported
                         (Printf.sprintf "more than %d morphism types" max_types));
                  match templates_of_type lhs aq m with
                  | templates, lam_domains ->
                    analyzed := (templates, lam_domains) :: !analyzed
                  | exception Incompatible_structure -> ()))
            rhs_disjuncts;
          let analyzed = !analyzed in
          (* search the abstraction product for one with no compatible
             type *)
          let natoms = Array.length lhs.l_atoms in
          let alpha = Array.make natoms values_per_atom.(0).(0) in
          let found = ref None in
          let rec search ai =
            Guard.checkpoint "qinj.abstractions";
            if !found <> None then ()
            else if ai = natoms then begin
              incr abstractions_checked;
              Obs.Metrics.incr m_abstractions_checked;
              if !abstractions_checked > max_abstractions then
                raise
                  (Unsupported
                     (Printf.sprintf "more than %d abstractions" max_abstractions));
              let some_compatible =
                List.exists
                  (fun (templates, lam_domains) ->
                    compatible lhs aq alpha templates lam_domains)
                  analyzed
              in
              if not some_compatible then begin
                let words = Array.map (fun v -> v.v_witness) alpha in
                found := Some (Expansion.expand_unchecked d1 words)
              end
            end
            else
              Array.iter
                (fun v ->
                  if !found = None then begin
                    alpha.(ai) <- v;
                    search (ai + 1)
                  end)
                values_per_atom.(ai)
          in
          search 0;
          !found
        end
    end
  in
  let rec run = function
    | [] -> Qinj_contained
    | d1 :: rest -> begin
      match decide_one d1 with
      | Some e ->
        if counterexample_holds rhs_union e then Qinj_not_contained e
        else
          raise
            (Unsupported
               "internal: abstraction counterexample failed re-verification")
      | None -> run rest
    end
  in
  let result = run lhs_disjuncts in
  ( result,
    {
      lhs_disjuncts = List.length lhs_disjuncts;
      rhs_disjuncts = List.length rhs_disjuncts;
      abstractions_checked = !abstractions_checked;
      morphism_types = !morphism_types;
    } )

let decide_union_with_stats ?(max_tracker_states = 60000) ?(max_types = 50000)
    ?(max_abstractions = 400000) lhs_union rhs_union =
  if Obs.Trace.enabled () then
    Obs.Trace.span "qinj.decide" (fun () ->
        decide_union_with_stats_impl ~max_tracker_states ~max_types
          ~max_abstractions lhs_union rhs_union)
  else
    decide_union_with_stats_impl ~max_tracker_states ~max_types
      ~max_abstractions lhs_union rhs_union

let decide_union ?max_tracker_states ?max_types ?max_abstractions lhs rhs =
  fst
    (decide_union_with_stats ?max_tracker_states ?max_types ?max_abstractions
       lhs rhs)

let decide_with_stats ?max_tracker_states ?max_types ?max_abstractions q1 q2 =
  decide_union_with_stats ?max_tracker_states ?max_types ?max_abstractions
    [ q1 ] [ q2 ]

let decide ?max_tracker_states ?max_types ?max_abstractions q1 q2 =
  fst (decide_with_stats ?max_tracker_states ?max_types ?max_abstractions q1 q2)
