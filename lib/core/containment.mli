(** The containment problem {m Q_1 \subseteq_\star Q_2} (Section 4).

    Deciders, by query class (Figure 1):

    - {b CQ/CQ}: exact for all three node semantics via homomorphism
      tests — plain (standard, Chandra–Merlin), injective
      (query-injective, Prop 4.3) and non-contracting (atom-injective,
      Lemma F.3).  NP-complete.
    - {b CRPQ{^ fin} left-hand side}: exact for all node semantics by
      enumerating the finite set of ★-expansions of {m Q_1} and testing
      {m \bar y \in Q_2(E_1)^\star} (Props 4.2, 4.3, 4.6; Prop F.10).
    - {b query-injective, unrestricted}: exact via the abstraction
      algorithm of Theorem 5.1 (see {!Containment_qinj}).
    - {b everything else}: bounded counterexample search — sound and
      complete for NOT-CONTAINED up to the expansion-length bound.  For
      atom-injective CRPQ/CRPQ this is the theoretically best possible
      behaviour: the problem is undecidable (Theorem 5.2).

    Only the three node semantics are supported; the containment theory
    for trail semantics is future work in the paper (Section 7). *)

type witness = {
  expansion : Expansion.expanded;
      (** a ★-expansion of {m Q_1} that is a counterexample *)
  tuple : Graph.node list;
      (** the free tuple of the expansion, not returned by {m Q_2} *)
}

(** How far a bounded search got before giving up. *)
type exhaustion = {
  bound_reached : int;  (** the per-atom word-length bound that was exhausted *)
  expansions_enumerated : int;
      (** ★-expansions enumerated (and refuted) within the bound *)
  notes : string list;
      (** extra context, e.g. which exact algorithm declined the instance *)
}

(** Why a decider returned {!Unknown}. *)
type reason =
  | Budget_exhausted of exhaustion
      (** bounded counterexample search ran out of budget *)
  | Undecided of string  (** no applicable procedure; free-form diagnosis *)
  | Resource_exhausted of Guard.trip
      (** a {!Guard} budget (deadline, fuel, depth, cancellation) stopped
          the search; the trip says which site and why *)

type verdict =
  | Contained  (** proof of containment *)
  | Not_contained of witness  (** counterexample found *)
  | Unknown of reason
      (** search exhausted or no procedure applies; see {!reason} *)

val budget_exhausted : bound:int -> expansions:int -> verdict
(** [Unknown (Budget_exhausted _)] with the given bound and search size. *)

val resource_exhausted : Guard.trip -> verdict
(** [Unknown (Resource_exhausted trip)]. *)

val with_note : string -> verdict -> verdict
(** Attach context to an [Unknown] verdict; other verdicts pass through. *)

val reason_to_string : reason -> string
(** Canonical rendering used by {!pp_verdict} (and by {!Ucrpq.contained},
    so the two deciders report budget exhaustion identically). *)

val verdict_bool : verdict -> bool option
(** [Some true] / [Some false] for exact verdicts, [None] for unknown. *)

val pp_verdict : Format.formatter -> verdict -> unit

(** [is_counterexample sem q2 e] checks that the ★-expansion [e] (of the
    left query) defeats [q2]: {m \bar y \notin Q_2(E)^\star}. *)
val is_counterexample : Semantics.t -> Crpq.t -> Expansion.expanded -> bool

(** Exact CQ/CQ containment.
    @raise Invalid_argument on edge semantics or arity mismatch. *)
val cq_cq : Semantics.t -> Cq.t -> Cq.t -> bool

(** Exact containment when the left query is in CRPQ{^ fin}.  Under a
    guard the search can stop early with [Unknown (Resource_exhausted _)].
    @raise Invalid_argument if the left query is not finite. *)
val finite_lhs : ?guard:Guard.t -> Semantics.t -> Crpq.t -> Crpq.t -> verdict

(** Bounded counterexample search over ★-expansions of the left query
    with per-atom words of length at most [max_len]. *)
val bounded :
  ?guard:Guard.t -> Semantics.t -> max_len:int -> Crpq.t -> Crpq.t -> verdict

(** Dispatching decider; picks the best available procedure.  [bound]
    (default 4) controls the fallback bounded search.  [guard] (or an
    ambient {!Guard.with_guard}) bounds the whole decision: on a trip the
    result is [Unknown (Resource_exhausted _)] rather than an exception,
    so [decide] under a guard always returns. *)
val decide :
  ?bound:int -> ?guard:Guard.t -> Semantics.t -> Crpq.t -> Crpq.t -> verdict

(** Name of the procedure {!decide} would use (for reporting). *)
val strategy_name : Semantics.t -> Crpq.t -> Crpq.t -> string

(** Install a query pre-pass applied to both sides of every {!decide}
    call (identity by default).  The analysis layer hooks its certified
    optimizer in here; installers must guard against re-entry, since
    a preprocessor that itself calls {!decide} would otherwise recurse
    forever. *)
val set_preprocessor : (Semantics.t -> Crpq.t -> Crpq.t) -> unit
