type t = {
  disjuncts : Crpq.t list;
  arity : int;
}

let make disjuncts =
  match disjuncts with
  | [] -> invalid_arg "Ucrpq.make: empty union"
  | q :: rest ->
    let arity = List.length q.Crpq.free in
    List.iter
      (fun (p : Crpq.t) ->
        if List.length p.Crpq.free <> arity then
          invalid_arg "Ucrpq.make: disjuncts of different arities")
      rest;
    { disjuncts; arity }

let of_crpq q = make [ q ]

let empty ~arity =
  let vars = List.init (max arity 1) (fun i -> Printf.sprintf "x%d" i) in
  let free = List.init arity (fun i -> List.nth vars (min i (List.length vars - 1))) in
  (* a single unsatisfiable disjunct *)
  make [ Crpq.make ~free [ Crpq.atom (List.hd vars) Regex.empty (List.hd vars) ] ]

let union u1 u2 =
  if u1.arity <> u2.arity then invalid_arg "Ucrpq.union: arity mismatch";
  { disjuncts = u1.disjuncts @ u2.disjuncts; arity = u1.arity }

let classify u =
  List.fold_left
    (fun acc q ->
      match acc, Crpq.classify q with
      | Crpq.Class_crpq, _ | _, Crpq.Class_crpq -> Crpq.Class_crpq
      | Crpq.Class_fin, _ | _, Crpq.Class_fin -> Crpq.Class_fin
      | Crpq.Class_cq, Crpq.Class_cq -> Crpq.Class_cq)
    Crpq.Class_cq u.disjuncts

(* ------------------------------------------------------------------ *)
(* Evaluation                                                          *)
(* ------------------------------------------------------------------ *)

let eval sem u g =
  List.sort_uniq compare (List.concat_map (fun q -> Eval.eval sem q g) u.disjuncts)

let check sem u g tuple = List.exists (fun q -> Eval.check sem q g tuple) u.disjuncts

let eval_bool sem u g = List.exists (fun q -> Eval.eval_bool sem q g) u.disjuncts

(* ------------------------------------------------------------------ *)
(* Containment                                                         *)
(* ------------------------------------------------------------------ *)

let is_counterexample_union sem rhs (e : Expansion.expanded) =
  let g, tuple = Expansion.to_graph e in
  Bulk_rpq.with_caller "containment" (fun () ->
      List.for_all (fun r -> not (Eval.check sem r g tuple)) rhs)

(* Shared with [Containment]: the registry hands back the same counter,
   so union and single-query searches aggregate into one metric. *)
let m_expansions = Obs.Metrics.counter "containment.expansions_enumerated"

let m_counterexamples = Obs.Metrics.counter "containment.counterexamples"

(* search the ★-expansion space of one left disjunct for a counterexample
   defeating every right disjunct; also returns how many expansions were
   enumerated, for the budget-exhaustion verdict *)
let search_disjunct sem ~star_expansions rhs d1 =
  let check _ e =
    Guard.checkpoint "ucrpq.search";
    Obs.Metrics.incr m_expansions;
    if is_counterexample_union sem rhs e then begin
      Obs.Metrics.incr m_counterexamples;
      Some { Containment.expansion = e; tuple = snd (Expansion.to_graph e) }
    end
    else None
  in
  let expansions = star_expansions d1 in
  (* parallel scan with a deterministic (lowest-index) witness *)
  match Parmap.find_mapi check expansions with
  | Some (i, w) -> (Some w, i + 1)
  | None -> (None, List.length expansions)

let expansion_space sem max_len_opt q =
  match sem, max_len_opt with
  | (Semantics.St | Semantics.Q_inj), None -> Expansion.finite_expansions q
  | Semantics.A_inj, None -> Expansion.finite_ainj_expansions q
  | (Semantics.St | Semantics.Q_inj), Some max_len ->
    Expansion.expansions ~max_len q
  | Semantics.A_inj, Some max_len -> Expansion.ainj_expansions ~max_len q
  | (Semantics.A_edge_inj | Semantics.Q_edge_inj), _ ->
    invalid_arg "Ucrpq.contained: edge semantics not supported (Section 7)"

let contained_impl ~bound sem u1 u2 =
  if u1.arity <> u2.arity then
    invalid_arg "Ucrpq.contained: unions of different arities";
  (match sem with
  | Semantics.St | Semantics.A_inj | Semantics.Q_inj -> ()
  | Semantics.A_edge_inj | Semantics.Q_edge_inj ->
    invalid_arg "Ucrpq.contained: edge semantics not supported (Section 7)");
  let lhs = u1.disjuncts and rhs = u2.disjuncts in
  let all_finite = List.for_all Crpq.is_finite lhs in
  if sem = Semantics.Q_inj && not all_finite then begin
    match Containment_qinj.decide_union lhs rhs with
    | Containment_qinj.Qinj_contained -> Containment.Contained
    | Containment_qinj.Qinj_not_contained e ->
      Containment.Not_contained
        { Containment.expansion = e; tuple = snd (Expansion.to_graph e) }
    | exception Containment_qinj.Unsupported msg ->
      Containment.Unknown
        (Containment.Undecided ("abstraction algorithm unsupported: " ^ msg))
  end
  else begin
    let max_len_opt = if all_finite then None else Some bound in
    let star_expansions q =
      List.concat_map
        (expansion_space sem max_len_opt)
        (Crpq.epsilon_free_disjuncts q)
    in
    let total = ref 0 in
    let rec go = function
      | [] ->
        if all_finite then Containment.Contained
        else Containment.budget_exhausted ~bound ~expansions:!total
      | d1 :: rest -> begin
        let w, tried = search_disjunct sem ~star_expansions rhs d1 in
        total := !total + tried;
        match w with
        | Some w -> Containment.Not_contained w
        | None -> go rest
      end
    in
    go lhs
  end

let contained ?(bound = 4) ?guard sem u1 u2 =
  let go () =
    Guard.checkpoint "ucrpq.contained";
    if Obs.Trace.enabled () then
      Obs.Trace.span "ucrpq.contained" (fun () ->
          contained_impl ~bound sem u1 u2)
    else contained_impl ~bound sem u1 u2
  in
  match Guard.supervise ?guard go with
  | Ok v -> v
  | Error trip -> Containment.resource_exhausted trip

let equivalent ?bound ?guard sem u1 u2 =
  match
    ( Containment.verdict_bool (contained ?bound ?guard sem u1 u2),
      Containment.verdict_bool (contained ?bound ?guard sem u2 u1) )
  with
  | Some a, Some b -> Some (a && b)
  | _ -> None

let pp ppf u =
  Format.pp_print_list
    ~pp_sep:(fun ppf () -> Format.pp_print_string ppf "  ∨  ")
    Crpq.pp ppf u.disjuncts

let to_string u = Format.asprintf "%a" pp u
