type var = string

type atom = { src : var; lang : Regex.t; dst : var }

type t = { atoms : atom list; free : var list }

(* Atoms are kept sorted but NOT deduplicated: under query-injective
   semantics two syntactically identical atoms demand two internally
   disjoint paths, so duplicates are not idempotent (unlike CQ atoms,
   which denote single edges). *)
let make ~free atoms = { atoms = List.sort Stdlib.compare atoms; free }

let atom src lang dst = { src; lang; dst }

let atom' src re dst = { src; lang = Regex.parse re; dst }

let vars q =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun a ->
      Hashtbl.replace tbl a.src ();
      Hashtbl.replace tbl a.dst ())
    q.atoms;
  List.iter (fun x -> Hashtbl.replace tbl x ()) q.free;
  List.sort String.compare (Hashtbl.fold (fun x () l -> x :: l) tbl [])

let is_boolean q = q.free = []

let alphabet q =
  List.sort_uniq String.compare
    (List.concat_map (fun a -> Regex.alphabet a.lang) q.atoms)

let size q = List.length q.atoms

type cls = Class_cq | Class_fin | Class_crpq

let atom_is_symbol a =
  match a.lang with
  | Regex.Sym _ -> true
  | _ -> false

let classify q =
  if List.for_all atom_is_symbol q.atoms then Class_cq
  else if List.for_all (fun a -> Regex.is_finite a.lang) q.atoms then Class_fin
  else Class_crpq

let is_cq q = classify q = Class_cq

let is_finite q = classify q <> Class_crpq

let of_cq (cq : Cq.t) =
  make ~free:cq.Cq.free
    (List.map
       (fun (a : Cq.atom) -> { src = a.Cq.src; lang = Regex.sym a.Cq.lbl; dst = a.Cq.dst })
       cq.Cq.atoms)

let to_cq q =
  let convert a =
    match Regex.words_of_finite a.lang with
    | [ [ x ] ] -> Some (Cq.atom a.src x a.dst)
    | _ | (exception Invalid_argument _) -> None
  in
  let rec go acc = function
    | [] -> Some (Cq.make ~free:q.free (List.rev acc))
    | a :: rest -> begin
      match convert a with
      | Some ca -> go (ca :: acc) rest
      | None -> None
    end
  in
  go [] q.atoms

(* [Nfa.of_regex] is memoized process-wide (bounded LRU, see [Cache]),
   which subsumes the unbounded per-module table that used to live
   here. *)
let nfa lang = Nfa.of_regex lang

let has_empty_language q =
  List.exists (fun a -> Regex.is_empty_lang a.lang) q.atoms

(* ------------------------------------------------------------------ *)
(* Epsilon elimination                                                  *)
(* ------------------------------------------------------------------ *)

let substitute_var q ~from ~into =
  let sub x = if String.equal x from then into else x in
  {
    atoms = List.map (fun a -> { a with src = sub a.src; dst = sub a.dst }) q.atoms;
    free = List.map sub q.free;
  }

let rec remove_once x = function
  | [] -> []
  | y :: rest -> if y = x then rest else y :: remove_once x rest

let epsilon_free_disjuncts q =
  let rec go q =
    if has_empty_language q then []
    else begin
      match List.find_opt (fun a -> Regex.nullable a.lang) q.atoms with
      | None -> [ make ~free:q.free q.atoms ]
      | Some a ->
        let others = remove_once a q.atoms in
        (* choice 1: the atom takes a non-empty word *)
        let keep =
          go { q with atoms = { a with lang = Regex.remove_eps a.lang } :: others }
        in
        (* choice 2: the atom takes ε, collapsing its endpoints *)
        let collapsed =
          if String.equal a.src a.dst then go { q with atoms = others }
          else go (substitute_var { q with atoms = others } ~from:a.src ~into:a.dst)
        in
        keep @ collapsed
    end
  in
  (* deduplicate structurally *)
  List.sort_uniq Stdlib.compare (go q)

(* ------------------------------------------------------------------ *)
(* Concrete syntax                                                      *)
(* ------------------------------------------------------------------ *)

exception Parse_error of string

type parse_error = {
  reason : string;
  fragment : string;
  position : int option;
}

let string_of_parse_error e =
  match e.position with
  | Some p -> Printf.sprintf "%s at offset %d in %S" e.reason p e.fragment
  | None -> Printf.sprintf "%s in %S" e.reason e.fragment

(* internal carrier so that [parse_result] stays exception-free at the
   interface while the parser can abort from anywhere *)
exception Abort of parse_error

let parse_result str =
  let fail ?position reason fragment = raise (Abort { reason; fragment; position }) in
  try
    let body, body_off, free =
      match String.index_opt str ':' with
      | Some i
        when i + 1 < String.length str
             && str.[i + 1] = '-'
             && String.index_opt str '(' <> None
             && Option.get (String.index_opt str '(') < i -> begin
        (* head present: Q(x, y) :- body *)
        let head = String.sub str 0 i in
        let body = String.sub str (i + 2) (String.length str - i - 2) in
        match String.index_opt head '(', String.index_opt head ')' with
        | Some l, Some r when l < r ->
          let inner = String.sub head (l + 1) (r - l - 1) in
          let free =
            String.split_on_char ',' inner
            |> List.map String.trim
            |> List.filter (fun s -> s <> "")
          in
          (body, i + 2, free)
        | _ -> fail ~position:0 "malformed head (expected 'Q(vars) :- body')" head
      end
      | _ -> (str, 0, [])
    in
    (* [off] is the offset of the atom fragment [s] in [str] *)
    let parse_atom (off, s) =
      let lead = ref 0 in
      while !lead < String.length s && s.[!lead] = ' ' do incr lead done;
      let off = off + !lead in
      let s = String.trim s in
      (* x -[re]-> y *)
      match String.index_opt s '[' with
      | None -> fail ~position:off "expected '-[' in atom" s
      | Some l ->
        let rec find_close i depth =
          if i >= String.length s then
            fail ~position:(off + l) "unterminated '[' in atom" s
          else
            match s.[i] with
            | '[' -> find_close (i + 1) (depth + 1)
            | ']' -> if depth = 0 then i else find_close (i + 1) (depth - 1)
            | _ -> find_close (i + 1) depth
        in
        let r = find_close (l + 1) 0 in
        let src = String.trim (String.sub s 0 l) in
        let src =
          if String.length src > 0 && src.[String.length src - 1] = '-' then
            String.trim (String.sub src 0 (String.length src - 1))
          else src
        in
        let rest = String.trim (String.sub s (r + 1) (String.length s - r - 1)) in
        let dst =
          if String.length rest >= 2 && String.sub rest 0 2 = "->" then
            String.trim (String.sub rest 2 (String.length rest - 2))
          else fail ~position:(off + r) "expected ']->' in atom" s
        in
        if src = "" || dst = "" then fail ~position:off "missing variable in atom" s;
        let re_src = String.sub s (l + 1) (r - l - 1) in
        let lang =
          try Regex.parse re_src
          with Regex.Parse_error msg ->
            fail ~position:(off + l + 1)
              (Printf.sprintf "bad regular expression (%s)" msg)
              re_src
        in
        { src; lang; dst }
    in
    (* split the body on commas that are not inside regex brackets,
       remembering each fragment's offset *)
    let split_atoms body =
      let parts = ref [] in
      let buf = Buffer.create 32 in
      let start = ref 0 in
      let depth = ref 0 in
      String.iteri
        (fun i c ->
          match c with
          | '[' ->
            incr depth;
            Buffer.add_char buf c
          | ']' ->
            decr depth;
            Buffer.add_char buf c
          | ',' when !depth = 0 ->
            parts := (body_off + !start, Buffer.contents buf) :: !parts;
            Buffer.clear buf;
            start := i + 1
          | c -> Buffer.add_char buf c)
        body;
      parts := (body_off + !start, Buffer.contents buf) :: !parts;
      List.rev !parts
    in
    let trimmed = String.trim body in
    let atoms =
      if trimmed = "" || trimmed = "true" then []
      else List.map parse_atom (split_atoms body)
    in
    Ok (make ~free atoms)
  with Abort e -> Error e

let parse str =
  match parse_result str with
  | Ok q -> q
  | Error e -> raise (Parse_error (string_of_parse_error e))

let pp ppf q =
  let pp_free ppf = function
    | [] -> Format.pp_print_string ppf "()"
    | free ->
      Format.fprintf ppf "(%a)"
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
           Format.pp_print_string)
        free
  in
  Format.fprintf ppf "Q%a :- " pp_free q.free;
  if q.atoms = [] then Format.pp_print_string ppf "true"
  else
    (* comma-separated so that the output re-parses *)
    Format.pp_print_list
      ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
      (fun ppf a ->
        Format.fprintf ppf "%s -[%s]-> %s" a.src (Regex.to_string a.lang) a.dst)
      ppf q.atoms

let to_string q = Format.asprintf "%a" pp q
