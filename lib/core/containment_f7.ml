exception Unsupported of string

type result =
  | F7_contained
  | F7_not_contained of Expansion.expanded

(* Search telemetry (no-ops unless [Obs.Metrics] is enabled): window
   words enumerated by the live-prefix sweep, and middle-word searches
   (the BFS that completes a truncated atom). *)
let m_window_words = Obs.Metrics.counter "f7.window_words"

let m_middle_searches = Obs.Metrics.counter "f7.middle_searches"

(* ------------------------------------------------------------------ *)
(* Line patterns of CQ components                                      *)
(* ------------------------------------------------------------------ *)

(* A connected CQ maps into the interior of a path expansion iff it is
   line-shaped: BFS positions are consistent and each position carries at
   most one letter.  The pattern is the letter-or-wildcard template. *)
let line_pattern (c : Cq.t) =
  let g, _names = Cq.to_graph c in
  let n = Graph.nnodes g in
  if n = 0 then None
  else begin
    let pos = Array.make n None in
    let ok = ref true in
    let queue = Queue.create () in
    pos.(0) <- Some 0;
    Queue.add 0 queue;
    while not (Queue.is_empty queue) do
      let u = Queue.pop queue in
      let pu = Option.get pos.(u) in
      let visit v p =
        match pos.(v) with
        | None ->
          pos.(v) <- Some p;
          Queue.add v queue
        | Some p' -> if p <> p' then ok := false
      in
      List.iter (fun (_, v) -> visit v (pu + 1)) (Graph.out g u);
      List.iter (fun (_, v) -> visit v (pu - 1)) (Graph.in_ g u)
    done;
    if (not !ok) || Array.exists (fun p -> p = None) pos then None
    else begin
      let positions = Array.map Option.get pos in
      let pmin = Array.fold_left min max_int positions in
      let pmax = Array.fold_left max min_int positions in
      let template = Array.make (max (pmax - pmin) 0) None in
      let consistent = ref true in
      List.iter
        (fun (u, a, _) ->
          let slot = positions.(u) - pmin in
          match template.(slot) with
          | None -> template.(slot) <- Some a
          | Some b -> if not (String.equal a b) then consistent := false)
        (Graph.edges g);
      if !consistent && Array.length template > 0 then Some template else None
    end
  end

(* NFA recognizing the words over [alphabet] containing NO occurrence of
   the template (wildcards match any letter). *)
let avoid_nfa ~alphabet template =
  let sigma = Regex.alt_list (List.map Regex.sym alphabet) in
  let body =
    Regex.seq_list
      (Array.to_list
         (Array.map
            (function Some a -> Regex.sym a | None -> sigma)
            template))
  in
  let occ = Regex.seq_list [ Regex.star sigma; body; Regex.star sigma ] in
  let d = Dfa.of_nfa ~alphabet (Nfa.of_regex occ) in
  Lang_ops.nfa_of_dfa (Dfa.complement d)

(* ------------------------------------------------------------------ *)
(* Atom specs: exact short words, or (u, #, v) truncations              *)
(* ------------------------------------------------------------------ *)

type spec =
  | Exact of Word.t
  | Trunc of Word.t * Word.t

(* all words of exactly [len] letters that leave the NFA alive, with the
   surviving state set *)
let live_prefixes nfa ~len ~cap =
  let rec go acc frontier k =
    Guard.checkpoint "f7.window";
    if k = 0 then begin
      if Obs.Metrics.enabled () then
        Obs.Metrics.add m_window_words (List.length frontier);
      List.rev_map (fun (w, s) -> (List.rev w, s)) frontier @ acc |> fun l -> l
    end
    else begin
      let next =
        List.concat_map
          (fun (w, s) ->
            let letters = Hashtbl.create 8 in
            List.iter
              (fun q ->
                List.iter (fun (x, _) -> Hashtbl.replace letters x ()) nfa.Nfa.delta.(q))
              s;
            Hashtbl.fold
              (fun x () acc ->
                let s' = Nfa.next_set nfa s x in
                if s' = [] then acc else (x :: w, s') :: acc)
              letters [])
          frontier
      in
      if List.length next > cap then
        raise (Unsupported "too many window words in Prop F.7 enumeration");
      go acc next (k - 1)
    end
  in
  go [] [ ([], List.sort_uniq compare nfa.Nfa.initials) ] len

(* states from which reading [v] reaches a final state *)
let pre_word nfa v =
  List.filter
    (fun q -> List.exists (Nfa.is_final nfa) (List.fold_left (Nfa.next_set nfa) [ q ] v))
    (List.init nfa.Nfa.nstates (fun q -> q))

(* Is there a non-empty middle w with u·w·v ∈ L and (if given) u·w·v
   avoiding the pattern?  Returns a witness middle. *)
let middle_witness nfa ~u ~v ~avoid =
  Obs.Metrics.incr m_middle_searches;
  match avoid with
  | None -> begin
    (* plain: BFS from the u-states to the v-pre-states, >= 1 step *)
    let start = List.fold_left (Nfa.next_set nfa) nfa.Nfa.initials u in
    let targets = pre_word nfa v in
    let n = nfa.Nfa.nstates in
    let dist = Array.make (max n 1) None in
    let q = Queue.create () in
    List.iter
      (fun s ->
        if dist.(s) = None then begin
          dist.(s) <- Some [];
          Queue.add s q
        end)
      start;
    let result = ref None in
    (try
       while not (Queue.is_empty q) do
         Guard.checkpoint "f7.middle";
         let s = Queue.pop q in
         let w = Option.get dist.(s) in
         List.iter
           (fun (x, s') ->
             let w' = x :: w in
             if List.mem s' targets then begin
               result := Some (List.rev w');
               raise Exit
             end;
             if dist.(s') = None then begin
               dist.(s') <- Some w';
               Queue.add s' q
             end)
           nfa.Nfa.delta.(s)
       done
     with Exit -> ());
    !result
  end
  | Some (av : Nfa.t) -> begin
    (* product with the avoid automaton, whole-word tracking: start after
       reading u on both, accept when v completes both *)
    let start_l = List.fold_left (Nfa.next_set nfa) nfa.Nfa.initials u in
    let start_a = List.fold_left (Nfa.next_set av) av.Nfa.initials u in
    (* deterministic avoid automaton: track its state set jointly *)
    let accept_pair (ql, sa) =
      let finals_l = List.fold_left (Nfa.next_set nfa) [ ql ] v in
      let finals_a = List.fold_left (Nfa.next_set av) sa v in
      List.exists (Nfa.is_final nfa) finals_l
      && List.exists (Nfa.is_final av) finals_a
    in
    let seen = Hashtbl.create 256 in
    let q = Queue.create () in
    let push ql sa w =
      let key = (ql, sa) in
      if not (Hashtbl.mem seen key) then begin
        Hashtbl.replace seen key ();
        Queue.add (ql, sa, w) q
      end
    in
    List.iter (fun ql -> push ql start_a []) start_l;
    let result = ref None in
    (try
       while not (Queue.is_empty q) do
         Guard.checkpoint "f7.middle";
         let ql, sa, w = Queue.pop q in
         List.iter
           (fun (x, ql') ->
             let sa' = Nfa.next_set av sa x in
             if sa' <> [] then begin
               let w' = x :: w in
               if accept_pair (ql', sa') then begin
                 result := Some (List.rev w');
                 raise Exit
               end;
               push ql' sa' w'
             end)
           nfa.Nfa.delta.(ql)
       done
     with Exit -> ());
    !result
  end

(* ------------------------------------------------------------------ *)
(* Components of the right-hand CQ                                     *)
(* ------------------------------------------------------------------ *)

type component = {
  c_cq : Cq.t;  (** Boolean sub-CQ of the component's atoms *)
  c_fixed_vars : (Cq.var * int) list;
      (** free vars of the component, with the free-tuple position *)
  c_pattern : Word.symbol option array option;
      (** line pattern; [None] when it can never map inside a path
          (also forced to [None] when the component has free vars, which
          must land on query variables) *)
}

let components_of (q2 : Cq.t) =
  let g, names = Cq.to_graph q2 in
  let groups = Graph.components g in
  List.filter_map
    (fun group ->
      let vars = List.map (fun i -> names.(i)) group in
      let atoms =
        List.filter (fun (a : Cq.atom) -> List.mem a.Cq.src vars) q2.Cq.atoms
      in
      let fixed_vars =
        List.concat
          (List.mapi
             (fun pos x -> if List.mem x vars then [ (x, pos) ] else [])
             q2.Cq.free)
      in
      if atoms = [] then None
        (* an isolated variable always maps (subject to the global free
           consistency check done separately) *)
      else begin
        let c_cq = Cq.make ~free:[] atoms in
        let c_pattern = if fixed_vars = [] then line_pattern c_cq else None in
        Some { c_cq; c_fixed_vars = fixed_vars; c_pattern }
      end)
    groups

(* ------------------------------------------------------------------ *)
(* The decision procedure                                              *)
(* ------------------------------------------------------------------ *)

let fresh_hash alphabet =
  let rec go s = if List.mem s alphabet then go (s ^ "#") else s in
  go "#"

(* the truncated expansion E1# as a CQ, given per-atom specs *)
let build_truncated (d1 : Crpq.t) specs ~hash =
  let atoms = ref [] in
  List.iteri
    (fun i (a : Crpq.atom) ->
      let path base_name x letters y =
        let k = List.length letters in
        let node j =
          if j = 0 then x
          else if j = k then y
          else Printf.sprintf "%s%d.%d" base_name i j
        in
        List.iteri
          (fun j sym -> atoms := Cq.atom (node j) sym (node (j + 1)) :: !atoms)
          letters
      in
      match specs.(i) with
      | Exact w -> path "$" a.Crpq.src w a.Crpq.dst
      | Trunc (u, v) ->
        path "$u" a.Crpq.src (u @ [ hash ]) (Printf.sprintf "$m%d" i);
        path "$v" (Printf.sprintf "$m%d" i) v a.Crpq.dst)
    d1.Crpq.atoms;
  Cq.make ~free:d1.Crpq.free !atoms

let component_maps comp (e1h : Cq.t) =
  let pattern, pnames = Cq.to_graph comp.c_cq in
  let pindex = Hashtbl.create 16 in
  Array.iteri (fun i x -> Hashtbl.replace pindex x i) pnames;
  let target, _ = Cq.to_graph e1h in
  let free_nodes = Cq.free_nodes e1h in
  match
    List.map
      (fun (x, pos) -> (Hashtbl.find pindex x, List.nth free_nodes pos))
      comp.c_fixed_vars
  with
  | fixed -> Morphism.exists ~fixed ~pattern ~target ()
  | exception Not_found -> false

let decide_st_impl ~max_elements (q1 : Crpq.t) (q2 : Crpq.t) =
  if List.length q1.Crpq.free <> List.length q2.Crpq.free then
    invalid_arg "Containment_f7.decide_st: queries of different arities";
  let q2cq =
    match Crpq.to_cq q2 with
    | Some c -> c
    | None -> invalid_arg "Containment_f7.decide_st: right query must be a CQ"
  in
  let n_window = max 1 (List.length q2cq.Cq.atoms) in
  let comps = components_of q2cq in
  let alphabet =
    List.sort_uniq String.compare (Crpq.alphabet q1 @ Cq.alphabet q2cq)
  in
  let hash = fresh_hash alphabet in
  (* avoid automata, one per line-shaped component *)
  let comp_avoid =
    List.map
      (fun c ->
        match c.c_pattern with
        | Some template
          when Array.for_all
                 (function Some a -> List.mem a alphabet | None -> true)
                 template ->
          (c, Some (avoid_nfa ~alphabet template))
        | Some _ | None -> (c, None))
      comps
  in
  let verify_and_return d1 profile =
    let e = Expansion.expand_unchecked d1 profile in
    let g, tuple = Expansion.to_graph e in
    if Bulk_rpq.with_caller "containment" (fun () -> Eval.check Semantics.St q2 g tuple)
    then
      raise (Unsupported "internal: F7 witness failed re-verification")
    else F7_not_contained e
  in
  let decide_disjunct (d1 : Crpq.t) =
    (* global free-tuple consistency: a right variable demanded at two
       distinct free nodes can never map *)
    let e0 =
      Expansion.expand_unchecked d1
        (Array.of_list
           (List.map
              (fun (a : Crpq.atom) ->
                match Regex.shortest_word a.Crpq.lang with
                | Some w -> w
                | None -> raise Exit)
              d1.Crpq.atoms))
    in
    let _, tuple0 = Expansion.to_graph e0 in
    let demands = Hashtbl.create 8 in
    let conflict = ref false in
    List.iteri
      (fun pos x ->
        let node = List.nth tuple0 pos in
        match Hashtbl.find_opt demands x with
        | Some n' -> if n' <> node then conflict := true
        | None -> Hashtbl.replace demands x node)
      q2cq.Cq.free;
    if !conflict then Some (verify_and_return d1 e0.Expansion.profile)
    else begin
      (* per-atom specs *)
      let atom_specs =
        List.map
          (fun (a : Crpq.atom) ->
            let nfa = Crpq.nfa a.Crpq.lang in
            let exact =
              List.map (fun w -> Exact w) (Regex.enumerate ~max_len:(2 * n_window) a.Crpq.lang)
            in
            let truncs =
              if Regex.is_finite a.Crpq.lang then
                (* long exact words instead of truncation *)
                List.filter_map
                  (fun w ->
                    if List.length w > 2 * n_window then Some (Exact w) else None)
                  (Regex.words_of_finite a.Crpq.lang)
              else begin
                let prefixes = live_prefixes nfa ~len:n_window ~cap:max_elements in
                let rev = Nfa.reverse nfa in
                let suffixes =
                  List.map
                    (fun (w, _) -> List.rev w)
                    (live_prefixes rev ~len:n_window ~cap:max_elements)
                in
                List.concat_map
                  (fun (u, _) ->
                    List.filter_map
                      (fun v ->
                        match middle_witness nfa ~u ~v ~avoid:None with
                        | Some _ -> Some (Trunc (u, v))
                        | None -> None)
                      suffixes)
                  prefixes
              end
            in
            exact @ truncs)
          d1.Crpq.atoms
      in
      let total =
        List.fold_left (fun acc l -> acc * max 1 (List.length l)) 1 atom_specs
      in
      if total > max_elements then
        raise
          (Unsupported
             (Printf.sprintf "F7 enumeration of %d truncated expansions" total));
      (* enumerate the product *)
      let specs_arr = Array.of_list atom_specs in
      let natoms = Array.length specs_arr in
      (* length exactly [natoms]: the atomless ε-collapse disjunct has an
         empty profile *)
      let current = Array.make natoms (Exact []) in
      let found = ref None in
      let rec enumerate i =
        Guard.checkpoint "f7.enumerate";
        if !found <> None then ()
        else if i = natoms then begin
          let e1h = build_truncated d1 current ~hash in
          (* a component that fails everywhere certifies non-containment *)
          let certifies (comp, avoid) =
            if component_maps comp e1h then None
            else begin
              (* find a middle avoiding the component for every truncated
                 atom *)
              let middles = Array.make natoms None in
              let ok = ref true in
              Array.iteri
                (fun ai spec ->
                  if !ok then
                    match spec with
                    | Exact _ -> ()
                    | Trunc (u, v) -> begin
                      let nfa =
                        Crpq.nfa (List.nth d1.Crpq.atoms ai).Crpq.lang
                      in
                      match middle_witness nfa ~u ~v ~avoid with
                      | Some w -> middles.(ai) <- Some w
                      | None -> ok := false
                    end)
                current;
              if !ok then Some middles else None
            end
          in
          match List.find_map certifies comp_avoid with
          | None -> ()
          | Some middles ->
            let profile =
              Array.mapi
                (fun ai spec ->
                  match spec, middles.(ai) with
                  | Exact w, _ -> w
                  | Trunc (u, v), Some w -> u @ w @ v
                  | Trunc (u, v), None -> begin
                    (* untruncate with any middle *)
                    let nfa = Crpq.nfa (List.nth d1.Crpq.atoms ai).Crpq.lang in
                    match middle_witness nfa ~u ~v ~avoid:None with
                    | Some w -> u @ w @ v
                    | None -> assert false
                  end)
                current
            in
            found := Some (verify_and_return d1 profile)
        end
        else
          List.iter
            (fun spec ->
              if !found = None then begin
                current.(i) <- spec;
                enumerate (i + 1)
              end)
            (List.nth atom_specs i)
      in
      enumerate 0;
      !found
    end
  in
  let rec run = function
    | [] -> F7_contained
    | d1 :: rest -> begin
      match decide_disjunct d1 with
      | Some r -> r
      | None -> run rest
      | exception Exit -> run rest (* unsatisfiable disjunct *)
    end
  in
  run (Crpq.epsilon_free_disjuncts q1)

let decide_st ?(max_elements = 20000) q1 q2 =
  if Obs.Trace.enabled () then
    Obs.Trace.span "f7.decide" (fun () -> decide_st_impl ~max_elements q1 q2)
  else decide_st_impl ~max_elements q1 q2
