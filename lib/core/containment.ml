type witness = {
  expansion : Expansion.expanded;
  tuple : Graph.node list;
}

type exhaustion = {
  bound_reached : int;
  expansions_enumerated : int;
  notes : string list;
}

type reason =
  | Budget_exhausted of exhaustion
  | Undecided of string
  | Resource_exhausted of Guard.trip

type verdict =
  | Contained
  | Not_contained of witness
  | Unknown of reason

(* Search telemetry (no-ops unless [Obs.Metrics] is enabled). *)
let m_decisions = Obs.Metrics.counter "containment.decisions"

let m_expansions = Obs.Metrics.counter "containment.expansions_enumerated"

let m_counterexamples = Obs.Metrics.counter "containment.counterexamples"

let h_expansions = Obs.Metrics.histogram "containment.expansions_per_search"

let budget_exhausted ~bound ~expansions =
  if Obs.Events.enabled () then
    Obs.Events.emit Obs.Events.Warn "containment.budget_exhausted"
      [
        ("bound_reached", Obs.Json.Int bound);
        ("expansions_enumerated", Obs.Json.Int expansions);
      ];
  Unknown
    (Budget_exhausted
       { bound_reached = bound; expansions_enumerated = expansions; notes = [] })

let resource_exhausted trip = Unknown (Resource_exhausted trip)

let with_note note = function
  | Unknown (Budget_exhausted e) ->
    Unknown (Budget_exhausted { e with notes = e.notes @ [ note ] })
  | Unknown (Undecided msg) -> Unknown (Undecided (msg ^ "; " ^ note))
  | v -> v

let reason_to_string = function
  | Budget_exhausted e ->
    let base =
      Printf.sprintf
        "search budget exhausted: no counterexample among %d expansions with \
         atom words of length <= %d"
        e.expansions_enumerated e.bound_reached
    in
    String.concat "; " (base :: e.notes)
  | Undecided msg -> msg
  | Resource_exhausted trip ->
    "resource exhausted: " ^ Guard.trip_to_string trip

let verdict_bool = function
  | Contained -> Some true
  | Not_contained _ -> Some false
  | Unknown _ -> None

let pp_verdict ppf = function
  | Contained -> Format.pp_print_string ppf "contained"
  | Not_contained w ->
    Format.fprintf ppf "not contained (counterexample: %a)" Cq.pp
      w.expansion.Expansion.cq
  | Unknown r -> Format.fprintf ppf "unknown (%s)" (reason_to_string r)

let node_semantics_only sem =
  match sem with
  | Semantics.St | Semantics.A_inj | Semantics.Q_inj -> ()
  | Semantics.A_edge_inj | Semantics.Q_edge_inj ->
    invalid_arg "Containment: edge semantics not supported (Section 7)"

let check_arity q1 q2 =
  if List.length q1.Crpq.free <> List.length q2.Crpq.free then
    invalid_arg "Containment: queries of different arities"

(* Expansion-side rhs checks are the deciders' evaluation workload; the
   caller attribution makes their bulk-engine consumption visible as
   [bulk.dispatch.containment.*] (standard-semantics checks only ever
   reach the engine through [Eval] — references never switch). *)
let is_counterexample sem q2 (e : Expansion.expanded) =
  let g, tuple = Expansion.to_graph e in
  Bulk_rpq.with_caller "containment" (fun () -> not (Eval.check sem q2 g tuple))

(* ------------------------------------------------------------------ *)
(* CQ/CQ: homomorphism tests                                            *)
(* ------------------------------------------------------------------ *)

let cq_cq sem q1 q2 =
  node_semantics_only sem;
  if List.length q1.Cq.free <> List.length q2.Cq.free then
    invalid_arg "Containment.cq_cq: queries of different arities";
  match sem with
  | Semantics.St -> Cq.hom_exists q2 q1
  | Semantics.Q_inj -> Cq.inj_hom_exists q2 q1
  | Semantics.A_inj -> Cq.non_contracting_hom_exists q2 q1
  | Semantics.A_edge_inj | Semantics.Q_edge_inj -> assert false

(* ------------------------------------------------------------------ *)
(* Expansion-space search                                               *)
(* ------------------------------------------------------------------ *)

(* Returns the first counterexample (if any) together with the number of
   expansions enumerated before stopping — the count feeds the
   budget-exhaustion verdict and the search histograms.  Expansions are
   independent, so the scan fans out across domains when [--jobs] is
   set; [Parmap.find_mapi] returns the lowest-index match, so the chosen
   witness — and hence the verdict — is the one the sequential scan
   finds. *)
let search_expansions sem q2 expansions =
  let check _ e =
    Guard.checkpoint "containment.search";
    Obs.Metrics.incr m_expansions;
    if is_counterexample sem q2 e then begin
      Obs.Metrics.incr m_counterexamples;
      if Obs.Events.enabled () then
        Obs.Events.emit Obs.Events.Info "containment.counterexample"
          [ ("expansion", Obs.Json.String (Format.asprintf "%a" Cq.pp e.Expansion.cq)) ];
      Some { expansion = e; tuple = snd (Expansion.to_graph e) }
    end
    else begin
      if Obs.Events.enabled () then
        Obs.Events.emit Obs.Events.Debug "containment.expansion_refuted"
          [ ("expansion", Obs.Json.String (Format.asprintf "%a" Cq.pp e.Expansion.cq)) ];
      None
    end
  in
  match Parmap.find_mapi check expansions with
  | Some (i, w) ->
    Obs.Metrics.observe h_expansions (i + 1);
    (Some w, i + 1)
  | None ->
    let tried = List.length expansions in
    Obs.Metrics.observe h_expansions tried;
    (None, tried)

let finite_lhs ?guard sem q1 q2 =
  node_semantics_only sem;
  check_arity q1 q2;
  let star_expansions q =
    match sem with
    | Semantics.St | Semantics.Q_inj -> Expansion.finite_expansions q
    | Semantics.A_inj -> Expansion.finite_ainj_expansions q
    | Semantics.A_edge_inj | Semantics.Q_edge_inj -> assert false
  in
  (* expansions are computed per ε-free disjunct to keep the space small
     and because ε-atoms are already folded into disjuncts *)
  let search () =
    let disjuncts = Crpq.epsilon_free_disjuncts q1 in
    let rec go = function
      | [] -> Contained
      | d :: rest -> begin
        match fst (search_expansions sem q2 (star_expansions d)) with
        | Some w -> Not_contained w
        | None -> go rest
      end
    in
    go disjuncts
  in
  match Guard.supervise ?guard search with
  | Ok v -> v
  | Error trip -> resource_exhausted trip

let bounded ?guard sem ~max_len q1 q2 =
  node_semantics_only sem;
  check_arity q1 q2;
  let star_expansions q =
    match sem with
    | Semantics.St | Semantics.Q_inj -> Expansion.expansions ~max_len q
    | Semantics.A_inj -> Expansion.ainj_expansions ~max_len q
    | Semantics.A_edge_inj | Semantics.Q_edge_inj -> assert false
  in
  let search () =
    let disjuncts = Crpq.epsilon_free_disjuncts q1 in
    let total = ref 0 in
    let rec go = function
      | [] -> budget_exhausted ~bound:max_len ~expansions:!total
      | d :: rest -> begin
        let w, tried = search_expansions sem q2 (star_expansions d) in
        total := !total + tried;
        match w with
        | Some w -> Not_contained w
        | None -> go rest
      end
    in
    go disjuncts
  in
  match Guard.supervise ?guard search with
  | Ok v -> v
  | Error trip -> resource_exhausted trip

(* ------------------------------------------------------------------ *)
(* Dispatcher                                                           *)
(* ------------------------------------------------------------------ *)

type strategy =
  | S_trivial
  | S_cq_cq
  | S_rpq
  | S_finite_lhs
  | S_qinj_abstraction
  | S_f7
  | S_bounded

(* Binary RPQ shape Q(x, y) = x -[L]-> y: containment coincides with
   language inclusion under all three semantics (the observation opening
   Prop F.8: the free tuple pins the expansion endpoints, and a line
   graph admits no folding, so the right word must equal the left one). *)
let rpq_shape (q : Crpq.t) =
  match q.Crpq.atoms, q.Crpq.free with
  | [ a ], [ x; y ]
    when x = a.Crpq.src && y = a.Crpq.dst && a.Crpq.src <> a.Crpq.dst ->
    Some a.Crpq.lang
  | _ -> None

let pick_strategy sem q1 q2 =
  (* [has_empty_language] is the cheap syntactic check (one regex walk
     per atom, what the lint pass reports as E001); it short-circuits
     the exponential disjunct computation for the common degenerate
     case of an unsatisfiable left query *)
  if Crpq.has_empty_language q1 || Crpq.epsilon_free_disjuncts q1 = [] then S_trivial
  else if Crpq.is_cq q1 && Crpq.is_cq q2 then S_cq_cq
  else if rpq_shape q1 <> None && rpq_shape q2 <> None then S_rpq
  else if Crpq.is_finite q1 then S_finite_lhs
  else if sem = Semantics.Q_inj then S_qinj_abstraction
  else if sem = Semantics.St && Crpq.is_cq q2 then S_f7
  else S_bounded

let strategy_name sem q1 q2 =
  match pick_strategy sem q1 q2 with
  | S_trivial -> "trivial (unsatisfiable left query)"
  | S_cq_cq -> "cq-homomorphism"
  | S_rpq -> "regular-language inclusion (RPQ/RPQ)"
  | S_finite_lhs -> "finite-expansion enumeration"
  | S_qinj_abstraction -> "abstraction algorithm (Thm 5.1)"
  | S_f7 -> "window algorithm (Prop F.7)"
  | S_bounded -> "bounded counterexample search"

let cq_fallback_witness sem q1 q2 =
  (* produce a concrete counterexample for a CQ/CQ non-containment *)
  match finite_lhs sem q1 q2 with
  | Not_contained w -> Not_contained w
  | Unknown _ as u ->
    (* the witness search itself ran out of budget *)
    u
  | Contained ->
    (* should not happen: cq_cq said not contained *)
    assert false

let decide_impl ~bound sem q1 q2 =
  node_semantics_only sem;
  check_arity q1 q2;
  match pick_strategy sem q1 q2 with
  | S_trivial -> Contained
  | S_cq_cq ->
    let c1 = Option.get (Crpq.to_cq q1) and c2 = Option.get (Crpq.to_cq q2) in
    if cq_cq sem c1 c2 then Contained else cq_fallback_witness sem q1 q2
  | S_rpq -> begin
    let l1 = Option.get (rpq_shape q1) and l2 = Option.get (rpq_shape q2) in
    if Dfa.included (Crpq.nfa l1) (Crpq.nfa l2) then Contained
    else begin
      (* a shortest word of L1 \ L2 gives the counterexample expansion *)
      let alphabet =
        List.sort_uniq String.compare (Regex.alphabet l1 @ Regex.alphabet l2)
      in
      let d1 = Dfa.of_nfa ~alphabet (Crpq.nfa l1) in
      let d2 = Dfa.of_nfa ~alphabet (Crpq.nfa l2) in
      match Dfa.shortest_word (Dfa.intersect d1 (Dfa.complement d2)) with
      | None -> assert false
      | Some w ->
        let e = Expansion.expand q1 [| w |] in
        Not_contained { expansion = e; tuple = snd (Expansion.to_graph e) }
    end
  end
  | S_finite_lhs -> finite_lhs sem q1 q2
  | S_qinj_abstraction -> begin
    match Containment_qinj.decide q1 q2 with
    | Containment_qinj.Qinj_contained -> Contained
    | Containment_qinj.Qinj_not_contained e ->
      Not_contained { expansion = e; tuple = snd (Expansion.to_graph e) }
    | exception Containment_qinj.Unsupported msg ->
      with_note
        ("abstraction algorithm unsupported: " ^ msg)
        (bounded sem ~max_len:bound q1 q2)
  end
  | S_f7 -> begin
    match Containment_f7.decide_st q1 q2 with
    | Containment_f7.F7_contained -> Contained
    | Containment_f7.F7_not_contained e ->
      Not_contained { expansion = e; tuple = snd (Expansion.to_graph e) }
    | exception Containment_f7.Unsupported msg ->
      with_note
        ("window algorithm unsupported: " ^ msg)
        (bounded sem ~max_len:bound q1 q2)
  end
  | S_bounded -> begin
    (* For standard semantics, query-injective containment is a sound
       sufficient condition (Prop 4.3 homs are in particular homs), and
       the Theorem 5.1 algorithm decides it exactly: try it before the
       bounded search. *)
    let qinj_implies () =
      match sem with
      | Semantics.St -> begin
        match Containment_qinj.decide q1 q2 with
        | Containment_qinj.Qinj_contained -> true
        | Containment_qinj.Qinj_not_contained _ -> false
        | exception Containment_qinj.Unsupported _ -> false
      end
      | _ -> false
    in
    match bounded sem ~max_len:bound q1 q2 with
    | Unknown _ as u -> if qinj_implies () then Contained else u
    | v -> v
  end

let preprocessor : (Semantics.t -> Crpq.t -> Crpq.t) ref = ref (fun _ q -> q)

let set_preprocessor f = preprocessor := f

let decide ?(bound = 4) ?guard sem q1 q2 =
  Obs.Metrics.incr m_decisions;
  let q1 = !preprocessor sem q1 and q2 = !preprocessor sem q2 in
  let go () =
    Guard.checkpoint "containment.decide";
    if Obs.Trace.enabled () then
      Obs.Trace.span "containment.decide" (fun () ->
          decide_impl ~bound sem q1 q2)
    else decide_impl ~bound sem q1 q2
  in
  match Guard.supervise ?guard go with
  | Ok v -> v
  | Error trip -> resource_exhausted trip
