(** The evaluation problem (Section 3): is {m \bar v \in Q(G)^\star}?

    Direct evaluators:

    - standard semantics: one reachability relation per atom computed by
      BFS over the product of the graph with the atom's NFA, then a
      backtracking join — polynomial per candidate assignment, matching
      the NL/NP-completeness landscape;
    - atom-injective: same join over per-atom simple-path relations
      (each relation entry is an NP witness search);
    - query-injective: global backtracking that assigns variables
      injectively and threads pairwise internally-disjoint simple paths;
    - the two trail semantics (Section 7) replace node- by
      edge-disjointness.

    The expansion-based evaluators implement Propositions 2.2 / 2.3
    literally and serve as independent oracles in the test suite. *)

(** [check sem q g tuple] decides {m \bar v \in Q(G)^\star}.
    @raise Invalid_argument if the tuple arity differs from the number of
    free variables. *)
val check : Semantics.t -> Crpq.t -> Graph.t -> Graph.node list -> bool

(** All answer tuples (deduplicated, sorted). *)
val eval : Semantics.t -> Crpq.t -> Graph.t -> Graph.node list list

(** Boolean evaluation: is the answer set non-empty?  (For a Boolean
    query this is [check sem q g []].) *)
val eval_bool : Semantics.t -> Crpq.t -> Graph.t -> bool

(** Install a query pre-pass applied by {!check}, {!eval} and
    {!eval_bool} before evaluation (identity by default); the analysis
    layer hooks its certified optimizer in here.  The pre-pass must
    preserve the free-variable tuple, or {!check}'s arity contract
    breaks.  The expansion-based reference evaluators below are {e not}
    preprocessed — they stay independent oracles. *)
val set_preprocessor : (Semantics.t -> Crpq.t -> Crpq.t) -> unit

(** {1 Expansion-based reference semantics (Props 2.2, 2.3 and their
    edge-injective analogues)}

    Exponential, meant for small instances and cross-validation. *)

val check_via_expansions :
  Semantics.t -> Crpq.t -> Graph.t -> Graph.node list -> bool

(** [hom_from_expansion sem e g tuple] decides whether the expansion [e]
    maps to [(G, tuple)] via a homomorphism of the kind matching [sem]:
    arbitrary (St), injective (Q_inj), atom-injective (A_inj),
    per-atom edge-injective (A_edge_inj) or globally edge-injective
    (Q_edge_inj). *)
val hom_from_expansion :
  Semantics.t -> Expansion.expanded -> Graph.t -> Graph.node list -> bool
