(** Unions of CRPQs (UCRPQs) — the first extension direction the paper
    names in Section 7.

    A UCRPQ is a finite disjunction {m \bigvee_i Q_i} of CRPQs of the
    same arity.  Evaluation is the union of the disjuncts' answers;
    containment quantifies over disjuncts:
    {m \bigvee_i P_i \subseteq \bigvee_j R_j} iff every
    {m P_i}-counterexample candidate is covered by {e some} {m R_j}. *)

type t = private {
  disjuncts : Crpq.t list;  (** non-empty, all of the same arity *)
  arity : int;
}

(** @raise Invalid_argument on an empty union or mixed arities. *)
val make : Crpq.t list -> t

val of_crpq : Crpq.t -> t

(** The union with no answers (of the given arity). *)
val empty : arity:int -> t

val union : t -> t -> t

(** Class of the union: the coarsest class among disjuncts. *)
val classify : t -> Crpq.cls

(** {1 Evaluation} *)

val eval : Semantics.t -> t -> Graph.t -> Graph.node list list

val check : Semantics.t -> t -> Graph.t -> Graph.node list -> bool

val eval_bool : Semantics.t -> t -> Graph.t -> bool

(** {1 Containment}

    Same verdict semantics as {!Containment}: [Contained] /
    [Not_contained] are exact, [Unknown] marks bounded-search
    exhaustion.  Exact procedures: query-injective via the union-aware
    Theorem 5.1 algorithm; any semantics when every left disjunct is in
    CRPQ{^ fin}. *)

val contained :
  ?bound:int -> ?guard:Guard.t -> Semantics.t -> t -> t -> Containment.verdict

(** [equivalent sem u1 u2]: both containments; [None] if either is
    undecided. *)
val equivalent :
  ?bound:int -> ?guard:Guard.t -> Semantics.t -> t -> t -> bool option

val pp : Format.formatter -> t -> unit

val to_string : t -> string
