type t = Regex.t

let to_crpq lang = Crpq.make ~free:[ "x"; "y" ] [ Crpq.atom "x" lang "y" ]

let pairs_of_relation g rel =
  let acc = ref [] in
  let n = Graph.nnodes g in
  for u = n - 1 downto 0 do
    for v = n - 1 downto 0 do
      if rel u v then acc := (u, v) :: !acc
    done
  done;
  !acc

let eval_standard lang g =
  let rel =
    Bulk_rpq.with_caller "rpq" (fun () -> Bulk_rpq.st_relation g (Crpq.nfa lang))
  in
  pairs_of_relation g (fun u v -> rel.(u).(v))

let eval_simple_path lang g =
  let nfa = Crpq.nfa lang in
  pairs_of_relation g (fun u v -> Path_search.exists_simple g nfa ~src:u ~dst:v)

let eval_trail lang g =
  let nfa = Crpq.nfa lang in
  pairs_of_relation g (fun u v -> Path_search.exists_trail g nfa ~src:u ~dst:v)

let check_standard lang g u v = Path_search.exists_path g (Crpq.nfa lang) ~src:u ~dst:v

let check_simple_path lang g u v =
  Path_search.exists_simple g (Crpq.nfa lang) ~src:u ~dst:v

let check_trail lang g u v = Path_search.exists_trail g (Crpq.nfa lang) ~src:u ~dst:v

let witness_simple_path lang g u v =
  Path_search.find_simple g (Crpq.nfa lang) ~src:u ~dst:v

let contained l1 l2 = Dfa.regex_included l1 l2
