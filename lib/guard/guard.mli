(** Unified resource governor: wall-clock deadlines, step ("fuel") budgets,
    recursion-depth ceilings, cooperative cancellation, and deterministic
    fault injection for exercising degradation paths in tests.

    The deciders in this repo explore search spaces that are exponential in
    the best case and non-terminating in the worst (the undecidable Figure-1
    cells of the paper).  A {!t} bounds such a computation.  Long-running
    loops call {!checkpoint} with a stable site name; when the governor's
    budget is exhausted the checkpoint raises {!Trip}, which the nearest
    {!run}/{!supervise} boundary converts into a structured [Error].

    Guards are {e ambient}: {!with_guard} installs one for the dynamic
    extent of a callback, so checkpoints deep inside the automata and
    graph layers need no extra parameters.  With no ambient guard a
    checkpoint is a single ref read. *)

(** Why a guarded computation stopped early. *)
type reason =
  | Deadline_exceeded of { budget_ms : int; elapsed_ns : int64 }
      (** The wall-clock budget ran out ([elapsed_ns] measured on
          {!Obs.Clock.now_ns}, i.e. the monotonic source by default). *)
  | Fuel_exhausted of { budget : int }
      (** The step budget ran out: the computation passed more than
          [budget] checkpoints. *)
  | Depth_exceeded of { limit : int }
      (** A {!descend} would have exceeded the recursion-depth ceiling. *)
  | Cancelled of { label : string }
      (** The attached {!Cancel.token} was cancelled. *)
  | Fault_injected of { visit : int }
      (** {!Chaos} tripped this site on its [visit]-th execution. *)
  | Stack_exhausted
      (** The native stack overflowed; caught at the {!run} boundary. *)

(** A trip records which guard site stopped and why. *)
type trip = { site : string; reason : reason }

exception Trip of trip

val reason_to_string : reason -> string
val reason_kind : reason -> string
(** Stable lowercase tag for machine consumption: ["deadline"], ["fuel"],
    ["depth"], ["cancelled"], ["fault-injected"], ["stack"]. *)

val trip_to_string : trip -> string

(** Cooperative cancellation: a token that an outer driver can flip; every
    checkpoint under a guard carrying the token then trips. *)
module Cancel : sig
  type token

  val create : ?label:string -> unit -> token
  val cancel : token -> unit
  val cancelled : token -> bool
end

type t
(** A resource governor.  Budgets are fixed at creation; fuel and depth are
    mutable state, so a [t] governs one computation (create a fresh one per
    [run]). *)

val create :
  ?deadline_ms:int ->
  ?fuel:int ->
  ?max_depth:int ->
  ?cancel:Cancel.token ->
  unit ->
  t
(** All limits optional; omitted limits are unbounded.  [deadline_ms] is a
    wall-clock budget from now ([0] trips at the first checkpoint); [fuel]
    is the number of checkpoints allowed ([0] trips at the first);
    [max_depth] bounds {!descend} nesting.
    @raise Invalid_argument on a negative limit. *)

val unlimited : unit -> t
(** A guard with no limits.  Still useful: it gives {!Chaos} a boundary to
    inject faults under, and makes {!checkpoint} sites visible. *)

val active : unit -> t option
(** The ambient guard installed by {!with_guard}, if any. *)

val last_trip : t -> trip option
(** The trip recorded on this guard, if it tripped. *)

val with_guard : t -> (unit -> 'a) -> 'a
(** [with_guard g f] runs [f] with [g] as the ambient guard, restoring the
    previous ambient guard afterwards (exceptions included).  {!Trip}
    propagates: pair with {!run}/{!supervise} to get a result instead. *)

val checkpoint : string -> unit
(** [checkpoint site] is the per-iteration probe placed in long-running
    loops.  No ambient guard: a no-op.  Otherwise checks chaos injection,
    cancellation, fuel, and deadline in that order and raises {!Trip} on
    the first violation.  Site names are stable identifiers such as
    ["containment.search"]; see the README's Robustness section for the
    catalogue. *)

val descend : string -> (unit -> 'a) -> 'a
(** [descend site f] brackets one level of recursion.  Trips with
    [Depth_exceeded] when the ambient guard has a depth ceiling and it is
    already at the ceiling.  Without an ambient guard (or without a
    ceiling) this is just [f ()]. *)

val run : ?guard:t -> (unit -> 'a) -> ('a, trip) result
(** [run ?guard f] is the degradation boundary.  Installs [guard] (or, when
    no guard is given and none is ambient, an {!unlimited} one) and turns
    {!Trip} — and [Stack_overflow] — into [Error].  Does not retry; a
    chaos-injected fault surfaces as [Error { reason = Fault_injected _ }].
    Used where degradation must be observable (bench, CLI). *)

val supervise : ?guard:t -> (unit -> 'a) -> ('a, trip) result
(** Like {!run}, but retries [f] (bounded) when the trip was injected by
    {!Chaos}: each chaos rule fires on one specific visit, so the retry
    makes progress and proves the degradation path unwinds cleanly and
    leaves the computation re-entrant.  Real trips (deadline, fuel, depth,
    cancellation, stack) are never retried.  This is the boundary the
    deciders use, so the whole test suite passes under
    [INJCRPQ_CHAOS=guard:*:1] while still executing every trip path. *)

(** Deterministic fault injection.  Armed from the [INJCRPQ_CHAOS]
    environment variable at program start (or programmatically via {!arm}),
    chaos trips a named guard site on its Nth visit.  Injection only fires
    under an ambient guard, so unguarded low-level calls (unit tests
    driving [Dfa.of_nfa] directly, say) are unaffected. *)
module Chaos : sig
  val arm : (string * int) list -> unit
  (** [arm [(pattern, n); ...]]: trip sites matching [pattern] on their
      [n]-th visit.  A pattern is an exact site name, ["*"] (every site),
      or a ["prefix*"] wildcard.  Resets visit counters. *)

  val arm_spec : string -> (unit, string) result
  (** Parse and arm a spec of the form ["guard:SITE:N,guard:SITE:N,..."],
      the [INJCRPQ_CHAOS] format. *)

  val disarm : unit -> unit
  val active : unit -> bool

  val visits : string -> int
  (** Times the given site has been observed since the last [arm]. *)

  val tripped : unit -> (string * int) list
  (** Sites tripped by injection since the last [arm], with counts. *)
end
