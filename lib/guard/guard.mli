(** Unified resource governor: wall-clock deadlines, step ("fuel") budgets,
    recursion-depth ceilings, cooperative cancellation, and deterministic
    fault injection for exercising degradation paths in tests.

    The deciders in this repo explore search spaces that are exponential in
    the best case and non-terminating in the worst (the undecidable Figure-1
    cells of the paper).  A {!t} bounds such a computation.  Long-running
    loops call {!checkpoint} with a stable site name; when the governor's
    budget is exhausted the checkpoint raises {!Trip}, which the nearest
    {!run}/{!supervise} boundary converts into a structured [Error].

    Guards are {e ambient}: {!with_guard} installs one for the dynamic
    extent of a callback, so checkpoints deep inside the automata and
    graph layers need no extra parameters.  With no ambient guard a
    checkpoint is a single ref read. *)

(** Why a guarded computation stopped early. *)
type reason =
  | Deadline_exceeded of { budget_ms : int; elapsed_ns : int64 }
      (** The wall-clock budget ran out ([elapsed_ns] measured on
          {!Obs.Clock.now_ns}, i.e. the monotonic source by default). *)
  | Fuel_exhausted of { budget : int }
      (** The step budget ran out: the computation passed more than
          [budget] checkpoints. *)
  | Depth_exceeded of { limit : int }
      (** A {!descend} would have exceeded the recursion-depth ceiling. *)
  | Cancelled of { label : string }
      (** The attached {!Cancel.token} was cancelled. *)
  | Fault_injected of { visit : int }
      (** {!Chaos} tripped this site on its [visit]-th execution. *)
  | Stack_exhausted
      (** The native stack overflowed; caught at the {!run} boundary. *)

(** A trip records which guard site stopped and why. *)
type trip = { site : string; reason : reason }

exception Trip of trip

val reason_to_string : reason -> string
val reason_kind : reason -> string
(** Stable lowercase tag for machine consumption: ["deadline"], ["fuel"],
    ["depth"], ["cancelled"], ["fault-injected"], ["stack"]. *)

val trip_to_string : trip -> string

(** Cooperative cancellation: a token that an outer driver can flip; every
    checkpoint under a guard carrying the token then trips. *)
module Cancel : sig
  type token

  val create : ?label:string -> unit -> token
  val cancel : token -> unit
  val cancelled : token -> bool
end

type t
(** A resource governor.  Budgets are fixed at creation; fuel and depth are
    mutable state, so a [t] governs one computation (create a fresh one per
    [run]). *)

val create :
  ?deadline_ms:int ->
  ?fuel:int ->
  ?max_depth:int ->
  ?cancel:Cancel.token ->
  unit ->
  t
(** All limits optional; omitted limits are unbounded.  [deadline_ms] is a
    wall-clock budget from now ([0] trips at the first checkpoint); [fuel]
    is the number of checkpoints allowed ([0] trips at the first);
    [max_depth] bounds {!descend} nesting.
    @raise Invalid_argument on a negative limit. *)

val unlimited : unit -> t
(** A guard with no limits.  Still useful: it gives {!Chaos} a boundary to
    inject faults under, and makes {!checkpoint} sites visible. *)

val active : unit -> t option
(** The ambient guard installed by {!with_guard}, if any. *)

val last_trip : t -> trip option
(** The trip recorded on this guard, if it tripped. *)

val with_guard : t -> (unit -> 'a) -> 'a
(** [with_guard g f] runs [f] with [g] as the ambient guard, restoring the
    previous ambient guard afterwards (exceptions included).  {!Trip}
    propagates: pair with {!run}/{!supervise} to get a result instead. *)

val checkpoint : string -> unit
(** [checkpoint site] is the per-iteration probe placed in long-running
    loops.  No ambient guard: a no-op.  Otherwise checks chaos injection,
    cancellation, fuel, and deadline in that order and raises {!Trip} on
    the first violation.  Site names are stable identifiers such as
    ["containment.search"]; see the README's Robustness section for the
    catalogue. *)

val descend : string -> (unit -> 'a) -> 'a
(** [descend site f] brackets one level of recursion.  Trips with
    [Depth_exceeded] when the ambient guard has a depth ceiling and it is
    already at the ceiling.  Without an ambient guard (or without a
    ceiling) this is just [f ()]. *)

val run : ?guard:t -> (unit -> 'a) -> ('a, trip) result
(** [run ?guard f] is the degradation boundary.  Installs [guard] (or, when
    no guard is given and none is ambient, an {!unlimited} one) and turns
    {!Trip} — and [Stack_overflow] — into [Error].  Does not retry; a
    chaos-injected fault surfaces as [Error { reason = Fault_injected _ }].
    Used where degradation must be observable (bench, CLI). *)

val supervise : ?guard:t -> (unit -> 'a) -> ('a, trip) result
(** Like {!run}, but retries [f] (bounded) when the trip was injected by
    {!Chaos}: each chaos rule fires on one specific visit, so the retry
    makes progress and proves the degradation path unwinds cleanly and
    leaves the computation re-entrant.  Real trips (deadline, fuel, depth,
    cancellation, stack) are never retried.  This is the boundary the
    deciders use, so the whole test suite passes under
    [INJCRPQ_CHAOS=guard:*:1] while still executing every trip path. *)

(** Retry with jittered exponential backoff.  The serving layer uses
    this around request execution: a {e transient} trip (chaos-injected
    faults by default) is retried after a deterministic, jittered delay,
    while genuine budget trips (deadline, fuel, depth, cancellation)
    surface immediately.  Delays are a pure function of the policy, the
    seed and the attempt number, so backoff schedules are unit-testable
    without sleeping. *)
module Retry : sig
  type policy = {
    max_attempts : int;  (** total attempts, including the first (>= 1) *)
    base_delay_ms : int;  (** delay before the first retry *)
    multiplier : float;  (** exponential growth factor (>= 1.0) *)
    max_delay_ms : int;  (** ceiling on any single delay *)
    jitter : float;
        (** fraction of each delay that is randomized, in [0, 1]:
            the delay for retry [k] is drawn deterministically from
            [[d*(1-jitter), d]] where [d] is the capped exponential *)
  }

  val default : policy
  (** 3 attempts, 10ms base, x2 growth, 1s cap, 0.5 jitter. *)

  val policy :
    ?max_attempts:int ->
    ?base_delay_ms:int ->
    ?multiplier:float ->
    ?max_delay_ms:int ->
    ?jitter:float ->
    unit ->
    policy
  (** {!default} with overrides.
      @raise Invalid_argument on out-of-range fields. *)

  val delay_ms : policy -> seed:int -> attempt:int -> int
  (** Backoff delay before retry [attempt] (1-based: the delay after the
      first failure is [~attempt:1]).  Deterministic in [(seed, attempt)];
      the jittered fraction comes from a splitmix-style hash, not from
      [Random]. *)

  val transient : trip -> bool
  (** The default retryable predicate: true exactly for
      [Fault_injected] trips (chaos).  Deadline, fuel, depth,
      cancellation and stack trips are never transient. *)

  val run :
    ?policy:policy ->
    ?seed:int ->
    ?sleep:(int -> unit) ->
    ?retryable:(trip -> bool) ->
    (unit -> ('a, trip) result) ->
    ('a, trip) result * int
  (** [run f] calls [f] up to [policy.max_attempts] times, sleeping the
      jittered backoff delay between attempts whenever [f] returns
      [Error trip] with [retryable trip] (default {!transient}).
      Returns the final result together with the number of attempts
      made.  [sleep] receives milliseconds and defaults to a real
      [Unix.sleepf]; tests inject a recording stub.  Each retry ticks
      the [guard.retries] counter and emits a [guard.retry] event. *)
end

(** Deterministic fault injection.  Armed from the [INJCRPQ_CHAOS]
    environment variable at program start (or programmatically via {!arm}),
    chaos trips a named guard site on its Nth visit.  Injection only fires
    under an ambient guard, so unguarded low-level calls (unit tests
    driving [Dfa.of_nfa] directly, say) are unaffected. *)
module Chaos : sig
  val arm : (string * int) list -> unit
  (** [arm [(pattern, n); ...]]: trip sites matching [pattern] on their
      [n]-th visit.  A pattern is an exact site name, ["*"] (every site),
      or a ["prefix*"] wildcard.  Resets visit counters. *)

  val arm_spec : string -> (unit, string) result
  (** Parse and arm a spec of the form ["guard:SITE:N,guard:SITE:N,..."],
      the [INJCRPQ_CHAOS] format. *)

  val disarm : unit -> unit
  val active : unit -> bool

  val visits : string -> int
  (** Times the given site has been observed since the last [arm]. *)

  val tripped : unit -> (string * int) list
  (** Sites tripped by injection since the last [arm], with counts. *)
end
