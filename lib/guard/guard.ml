(* Resource governor + deterministic fault injection.  See guard.mli.

   Hot-path discipline: [checkpoint] with no ambient guard is one ref read
   and one branch; with a guard but no limits it is a handful of compares.
   No allocation happens until a trip is actually raised. *)

type reason =
  | Deadline_exceeded of { budget_ms : int; elapsed_ns : int64 }
  | Fuel_exhausted of { budget : int }
  | Depth_exceeded of { limit : int }
  | Cancelled of { label : string }
  | Fault_injected of { visit : int }
  | Stack_exhausted

type trip = { site : string; reason : reason }

exception Trip of trip

let reason_to_string = function
  | Deadline_exceeded { budget_ms; elapsed_ns } ->
    Printf.sprintf "deadline of %dms exceeded after %.1fms" budget_ms
      (Int64.to_float elapsed_ns /. 1e6)
  | Fuel_exhausted { budget } ->
    Printf.sprintf "step budget of %d exhausted" budget
  | Depth_exceeded { limit } ->
    Printf.sprintf "recursion depth ceiling of %d exceeded" limit
  | Cancelled { label } -> Printf.sprintf "cancelled (%s)" label
  | Fault_injected { visit } ->
    Printf.sprintf "fault injected on visit %d" visit
  | Stack_exhausted -> "native stack exhausted"

let reason_kind = function
  | Deadline_exceeded _ -> "deadline"
  | Fuel_exhausted _ -> "fuel"
  | Depth_exceeded _ -> "depth"
  | Cancelled _ -> "cancelled"
  | Fault_injected _ -> "fault-injected"
  | Stack_exhausted -> "stack"

let trip_to_string t =
  Printf.sprintf "%s at guard site %s" (reason_to_string t.reason) t.site

module Cancel = struct
  type token = { label : string; mutable flag : bool }

  let create ?(label = "cancel") () = { label; flag = false }
  let cancel t = t.flag <- true
  let cancelled t = t.flag
end

type t = {
  start_ns : int64;
  deadline_ns : int64 option;
  budget_ms : int;
  fuel_limit : int; (* -1 = unlimited *)
  mutable fuel : int;
  depth_limit : int; (* -1 = unlimited *)
  mutable depth : int;
  cancel : Cancel.token option;
  mutable tripped : trip option;
}

let m_checkpoints = Obs.Metrics.counter "guard.checkpoints"
let m_trips = Obs.Metrics.counter "guard.trips"
let m_chaos_trips = Obs.Metrics.counter "guard.chaos_trips"
let m_recoveries = Obs.Metrics.counter "guard.chaos_recoveries"

let create ?deadline_ms ?fuel ?max_depth ?cancel () =
  let nonneg what = function
    | Some n when n < 0 ->
      invalid_arg (Printf.sprintf "Guard.create: negative %s (%d)" what n)
    | v -> v
  in
  let deadline_ms = nonneg "deadline_ms" deadline_ms in
  let fuel = nonneg "fuel" fuel in
  let max_depth = nonneg "max_depth" max_depth in
  let start_ns = Obs.Clock.now_ns () in
  {
    start_ns;
    deadline_ns =
      Option.map
        (fun ms -> Int64.add start_ns (Int64.mul (Int64.of_int ms) 1_000_000L))
        deadline_ms;
    budget_ms = Option.value deadline_ms ~default:0;
    fuel_limit = Option.value fuel ~default:(-1);
    fuel = Option.value fuel ~default:(-1);
    depth_limit = Option.value max_depth ~default:(-1);
    depth = 0;
    cancel;
    tripped = None;
  }

let unlimited () = create ()
let last_trip g = g.tripped

(* ---------------- fault injection ---------------- *)

module Chaos = struct
  type rule = { pattern : string; visit : int }

  let rules : rule list ref = ref []

  (* visit/trip books are shared across domains (Parmap workers hit the
     same sites); one lock keeps the counts exact *)
  let mu = Mutex.create ()
  let visit_counts : (string, int) Hashtbl.t = Hashtbl.create 64
  let trip_counts : (string, int) Hashtbl.t = Hashtbl.create 16

  let matches pattern site =
    String.equal pattern "*"
    || String.equal pattern site
    ||
    let n = String.length pattern in
    n > 0
    && pattern.[n - 1] = '*'
    && String.length site >= n - 1
    && String.equal (String.sub pattern 0 (n - 1)) (String.sub site 0 (n - 1))

  let arm l =
    rules := List.map (fun (pattern, visit) -> { pattern; visit }) l;
    Mutex.lock mu;
    Hashtbl.reset visit_counts;
    Hashtbl.reset trip_counts;
    Mutex.unlock mu

  let disarm () = arm []
  let active () = !rules <> []

  let parse_spec s =
    let parse_one item =
      match String.split_on_char ':' (String.trim item) with
      | [ "guard"; site; n ] -> (
        match int_of_string_opt n with
        | Some n when n >= 1 && site <> "" -> Ok (site, n)
        | _ -> Error (Printf.sprintf "bad visit count in %S" item))
      | _ -> Error (Printf.sprintf "expected guard:SITE:N, got %S" item)
    in
    let items =
      List.filter (fun s -> String.trim s <> "") (String.split_on_char ',' s)
    in
    if items = [] then Error "empty chaos spec"
    else
      List.fold_left
        (fun acc item ->
          match (acc, parse_one item) with
          | Error _, _ -> acc
          | _, (Error _ as e) -> e
          | Ok rs, Ok r -> Ok (r :: rs))
        (Ok []) items
      |> Result.map List.rev

  let arm_spec s = Result.map arm (parse_spec s)

  let visits site =
    Mutex.lock mu;
    let v = try Hashtbl.find visit_counts site with Not_found -> 0 in
    Mutex.unlock mu;
    v

  let tripped () =
    Mutex.lock mu;
    let l =
      Hashtbl.fold (fun site n acc -> (site, n) :: acc) trip_counts []
    in
    Mutex.unlock mu;
    List.sort compare l

  (* Called from [checkpoint] under an ambient guard.  Returns the visit
     number when a rule fires for this site at this visit. *)
  let observe site =
    Mutex.lock mu;
    let v = (try Hashtbl.find visit_counts site with Not_found -> 0) + 1 in
    Hashtbl.replace visit_counts site v;
    let fired =
      List.exists (fun r -> r.visit = v && matches r.pattern site) !rules
    in
    if fired then
      Hashtbl.replace trip_counts site
        ((try Hashtbl.find trip_counts site with Not_found -> 0) + 1);
    Mutex.unlock mu;
    if fired then Some v else None
end

let () =
  match Sys.getenv_opt "INJCRPQ_CHAOS" with
  | None -> ()
  | Some s -> (
    match Chaos.arm_spec s with
    | Ok () -> ()
    | Error msg ->
      prerr_endline ("guard: ignoring malformed INJCRPQ_CHAOS: " ^ msg))

(* ---------------- ambient guard + checkpoints ---------------- *)

(* Domain-local: each domain carries its own ambient guard, and Parmap
   workers reinstall their parent's guard explicitly via [with_guard] —
   a plain global ref would leak one domain's guard into another. *)
let current : t option Domain.DLS.key = Domain.DLS.new_key (fun () -> None)
let active () = Domain.DLS.get current

let trip g site reason =
  let t = { site; reason } in
  g.tripped <- Some t;
  Obs.Metrics.incr m_trips;
  (match reason with
  | Fault_injected _ -> Obs.Metrics.incr m_chaos_trips
  | _ -> ());
  if Obs.Events.enabled () then
    Obs.Events.emit Obs.Events.Warn "guard.trip"
      [
        ("site", Obs.Json.String site);
        ("kind", Obs.Json.String (reason_kind reason));
        ("detail", Obs.Json.String (reason_to_string reason));
      ];
  raise (Trip t)

let check g site =
  Obs.Metrics.incr m_checkpoints;
  (* the profiler samples (site, open-span path) pairs; disarmed it is
     one ref read and one branch inside [hit] *)
  Obs.Profile.hit site;
  (if Chaos.active () then
     match Chaos.observe site with
     | Some visit -> trip g site (Fault_injected { visit })
     | None -> ());
  (match g.cancel with
  | Some tok when Cancel.cancelled tok ->
    trip g site (Cancelled { label = tok.Cancel.label })
  | _ -> ());
  if g.fuel_limit >= 0 then
    if g.fuel <= 0 then trip g site (Fuel_exhausted { budget = g.fuel_limit })
    else g.fuel <- g.fuel - 1;
  match g.deadline_ns with
  | None -> ()
  | Some d ->
    let now = Obs.Clock.now_ns () in
    if Int64.compare now d >= 0 then
      trip g site
        (Deadline_exceeded
           { budget_ms = g.budget_ms; elapsed_ns = Int64.sub now g.start_ns })

let checkpoint site =
  match Domain.DLS.get current with None -> () | Some g -> check g site

let descend site f =
  match Domain.DLS.get current with
  | Some g when g.depth_limit >= 0 ->
    if g.depth >= g.depth_limit then
      trip g site (Depth_exceeded { limit = g.depth_limit });
    g.depth <- g.depth + 1;
    Fun.protect ~finally:(fun () -> g.depth <- g.depth - 1) f
  | _ -> f ()

let with_guard g f =
  let prev = Domain.DLS.get current in
  Domain.DLS.set current (Some g);
  Fun.protect ~finally:(fun () -> Domain.DLS.set current prev) f

(* ---------------- boundaries ---------------- *)

let install guard f =
  match guard with
  | Some g -> with_guard g f
  | None -> (
    match Domain.DLS.get current with
    | Some _ -> f ()
    | None -> with_guard (unlimited ()) f)

let run ?guard f =
  match install guard f with
  | v -> Ok v
  | exception Trip t -> Error t
  | exception Stack_overflow ->
    Obs.Metrics.incr m_trips;
    Error { site = "stack"; reason = Stack_exhausted }

(* ---------------- retry with jittered exponential backoff ------------ *)

let m_retries = Obs.Metrics.counter "guard.retries"

module Retry = struct
  type policy = {
    max_attempts : int;
    base_delay_ms : int;
    multiplier : float;
    max_delay_ms : int;
    jitter : float;
  }

  let default =
    {
      max_attempts = 3;
      base_delay_ms = 10;
      multiplier = 2.0;
      max_delay_ms = 1000;
      jitter = 0.5;
    }

  let policy ?(max_attempts = default.max_attempts)
      ?(base_delay_ms = default.base_delay_ms)
      ?(multiplier = default.multiplier) ?(max_delay_ms = default.max_delay_ms)
      ?(jitter = default.jitter) () =
    if max_attempts < 1 then
      invalid_arg
        (Printf.sprintf "Guard.Retry.policy: max_attempts %d < 1" max_attempts);
    if base_delay_ms < 0 then
      invalid_arg
        (Printf.sprintf "Guard.Retry.policy: negative base_delay_ms %d"
           base_delay_ms);
    if multiplier < 1.0 then
      invalid_arg
        (Printf.sprintf "Guard.Retry.policy: multiplier %g < 1.0" multiplier);
    if max_delay_ms < 0 then
      invalid_arg
        (Printf.sprintf "Guard.Retry.policy: negative max_delay_ms %d"
           max_delay_ms);
    if jitter < 0.0 || jitter > 1.0 then
      invalid_arg
        (Printf.sprintf "Guard.Retry.policy: jitter %g outside [0, 1]" jitter);
    { max_attempts; base_delay_ms; multiplier; max_delay_ms; jitter }

  (* splitmix-style avalanche: the jitter fraction is a pure function of
     (seed, attempt), so backoff schedules replay exactly in tests *)
  let mix seed attempt =
    let x = (seed * 0x9E3779B1) lxor ((attempt + 1) * 0x85EBCA77) in
    let x = x lxor (x lsr 15) in
    let x = x * 0x27D4EB2F in
    let x = x lxor (x lsr 13) in
    x land 0x3FFFFFFF

  let delay_ms p ~seed ~attempt =
    if attempt < 1 then
      invalid_arg (Printf.sprintf "Guard.Retry.delay_ms: attempt %d < 1" attempt)
    else begin
      let raw =
        float_of_int p.base_delay_ms
        *. (p.multiplier ** float_of_int (attempt - 1))
      in
      let capped = Float.min raw (float_of_int p.max_delay_ms) in
      let frac = float_of_int (mix seed attempt) /. float_of_int 0x40000000 in
      let scaled = capped *. (1.0 -. (p.jitter *. frac)) in
      int_of_float (Float.round scaled)
    end

  let transient trip =
    match trip.reason with Fault_injected _ -> true | _ -> false

  let default_sleep ms = if ms > 0 then Unix.sleepf (float_of_int ms /. 1000.0)

  let run ?(policy = default) ?(seed = 0) ?(sleep = default_sleep)
      ?(retryable = transient) f =
    let rec go attempt =
      match f () with
      | Error trip when attempt < policy.max_attempts && retryable trip ->
        let d = delay_ms policy ~seed ~attempt in
        Obs.Metrics.incr m_retries;
        if Obs.Events.enabled () then
          Obs.Events.emit Obs.Events.Info "guard.retry"
            [
              ("site", Obs.Json.String trip.site);
              ("kind", Obs.Json.String (reason_kind trip.reason));
              ("attempt", Obs.Json.Int attempt);
              ("delay_ms", Obs.Json.Int d);
            ];
        sleep d;
        go (attempt + 1)
      | r -> (r, attempt)
    in
    go 1
end

(* Each chaos rule fires on one specific visit of one site, so a retry
   after an injected trip always makes progress; the bound is a backstop
   against pathological specs (e.g. many rules on the same site). *)
let max_chaos_retries = 1000

let supervise ?guard f =
  let rec go n =
    match run ?guard f with
    | Error { reason = Fault_injected _; _ } when n < max_chaos_retries ->
      Obs.Metrics.incr m_recoveries;
      go (n + 1)
    | r -> r
  in
  go 0
