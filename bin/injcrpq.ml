(* injcrpq: command-line interface to the CRPQ injective-semantics
   library.

     injcrpq eval     --query 'Q(x,y) :- x -[(ab)*]-> y' --graph db.txt --sem q-inj
     injcrpq contain  --lhs '...' --rhs '...' --sem a-inj
     injcrpq contain  --instance pcp -s a-inj --timeout 500 --json
     injcrpq expand   --query '...' --max-len 3
     injcrpq classify --query '...'
     injcrpq reduce   pcp|gcp|qbf
     injcrpq demo

   Exit-code contract (all subcommands):
     0  the command decided / completed
     1  lint found errors
     2  usage or input error (bad query, bad graph file, bad arguments)
     3  resource budget exhausted (--timeout / --max-steps / --max-depth)
     124  cmdliner's own command-line parse errors *)

open Cmdliner

let semantics_conv =
  let parse s =
    match Semantics.of_string s with
    | Some sem -> Ok sem
    | None -> Error (`Msg (Printf.sprintf "unknown semantics %S" s))
  in
  Arg.conv (parse, fun ppf s -> Format.pp_print_string ppf (Semantics.to_string s))

let query_conv =
  let parse s =
    match Crpq.parse_result s with
    | Ok q -> Ok q
    | Error e ->
      Error
        (`Msg
           (Printf.sprintf "cannot parse query: %s" (Crpq.string_of_parse_error e)))
  in
  Arg.conv (parse, fun ppf q -> Format.pp_print_string ppf (Crpq.to_string q))

let sem_arg =
  Arg.(
    value
    & opt semantics_conv Semantics.St
    & info [ "s"; "sem" ] ~docv:"SEM"
        ~doc:"Semantics: st, a-inj, q-inj, a-edge-inj or q-edge-inj.")

let query_arg names doc =
  Arg.(required & opt (some query_conv) None & info names ~docv:"QUERY" ~doc)

let graph_arg =
  Arg.(
    required
    & opt (some string) None
    & info [ "g"; "graph" ] ~docv:"FILE"
        ~doc:"Graph database file: one 'src label dst' edge per line.")

(* --------------------------- observability ------------------------- *)

(* Diagnostic-style message on stderr, then the usage-error exit code. *)
let usage_error msg =
  Format.eprintf "injcrpq: E900 error [cli]: %s@." msg;
  exit 2

(* [--stats], [--trace FILE], [--chrome FILE], [--log FILE],
   [--expo FILE] and [--profile FILE] are accepted by every subcommand.
   The reports are emitted from an [at_exit] hook because several
   commands terminate through [exit]; the term is the first argument of
   each run function, so observability is switched on before any work
   happens. *)
(* SIGTERM / SIGINT terminate through [exit], so the [at_exit] hooks
   below flush every armed sink (--log / --trace / --chrome / --profile
   / --expo) instead of losing the tail of the run.  143 / 130 are the
   conventional 128+signal codes; the serve subcommand replaces these
   with its graceful-drain handler. *)
let install_signal_exits () =
  let handle code = Sys.Signal_handle (fun _ -> exit code) in
  (try Sys.set_signal Sys.sigterm (handle 143) with Invalid_argument _ -> ());
  try Sys.set_signal Sys.sigint (handle 130) with Invalid_argument _ -> ()

let obs_setup stats trace chrome log log_level expo profile profile_every =
  install_signal_exits ();
  if stats || trace <> None || chrome <> None || expo <> None then
    Obs.Metrics.set_enabled true;
  if trace <> None || chrome <> None then Obs.Trace.set_enabled true;
  (match log with
  | None -> ()
  | Some file ->
    (match Obs.Events.level_of_string log_level with
    | Some l -> Obs.Events.set_level l
    | None ->
      usage_error
        (Printf.sprintf "unknown log level %S (debug|info|warn|error)"
           log_level));
    Obs.Events.set_enabled true;
    let oc = open_out file in
    Obs.Events.set_sink (Some oc);
    at_exit (fun () ->
        Obs.Events.set_sink None;
        close_out oc;
        Format.eprintf "log: %d event(s) written to %s@." (Obs.Events.emitted ())
          file));
  (match profile with
  | None -> ()
  | Some _ ->
    if profile_every < 1 then
      usage_error
        (Printf.sprintf "--profile-every must be positive (got %d)"
           profile_every);
    Obs.Profile.arm ~sample_every:profile_every ());
  at_exit (fun () ->
      (match profile with
      | None -> ()
      | Some file ->
        Obs.Profile.write_collapsed file;
        Format.eprintf "profile: %d call path(s) written to %s@."
          (List.length (Obs.Profile.samples ()))
          file);
      (match chrome with
      | None -> ()
      | Some file ->
        let spans = Obs.Trace.finished () in
        Obs.Trace.write_chrome file spans;
        Format.eprintf
          "chrome trace: %d top-level span(s) written to %s (load in \
           about://tracing or Perfetto)@."
          (List.length spans) file);
      (match trace with
      | None -> ()
      | Some file ->
        let spans = Obs.Trace.finished () in
        Obs.Trace.write_jsonl file spans;
        Format.eprintf "trace: %d top-level span(s) written to %s@."
          (List.length spans) file);
      (match expo with
      | None -> ()
      | Some file ->
        Obs.Expo.write_prometheus file (Obs.Metrics.snapshot ());
        Format.eprintf "expo: metrics exposition written to %s@." file);
      if stats then
        Format.eprintf "@.metrics (%s clock):@.%a@." (Obs.Clock.source_name ())
          Obs.Metrics.pp_table
          (Obs.Metrics.snapshot ()))

let obs_term =
  let stats_arg =
    Arg.(
      value & flag
      & info [ "stats" ]
          ~doc:"Print the metrics table (search counters) after the command.")
  in
  let trace_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace" ] ~docv:"FILE"
          ~doc:"Record execution spans and write them to $(docv) as JSONL.")
  in
  let chrome_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "chrome" ] ~docv:"FILE"
          ~doc:"Record execution spans and write a Chrome trace_event JSON \
                document to $(docv) (loadable in about://tracing or \
                Perfetto).")
  in
  let log_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "log" ] ~docv:"FILE"
          ~doc:"Write structured decision events (guard trips, cache \
                evictions, refuted expansions, rewrite refusals) to $(docv) \
                as JSONL.")
  in
  let log_level_arg =
    Arg.(
      value & opt string "debug"
      & info [ "log-level" ] ~docv:"LEVEL"
          ~doc:"Drop events below $(docv): debug, info, warn or error.")
  in
  let expo_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "expo" ] ~docv:"FILE"
          ~doc:"Write the final metrics in Prometheus text exposition format \
                to $(docv).")
  in
  let profile_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "profile" ] ~docv:"FILE"
          ~doc:"Sample guard checkpoints into weighted call paths and write \
                flamegraph.pl collapsed-stack format to $(docv).")
  in
  let profile_every_arg =
    Arg.(
      value & opt int 1
      & info [ "profile-every" ] ~docv:"N"
          ~doc:"Sample every $(docv)-th checkpoint hit per domain (weights \
                stay unbiased).")
  in
  Term.(
    const obs_setup $ stats_arg $ trace_arg $ chrome_arg $ log_arg
    $ log_level_arg $ expo_arg $ profile_arg $ profile_every_arg)

(* --------------------------- explain reports ----------------------- *)

(* [--explain] on eval/contain/optimize: snapshot the metrics before the
   command body, diff at exit, render the report on stderr (stdout stays
   machine-readable).  The [explain] subcommand renders the same report
   on stdout, with [--json]. *)
let explain_enable () =
  Obs.Metrics.set_enabled true;
  Obs.Events.set_enabled true;
  if not (Obs.Profile.armed ()) then Obs.Profile.arm ()

let explain_report ~title before =
  let delta = Obs.Metrics.diff before (Obs.Metrics.snapshot ()) in
  Obs.Explain.of_metrics
    ~profile:(Obs.Profile.site_totals ())
    ~events:(Obs.Events.recent ()) ~title delta

let explain_setup ~title explain =
  if explain then begin
    explain_enable ();
    let before = Obs.Metrics.snapshot () in
    at_exit (fun () ->
        prerr_string (Obs.Explain.to_text (explain_report ~title before)))
  end

let explain_term ~title =
  let flag =
    Arg.(
      value & flag
      & info [ "explain" ]
          ~doc:"After the command, print a structured report of the work done \
                (search counters, cache hit ratios, guard budget per site) on \
                stderr.")
  in
  Term.(const (fun e -> explain_setup ~title e) $ flag)

(* --------------------------- performance --------------------------- *)

(* [--jobs], [--no-cache], [--bulk], [--bulk-sweep] and [--bulk-block]
   are accepted by every subcommand: the first fans independent
   subproblems (expansion scans, per-atom products) across OCaml 5
   domains, the second disables the automata memo tables (same effect
   as INJCRPQ_CACHE=off), the third selects the bit-matrix bulk RPQ
   engine for standard-semantics atom relations (same as INJCRPQ_BULK),
   and the last two pick the per-sweep kernel (INJCRPQ_BULK_SWEEP) and
   the source-tile size (INJCRPQ_BULK_BLOCK) of that engine. *)
let perf_setup jobs no_cache bulk bulk_sweep bulk_block =
  (match jobs with
  | Some n when n >= 1 -> Parmap.set_default_jobs n
  | Some n ->
    Format.eprintf "injcrpq: E900 error [cli]: --jobs must be positive (got %d)@."
      n;
    exit 2
  | None -> ());
  if no_cache then Cache.set_enabled false;
  (match bulk with
  | None -> ()
  | Some s -> (
    match Bulk_rpq.mode_of_string s with
    | Some m -> Bulk_rpq.set_mode m
    | None ->
      Format.eprintf
        "injcrpq: E900 error [cli]: --bulk expects on, off or auto (got %s)@." s;
      exit 2));
  (match bulk_sweep with
  | None -> ()
  | Some s -> (
    match Bulk_rpq.sweep_of_string s with
    | Some sw -> Bulk_rpq.set_sweep sw
    | None ->
      Format.eprintf
        "injcrpq: E900 error [cli]: --bulk-sweep expects sparse, dense or auto \
         (got %s)@."
        s;
      exit 2));
  match bulk_block with
  | None -> ()
  | Some b when b >= 1 -> Bulk_rpq.set_block_rows (Some b)
  | Some b ->
    Format.eprintf
      "injcrpq: E900 error [cli]: --bulk-block must be positive (got %d)@." b;
    exit 2

let perf_term =
  let jobs_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "j"; "jobs" ] ~docv:"N"
          ~doc:"Run independent subproblems on $(docv) domains (default 1, or \
                \\$INJCRPQ_JOBS).")
  in
  let no_cache_arg =
    Arg.(
      value & flag
      & info [ "no-cache" ]
          ~doc:"Disable the automata memo tables (same as INJCRPQ_CACHE=off).")
  in
  let bulk_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "bulk" ] ~docv:"MODE"
          ~doc:"Bulk bit-matrix engine for standard-semantics atom relations: \
                $(b,on), $(b,off) or $(b,auto) (default auto, or \
                \\$INJCRPQ_BULK).")
  in
  let bulk_sweep_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "bulk-sweep" ] ~docv:"MODE"
          ~doc:"Per-sweep kernel of the bulk engine: $(b,sparse) (CSR frontier \
                push), $(b,dense) (bit-matrix rows) or $(b,auto) (switch by \
                measured frontier density; default, or \\$INJCRPQ_BULK_SWEEP).")
  in
  let bulk_block_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "bulk-block" ] ~docv:"B"
          ~doc:"Tile multi-source bulk runs into blocks of at most $(docv) \
                source rows, bounding peak visited-matrix memory (default: \
                sized from a 64 MiB tile budget, or \\$INJCRPQ_BULK_BLOCK).")
  in
  Term.(
    const perf_setup $ jobs_arg $ no_cache_arg $ bulk_arg $ bulk_sweep_arg
    $ bulk_block_arg)

(* --------------------------- resource guard ------------------------ *)

(* [--timeout], [--max-steps] and [--max-depth] are accepted by every
   subcommand; together they build the Guard installed around the
   command body.  Deciders then degrade to [Unknown (Resource_exhausted
   _)] and the command exits 3 — never hangs, never raises. *)
let guard_setup timeout steps depth =
  match timeout, steps, depth with
  | None, None, None -> None
  | _ -> Some (Guard.create ?deadline_ms:timeout ?fuel:steps ?max_depth:depth ())

let guard_term =
  let timeout_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "timeout" ] ~docv:"MS"
          ~doc:"Wall-clock budget in milliseconds (exit 3 when exceeded).")
  in
  let steps_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "max-steps" ] ~docv:"N"
          ~doc:"Step budget: total guarded search steps allowed (exit 3 when \
                exhausted).")
  in
  let depth_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "max-depth" ] ~docv:"N"
          ~doc:"Recursion-depth ceiling for backtracking searches (exit 3 \
                when exceeded).")
  in
  Term.(const guard_setup $ timeout_arg $ steps_arg $ depth_arg)

(* [governed guard f] is the degradation boundary of every subcommand:
   a guard trip that escapes the deciders exits 3 (rendered with
   [on_trip] when machine-readable output was requested), and any
   exception that would otherwise produce an uncaught backtrace becomes
   a Diagnostic-style message with exit 2. *)
let governed ?on_trip guard f =
  match Guard.run ?guard f with
  | Ok v -> v
  | Error trip ->
    (match on_trip with
    | Some render -> print_endline (Obs.Json.to_string (render trip))
    | None ->
      Format.eprintf "injcrpq: resource exhausted: %s@."
        (Guard.trip_to_string trip));
    exit 3
  | exception Containment_qinj.Unsupported msg ->
    usage_error ("abstraction algorithm: " ^ msg)
  | exception Containment_f7.Unsupported msg ->
    usage_error ("window algorithm: " ^ msg)
  | exception Invalid_argument msg -> usage_error msg
  | exception Failure msg -> usage_error msg
  | exception Sys_error msg -> usage_error msg
  | exception e ->
    Format.eprintf "injcrpq: E901 error [internal]: %s@."
      (Printexc.to_string e);
    exit 2

(* --------------------------- optimizer pre-pass ------------------- *)

(* [--optimize] (or INJCRPQ_OPTIMIZE=on) hooks the certified optimizer
   in front of every evaluation / containment decision of the
   subcommand.  Rewrites are containment-certified under the active
   semantics, so verdicts and answer sets are unchanged — only cheaper
   to compute. *)
let env_optimize () =
  match Sys.getenv_opt "INJCRPQ_OPTIMIZE" with
  | Some ("on" | "1" | "true") -> true
  | _ -> false

let optimize_setup flag = if flag || env_optimize () then Analysis.install_preprocessor ()

let optimize_term =
  let flag =
    Arg.(
      value & flag
      & info [ "optimize" ]
          ~doc:"Run the certified optimizer as a pre-pass on every query \
                (also enabled by INJCRPQ_OPTIMIZE=on).  Applied rewrites are \
                containment-certified, so results are unchanged.")
  in
  Term.(const optimize_setup $ flag)

(* ------------------------------ eval ------------------------------ *)

let eval_cmd =
  let run () () guard () () sem q graph_file tuple =
    let g =
      match Graph_io.load_result graph_file with
      | Ok g -> g
      | Error msg -> usage_error ("cannot load graph: " ^ msg)
    in
    governed guard (fun () ->
        match tuple with
        | [] ->
          let answers = Eval.eval sem q g in
          Format.printf "%d answer(s) under %s semantics:@."
            (List.length answers) (Semantics.to_string sem);
          List.iter
            (fun t ->
              Format.printf "  (%s)@."
                (String.concat ", " (List.map string_of_int t)))
            answers
        | t -> Format.printf "%b@." (Eval.check sem q g t))
  in
  let tuple_arg =
    Arg.(
      value & opt (list int) []
      & info [ "t"; "tuple" ] ~docv:"NODES"
          ~doc:"Check a specific answer tuple instead of enumerating.")
  in
  Cmd.v
    (Cmd.info "eval" ~doc:"Evaluate a CRPQ over a graph database.")
    Term.(
      const run $ obs_term $ perf_term $ guard_term $ optimize_term
      $ explain_term ~title:"eval" $ sem_arg
      $ query_arg [ "q"; "query" ] "The CRPQ to evaluate."
      $ graph_arg $ tuple_arg)

(* ---------------------------- contain ----------------------------- *)

let contain_cmd =
  let run () () guard () () sem lhs rhs instance bound json =
    let q1, q2 =
      match instance, lhs, rhs with
      | None, Some q1, Some q2 -> (q1, q2)
      | None, _, _ ->
        usage_error "contain needs --lhs and --rhs (or --instance NAME)"
      | Some _, Some _, _ | Some _, _, Some _ ->
        usage_error "--instance replaces --lhs/--rhs; give one or the other"
      | Some `Pcp, None, None ->
        (* the Thm 5.2 cell: a-inj containment is undecidable; without a
           budget the bounded search on this pair runs essentially
           forever *)
        let e = Pcp_to_ainj.encode Pcp.solvable_small in
        (e.Pcp_to_ainj.q1, e.Pcp_to_ainj.q2)
      | Some `Gcp, None, None ->
        let e = Gcp_to_qinj.encode (Gcp.cycle 4 ~n:2) in
        (e.Gcp_to_qinj.q1, e.Gcp_to_qinj.q2)
      | Some `Qbf, None, None ->
        let e = Qbf_to_ainj.encode Qbf.valid_small in
        (e.Qbf_to_ainj.q1, e.Qbf_to_ainj.q2)
    in
    let verdict_json v =
      let base =
        [
          ( "verdict",
            Obs.Json.String
              (match v with
              | Containment.Contained -> "contained"
              | Containment.Not_contained _ -> "not-contained"
              | Containment.Unknown _ -> "unknown") );
          ("semantics", Obs.Json.String (Semantics.to_string sem));
          ("strategy", Obs.Json.String (Containment.strategy_name sem q1 q2));
        ]
      in
      let extra =
        match v with
        | Containment.Unknown r ->
          let kind =
            match r with
            | Containment.Resource_exhausted trip ->
              Guard.reason_kind trip.Guard.reason
            | Containment.Budget_exhausted _ -> "search-budget"
            | Containment.Undecided _ -> "undecided"
          in
          [
            ( "reason",
              Obs.Json.Obj
                [
                  ("kind", Obs.Json.String kind);
                  ( "detail",
                    Obs.Json.String (Containment.reason_to_string r) );
                ] );
          ]
        | Containment.Not_contained w ->
          [
            ( "counterexample",
              Obs.Json.String (Cq.to_string w.Containment.expansion.Expansion.cq)
            );
          ]
        | Containment.Contained -> []
      in
      Obs.Json.Obj (base @ extra)
    in
    let on_trip =
      if json then
        Some (fun trip -> verdict_json (Containment.resource_exhausted trip))
      else None
    in
    governed ?on_trip guard (fun () ->
        let v = Containment.decide ~bound sem q1 q2 in
        if json then print_endline (Obs.Json.to_string (verdict_json v))
        else begin
          Format.printf "strategy: %s@." (Containment.strategy_name sem q1 q2);
          Format.printf "%a@." Containment.pp_verdict v
        end;
        match v with Containment.Unknown _ -> exit 3 | _ -> ())
  in
  let bound_arg =
    Arg.(
      value & opt int 4
      & info [ "b"; "bound" ] ~docv:"N"
          ~doc:"Word-length bound for the bounded counterexample search.")
  in
  let opt_query names doc =
    Arg.(value & opt (some query_conv) None & info names ~docv:"QUERY" ~doc)
  in
  let instance_arg =
    Arg.(
      value
      & opt (some (enum [ ("pcp", `Pcp); ("gcp", `Gcp); ("qbf", `Qbf) ])) None
      & info [ "instance" ] ~docv:"NAME"
          ~doc:"Use a built-in hardness-reduction query pair (pcp, gcp or \
                qbf) instead of --lhs/--rhs.")
  in
  let json_arg =
    Arg.(
      value & flag
      & info [ "json" ] ~doc:"Machine-readable JSON verdict on stdout.")
  in
  Cmd.v
    (Cmd.info "contain"
       ~doc:"Decide Q1 ⊆ Q2 under the chosen semantics (exit 3 when undecided \
             or out of budget).")
    Term.(
      const run $ obs_term $ perf_term $ guard_term $ optimize_term
      $ explain_term ~title:"contain" $ sem_arg
      $ opt_query [ "lhs" ] "Left-hand query Q1."
      $ opt_query [ "rhs" ] "Right-hand query Q2."
      $ instance_arg $ bound_arg $ json_arg)

(* ----------------------------- expand ----------------------------- *)

let expand_cmd =
  let run () () guard q max_len ainj =
    governed guard (fun () ->
        let es =
          if ainj then Expansion.ainj_expansions ~max_len q
          else Expansion.expansions ~max_len q
        in
        Format.printf "%d expansion(s) with atom words of length <= %d:@."
          (List.length es) max_len;
        List.iter
          (fun e -> Format.printf "  %s@." (Cq.to_string e.Expansion.cq))
          es)
  in
  let max_len_arg =
    Arg.(value & opt int 2 & info [ "max-len" ] ~docv:"N" ~doc:"Word length bound.")
  in
  let ainj_arg =
    Arg.(
      value & flag
      & info [ "a-inj" ] ~doc:"Enumerate a-inj-expansions (with merges) instead.")
  in
  Cmd.v
    (Cmd.info "expand" ~doc:"Enumerate (a-inj-)expansions of a CRPQ.")
    Term.(
      const run $ obs_term $ perf_term $ guard_term
      $ query_arg [ "q"; "query" ] "The CRPQ."
      $ max_len_arg $ ainj_arg)

(* ---------------------------- classify ---------------------------- *)

let classify_cmd =
  let run () () guard q =
    governed guard @@ fun () ->
    let cls =
      match Crpq.classify q with
      | Crpq.Class_cq -> "CQ"
      | Crpq.Class_fin -> "CRPQfin"
      | Crpq.Class_crpq -> "CRPQ"
    in
    Format.printf "class: %s@." cls;
    Format.printf "atoms: %d, variables: %d, alphabet: {%s}@." (Crpq.size q)
      (List.length (Crpq.vars q))
      (String.concat ", " (Crpq.alphabet q));
    Format.printf "boolean: %b, satisfiable: %b@." (Crpq.is_boolean q)
      (Crpq.epsilon_free_disjuncts q <> [])
  in
  Cmd.v
    (Cmd.info "classify" ~doc:"Report the class and shape of a CRPQ.")
    Term.(
      const run $ obs_term $ perf_term $ guard_term $ query_arg [ "q"; "query" ] "The CRPQ.")

(* ----------------------------- reduce ----------------------------- *)

let reduce_cmd =
  let run () () guard which =
    governed guard @@ fun () ->
    match which with
    | "pcp" ->
      let inst = Pcp.solvable_small in
      let enc = Pcp_to_ainj.encode inst in
      Format.printf "PCP instance %a (solvable with 1,2)@." Pcp.pp inst;
      Format.printf "@.Q1 = %s@." (Crpq.to_string enc.Pcp_to_ainj.q1);
      Format.printf "@.Q2 = %s@." (Crpq.to_string enc.Pcp_to_ainj.q2);
      Format.printf "@.solution expansion defeats Q2: %b@."
        (Pcp_to_ainj.is_counterexample enc
           (Pcp_to_ainj.well_formed_expansion enc [ 1; 2 ]))
    | "gcp" ->
      let inst = Gcp.cycle 4 ~n:2 in
      let enc = Gcp_to_qinj.encode inst in
      Format.printf "GCP2 instance: %a@." Gcp.pp inst;
      Format.printf "@.Q1 = %s@." (Crpq.to_string enc.Gcp_to_qinj.q1);
      Format.printf "@.Q2 = %s@." (Crpq.to_string enc.Gcp_to_qinj.q2);
      let via_q, via_b = Gcp_to_qinj.verify inst in
      Format.printf "@.GCP2 positive (queries/brute): %b/%b@." via_q via_b
    | "qbf" ->
      let inst = Qbf.valid_small in
      let enc = Qbf_to_ainj.encode inst in
      Format.printf "QBF instance: %a@." Qbf.pp inst;
      Format.printf "@.|Q1| = %d atoms, |Q2| = %d atoms@."
        (Crpq.size enc.Qbf_to_ainj.q1) (Crpq.size enc.Qbf_to_ainj.q2);
      let via_q, via_b = Qbf_to_ainj.verify inst in
      Format.printf "valid (queries/brute): %b/%b@." via_q via_b
    | other -> usage_error (Printf.sprintf "unknown reduction %S (pcp|gcp|qbf)" other)
  in
  let which_arg =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"WHICH" ~doc:"pcp, gcp or qbf.")
  in
  Cmd.v
    (Cmd.info "reduce"
       ~doc:"Show one of the paper's hardness reductions on a sample instance.")
    Term.(const run $ obs_term $ perf_term $ guard_term $ which_arg)

(* ---------------------------- minimize ---------------------------- *)

let minimize_cmd =
  let run () () guard sem q =
    governed guard @@ fun () ->
    let m = Minimize.drop_redundant_atoms sem q in
    Format.printf "%s@." (Crpq.to_string (Minimize.prune_languages m));
    if Crpq.size m < Crpq.size q then
      Format.printf "(removed %d redundant atom(s) under %s semantics)@."
        (Crpq.size q - Crpq.size m)
        (Semantics.to_string sem)
  in
  Cmd.v
    (Cmd.info "minimize"
       ~doc:"Remove provably redundant atoms and simplify languages.")
    Term.(
      const run $ obs_term $ perf_term $ guard_term $ sem_arg
      $ query_arg [ "q"; "query" ] "The CRPQ.")

(* ------------------------------ equiv ----------------------------- *)

let equiv_cmd =
  let run () () guard sem q1 q2 bound =
    governed guard @@ fun () ->
    match Minimize.equivalent ~bound sem q1 q2 with
    | Some b -> Format.printf "%b@." b
    | None ->
      Format.printf "undecided@.";
      exit 3
  in
  let bound_arg =
    Arg.(value & opt int 4 & info [ "b"; "bound" ] ~docv:"N" ~doc:"Search bound.")
  in
  Cmd.v
    (Cmd.info "equiv"
       ~doc:"Decide query equivalence under a semantics (exit 3 when \
             undecided).")
    Term.(
      const run $ obs_term $ perf_term $ guard_term $ sem_arg
      $ query_arg [ "lhs" ] "First query."
      $ query_arg [ "rhs" ] "Second query."
      $ bound_arg)

(* ------------------------------ lint ------------------------------ *)

(* Inline queries keep their positional names; file queries are named
   basename:lineno by [Analysis.read_query_file]. *)
let gather_queries ~cmd queries file =
  let from_file =
    match file with
    | None -> []
    | Some path -> (
      match Analysis.read_query_file path with
      | Ok qs -> qs
      | Error msg ->
        Format.eprintf "%s: %s@." cmd msg;
        exit 2)
  in
  let named =
    List.mapi (fun i q -> (Printf.sprintf "query %d" i, q)) queries @ from_file
  in
  if named = [] then begin
    Format.eprintf "%s: nothing to do (use --query or --file)@." cmd;
    exit 2
  end;
  named

let lint_cmd =
  let run () () guard sem queries file json no_redundancy no_nfa no_shape bound
      graph_file explain =
    governed guard @@ fun () ->
    match explain with
    | Some code -> (
      match Catalog.find code with
      | Some entry -> print_endline (Catalog.to_string entry)
      | None ->
        usage_error
          (Printf.sprintf "unknown diagnostic code %S (see the catalogue in README.md)"
             code))
    | None ->
      let graph =
        match graph_file with
        | None -> None
        | Some path -> (
          match Graph_io.load_result path with
          | Ok g -> Some g
          | Error msg -> usage_error ("cannot load graph: " ^ msg))
      in
      let named_queries = gather_queries ~cmd:"lint" queries file in
      let any_errors = ref false in
      let results =
        List.map
          (fun (name, q) ->
            let ds =
              Analysis.lint ~sem ~redundancy:(not no_redundancy) ~bound
                ~nfa_hygiene:(not no_nfa) ~shape:(not no_shape) ?graph q
            in
            if Diagnostic.has_errors ds then any_errors := true;
            (name, q, ds))
          named_queries
      in
      if json then
        (* one JSON array over all queries, tagging each diagnostic list *)
        print_endline (Analysis.lint_json results)
      else
        List.iter
          (fun (name, q, ds) ->
            Format.printf "%s: %s@." name (Crpq.to_string q);
            if ds = [] then Format.printf "  clean (no diagnostics)@."
            else List.iter (fun d -> Format.printf "  %s@." (Diagnostic.to_string d)) ds)
          results;
      if !any_errors then exit 1
  in
  let queries_arg =
    Arg.(
      value
      & opt_all query_conv []
      & info [ "q"; "query" ] ~docv:"QUERY" ~doc:"A CRPQ to lint (repeatable).")
  in
  let file_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "f"; "file" ] ~docv:"FILE"
          ~doc:"Lint every query in $(docv) (one per line; blank lines and # comments skipped).")
  in
  let json_arg =
    Arg.(value & flag & info [ "json" ] ~doc:"Machine-readable JSON output.")
  in
  let no_redundancy_arg =
    Arg.(
      value & flag
      & info [ "no-redundancy" ]
          ~doc:"Skip the containment-backed redundant-atom pass (I006), the only \
                expensive one.")
  in
  let no_nfa_arg =
    Arg.(
      value & flag
      & info [ "no-nfa-hygiene" ] ~doc:"Skip the per-atom NFA hygiene summary.")
  in
  let bound_arg =
    Arg.(
      value & opt int 4
      & info [ "b"; "bound" ] ~docv:"N"
          ~doc:"Containment search bound for the redundancy pass.")
  in
  let no_shape_arg =
    Arg.(
      value & flag
      & info [ "no-shape" ]
          ~doc:"Skip the I101/I102/I103 query-shape report (treewidth, \
                decomposition bags, articulation points).")
  in
  let lint_graph_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "g"; "graph" ] ~docv:"FILE"
          ~doc:"Example graph (one 'src label dst' edge per line): \
                additionally run the W104 empty-candidate-domain pass \
                against it.")
  in
  let explain_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "explain" ] ~docv:"CODE"
          ~doc:"Print the catalogue entry for a diagnostic code (e.g. W003) \
                and exit.")
  in
  Cmd.v
    (Cmd.info "lint"
       ~doc:"Run the static-analysis passes over queries (exit 1 on errors, 2 on \
             usage problems).")
    Term.(
      const run $ obs_term $ perf_term $ guard_term $ sem_arg $ queries_arg $ file_arg
      $ json_arg $ no_redundancy_arg $ no_nfa_arg $ no_shape_arg $ bound_arg
      $ lint_graph_arg $ explain_arg)

(* ---------------------------- optimize ---------------------------- *)

let optimize_cmd =
  let run () () guard () sem queries file json dry_run bound =
    governed guard @@ fun () ->
    let named_queries = gather_queries ~cmd:"optimize" queries file in
    let results =
      List.map
        (fun (name, q) ->
          let q', report = Analysis.optimize ~sem ~bound q in
          (name, q, q', report))
        named_queries
    in
    if json then
      print_endline
        (Obs.Json.to_string
           (Obs.Json.List
              (List.map
                 (fun (name, q, q', report) ->
                   Analysis.optimize_json ~name ~sem ~before:q ~after:q' report)
                 results)))
    else
      List.iter
        (fun (name, q, q', report) ->
          Format.printf "%s: %s@." name (Crpq.to_string q);
          List.iter
            (fun (s : Rewrite.step) ->
              Format.printf "  %s %s (%s)@."
                (if s.Rewrite.applied then "applied" else "skipped")
                (Rewrite.candidate_to_string s.Rewrite.candidate)
                s.Rewrite.note)
            report.Analysis.rewrite.Rewrite.steps;
          let shape = report.Analysis.shape_after in
          Format.printf "  treewidth %d (%s), %d atom(s) removed@."
            shape.Query_shape.width
            (if shape.Query_shape.width_exact then "exact" else "min-fill bound")
            (Rewrite.removed_atoms report.Analysis.rewrite);
          if dry_run then
            Format.printf "  dry run: query left unchanged@."
          else Format.printf "  => %s@." (Crpq.to_string q'))
        results
  in
  let queries_arg =
    Arg.(
      value
      & opt_all query_conv []
      & info [ "q"; "query" ] ~docv:"QUERY" ~doc:"A CRPQ to optimize (repeatable).")
  in
  let file_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "f"; "file" ] ~docv:"FILE"
          ~doc:"Optimize every query in $(docv) (one per line; blank lines and \
                # comments skipped).")
  in
  let json_arg =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:"Machine-readable report: queries before/after, every \
                certificate check, shape summaries.")
  in
  let dry_run_arg =
    Arg.(
      value & flag
      & info [ "dry-run" ]
          ~doc:"Report the certified rewrites without printing the rewritten \
                query as the result.")
  in
  let bound_arg =
    Arg.(
      value & opt int 4
      & info [ "b"; "bound" ] ~docv:"N"
          ~doc:"Containment search bound for the certificate checks.")
  in
  Cmd.v
    (Cmd.info "optimize"
       ~doc:"Rewrite queries under containment-checked certificates: drop \
             provably redundant atoms, merge ε-joined variables, collapse \
             unsatisfiable queries; report treewidth before/after.")
    Term.(
      const run $ obs_term $ perf_term $ guard_term
      $ explain_term ~title:"optimize" $ sem_arg $ queries_arg
      $ file_arg $ json_arg $ dry_run_arg $ bound_arg)

(* ----------------------------- explain ---------------------------- *)

(* One structured report per run: what was searched, pruned, cached,
   checkpointed and rewritten.  The mode is inferred from the arguments
   (--lhs/--rhs: containment; --query with --graph: evaluation; --query
   alone: the certified optimizer), mirroring the corresponding
   subcommand, with the report on stdout instead of the verdict. *)
let explain_cmd =
  let run () () guard () sem query graph_file lhs rhs bound json =
    explain_enable ();
    let before = Obs.Metrics.snapshot () in
    let finish ~title extra =
      let report =
        List.fold_left Obs.Explain.add_section
          (explain_report ~title before)
          extra
      in
      if json then print_endline (Obs.Json.to_string (Obs.Explain.to_json report))
      else print_string (Obs.Explain.to_text report)
    in
    governed guard (fun () ->
        match lhs, rhs, query, graph_file with
        | Some q1, Some q2, None, None ->
          let v = Containment.decide ~bound sem q1 q2 in
          finish ~title:"contain"
            [
              Obs.Explain.section "verdict"
                [
                  Obs.Explain.row "semantics"
                    (Obs.Json.String (Semantics.to_string sem));
                  Obs.Explain.row "strategy"
                    (Obs.Json.String (Containment.strategy_name sem q1 q2));
                  Obs.Explain.row "verdict"
                    (Obs.Json.String
                       (Format.asprintf "%a" Containment.pp_verdict v));
                ];
            ]
        | None, None, Some q, Some gfile ->
          let g =
            match Graph_io.load_result gfile with
            | Ok g -> g
            | Error msg -> usage_error ("cannot load graph: " ^ msg)
          in
          let answers = Eval.eval sem q g in
          finish ~title:"eval"
            [
              Obs.Explain.section "result"
                [
                  Obs.Explain.row "semantics"
                    (Obs.Json.String (Semantics.to_string sem));
                  Obs.Explain.row "answers"
                    (Obs.Json.Int (List.length answers));
                ];
            ]
        | None, None, Some q, None ->
          let q', report = Analysis.optimize ~sem ~bound q in
          let step_row (s : Rewrite.step) =
            let cost_ns =
              List.fold_left
                (fun acc (c : Rewrite.check) ->
                  Int64.add acc c.Rewrite.wall_ns)
                0L s.Rewrite.checks
            in
            Obs.Explain.row
              (Rewrite.candidate_to_string s.Rewrite.candidate)
              (Obs.Json.Obj
                 [
                   ("applied", Obs.Json.Bool s.Rewrite.applied);
                   ("note", Obs.Json.String s.Rewrite.note);
                   ("checks", Obs.Json.Int (List.length s.Rewrite.checks));
                   ("certificate_ns", Obs.Json.Int (Int64.to_int cost_ns));
                 ])
          in
          finish ~title:"optimize"
            [
              Obs.Explain.section "result"
                [
                  Obs.Explain.row "before"
                    (Obs.Json.String (Crpq.to_string q));
                  Obs.Explain.row "after"
                    (Obs.Json.String (Crpq.to_string q'));
                  Obs.Explain.row "atoms_removed"
                    (Obs.Json.Int
                       (Rewrite.removed_atoms report.Analysis.rewrite));
                ];
              Obs.Explain.section "rewrite steps"
                (List.map step_row report.Analysis.rewrite.Rewrite.steps);
            ]
        | _ ->
          usage_error
            "explain needs --lhs/--rhs (containment), or --query with \
             --graph (evaluation), or --query alone (optimizer)")
  in
  let opt_query names doc =
    Arg.(value & opt (some query_conv) None & info names ~docv:"QUERY" ~doc)
  in
  let opt_graph =
    Arg.(
      value
      & opt (some string) None
      & info [ "g"; "graph" ] ~docv:"FILE"
          ~doc:"Graph database file: one 'src label dst' edge per line.")
  in
  let bound_arg =
    Arg.(
      value & opt int 4
      & info [ "b"; "bound" ] ~docv:"N"
          ~doc:"Containment search bound (containment and certificate \
                checks).")
  in
  let json_arg =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:"Machine-readable report (schema injcrpq-explain/1) on stdout.")
  in
  Cmd.v
    (Cmd.info "explain"
       ~doc:"Run a containment / evaluation / optimizer pass and report the \
             work done: expansions tried and pruned, CSP candidates and \
             backtracks, cache hit ratios per table, guard budget per site, \
             rewrite steps with certificate costs.")
    Term.(
      const run $ obs_term $ perf_term $ guard_term $ optimize_term $ sem_arg
      $ opt_query [ "q"; "query" ] "Query to evaluate or optimize."
      $ opt_graph
      $ opt_query [ "lhs" ] "Left-hand query Q1 (containment mode)."
      $ opt_query [ "rhs" ] "Right-hand query Q2 (containment mode)."
      $ bound_arg $ json_arg)

(* ------------------------------ serve ----------------------------- *)

let serve_cmd =
  let parse_graph_spec spec =
    match String.index_opt spec '=' with
    | Some i ->
      ( String.sub spec 0 i,
        String.sub spec (i + 1) (String.length spec - i - 1) )
    | None -> ("default", spec)
  in
  let run () () socket port graph_specs workers queue_bound timeout_ms
      max_steps quota_rps quota_burst retry_attempts retry_base_ms drain_ms
      answer_cap =
    let graphs =
      List.map
        (fun spec ->
          let name, file = parse_graph_spec spec in
          match Graph_io.load_result file with
          | Ok g -> (name, g)
          | Error msg ->
            usage_error (Printf.sprintf "cannot load graph %s: %s" file msg))
        graph_specs
    in
    (match
       List.find_opt
         (fun (n, _) -> List.length (List.filter (fun (m, _) -> m = n) graphs) > 1)
         graphs
     with
    | Some (n, _) -> usage_error (Printf.sprintf "duplicate graph name %S" n)
    | None -> ());
    let quota =
      match quota_rps with
      | None -> None
      | Some rate_per_s -> (
        try Some (Serve.Quota.policy ?burst:quota_burst ~rate_per_s ())
        with Invalid_argument msg -> usage_error msg)
    in
    let retry =
      try
        Guard.Retry.policy ~max_attempts:retry_attempts
          ~base_delay_ms:retry_base_ms ()
      with Invalid_argument msg -> usage_error msg
    in
    let cfg =
      try
        Serve.Server.config ~workers ~queue_bound ~timeout_ms ?max_steps ?quota
          ~retry ~drain_ms ~answer_cap ~graphs ()
      with Invalid_argument msg -> usage_error msg
    in
    let srv = Serve.Server.create cfg in
    let listen, where, cleanup =
      match socket, port with
      | Some _, Some _ ->
        usage_error "--socket and --port are mutually exclusive"
      | None, None -> usage_error "serve needs --socket PATH or --port N"
      | Some path, None -> (
        (try Unix.unlink path with Unix.Unix_error _ -> ());
        let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
        try
          Unix.bind fd (Unix.ADDR_UNIX path);
          Unix.listen fd 64;
          ( fd,
            path,
            fun () ->
              (try Unix.close fd with Unix.Unix_error _ -> ());
              try Unix.unlink path with Unix.Unix_error _ -> () )
        with Unix.Unix_error (e, _, _) ->
          usage_error
            (Printf.sprintf "cannot listen on %s: %s" path
               (Unix.error_message e)))
      | None, Some port -> (
        let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
        Unix.setsockopt fd Unix.SO_REUSEADDR true;
        try
          Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
          Unix.listen fd 64;
          ( fd,
            Printf.sprintf "127.0.0.1:%d" port,
            fun () -> try Unix.close fd with Unix.Unix_error _ -> () )
        with Unix.Unix_error (e, _, _) ->
          usage_error
            (Printf.sprintf "cannot listen on port %d: %s" port
               (Unix.error_message e)))
    in
    (* replace the exit-style handlers from obs_setup with graceful
       drain: stop accepting, finish in-flight, then run returns and we
       exit 0 through the normal path (flushing sinks on the way) *)
    let graceful = Sys.Signal_handle (fun _ -> Serve.Server.shutdown srv) in
    (try Sys.set_signal Sys.sigterm graceful with Invalid_argument _ -> ());
    (try Sys.set_signal Sys.sigint graceful with Invalid_argument _ -> ());
    Format.eprintf
      "injcrpq: serving on %s (%d worker(s), queue %d, %d graph(s))@." where
      workers queue_bound (List.length graphs);
    Serve.Server.run srv ~listen ();
    cleanup ();
    Format.eprintf "injcrpq: drained cleanly@."
  in
  let socket_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "socket" ] ~docv:"PATH"
          ~doc:"Listen on a unix-domain socket at $(docv).")
  in
  let port_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "port" ] ~docv:"N" ~doc:"Listen on 127.0.0.1:$(docv) (TCP).")
  in
  let graphs_arg =
    Arg.(
      value & opt_all string []
      & info [ "graph" ] ~docv:"NAME=FILE"
          ~doc:"Load a graph database once, shared by all requests \
                (repeatable).  A bare FILE is named \"default\".")
  in
  let workers_arg =
    Arg.(
      value & opt int 2
      & info [ "workers" ] ~docv:"N" ~doc:"Domain worker pool size.")
  in
  let queue_bound_arg =
    Arg.(
      value & opt int 64
      & info [ "queue-bound" ] ~docv:"N"
          ~doc:"Admission queue capacity; a full queue sheds with a \
                structured response instead of queueing unboundedly.")
  in
  let timeout_arg =
    Arg.(
      value & opt int 5000
      & info [ "request-timeout" ] ~docv:"MS"
          ~doc:"Server cap on any request's wall-clock budget; on a trip \
                the request answers status=unknown.")
  in
  let steps_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "request-steps" ] ~docv:"N"
          ~doc:"Server cap on any request's step budget (fuel).")
  in
  let quota_rps_arg =
    Arg.(
      value
      & opt (some float) None
      & info [ "quota-rps" ] ~docv:"R"
          ~doc:"Per-session token-bucket rate (requests per second); \
                over-quota requests answer status=quota with a \
                retry_after_ms hint.")
  in
  let quota_burst_arg =
    Arg.(
      value
      & opt (some float) None
      & info [ "quota-burst" ] ~docv:"B"
          ~doc:"Token-bucket capacity (default: max 1 R).")
  in
  let retry_attempts_arg =
    Arg.(
      value & opt int 3
      & info [ "retry-attempts" ] ~docv:"N"
          ~doc:"Attempts per request for transient (injected-fault) trips.")
  in
  let retry_base_arg =
    Arg.(
      value & opt int 10
      & info [ "retry-base-ms" ] ~docv:"MS"
          ~doc:"Base delay of the jittered exponential backoff between \
                attempts.")
  in
  let drain_arg =
    Arg.(
      value & opt int 2000
      & info [ "drain-ms" ] ~docv:"MS"
          ~doc:"Grace period on SIGTERM/SIGINT before in-flight requests \
                are cancelled through their tokens.")
  in
  let answer_cap_arg =
    Arg.(
      value & opt int 1000
      & info [ "answer-cap" ] ~docv:"N"
          ~doc:"Maximum answer tuples returned per eval response.")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Run the query daemon: load graphs once, serve eval / contain / \
             lint / optimize / stats requests over a JSON-line socket \
             protocol (schema injcrpq-serve/1) with admission control, \
             per-session quotas, per-request resource guards, retry with \
             backoff, and graceful drain on SIGTERM.")
    Term.(
      const run $ obs_term $ perf_term $ socket_arg $ port_arg $ graphs_arg
      $ workers_arg $ queue_bound_arg $ timeout_arg $ steps_arg
      $ quota_rps_arg $ quota_burst_arg $ retry_attempts_arg $ retry_base_arg
      $ drain_arg $ answer_cap_arg)

(* ------------------------------ demo ------------------------------ *)

let demo_cmd =
  let run () () guard () =
    governed guard @@ fun () ->
    let q = Paper_examples.example_21_query in
    Format.printf "Example 2.1: Q = %s@." (Crpq.to_string q);
    let g = Paper_examples.example_21_g in
    let t = Paper_examples.example_21_g_tuple in
    List.iter
      (fun sem ->
        Format.printf "  (u,w) under %-6s: %b@." (Semantics.to_string sem)
          (Eval.check sem q g t))
      Semantics.node_semantics;
    Format.printf "@.Example 4.7 verdicts:@.";
    List.iter
      (fun (name, sem, q1, q2, expected) ->
        Format.printf "  %s under %-6s: %a (paper: %b)@." name
          (Semantics.to_string sem) Containment.pp_verdict
          (Containment.decide sem q1 q2) expected)
      Paper_examples.example_47_expectations
  in
  Cmd.v
    (Cmd.info "demo" ~doc:"Run the paper's running examples.")
    Term.(const run $ obs_term $ perf_term $ guard_term $ const ())

let () =
  let default = Term.(ret (const (`Help (`Pager, None)))) in
  let info =
    Cmd.info "injcrpq" ~version:"1.0.0"
      ~doc:"CRPQs under injective semantics (PODS'23 reproduction)."
  in
  exit
    (Cmd.eval
       (Cmd.group ~default info
          [
            eval_cmd;
            contain_cmd;
            expand_cmd;
            explain_cmd;
            classify_cmd;
            lint_cmd;
            optimize_cmd;
            minimize_cmd;
            equiv_cmd;
            reduce_cmd;
            serve_cmd;
            demo_cmd;
          ]))
