(* End-to-end robustness demo from ISSUE 8, driven against the real
   [injcrpq serve] binary (argv.(1)):

   - queue bound 1 and a 2 req/s per-session quota;
   - INJCRPQ_CHAOS=guard:serve.worker:3 killing a worker attempt
     mid-run;
   - a 50-request client across 16 sessions sees only well-formed
     ok/unknown/shed/quota responses;
   - stats reports nonzero serve.shed and serve.retried;
   - SIGTERM drains to exit 0 and the --log sink is flushed.

   A plain executable (not alcotest): prints one line per check and
   exits nonzero on the first violation. *)

module P = Serve.Protocol

let die fmt = Printf.ksprintf (fun s -> prerr_endline ("FAIL: " ^ s); exit 1) fmt
let pass fmt = Printf.ksprintf (fun s -> print_endline ("ok: " ^ s)) fmt

let graph_file = "daemon_test.graph"
let sock = "daemon_test.sock"
let log_file = "daemon_test.log.jsonl"

let write_graph () =
  let oc = open_out graph_file in
  output_string oc "0 a 1\n1 b 2\n2 a 3\n3 b 0\n0 c 0\n2 c 2\n";
  close_out oc

(* the daemon must see our chaos spec, not whatever leg-level spec the
   surrounding `dune runtest` was started with *)
let env_with_chaos spec =
  let kept =
    Array.to_list (Unix.environment ())
    |> List.filter (fun kv ->
           not (String.length kv >= 14 && String.sub kv 0 14 = "INJCRPQ_CHAOS="))
  in
  Array.of_list (("INJCRPQ_CHAOS=" ^ spec) :: kept)

let spawn_daemon exe =
  let args =
    [|
      exe; "serve"; "--socket"; sock; "--graph"; "default=" ^ graph_file;
      "--workers"; "2"; "--queue-bound"; "1"; "--quota-rps"; "2";
      "--retry-attempts"; "3"; "--retry-base-ms"; "1"; "--log"; log_file;
    |]
  in
  Unix.create_process_env exe args
    (env_with_chaos "guard:serve.worker:3")
    Unix.stdin Unix.stdout Unix.stderr

let wait_for_socket () =
  let deadline = Unix.gettimeofday () +. 10.0 in
  let rec go () =
    if Sys.file_exists sock then ()
    else if Unix.gettimeofday () > deadline then die "daemon never bound %s" sock
    else begin
      Unix.sleepf 0.05;
      go ()
    end
  in
  go ()

let connect () =
  match Serve.Client.connect_unix sock with
  | client -> (
    match Serve.Client.greeting ~timeout_ms:5000 client with
    | Ok _ -> client
    | Error e -> die "no greeting: %s" e)
  | exception Unix.Unix_error (e, _, _) ->
    die "connect: %s" (Unix.error_message e)

let recv_or_die client =
  match Serve.Client.recv ~timeout_ms:10_000 client with
  | Ok r -> r
  | Error e -> die "recv: %s" e

let serve_counter client name =
  (match Serve.Client.send client (P.request ~id:(Obs.Json.Int 0) P.Stats) with
  | Ok () -> ()
  | Error e -> die "send stats: %s" e);
  let resp = recv_or_die client in
  match List.assoc_opt "serve" resp.P.body with
  | Some (Obs.Json.Obj fields) -> (
    match List.assoc_opt name fields with
    | Some (Obs.Json.Int n) -> n
    | _ -> 0)
  | _ -> die "stats response lacks serve section"

let fire_burst client =
  let n = 50 in
  for i = 1 to n do
    let req =
      P.request ~id:(Obs.Json.Int i)
        ~session:(Printf.sprintf "s%d" (i mod 16))
        ~query:"Q(x, y) :- x -[(ab)*]-> y, y -[c*]-> x" P.Eval
    in
    match Serve.Client.send client req with
    | Ok () -> ()
    | Error e -> die "send %d: %s" i e
  done;
  let ok = ref 0 and unknown = ref 0 and shed = ref 0 and quota = ref 0 in
  for _ = 1 to n do
    let resp = recv_or_die client in
    (match resp.P.id with
    | Obs.Json.Int i when i >= 1 && i <= n -> ()
    | other -> die "response with bad id %s" (Obs.Json.to_string other));
    match resp.P.status with
    | P.Ok_ -> incr ok
    | P.Unknown -> incr unknown
    | P.Shed -> incr shed
    | P.Quota -> incr quota
    | P.Error ->
      die "unexpected error response: %s"
        (Obs.Json.to_string (P.response_to_json resp))
  done;
  pass "50 requests answered: ok=%d unknown=%d shed=%d quota=%d" !ok !unknown
    !shed !quota;
  if !ok = 0 then die "no request succeeded";
  if !shed = 0 then die "queue bound 1 never shed under a 50-deep burst";
  if !quota = 0 then die "2 req/s quota never rejected across 16 sessions"

(* Sequential requests on fresh sessions: each one is alone in the
   queue, so it must reach a worker.  This pushes the serve.worker
   visit count past the armed chaos rule's 3rd visit no matter how few
   of the burst requests were admitted, so the retry layer provably
   fires before we read serve.retried. *)
let fire_tail client =
  for i = 1 to 5 do
    let req =
      P.request ~id:(Obs.Json.Int (1000 + i))
        ~session:(Printf.sprintf "tail%d" i)
        ~query:"Q(x, y) :- x -[(ab)*]-> y, y -[c*]-> x" P.Eval
    in
    (match Serve.Client.send client req with
    | Ok () -> ()
    | Error e -> die "tail send %d: %s" i e);
    let resp = recv_or_die client in
    if resp.P.id <> Obs.Json.Int (1000 + i) then
      die "tail response %d: wrong id" i;
    match resp.P.status with
    | P.Ok_ | P.Unknown -> ()
    | s -> die "tail response %d: unexpected status %s" i (P.status_to_string s)
  done;
  pass "5 sequential tail requests answered"

let wait_exit pid =
  let deadline = Unix.gettimeofday () +. 15.0 in
  let rec go () =
    match Unix.waitpid [ Unix.WNOHANG ] pid with
    | 0, _ ->
      if Unix.gettimeofday () > deadline then begin
        Unix.kill pid Sys.sigkill;
        die "daemon did not drain within 15s of SIGTERM"
      end;
      Unix.sleepf 0.05;
      go ()
    | _, status -> status
  in
  go ()

let () =
  let exe =
    if Array.length Sys.argv < 2 then die "usage: %s INJCRPQ_EXE" Sys.argv.(0)
    else Sys.argv.(1)
  in
  write_graph ();
  (try Unix.unlink sock with Unix.Unix_error _ -> ());
  (try Unix.unlink log_file with Unix.Unix_error _ -> ());
  let pid = spawn_daemon exe in
  Fun.protect
    ~finally:(fun () ->
      (* belt and braces: never leave the daemon running *)
      try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ())
    (fun () ->
      wait_for_socket ();
      let client = connect () in
      pass "connected and greeted";
      fire_burst client;
      fire_tail client;
      let shed = serve_counter client "serve.shed" in
      let retried = serve_counter client "serve.retried" in
      if shed = 0 then die "stats: serve.shed is 0";
      if retried = 0 then die "stats: serve.retried is 0 (chaos trip not retried)";
      pass "stats: serve.shed=%d serve.retried=%d" shed retried;
      Serve.Client.close client;
      Unix.kill pid Sys.sigterm;
      (match wait_exit pid with
      | Unix.WEXITED 0 -> pass "SIGTERM drained to exit 0"
      | Unix.WEXITED n -> die "daemon exited %d on SIGTERM" n
      | Unix.WSIGNALED n -> die "daemon killed by signal %d" n
      | Unix.WSTOPPED n -> die "daemon stopped by signal %d" n);
      (match
         let ic = open_in log_file in
         let len = in_channel_length ic in
         close_in ic;
         len
       with
      | 0 -> die "--log sink was not flushed on drain"
      | n -> pass "--log sink flushed (%d bytes)" n
      | exception Sys_error e -> die "--log file missing: %s" e);
      print_endline "daemon robustness demo: all checks passed")
