(* Differential suite for the CSP morphism solver.

   [Morphism_ref] is the pre-rewrite naive matcher, preserved under
   test/ as an oracle.  For every random instance the rewritten solver
   must produce the exact same multiset of mappings — answer sets, not
   enumeration order — under every memo/parallelism configuration
   ({cached, uncached} x {1 domain, 2 domains}), across the three
   node-semantics option shapes the evaluator uses (St = plain
   homomorphism, Q_inj = [injective], A_inj = [distinct_pairs]) and
   under arbitrary combinations of [fixed], [distinct_pairs],
   [distinct_edge_groups] and [injective].

   Instances are derived from a single integer seed via lib/workload
   generators, so a shrunk counterexample replays from one number
   (QCHECK_SEED pins the whole run, as everywhere in the suite). *)

let labels = [ "a"; "b" ]

(* ---------------- configurations (as in test_differential) -------- *)

type config = { cname : string; cached : bool; jobs : int }

let configs =
  [
    { cname = "uncached/seq"; cached = false; jobs = 1 };
    { cname = "cached/seq"; cached = true; jobs = 1 };
    { cname = "uncached/par2"; cached = false; jobs = 2 };
    { cname = "cached/par2"; cached = true; jobs = 2 };
  ]

let with_config c f =
  Cache.clear_all ();
  Cache.set_enabled c.cached;
  Parmap.set_default_jobs c.jobs;
  Fun.protect
    ~finally:(fun () ->
      Parmap.set_default_jobs 1;
      Cache.set_enabled true;
      Cache.clear_all ())
    f

(* ---------------- answer-set representation ----------------------- *)

(* Sorted multiset of mappings: catches wrong answers, missing answers
   and duplicated enumeration alike, while staying independent of the
   solvers' enumeration orders. *)
let answer_set run_iter =
  let acc = ref [] in
  run_iter (fun m ->
      acc :=
        String.concat "," (List.map string_of_int (Array.to_list m)) :: !acc);
  List.sort compare !acc

let repr rows = "{" ^ String.concat "; " rows ^ "}"

(* ---------------- instance generation ----------------------------- *)

let gen_seed = QCheck2.Gen.(int_bound 0x3FFFFFF)

let rng_of seed salt = Random.State.make [| 0x1F17; salt; seed |]

let graphs_of rng =
  let np = 1 + Random.State.int rng 4 in
  let nt = 2 + Random.State.int rng 6 in
  let pattern =
    Generate.gnp ~rng ~nodes:np ~labels ~p:(0.2 +. Random.State.float rng 0.4)
  in
  let target =
    Generate.gnp ~rng ~nodes:nt ~labels ~p:(0.15 +. Random.State.float rng 0.3)
  in
  (pattern, target)

(* Mostly-valid fixed pairs, with a chance of an out-of-range index so
   both solvers must agree on validation too. *)
let gen_fixed rng pattern target =
  let np = Graph.nnodes pattern in
  let nt = Graph.nnodes target in
  match Random.State.int rng 4 with
  | 0 | 1 -> []
  | 2 -> [ (Random.State.int rng np, Random.State.int rng nt) ]
  | _ ->
    [
      (Random.State.int rng (np + 2) - 1, Random.State.int rng (nt + 2) - 1);
      (Random.State.int rng np, Random.State.int rng nt);
    ]

let gen_pairs rng pattern =
  let np = Graph.nnodes pattern in
  List.init (Random.State.int rng 3) (fun _ ->
      (Random.State.int rng np, Random.State.int rng np))

let non_contracting_pairs pattern =
  List.filter_map
    (fun (u, _, v) -> if u <> v then Some (u, v) else None)
    (Graph.edges pattern)

(* Either one group of all pattern edges (Q_edge_inj shape) or a
   per-atom-style split into two interleaved groups (A_edge_inj). *)
let gen_groups rng pattern =
  let es = Graph.edges pattern in
  if es = [] then []
  else
    match Random.State.int rng 3 with
    | 0 -> []
    | 1 -> [ es ]
    | _ ->
      let a, b =
        List.partition (fun (u, _, v) -> (u + v) mod 2 = 0) es
      in
      List.filter (fun g -> g <> []) [ a; b ]

(* ---------------- the differential check -------------------------- *)

let check ~pp_instance run_new run_ref =
  let expect = repr (answer_set run_ref) in
  List.for_all
    (fun c ->
      let got = repr (with_config c (fun () -> answer_set run_new)) in
      if String.equal got expect then true
      else
        QCheck2.Test.fail_reportf
          "CSP solver diverges from Morphism_ref under %s on %s@.reference: \
           %s@.got: %s"
          c.cname (pp_instance ()) expect got)
    configs

let pp_of ~what pattern target extra () =
  Printf.sprintf "[%s] pattern %s target %s %s" what
    (Format.asprintf "%a" Graph.pp pattern)
    (Format.asprintf "%a" Graph.pp target)
    extra

let test_st =
  Testutil.qtest ~count:200 "Morphism vs ref: St (plain homomorphism)"
    gen_seed (fun seed ->
      let rng = rng_of seed 1 in
      let pattern, target = graphs_of rng in
      let fixed = gen_fixed rng pattern target in
      check
        ~pp_instance:
          (pp_of ~what:"St" pattern target
             (Printf.sprintf "fixed %d pairs" (List.length fixed)))
        (fun f -> Morphism.iter ~fixed ~pattern ~target f)
        (fun f -> Morphism_ref.iter ~fixed ~pattern ~target f))

let test_qinj =
  Testutil.qtest ~count:200 "Morphism vs ref: Q_inj (injective)" gen_seed
    (fun seed ->
      let rng = rng_of seed 2 in
      let pattern, target = graphs_of rng in
      let fixed = gen_fixed rng pattern target in
      check
        ~pp_instance:
          (pp_of ~what:"Q_inj" pattern target
             (Printf.sprintf "fixed %d pairs" (List.length fixed)))
        (fun f -> Morphism.iter ~fixed ~injective:true ~pattern ~target f)
        (fun f -> Morphism_ref.iter ~fixed ~injective:true ~pattern ~target f))

let test_ainj =
  Testutil.qtest ~count:200 "Morphism vs ref: A_inj (non-contracting)"
    gen_seed (fun seed ->
      let rng = rng_of seed 3 in
      let pattern, target = graphs_of rng in
      let fixed = gen_fixed rng pattern target in
      let distinct_pairs =
        non_contracting_pairs pattern @ gen_pairs rng pattern
      in
      check
        ~pp_instance:
          (pp_of ~what:"A_inj" pattern target
             (Printf.sprintf "fixed %d, distinct %d" (List.length fixed)
                (List.length distinct_pairs)))
        (fun f -> Morphism.iter ~fixed ~distinct_pairs ~pattern ~target f)
        (fun f -> Morphism_ref.iter ~fixed ~distinct_pairs ~pattern ~target f))

let test_combos =
  Testutil.qtest ~count:200 "Morphism vs ref: all option combinations"
    gen_seed (fun seed ->
      let rng = rng_of seed 4 in
      let pattern, target = graphs_of rng in
      let fixed = gen_fixed rng pattern target in
      let distinct_pairs = gen_pairs rng pattern in
      let distinct_edge_groups = gen_groups rng pattern in
      let injective = Random.State.bool rng in
      check
        ~pp_instance:
          (pp_of ~what:"combo" pattern target
             (Printf.sprintf "fixed %d, distinct %d, groups %d, injective %b"
                (List.length fixed)
                (List.length distinct_pairs)
                (List.length distinct_edge_groups)
                injective))
        (fun f ->
          Morphism.iter ~fixed ~distinct_pairs ~distinct_edge_groups ~injective
            ~pattern ~target f)
        (fun f ->
          Morphism_ref.iter ~fixed ~distinct_pairs ~distinct_edge_groups
            ~injective ~pattern ~target f))

(* ---------------- empty-pattern fixed validation ------------------ *)

(* Regression: the pre-rewrite solver validated [fixed] only after the
   [np = 0] early exit, so an out-of-range fixed pair against an empty
   pattern was silently accepted and the empty mapping produced. *)

let t2 = Graph.make ~nnodes:2 [ (0, "a", 1) ]

let count_empty ?fixed () =
  Morphism.count ?fixed ~pattern:Graph.empty ~target:t2 ()

let test_empty_pattern_fixed () =
  Alcotest.(check int)
    "no fixed: one empty mapping" 1
    (count_empty ());
  Alcotest.(check int)
    "out-of-range variable rejected" 0
    (count_empty ~fixed:[ (0, 0) ] ());
  Alcotest.(check int)
    "negative variable rejected" 0
    (count_empty ~fixed:[ (-1, 0) ] ());
  Alcotest.(check int)
    "out-of-range target node rejected" 0
    (count_empty ~fixed:[ (0, 99) ] ());
  (* the preserved reference applies the same fix *)
  Alcotest.(check int)
    "reference agrees" 0
    (Morphism_ref.count ~fixed:[ (0, 0) ] ~pattern:Graph.empty ~target:t2 ())

let test_nonempty_fixed_validation () =
  let p1 = Graph.make ~nnodes:1 [] in
  Alcotest.(check int)
    "out-of-range target rejected (np > 0)" 0
    (Morphism.count ~fixed:[ (0, 5) ] ~pattern:p1 ~target:t2 ());
  Alcotest.(check int)
    "conflicting fixed rejected" 0
    (Morphism.count ~fixed:[ (0, 0); (0, 1) ] ~pattern:p1 ~target:t2 ());
  Alcotest.(check int)
    "valid fixed kept" 1
    (Morphism.count ~fixed:[ (0, 1) ] ~pattern:p1 ~target:t2 ())

let () =
  Alcotest.run "morphism_diff"
    [
      ("semantics", [ test_st; test_qinj; test_ainj; test_combos ]);
      ( "fixed-validation",
        [
          Alcotest.test_case "empty pattern" `Quick test_empty_pattern_fixed;
          Alcotest.test_case "non-empty pattern" `Quick
            test_nonempty_fixed_validation;
        ] );
    ]
