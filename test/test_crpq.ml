let check = Alcotest.check

let test_parse () =
  let q = Crpq.parse "Q(x, y) :- x -[(ab)*]-> y, y -[c*]-> x" in
  check Alcotest.int "two atoms" 2 (Crpq.size q);
  check (Alcotest.list Alcotest.string) "free" [ "x"; "y" ] q.Crpq.free;
  check (Alcotest.list Alcotest.string) "vars" [ "x"; "y" ] (Crpq.vars q);
  let b = Crpq.parse "x -[a]-> y" in
  check Alcotest.bool "boolean" true (Crpq.is_boolean b);
  let t = Crpq.parse "Q() :- true" in
  check Alcotest.int "empty body" 0 (Crpq.size t)

let test_parse_roundtrip () =
  let qs =
    [
      "Q(x, y) :- x -[(ab)*]-> y, y -[c*]-> x";
      "x -[a|b]-> y, y -[(ab)+]-> z, z -[c?]-> x";
      "Q(x, x) :- x -[aa]-> y";
    ]
  in
  List.iter
    (fun s ->
      let q = Crpq.parse s in
      let q' = Crpq.parse (Crpq.to_string q) in
      check Alcotest.bool ("roundtrip " ^ s) true (q = q'))
    qs

let test_classify () =
  check Alcotest.bool "cq" true (Crpq.is_cq (Crpq.parse "x -[a]-> y"));
  check Alcotest.bool "fin" true (Crpq.is_finite (Crpq.parse "x -[ab|c]-> y"));
  check Alcotest.bool "fin not cq" false (Crpq.is_cq (Crpq.parse "x -[ab]-> y"));
  check Alcotest.bool "star not fin" false
    (Crpq.is_finite (Crpq.parse "x -[a*]-> y"));
  let cls_to_string = function
    | Crpq.Class_cq -> "cq"
    | Crpq.Class_fin -> "fin"
    | Crpq.Class_crpq -> "crpq"
  in
  check Alcotest.string "classify crpq" "crpq"
    (cls_to_string (Crpq.classify (Crpq.parse "x -[a]-> y, y -[b*]-> z")))

let test_cq_roundtrip () =
  let cq = Cq.make ~free:[ "x" ] [ Cq.atom "x" "a" "y" ] in
  match Crpq.to_cq (Crpq.of_cq cq) with
  | Some cq' -> check Alcotest.bool "roundtrip" true (Cq.equal cq cq')
  | None -> Alcotest.fail "expected a CQ"

let test_alphabet () =
  check (Alcotest.list Alcotest.string) "alphabet" [ "a"; "b"; "c" ]
    (Crpq.alphabet (Crpq.parse "x -[a|b]-> y, y -[c+]-> z"))

let test_has_empty () =
  check Alcotest.bool "empty lang" true
    (Crpq.has_empty_language (Crpq.parse "x -[!]-> y"));
  check Alcotest.bool "no empty" false
    (Crpq.has_empty_language (Crpq.parse "x -[a]-> y"))

let test_eps_disjuncts () =
  (* x -[a*]-> y: either a+ or collapse x=y *)
  let q = Crpq.parse "Q(x, y) :- x -[a*]-> y" in
  let ds = Crpq.epsilon_free_disjuncts q in
  check Alcotest.int "two disjuncts" 2 (List.length ds);
  List.iter
    (fun d ->
      List.iter
        (fun (a : Crpq.atom) ->
          check Alcotest.bool "no eps" false (Regex.nullable a.Crpq.lang))
        d.Crpq.atoms)
    ds;
  (* the collapsed disjunct has free tuple (y, y) *)
  check Alcotest.bool "collapsed free tuple" true
    (List.exists (fun d -> d.Crpq.free = [ "y"; "y" ]) ds);
  (* pure-epsilon language yields only the collapse *)
  let q2 = Crpq.parse "x -[%]-> y, x -[a]-> z" in
  let ds2 = Crpq.epsilon_free_disjuncts q2 in
  check Alcotest.int "one disjunct" 1 (List.length ds2);
  (* unsatisfiable query yields none *)
  check Alcotest.int "unsat none" 0
    (List.length (Crpq.epsilon_free_disjuncts (Crpq.parse "x -[!]-> y")))

(* the ε-free union must be semantically equivalent *)
let prop_eps_equivalent =
  Testutil.qtest ~count:50 "epsilon disjuncts preserve evaluation"
    QCheck2.Gen.(
      pair (Testutil.gen_crpq ~max_atoms:2 ()) (Testutil.gen_graph ~max_nodes:3 ()))
    (fun (q, g) ->
      List.for_all
        (fun sem ->
          let direct = Eval.eval sem q g in
          let union =
            List.sort_uniq compare
              (List.concat_map (fun d -> Eval.eval sem d g) (Crpq.epsilon_free_disjuncts q))
          in
          direct = union)
        [ Semantics.St; Semantics.A_inj ])

let test_nfa_cache () =
  let r = Regex.parse "(ab)*" in
  let n1 = Crpq.nfa r and n2 = Crpq.nfa r in
  check Alcotest.bool "structurally equal" true (n1 = n2);
  (* physical equality holds exactly when the memo layer is live: it is
     bypassed under INJCRPQ_CACHE=off and while chaos injection is armed *)
  if Cache.is_enabled () && not (Guard.Chaos.active ()) then
    check Alcotest.bool "memoized" true (n1 == n2)

let () =
  Alcotest.run "crpq"
    [
      ( "unit",
        [
          Alcotest.test_case "parse" `Quick test_parse;
          Alcotest.test_case "roundtrip" `Quick test_parse_roundtrip;
          Alcotest.test_case "classify" `Quick test_classify;
          Alcotest.test_case "cq roundtrip" `Quick test_cq_roundtrip;
          Alcotest.test_case "alphabet" `Quick test_alphabet;
          Alcotest.test_case "has_empty" `Quick test_has_empty;
          Alcotest.test_case "eps disjuncts" `Quick test_eps_disjuncts;
          Alcotest.test_case "nfa cache" `Quick test_nfa_cache;
        ] );
      ("properties", [ prop_eps_equivalent ]);
    ]
