(* Trace export surfaces: Chrome trace_event JSON, collapsed stacks and
   span JSONL, pinned under a deterministic fake clock.

   The fake clock advances by exactly 1µs per reading, so span starts
   and durations — and therefore the exported documents — are exact
   values, not ranges.  On top of the unit checks, a qcheck property
   runs randomly-shaped span forests and asserts the invariant every
   trace viewer relies on: each exported span nests inside its parent's
   time range. *)

let check = Alcotest.check

(* one fake-clock tick per reading: a span over k clock readings gets an
   exact, reproducible duration *)
let tick_ns = 1_000L

let with_fake_clock f () =
  Obs.Metrics.set_enabled true;
  Obs.Metrics.reset ();
  Obs.Trace.clear ();
  Obs.Trace.set_enabled true;
  let t = ref 0L in
  Obs.Clock.set_source ~name:"fake" (fun () ->
      t := Int64.add !t tick_ns;
      !t);
  Fun.protect
    ~finally:(fun () ->
      Obs.Clock.reset_source ();
      Obs.Metrics.set_enabled false;
      Obs.Trace.set_enabled false;
      Obs.Metrics.reset ();
      Obs.Trace.clear ())
    f

let field name j =
  match Obs.Json.member name j with
  | Some v -> v
  | None -> Alcotest.failf "missing field %s" name

let int_field name j =
  match Obs.Json.to_int (field name j) with
  | Some n -> n
  | None -> Alcotest.failf "field %s is not an int" name

(* ------------------------------------------------------------------ *)
(* Chrome trace_event                                                  *)
(* ------------------------------------------------------------------ *)

(* Two clock readings per span (entry and exit); children occupy the
   readings between their parent's.  With 1µs ticks:
     outer opens at t=1µs and closes at t=6µs (dur 5µs),
     inner1 spans [2,3] (dur 1), inner2 spans [4,5] (dur 1). *)
let test_chrome_document () =
  let c = Obs.Metrics.counter "test.export.counter" in
  Obs.Trace.span "outer" (fun () ->
      ignore (Obs.Trace.span "inner1" (fun () -> ()));
      Obs.Metrics.add c 3;
      ignore (Obs.Trace.span "inner2" (fun () -> ())));
  let doc = Obs.Trace.to_chrome (Obs.Trace.finished ()) in
  check Alcotest.string "displayTimeUnit" "ms"
    (match field "displayTimeUnit" doc with
    | Obs.Json.String s -> s
    | _ -> Alcotest.fail "displayTimeUnit not a string");
  let events =
    match field "traceEvents" doc with
    | Obs.Json.List l -> l
    | _ -> Alcotest.fail "traceEvents not a list"
  in
  check Alcotest.int "one event per span" 3 (List.length events);
  let by_name name =
    match
      List.find_opt
        (fun e -> field "name" e = Obs.Json.String name)
        events
    with
    | Some e -> e
    | None -> Alcotest.failf "event %s missing" name
  in
  let ts e = int_field "ts" e and dur e = int_field "dur" e in
  let outer = by_name "outer" in
  check Alcotest.int "outer ts (µs)" 1 (ts outer);
  check Alcotest.int "outer dur (µs)" 5 (dur outer);
  check Alcotest.int "inner1 ts" 2 (ts (by_name "inner1"));
  check Alcotest.int "inner1 dur" 1 (dur (by_name "inner1"));
  check Alcotest.int "inner2 ts" 4 (ts (by_name "inner2"));
  List.iter
    (fun e ->
      check Alcotest.string "ph" "X"
        (match field "ph" e with
        | Obs.Json.String s -> s
        | _ -> Alcotest.fail "ph not a string");
      check Alcotest.string "cat" "injcrpq"
        (match field "cat" e with
        | Obs.Json.String s -> s
        | _ -> Alcotest.fail "cat not a string");
      check Alcotest.int "pid" 1 (int_field "pid" e))
    events;
  (* the counter delta rides along in the enclosing span's args and
     stays out of spans that saw no change *)
  check Alcotest.int "outer args carry the delta" 3
    (int_field "test.export.counter" (field "args" outer));
  check Alcotest.bool "inner1 args empty" true
    (field "args" (by_name "inner1") = Obs.Json.Obj []);
  (* the whole document reparses *)
  match Obs.Json.parse (Obs.Json.to_string doc) with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "chrome document does not reparse: %s" e

let test_chrome_errored_span () =
  (match Obs.Trace.span "boom" (fun () -> failwith "boom") with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "exception swallowed");
  let doc = Obs.Trace.to_chrome (Obs.Trace.finished ()) in
  match field "traceEvents" doc with
  | Obs.Json.List [ e ] ->
    check Alcotest.bool "errored flag in args" true
      (field "errored" (field "args" e) = Obs.Json.Bool true)
  | _ -> Alcotest.fail "expected exactly one event"

(* ------------------------------------------------------------------ *)
(* Collapsed stacks                                                    *)
(* ------------------------------------------------------------------ *)

let test_collapsed_stacks () =
  Obs.Profile.arm ~sample_every:1 ();
  Obs.Profile.reset ();
  Fun.protect
    ~finally:(fun () ->
      Obs.Profile.disarm ();
      Obs.Profile.reset ())
    (fun () ->
      Obs.Trace.span "containment.decide" (fun () ->
          Obs.Trace.span "dfa.product" (fun () ->
              for _ = 1 to 4 do
                Obs.Profile.hit "expansion.partitions"
              done);
          Obs.Profile.hit "morphism.extend");
      check Alcotest.string "collapsed lines"
        "containment.decide;dfa.product;expansion.partitions 4\n\
         containment.decide;morphism.extend 1\n"
        (Obs.Profile.to_collapsed ());
      check
        Alcotest.(list (pair string int))
        "site totals, heaviest first"
        [ ("expansion.partitions", 4); ("morphism.extend", 1) ]
        (Obs.Profile.site_totals ()))

(* ------------------------------------------------------------------ *)
(* Nesting property                                                    *)
(* ------------------------------------------------------------------ *)

(* a forest shape: each node is just a list of child shapes *)
type shape = Node of shape list

let rec shape_size (Node kids) =
  1 + List.fold_left (fun n k -> n + shape_size k) 0 kids

let gen_forest =
  let open QCheck2.Gen in
  let rec gen_node depth =
    if depth = 0 then return (Node [])
    else
      let* n = int_bound 3 in
      let* kids = list_repeat n (gen_node (depth - 1)) in
      return (Node kids)
  in
  let* n = int_range 1 5 in
  list_repeat n (gen_node 3)

(* run the forest as real spans under the fake clock, export JSONL,
   reparse, and check every child's [start, start+dur] interval lies
   inside its parent's *)
let prop_exported_spans_nest forest =
  Obs.Metrics.set_enabled true;
  Obs.Metrics.reset ();
  Obs.Trace.clear ();
  Obs.Trace.set_enabled true;
  let t = ref 0L in
  Obs.Clock.set_source ~name:"fake" (fun () ->
      t := Int64.add !t tick_ns;
      !t);
  Fun.protect
    ~finally:(fun () ->
      Obs.Clock.reset_source ();
      Obs.Metrics.set_enabled false;
      Obs.Trace.set_enabled false;
      Obs.Trace.clear ())
    (fun () ->
      let i = ref 0 in
      let rec run (Node kids) =
        incr i;
        Obs.Trace.span (Printf.sprintf "n%d" !i) (fun () -> List.iter run kids)
      in
      List.iter run forest;
      let total = List.fold_left (fun n s -> n + shape_size s) 0 forest in
      let lines =
        String.split_on_char '\n'
          (String.trim (Obs.Trace.to_jsonl (Obs.Trace.finished ())))
      in
      if List.length lines <> total then
        QCheck2.Test.fail_reportf "expected %d JSONL lines, got %d" total
          (List.length lines);
      let spans =
        List.map
          (fun l ->
            match Obs.Json.parse l with
            | Ok j ->
              ( int_field "id" j,
                ( (match field "parent" j with
                  | Obs.Json.Null -> None
                  | v -> Obs.Json.to_int v),
                  int_field "start_ns" j,
                  int_field "duration_ns" j ) )
            | Error e -> QCheck2.Test.fail_reportf "bad JSONL line %s: %s" l e)
          lines
      in
      List.iter
        (fun (id, (parent, start, dur)) ->
          if dur < 0 then
            QCheck2.Test.fail_reportf "span %d has negative duration" id;
          match parent with
          | None -> ()
          | Some p -> begin
            match List.assoc_opt p spans with
            | None -> QCheck2.Test.fail_reportf "span %d has unknown parent %d" id p
            | Some (_, pstart, pdur) ->
              if not (pstart <= start && start + dur <= pstart + pdur) then
                QCheck2.Test.fail_reportf
                  "span %d [%d, %d] escapes parent %d [%d, %d]" id start
                  (start + dur) p pstart (pstart + pdur)
          end)
        spans;
      (* the Chrome export covers exactly the same spans *)
      (match Obs.Trace.to_chrome (Obs.Trace.finished ()) with
      | Obs.Json.Obj kvs -> begin
        match List.assoc_opt "traceEvents" kvs with
        | Some (Obs.Json.List evs) ->
          if List.length evs <> total then
            QCheck2.Test.fail_reportf "chrome export has %d events, want %d"
              (List.length evs) total
        | _ -> QCheck2.Test.fail_reportf "traceEvents missing"
      end
      | _ -> QCheck2.Test.fail_reportf "chrome document not an object");
      true)

let () =
  Alcotest.run "obs_export"
    [
      ( "chrome",
        [
          Alcotest.test_case "document structure and timestamps" `Quick
            (with_fake_clock test_chrome_document);
          Alcotest.test_case "errored span flagged" `Quick
            (with_fake_clock test_chrome_errored_span);
        ] );
      ( "collapsed",
        [
          Alcotest.test_case "stacks and site totals" `Quick
            (with_fake_clock test_collapsed_stacks);
        ] );
      ( "properties",
        [
          Testutil.qtest ~count:100 "exported spans nest in their parent"
            gen_forest prop_exported_spans_nest;
        ] );
    ]
