(* Shared brute-force oracles for the path-search and bulk-engine tests.

   [brute_exists] is the budgeted depth-first path enumerator: it walks
   every path prefix up to a length bound, so it can check
   path-predicate semantics (simple paths, trails) that depend on the
   actual path, but the prefix count is exponential and the budget makes
   it abstain ([None]) on unlucky draws.

   For plain standard-semantics reachability that enumeration revisits
   each (node, state) frontier once per distinct path reaching it — the
   duplication that used to live in test_path_search.ml.  [reach_set]
   dedupes on product pairs instead: a polynomial, budget-free oracle
   that never abstains, built directly on string-labeled [Graph.out] and
   the raw NFA delta so it shares nothing with the interned
   [Path_search] product or the [Bulk_rpq] bitset kernels it checks. *)

exception Out_of_budget

let brute_exists ?(budget = 200_000) g nfa ~src ~dst ~pred ~max_len =
  let steps = ref 0 in
  let rec go p len =
    incr steps;
    if !steps > budget then raise Out_of_budget;
    (Path.tgt p = dst && pred p && Nfa.accepts nfa (Path.label p))
    || len < max_len
       && List.exists
            (fun (a, v) -> go (Path.append p a v) (len + 1))
            (Graph.out g (Path.tgt p))
  in
  match go (Path.empty src) 0 with
  | b -> Some b
  | exception Out_of_budget -> None

(* Nodes reachable from [src] along an accepted path (the empty path
   included, matching the engines: src is reachable iff some initial
   state is final). *)
let reach_set g nfa src =
  let seen = Hashtbl.create 16 in
  let rec visit u q =
    if not (Hashtbl.mem seen (u, q)) then begin
      Hashtbl.replace seen (u, q) ();
      List.iter
        (fun (a, q') ->
          List.iter
            (fun (b, v) -> if String.equal a b then visit v q')
            (Graph.out g u))
        nfa.Nfa.delta.(q)
    end
  in
  List.iter (fun q0 -> visit src q0) nfa.Nfa.initials;
  Hashtbl.fold
    (fun (u, q) () acc -> if nfa.Nfa.finals.(q) then u :: acc else acc)
    seen []
  |> List.sort_uniq compare

let reach_exists g nfa ~src ~dst = List.mem dst (reach_set g nfa src)

(* Same shape as [Path_search.reach_relation]: (max n 1)² matrix. *)
let reach_relation g nfa =
  let n = Graph.nnodes g in
  let rel = Array.make_matrix (max n 1) (max n 1) false in
  Graph.iter_nodes g (fun u ->
      List.iter (fun v -> rel.(u).(v) <- true) (reach_set g nfa u));
  rel
