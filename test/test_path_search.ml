(* Brute-force oracles live in [Path_oracle] (shared with the bulk
   engine's differential battery): a budgeted depth-first path
   enumerator for the path-predicate semantics, and a deduped
   product-pair oracle for standard reachability that never abstains. *)

let brute_exists = Path_oracle.brute_exists

let gen_case =
  QCheck2.Gen.(
    let* g = Testutil.gen_graph ~max_nodes:4 () in
    let* r = Testutil.gen_regex ~max_depth:2 () in
    let* src = int_bound (Graph.nnodes g - 1) in
    let* dst = int_bound (Graph.nnodes g - 1) in
    return (g, r, src, dst))

let prop_reachable =
  Testutil.qtest ~count:150
    "standard reachability agrees with the deduped product oracle" gen_case
    (fun (g, r, src, dst) ->
      let nfa = Nfa.of_regex r in
      Path_search.exists_path g nfa ~src ~dst
      = Path_oracle.reach_exists g nfa ~src ~dst)

let prop_simple =
  Testutil.qtest ~count:150 "simple-path search agrees with brute force" gen_case
    (fun (g, r, src, dst) ->
      let nfa = Nfa.of_regex r in
      let direct = Path_search.exists_simple g nfa ~src ~dst in
      let pred p = if src = dst then Path.is_simple_cycle p else Path.is_simple p in
      match brute_exists g nfa ~src ~dst ~pred ~max_len:(Graph.nnodes g) with
      | None -> true
      | Some brute -> direct = brute)

let prop_trail =
  Testutil.qtest ~count:100 "trail search agrees with brute force" gen_case
    (fun (g, r, src, dst) ->
      let nfa = Nfa.of_regex r in
      let direct = Path_search.exists_trail g nfa ~src ~dst in
      match
        brute_exists g nfa ~src ~dst ~pred:Path.is_trail
          ~max_len:(Graph.nedges g)
      with
      | None -> true
      | Some brute -> direct = brute)

let prop_find_simple_valid =
  Testutil.qtest ~count:150 "found simple paths are valid witnesses" gen_case
    (fun (g, r, src, dst) ->
      let nfa = Nfa.of_regex r in
      match Path_search.find_simple g nfa ~src ~dst with
      | None -> true
      | Some p ->
        Path.valid_in g p && Path.src p = src && Path.tgt p = dst
        && Nfa.accepts nfa (Path.label p)
        && (if src = dst then Path.is_simple_cycle p else Path.is_simple p))

let prop_find_path_valid =
  Testutil.qtest ~count:150 "found standard paths are valid witnesses" gen_case
    (fun (g, r, src, dst) ->
      let nfa = Nfa.of_regex r in
      match Path_search.find_path g nfa ~src ~dst with
      | None -> not (Path_search.exists_path g nfa ~src ~dst)
      | Some p ->
        Path.valid_in g p && Path.src p = src && Path.tgt p = dst
        && Nfa.accepts nfa (Path.label p))

let prop_relations_agree =
  Testutil.qtest ~count:60 "relation matrices agree with point queries"
    QCheck2.Gen.(
      pair (Testutil.gen_graph ~max_nodes:4 ()) (Testutil.gen_regex ~max_depth:2 ()))
    (fun (g, r) ->
      let nfa = Nfa.of_regex r in
      let reach = Path_search.reach_relation g nfa in
      let simple = Path_search.simple_reach_relation g nfa in
      List.for_all
        (fun u ->
          List.for_all
            (fun v ->
              reach.(u).(v) = Path_search.exists_path g nfa ~src:u ~dst:v
              && simple.(u).(v) = Path_search.exists_simple g nfa ~src:u ~dst:v)
            (Graph.nodes g))
        (Graph.nodes g))

(* deterministic scenarios *)

let test_lollipop () =
  (* the only a^5-path from the handle start revisits the cycle *)
  let g = Generate.lollipop ~handle:2 ~cycle_len:3 ~label:"a" in
  let nfa_exact n = Nfa.of_regex (Regex.word (List.init n (fun _ -> "a"))) in
  (* standard: arbitrarily long words fine (cycle length 3) *)
  Alcotest.check Alcotest.bool "standard a^9 exists" true
    (Path_search.exists_path g (nfa_exact 9) ~src:0 ~dst:3);
  (* simple: longest simple path has length nnodes-1 = 4 *)
  Alcotest.check Alcotest.bool "no simple a^9" false
    (Path_search.exists_simple g (nfa_exact 9) ~src:0 ~dst:3);
  Alcotest.check Alcotest.bool "simple a^3 exists" true
    (Path_search.exists_simple g (nfa_exact 3) ~src:0 ~dst:3)

let test_simple_cycle_semantics () =
  let g = Generate.cycle (Word.of_string "ab") in
  let nfa = Nfa.of_regex (Regex.parse "ab") in
  Alcotest.check Alcotest.bool "cycle at 0" true
    (Path_search.exists_simple g nfa ~src:0 ~dst:0);
  let eps_nfa = Nfa.of_regex (Regex.parse "%|ab") in
  Alcotest.check Alcotest.bool "empty path counts with eps" true
    (Path_search.exists_simple g eps_nfa ~src:0 ~dst:0)

let test_avoid_internal () =
  (* two internally-disjoint ab-paths 0->3; block one internal node *)
  let g =
    Graph.make ~nnodes:4 [ (0, "a", 1); (1, "b", 3); (0, "a", 2); (2, "b", 3) ]
  in
  let nfa = Nfa.of_regex (Regex.parse "ab") in
  Alcotest.check Alcotest.bool "exists initially" true
    (Path_search.exists_simple g nfa ~src:0 ~dst:3);
  Alcotest.check Alcotest.bool "exists avoiding node 1" true
    (Path_search.exists_simple ~avoid_internal:(fun v -> v = 1) g nfa ~src:0 ~dst:3);
  Alcotest.check Alcotest.bool "blocked avoiding both" false
    (Path_search.exists_simple
       ~avoid_internal:(fun v -> v = 1 || v = 2)
       g nfa ~src:0 ~dst:3)

let test_trail_vs_simple () =
  (* figure-eight: trail exists but simple path does not *)
  let g =
    Graph.make ~nnodes:4
      [ (0, "a", 1); (1, "a", 2); (2, "a", 1); (1, "a", 3) ]
  in
  let n4 = Nfa.of_regex (Regex.parse "aaaa") in
  Alcotest.check Alcotest.bool "trail aaaa" true
    (Path_search.exists_trail g n4 ~src:0 ~dst:3);
  Alcotest.check Alcotest.bool "no simple aaaa" false
    (Path_search.exists_simple g n4 ~src:0 ~dst:3)

let test_all_simple () =
  let g =
    Graph.make ~nnodes:4 [ (0, "a", 1); (1, "b", 3); (0, "a", 2); (2, "b", 3) ]
  in
  let nfa = Nfa.of_regex (Regex.parse "ab") in
  Alcotest.check Alcotest.int "two witnesses" 2
    (List.length (Path_search.all_simple g nfa ~src:0 ~dst:3))

let () =
  Alcotest.run "path_search"
    [
      ( "unit",
        [
          Alcotest.test_case "lollipop" `Quick test_lollipop;
          Alcotest.test_case "simple cycles" `Quick test_simple_cycle_semantics;
          Alcotest.test_case "avoid_internal" `Quick test_avoid_internal;
          Alcotest.test_case "trail vs simple" `Quick test_trail_vs_simple;
          Alcotest.test_case "all_simple" `Quick test_all_simple;
        ] );
      ( "properties",
        [
          prop_reachable;
          prop_simple;
          prop_trail;
          prop_find_simple_valid;
          prop_find_path_valid;
          prop_relations_agree;
        ] );
    ]
