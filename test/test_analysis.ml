(* The static-analysis subsystem: every diagnostic code fires on a
   minimal witness and stays silent on its repaired twin; the JSON
   rendering round-trips; redundancy suggestions are sound. *)

let check = Alcotest.check

let codes ds = List.sort_uniq String.compare (List.map (fun d -> d.Diagnostic.code) ds)

let has_code c ds = List.mem c (codes ds)

(* full lint with the cheap passes only, so witnesses stay minimal *)
let lint ?(sem = Semantics.St) ?graph q =
  Analysis.lint ~sem ~redundancy:false ?graph q

let test_e001_empty_language () =
  let witness = Crpq.parse "Q(x, y) :- x -[!]-> y" in
  let repaired = Crpq.parse "Q(x, y) :- x -[a]-> y" in
  check Alcotest.bool "witness fires" true (has_code "E001" (lint witness));
  check Alcotest.bool "witness is an error" true (Diagnostic.has_errors (lint witness));
  check Alcotest.bool "repaired silent" false (has_code "E001" (lint repaired));
  check Alcotest.bool "repaired has no errors" false
    (Diagnostic.has_errors (lint repaired))

let test_w002_eps_only () =
  let witness = Crpq.parse "Q(x) :- x -[%]-> y, y -[a]-> x" in
  let repaired = Crpq.parse "Q(x) :- x -[a?]-> y, y -[a]-> x" in
  check Alcotest.bool "witness fires" true (has_code "W002" (lint witness));
  (* a nullable but not ε-only language is not flagged *)
  check Alcotest.bool "repaired silent" false (has_code "W002" (lint repaired))

let test_w003_duplicate () =
  let witness = Crpq.parse "x -[ab]-> y, x -[ab]-> y" in
  let repaired = Crpq.parse "x -[ab]-> y" in
  let severity_of sem =
    match
      List.find_opt (fun d -> d.Diagnostic.code = "W003") (lint ~sem witness)
    with
    | Some d -> Some d.Diagnostic.severity
    | None -> None
  in
  (* idempotent under st and a-inj: a warning *)
  check Alcotest.bool "st warning" true (severity_of Semantics.St = Some Diagnostic.Warning);
  check Alcotest.bool "a-inj warning" true
    (severity_of Semantics.A_inj = Some Diagnostic.Warning);
  (* load-bearing under q-inj (two internally disjoint paths): info *)
  check Alcotest.bool "q-inj info" true
    (severity_of Semantics.Q_inj = Some Diagnostic.Info);
  check Alcotest.bool "repaired silent" false (has_code "W003" (lint repaired))

let test_w004_disconnected () =
  let witness = Crpq.parse "Q(x) :- x -[a]-> y, z -[b]-> w" in
  let repaired = Crpq.parse "Q(x) :- x -[a]-> y, y -[b]-> w" in
  let flagged =
    List.filter_map
      (fun d ->
        if d.Diagnostic.code = "W004" then
          match d.Diagnostic.location with
          | Diagnostic.Var v -> Some v
          | _ -> None
        else None)
      (lint witness)
  in
  check
    Alcotest.(list string)
    "flags the stray component" [ "w"; "z" ]
    (List.sort String.compare flagged);
  check Alcotest.bool "repaired silent" false (has_code "W004" (lint repaired));
  (* Boolean queries have no anchor: the pass is skipped *)
  check Alcotest.bool "boolean skipped" false
    (has_code "W004" (lint (Crpq.parse "x -[a]-> y, z -[b]-> w")))

let test_w005_unused_free () =
  let witness = Crpq.parse "Q(x, u) :- x -[a]-> y" in
  let repaired = Crpq.parse "Q(x, y) :- x -[a]-> y" in
  check Alcotest.bool "witness fires" true (has_code "W005" (lint witness));
  check Alcotest.bool "repaired silent" false (has_code "W005" (lint repaired))

let test_w104_empty_domain () =
  (* target: a -> b path only; no node has an outgoing c-edge *)
  let g = Graph.make ~nnodes:3 [ (0, "a", 1); (1, "b", 2) ] in
  let witness = Crpq.parse "x -[c]-> y" in
  let repaired = Crpq.parse "x -[a]-> y" in
  check Alcotest.bool "witness fires" true
    (has_code "W104" (lint ~graph:g witness));
  check Alcotest.bool "repaired silent" false
    (has_code "W104" (lint ~graph:g repaired));
  (* no graph supplied: the pass does not run *)
  check Alcotest.bool "no graph, no pass" false
    (has_code "W104" (lint witness));
  (* the constraint is per-variable across atoms: both a- and b-paths
     must leave x, which no node of g offers *)
  let joined = Crpq.parse "x -[a]-> y, x -[b]-> z" in
  check Alcotest.bool "cross-atom intersection fires" true
    (has_code "W104" (lint ~graph:g joined));
  let satisfiable = Crpq.parse "x -[a]-> y, y -[b]-> z" in
  check Alcotest.bool "satisfiable chain silent" false
    (has_code "W104" (lint ~graph:g satisfiable));
  (* empty graph: every constrained variable has an empty domain *)
  check Alcotest.bool "empty graph fires" true
    (has_code "W104" (lint ~graph:Graph.empty repaired));
  (* soundness on the witness: genuinely no answers *)
  check Alcotest.(list (list int)) "flagged query has no answers" []
    (Eval.eval Semantics.St (Crpq.parse "Q(x) :- x -[c]-> y") g)

let test_i006_redundant () =
  let witness = Crpq.parse "Q(x, z) :- x -[a]-> y, y -[b]-> z, x -[ab]-> z" in
  let ds = Lint_query.redundant_atoms ~sem:Semantics.St witness in
  check Alcotest.bool "st flags a redundancy" true (has_code "I006" ds);
  (* under q-inj the chain pins a shared middle node: nothing removable *)
  check
    Alcotest.(list string)
    "q-inj flags nothing" []
    (codes (Lint_query.redundant_atoms ~sem:Semantics.Q_inj witness));
  (* the minimized twin is silent *)
  let repaired = Minimize.drop_redundant_atoms Semantics.St witness in
  check
    Alcotest.(list string)
    "repaired silent" []
    (codes (Lint_query.redundant_atoms ~sem:Semantics.St repaired))

(* states: 0 init, 1 final, 2 reachable-but-dead, 3 unreachable *)
let dirty_nfa : Nfa.t =
  {
    Nfa.nstates = 4;
    initials = [ 0 ];
    finals = [| false; true; false; false |];
    delta = [| [ ("a", 1); ("b", 2) ]; []; []; [ ("a", 1) ] |];
  }

let test_nfa_hygiene () =
  let r = Lint_nfa.analyze dirty_nfa in
  check Alcotest.(list int) "unreachable" [ 3 ] r.Lint_nfa.unreachable;
  check Alcotest.(list int) "dead" [ 2 ] r.Lint_nfa.dead;
  check Alcotest.int "unproductive" 1 (List.length r.Lint_nfa.unproductive);
  let ds = Lint_nfa.diagnostics dirty_nfa in
  List.iter
    (fun c -> check Alcotest.bool c true (has_code c ds))
    [ "W101"; "W102"; "W103" ];
  (* the repaired twin is the trimmed automaton *)
  let trimmed = Nfa.trim dirty_nfa in
  check Alcotest.bool "trimmed clean" true (Lint_nfa.is_clean (Lint_nfa.analyze trimmed));
  check Alcotest.(list string) "trimmed silent" [] (codes (Lint_nfa.diagnostics trimmed));
  (* query-level summary: ! compiles to a dead-state NFA *)
  check Alcotest.bool "atom summary fires" true
    (has_code "W102" (Lint_nfa.atom_diagnostics (Crpq.parse "x -[!]-> y")));
  check Alcotest.(list string) "clean atom silent" []
    (codes (Lint_nfa.atom_diagnostics (Crpq.parse "x -[ab*]-> y")))

let test_validators () =
  (* E201 alphabet overlap *)
  let overlap = Validate.disjoint_alphabets ~what:"test sets" [ "a"; "b" ] [ "b"; "c" ] in
  check Alcotest.bool "E201 fires" true (has_code "E201" overlap);
  check Alcotest.(list string) "disjoint silent" []
    (codes (Validate.disjoint_alphabets ~what:"test sets" [ "a" ] [ "b" ]));
  (* E202 disconnected gadget *)
  let disconnected = Crpq.parse "x -[a]-> y, z -[a]-> w" in
  check Alcotest.bool "E202 fires" true
    (has_code "E202" (Validate.connected ~what:"gadget" disconnected));
  check Alcotest.(list string) "connected silent" []
    (codes (Validate.connected ~what:"gadget" (Crpq.parse "x -[a]-> y, y -[a]-> z")));
  (* E203 arity mismatch *)
  check Alcotest.bool "E203 fires" true
    (has_code "E203"
       (Validate.same_arity (Crpq.parse "Q(x) :- x -[a]-> y") (Crpq.parse "x -[a]-> y")));
  (* E204 trivial encoding *)
  let ds =
    Validate.containment_encoding ~q1:(Crpq.parse "x -[!]-> y")
      ~q2:(Crpq.parse "x -[a]-> y") ()
  in
  check Alcotest.bool "E204 fires" true (has_code "E204" ds);
  (* check: raises on errors, passes on clean *)
  check Alcotest.bool "check passes" true (Validate.check ~name:"t" []);
  (match Validate.check ~name:"t" ds with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "Validate.check should raise on errors");
  (* the real encodings validate cleanly (their encode asserts this too) *)
  let pcp = Pcp_to_ainj.encode Pcp.solvable_small in
  check Alcotest.bool "pcp encoding ok" true
    (not
       (Diagnostic.has_errors
          (Validate.containment_encoding
             ~connected_queries:[ ("Q1", pcp.Pcp_to_ainj.q1); ("Q2", pcp.Pcp_to_ainj.q2) ]
             ~q1:pcp.Pcp_to_ainj.q1 ~q2:pcp.Pcp_to_ainj.q2 ())))

let test_json_roundtrip () =
  let queries =
    [
      "Q(x, y) :- x -[!]-> y, x -[ab]-> y, x -[ab]-> y, z -[c]-> w";
      "Q(x, u) :- x -[%]-> y";
      "x -[a\"b\\c]-> y";
      (* quote/backslash-free but multi-byte: ε in the W002 message *)
      "Q(x) :- x -[%]-> y";
    ]
  in
  List.iter
    (fun s ->
      let ds =
        match Crpq.parse_result s with
        | Ok q -> lint q @ Lint_nfa.diagnostics dirty_nfa
        | Error _ ->
          (* a parse failure still exercises the renderer via a synthetic
             diagnostic with hostile characters *)
          [
            Diagnostic.make ~code:"E999" ~severity:Diagnostic.Error
              ~location:(Diagnostic.Var "x\"\\\n\t")
              "message with \"quotes\", back\\slashes,\nnewlines and \x01control";
          ]
      in
      match Diagnostic.list_of_json (Diagnostic.list_to_json ds) with
      | Ok ds' ->
        check Alcotest.bool (Printf.sprintf "round-trip %S" s) true
          (List.for_all2 Diagnostic.equal ds ds')
      | Error msg -> Alcotest.fail (Printf.sprintf "parse back %S: %s" s msg))
    queries;
  (* single-object round-trip and whitespace tolerance *)
  let d =
    Diagnostic.make ~code:"E001" ~severity:Diagnostic.Error
      ~location:(Diagnostic.Atom 2) "msg"
  in
  check Alcotest.bool "of_json inverts to_json" true
    (Diagnostic.of_json (Diagnostic.to_json d) = Ok d);
  check Alcotest.bool "whitespace tolerated" true
    (Diagnostic.list_of_json
       (" [ {\"code\" : \"E001\", \"severity\":\"error\", \"location\":\"atom:2\", \
         \"message\":\"msg\"} ] ")
    = Ok [ d ])

let test_parse_result () =
  (match Crpq.parse_result "x -[a->" with
  | Error e ->
    check Alcotest.bool "reason mentions bracket" true
      (String.length e.Crpq.reason > 0);
    check Alcotest.bool "has position" true (e.Crpq.position <> None)
  | Ok _ -> Alcotest.fail "should not parse");
  (match Crpq.parse_result "Q(x) :- x -[a**|]-> y" with
  | Error e ->
    check Alcotest.bool "regex error surfaces fragment" true
      (e.Crpq.fragment <> "")
  | Ok _ -> ());
  (match Crpq.parse_result "Q(x, y) :- x -[(ab)*]-> y" with
  | Ok q -> check Alcotest.int "good query parses" 1 (Crpq.size q)
  | Error e -> Alcotest.fail (Crpq.string_of_parse_error e));
  match Crpq.parse "x -[a->" with
  | exception Crpq.Parse_error _ -> ()
  | _ -> Alcotest.fail "parse should raise Parse_error"

let test_workload_precheck () =
  check Alcotest.bool "rejects empty-language" false
    (Suite.precheck (Crpq.parse "x -[!]-> y"));
  check Alcotest.bool "rejects eps-only" false (Suite.precheck (Crpq.parse "x -[%]-> y"));
  check Alcotest.bool "accepts normal" true (Suite.precheck (Crpq.parse "x -[a+]-> y"));
  (* generated suites contain no degenerate queries *)
  List.iter
    (fun (_, _, _, _, pairs) ->
      List.iter
        (fun (q1, q2) ->
          check Alcotest.bool "fig1 q1 ok" true (Suite.precheck q1);
          check Alcotest.bool "fig1 q2 ok" true (Suite.precheck q2))
        pairs)
    (Suite.fig1_cells ~seed:42 ~per_cell:2)

let test_ucrpq_lint () =
  let u =
    Ucrpq.make [ Crpq.parse "Q(x) :- x -[a]-> y"; Crpq.parse "Q(x) :- x -[!]-> y" ]
  in
  let ds = Analysis.lint_ucrpq ~redundancy:false u in
  check Alcotest.bool "bad disjunct flagged" true (has_code "E001" ds);
  check Alcotest.bool "prefixed with disjunct index" true
    (List.exists
       (fun d ->
         d.Diagnostic.code = "E001"
         && String.length d.Diagnostic.message >= 11
         && String.sub d.Diagnostic.message 0 11 = "disjunct 1:")
       ds)

(* An E001-empty left atom now short-circuits the containment
   dispatcher before the (possibly exponential) disjunct computation. *)
let test_containment_fastpath () =
  let q1 = Crpq.parse "Q(x, y) :- x -[!]-> y, x -[(ab)*]-> y" in
  let q2 = Crpq.parse "Q(x, y) :- x -[c]-> y" in
  check Alcotest.bool "trivially contained" true
    (Containment.strategy_name Semantics.A_inj q1 q2
    = "trivial (unsatisfiable left query)");
  check Alcotest.bool "verdict contained" true
    (Containment.verdict_bool (Containment.decide Semantics.A_inj q1 q2) = Some true)

(* Soundness of the redundancy suggestions: dropping any single
   I006-flagged atom preserves Eval.eval answers, per node semantics. *)
let rec remove_nth i = function
  | [] -> []
  | x :: rest -> if i = 0 then rest else x :: remove_nth (i - 1) rest

let prop_redundant_drop_preserves_answers =
  Testutil.qtest ~count:20 "dropping an I006-flagged atom preserves answers"
    QCheck2.Gen.(
      pair
        (Testutil.gen_crpq ~cls:Crpq.Class_fin ~max_atoms:3 ~max_vars:2 ~arity:1 ())
        (Testutil.gen_graph ~max_nodes:3 ()))
    (fun (q, g) ->
      List.for_all
        (fun sem ->
          let flagged =
            List.filter_map
              (fun d ->
                match d.Diagnostic.location with
                | Diagnostic.Atom i when d.Diagnostic.code = "I006" -> Some i
                | _ -> None)
              (Lint_query.redundant_atoms ~sem q)
          in
          List.for_all
            (fun i ->
              let q' = Crpq.make ~free:q.Crpq.free (remove_nth i q.Crpq.atoms) in
              Eval.eval sem q g = Eval.eval sem q' g)
            flagged)
        Semantics.node_semantics)

let () =
  Alcotest.run "analysis"
    [
      ( "unit",
        [
          Alcotest.test_case "E001 empty language" `Quick test_e001_empty_language;
          Alcotest.test_case "W002 eps-only atom" `Quick test_w002_eps_only;
          Alcotest.test_case "W003 duplicate atom" `Quick test_w003_duplicate;
          Alcotest.test_case "W004 disconnected variable" `Quick test_w004_disconnected;
          Alcotest.test_case "W005 unused free variable" `Quick test_w005_unused_free;
          Alcotest.test_case "W104 empty candidate domain" `Quick
            test_w104_empty_domain;
          Alcotest.test_case "I006 redundant atom" `Quick test_i006_redundant;
          Alcotest.test_case "NFA hygiene" `Quick test_nfa_hygiene;
          Alcotest.test_case "reduction validators" `Quick test_validators;
          Alcotest.test_case "JSON round-trip" `Quick test_json_roundtrip;
          Alcotest.test_case "structured parse errors" `Quick test_parse_result;
          Alcotest.test_case "workload precheck" `Quick test_workload_precheck;
          Alcotest.test_case "UCRPQ lint" `Quick test_ucrpq_lint;
          Alcotest.test_case "containment fast-path" `Quick test_containment_fastpath;
        ] );
      ("properties", [ prop_redundant_drop_preserves_answers ]);
    ]
