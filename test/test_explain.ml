(* Explain reports: section building from a metrics delta, cache
   hit-ratio aggregation, profiler and event rows, and the two
   renderers (aligned text, schema-tagged JSON). *)

let check = Alcotest.check

let with_obs f () =
  Obs.Metrics.set_enabled true;
  Obs.Metrics.reset ();
  Fun.protect
    ~finally:(fun () ->
      Obs.Metrics.set_enabled false;
      Obs.Metrics.reset ())
    f

let section_named name (r : Obs.Explain.report) =
  List.find_opt (fun (s : Obs.Explain.section) -> s.Obs.Explain.name = name)
    r.Obs.Explain.sections

let row_labels (s : Obs.Explain.section) =
  List.map (fun (row : Obs.Explain.row) -> row.Obs.Explain.label)
    s.Obs.Explain.rows

(* ------------------------------------------------------------------ *)

let test_sections_from_prefixes () =
  let c1 = Obs.Metrics.counter "containment.expansions_enumerated" in
  let c2 = Obs.Metrics.counter "morphism.candidates_tried" in
  let c3 = Obs.Metrics.counter "analysis.rewrites_applied" in
  let zero = Obs.Metrics.counter "eval.zero_stays_out" in
  Obs.Metrics.add c1 12;
  Obs.Metrics.add c2 4;
  Obs.Metrics.add c3 1;
  ignore zero;
  let r =
    Obs.Explain.of_metrics ~title:"contain Q1 Q2" (Obs.Metrics.snapshot ())
  in
  check Alcotest.string "title" "contain Q1 Q2" r.Obs.Explain.title;
  (match section_named "search" r with
  | Some s ->
    check Alcotest.(list string) "search rows"
      [ "containment.expansions_enumerated" ] (row_labels s)
  | None -> Alcotest.fail "search section missing");
  (match section_named "morphism csp" r with
  | Some s ->
    check Alcotest.(list string) "csp rows" [ "morphism.candidates_tried" ]
      (row_labels s)
  | None -> Alcotest.fail "morphism csp section missing");
  check Alcotest.bool "analysis section present" true
    (section_named "analysis" r <> None);
  (* zero metrics and empty sections are dropped *)
  check Alcotest.bool "caches section absent" true (section_named "caches" r = None)

let test_cache_hit_ratio () =
  let h = Obs.Metrics.counter "cache.morphism.hits" in
  let m = Obs.Metrics.counter "cache.morphism.misses" in
  let e = Obs.Metrics.counter "cache.morphism.evictions" in
  let h2 = Obs.Metrics.counter "cache.expansion.hits" in
  Obs.Metrics.add h 9;
  Obs.Metrics.add m 3;
  Obs.Metrics.add e 2;
  Obs.Metrics.add h2 5;
  let r = Obs.Explain.of_metrics ~title:"t" (Obs.Metrics.snapshot ()) in
  match section_named "caches" r with
  | None -> Alcotest.fail "caches section missing"
  | Some s -> begin
    check Alcotest.(list string) "one row per table, sorted"
      [ "expansion"; "morphism" ] (row_labels s);
    let morphism =
      List.find
        (fun (row : Obs.Explain.row) -> row.Obs.Explain.label = "morphism")
        s.Obs.Explain.rows
    in
    match morphism.Obs.Explain.value with
    | Obs.Json.Obj kvs ->
      check Alcotest.bool "hits" true (List.assoc "hits" kvs = Obs.Json.Int 9);
      check Alcotest.bool "misses" true (List.assoc "misses" kvs = Obs.Json.Int 3);
      check Alcotest.bool "evictions" true
        (List.assoc "evictions" kvs = Obs.Json.Int 2);
      (match List.assoc "hit_ratio" kvs with
      | Obs.Json.Float f -> check (Alcotest.float 1e-9) "ratio" 0.75 f
      | _ -> Alcotest.fail "hit_ratio not a float")
    | _ -> Alcotest.fail "cache row not an object"
  end

let test_profile_and_event_rows () =
  let c = Obs.Metrics.counter "guard.checkpoints" in
  Obs.Metrics.add c 6;
  let events =
    [
      { Obs.Events.ts_ns = 1L; level = Obs.Events.Warn; name = "guard.trip";
        fields = [] };
      { Obs.Events.ts_ns = 2L; level = Obs.Events.Debug; name = "cache.eviction";
        fields = [] };
      { Obs.Events.ts_ns = 3L; level = Obs.Events.Debug; name = "cache.eviction";
        fields = [] };
    ]
  in
  let r =
    Obs.Explain.of_metrics
      ~profile:[ ("expansion.partitions", 40); ("morphism.extend", 2) ]
      ~events ~title:"t" (Obs.Metrics.snapshot ())
  in
  (match section_named "guard" r with
  | Some s ->
    check Alcotest.(list string) "guard rows: metrics then site weights"
      [ "guard.checkpoints"; "site expansion.partitions"; "site morphism.extend" ]
      (row_labels s)
  | None -> Alcotest.fail "guard section missing");
  match section_named "events" r with
  | Some s ->
    check Alcotest.(list string) "event tallies, sorted"
      [ "cache.eviction"; "guard.trip" ] (row_labels s);
    check Alcotest.bool "tally counts" true
      (List.map (fun (row : Obs.Explain.row) -> row.Obs.Explain.value)
         s.Obs.Explain.rows
      = [ Obs.Json.Int 2; Obs.Json.Int 1 ])
  | None -> Alcotest.fail "events section missing"

let test_add_section () =
  let r = Obs.Explain.of_metrics ~title:"t" [] in
  check Alcotest.int "no sections from an empty delta" 0
    (List.length r.Obs.Explain.sections);
  let r =
    Obs.Explain.add_section r
      (Obs.Explain.section "verdict"
         [ Obs.Explain.row "answer" (Obs.Json.String "contained") ])
  in
  check Alcotest.int "caller section appended" 1
    (List.length r.Obs.Explain.sections);
  let r = Obs.Explain.add_section r (Obs.Explain.section "empty" []) in
  check Alcotest.int "empty section dropped" 1
    (List.length r.Obs.Explain.sections)

let test_to_text () =
  let c = Obs.Metrics.counter "containment.decisions" in
  Obs.Metrics.incr c;
  let r = Obs.Explain.of_metrics ~title:"demo" (Obs.Metrics.snapshot ()) in
  let text = Obs.Explain.to_text r in
  check Alcotest.bool "header" true
    (String.length text >= 13 && String.sub text 0 13 = "explain: demo");
  let contains needle hay =
    let nl = String.length needle and hl = String.length hay in
    let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
    go 0
  in
  check Alcotest.bool "section header rendered" true (contains "\nsearch\n" text);
  check Alcotest.bool "row rendered" true
    (contains "containment.decisions" text && contains " 1\n" text)

let test_to_json_schema () =
  let c = Obs.Metrics.counter "containment.decisions" in
  Obs.Metrics.incr c;
  let r = Obs.Explain.of_metrics ~title:"demo" (Obs.Metrics.snapshot ()) in
  let j = Obs.Explain.to_json r in
  check Alcotest.bool "schema tag" true
    (Obs.Json.member "schema" j = Some (Obs.Json.String "injcrpq-explain/1"));
  check Alcotest.bool "title" true
    (Obs.Json.member "title" j = Some (Obs.Json.String "demo"));
  (match Obs.Json.member "sections" j with
  | Some (Obs.Json.List (_ :: _)) -> ()
  | _ -> Alcotest.fail "sections list missing or empty");
  (* and the document survives a print/parse round-trip *)
  match Obs.Json.parse (Obs.Json.to_string j) with
  | Ok j' -> check Alcotest.bool "round-trips" true (j = j')
  | Error e -> Alcotest.failf "reparse failed: %s" e

(* a histogram renders as a compact object, not raw buckets *)
let test_histogram_row () =
  let h = Obs.Metrics.histogram "analysis.certificate_ns" in
  List.iter (Obs.Metrics.observe h) [ 100; 300 ];
  let r = Obs.Explain.of_metrics ~title:"t" (Obs.Metrics.snapshot ()) in
  match section_named "analysis" r with
  | None -> Alcotest.fail "analysis section missing"
  | Some s -> begin
    match (List.hd s.Obs.Explain.rows).Obs.Explain.value with
    | Obs.Json.Obj kvs ->
      check Alcotest.bool "count" true (List.assoc "count" kvs = Obs.Json.Int 2);
      check Alcotest.bool "sum" true (List.assoc "sum" kvs = Obs.Json.Int 400);
      check Alcotest.bool "avg" true (List.assoc "avg" kvs = Obs.Json.Int 200)
    | _ -> Alcotest.fail "histogram row not an object"
  end

let () =
  Alcotest.run "explain"
    [
      ( "building",
        [
          Alcotest.test_case "sections from prefixes" `Quick
            (with_obs test_sections_from_prefixes);
          Alcotest.test_case "cache hit ratios" `Quick
            (with_obs test_cache_hit_ratio);
          Alcotest.test_case "profile and event rows" `Quick
            (with_obs test_profile_and_event_rows);
          Alcotest.test_case "add_section" `Quick (with_obs test_add_section);
          Alcotest.test_case "histogram row" `Quick (with_obs test_histogram_row);
        ] );
      ( "rendering",
        [
          Alcotest.test_case "text" `Quick (with_obs test_to_text);
          Alcotest.test_case "json schema" `Quick (with_obs test_to_json_schema);
        ] );
    ]
