(* The injcrpq-serve/1 wire protocol: encode/decode round-trips as
   qcheck properties over random requests and responses, and the
   malformed-frame discipline of a live in-process server — a bad frame
   answers a structured E903/E905 error and the connection stays
   usable.

   Chaos is disarmed for the socket tests so this binary is
   deterministic under the CI chaos leg. *)

module P = Serve.Protocol

let check = Alcotest.check

(* ------------------------- generators ----------------------------- *)

let gen_op =
  QCheck2.Gen.oneofl [ P.Eval; P.Contain; P.Lint; P.Optimize; P.Stats; P.Ping ]

let gen_id =
  QCheck2.Gen.oneof
    [
      QCheck2.Gen.return Obs.Json.Null;
      QCheck2.Gen.map (fun n -> Obs.Json.Int n) QCheck2.Gen.int;
      QCheck2.Gen.map
        (fun s -> Obs.Json.String s)
        (QCheck2.Gen.(small_string ~gen:printable));
    ]

let gen_sem = QCheck2.Gen.oneofl Semantics.all

let gen_opt_string =
  QCheck2.Gen.opt (QCheck2.Gen.(small_string ~gen:printable))

let gen_request =
  let open QCheck2.Gen in
  let* op = gen_op in
  let* id = gen_id in
  let* session = small_string ~gen:printable in
  let* sem = gen_sem in
  let* query = gen_opt_string in
  let* lhs = gen_opt_string in
  let* rhs = gen_opt_string in
  let* graph = gen_opt_string in
  let* tuple = opt (small_list small_nat) in
  let* bound = small_nat in
  let* timeout_ms = opt small_nat in
  let* max_steps = opt small_nat in
  return
    (P.request ~id ~session ~sem ?query ?lhs ?rhs ?graph ?tuple ~bound
       ?timeout_ms ?max_steps op)

let gen_status = QCheck2.Gen.oneofl [ P.Ok_; P.Unknown; P.Shed; P.Quota; P.Error ]

(* body keys must avoid the reserved envelope keys and repeat-free *)
let gen_body =
  let open QCheck2.Gen in
  let gen_value =
    oneof
      [
        return Obs.Json.Null;
        map (fun b -> Obs.Json.Bool b) bool;
        map (fun n -> Obs.Json.Int n) int;
        map (fun s -> Obs.Json.String s) (small_string ~gen:printable);
        map
          (fun l -> Obs.Json.List (List.map (fun n -> Obs.Json.Int n) l))
          (small_list small_nat);
      ]
  in
  let* pairs =
    small_list (pair (small_string ~gen:printable) gen_value)
  in
  let seen = Hashtbl.create 8 in
  return
    (List.filter_map
       (fun (k, v) ->
         let k = "k_" ^ k in
         if Hashtbl.mem seen k then None
         else begin
           Hashtbl.add seen k ();
           Some (k, v)
         end)
       pairs)

let gen_response =
  let open QCheck2.Gen in
  let* status = gen_status in
  let* id = gen_id in
  let* op = opt gen_op in
  let* body = gen_body in
  return (P.response ~id ?op ~body status)

(* ------------------------- round-trips ---------------------------- *)

let prop_request_roundtrip =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:500 ~name:"request round-trip" gen_request
       (fun req ->
         let line = Obs.Json.to_string (P.request_to_json req) in
         match P.parse_request line with
         | Ok req' -> req' = req
         | Error e -> QCheck2.Test.fail_reportf "no parse: %s (%s)" e line))

let prop_response_roundtrip =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:500 ~name:"response round-trip" gen_response
       (fun resp ->
         let line = Obs.Json.to_string (P.response_to_json resp) in
         match P.parse_response line with
         | Ok resp' -> resp' = resp
         | Error e -> QCheck2.Test.fail_reportf "no parse: %s (%s)" e line))

let prop_request_rejects_junk =
  (* decoding never raises, whatever JSON comes in *)
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:200 ~name:"decoder never raises"
       (QCheck2.Gen.(small_string ~gen:printable)) (fun s ->
         (match P.parse_request s with Ok _ | Error _ -> ());
         (match P.parse_response s with Ok _ | Error _ -> ());
         true))

let test_request_decode_errors () =
  let bad line want =
    match P.parse_request line with
    | Ok _ -> Alcotest.failf "%s must not parse" line
    | Error msg ->
      let contains hay needle =
        let nh = String.length hay and nn = String.length needle in
        let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
        nn = 0 || go 0
      in
      if not (contains msg want) then
        Alcotest.failf "%S: error %S lacks %S" line msg want
  in
  bad "[1,2]" "must be a JSON object";
  bad "{}" "schema";
  bad {|{"schema":"injcrpq-serve/0","op":"ping"}|} "schema";
  bad {|{"schema":"injcrpq-serve/1"}|} "op";
  bad {|{"schema":"injcrpq-serve/1","op":"frobnicate"}|} "unknown op";
  bad {|{"schema":"injcrpq-serve/1","op":"eval","sem":"nope"}|}
    "unknown semantics";
  bad {|{"schema":"injcrpq-serve/1","op":"eval","tuple":[1,"x"]}|} "tuple";
  bad {|{"schema":"injcrpq-serve/1","op":"eval","bound":-1}|} "bound"

(* --------------------- live-socket discipline --------------------- *)

(* an in-process daemon over a socketpair: one worker is plenty *)
let with_server ?quota f =
  Guard.Chaos.disarm ();
  let cfg =
    Serve.Server.config ~workers:1 ~queue_bound:8 ~timeout_ms:5000 ?quota
      ~graphs:[ ("default", Paper_examples.example_21_g') ]
      ()
  in
  let srv = Serve.Server.create cfg in
  let sfd, cfd = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let server = Domain.spawn (fun () -> Serve.Server.run srv ~adopt:[ sfd ] ()) in
  let client = Serve.Client.of_fd cfd in
  Fun.protect
    ~finally:(fun () ->
      Serve.Server.shutdown srv;
      Domain.join server;
      Serve.Client.close client)
    (fun () ->
      (match Serve.Client.greeting ~timeout_ms:5000 client with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "no greeting: %s" e);
      f client)

let recv_ok client =
  match Serve.Client.recv ~timeout_ms:5000 client with
  | Ok r -> r
  | Error e -> Alcotest.failf "recv: %s" e

let send_ok client req =
  match Serve.Client.send client req with
  | Ok () -> ()
  | Error e -> Alcotest.failf "send: %s" e

let error_code resp =
  match List.assoc_opt "error" resp.P.body with
  | Some err -> (
    match Obs.Json.member "code" err with
    | Some (Obs.Json.String c) -> c
    | _ -> "?")
  | None -> "?"

let ping_pongs client =
  send_ok client (P.request ~id:(Obs.Json.Int 999) P.Ping);
  let resp = recv_ok client in
  check Alcotest.bool "pong" true
    (resp.P.status = P.Ok_ && resp.P.id = Obs.Json.Int 999)

let test_malformed_frames_keep_connection () =
  with_server (fun client ->
      let try_bad line want_code =
        (match Serve.Client.send_raw client line with
        | Ok () -> ()
        | Error e -> Alcotest.failf "send_raw: %s" e);
        let resp = recv_ok client in
        check Alcotest.bool
          (Printf.sprintf "%S -> error" line)
          true
          (resp.P.status = P.Error);
        check Alcotest.string
          (Printf.sprintf "%S -> %s" line want_code)
          want_code (error_code resp);
        (* the connection survives: a well-formed request still answers *)
        ping_pongs client
      in
      try_bad "this is not json" "E903";
      try_bad "[1,2,3]" "E903";
      try_bad {|{"schema":"injcrpq-serve/1"}|} "E903";
      try_bad {|{"schema":"injcrpq-serve/1","op":"warp"}|} "E903";
      try_bad {|{"no":"schema"}|} "E903")

let test_oversized_frame () =
  with_server (fun client ->
      let big = String.make (P.max_frame_bytes + 10) 'x' in
      (* the server may shed the connection mid-upload (no newline seen
         past the frame cap), so the tail of the write is allowed to
         fail; the structured E905 response must still have been sent *)
      (match Serve.Client.send_raw client big with Ok () | Error _ -> ());
      let resp = recv_ok client in
      check Alcotest.bool "oversized -> error" true (resp.P.status = P.Error);
      check Alcotest.string "E905" "E905" (error_code resp))

let test_bad_requests_answer_e904 () =
  with_server (fun client ->
      (* well-formed frame, invalid content: unparsable query *)
      send_ok client
        (P.request ~id:(Obs.Json.Int 1) ~query:"this is not a crpq" P.Eval);
      let resp = recv_ok client in
      check Alcotest.bool "bad query -> error" true (resp.P.status = P.Error);
      check Alcotest.string "E904" "E904" (error_code resp);
      (* unknown graph *)
      send_ok client
        (P.request ~id:(Obs.Json.Int 2) ~query:"Q(x, y) :- x -[a]-> y"
           ~graph:"missing" P.Eval);
      let resp = recv_ok client in
      check Alcotest.string "unknown graph E904" "E904" (error_code resp);
      (* missing lhs/rhs for contain *)
      send_ok client (P.request ~id:(Obs.Json.Int 3) P.Contain);
      let resp = recv_ok client in
      check Alcotest.string "missing lhs E904" "E904" (error_code resp);
      ping_pongs client)

let test_pipelined_ids_echo () =
  with_server (fun client ->
      let n = 20 in
      for i = 1 to n do
        send_ok client
          (P.request ~id:(Obs.Json.Int i)
             ~query:"Q(x, y) :- x -[(ab)*]-> y, y -[c*]-> x" P.Eval)
      done;
      (* a 20-deep pipeline overflows the 8-slot queue, so sheds
         (answered inline by the accept loop) interleave with worker
         responses — but every id is answered exactly once, and the
         queued responses come back in submission order *)
      let answered = Hashtbl.create n in
      let last_ok = ref 0 in
      for _ = 1 to n do
        let resp = recv_ok client in
        let i =
          match resp.P.id with
          | Obs.Json.Int i -> i
          | other -> Alcotest.failf "bad id %s" (Obs.Json.to_string other)
        in
        if Hashtbl.mem answered i then Alcotest.failf "id %d answered twice" i;
        Hashtbl.add answered i ();
        match resp.P.status with
        | P.Ok_ ->
          if i <= !last_ok then
            Alcotest.failf "ok responses out of order: %d after %d" i !last_ok;
          last_ok := i
        | P.Shed -> ()
        | s ->
          Alcotest.failf "response %d: unexpected status %s" i
            (P.status_to_string s)
      done;
      check Alcotest.int "every id answered" n (Hashtbl.length answered);
      check Alcotest.bool "at least one queued response" true (!last_ok >= 1))

let test_stats_request () =
  with_server (fun client ->
      ping_pongs client;
      send_ok client (P.request ~id:(Obs.Json.Int 7) P.Stats);
      let resp = recv_ok client in
      check Alcotest.bool "stats ok" true (resp.P.status = P.Ok_);
      (match List.assoc_opt "serve" resp.P.body with
      | Some (Obs.Json.Obj fields) ->
        check Alcotest.bool "serve.accepted present" true
          (List.mem_assoc "serve.accepted" fields)
      | _ -> Alcotest.fail "stats lacks serve section");
      match List.assoc_opt "workers" resp.P.body with
      | Some (Obs.Json.Int 1) -> ()
      | _ -> Alcotest.fail "stats lacks workers")

let () =
  Alcotest.run "serve-protocol"
    [
      ( "roundtrip",
        [
          prop_request_roundtrip;
          prop_response_roundtrip;
          prop_request_rejects_junk;
          Alcotest.test_case "decode errors" `Quick test_request_decode_errors;
        ] );
      ( "socket",
        [
          Alcotest.test_case "malformed frames keep the connection" `Quick
            test_malformed_frames_keep_connection;
          Alcotest.test_case "oversized frame" `Quick test_oversized_frame;
          Alcotest.test_case "bad requests answer E904" `Quick
            test_bad_requests_answer_e904;
          Alcotest.test_case "pipelined ids echo" `Quick test_pipelined_ids_echo;
          Alcotest.test_case "stats request" `Quick test_stats_request;
        ] );
    ]
