(* The structured event log: level gating, ring-buffer retention, the
   JSONL sink, and serialisation. *)

let check = Alcotest.check

let default_capacity = 1024

let with_events f () =
  Obs.Events.set_enabled true;
  Obs.Events.clear ();
  Obs.Events.set_level Obs.Events.Debug;
  Fun.protect
    ~finally:(fun () ->
      Obs.Events.set_sink None;
      Obs.Events.set_enabled false;
      Obs.Events.set_level Obs.Events.Debug;
      Obs.Events.set_capacity default_capacity)
    f

let names () = List.map (fun e -> e.Obs.Events.name) (Obs.Events.recent ())

(* ------------------------------------------------------------------ *)

let test_disabled_no_op () =
  Obs.Events.set_enabled false;
  Obs.Events.emit Obs.Events.Error "should.vanish" [];
  check Alcotest.bool "disabled" false (Obs.Events.enabled ());
  check Alcotest.int "nothing accepted" 0 (Obs.Events.emitted ());
  check Alcotest.(list string) "nothing retained" [] (names ())

let test_level_threshold () =
  Obs.Events.set_level Obs.Events.Warn;
  Obs.Events.emit Obs.Events.Debug "too.low" [];
  Obs.Events.emit Obs.Events.Info "still.too.low" [];
  Obs.Events.emit Obs.Events.Warn "kept.warn" [];
  Obs.Events.emit Obs.Events.Error "kept.error" [];
  check Alcotest.(list string) "only warn and above" [ "kept.warn"; "kept.error" ]
    (names ());
  check Alcotest.int "emitted counts accepted only" 2 (Obs.Events.emitted ());
  Obs.Events.set_level Obs.Events.Debug;
  Obs.Events.emit Obs.Events.Debug "now.kept" [];
  check Alcotest.int "threshold restored" 3 (Obs.Events.emitted ())

let test_ring_wrap () =
  Obs.Events.set_capacity 4;
  for i = 1 to 10 do
    Obs.Events.emit Obs.Events.Info (Printf.sprintf "e%d" i) []
  done;
  check Alcotest.int "all accepted" 10 (Obs.Events.emitted ());
  check Alcotest.(list string) "ring keeps the most recent, oldest first"
    [ "e7"; "e8"; "e9"; "e10" ] (names ())

let test_level_strings () =
  List.iter
    (fun (l, s) ->
      check Alcotest.string "to_string" s (Obs.Events.level_to_string l);
      check Alcotest.bool "of_string round-trip" true
        (Obs.Events.level_of_string s = Some l))
    [
      (Obs.Events.Debug, "debug");
      (Obs.Events.Info, "info");
      (Obs.Events.Warn, "warn");
      (Obs.Events.Error, "error");
    ];
  check Alcotest.bool "unknown rejected" true
    (Obs.Events.level_of_string "loud" = None)

let test_capacity_validation () =
  check Alcotest.bool "non-positive capacity rejected" true
    (match Obs.Events.set_capacity 0 with
    | exception Invalid_argument _ -> true
    | () -> false)

let test_event_json () =
  Obs.Events.emit Obs.Events.Warn "guard.trip"
    [ ("site", Obs.Json.String "expansion.partitions"); ("fuel", Obs.Json.Int 0) ];
  match Obs.Events.recent () with
  | [ e ] -> begin
    let j = Obs.Events.event_to_json e in
    match
      ( Obs.Json.member "level" j,
        Obs.Json.member "event" j,
        Option.bind (Obs.Json.member "fields" j) (Obs.Json.member "site") )
    with
    | Some (Obs.Json.String "warn"), Some (Obs.Json.String "guard.trip"),
      Some (Obs.Json.String "expansion.partitions") ->
      (* and it reparses from its own printed form *)
      (match Obs.Json.parse (Obs.Json.to_string j) with
      | Ok _ -> ()
      | Error err -> Alcotest.failf "event does not reparse: %s" err)
    | _ -> Alcotest.failf "unexpected event JSON: %s" (Obs.Json.to_string j)
  end
  | l -> Alcotest.failf "expected one event, got %d" (List.length l)

(* every accepted event reaches the sink immediately, one JSON line
   each, and removing the sink stops the flow *)
let test_sink_jsonl () =
  let file = Filename.temp_file "injcrpq_events" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove file)
    (fun () ->
      let oc = open_out file in
      Obs.Events.set_sink (Some oc);
      Obs.Events.emit Obs.Events.Info "cache.eviction"
        [ ("table", Obs.Json.String "morphism"); ("evicted", Obs.Json.Int 12) ];
      Obs.Events.emit Obs.Events.Debug "containment.expansion_refuted" [];
      Obs.Events.set_sink None;
      close_out oc;
      Obs.Events.emit Obs.Events.Info "after.sink.removed" [];
      let ic = open_in file in
      let n = in_channel_length ic in
      let contents = really_input_string ic n in
      close_in ic;
      let lines = String.split_on_char '\n' (String.trim contents) in
      check Alcotest.int "one line per sunk event" 2 (List.length lines);
      let parsed_names =
        List.map
          (fun l ->
            match Obs.Json.parse l with
            | Ok j -> begin
              match Obs.Json.member "event" j with
              | Some (Obs.Json.String s) -> s
              | _ -> Alcotest.failf "line without event name: %s" l
            end
            | Error e -> Alcotest.failf "bad JSONL line %s: %s" l e)
          lines
      in
      check Alcotest.(list string) "sink order"
        [ "cache.eviction"; "containment.expansion_refuted" ]
        parsed_names)

(* instrumented hot paths emit only when enabled: a guard trip produces
   a guard.trip event with the site and reason kind *)
let test_guard_trip_event () =
  Guard.Chaos.disarm ();
  let g = Guard.create ~fuel:1 () in
  (match
     Guard.with_guard g (fun () ->
         Guard.checkpoint "test.events.site";
         Guard.checkpoint "test.events.site")
   with
  | () -> Alcotest.fail "fuel 1 must trip on the second checkpoint"
  | exception Guard.Trip _ -> ());
  match
    List.filter (fun e -> e.Obs.Events.name = "guard.trip") (Obs.Events.recent ())
  with
  | [ e ] ->
    check Alcotest.bool "site recorded" true
      (List.assoc_opt "site" e.Obs.Events.fields
      = Some (Obs.Json.String "test.events.site"));
    check Alcotest.bool "level is warn" true (e.Obs.Events.level = Obs.Events.Warn)
  | l -> Alcotest.failf "expected one guard.trip event, got %d" (List.length l)

let () =
  Alcotest.run "events"
    [
      ( "gating",
        [
          Alcotest.test_case "disabled is a no-op" `Quick
            (with_events test_disabled_no_op);
          Alcotest.test_case "level threshold" `Quick
            (with_events test_level_threshold);
          Alcotest.test_case "level strings" `Quick
            (with_events test_level_strings);
        ] );
      ( "ring",
        [
          Alcotest.test_case "wrap keeps the most recent" `Quick
            (with_events test_ring_wrap);
          Alcotest.test_case "capacity validation" `Quick
            (with_events test_capacity_validation);
        ] );
      ( "serialisation",
        [
          Alcotest.test_case "event JSON" `Quick (with_events test_event_json);
          Alcotest.test_case "JSONL sink" `Quick (with_events test_sink_jsonl);
        ] );
      ( "integration",
        [
          Alcotest.test_case "guard trip emits" `Quick
            (with_events test_guard_trip_event);
        ] );
    ]
