(* CSR adjacency conformance: the per-label compressed-sparse-row
   arrays must be exactly the interned successor/predecessor indexes of
   the graph — same runs, same order, edge counts summing to
   [Graph.nedges] per direction — and the memoized [of_graph] must hand
   back one shared structure per graph uid. *)

let gen_graph = Testutil.gen_graph ~max_nodes:8 ()

let check_direction g dir csr neighbours =
  let n = Graph.nnodes g in
  List.for_all
    (fun ai ->
      let c = csr.(ai) in
      Alcotest.(check int) "nnodes" n (Csr.nnodes c) |> ignore;
      List.for_all
        (fun u ->
          let want = Array.to_list (neighbours g u ai) in
          let via_iter =
            let acc = ref [] in
            Csr.iter_succ c u (fun v -> acc := v :: !acc);
            List.rev !acc
          in
          let via_fold =
            List.rev (Csr.fold_succ c u (fun acc v -> v :: acc) [])
          in
          let via_run =
            List.init (Csr.degree c u) (fun k ->
                (Csr.cols c).(Csr.start c u + k))
          in
          if via_iter = want && via_fold = want && via_run = want then true
          else
            QCheck2.Test.fail_reportf
              "csr %s label %d node %d: want [%s] iter [%s] run [%s] on %s" dir
              ai u
              (String.concat ";" (List.map string_of_int want))
              (String.concat ";" (List.map string_of_int via_iter))
              (String.concat ";" (List.map string_of_int via_run))
              (Testutil.print_graph g))
        (Graph.nodes g))
    (List.init (Graph.nlabels g) Fun.id)

let test_csr_matches_graph =
  Testutil.qtest ~count:300 "CSR runs = Graph succ_ids/pred_ids" gen_graph
    (fun g ->
      let csr = Csr.build g in
      check_direction g "fwd" csr.Csr.fwd (fun g u ai -> Graph.succ_ids g u ai)
      && check_direction g "rev" csr.Csr.rev (fun g u ai ->
             Graph.pred_ids g u ai))

let test_nnz_sums =
  Testutil.qtest ~count:300 "CSR nnz sums to nedges in both directions"
    gen_graph (fun g ->
      let csr = Csr.build g in
      let total dir =
        Array.fold_left (fun acc c -> acc + Csr.nnz c) 0 dir
      in
      total csr.Csr.fwd = Graph.nedges g && total csr.Csr.rev = Graph.nedges g)

let test_memoized_identity () =
  let g = Graph.make ~nnodes:4 [ (0, "a", 1); (1, "b", 2); (2, "a", 3) ] in
  let c1 = Csr.of_graph g and c2 = Csr.of_graph g in
  Alcotest.(check bool) "same graph, same memoized structure" true (c1 == c2);
  let g' = Graph.make ~nnodes:4 [ (0, "a", 1); (1, "b", 2); (2, "a", 3) ] in
  let c3 = Csr.of_graph g' in
  Alcotest.(check bool) "distinct uid, distinct structure" true (c1 != c3);
  (* degrees on the fixture: node 1 has one a-successor? no — "a" is
     label id 0, "b" id 1 (sorted interning) *)
  Alcotest.(check int) "deg fwd a of 0" 1 (Csr.degree c1.Csr.fwd.(0) 0);
  Alcotest.(check int) "deg fwd b of 1" 1 (Csr.degree c1.Csr.fwd.(1) 1);
  Alcotest.(check int) "deg rev a of 3" 1 (Csr.degree c1.Csr.rev.(0) 3);
  Alcotest.(check int) "deg fwd a of 1" 0 (Csr.degree c1.Csr.fwd.(0) 1)

let test_empty_and_edgeless () =
  let empty = Csr.build Graph.empty in
  Alcotest.(check int) "empty graph: no label structures" 0
    (Array.length empty.Csr.fwd);
  let edgeless = Graph.make ~nnodes:5 [] in
  let c = Csr.build edgeless in
  Alcotest.(check int) "edgeless: no labels interned" 0
    (Array.length c.Csr.fwd)

let () =
  Alcotest.run "csr"
    [
      ("conformance", [ test_csr_matches_graph; test_nnz_sums ]);
      ( "seams",
        [
          Alcotest.test_case "memoized identity" `Quick test_memoized_identity;
          Alcotest.test_case "empty graphs" `Quick test_empty_and_edgeless;
        ] );
    ]
