(* Kernel-layer properties for the bulk engine: Bitmatrix row ops
   against a naive bool-array model, closure against iterated BFS, the
   Kronecker-style product against Path_search.product_bfs, and chaos at
   the bulk.sweep site (structured trips, never a wrong relation). *)

let gen_dims =
  (* Column counts straddle the 63-bit word boundaries on purpose. *)
  QCheck2.Gen.(pair (int_range 1 6) (int_range 1 140))

let gen_bits rows cols =
  QCheck2.Gen.(
    list_size (int_bound (2 * rows * min cols 40))
      (pair (int_bound (rows - 1)) (int_bound (cols - 1))))

let gen_matrix =
  QCheck2.Gen.(
    let* rows, cols = gen_dims in
    let* bits = gen_bits rows cols in
    return (rows, cols, bits))

let build rows cols bits =
  let m = Bitmatrix.create ~rows ~cols in
  let model = Array.make_matrix rows cols false in
  List.iter
    (fun (i, j) ->
      Bitmatrix.set m i j;
      model.(i).(j) <- true)
    bits;
  (m, model)

let model_row_pop model i = Array.fold_left (fun n b -> if b then n + 1 else n) 0 model.(i)

let agree m model =
  let rows = Bitmatrix.rows m and cols = Bitmatrix.cols m in
  let ok = ref true in
  for i = 0 to rows - 1 do
    for j = 0 to cols - 1 do
      if Bitmatrix.get m i j <> model.(i).(j) then ok := false
    done
  done;
  !ok

let prop_row_ops =
  Testutil.qtest ~count:200 "row ops agree with the bool-array model" gen_matrix
    (fun (rows, cols, bits) ->
      let m, model = build rows cols bits in
      (* point queries, popcounts *)
      agree m model
      && Bitmatrix.popcount m
         = List.fold_left (fun n i -> n + model_row_pop model i) 0
             (List.init rows Fun.id)
      && List.for_all
           (fun i ->
             Bitmatrix.row_popcount m i = model_row_pop model i
             && Bitmatrix.is_row_empty m i = (model_row_pop model i = 0))
           (List.init rows Fun.id)
      (* iter_row: ascending set columns *)
      && List.for_all
           (fun i ->
             let got = ref [] in
             Bitmatrix.iter_row m i (fun j -> got := j :: !got);
             let got = List.rev !got in
             let want =
               List.filter (fun j -> model.(i).(j)) (List.init cols Fun.id)
             in
             got = want)
           (List.init rows Fun.id)
      (* clear undoes set *)
      && (match bits with
         | [] -> true
         | (i, j) :: _ ->
           Bitmatrix.clear m i j;
           let r = not (Bitmatrix.get m i j) in
           Bitmatrix.set m i j;
           r)
      (* bool-matrix round trip and structural equality *)
      && Bitmatrix.to_bool_matrix m = model
      && Bitmatrix.equal (Bitmatrix.of_bool_matrix model) m
      && Bitmatrix.equal (Bitmatrix.copy m) m)

let gen_two_matrices =
  QCheck2.Gen.(
    let* rows, cols = gen_dims in
    let* bits1 = gen_bits rows cols in
    let* bits2 = gen_bits rows cols in
    let* i = int_bound (rows - 1) in
    let* j = int_bound (rows - 1) in
    return (rows, cols, bits1, bits2, i, j))

let prop_row_kernels =
  Testutil.qtest ~count:200 "or/diff row kernels agree with the model"
    gen_two_matrices (fun (rows, cols, bits1, bits2, i, j) ->
      let src, msrc = build rows cols bits1 in
      (* OR: dst_j <- dst_j lor src_i *)
      let dst, mdst = build rows cols bits2 in
      let expect_change = ref false in
      for c = 0 to cols - 1 do
        if msrc.(i).(c) && not mdst.(j).(c) then expect_change := true;
        mdst.(j).(c) <- mdst.(j).(c) || msrc.(i).(c)
      done;
      let changed = Bitmatrix.or_row_into ~src i ~dst j in
      let or_ok = changed = !expect_change && agree dst mdst in
      (* DIFF: dst_j <- dst_j land lnot mask_i *)
      let dst2, mdst2 = build rows cols bits2 in
      let expect_change2 = ref false in
      for c = 0 to cols - 1 do
        if msrc.(i).(c) && mdst2.(j).(c) then expect_change2 := true;
        mdst2.(j).(c) <- mdst2.(j).(c) && not msrc.(i).(c)
      done;
      let changed2 = Bitmatrix.diff_row_into ~mask:src i ~dst:dst2 j in
      or_ok && changed2 = !expect_change2 && agree dst2 mdst2)

(* ---------------- closure vs iterated BFS ------------------------- *)

let gen_square =
  QCheck2.Gen.(
    let* n = int_range 1 9 in
    let* bits = list_size (int_bound (2 * n)) (pair (int_bound (n - 1)) (int_bound (n - 1))) in
    return (n, bits))

let bfs_closure n model =
  (* reflexive-transitive closure, one frontier BFS per source *)
  let out = Array.make_matrix n n false in
  for s = 0 to n - 1 do
    let seen = Array.make n false in
    let rec visit u =
      if not seen.(u) then begin
        seen.(u) <- true;
        for v = 0 to n - 1 do
          if model.(u).(v) then visit v
        done
      end
    in
    visit s;
    out.(s) <- seen
  done;
  out

let prop_closure =
  Testutil.qtest ~count:200 "closure sweeps reach the iterated-BFS fixpoint"
    gen_square (fun (n, bits) ->
      let m, model = build n n bits in
      Bitmatrix.to_bool_matrix (Bitmatrix.closure m) = bfs_closure n model)

(* ---------------- Kronecker product vs product_bfs ---------------- *)

let gen_case =
  QCheck2.Gen.(
    let* g = Testutil.gen_graph ~max_nodes:4 () in
    let* r = Testutil.gen_regex ~max_depth:2 () in
    return (g, r))

let prop_kronecker =
  Testutil.qtest ~count:150
    "product-matrix closure rows equal Path_search.product_bfs" gen_case
    (fun (g, r) ->
      let nfa = Nfa.of_regex r in
      let n = Graph.nnodes g in
      let m = nfa.Nfa.nstates in
      let closed = Bitmatrix.closure (Bulk_rpq.product_matrix g nfa) in
      List.for_all
        (fun u ->
          List.for_all
            (fun q0 ->
              let seen = Path_search.product_bfs g nfa [ (u, q0) ] in
              let row = (u * m) + q0 in
              List.for_all
                (fun v ->
                  List.for_all
                    (fun q -> Bitmatrix.get closed row ((v * m) + q) = seen.((v * m) + q))
                    (List.init m Fun.id))
                (Graph.nodes g))
            (List.init m Fun.id))
        (Graph.nodes g)
      && n >= 0)

let prop_reach_pairs =
  Testutil.qtest ~count:150
    "multi-source frontier BFS rows equal Path_search.reachable" gen_case
    (fun (g, r) ->
      let nfa = Nfa.of_regex r in
      let n = Graph.nnodes g in
      let srcs = Array.init n Fun.id in
      let seen = Bulk_rpq.reach_pairs g nfa srcs in
      List.for_all
        (fun u ->
          let want = List.sort_uniq compare (Path_search.reachable g nfa u) in
          let got = ref [] in
          Bitmatrix.iter_row seen u (fun v -> got := v :: !got);
          List.rev !got = want)
        (Graph.nodes g))

(* ---------------- chaos at bulk.sweep ----------------------------- *)

let gen_chaos_case =
  QCheck2.Gen.(
    let* g, r = gen_case in
    let* visit = int_range 1 3 in
    let* strategy = oneofl [ Bulk_rpq.All_pairs; Bulk_rpq.Multi_source ] in
    return (g, r, visit, strategy))

let prop_chaos =
  Testutil.qtest ~count:100
    "chaos on bulk.sweep: structured trip or correct relation, never wrong"
    gen_chaos_case (fun (g, r, visit, strategy) ->
      let nfa = Nfa.of_regex r in
      let want = Path_search.reach_relation g nfa in
      Guard.Chaos.arm [ ("bulk.sweep", visit) ];
      let outcome =
        Guard.run (fun () -> Bulk_rpq.reach_relation ~strategy g nfa)
      in
      let armed_ok =
        match outcome with
        | Ok rel ->
          (* fewer than [visit] sweeps: the rule never fired, the result
             must still be right *)
          rel = want
        | Error { site; reason = Guard.Fault_injected _ } -> site = "bulk.sweep"
        | Error _ -> false
      in
      (* supervise retries the injected trip and recovers the answer *)
      Guard.Chaos.arm [ ("bulk.sweep", visit) ];
      let supervised =
        Guard.supervise (fun () -> Bulk_rpq.reach_relation ~strategy g nfa)
      in
      Guard.Chaos.disarm ();
      let clean = Bulk_rpq.reach_relation ~strategy g nfa in
      armed_ok && supervised = Ok want && clean = want)

let () =
  Alcotest.run "bitmatrix"
    [
      ("kernels", [ prop_row_ops; prop_row_kernels; prop_closure ]);
      ("product", [ prop_kronecker; prop_reach_pairs ]);
      ("chaos", [ prop_chaos ]);
    ]
