(* Cross-domain span grafting and the span budget.

   [Obs.Trace] keeps its open-span stack in [Domain.DLS]; a worker
   domain attaches its spans under the span that was active in the
   forking domain only through an explicit [fork]/[adopt] handshake.
   These tests drive two real domains through that handshake and check
   the two failure modes the DLS rewrite eliminated: span loss (a
   worker's span vanishes) and misattachment (it floats to top level or
   lands under the wrong parent).  The budget tests pin the bounded
   trace buffer: past the cap spans degrade to pass-throughs, the drop
   is counted, and no retained span ever has a dropped parent. *)

let check = Alcotest.check

let default_max_spans = 100_000

let with_obs f () =
  Obs.Metrics.set_enabled true;
  Obs.Metrics.reset ();
  Obs.Trace.clear ();
  Obs.Trace.set_enabled true;
  Fun.protect
    ~finally:(fun () ->
      Obs.Metrics.set_enabled false;
      Obs.Trace.set_enabled false;
      Obs.Trace.set_max_spans default_max_spans;
      Obs.Metrics.reset ();
      Obs.Trace.clear ())
    f

let span_names spans = List.map (fun s -> s.Obs.Trace.name) spans

let rec count_spans spans =
  List.fold_left (fun n s -> n + count_spans s.Obs.Trace.children) (List.length spans) spans

(* ------------------------------------------------------------------ *)
(* Grafting                                                            *)
(* ------------------------------------------------------------------ *)

(* Two domains, each recording [n] named spans while the forking
   domain's "fanout" span is open: every worker span must appear as a
   child of "fanout", in per-worker order, with nothing at top level. *)
let test_two_domain_graft () =
  let n = 50 in
  Obs.Trace.span "fanout" (fun () ->
      let fork = Obs.Trace.fork () in
      let worker tag () =
        Obs.Trace.adopt fork (fun () ->
            for i = 1 to n do
              Obs.Trace.span (Printf.sprintf "%s.%d" tag i) (fun () -> ())
            done)
      in
      let d1 = Domain.spawn (worker "w1") in
      let d2 = Domain.spawn (worker "w2") in
      Obs.Trace.span "local" (fun () -> ());
      Domain.join d1;
      Domain.join d2);
  match Obs.Trace.finished () with
  | [ fanout ] ->
    check Alcotest.string "root name" "fanout" fanout.Obs.Trace.name;
    let kids = span_names fanout.Obs.Trace.children in
    check Alcotest.int "no span lost" ((2 * n) + 1) (List.length kids);
    (* each worker's spans keep their own order even though the two
       domains interleave arbitrarily *)
    let of_tag tag =
      List.filter (fun s -> String.length s > 3 && String.sub s 0 3 = tag ^ ".") kids
    in
    let expected tag = List.init n (fun i -> Printf.sprintf "%s.%d" tag (i + 1)) in
    check Alcotest.(list string) "w1 order" (expected "w1") (of_tag "w1");
    check Alcotest.(list string) "w2 order" (expected "w2") (of_tag "w2");
    check Alcotest.bool "local span present" true (List.mem "local" kids)
  | spans ->
    Alcotest.failf "misattached: %d top-level spans (%s)" (List.length spans)
      (String.concat ", " (span_names spans))

(* A worker's own nesting survives the graft: only its outermost span
   attaches to the fork parent, inner spans stay under the outer one. *)
let test_worker_nesting_grafts_once () =
  Obs.Trace.span "fanout" (fun () ->
      let fork = Obs.Trace.fork () in
      let d =
        Domain.spawn (fun () ->
            Obs.Trace.adopt fork (fun () ->
                Obs.Trace.span "outer_w" (fun () ->
                    Obs.Trace.span "inner_w" (fun () -> ()))))
      in
      Domain.join d);
  match Obs.Trace.finished () with
  | [ fanout ] -> begin
    match
      List.filter (fun s -> s.Obs.Trace.name = "outer_w") fanout.Obs.Trace.children
    with
    | [ outer ] ->
      check Alcotest.(list string) "inner nested under outer" [ "inner_w" ]
        (span_names outer.Obs.Trace.children);
      check Alcotest.bool "inner not a direct fanout child" false
        (List.mem "inner_w" (span_names fanout.Obs.Trace.children))
    | l -> Alcotest.failf "expected one outer_w child, got %d" (List.length l)
  end
  | spans -> Alcotest.failf "expected 1 top-level span, got %d" (List.length spans)

(* A fork captured with no open span grafts nothing: worker spans are
   legitimately top-level. *)
let test_fork_without_parent () =
  let fork = Obs.Trace.fork () in
  let d =
    Domain.spawn (fun () ->
        Obs.Trace.adopt fork (fun () -> Obs.Trace.span "free" (fun () -> ())))
  in
  Domain.join d;
  check Alcotest.(list string) "top-level worker span" [ "free" ]
    (span_names (Obs.Trace.finished ()))

(* [current_path] in a worker includes the adopted prefix, so profiler
   samples taken inside a worker carry the fan-out call path. *)
let test_current_path_includes_adopted_prefix () =
  let path = ref [] in
  Obs.Trace.span "fanout" (fun () ->
      let fork = Obs.Trace.fork () in
      let d =
        Domain.spawn (fun () ->
            Obs.Trace.adopt fork (fun () ->
                Obs.Trace.span "work" (fun () ->
                    path := Obs.Trace.current_path ())))
      in
      Domain.join d);
  check Alcotest.(list string) "adopted path" [ "fanout"; "work" ] !path

(* ------------------------------------------------------------------ *)
(* Span budget                                                         *)
(* ------------------------------------------------------------------ *)

let test_budget_drops_and_counts () =
  Obs.Trace.set_max_spans 3;
  for i = 1 to 5 do
    check Alcotest.int "pass-through result" i
      (Obs.Trace.span (Printf.sprintf "s%d" i) (fun () -> i))
  done;
  check Alcotest.(list string) "first three retained" [ "s1"; "s2"; "s3" ]
    (span_names (Obs.Trace.finished ()));
  check Alcotest.int "drops counted" 2 (Obs.Trace.dropped ());
  (match List.assoc_opt "trace.dropped_spans" (Obs.Metrics.snapshot ()) with
  | Some (Obs.Metrics.Counter n) -> check Alcotest.int "counter agrees" 2 n
  | _ -> Alcotest.fail "trace.dropped_spans counter missing");
  (* clear resets the budget accounting *)
  Obs.Trace.clear ();
  Obs.Trace.span "fresh" (fun () -> ());
  check Alcotest.int "budget reset by clear" 0 (Obs.Trace.dropped ());
  check Alcotest.int "fresh span retained" 1 (count_spans (Obs.Trace.finished ()))

(* The cutoff is monotone: a dropped span can never be the parent of a
   retained one, so the exported tree needs no repair pass. *)
let test_budget_monotone_cutoff () =
  Obs.Trace.set_max_spans 2;
  Obs.Trace.span "a" (fun () ->
      Obs.Trace.span "b" (fun () ->
          check Alcotest.int "dropped span still runs" 7
            (Obs.Trace.span "c" (fun () -> 7))));
  (match Obs.Trace.finished () with
  | [ a ] ->
    check Alcotest.(list string) "b retained under a" [ "b" ]
      (span_names a.Obs.Trace.children);
    let rec no_c spans =
      List.for_all
        (fun s -> s.Obs.Trace.name <> "c" && no_c s.Obs.Trace.children)
        spans
    in
    check Alcotest.bool "c dropped everywhere" true (no_c [ a ])
  | spans -> Alcotest.failf "expected 1 top-level span, got %d" (List.length spans));
  check Alcotest.int "one drop" 1 (Obs.Trace.dropped ())

let test_budget_validation () =
  check Alcotest.bool "non-positive budget rejected" true
    (match Obs.Trace.set_max_spans 0 with
    | exception Invalid_argument _ -> true
    | () -> false)

let () =
  Alcotest.run "trace_domains"
    [
      ( "graft",
        [
          Alcotest.test_case "two domains, no loss or misattachment" `Quick
            (with_obs test_two_domain_graft);
          Alcotest.test_case "worker nesting grafts once" `Quick
            (with_obs test_worker_nesting_grafts_once);
          Alcotest.test_case "fork without parent" `Quick
            (with_obs test_fork_without_parent);
          Alcotest.test_case "current_path includes adopted prefix" `Quick
            (with_obs test_current_path_includes_adopted_prefix);
        ] );
      ( "budget",
        [
          Alcotest.test_case "drops past the cap are counted" `Quick
            (with_obs test_budget_drops_and_counts);
          Alcotest.test_case "monotone cutoff" `Quick
            (with_obs test_budget_monotone_cutoff);
          Alcotest.test_case "validation" `Quick
            (with_obs test_budget_validation);
        ] );
    ]
