(* The certificate-checked rewrite engine: applied rewrites carry
   both-direction containment proofs; refused certificates leave the
   query alone — including the injectivity-specific refusals where
   standard minimization would be unsound. *)

let q = Crpq.parse

let contained v = v = Containment.Contained

let all_applied_certified report =
  List.for_all
    (fun (s : Rewrite.step) ->
      (not s.Rewrite.applied)
      || List.length s.Rewrite.checks = 2
         && List.for_all (fun (c : Rewrite.check) -> contained c.Rewrite.verdict)
              s.Rewrite.checks)
    report.Rewrite.steps

(* ---------------- fixed behaviours ---------------- *)

let test_drop_redundant_st () =
  let query = q "Q(x, y) :- x -[a]-> y, x -[a|b]-> y" in
  let q', report = Rewrite.rewrite Semantics.St query in
  Alcotest.(check string) "implied atom dropped" "Q(x, y) :- x -[a]-> y"
    (Crpq.to_string q');
  Alcotest.(check int) "one atom removed" 1 (Rewrite.removed_atoms report);
  Alcotest.(check bool) "certified" true (all_applied_certified report)

let test_duplicate_kept_qinj () =
  (* the paper's Example 2.1 shape: under q-inj a duplicate atom demands
     a second, internally disjoint path, so dropping it is UNSOUND and
     the certificate (the Thm 5.1 abstraction algorithm) refuses *)
  let query = q "Q(x, y) :- x -[aa]-> y, x -[aa]-> y" in
  let q', report = Rewrite.rewrite Semantics.Q_inj query in
  Alcotest.(check string) "duplicate kept under q-inj" (Crpq.to_string query)
    (Crpq.to_string q');
  Alcotest.(check bool) "refusals recorded" true
    (List.exists
       (fun (s : Rewrite.step) ->
         (not s.Rewrite.applied)
         && List.exists
              (fun (c : Rewrite.check) ->
                match c.Rewrite.verdict with
                | Containment.Not_contained _ -> true
                | _ -> false)
              s.Rewrite.checks)
       report.Rewrite.steps);
  (* ... while under St the same drop is certified *)
  let q_st, _ = Rewrite.rewrite Semantics.St query in
  Alcotest.(check string) "duplicate dropped under st" "Q(x, y) :- x -[aa]-> y"
    (Crpq.to_string q_st)

let test_collapse_unsat () =
  let query = q "Q(x) :- x -[!]-> y, y -[a]-> z, z -[b]-> x" in
  List.iter
    (fun sem ->
      let q', report = Rewrite.rewrite sem query in
      Alcotest.(check string)
        (Semantics.to_string sem ^ " collapses")
        "Q(x) :- x -[!]-> x" (Crpq.to_string q');
      Alcotest.(check bool) "certified" true (all_applied_certified report))
    Semantics.node_semantics

let test_merge_eps () =
  let query = q "Q(x) :- x -[%]-> y, y -[a]-> z" in
  let q', report = Rewrite.rewrite Semantics.St query in
  Alcotest.(check string) "endpoints merged" "Q(x) :- x -[a]-> z" (Crpq.to_string q');
  Alcotest.(check bool) "certified" true (all_applied_certified report)

let test_merge_keeps_free_head () =
  (* both endpoints free: the head tuple must keep its shape, so no
     merge candidate is even generated *)
  let query = q "Q(x, y) :- x -[%]-> y, y -[a]-> z" in
  Alcotest.(check bool) "no merge candidate" true
    (List.for_all
       (function Rewrite.Merge_vars _ -> false | _ -> true)
       (Rewrite.candidates query))

let test_failing_oracle_is_identity () =
  (* an oracle that can never prove containment must block every rewrite *)
  let no_oracle _ q1 q2 =
    ignore q1;
    ignore q2;
    Containment.budget_exhausted ~bound:0 ~expansions:0
  in
  let query = q "Q(x) :- x -[!]-> y, x -[a]-> y, x -[a]-> y" in
  let q', report = Rewrite.rewrite ~oracle:no_oracle Semantics.St query in
  Alcotest.(check string) "query unchanged" (Crpq.to_string query) (Crpq.to_string q');
  Alcotest.(check bool) "no step applied" true
    (List.for_all (fun (s : Rewrite.step) -> not s.Rewrite.applied) report.Rewrite.steps);
  Alcotest.(check bool) "steps were recorded" true (report.Rewrite.steps <> [])

let test_guard_budget () =
  (* fuel 0: the analysis.rewrite checkpoint trips on the first candidate
     and the trip reaches the Guard.run boundary *)
  let query = q "Q(x) :- x -[a]-> y, x -[a]-> y" in
  match
    Guard.run ~guard:(Guard.create ~fuel:0 ()) (fun () ->
        Rewrite.rewrite Semantics.St query)
  with
  | Error trip -> Alcotest.(check string) "tripped site" "analysis.rewrite" trip.Guard.site
  | Ok _ -> Alcotest.fail "expected a guard trip"

(* ---------------- Analysis.optimize plumbing ---------------- *)

let test_optimize_report () =
  let query = q "Q(x, y) :- x -[a]-> y, x -[a|b]-> y, y -[c]-> z" in
  let q', report = Analysis.optimize ~sem:Semantics.St query in
  Alcotest.(check int) "atoms removed" 1 (Rewrite.removed_atoms report.Analysis.rewrite);
  Alcotest.(check int) "shape before atoms" 3 report.Analysis.shape_before.Query_shape.atoms;
  Alcotest.(check int) "shape after atoms" 2 report.Analysis.shape_after.Query_shape.atoms;
  Alcotest.(check bool) "after acyclic" true
    report.Analysis.shape_after.Query_shape.acyclic;
  Alcotest.(check string) "optimized" "Q(x, y) :- x -[a]-> y, y -[c]-> z"
    (Crpq.to_string q')

let test_preprocessor_reentrancy () =
  (* installing the optimizer as Eval/Containment pre-pass must not
     recurse: certificates inside optimize call Containment.decide,
     which sees the busy flag and passes queries through *)
  Analysis.install_preprocessor ();
  Fun.protect ~finally:Analysis.uninstall_preprocessor (fun () ->
      let q1 = q "Q(x, y) :- x -[a]-> y, x -[a|b]-> y" in
      let q2 = q "Q(x, y) :- x -[a]-> y" in
      Alcotest.(check bool) "decide terminates" true
        (Containment.decide Semantics.St q1 q2 = Containment.Contained);
      let g = Graph.make ~nnodes:2 [ (0, "a", 1) ] in
      Alcotest.(check bool) "eval terminates" true
        (Eval.eval Semantics.St q1 g = [ [ 0; 1 ] ]))

(* ---------------- qcheck properties ---------------- *)

(* an oracle wrapper that records every (certified, applied) pair so the
   central property "certificate check failing => rewrite not applied"
   is observable from the outside *)
let logging_flaky_oracle ~rng log sem q1 q2 =
  let v =
    (* fail roughly half the checks, deterministically per call site *)
    if Random.State.bool rng then Containment.decide ~bound:2 sem q1 q2
    else Containment.budget_exhausted ~bound:0 ~expansions:0
  in
  log := (q1, q2, v) :: !log;
  v

let gen_query = Testutil.gen_crpq ~cls:Crpq.Class_fin ~max_atoms:3 ~max_vars:3 ~arity:1 ()

let qtests =
  [
    Testutil.qtest ~count:200 "failing certificate => rewrite not applied"
      gen_query (fun query ->
        let rng = Random.State.make [| Testutil.seed; 0xCE27 |] in
        let log = ref [] in
        let _, report =
          Rewrite.rewrite ~oracle:(logging_flaky_oracle ~rng log) Semantics.St query
        in
        (* every applied step carries two Contained checks; any step with
           a non-Contained check is not applied *)
        all_applied_certified report
        && List.for_all
             (fun (s : Rewrite.step) ->
               List.for_all
                 (fun (c : Rewrite.check) -> contained c.Rewrite.verdict)
                 s.Rewrite.checks
               || not s.Rewrite.applied)
             report.Rewrite.steps);
    Testutil.qtest ~count:200 "rewrite preserves the free tuple" gen_query
      (fun query ->
        let q', _ = Rewrite.rewrite ~oracle:(Rewrite.default_oracle ~bound:2 ()) Semantics.A_inj query in
        q'.Crpq.free = query.Crpq.free);
    Testutil.qtest ~count:100 "rewrite reaches a fixpoint" gen_query (fun query ->
        let oracle = Rewrite.default_oracle ~bound:2 () in
        let q1, _ = Rewrite.rewrite ~oracle Semantics.St query in
        let q2, report2 = Rewrite.rewrite ~oracle Semantics.St q1 in
        Crpq.to_string q1 = Crpq.to_string q2
        && List.for_all (fun (s : Rewrite.step) -> not s.Rewrite.applied)
             report2.Rewrite.steps);
  ]

let () =
  Alcotest.run "rewrite"
    [
      ( "fixed",
        [
          Alcotest.test_case "drop redundant atom (st)" `Quick test_drop_redundant_st;
          Alcotest.test_case "duplicate kept under q-inj" `Quick
            test_duplicate_kept_qinj;
          Alcotest.test_case "collapse unsatisfiable" `Quick test_collapse_unsat;
          Alcotest.test_case "merge eps-joined vars" `Quick test_merge_eps;
          Alcotest.test_case "free head never merged" `Quick test_merge_keeps_free_head;
          Alcotest.test_case "failing oracle => identity" `Quick
            test_failing_oracle_is_identity;
          Alcotest.test_case "guard budget" `Quick test_guard_budget;
          Alcotest.test_case "optimize report" `Quick test_optimize_report;
          Alcotest.test_case "preprocessor re-entrancy" `Quick
            test_preprocessor_reentrancy;
        ] );
      ("qcheck", qtests);
    ]
