let check = Alcotest.check

let g0 = Graph.make ~nnodes:4 [ (0, "a", 1); (1, "b", 2); (2, "a", 0); (3, "c", 3) ]

let test_basics () =
  check Alcotest.int "nnodes" 4 (Graph.nnodes g0);
  check Alcotest.int "nedges" 4 (Graph.nedges g0);
  check Alcotest.bool "mem_edge" true (Graph.mem_edge g0 0 "a" 1);
  check Alcotest.bool "mem_edge label" false (Graph.mem_edge g0 0 "b" 1);
  check Alcotest.bool "self loop" true (Graph.mem_edge g0 3 "c" 3);
  check (Alcotest.list Alcotest.int) "succ" [ 1 ] (Graph.succ g0 0 "a");
  check Alcotest.int "out_degree" 1 (Graph.out_degree g0 0);
  check Alcotest.int "in_degree" 1 (Graph.in_degree g0 0);
  check (Alcotest.list Alcotest.string) "alphabet" [ "a"; "b"; "c" ]
    (Graph.alphabet g0)

let test_dedup () =
  let g = Graph.make ~nnodes:2 [ (0, "a", 1); (0, "a", 1) ] in
  check Alcotest.int "duplicate edges removed" 1 (Graph.nedges g)

let test_out_of_range () =
  Alcotest.check_raises "out of range" (Invalid_argument "Graph.make: node out of range")
    (fun () -> ignore (Graph.make ~nnodes:2 [ (0, "a", 5) ]))

let test_of_edges () =
  let g = Graph.of_edges [ (0, "a", 7) ] in
  check Alcotest.int "nnodes inferred" 8 (Graph.nnodes g)

let test_components () =
  check Alcotest.int "two components" 2 (List.length (Graph.components g0));
  check Alcotest.bool "not connected" false (Graph.is_connected g0);
  let g = Graph.make ~nnodes:3 [ (0, "a", 1); (2, "a", 1) ] in
  check Alcotest.bool "weakly connected" true (Graph.is_connected g)

let test_induced () =
  let sub, remap = Graph.induced g0 (fun v -> v < 3) in
  check Alcotest.int "induced nodes" 3 (Graph.nnodes sub);
  check Alcotest.int "induced edges" 3 (Graph.nedges sub);
  check Alcotest.int "node 3 dropped" (-1) remap.(3)

let test_disjoint_union () =
  let u, shift = Graph.disjoint_union g0 g0 in
  check Alcotest.int "nodes doubled" 8 (Graph.nnodes u);
  check Alcotest.int "edges doubled" 8 (Graph.nedges u);
  check Alcotest.int "shift" 4 shift;
  check Alcotest.bool "shifted edge" true (Graph.mem_edge u 4 "a" 5)

let test_add_edges () =
  let g = Graph.add_edges g0 [ (0, "z", 5) ] in
  check Alcotest.int "grown" 6 (Graph.nnodes g);
  check Alcotest.bool "old edge kept" true (Graph.mem_edge g 0 "a" 1)

let contains ~needle haystack =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  nl = 0 || go 0

let test_to_dot () =
  let dot = Graph.to_dot g0 in
  check Alcotest.bool "mentions edge" true (contains ~needle:"n0 -> n1" dot);
  check Alcotest.bool "mentions label" true (contains ~needle:"label=\"a\"" dot)

(* ---------------- Graph_io parsing ---------------- *)

let parse_ok text =
  match Graph_io.of_string_result text with
  | Ok g -> g
  | Error e -> Alcotest.failf "unexpected parse error: %s" e

let parse_err name ~mentions text =
  match Graph_io.of_string_result text with
  | Ok _ -> Alcotest.failf "%s: malformed input accepted" name
  | Error e ->
    check Alcotest.bool
      (Printf.sprintf "%s: error mentions %S (got %S)" name mentions e)
      true
      (contains ~needle:mentions e)

let test_io_roundtrip () =
  let g = parse_ok (Graph_io.to_string g0) in
  check Alcotest.int "nodes survive round-trip" (Graph.nnodes g0)
    (Graph.nnodes g);
  check Alcotest.bool "edges survive round-trip" true
    (Graph.edges g = Graph.edges g0)

let test_io_whitespace () =
  (* tabs, runs of blanks, comments and blank lines are all fine *)
  let g = parse_ok "# header\n0\ta\t1\n\n1  b \t 2\n  2 a 0  \n" in
  check Alcotest.int "three edges" 3 (Graph.nedges g);
  check Alcotest.bool "tab-separated edge" true (Graph.mem_edge g 0 "a" 1);
  check Alcotest.bool "mixed-separator edge" true (Graph.mem_edge g 1 "b" 2)

let test_io_empty () =
  let g = parse_ok "" in
  check Alcotest.int "empty input, empty graph" 0 (Graph.nnodes g);
  let g = parse_ok "# only a comment\n\n" in
  check Alcotest.int "comments only, empty graph" 0 (Graph.nnodes g)

let test_io_malformed_lines () =
  parse_err "missing field" ~mentions:"line 1" "0 a\n";
  parse_err "extra field" ~mentions:"line 1" "0 a 1 2\n";
  parse_err "line number counts comments" ~mentions:"line 3"
    "0 a 1\n# fine\n0 b\n"

let test_io_strict_node_ids () =
  (* spellings int_of_string_opt would accept but an edge file does not
     mean: hex, underscores, explicit sign, negatives *)
  parse_err "hex id" ~mentions:"bad node id" "0x10 a 1\n";
  parse_err "underscore id" ~mentions:"bad node id" "1_0 a 1\n";
  parse_err "signed id" ~mentions:"bad node id" "+3 a 1\n";
  parse_err "negative id" ~mentions:"bad node id" "0 a -1\n";
  parse_err "alphabetic id" ~mentions:"bad node id" "0 a x\n";
  parse_err "overflowing id" ~mentions:"bad node id"
    "99999999999999999999 a 0\n"

(* ---------------- streaming file loads ---------------- *)

let with_temp_file contents f =
  let path = Filename.temp_file "injcrpq_graph" ".edges" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      let oc = open_out_bin path in
      output_string oc contents;
      close_out oc;
      f path)

let test_load_roundtrip () =
  with_temp_file (Graph_io.to_string g0) (fun path ->
      let g = Graph_io.load path in
      check Alcotest.int "nodes survive file round-trip" (Graph.nnodes g0)
        (Graph.nnodes g);
      check Alcotest.bool "edges survive file round-trip" true
        (Graph.edges g = Graph.edges g0))

let test_load_matches_of_string () =
  (* the streaming loader and the in-memory parser accept the same
     inputs with the same edges, and reject the same inputs with the
     same line-numbered messages — CRLF and comment lines included *)
  let inputs =
    [
      "# header\r\n0 a 1\r\n\r\n1  b \t 2\n";
      "";
      "0 a 1\n1 a 2\n2 a 0";
      "0 a\n";
      "0 a 1\n# fine\n0 b\n";
      "0x10 a 1\n";
      "0 a -1\n";
    ]
  in
  List.iter
    (fun text ->
      with_temp_file text (fun path ->
          match (Graph_io.of_string_result text, Graph_io.load_result path) with
          | Ok g1, Ok g2 ->
            check Alcotest.bool
              (Printf.sprintf "load agrees with of_string on %S" text)
              true (Graph.edges g1 = Graph.edges g2)
          | Error e1, Error e2 ->
            check Alcotest.string
              (Printf.sprintf "identical error on %S" text)
              e1 e2
          | Ok _, Error e ->
            Alcotest.failf "load rejects %S (%s) but of_string accepts" text e
          | Error e, Ok _ ->
            Alcotest.failf "of_string rejects %S (%s) but load accepts" text e))
    inputs

let test_load_missing_file () =
  (match Graph_io.load_result "/nonexistent/injcrpq.edges" with
  | Ok _ -> Alcotest.fail "load_result succeeded on a missing file"
  | Error e ->
    check Alcotest.bool
      (Printf.sprintf "error mentions the path (got %S)" e)
      true
      (contains ~needle:"injcrpq.edges" e));
  check Alcotest.bool "load raises Sys_error" true
    (match Graph_io.load "/nonexistent/injcrpq.edges" with
    | exception Sys_error _ -> true
    | _ -> false)

let test_load_large_stream () =
  (* a file big enough to span many chunks streams through with the
     right edge count and no quadratic re-reading *)
  let n = 20_000 in
  let buf = Buffer.create (n * 8) in
  for i = 0 to n - 1 do
    Buffer.add_string buf (Printf.sprintf "%d a %d\n" i ((i + 1) mod n))
  done;
  with_temp_file (Buffer.contents buf) (fun path ->
      let g = Graph_io.load path in
      check Alcotest.int "streamed node count" n (Graph.nnodes g);
      check Alcotest.int "streamed edge count" n (Graph.nedges g))

let prop_in_out_consistent =
  Testutil.qtest "in/out edge views agree" (Testutil.gen_graph ()) (fun g ->
      List.for_all
        (fun (u, a, v) ->
          List.mem (a, v) (Graph.out g u) && List.mem (a, u) (Graph.in_ g v))
        (Graph.edges g))

let prop_degree_sum =
  Testutil.qtest "degree sums equal edge count" (Testutil.gen_graph ()) (fun g ->
      let nodes = Graph.nodes g in
      List.fold_left (fun acc u -> acc + Graph.out_degree g u) 0 nodes
      = Graph.nedges g
      && List.fold_left (fun acc u -> acc + Graph.in_degree g u) 0 nodes
         = Graph.nedges g)

let prop_components_partition =
  Testutil.qtest "components partition the nodes" (Testutil.gen_graph ())
    (fun g ->
      let comps = Graph.components g in
      List.sort compare (List.concat comps) = Graph.nodes g)

let () =
  Alcotest.run "graph"
    [
      ( "unit",
        [
          Alcotest.test_case "basics" `Quick test_basics;
          Alcotest.test_case "dedup" `Quick test_dedup;
          Alcotest.test_case "out of range" `Quick test_out_of_range;
          Alcotest.test_case "of_edges" `Quick test_of_edges;
          Alcotest.test_case "components" `Quick test_components;
          Alcotest.test_case "induced" `Quick test_induced;
          Alcotest.test_case "disjoint union" `Quick test_disjoint_union;
          Alcotest.test_case "add edges" `Quick test_add_edges;
          Alcotest.test_case "dot" `Quick test_to_dot;
        ] );
      ( "graph_io",
        [
          Alcotest.test_case "round-trip" `Quick test_io_roundtrip;
          Alcotest.test_case "whitespace and comments" `Quick
            test_io_whitespace;
          Alcotest.test_case "empty input" `Quick test_io_empty;
          Alcotest.test_case "malformed lines" `Quick test_io_malformed_lines;
          Alcotest.test_case "strict node ids" `Quick test_io_strict_node_ids;
        ] );
      ( "streaming load",
        [
          Alcotest.test_case "file round-trip" `Quick test_load_roundtrip;
          Alcotest.test_case "load = of_string (edges and errors)" `Quick
            test_load_matches_of_string;
          Alcotest.test_case "missing file" `Quick test_load_missing_file;
          Alcotest.test_case "large stream" `Quick test_load_large_stream;
        ] );
      ( "properties",
        [ prop_in_out_consistent; prop_degree_sum; prop_components_partition ] );
    ]
