(* The observability layer: counter/gauge/histogram semantics, snapshot
   diffing, span nesting and timing, JSON round-trips (mirroring
   test_analysis's Diagnostic round-trip), and the regression that a
   disabled registry records nothing even while instrumented deciders
   run. *)

let check = Alcotest.check

(* every test starts from a clean, enabled registry and restores the
   global default (disabled) afterwards *)
let with_obs f () =
  Obs.Metrics.set_enabled true;
  Obs.Metrics.reset ();
  Obs.Trace.clear ();
  Fun.protect
    ~finally:(fun () ->
      Obs.Metrics.set_enabled false;
      Obs.Trace.set_enabled false;
      Obs.Metrics.reset ();
      Obs.Trace.clear ())
    f

let find name snap =
  match List.assoc_opt name snap with
  | Some v -> v
  | None -> Alcotest.failf "metric %s missing from snapshot" name

let counter_of name snap =
  match find name snap with
  | Obs.Metrics.Counter n -> n
  | _ -> Alcotest.failf "metric %s is not a counter" name

(* ------------------------------------------------------------------ *)
(* Metric semantics                                                    *)
(* ------------------------------------------------------------------ *)

let test_counter () =
  let c = Obs.Metrics.counter "test.counter" in
  Obs.Metrics.incr c;
  Obs.Metrics.incr c;
  Obs.Metrics.add c 5;
  check Alcotest.int "value" 7 (Obs.Metrics.counter_value c);
  check Alcotest.int "snapshot agrees" 7
    (counter_of "test.counter" (Obs.Metrics.snapshot ()));
  (* registration is idempotent: same name, same cell *)
  let c' = Obs.Metrics.counter "test.counter" in
  Obs.Metrics.incr c';
  check Alcotest.int "same cell" 8 (Obs.Metrics.counter_value c);
  check Alcotest.bool "negative add rejected" true
    (match Obs.Metrics.add c (-1) with
    | exception Invalid_argument _ -> true
    | () -> false);
  (* a name cannot be re-registered as another kind *)
  check Alcotest.bool "kind clash rejected" true
    (match Obs.Metrics.gauge "test.counter" with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_gauge () =
  let g = Obs.Metrics.gauge "test.gauge" in
  Obs.Metrics.set g 10;
  Obs.Metrics.adjust g (-3);
  match find "test.gauge" (Obs.Metrics.snapshot ()) with
  | Obs.Metrics.Gauge v -> check Alcotest.int "value" 7 v
  | _ -> Alcotest.fail "not a gauge"

let test_histogram () =
  let h = Obs.Metrics.histogram "test.hist" in
  List.iter (Obs.Metrics.observe h) [ 1; 1; 2; 3; 8; 1000 ];
  match find "test.hist" (Obs.Metrics.snapshot ()) with
  | Obs.Metrics.Histogram { count; sum; max; buckets } ->
    check Alcotest.int "count" 6 count;
    check Alcotest.int "sum" 1015 sum;
    check Alcotest.int "max" 1000 max;
    (* log2 buckets: 1,1 -> b0; 2,3 -> b1; 8 -> b3; 1000 -> b9 *)
    check
      Alcotest.(list (pair int int))
      "buckets"
      [ (0, 2); (1, 2); (3, 1); (9, 1) ]
      buckets
  | _ -> Alcotest.fail "not a histogram"

(* ------------------------------------------------------------------ *)
(* Snapshot diffing                                                    *)
(* ------------------------------------------------------------------ *)

let test_diff () =
  let c = Obs.Metrics.counter "test.diff.counter" in
  let g = Obs.Metrics.gauge "test.diff.gauge" in
  let h = Obs.Metrics.histogram "test.diff.hist" in
  Obs.Metrics.incr c;
  Obs.Metrics.set g 5;
  Obs.Metrics.observe h 4;
  let before = Obs.Metrics.snapshot () in
  Obs.Metrics.add c 9;
  Obs.Metrics.set g 2;
  Obs.Metrics.observe h 6;
  let d = Obs.Metrics.diff before (Obs.Metrics.snapshot ()) in
  check Alcotest.int "counter subtracts" 9 (counter_of "test.diff.counter" d);
  (match find "test.diff.gauge" d with
  | Obs.Metrics.Gauge v -> check Alcotest.int "gauge takes after" 2 v
  | _ -> Alcotest.fail "not a gauge");
  (match find "test.diff.hist" d with
  | Obs.Metrics.Histogram { count; _ } ->
    check Alcotest.int "histogram count subtracts" 1 count
  | _ -> Alcotest.fail "not a histogram");
  (* a self-diff is zero once gauges are back at rest (gauges keep
     their "after" level through a diff by design) *)
  Obs.Metrics.set g 0;
  check Alcotest.bool "zero diff detected" true
    (let s = Obs.Metrics.snapshot () in
     Obs.Metrics.is_zero (Obs.Metrics.diff s s))

(* ------------------------------------------------------------------ *)
(* Disabled registry: instrumented deciders record nothing             *)
(* ------------------------------------------------------------------ *)

let test_disabled_no_op () =
  Obs.Metrics.set_enabled false;
  Obs.Metrics.reset ();
  let q1 = Crpq.parse "Q() :- x -[ab]-> y, y -[a+]-> z" in
  let q2 = Crpq.parse "Q() :- x -[(a|b)+]-> z" in
  (match Containment.decide Semantics.Q_inj q1 q2 with
  | Containment.Contained | Containment.Not_contained _ | Containment.Unknown _
    -> ());
  let g = Graph.make ~nnodes:3 [ (0, "a", 1); (1, "b", 2); (2, "a", 0) ] in
  ignore (Eval.eval Semantics.Q_inj (Crpq.parse "Q(x) :- x -[(ab)+]-> y") g);
  check Alcotest.bool "snapshot stays zero" true
    (Obs.Metrics.is_zero (Obs.Metrics.snapshot ()));
  (* spans are pass-through while tracing is disabled *)
  check Alcotest.int "span is transparent" 42 (Obs.Trace.span "t" (fun () -> 42));
  check Alcotest.int "no span recorded" 0 (List.length (Obs.Trace.finished ()))

(* ...and the same workload does move counters when enabled *)
let test_enabled_records () =
  let q1 = Crpq.parse "Q() :- x -[ab]-> y, y -[a+]-> z" in
  let q2 = Crpq.parse "Q() :- x -[(a|b)+]-> z" in
  (match Containment.decide Semantics.Q_inj q1 q2 with
  | Containment.Contained | Containment.Not_contained _ | Containment.Unknown _
    -> ());
  let snap = Obs.Metrics.snapshot () in
  check Alcotest.bool "counters ticked" false (Obs.Metrics.is_zero snap);
  check Alcotest.int "one decision" 1 (counter_of "containment.decisions" snap)

(* ------------------------------------------------------------------ *)
(* Spans                                                               *)
(* ------------------------------------------------------------------ *)

let test_span_nesting () =
  Obs.Trace.set_enabled true;
  let c = Obs.Metrics.counter "test.span.counter" in
  let r =
    Obs.Trace.span "outer" (fun () ->
        Obs.Metrics.incr c;
        let a = Obs.Trace.span "inner1" (fun () -> 1) in
        let b =
          Obs.Trace.span "inner2" (fun () ->
              Obs.Metrics.incr c;
              2)
        in
        a + b)
  in
  check Alcotest.int "result threads through" 3 r;
  match Obs.Trace.finished () with
  | [ outer ] ->
    check Alcotest.string "outer name" "outer" outer.Obs.Trace.name;
    check
      Alcotest.(list string)
      "children in order" [ "inner1"; "inner2" ]
      (List.map (fun s -> s.Obs.Trace.name) outer.Obs.Trace.children);
    (* timing monotonicity: all durations non-negative, parent covers
       its children *)
    let d s = s.Obs.Trace.duration_ns in
    List.iter
      (fun s ->
        check Alcotest.bool "non-negative duration" true (d s >= 0L))
      (outer :: outer.Obs.Trace.children);
    let child_total =
      List.fold_left
        (fun acc s -> Int64.add acc (d s))
        0L outer.Obs.Trace.children
    in
    check Alcotest.bool "parent >= sum of children" true
      (d outer >= child_total);
    (* the metrics delta of the outer span saw both increments, the
       inner ones only their own *)
    check Alcotest.int "outer delta" 2
      (counter_of "test.span.counter" outer.Obs.Trace.metrics);
    check Alcotest.int "inner2 delta" 1
      (counter_of "test.span.counter"
         (List.nth outer.Obs.Trace.children 1).Obs.Trace.metrics)
  | spans -> Alcotest.failf "expected 1 top-level span, got %d" (List.length spans)

let test_span_error () =
  Obs.Trace.set_enabled true;
  check Alcotest.bool "exception re-raised" true
    (match Obs.Trace.span "boom" (fun () -> failwith "boom") with
    | exception Failure _ -> true
    | _ -> false);
  match Obs.Trace.finished () with
  | [ s ] -> check Alcotest.bool "marked errored" true s.Obs.Trace.errored
  | _ -> Alcotest.fail "span not recorded"

(* ------------------------------------------------------------------ *)
(* JSON round-trips                                                    *)
(* ------------------------------------------------------------------ *)

let test_json_parse () =
  let roundtrip s =
    match Obs.Json.parse s with
    | Ok v -> Obs.Json.to_string v
    | Error e -> Alcotest.failf "parse %s: %s" s e
  in
  List.iter
    (fun s -> check Alcotest.string "normal form" s (roundtrip s))
    [
      {|null|};
      {|true|};
      {|-42|};
      {|[1,2,3]|};
      {|{"a":1,"b":[{"c":"d\ne"}],"e":null}|};
    ];
  check Alcotest.string "whitespace tolerated" {|{"a":[1,2]}|}
    (roundtrip {| { "a" : [ 1 , 2 ] } |});
  List.iter
    (fun s ->
      check Alcotest.bool
        (Printf.sprintf "%S rejected" s)
        true
        (match Obs.Json.parse s with Error _ -> true | Ok _ -> false))
    [ ""; "{"; "[1,]"; "nul"; {|{"a":1} trailing|}; {|"unterminated|} ]

let test_metrics_json_roundtrip () =
  let c = Obs.Metrics.counter "test.json.counter" in
  let g = Obs.Metrics.gauge "test.json.gauge" in
  let h = Obs.Metrics.histogram "test.json.hist" in
  Obs.Metrics.add c 17;
  Obs.Metrics.set g (-4);
  List.iter (Obs.Metrics.observe h) [ 0; 5; 5; 129 ];
  let snap = Obs.Metrics.snapshot () in
  let json = Obs.Metrics.to_json snap in
  (* through the printer and parser, back to an equal snapshot *)
  match Obs.Json.parse (Obs.Json.to_string json) with
  | Error e -> Alcotest.failf "reparse failed: %s" e
  | Ok reparsed -> begin
    match Obs.Metrics.of_json reparsed with
    | Error e -> Alcotest.failf "of_json failed: %s" e
    | Ok snap' ->
      check Alcotest.bool "snapshot round-trips" true (snap = snap')
  end

let test_trace_jsonl () =
  Obs.Trace.set_enabled true;
  ignore
    (Obs.Trace.span "a" (fun () ->
         Obs.Trace.span "b" (fun () -> Obs.Trace.span "c" (fun () -> ()))));
  ignore (Obs.Trace.span "d" (fun () -> ()));
  let lines =
    String.split_on_char '\n' (String.trim (Obs.Trace.to_jsonl (Obs.Trace.finished ())))
  in
  check Alcotest.int "one line per span" 4 (List.length lines);
  let parsed =
    List.map
      (fun l ->
        match Obs.Json.parse l with
        | Ok v -> v
        | Error e -> Alcotest.failf "line %s: %s" l e)
      lines
  in
  let field name j =
    match Obs.Json.member name j with
    | Some v -> v
    | None -> Alcotest.failf "missing field %s" name
  in
  let names =
    List.map
      (fun j ->
        match field "name" j with
        | Obs.Json.String s -> s
        | _ -> Alcotest.fail "name not a string")
      parsed
  in
  check Alcotest.(list string) "DFS order" [ "a"; "b"; "c"; "d" ] names;
  (* parent pointers reconstruct the nesting *)
  let parents =
    List.map
      (fun j ->
        match field "parent" j with
        | Obs.Json.Null -> None
        | v -> Obs.Json.to_int v)
      parsed
  in
  check
    Alcotest.(list (option int))
    "parents" [ None; Some 0; Some 1; None ] parents

(* ------------------------------------------------------------------ *)
(* Clock                                                               *)
(* ------------------------------------------------------------------ *)

let test_clock () =
  check Alcotest.string "default source" "monotonic" (Obs.Clock.source_name ());
  let t0 = Obs.Clock.now_ns () in
  (* burn a little CPU so even a coarse clock must advance *)
  let acc = ref 0 in
  for i = 0 to 2_000_000 do
    acc := !acc + i
  done;
  ignore !acc;
  let t1 = Obs.Clock.now_ns () in
  check Alcotest.bool "monotone non-decreasing" true (Int64.compare t1 t0 >= 0);
  (* cpu time is still available, separately named *)
  let c0 = Obs.Clock.cpu_ns () in
  let c1 = Obs.Clock.cpu_ns () in
  check Alcotest.bool "cpu clock non-decreasing" true (Int64.compare c1 c0 >= 0);
  (* a swapped-in source is restorable *)
  Obs.Clock.set_source ~name:"fake" (fun () -> 7L);
  check Alcotest.string "source swapped" "fake" (Obs.Clock.source_name ());
  check Alcotest.bool "fake ticks" true (Obs.Clock.now_ns () = 7L);
  Obs.Clock.reset_source ();
  check Alcotest.string "source restored" "monotonic" (Obs.Clock.source_name ());
  check (Alcotest.float 1e-9) "ns_to_s" 1.5 (Obs.Clock.ns_to_s 1_500_000_000L)

(* guard checkpoints tick the obs counter when metrics are enabled *)
let test_guard_counter () =
  (* pin chaos off so a CI-wide INJCRPQ_CHAOS cannot trip this guard *)
  Guard.Chaos.disarm ();
  let before =
    counter_of "guard.checkpoints"
      (let _ = Obs.Metrics.counter "guard.checkpoints" in
       Obs.Metrics.snapshot ())
  in
  let g = Guard.create ~fuel:10 () in
  (match
     Guard.with_guard g (fun () ->
         Guard.checkpoint "test.obs.site";
         Guard.checkpoint "test.obs.site")
   with
  | () -> ()
  | exception Guard.Trip _ -> Alcotest.fail "fuel 10 must not trip twice");
  let after = counter_of "guard.checkpoints" (Obs.Metrics.snapshot ()) in
  check Alcotest.int "checkpoints counted" (before + 2) after

let () =
  Alcotest.run "obs"
    [
      ( "metrics",
        [
          Alcotest.test_case "counter" `Quick (with_obs test_counter);
          Alcotest.test_case "gauge" `Quick (with_obs test_gauge);
          Alcotest.test_case "histogram" `Quick (with_obs test_histogram);
          Alcotest.test_case "snapshot diff" `Quick (with_obs test_diff);
          Alcotest.test_case "disabled registry records nothing" `Quick
            (with_obs test_disabled_no_op);
          Alcotest.test_case "enabled registry records" `Quick
            (with_obs test_enabled_records);
        ] );
      ( "trace",
        [
          Alcotest.test_case "span nesting and timing" `Quick
            (with_obs test_span_nesting);
          Alcotest.test_case "errored span" `Quick (with_obs test_span_error);
          Alcotest.test_case "span JSONL export" `Quick (with_obs test_trace_jsonl);
        ] );
      ( "json",
        [
          Alcotest.test_case "parse/print round-trip" `Quick test_json_parse;
          Alcotest.test_case "metrics JSON round-trip" `Quick
            (with_obs test_metrics_json_roundtrip);
        ] );
      ("clock", [ Alcotest.test_case "monotonicity" `Quick test_clock ]);
      ( "guard",
        [
          Alcotest.test_case "checkpoint counter" `Quick
            (with_obs test_guard_counter);
        ] );
    ]
