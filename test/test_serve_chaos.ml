(* Robustness battery for the serve daemon: chaos injection at the
   serve.accept / serve.dispatch / serve.worker Guard sites must degrade
   requests to structured shed/unknown responses — never kill the
   daemon; the bounded queue sheds under burst; per-session quotas
   reject deterministically on the fake clock; drain finishes or
   cancels in-flight work and returns.

   Everything runs in-process over a socketpair so the battery is a
   plain alcotest binary. *)

module P = Serve.Protocol

let check = Alcotest.check

(* --------------------------- squeue ------------------------------- *)

let test_squeue_bounds () =
  let q = Serve.Squeue.create ~bound:2 in
  check Alcotest.bool "push 1" true (Serve.Squeue.try_push q 1);
  check Alcotest.bool "push 2" true (Serve.Squeue.try_push q 2);
  check Alcotest.bool "push 3 rejected" false (Serve.Squeue.try_push q 3);
  check Alcotest.int "length" 2 (Serve.Squeue.length q);
  check Alcotest.(option int) "fifo 1" (Some 1) (Serve.Squeue.pop q);
  check Alcotest.bool "room again" true (Serve.Squeue.try_push q 3);
  check Alcotest.(option int) "fifo 2" (Some 2) (Serve.Squeue.pop q);
  check Alcotest.(option int) "fifo 3" (Some 3) (Serve.Squeue.pop q)

let test_squeue_close () =
  let q = Serve.Squeue.create ~bound:4 in
  ignore (Serve.Squeue.try_push q 1);
  Serve.Squeue.close q;
  check Alcotest.bool "closed" true (Serve.Squeue.is_closed q);
  check Alcotest.bool "push after close" false (Serve.Squeue.try_push q 2);
  (* drain continues after close: queued work still pops, then None *)
  check Alcotest.(option int) "drains queued" (Some 1) (Serve.Squeue.pop q);
  check Alcotest.(option int) "then none" None (Serve.Squeue.pop q)

(* ---------------------------- quota ------------------------------- *)

let with_fake_clock f =
  let now = ref 1_000_000_000L in
  Obs.Clock.set_source ~name:"fake" (fun () -> !now);
  Fun.protect ~finally:Obs.Clock.reset_source (fun () -> f now)

let advance_ms now ms = now := Int64.add !now (Int64.of_int (ms * 1_000_000))

let test_quota_policy_validation () =
  let rejected f =
    match f () with
    | exception Invalid_argument _ -> true
    | (_ : Serve.Quota.policy) -> false
  in
  check Alcotest.bool "rate 0 rejected" true
    (rejected (fun () -> Serve.Quota.policy ~rate_per_s:0. ()));
  check Alcotest.bool "burst < 1 rejected" true
    (rejected (fun () -> Serve.Quota.policy ~burst:0.5 ~rate_per_s:1. ()))

let test_quota_bucket () =
  with_fake_clock (fun now ->
      let q = Serve.Quota.create (Serve.Quota.policy ~burst:2. ~rate_per_s:1. ()) in
      check Alcotest.bool "1st admitted" true (Serve.Quota.admit q "a" = Serve.Quota.Admit);
      check Alcotest.bool "2nd admitted" true (Serve.Quota.admit q "a" = Serve.Quota.Admit);
      (match Serve.Quota.admit q "a" with
      | Serve.Quota.Admit -> Alcotest.fail "3rd must be rejected"
      | Serve.Quota.Reject { retry_after_ms } ->
        (* empty bucket at 1 token/s: a full token is ~1s away *)
        check Alcotest.bool "retry hint sane" true
          (retry_after_ms > 0 && retry_after_ms <= 1000));
      (* other sessions are unaffected *)
      check Alcotest.bool "b admitted" true (Serve.Quota.admit q "b" = Serve.Quota.Admit);
      check Alcotest.int "two sessions" 2 (Serve.Quota.sessions q);
      (* refill: 1.5 s buys one token back *)
      advance_ms now 1500;
      check Alcotest.bool "refilled" true (Serve.Quota.admit q "a" = Serve.Quota.Admit);
      match Serve.Quota.admit q "a" with
      | Serve.Quota.Admit -> Alcotest.fail "only one token refilled"
      | Serve.Quota.Reject _ -> ())

(* ------------------------- live server ---------------------------- *)

let with_server ?quota ?(queue_bound = 8) ?(workers = 1) f =
  Guard.Chaos.disarm ();
  let cfg =
    Serve.Server.config ~workers ~queue_bound ~timeout_ms:5000 ?quota
      ~graphs:[ ("default", Paper_examples.example_21_g') ]
      ()
  in
  let srv = Serve.Server.create cfg in
  let sfd, cfd = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let server = Domain.spawn (fun () -> Serve.Server.run srv ~adopt:[ sfd ] ()) in
  let client = Serve.Client.of_fd cfd in
  Fun.protect
    ~finally:(fun () ->
      Guard.Chaos.disarm ();
      Serve.Server.shutdown srv;
      Domain.join server;
      Serve.Client.close client)
    (fun () ->
      (match Serve.Client.greeting ~timeout_ms:5000 client with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "no greeting: %s" e);
      f srv client)

let recv_ok client =
  match Serve.Client.recv ~timeout_ms:5000 client with
  | Ok r -> r
  | Error e -> Alcotest.failf "recv: %s" e

let send_ok client req =
  match Serve.Client.send client req with
  | Ok () -> ()
  | Error e -> Alcotest.failf "send: %s" e

let eval_req ?session id =
  P.request ~id:(Obs.Json.Int id) ?session
    ~query:"Q(x, y) :- x -[(ab)*]-> y, y -[c*]-> x" P.Eval

let ping_pongs client =
  send_ok client (P.request ~id:(Obs.Json.Int 999) P.Ping);
  let resp = recv_ok client in
  check Alcotest.bool "pong" true
    (resp.P.status = P.Ok_ && resp.P.id = Obs.Json.Int 999)

(* read the serve.* counter section out of a stats response *)
let serve_counter client name =
  send_ok client (P.request ~id:(Obs.Json.Int 0) P.Stats);
  let resp = recv_ok client in
  match List.assoc_opt "serve" resp.P.body with
  | Some (Obs.Json.Obj fields) -> (
    match List.assoc_opt name fields with
    | Some (Obs.Json.Int n) -> n
    | _ -> 0)
  | _ -> Alcotest.fail "stats lacks serve section"

let test_chaos_accept_sheds () =
  with_server (fun _srv client ->
      Guard.Chaos.arm [ ("serve.accept", 1) ];
      send_ok client (eval_req 1);
      let resp = recv_ok client in
      check Alcotest.bool "shed status" true (resp.P.status = P.Shed);
      check Alcotest.bool "id echoed" true (resp.P.id = Obs.Json.Int 1);
      (match List.assoc_opt "retry_after_ms" resp.P.body with
      | Some (Obs.Json.Int ms) ->
        check Alcotest.bool "retry hint" true (ms > 0)
      | _ -> Alcotest.fail "shed lacks retry_after_ms");
      (* the admission path died once; the daemon is still serving *)
      send_ok client (eval_req 2);
      let resp = recv_ok client in
      check Alcotest.bool "next request ok" true (resp.P.status = P.Ok_))

let test_chaos_dispatch_retries () =
  with_server (fun _srv client ->
      let before = serve_counter client "serve.retried" in
      Guard.Chaos.arm [ ("serve.dispatch", 1) ];
      send_ok client (eval_req 1);
      let resp = recv_ok client in
      (* attempt 1 is killed, the jittered retry's attempt 2 succeeds *)
      check Alcotest.bool "recovered to ok" true (resp.P.status = P.Ok_);
      Guard.Chaos.disarm ();
      let after = serve_counter client "serve.retried" in
      check Alcotest.bool "serve.retried grew" true (after > before))

let test_chaos_worker_exhausts_retries () =
  with_server (fun _srv client ->
      let before = serve_counter client "serve.unknown" in
      (* kill all three attempts: the server gives up with a structured
         unknown, not a crash *)
      Guard.Chaos.arm
        [ ("serve.worker", 1); ("serve.worker", 2); ("serve.worker", 3) ];
      send_ok client (eval_req 1);
      let resp = recv_ok client in
      check Alcotest.bool "unknown status" true (resp.P.status = P.Unknown);
      (match List.assoc_opt "reason" resp.P.body with
      | Some reason -> (
        match Obs.Json.member "kind" reason with
        | Some (Obs.Json.String "fault-injected") -> ()
        | other ->
          Alcotest.failf "reason kind: %s"
            (match other with
            | Some j -> Obs.Json.to_string j
            | None -> "missing"))
      | None -> Alcotest.fail "unknown lacks reason");
      Guard.Chaos.disarm ();
      let after = serve_counter client "serve.unknown" in
      check Alcotest.bool "serve.unknown grew" true (after > before);
      (* visit counters moved past the armed rules: next request is fine *)
      send_ok client (eval_req 2);
      let resp = recv_ok client in
      check Alcotest.bool "daemon survived" true (resp.P.status = P.Ok_);
      ping_pongs client)

let test_queue_bound_sheds_burst () =
  with_server ~queue_bound:1 (fun _srv client ->
      let n = 30 in
      for i = 1 to n do
        send_ok client (eval_req i)
      done;
      let ok = ref 0 and shed = ref 0 in
      for _ = 1 to n do
        let resp = recv_ok client in
        match resp.P.status with
        | P.Ok_ -> incr ok
        | P.Shed -> incr shed
        | s ->
          Alcotest.failf "unexpected status %s" (P.status_to_string s)
      done;
      (* the single worker cannot drain a 30-deep burst through a
         1-slot queue: most of it sheds, but every frame is answered *)
      check Alcotest.int "every request answered" n (!ok + !shed);
      check Alcotest.bool "some ok" true (!ok >= 1);
      check Alcotest.bool "some shed" true (!shed >= 1);
      check Alcotest.bool "serve.shed counter" true
        (serve_counter client "serve.shed" >= !shed))

let test_quota_rejects_over_budget () =
  with_fake_clock (fun now ->
      let quota = Serve.Quota.policy ~burst:1. ~rate_per_s:1. () in
      with_server ~quota (fun _srv client ->
          send_ok client (eval_req ~session:"s1" 1);
          let resp = recv_ok client in
          check Alcotest.bool "first ok" true (resp.P.status = P.Ok_);
          send_ok client (eval_req ~session:"s1" 2);
          let resp = recv_ok client in
          check Alcotest.bool "second over quota" true (resp.P.status = P.Quota);
          (match List.assoc_opt "retry_after_ms" resp.P.body with
          | Some (Obs.Json.Int ms) ->
            check Alcotest.bool "retry hint" true (ms > 0 && ms <= 1000)
          | _ -> Alcotest.fail "quota lacks retry_after_ms");
          (* a different session has its own bucket *)
          send_ok client (eval_req ~session:"s2" 3);
          let resp = recv_ok client in
          check Alcotest.bool "other session ok" true (resp.P.status = P.Ok_);
          (* ping bypasses the quota entirely *)
          ping_pongs client;
          (* refill on the fake clock readmits the throttled session *)
          advance_ms now 1500;
          send_ok client (eval_req ~session:"s1" 4);
          let resp = recv_ok client in
          check Alcotest.bool "refilled ok" true (resp.P.status = P.Ok_)))

let test_shutdown_drains () =
  with_server (fun srv client ->
      for i = 1 to 5 do
        send_ok client (eval_req i)
      done;
      (* give the accept loop a beat to enqueue, then drain *)
      Unix.sleepf 0.05;
      Serve.Server.shutdown srv;
      (* whatever made it in-flight answers well-formed before EOF; the
         join in with_server's finally proves the drain terminates *)
      let rec read_rest n =
        match Serve.Client.recv ~timeout_ms:3000 client with
        | Ok resp ->
          check Alcotest.bool
            (Printf.sprintf "drained response %d well-formed" n)
            true
            (match resp.P.status with
            | P.Ok_ | P.Unknown | P.Shed -> true
            | _ -> false);
          read_rest (n + 1)
        | Error _ -> ()
      in
      read_rest 1;
      check Alcotest.bool "draining flag" true (Serve.Server.draining srv))

let () =
  Alcotest.run "serve-chaos"
    [
      ( "squeue",
        [
          Alcotest.test_case "bounds and fifo" `Quick test_squeue_bounds;
          Alcotest.test_case "close drains" `Quick test_squeue_close;
        ] );
      ( "quota",
        [
          Alcotest.test_case "policy validation" `Quick
            test_quota_policy_validation;
          Alcotest.test_case "token bucket" `Quick test_quota_bucket;
        ] );
      ( "chaos",
        [
          Alcotest.test_case "accept trip sheds, daemon lives" `Quick
            test_chaos_accept_sheds;
          Alcotest.test_case "dispatch trip retries to ok" `Quick
            test_chaos_dispatch_retries;
          Alcotest.test_case "worker trips exhaust retries to unknown" `Quick
            test_chaos_worker_exhausts_retries;
        ] );
      ( "pressure",
        [
          Alcotest.test_case "queue bound sheds burst" `Quick
            test_queue_bound_sheds_burst;
          Alcotest.test_case "quota rejects over budget" `Quick
            test_quota_rejects_over_budget;
        ] );
      ( "drain",
        [ Alcotest.test_case "shutdown drains in-flight" `Quick test_shutdown_drains ] );
    ]
