(* Shared generators and helpers for the test suite. *)

(* INJCRPQ_OPTIMIZE=on forces the certified-optimizer pre-pass into
   every Eval / Containment entry point for the whole test process.
   CI runs a tier-1 leg with it set: since applied rewrites are
   containment-certified, the suite must pass unchanged. *)
let () =
  match Sys.getenv_opt "INJCRPQ_OPTIMIZE" with
  | Some ("on" | "1" | "true") -> Analysis.install_preprocessor ()
  | _ -> ()

(* Deterministic qcheck seeding: QCHECK_SEED pins the whole run;
   otherwise one seed is drawn per process.  Every qtest derives its
   random state from this seed, and a failing test prints the seed so
   the counterexample can be replayed with QCHECK_SEED=<n>. *)
let seed =
  match Option.bind (Sys.getenv_opt "QCHECK_SEED") int_of_string_opt with
  | Some n -> n
  | None ->
    Random.self_init ();
    Random.int 1_000_000_000

let rng_of_seed () = Random.State.make [| seed |]

let qtest ?(count = 100) name gen prop =
  let test_name, speed, run =
    QCheck_alcotest.to_alcotest ~rand:(rng_of_seed ())
      (QCheck2.Test.make ~count ~name gen prop)
  in
  ( test_name,
    speed,
    fun arg ->
      try run arg
      with e ->
        Printf.eprintf "[qcheck] %s failed; reproduce with QCHECK_SEED=%d\n%!"
          name seed;
        raise e )

(* ---------------- regex generators ---------------- *)

let gen_symbol = QCheck2.Gen.oneofl [ "a"; "b"; "c" ]

let gen_regex ?(max_depth = 3) ?(cls = Crpq.Class_crpq) () =
  let open QCheck2.Gen in
  let rec go depth =
    if depth = 0 || cls = Crpq.Class_cq then map Regex.sym gen_symbol
    else begin
      let sub = go (depth - 1) in
      let base =
        [
          (3, map Regex.sym gen_symbol);
          (2, map2 Regex.seq sub sub);
          (2, map2 Regex.alt sub sub);
          (1, map Regex.opt sub);
          (1, return Regex.eps);
        ]
      in
      let starred =
        match cls with
        | Crpq.Class_crpq ->
          [ (1, map Regex.star sub); (1, map Regex.plus sub) ]
        | Crpq.Class_fin | Crpq.Class_cq -> []
      in
      frequency (base @ starred)
    end
  in
  go max_depth

let gen_word ?(max_len = 6) () =
  QCheck2.Gen.(list_size (int_bound max_len) gen_symbol)

(* ---------------- graph generators ---------------- *)

let gen_graph ?(max_nodes = 5) ?(labels = [ "a"; "b"; "c" ]) () =
  let open QCheck2.Gen in
  let* n = int_range 1 max_nodes in
  let gen_edge =
    let* u = int_bound (n - 1) in
    let* v = int_bound (n - 1) in
    let* l = oneofl labels in
    return (u, l, v)
  in
  let* edges = list_size (int_bound (3 * n)) gen_edge in
  return (Graph.make ~nnodes:n edges)

(* ---------------- query generators ---------------- *)

let gen_crpq ?(cls = Crpq.Class_crpq) ?(max_atoms = 3) ?(max_vars = 3)
    ?(arity = 0) () =
  let open QCheck2.Gen in
  let* nvars = int_range 2 max_vars in
  let var i = Printf.sprintf "v%d" i in
  let gen_atom =
    let* s = int_bound (nvars - 1) in
    let* t = int_bound (nvars - 1) in
    let* lang = gen_regex ~max_depth:2 ~cls () in
    return (Crpq.atom (var s) lang (var t))
  in
  let* natoms = int_range 1 max_atoms in
  let* atoms = list_repeat natoms gen_atom in
  let free = List.init arity (fun i -> var (i mod nvars)) in
  return (Crpq.make ~free atoms)

let gen_cq ?(max_atoms = 4) ?(max_vars = 4) ?(arity = 0) () =
  let open QCheck2.Gen in
  let* q = gen_crpq ~cls:Crpq.Class_cq ~max_atoms ~max_vars ~arity () in
  match Crpq.to_cq q with
  | Some cq -> return cq
  | None -> assert false

(* ---------------- pretty-printers for qcheck messages ------------- *)

let print_regex = Regex.to_string

let print_graph g = Format.asprintf "%a" Graph.pp g

let print_crpq = Crpq.to_string

let print_pair_crpq (q1, q2) =
  Printf.sprintf "Q1 = %s ; Q2 = %s" (Crpq.to_string q1) (Crpq.to_string q2)
