(* The resource-governance layer: fuel/deadline/depth/cancellation trip
   semantics, the chaos fault injector, the run/supervise boundaries,
   and the end-to-end guarantee that the deciders degrade to a
   structured Unknown instead of hanging or raising.

   Chaos state is pinned explicitly in every test (armed or disarmed),
   so this binary is deterministic even when the whole suite runs under
   INJCRPQ_CHAOS (the CI chaos step). *)

let check = Alcotest.check

let no_chaos f () =
  Guard.Chaos.disarm ();
  f ()

let with_chaos rules f () =
  Guard.Chaos.arm rules;
  Fun.protect ~finally:Guard.Chaos.disarm f

let trip_reason f =
  match f () with _ -> None | exception Guard.Trip t -> Some t

(* ------------------------------------------------------------------ *)
(* Core trip semantics                                                 *)
(* ------------------------------------------------------------------ *)

let test_unguarded_noop () =
  (* no ambient guard: checkpoints and descends are transparent *)
  check Alcotest.bool "no ambient guard" true (Guard.active () = None);
  Guard.checkpoint "test.nowhere";
  check Alcotest.int "descend transparent" 5
    (Guard.descend "test.nowhere" (fun () -> 5))

let test_fuel () =
  let g = Guard.create ~fuel:3 () in
  Guard.with_guard g (fun () ->
      for _ = 1 to 3 do
        Guard.checkpoint "test.fuel"
      done);
  (* the budget is spent: one more checkpoint trips *)
  (match
     trip_reason (fun () ->
         Guard.with_guard g (fun () -> Guard.checkpoint "test.fuel"))
   with
  | Some { Guard.site = "test.fuel"; reason = Guard.Fuel_exhausted { budget } }
    ->
    check Alcotest.int "budget reported" 3 budget
  | Some t -> Alcotest.failf "wrong trip: %s" (Guard.trip_to_string t)
  | None -> Alcotest.fail "fuel 3 must trip on the 4th checkpoint");
  (* the trip is recorded on the guard *)
  match Guard.last_trip g with
  | Some { Guard.reason = Guard.Fuel_exhausted _; _ } -> ()
  | _ -> Alcotest.fail "last_trip not recorded"

let test_fuel_zero () =
  let g = Guard.create ~fuel:0 () in
  match
    trip_reason (fun () ->
        Guard.with_guard g (fun () -> Guard.checkpoint "test.fuel0"))
  with
  | Some { Guard.reason = Guard.Fuel_exhausted { budget = 0 }; _ } -> ()
  | _ -> Alcotest.fail "fuel 0 must trip at the first checkpoint"

let test_deadline_fake_clock () =
  (* drive the guard's clock by hand: trips exactly when the source
     passes start + budget *)
  let now = ref 0L in
  Obs.Clock.set_source ~name:"test-fake" (fun () -> !now);
  Fun.protect ~finally:Obs.Clock.reset_source (fun () ->
      let g = Guard.create ~deadline_ms:5 () in
      Guard.with_guard g (fun () ->
          Guard.checkpoint "test.deadline";
          now := 4_999_999L;
          Guard.checkpoint "test.deadline";
          now := 5_000_000L;
          match trip_reason (fun () -> Guard.checkpoint "test.deadline") with
          | Some
              {
                Guard.site = "test.deadline";
                reason = Guard.Deadline_exceeded { budget_ms; elapsed_ns };
              } ->
            check Alcotest.int "budget" 5 budget_ms;
            check Alcotest.bool "elapsed" true (elapsed_ns = 5_000_000L)
          | _ -> Alcotest.fail "deadline must trip once the clock passes it"))

let test_deadline_zero () =
  (* a 0ms budget trips at the very first checkpoint, on the real clock *)
  let g = Guard.create ~deadline_ms:0 () in
  match
    trip_reason (fun () ->
        Guard.with_guard g (fun () -> Guard.checkpoint "test.dl0"))
  with
  | Some { Guard.reason = Guard.Deadline_exceeded _; _ } -> ()
  | _ -> Alcotest.fail "deadline 0 must trip at the first checkpoint"

let test_depth () =
  let g = Guard.create ~max_depth:2 () in
  Guard.with_guard g (fun () ->
      Guard.descend "test.depth" (fun () ->
          Guard.descend "test.depth" (fun () -> ())));
  (* the ceiling is restored on the way out, so the same nesting works
     again; one level deeper trips *)
  match
    trip_reason (fun () ->
        Guard.with_guard g (fun () ->
            Guard.descend "test.depth" (fun () ->
                Guard.descend "test.depth" (fun () ->
                    Guard.descend "test.depth" (fun () -> ())))))
  with
  | Some { Guard.reason = Guard.Depth_exceeded { limit = 2 }; _ } -> ()
  | _ -> Alcotest.fail "third nested descend must trip"

let test_cancel () =
  let tok = Guard.Cancel.create ~label:"driver" () in
  check Alcotest.bool "fresh token" false (Guard.Cancel.cancelled tok);
  let g = Guard.create ~cancel:tok () in
  match
    trip_reason (fun () ->
        Guard.with_guard g (fun () ->
            Guard.checkpoint "test.cancel";
            Guard.Cancel.cancel tok;
            Guard.checkpoint "test.cancel"))
  with
  | Some { Guard.reason = Guard.Cancelled { label = "driver" }; _ } ->
    check Alcotest.bool "token reads cancelled" true
      (Guard.Cancel.cancelled tok)
  | _ -> Alcotest.fail "cancelled token must trip the next checkpoint"

let test_create_validation () =
  let rejects what f =
    check Alcotest.bool what true
      (match f () with exception Invalid_argument _ -> true | _ -> false)
  in
  rejects "negative deadline" (fun () -> Guard.create ~deadline_ms:(-1) ());
  rejects "negative fuel" (fun () -> Guard.create ~fuel:(-2) ());
  rejects "negative depth" (fun () -> Guard.create ~max_depth:(-3) ())

let test_ambient_nesting () =
  let is g = match Guard.active () with Some x -> x == g | None -> false in
  let g1 = Guard.unlimited () and g2 = Guard.unlimited () in
  Guard.with_guard g1 (fun () ->
      check Alcotest.bool "outer installed" true (is g1);
      Guard.with_guard g2 (fun () ->
          check Alcotest.bool "inner shadows" true (is g2));
      check Alcotest.bool "outer restored" true (is g1);
      (* restoration also survives an exception *)
      (try
         Guard.with_guard g2 (fun () -> failwith "boom")
       with Failure _ -> ());
      check Alcotest.bool "restored after raise" true (is g1));
  check Alcotest.bool "cleared at the end" true (Guard.active () = None)

(* ------------------------------------------------------------------ *)
(* Boundaries: run and supervise                                       *)
(* ------------------------------------------------------------------ *)

let test_run () =
  (match Guard.run (fun () -> 42) with
  | Ok v -> check Alcotest.int "plain value" 42 v
  | Error t -> Alcotest.failf "unexpected trip: %s" (Guard.trip_to_string t));
  (match
     Guard.run
       ~guard:(Guard.create ~fuel:0 ())
       (fun () ->
         Guard.checkpoint "test.run";
         1)
   with
  | Error { Guard.site = "test.run"; reason = Guard.Fuel_exhausted _ } -> ()
  | _ -> Alcotest.fail "run must surface the trip as Error");
  (* stack exhaustion is caught at the boundary *)
  match Guard.run (fun () -> raise Stack_overflow) with
  | Error { Guard.reason = Guard.Stack_exhausted; _ } -> ()
  | _ -> Alcotest.fail "run must catch Stack_overflow"

let test_run_no_retry () =
  (* run is the observable boundary: injected faults surface *)
  match
    Guard.run (fun () ->
        Guard.checkpoint "test.norerun";
        0)
  with
  | Error { Guard.reason = Guard.Fault_injected { visit = 1 }; _ } -> ()
  | _ -> Alcotest.fail "run must not retry an injected fault"

let test_supervise_retry () =
  (* supervise absorbs the injected trip and re-runs to completion *)
  let attempts = ref 0 in
  (match
     Guard.supervise (fun () ->
         incr attempts;
         Guard.checkpoint "test.sup";
         Guard.checkpoint "test.sup";
         7)
   with
  | Ok v -> check Alcotest.int "recovered value" 7 v
  | Error t -> Alcotest.failf "unrecovered: %s" (Guard.trip_to_string t));
  check Alcotest.int "retried once" 2 !attempts;
  check
    Alcotest.(list (pair string int))
    "trip recorded"
    [ ("test.sup", 1) ]
    (Guard.Chaos.tripped ())

let test_supervise_real_trips () =
  (* real exhaustion is never retried *)
  let attempts = ref 0 in
  match
    Guard.supervise
      ~guard:(Guard.create ~fuel:0 ())
      (fun () ->
        incr attempts;
        Guard.checkpoint "test.supfuel")
  with
  | Error { Guard.reason = Guard.Fuel_exhausted _; _ } ->
    check Alcotest.int "single attempt" 1 !attempts
  | _ -> Alcotest.fail "fuel trip must surface from supervise"

(* ------------------------------------------------------------------ *)
(* Chaos: arming, matching, bookkeeping                                *)
(* ------------------------------------------------------------------ *)

let test_chaos_needs_guard () =
  (* without an ambient guard, armed chaos never fires (unguarded
     low-level calls in other tests stay deterministic) *)
  Guard.checkpoint "test.chaos.unguarded";
  check Alcotest.int "no visit counted" 0
    (Guard.Chaos.visits "test.chaos.unguarded")

let test_chaos_exact_and_visit () =
  let g = Guard.unlimited () in
  Guard.with_guard g (fun () ->
      Guard.checkpoint "test.chaos.other";
      Guard.checkpoint "test.chaos.hit";
      (* armed for visit 2 of this site *)
      match trip_reason (fun () -> Guard.checkpoint "test.chaos.hit") with
      | Some { Guard.reason = Guard.Fault_injected { visit = 2 }; site } ->
        check Alcotest.string "site" "test.chaos.hit" site
      | _ -> Alcotest.fail "rule must fire on the 2nd visit");
  check Alcotest.int "visits counted" 2 (Guard.Chaos.visits "test.chaos.hit");
  check Alcotest.int "other site untouched" 1
    (Guard.Chaos.visits "test.chaos.other")

let test_chaos_wildcards () =
  Guard.Chaos.arm [ ("alpha.*", 1) ];
  Fun.protect ~finally:Guard.Chaos.disarm (fun () ->
      let g = Guard.unlimited () in
      Guard.with_guard g (fun () ->
          Guard.checkpoint "beta.x";
          (match trip_reason (fun () -> Guard.checkpoint "alpha.x") with
          | Some { Guard.reason = Guard.Fault_injected _; _ } -> ()
          | _ -> Alcotest.fail "prefix wildcard must match alpha.x")));
  Guard.Chaos.arm [ ("*", 1) ];
  Fun.protect ~finally:Guard.Chaos.disarm (fun () ->
      let g = Guard.unlimited () in
      Guard.with_guard g (fun () ->
          match trip_reason (fun () -> Guard.checkpoint "anything.at.all") with
          | Some { Guard.reason = Guard.Fault_injected _; _ } -> ()
          | _ -> Alcotest.fail "star must match every site"))

let test_chaos_spec_parsing () =
  Fun.protect ~finally:Guard.Chaos.disarm (fun () ->
      (match Guard.Chaos.arm_spec "guard:foo.bar:2,guard:baz*:1" with
      | Ok () -> check Alcotest.bool "armed" true (Guard.Chaos.active ())
      | Error e -> Alcotest.failf "valid spec rejected: %s" e);
      List.iter
        (fun s ->
          check Alcotest.bool
            (Printf.sprintf "%S rejected" s)
            true
            (match Guard.Chaos.arm_spec s with
            | Error _ -> true
            | Ok () -> false))
        [ ""; "guard:foo"; "guard:foo:0"; "guard::1"; "chaos:foo:1"; "guard:foo:x" ])

(* ------------------------------------------------------------------ *)
(* Every guarded site: chaos-trip it, prove the path recovers          *)
(* ------------------------------------------------------------------ *)

let q = Crpq.parse

let nfa s = Nfa.of_regex (Regex.parse s)

let target_graph =
  Graph.make ~nnodes:4
    [ (0, "a", 1); (1, "b", 2); (2, "a", 3); (0, "a", 2); (1, "a", 3) ]

(* each workload reaches the named checkpoint; armed chaos trips it on
   the first visit and supervise (ours or the decider's own boundary)
   must recover and complete *)
let site_workloads =
  [
    ( "regex.enumerate",
      fun () -> ignore (Regex.enumerate ~max_len:4 (Regex.parse "(a|b)*")) );
    ("nfa.product", fun () -> ignore (Nfa.product (nfa "(ab)*") (nfa "(a|b)*")));
    ("dfa.determinize", fun () -> ignore (Dfa.of_nfa (nfa "(a|b)*a(a|b)")));
    ( "dfa.product",
      fun () ->
        ignore (Dfa.intersect (Dfa.of_nfa (nfa "(ab)*")) (Dfa.of_nfa (nfa "(a|b)*"))) );
    ( "morphism.search",
      fun () ->
        ignore
          (Morphism.subgraph_iso
             ~pattern:(Graph.make ~nnodes:2 [ (0, "a", 1) ])
             ~target:target_graph) );
    ( "path_search.product",
      fun () -> ignore (Path_search.reachable target_graph (nfa "(a|b)*") 0) );
    ( "path_search.simple",
      fun () ->
        ignore (Path_search.all_simple target_graph (nfa "(a|b)*") ~src:0 ~dst:3)
    );
    ( "path_search.trail",
      fun () ->
        ignore (Path_search.find_trail target_graph (nfa "(a|b)*") ~src:0 ~dst:3)
    );
    ( "expansion.profiles",
      fun () ->
        ignore (Expansion.profiles ~max_len:2 (q "x -[a+]-> y, y -[b*]-> z")) );
    ( "expansion.partitions",
      fun () -> ignore (Expansion.ainj_expansions ~max_len:2 (q "x -[a+]-> y")) );
    ( "containment.decide",
      fun () ->
        ignore (Containment.decide Semantics.St (q "x -[a]-> y") (q "x -[a]-> y"))
    );
    ( "containment.search",
      fun () ->
        ignore
          (Containment.bounded Semantics.Q_inj ~max_len:2
             (q "x -[ab]-> y, y -[a+]-> z")
             (q "x -[(a|b)+]-> z")) );
    ( "ucrpq.contained",
      fun () ->
        ignore
          (Ucrpq.contained Semantics.St
             (Ucrpq.of_crpq (q "x -[ab]-> y"))
             (Ucrpq.of_crpq (q "x -[a]-> y"))) );
    ( "ucrpq.search",
      fun () ->
        ignore
          (Ucrpq.contained Semantics.St
             (Ucrpq.of_crpq (q "x -[ab]-> y"))
             (Ucrpq.of_crpq (q "x -[a]-> y"))) );
    ( "qinj.tracker",
      fun () ->
        ignore (Containment_qinj.decide (q "x -[(ab)+]-> y") (q "x -[(a|b)+]-> y"))
    );
    ( "qinj.types",
      fun () ->
        ignore (Containment_qinj.decide (q "x -[(ab)+]-> y") (q "x -[(a|b)+]-> y"))
    );
    ( "qinj.abstractions",
      fun () ->
        ignore (Containment_qinj.decide (q "x -[(ab)+]-> y") (q "x -[(a|b)+]-> y"))
    );
    ( "f7.window",
      fun () ->
        ignore (Containment_f7.decide_st (q "x -[a*ba*]-> y") (q "u -[b]-> v")) );
    ( "f7.middle",
      fun () ->
        ignore (Containment_f7.decide_st (q "x -[a*ba*]-> y") (q "u -[b]-> v")) );
    ( "f7.enumerate",
      fun () ->
        ignore (Containment_f7.decide_st (q "x -[a*ba*]-> y") (q "u -[b]-> v")) );
  ]

let exercise_site (site, work) () =
  Guard.Chaos.arm [ (site, 1) ];
  Fun.protect ~finally:Guard.Chaos.disarm (fun () ->
      (match Guard.supervise work with
      | Ok _ -> ()
      | Error t ->
        Alcotest.failf "site %s: unrecovered trip: %s" site
          (Guard.trip_to_string t));
      check Alcotest.bool (site ^ " reached") true (Guard.Chaos.visits site > 0);
      check Alcotest.bool (site ^ " tripped") true
        (List.mem_assoc site (Guard.Chaos.tripped ())))

(* ------------------------------------------------------------------ *)
(* Deciders under exhausted budgets: always a structured Unknown       *)
(* ------------------------------------------------------------------ *)

let gen_pair =
  QCheck2.Gen.pair (Testutil.gen_crpq ()) (Testutil.gen_crpq ())

let is_resource_exhausted = function
  | Containment.Unknown (Containment.Resource_exhausted _) -> true
  | _ -> false

let prop_fuel0_unknown =
  Testutil.qtest ~count:60 "decide under 1-step fuel is always Unknown"
    QCheck2.(Gen.pair gen_pair (Gen.oneofl Semantics.node_semantics))
    (fun ((q1, q2), sem) ->
      Guard.Chaos.disarm ();
      let guard = Guard.create ~fuel:0 () in
      is_resource_exhausted (Containment.decide ~guard sem q1 q2))

let prop_fuel1_no_raise =
  Testutil.qtest ~count:60 "decide under tiny fuel never raises"
    QCheck2.(Gen.pair gen_pair (Gen.oneofl Semantics.node_semantics))
    (fun ((q1, q2), sem) ->
      Guard.Chaos.disarm ();
      let guard = Guard.create ~fuel:1 () in
      match Containment.decide ~guard sem q1 q2 with
      | Containment.Contained | Containment.Not_contained _
      | Containment.Unknown _ ->
        true)

let test_deadline0_unknown () =
  Guard.Chaos.disarm ();
  let guard = Guard.create ~deadline_ms:0 () in
  let v =
    Containment.decide ~guard Semantics.A_inj
      (q "x -[a+]-> y, y -[b]-> z")
      (q "x -[(a|b)+]-> z")
  in
  (match v with
  | Containment.Unknown (Containment.Resource_exhausted trip) ->
    check Alcotest.string "deadline reason" "deadline"
      (Guard.reason_kind trip.Guard.reason)
  | _ -> Alcotest.fail "0ms deadline must yield Resource_exhausted");
  (* the union layer degrades the same way *)
  let guard = Guard.create ~fuel:0 () in
  check Alcotest.bool "ucrpq degrades" true
    (is_resource_exhausted
       (Ucrpq.contained ~guard Semantics.St
          (Ucrpq.of_crpq (q "x -[a+]-> y"))
          (Ucrpq.of_crpq (q "x -[a*]-> y"))))

(* ------------------------------------------------------------------ *)
(* Retry: jittered exponential backoff                                  *)
(* ------------------------------------------------------------------ *)

let fault_trip site = { Guard.site; reason = Guard.Fault_injected { visit = 1 } }

let fuel_trip site = { Guard.site; reason = Guard.Fuel_exhausted { budget = 0 } }

let test_retry_delay_deterministic () =
  let p = Guard.Retry.policy ~base_delay_ms:100 ~multiplier:2.0 ~jitter:0.5 () in
  (* same (policy, seed, attempt) always yields the same delay *)
  for attempt = 1 to 5 do
    check Alcotest.int
      (Printf.sprintf "attempt %d reproducible" attempt)
      (Guard.Retry.delay_ms p ~seed:42 ~attempt)
      (Guard.Retry.delay_ms p ~seed:42 ~attempt)
  done;
  (* jitter only shrinks the exponential base, and never below half *)
  for attempt = 1 to 5 do
    let full = 100. *. (2. ** float_of_int (attempt - 1)) in
    let full = int_of_float (Float.min full 1000.) in
    let d = Guard.Retry.delay_ms p ~seed:7 ~attempt in
    if d > full || d < full / 2 then
      Alcotest.failf "attempt %d: delay %d outside [%d, %d]" attempt d
        (full / 2) full
  done;
  (* different seeds give a different schedule somewhere *)
  let schedule seed =
    List.init 6 (fun i -> Guard.Retry.delay_ms p ~seed ~attempt:(i + 1))
  in
  check Alcotest.bool "seeds decorrelate" true (schedule 1 <> schedule 2);
  (* the cap holds for late attempts *)
  check Alcotest.bool "cap holds" true
    (Guard.Retry.delay_ms p ~seed:3 ~attempt:30 <= 1000)

let test_retry_transient () =
  check Alcotest.bool "fault-injected is transient" true
    (Guard.Retry.transient (fault_trip "test.retry"));
  check Alcotest.bool "fuel is not transient" false
    (Guard.Retry.transient (fuel_trip "test.retry"));
  check Alcotest.bool "cancelled is not transient" false
    (Guard.Retry.transient
       { Guard.site = "s"; reason = Guard.Cancelled { label = "l" } })

let test_retry_recovers () =
  let p = Guard.Retry.policy ~max_attempts:3 ~base_delay_ms:10 () in
  let sleeps = ref [] in
  let sleep ms = sleeps := ms :: !sleeps in
  let calls = ref 0 in
  let f () =
    incr calls;
    if !calls < 3 then Error (fault_trip "test.retry") else Ok "done"
  in
  let result, attempts = Guard.Retry.run ~policy:p ~seed:5 ~sleep f in
  check Alcotest.(result string reject) "recovered" (Ok "done") result;
  check Alcotest.int "three attempts" 3 attempts;
  (* the recorded sleeps are exactly the deterministic schedule *)
  check
    Alcotest.(list int)
    "sleep schedule"
    [
      Guard.Retry.delay_ms p ~seed:5 ~attempt:1;
      Guard.Retry.delay_ms p ~seed:5 ~attempt:2;
    ]
    (List.rev !sleeps)

let test_retry_gives_up () =
  let p = Guard.Retry.policy ~max_attempts:3 ~base_delay_ms:1 () in
  let calls = ref 0 in
  let f () =
    incr calls;
    Error (fault_trip "test.retry")
  in
  let result, attempts =
    Guard.Retry.run ~policy:p ~seed:1 ~sleep:(fun _ -> ()) f
  in
  (match result with
  | Error { Guard.reason = Guard.Fault_injected _; _ } -> ()
  | _ -> Alcotest.fail "must surface the last trip");
  check Alcotest.int "attempt budget spent" 3 attempts;
  check Alcotest.int "function called thrice" 3 !calls

let test_retry_permanent_trips_do_not_retry () =
  let calls = ref 0 in
  let f () =
    incr calls;
    Error (fuel_trip "test.retry")
  in
  let result, attempts = Guard.Retry.run ~sleep:(fun _ -> ()) f in
  (match result with
  | Error { Guard.reason = Guard.Fuel_exhausted _; _ } -> ()
  | _ -> Alcotest.fail "fuel trip must pass through");
  check Alcotest.int "single attempt" 1 attempts;
  check Alcotest.int "called once" 1 !calls

let test_retry_custom_retryable () =
  (* a custom predicate can widen the policy to real trips *)
  let calls = ref 0 in
  let f () =
    incr calls;
    if !calls = 1 then Error (fuel_trip "test.retry") else Ok ()
  in
  let retryable = function
    | { Guard.reason = Guard.Fuel_exhausted _; _ } -> true
    | _ -> false
  in
  let result, attempts = Guard.Retry.run ~retryable ~sleep:(fun _ -> ()) f in
  check Alcotest.bool "recovered" true (result = Ok ());
  check Alcotest.int "two attempts" 2 attempts

let test_retry_validation () =
  (match Guard.Retry.policy ~max_attempts:0 () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "max_attempts 0 must be rejected");
  match Guard.Retry.delay_ms Guard.Retry.default ~seed:0 ~attempt:0 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "attempt 0 must be rejected"

let () =
  Alcotest.run "guard"
    [
      ( "trips",
        [
          Alcotest.test_case "unguarded no-op" `Quick (no_chaos test_unguarded_noop);
          Alcotest.test_case "fuel" `Quick (no_chaos test_fuel);
          Alcotest.test_case "fuel zero" `Quick (no_chaos test_fuel_zero);
          Alcotest.test_case "deadline (fake clock)" `Quick
            (no_chaos test_deadline_fake_clock);
          Alcotest.test_case "deadline zero" `Quick (no_chaos test_deadline_zero);
          Alcotest.test_case "depth" `Quick (no_chaos test_depth);
          Alcotest.test_case "cancellation" `Quick (no_chaos test_cancel);
          Alcotest.test_case "create validation" `Quick
            (no_chaos test_create_validation);
          Alcotest.test_case "ambient nesting" `Quick
            (no_chaos test_ambient_nesting);
        ] );
      ( "boundaries",
        [
          Alcotest.test_case "run" `Quick (no_chaos test_run);
          Alcotest.test_case "run does not retry chaos" `Quick
            (with_chaos [ ("test.norerun", 1) ] test_run_no_retry);
          Alcotest.test_case "supervise retries chaos" `Quick
            (with_chaos [ ("test.sup", 1) ] test_supervise_retry);
          Alcotest.test_case "supervise keeps real trips" `Quick
            (no_chaos test_supervise_real_trips);
        ] );
      ( "chaos",
        [
          Alcotest.test_case "inert without a guard" `Quick
            (with_chaos [ ("test.chaos.unguarded", 1) ] test_chaos_needs_guard);
          Alcotest.test_case "exact site and visit" `Quick
            (with_chaos [ ("test.chaos.hit", 2) ] test_chaos_exact_and_visit);
          Alcotest.test_case "wildcards" `Quick (no_chaos test_chaos_wildcards);
          Alcotest.test_case "spec parsing" `Quick
            (no_chaos test_chaos_spec_parsing);
        ] );
      ( "sites",
        List.map
          (fun (site, work) ->
            Alcotest.test_case site `Quick (exercise_site (site, work)))
          site_workloads );
      ( "retry",
        [
          Alcotest.test_case "deterministic jittered delays" `Quick
            (no_chaos test_retry_delay_deterministic);
          Alcotest.test_case "transient classification" `Quick
            (no_chaos test_retry_transient);
          Alcotest.test_case "recovers within budget" `Quick
            (no_chaos test_retry_recovers);
          Alcotest.test_case "gives up after max attempts" `Quick
            (no_chaos test_retry_gives_up);
          Alcotest.test_case "permanent trips pass through" `Quick
            (no_chaos test_retry_permanent_trips_do_not_retry);
          Alcotest.test_case "custom retryable predicate" `Quick
            (no_chaos test_retry_custom_retryable);
          Alcotest.test_case "validation" `Quick (no_chaos test_retry_validation);
        ] );
      ( "degradation",
        [
          prop_fuel0_unknown;
          prop_fuel1_no_raise;
          Alcotest.test_case "deadline 0 end to end" `Quick
            test_deadline0_unknown;
        ] );
    ]
